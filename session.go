package mlpart

import (
	"context"

	"mlpart/internal/core"
)

// Session runs successive partitioning jobs with one shared scratch
// workspace bundle: the matching sweep's score buffers, the induce
// accumulators, and the refinement engine's arrays are grown once and
// reused by every job the session runs, amortizing the per-job setup
// cost that dominates small instances. mlpartd's micro-batcher keeps
// one Session per batch worker and funnels every job of a batch
// through it.
//
// A Session is single-goroutine: at most one call may be in flight at
// a time (run concurrent jobs on separate Sessions). To honor that,
// every call forces Parallelism to 1 — the multi-start supervisor
// then runs all starts sequentially on the calling goroutine, so the
// shared workspaces are never touched by two goroutines. This does
// not change results: partitions are bit-identical across Parallelism
// values, and workspace reuse is itself bit-identity preserving, so a
// job's result bytes are the same whether it ran on a Session, on the
// one-shot entry points, or after a crash-replay.
type Session struct {
	scratch *core.Scratch
}

// NewSession returns a Session with an empty workspace bundle; the
// buffers grow to the largest instance the session sees.
func NewSession() *Session {
	return &Session{scratch: core.NewScratch()}
}

// BipartitionCtx is BipartitionCtx on the session's shared
// workspaces. Parallelism is forced to 1 (see the Session contract);
// everything else — options, cancellation, fault isolation, the
// result — behaves exactly like the package-level entry point, and
// the returned partition is byte-identical to a one-shot run with the
// same inputs.
func (s *Session) BipartitionCtx(ctx context.Context, h *Hypergraph, opt Options) (*Partition, Info, error) {
	opt.Parallelism = 1
	return bipartitionCtx(ctx, h, opt, s.scratch)
}

// QuadrisectCtx is QuadrisectCtx on the session's shared workspaces,
// under the same forced-sequential contract as
// Session.BipartitionCtx.
func (s *Session) QuadrisectCtx(ctx context.Context, h *Hypergraph, opt Options) (*Partition, Info, error) {
	opt.Parallelism = 1
	return quadrisectCtx(ctx, h, opt, s.scratch)
}
