package mlpart

// Golden cut-value regression: pinned instances (the checked-in
// smoke.hgr plus three pinned netgen circuits) through
// Bipartition/Quadrisect/RecursiveBisect at fixed seeds must keep
// producing the exact cuts recorded in testdata/golden_cuts.json —
// and produce them bit-identically at Parallelism 1 and 4. Any
// change to RNG consumption anywhere in the pipeline (the classic
// symptom of a workspace that leaks state between levels or starts)
// trips this test. Regenerate deliberately with:
//
//	go test -run Golden -update-golden .

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mlpart/internal/oracle"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cuts.json from the current implementation")

const goldenSchema = "mlpart-golden-cuts/1"

type goldenEntry struct {
	Instance  string `json:"instance"`
	Algorithm string `json:"algorithm"`
	Cut       int    `json:"cut"`
}

type goldenFile struct {
	Schema  string        `json:"schema"`
	Entries []goldenEntry `json:"entries"`
}

// goldenInstances returns the pinned instances, name → hypergraph.
func goldenInstances(t *testing.T) []struct {
	name string
	h    *Hypergraph
} {
	t.Helper()
	f, err := os.Open(filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	smoke, err := ReadHGR(f)
	if err != nil {
		t.Fatal(err)
	}
	out := []struct {
		name string
		h    *Hypergraph
	}{{name: "smoke.hgr", h: smoke}}
	for _, spec := range []CircuitSpec{
		{Name: "golden-a", Cells: 800, Nets: 860, Pins: 2700, Seed: 101},
		{Name: "golden-b", Cells: 1200, Nets: 1300, Pins: 4200, Seed: 102},
		{Name: "golden-c", Cells: 1600, Nets: 1700, Pins: 5600, Seed: 103},
	} {
		c, err := GenerateCircuit(spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			h    *Hypergraph
		}{name: spec.Name, h: c.H})
	}
	return out
}

// goldenRun executes one algorithm on one instance. For the
// multi-start entry points it runs at Parallelism 1 and 4 and fails
// unless the partitions are bit-identical before returning the cut.
func goldenRun(t *testing.T, algorithm string, h *Hypergraph) int {
	t.Helper()
	runAt := func(par int) (*Partition, int) {
		opt := Options{Seed: 7, Starts: 2, Parallelism: par}
		switch algorithm {
		case "bipartition":
			p, info, err := Bipartition(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			return p, info.Cut
		case "quadrisect":
			p, info, err := Quadrisect(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			return p, info.Cut
		case "recursive-bisect":
			p, err := RecursiveBisect(h, 4, MLConfig{}, 7)
			if err != nil {
				t.Fatal(err)
			}
			return p, oracle.Cut(h, p)
		}
		t.Fatalf("unknown algorithm %q", algorithm)
		return nil, 0
	}
	p1, cut1 := runAt(1)
	p4, cut4 := runAt(4)
	if cut1 != cut4 {
		t.Fatalf("%s: cut %d at Parallelism 1, %d at Parallelism 4", algorithm, cut1, cut4)
	}
	for v := range p1.Part {
		if p1.Part[v] != p4.Part[v] {
			t.Fatalf("%s: partitions diverge across Parallelism at cell %d", algorithm, v)
		}
	}
	if want := oracle.Cut(h, p1); cut1 != want {
		t.Fatalf("%s: reported cut %d, oracle recount %d", algorithm, cut1, want)
	}
	return cut1
}

func TestGoldenCuts(t *testing.T) {
	algorithms := []string{"bipartition", "quadrisect", "recursive-bisect"}
	var got []goldenEntry
	for _, inst := range goldenInstances(t) {
		for _, alg := range algorithms {
			got = append(got, goldenEntry{
				Instance:  inst.name,
				Algorithm: alg,
				Cut:       goldenRun(t, alg, inst.h),
			})
		}
	}

	path := filepath.Join("testdata", "golden_cuts.json")
	if *updateGolden {
		data, err := json.MarshalIndent(goldenFile{Schema: goldenSchema, Entries: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.Schema != goldenSchema {
		t.Fatalf("golden schema %q, want %q", want.Schema, goldenSchema)
	}
	if len(want.Entries) != len(got) {
		t.Fatalf("golden file has %d entries, test produced %d", len(want.Entries), len(got))
	}
	for i, w := range want.Entries {
		g := got[i]
		if g != w {
			t.Errorf("entry %d: got %+v, golden %+v", i, g, w)
		}
	}
}
