package mlpart

// Golden cut-value regression: pinned instances (the checked-in
// smoke.hgr plus three pinned netgen circuits) through
// Bipartition/Quadrisect/RecursiveBisect at fixed seeds must keep
// producing the exact cuts recorded in testdata/golden_cuts.json —
// and produce them bit-identically at Parallelism 1 and 4. Any
// change to RNG consumption anywhere in the pipeline (the classic
// symptom of a workspace that leaks state between levels or starts)
// trips this test. Regenerate deliberately with:
//
//	go test -run Golden -update-golden .

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mlpart/internal/oracle"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cuts.json from the current implementation")

const goldenSchema = "mlpart-golden-cuts/1"

type goldenEntry struct {
	Instance  string `json:"instance"`
	Algorithm string `json:"algorithm"`
	Cut       int    `json:"cut"`
}

type goldenFile struct {
	Schema  string        `json:"schema"`
	Entries []goldenEntry `json:"entries"`
}

// goldenInstances returns the pinned instances, name → hypergraph.
func goldenInstances(t *testing.T) []struct {
	name string
	h    *Hypergraph
} {
	t.Helper()
	f, err := os.Open(filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	smoke, err := ReadHGR(f)
	if err != nil {
		t.Fatal(err)
	}
	out := []struct {
		name string
		h    *Hypergraph
	}{{name: "smoke.hgr", h: smoke}}
	for _, spec := range []CircuitSpec{
		{Name: "golden-a", Cells: 800, Nets: 860, Pins: 2700, Seed: 101},
		{Name: "golden-b", Cells: 1200, Nets: 1300, Pins: 4200, Seed: 102},
		{Name: "golden-c", Cells: 1600, Nets: 1700, Pins: 5600, Seed: 103},
	} {
		c, err := GenerateCircuit(spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			h    *Hypergraph
		}{name: spec.Name, h: c.H})
	}
	return out
}

// goldenRun executes one algorithm on one instance at the given
// IntraParallelism. For the multi-start entry points it runs at
// Parallelism 1 and 4 and fails unless the partitions are
// bit-identical; with intra > 0 it additionally re-runs with an
// 8-worker intra pool and requires bit-identity there too (the
// tentpole contract: worker count never changes the result, only
// 0-vs->=1 selects the algorithm).
func goldenRun(t *testing.T, algorithm string, h *Hypergraph, intra int) int {
	t.Helper()
	runAt := func(par, workers int) (*Partition, int) {
		opt := Options{Seed: 7, Starts: 2, Parallelism: par, IntraParallelism: workers}
		switch algorithm {
		case "bipartition":
			p, info, err := Bipartition(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			return p, info.Cut
		case "quadrisect":
			p, info, err := Quadrisect(h, opt)
			if err != nil {
				t.Fatal(err)
			}
			return p, info.Cut
		case "recursive-bisect":
			p, err := RecursiveBisect(h, 4, MLConfig{IntraParallelism: workers}, 7)
			if err != nil {
				t.Fatal(err)
			}
			return p, oracle.Cut(h, p)
		}
		t.Fatalf("unknown algorithm %q", algorithm)
		return nil, 0
	}
	samePart := func(label string, a, b *Partition) {
		t.Helper()
		for v := range a.Part {
			if a.Part[v] != b.Part[v] {
				t.Fatalf("%s: partitions diverge across %s at cell %d", algorithm, label, v)
			}
		}
	}
	p1, cut1 := runAt(1, intra)
	p4, cut4 := runAt(4, intra)
	if cut1 != cut4 {
		t.Fatalf("%s: cut %d at Parallelism 1, %d at Parallelism 4", algorithm, cut1, cut4)
	}
	samePart("Parallelism", p1, p4)
	if intra > 0 {
		p8, cut8 := runAt(1, 8)
		if cut1 != cut8 {
			t.Fatalf("%s: cut %d at IntraParallelism %d, %d at IntraParallelism 8", algorithm, cut1, intra, cut8)
		}
		samePart("IntraParallelism", p1, p8)
	}
	if want := oracle.Cut(h, p1); cut1 != want {
		t.Fatalf("%s: reported cut %d, oracle recount %d", algorithm, cut1, want)
	}
	return cut1
}

func TestGoldenCuts(t *testing.T) {
	cases := []struct {
		alg   string
		intra int
		label string
	}{
		{"bipartition", 0, "bipartition"},
		{"quadrisect", 0, "quadrisect"},
		{"recursive-bisect", 0, "recursive-bisect"},
		// The intra-parallel pipeline is a distinct deterministic
		// algorithm (sub-round refinement), so its cuts are pinned
		// separately; intra = 1 is the canonical representative and
		// goldenRun cross-checks 8 workers against it.
		{"bipartition", 1, "bipartition-intra"},
		{"quadrisect", 1, "quadrisect-intra"},
		{"recursive-bisect", 1, "recursive-bisect-intra"},
	}
	var got []goldenEntry
	for _, inst := range goldenInstances(t) {
		for _, tc := range cases {
			got = append(got, goldenEntry{
				Instance:  inst.name,
				Algorithm: tc.label,
				Cut:       goldenRun(t, tc.alg, inst.h, tc.intra),
			})
		}
	}

	path := filepath.Join("testdata", "golden_cuts.json")
	if *updateGolden {
		data, err := json.MarshalIndent(goldenFile{Schema: goldenSchema, Entries: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.Schema != goldenSchema {
		t.Fatalf("golden schema %q, want %q", want.Schema, goldenSchema)
	}
	if len(want.Entries) != len(got) {
		t.Fatalf("golden file has %d entries, test produced %d", len(want.Entries), len(got))
	}
	for i, w := range want.Entries {
		g := got[i]
		if g != w {
			t.Errorf("entry %d: got %+v, golden %+v", i, g, w)
		}
	}
}
