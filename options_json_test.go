package mlpart

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestOptionsCanonicalJSONRoundTrip(t *testing.T) {
	cases := []Options{
		{}, // zero value: the paper's defaults
		{Engine: EngineFM, MatchingRatio: 0.75, Threshold: 50, Tolerance: 0.2, Seed: 42},
		{Engine: EnginePROP, Starts: 8, Parallelism: 4, MaxRetries: 3, AttemptTimeout: 250 * time.Millisecond},
		{Engine: EngineCLIPPROP, Audit: true, Seed: -7},
	}
	for i, o := range cases {
		data, err := o.CanonicalJSON()
		if err != nil {
			t.Fatalf("case %d: CanonicalJSON: %v", i, err)
		}
		back, err := ParseOptionsJSON(data)
		if err != nil {
			t.Fatalf("case %d: ParseOptionsJSON: %v", i, err)
		}
		data2, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("case %d: round trip not canonical:\n%s\n%s", i, data, data2)
		}
	}
}

// Semantically equal options (explicit defaults vs zero values) must
// encode byte-identically — that is what makes the encoding canonical.
func TestOptionsCanonicalJSONMaterializesDefaults(t *testing.T) {
	a, err := Options{}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Options{Engine: EngineFM, MatchingRatio: 0.5, Starts: 1, MaxRetries: 1}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("explicit defaults encode differently:\n%s\n%s", a, b)
	}
}

func TestParseOptionsJSONStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"engine":"clip","typo_knob":3}`, "typo_knob"},
		{"unknown engine", `{"engine":"simulated-annealing"}`, "unknown engine"},
		{"negative starts", `{"starts":-1}`, "starts"},
		{"negative parallelism", `{"parallelism":-2}`, "parallelism"},
		{"negative timeout", `{"attempt_timeout_ns":-5}`, "attempt_timeout_ns"},
		{"trailing data", `{"engine":"fm"} {"engine":"clip"}`, "trailing"},
		{"malformed", `{`, "options JSON"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseOptionsJSON([]byte(c.in))
			if err == nil {
				t.Fatalf("ParseOptionsJSON(%s) succeeded, want error", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	// Absent fields select the documented defaults.
	o, err := ParseOptionsJSON([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if o.Engine != EngineFM {
		t.Errorf("absent engine parsed as %v, want the zero value (FM)", o.Engine)
	}
}

func TestOptionsCanonicalJSONRejectsNaN(t *testing.T) {
	bad := []Options{
		{MatchingRatio: nan()},
		{Tolerance: nan()},
		{MatchingRatio: inf()},
	}
	for i, o := range bad {
		if _, err := o.CanonicalJSON(); err == nil {
			t.Errorf("case %d: CanonicalJSON accepted a non-finite float", i)
		}
		if _, err := o.Fingerprint(); err == nil {
			t.Errorf("case %d: Fingerprint accepted a non-finite float", i)
		}
	}
}

func TestOptionsFingerprint(t *testing.T) {
	fp := func(o Options) string {
		t.Helper()
		s, err := o.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := fp(Options{Seed: 1})

	if len(base) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", base)
	}
	// Parallelism and Audit never change the solution: same entry.
	if got := fp(Options{Seed: 1, Parallelism: 4}); got != base {
		t.Error("Parallelism split the fingerprint")
	}
	if got := fp(Options{Seed: 1, Audit: true}); got != base {
		t.Error("Audit split the fingerprint")
	}
	// Result-affecting fields must split it.
	if got := fp(Options{Seed: 2}); got == base {
		t.Error("Seed did not change the fingerprint")
	}
	if got := fp(Options{Seed: 1, Engine: EngineCLIP}); got == base {
		t.Error("Engine did not change the fingerprint")
	}
	if got := fp(Options{Seed: 1, Starts: 4}); got == base {
		t.Error("Starts did not change the fingerprint")
	}
	if got := fp(Options{Seed: 1, Tolerance: 0.3}); got == base {
		t.Error("Tolerance did not change the fingerprint")
	}
}

func TestEngineNameRoundTrip(t *testing.T) {
	for _, e := range []FMConfig{{Engine: EngineFM}, {Engine: EngineCLIP}, {Engine: EnginePROP}, {Engine: EngineCLIPPROP}} {
		name, err := EngineName(e.Engine)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		if back != e.Engine {
			t.Errorf("engine %v -> %q -> %v", e.Engine, name, back)
		}
	}
	if _, err := EngineName(99); err == nil {
		t.Error("EngineName(99) succeeded")
	}
}

func nan() float64 { return math.NaN() }

func inf() float64 { return math.Inf(1) }
