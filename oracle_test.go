package mlpart

// Differential "Oracle" tests: every optimized pipeline result is
// cross-checked against internal/oracle's from-scratch recomputations
// (map-based cut counting, literal move-and-recount gains, first-
// principles balance bounds). CI runs these with -count=2 and -race;
// together with the workspace threading of the hot paths this is the
// aliasing-bug safety net — a stale buffer that leaks between levels
// or attempts shows up as an oracle disagreement here.

import (
	"testing"

	"mlpart/internal/oracle"
)

// oracleCircuits returns the small pinned instances the differential
// tests sweep.
func oracleCircuits(t *testing.T) []*Circuit {
	t.Helper()
	specs := []CircuitSpec{
		{Name: "odiff-a", Cells: 300, Nets: 330, Pins: 1050, Seed: 11},
		{Name: "odiff-b", Cells: 450, Nets: 500, Pins: 1600, Seed: 12},
		{Name: "odiff-c", Cells: 600, Nets: 640, Pins: 2100, Seed: 13},
	}
	out := make([]*Circuit, 0, len(specs))
	for _, s := range specs {
		c, err := GenerateCircuit(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// TestOracleBipartitionAcrossSeedsAndParallelism sweeps instances ×
// seeds × Parallelism values and requires every reported cut to equal
// the oracle recount on the returned partition, the partition to
// re-validate, and the balance bound to hold by recomputation. The
// Parallelism sweep exercises the per-attempt workspace isolation:
// shared scratch between concurrent starts would corrupt a partition
// or its cut here.
func TestOracleBipartitionAcrossSeedsAndParallelism(t *testing.T) {
	for _, c := range oracleCircuits(t) {
		for seed := int64(1); seed <= 3; seed++ {
			for _, par := range []int{1, 4} {
				p, info, err := Bipartition(c.H, Options{Seed: seed, Starts: 4, Parallelism: par})
				if err != nil {
					t.Fatalf("%s seed %d par %d: %v", c.Spec.Name, seed, par, err)
				}
				if !oracle.Validate(c.H, p, 2) {
					t.Fatalf("%s seed %d par %d: invalid partition", c.Spec.Name, seed, par)
				}
				if want := oracle.Cut(c.H, p); info.Cut != want {
					t.Fatalf("%s seed %d par %d: reported cut %d, oracle %d",
						c.Spec.Name, seed, par, info.Cut, want)
				}
				if !oracle.Balanced(c.H, p, 0.1) {
					t.Fatalf("%s seed %d par %d: oracle finds the §III.B bound violated",
						c.Spec.Name, seed, par)
				}
			}
		}
	}
}

// TestOracleQuadrisectAcrossParallelism does the same for the k-way
// pipeline: CutNets and SumDegrees against the oracle, validity, and
// the 4-way balance bound.
func TestOracleQuadrisectAcrossParallelism(t *testing.T) {
	for _, c := range oracleCircuits(t)[:2] {
		for _, par := range []int{1, 4} {
			p, info, err := Quadrisect(c.H, Options{Seed: 21, Starts: 2, Parallelism: par})
			if err != nil {
				t.Fatalf("%s par %d: %v", c.Spec.Name, par, err)
			}
			if !oracle.Validate(c.H, p, 4) {
				t.Fatalf("%s par %d: invalid partition", c.Spec.Name, par)
			}
			if want := oracle.Cut(c.H, p); info.Cut != want {
				t.Fatalf("%s par %d: reported cut-nets %d, oracle %d", c.Spec.Name, par, info.Cut, want)
			}
			if want := oracle.SumOfDegrees(c.H, p); info.SumDegrees != want {
				t.Fatalf("%s par %d: reported sum-of-degrees %d, oracle %d", c.Spec.Name, par, info.SumDegrees, want)
			}
			if !oracle.Balanced(c.H, p, 0.1) {
				t.Fatalf("%s par %d: oracle finds the 4-way bound violated", c.Spec.Name, par)
			}
		}
	}
}

// TestOracleIntraParallelism sweeps the intra-start pool: every
// worker count must pass the oracle recount, and every count >= 1
// must produce the bit-identical partition (the sub-round engine is
// one algorithm; the pool width is an execution detail). Combined
// with the Parallelism axis this exercises per-attempt pool
// scoping — a pool shared across concurrent starts would corrupt a
// private buffer here.
func TestOracleIntraParallelism(t *testing.T) {
	for _, c := range oracleCircuits(t)[:2] {
		for _, par := range []int{1, 4} {
			var ref *Partition
			for _, intra := range []int{1, 2, 8} {
				p, info, err := Bipartition(c.H, Options{Seed: 5, Starts: 4, Parallelism: par, IntraParallelism: intra})
				if err != nil {
					t.Fatalf("%s par %d intra %d: %v", c.Spec.Name, par, intra, err)
				}
				if !oracle.Validate(c.H, p, 2) {
					t.Fatalf("%s par %d intra %d: invalid partition", c.Spec.Name, par, intra)
				}
				if want := oracle.Cut(c.H, p); info.Cut != want {
					t.Fatalf("%s par %d intra %d: reported cut %d, oracle %d",
						c.Spec.Name, par, intra, info.Cut, want)
				}
				if !oracle.Balanced(c.H, p, 0.1) {
					t.Fatalf("%s par %d intra %d: oracle finds the §III.B bound violated",
						c.Spec.Name, par, intra)
				}
				if ref == nil {
					ref = p
					continue
				}
				for v := range p.Part {
					if p.Part[v] != ref.Part[v] {
						t.Fatalf("%s par %d: partition diverges between IntraParallelism 1 and %d at cell %d",
							c.Spec.Name, par, intra, v)
					}
				}
			}
		}
	}
}

// TestOracleVCycleAndRecursiveBisect covers the remaining public
// entry points that reuse workspaces across whole cycles (VCycle) and
// across recursion (RecursiveBisect).
func TestOracleVCycleAndRecursiveBisect(t *testing.T) {
	c := oracleCircuits(t)[0]
	h := c.H
	p, _, err := Bipartition(h, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	pv, cut, err := VCycle(h, p, 3, MLConfig{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.WeightedCut(h, pv); cut != want {
		t.Fatalf("VCycle reported cut %d, oracle %d", cut, want)
	}
	if !oracle.Validate(h, pv, 2) || !oracle.Balanced(h, pv, 0.1) {
		t.Fatal("VCycle solution fails oracle validity/balance")
	}
	pr, err := RecursiveBisect(h, 4, MLConfig{}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Validate(h, pr, 4) {
		t.Fatal("RecursiveBisect solution fails oracle validity")
	}
	if got, want := pr.Cut(h), oracle.Cut(h, pr); got != want {
		t.Fatalf("RecursiveBisect cut %d, oracle %d", got, want)
	}
}

// TestOracleUnderFaultInjection runs the bipartitioner under the
// fault plans of the chaos suite (recovered panics, synthetic
// cancellations, corrupted intermediates) and still requires oracle
// agreement: whatever degraded path produced the partition, the
// reported cut must be a true recount and the §III.B bound must hold.
func TestOracleUnderFaultInjection(t *testing.T) {
	c := oracleCircuits(t)[1]
	h := c.H
	// Panic entries are confined to start 0 (spec suffix ":0") so the
	// remaining starts stay clean and the run-level error is nil; the
	// cancel/corrupt entries apply to every start. The subround/score
	// plans target the intra-parallel-only sites, so those cases run
	// with a worker pool.
	plans := map[string]struct {
		specs []string
		intra int
	}{
		"fm-panic":        {specs: []string{"fm.pass:panic:2:0"}},
		"project-corrupt": {specs: []string{"core.project:corrupt:1"}},
		"match-cancel":    {specs: []string{"coarsen.match:cancel:3"}},
		"mixed":           {specs: []string{"fm.pass:panic:1:0", "core.rebalance:corrupt:1"}},
		"subround-panic":  {specs: []string{"fm.subround:panic:2:0"}, intra: 2},
		"subround-cancel": {specs: []string{"fm.subround:cancel:4"}, intra: 2},
		"score-corrupt":   {specs: []string{"coarsen.score:corrupt:1"}, intra: 2},
	}
	for name, tc := range plans {
		t.Run(name, func(t *testing.T) {
			plan, err := ParseFaultSpec(tc.specs, 17)
			if err != nil {
				t.Fatal(err)
			}
			p, info, err := Bipartition(h, Options{Seed: 41, Starts: 3, Parallelism: 2, IntraParallelism: tc.intra, Inject: plan})
			if err != nil {
				t.Fatalf("faults confined to some starts must not fail the run: %v", err)
			}
			if !oracle.Validate(h, p, 2) {
				t.Fatal("invalid partition under fault injection")
			}
			if want := oracle.Cut(h, p); info.Cut != want {
				t.Fatalf("reported cut %d, oracle %d", info.Cut, want)
			}
			if !oracle.Balanced(h, p, 0.1) {
				t.Fatal("oracle finds the balance bound violated under fault injection")
			}
		})
	}
}
