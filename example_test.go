package mlpart_test

import (
	"fmt"

	"mlpart"
)

// ExampleBipartition demonstrates the one-call multilevel
// bipartitioning API on a tiny two-cluster netlist.
func ExampleBipartition() {
	// Two triangles joined by a single net: optimal cut = 1.
	h := mlpart.NewBuilder(6).
		AddNet(0, 1).AddNet(1, 2).AddNet(0, 2).
		AddNet(3, 4).AddNet(4, 5).AddNet(3, 5).
		AddNet(2, 3).
		MustBuild()
	p, info, err := mlpart.Bipartition(h, mlpart.Options{Seed: 1, Starts: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("cut:", info.Cut)
	fmt.Println("same side 0,1,2:", p.Part[0] == p.Part[1] && p.Part[1] == p.Part[2])
	fmt.Println("same side 3,4,5:", p.Part[3] == p.Part[4] && p.Part[4] == p.Part[5])
	// Output:
	// cut: 1
	// same side 0,1,2: true
	// same side 3,4,5: true
}

// ExampleBalance shows the §III.B balance bound computation.
func ExampleBalance() {
	h := mlpart.NewBuilder(10).AddNet(0, 1).MustBuild() // 10 unit cells
	b := mlpart.Balance(h, 2, 0.1)
	fmt.Printf("each side must hold between %d and %d area units\n", b.Lo, b.Hi)
	// Output:
	// each side must hold between 4 and 6 area units
}

// ExampleGenerateCircuit builds a synthetic stand-in benchmark.
func ExampleGenerateCircuit() {
	c, err := mlpart.GenerateCircuit(mlpart.CircuitSpec{
		Name: "demo", Cells: 100, Nets: 110, Pins: 360, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", c.H.NumCells())
	fmt.Println("nets within 5%:", c.H.NumNets() >= 104 && c.H.NumNets() <= 110)
	// Output:
	// cells: 100
	// nets within 5%: true
}
