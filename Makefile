# Developer entry points. The repo is stdlib-only Go; everything here
# is plain toolchain invocations.

GO ?= go

.PHONY: all build vet test race lint chaos crash-smoke fuzz-smoke stats-smoke par-smoke serve-smoke stream-smoke bench-smoke oracle check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The refiners' Stop hooks and the cancellation plumbing are shared
# mutable state; the race detector must stay clean.
race:
	$(GO) test -race ./...

# Project-specific determinism & safety linter (cmd/mllint): global
# math/rand, map-order leaks, float equality, unchecked int32
# narrowing, context threading. See the "Static analysis" section of
# the README for the check list and the suppression syntax.
lint:
	$(GO) run ./cmd/mllint ./...

# Chaos suite: the deterministic fault-injection sweep (every site ×
# every fault kind × both entry points) plus the parallel multi-start
# supervisor tests and the mlpartd server chaos sweep (faults at
# server.admit / server.job / server.batch / server.events under a
# concurrent burst: every accepted job must reach exactly one terminal
# status and a poisoned batch job fails alone), under the race
# detector — the recovery paths must be both correct and race-free.
chaos:
	$(GO) test -race -run 'TestChaos|TestParallelMultiStart|TestRecoveredStart|TestAttemptTimeout|TestOuterCancel|TestRetried|TestRunStarts' . ./internal/core
	$(GO) test -race ./internal/faultinject ./internal/journal ./internal/intrapar
	$(GO) test -race -run 'TestChaosSweepServer|TestChaosSweepJournal|TestDrainMidBurst|TestQueueFullSheds|TestAdmitPanic|TestJobPanic|TestBatch|TestSSE' ./internal/server

# Crash durability harness: launch cmd/mlpartd as a real subprocess
# with a write-ahead job journal, SIGKILL it at a deterministic
# journal position mid-burst (and once more under an injected torn
# write), restart it on the same journal, and audit that no
# acknowledged job was lost or double-completed. statscheck -journal
# validates the journal's lifecycle invariants offline at each step.
crash-smoke:
	$(GO) test -v -count=1 -run 'TestCmdMlpartdCrash|TestCmdStatscheckJournal' .

# Short fuzz run over the parser hardening (resource limits, overflow
# checks). The checked-in corpus under
# internal/hypergraph/testdata/fuzz seeds it.
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadHGR -fuzztime=10s ./internal/hypergraph

# Telemetry smoke: run the CLI with -stats-json on the checked-in
# mesh netlist at two parallelism levels, validate both reports with
# cmd/statscheck, and require the timing-stripped reports to be
# byte-identical (the determinism contract of the stats schema).
stats-smoke:
	$(GO) run ./cmd/mlpart -in cmd/mlpart/testdata/smoke.hgr -out /dev/null \
		-starts 3 -parallel 1 -stats-json /tmp/mlpart-stats-p1.json
	$(GO) run ./cmd/mlpart -in cmd/mlpart/testdata/smoke.hgr -out /dev/null \
		-starts 3 -parallel 4 -stats-json /tmp/mlpart-stats-p4.json
	$(GO) run ./cmd/statscheck -in /tmp/mlpart-stats-p1.json -strip > /tmp/mlpart-stats-p1.stripped.json
	$(GO) run ./cmd/statscheck -in /tmp/mlpart-stats-p4.json -strip > /tmp/mlpart-stats-p4.stripped.json
	cmp /tmp/mlpart-stats-p1.stripped.json /tmp/mlpart-stats-p4.stripped.json

# Intra-parallelism smoke: the end-to-end determinism contract of the
# worker pool. The same instance through the CLI at -intra-parallel 1
# and 8 must produce byte-identical partition files and byte-identical
# timing-stripped stats reports (intra_workers and the *_par_regions
# counters live in the timings block precisely so stripping removes
# them).
par-smoke:
	$(GO) run ./cmd/mlpart -in cmd/mlpart/testdata/smoke.hgr -out /tmp/mlpart-par-i1.part \
		-starts 3 -parallel 2 -intra-parallel 1 -stats-json /tmp/mlpart-par-i1.json
	$(GO) run ./cmd/mlpart -in cmd/mlpart/testdata/smoke.hgr -out /tmp/mlpart-par-i8.part \
		-starts 3 -parallel 2 -intra-parallel 8 -stats-json /tmp/mlpart-par-i8.json
	cmp /tmp/mlpart-par-i1.part /tmp/mlpart-par-i8.part
	$(GO) run ./cmd/statscheck -in /tmp/mlpart-par-i1.json -strip > /tmp/mlpart-par-i1.stripped.json
	$(GO) run ./cmd/statscheck -in /tmp/mlpart-par-i8.json -strip > /tmp/mlpart-par-i8.stripped.json
	cmp /tmp/mlpart-par-i1.stripped.json /tmp/mlpart-par-i8.stripped.json

# Service smoke: mlpartd's loopback self-test drives the daemon over
# real HTTP (submit / wait / result, byte-identical cache hit, then a
# self-delivered SIGTERM through the production drain path) and the
# final service stats are piped into cmd/statscheck, which validates
# the mlpartd-stats/1 accounting ledger from stdin.
serve-smoke:
	$(GO) build -o /tmp/mlpartd-smoke ./cmd/mlpartd
	/tmp/mlpartd-smoke -smoke -in cmd/mlpart/testdata/smoke.hgr | $(GO) run ./cmd/statscheck

# Streaming smoke: the batching + SSE variant of the service smoke. A
# burst of small jobs (distinct seeds, cache off) rides the micro-batch
# lane while one SSE consumer checks the queued → started → completed
# event order and Last-Event-ID resume on a real socket, a second
# reads service-wide ledger deltas from /v1/events, /statsz answers in
# both the mlpartd-stats/1 and mlpart-bench/1 schemas, and the final
# ledger (batched / batch_flushes / events_dropped included) is
# validated by cmd/statscheck.
stream-smoke:
	$(GO) build -o /tmp/mlpartd-stream ./cmd/mlpartd
	/tmp/mlpartd-stream -smoke -stream -in cmd/mlpart/testdata/smoke.hgr \
		-cache -1 -batch-pins 1000000 -batch-delay 5ms | $(GO) run ./cmd/statscheck

# Benchmark regression gate: cmd/benchrun sweeps the pinned netgen
# instances, writes BENCH_<date>.json, and gates cuts (exact) and
# allocs/op (tolerance) against the checked-in bench_baseline.json.
# Timings are recorded but never gated. Two measured iterations keep
# the smoke fast; regenerate the baseline deliberately with
# `go run ./cmd/benchrun -update`.
bench-smoke:
	$(GO) run ./cmd/benchrun -iters 2 -out /tmp/mlpart-bench-smoke.json

# Differential oracle suite: the optimized pipeline against the slow
# from-scratch reference (internal/oracle), twice to catch state
# leaking between runs, under the race detector.
oracle:
	$(GO) test -race -run Oracle -count=2 . ./internal/fm ./internal/oracle

check: build vet test race lint chaos crash-smoke fuzz-smoke stats-smoke par-smoke serve-smoke stream-smoke oracle bench-smoke
