//go:build race

package mlpart

// raceDetectorEnabled reports whether this test binary was built with
// -race; the golem3-scale integration test skips under it because the
// detector's slowdown pushes a one-minute run past the test timeout.
const raceDetectorEnabled = true
