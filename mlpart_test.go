package mlpart

import (
	"bytes"
	"testing"
)

func TestPublicBipartition(t *testing.T) {
	b := NewBuilder(40)
	for g := 0; g < 2; g++ {
		base := g * 20
		for i := 0; i < 19; i++ {
			b.AddNet(base+i, base+i+1)
			b.AddNet(base+i, base+(i+7)%20)
		}
	}
	b.AddNet(0, 20)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := Bipartition(h, Options{Seed: 3, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cut != p.Cut(h) {
		t.Errorf("info.Cut %d != measured %d", info.Cut, p.Cut(h))
	}
	if info.Starts != 4 {
		t.Errorf("Starts = %d", info.Starts)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Error("unbalanced")
	}
}

func TestPublicQuadrisect(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "q", Cells: 300, Nets: 400, Pins: 1300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := Quadrisect(c.H, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 {
		t.Errorf("K = %d, want 4", p.K)
	}
	if info.Cut != p.Cut(c.H) || info.SumDegrees != p.SumOfDegrees(c.H) {
		t.Error("info mismatch")
	}
}

func TestPublicDeterminism(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "d", Cells: 200, Nets: 260, Pins: 840, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p1, i1, err := Bipartition(c.H, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p2, i2, err := Bipartition(c.H, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if i1.Cut != i2.Cut {
		t.Fatalf("same seed, different cuts: %d vs %d", i1.Cut, i2.Cut)
	}
	for v := range p1.Part {
		if p1.Part[v] != p2.Part[v] {
			t.Fatal("same seed, different partitions")
		}
	}
}

func TestPublicEngines(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "e", Cells: 150, Nets: 200, Pins: 640, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []struct {
		name string
		e    FMConfig
	}{{"fm", FMConfig{Engine: EngineFM}}, {"clip", FMConfig{Engine: EngineCLIP}}} {
		_, info, err := Bipartition(c.H, Options{Engine: eng.e.Engine, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if info.Cut < 0 {
			t.Fatalf("%s: bad cut", eng.name)
		}
	}
}

func TestPublicHGRRoundTrip(t *testing.T) {
	h, err := NewBuilder(4).AddNet(0, 1, 2).AddNet(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	g, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 4 || g.NumNets() != 2 {
		t.Errorf("round trip: %v", g)
	}
}

func TestPublicPartitionIO(t *testing.T) {
	p := &Partition{Part: []int32{0, 1, 1, 0}, K: 2}
	var buf bytes.Buffer
	if err := WritePartition(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPartition(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 2 || q.Part[1] != 1 {
		t.Error("partition IO mismatch")
	}
}

func TestBenchmarkSpecs(t *testing.T) {
	specs := BenchmarkSpecs()
	if len(specs) != 23 {
		t.Errorf("suite = %d, want 23", len(specs))
	}
}

func TestOptionsErrors(t *testing.T) {
	h, _ := NewBuilder(4).AddNet(0, 1).Build()
	if _, _, err := Bipartition(h, Options{Starts: -1}); err == nil {
		t.Error("bad starts accepted")
	}
	if _, _, err := Quadrisect(h, Options{Starts: -1}); err == nil {
		t.Error("bad starts accepted")
	}
	if _, _, err := Bipartition(h, Options{MatchingRatio: 3}); err == nil {
		t.Error("bad ratio accepted")
	}
}

func TestPublicWeightedNets(t *testing.T) {
	// Weighted nets through the public facade: fmt-1 file round trip
	// and weighted partitioning.
	h, err := NewBuilder(4).
		AddWeightedNet(10, 1, 2).
		AddNet(0, 1).
		AddNet(2, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	g, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NetWeight(0) != 10 {
		t.Errorf("weight lost: %d", g.NetWeight(0))
	}
	p, res, err := FMBipartition(g, FMConfig{Tolerance: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.WeightedCut(g) {
		t.Errorf("weighted cut mismatch: %d vs %d", res.Cut, p.WeightedCut(g))
	}
}

func TestPublicMeshAPI(t *testing.T) {
	h, err := GenerateMesh(MeshSpec{Width: 6, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumCells() != 30 {
		t.Errorf("cells = %d", h.NumCells())
	}
	if MeshOptimalCut(MeshSpec{Width: 6, Height: 5}) != 5 {
		t.Error("optimal cut wrong")
	}
}
