package mlpart

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mlpart/internal/audit"
	"mlpart/internal/core"
	"mlpart/internal/faultinject"
	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/gfm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
	"mlpart/internal/lsmc"
	"mlpart/internal/netgen"
	"mlpart/internal/placement"
	"mlpart/internal/placer"
	"mlpart/internal/spectral"
	"mlpart/internal/telemetry"
)

// Re-exported data types. Aliases keep the internal packages private
// while making their types fully usable through this package.
type (
	// Hypergraph is a netlist hypergraph H(V, E).
	Hypergraph = hypergraph.Hypergraph
	// Builder incrementally constructs a Hypergraph.
	Builder = hypergraph.Builder
	// Partition is a K-way assignment of cells to blocks.
	Partition = hypergraph.Partition
	// Clustering is a k-way clustering P^k of the cells.
	Clustering = hypergraph.Clustering
	// BalanceBound is the block-area bound of §III.B.
	BalanceBound = hypergraph.BalanceBound
	// Limits bounds the resources the file parsers will allocate; see
	// DefaultLimits.
	Limits = hypergraph.Limits

	// InternalError is a recovered internal invariant panic (gain
	// buckets, builders, refiners) converted into a typed error at the
	// public API boundary. It records the pipeline stage and hierarchy
	// level where the panic fired; when returned alongside a non-nil
	// partition, that partition is the last good (feasible) solution.
	InternalError = core.PanicError

	// AuditError is a typed invariant violation detected by the audit
	// layer (Options.Audit): a corrupted intermediate solution that the
	// from-scratch cross-checks caught at a level boundary.
	AuditError = audit.Error

	// StartReport is the per-start outcome entry of Info.StartReports.
	StartReport = core.StartReport
	// StartOutcome classifies how one start ended; see the Start*
	// constants.
	StartOutcome = core.Outcome

	// FaultPlan arms deterministic fault injection (Options.Inject):
	// a seed plus entries naming registered sites. Build entries with
	// ParseFaultSpec (CLI "site:kind:n[:start]" syntax); sites are
	// validated against the internal registry when the run starts.
	FaultPlan = faultinject.Plan
	// FaultEntry is one armed fault of a FaultPlan.
	FaultEntry = faultinject.Entry
	// FaultKind is the fault injected when an entry triggers.
	FaultKind = faultinject.Kind

	// Telemetry is the per-run statistics collector (Options.Telemetry).
	// A nil *Telemetry is the disabled state: every instrumented site
	// costs one pointer check. Create one per run with NewTelemetry and
	// read the assembled Report after the run completes.
	Telemetry = telemetry.Collector
	// Report is the machine-readable run report assembled by an armed
	// Telemetry collector: per-level coarsening stats, per-pass
	// refinement stats, rebalance counters, and per-stage wall-clock
	// timings, per start. Everything except the timing fields is
	// bit-identical across Parallelism values; Report.StripTimings
	// zeroes the timings for byte-for-byte comparison.
	Report = telemetry.Report
	// ReportStartStats, ReportLevelStat and ReportPassStat are the
	// nested Report record types.
	ReportStartStats = telemetry.StartStats
	ReportLevelStat  = telemetry.LevelStat
	ReportPassStat   = telemetry.PassStat

	// FMConfig configures the FM/CLIP refinement engine.
	FMConfig = fm.Config
	// FMResult summarizes a refinement run.
	FMResult = fm.Result
	// MLConfig configures the multilevel bipartitioner (Fig. 2).
	MLConfig = core.Config
	// MLResult summarizes a multilevel run.
	MLResult = core.Result
	// QuadConfig configures multilevel quadrisection.
	QuadConfig = core.QuadConfig
	// QuadResult summarizes a multilevel quadrisection run.
	QuadResult = core.QuadResult
	// KwayConfig configures the Sanchis-style multi-way engine.
	KwayConfig = kway.Config
	// LSMCConfig configures the Large-Step Markov Chain baseline.
	LSMCConfig = lsmc.Config
	// PlacementConfig configures the GORDIAN-style quadratic placer.
	PlacementConfig = placement.Config
	// SpectralConfig configures spectral (EIG) bipartitioning.
	SpectralConfig = spectral.Config
	// GFMConfig configures the Gradient-FM baseline [32].
	GFMConfig = gfm.Config
	// PlacerConfig configures the top-down quadrisection placer.
	PlacerConfig = placer.Config
	// Placement is a global cell placement with its HPWL.
	Placement = placer.Placement
	// CircuitSpec describes a synthetic benchmark circuit.
	CircuitSpec = netgen.Spec
	// Circuit is a generated synthetic benchmark instance.
	Circuit = netgen.Circuit
	// MeshSpec describes a 2-D grid circuit with a known near-optimal
	// bisection (ground-truth workload).
	MeshSpec = netgen.MeshSpec
)

// Engine and bucket-order constants.
const (
	EngineFM       = fm.EngineFM
	EngineCLIP     = fm.EngineCLIP
	EnginePROP     = fm.EnginePROP
	EngineCLIPPROP = fm.EngineCLIPPROP

	OrderLIFO   = gainbucket.LIFO
	OrderFIFO   = gainbucket.FIFO
	OrderRandom = gainbucket.Random

	ObjectiveSumOfDegrees = kway.SumOfDegrees
	ObjectiveNetCut       = kway.NetCut
)

// Per-start outcome taxonomy (Info.StartReports[i].Outcome).
const (
	// StartOK: the start completed cleanly on its first attempt.
	StartOK = core.OutcomeOK
	// StartRecovered: an internal panic was recovered and the start
	// still produced a feasible degraded solution.
	StartRecovered = core.OutcomeRecovered
	// StartRetried: a failed attempt was retried with a fresh seed and
	// the retry completed cleanly.
	StartRetried = core.OutcomeRetried
	// StartTimedOut: the per-attempt deadline expired; the best-so-far
	// solution was kept.
	StartTimedOut = core.OutcomeTimedOut
	// StartCancelled: the caller's context was done, so the start was
	// skipped without producing a solution.
	StartCancelled = core.OutcomeCancelled
	// StartFailed: every attempt failed without a usable solution.
	StartFailed = core.OutcomeFailed
)

// Fault kinds for FaultPlan entries.
const (
	// FaultPanic injects a panic, exercising recovery paths.
	FaultPanic = faultinject.KindPanic
	// FaultCancel injects a synthetic cancellation at the site.
	FaultCancel = faultinject.KindCancel
	// FaultDelay injects a sleep, exercising deadline handling.
	FaultDelay = faultinject.KindDelay
	// FaultCorrupt perturbs the intermediate solution at the site.
	FaultCorrupt = faultinject.KindCorrupt
	// FaultAnyStart makes a FaultEntry apply to every start.
	FaultAnyStart = faultinject.AnyStart
)

// ParseFaultSpec parses CLI fault specs ("site:kind:n[:start]", e.g.
// "fm.pass:panic:2" or "core.project:delay:1:0"; kind is panic,
// cancel, delay, or corrupt; n is the 1-based hit to trigger on, or
// pX.Y for a per-hit probability) into a validated FaultPlan seeded
// with seed. Returns nil for an empty spec list.
func ParseFaultSpec(specs []string, seed int64) (*FaultPlan, error) {
	return faultinject.ParseSpecs(specs, seed)
}

// NewBuilder returns a Builder for a hypergraph with n unit-area
// cells.
func NewBuilder(n int) *Builder { return hypergraph.NewBuilder(n) }

// Balance returns the §III.B balance bound for k blocks with
// tolerance r.
func Balance(h *Hypergraph, k int, r float64) BalanceBound { return hypergraph.Balance(h, k, r) }

// Options is the convenience configuration for the one-call API.
// The zero value reproduces the paper's best bipartitioning setup:
// CLIP engine, LIFO buckets, R = 0.5, T = 35, r = 0.1.
type Options struct {
	// Engine: EngineFM or EngineCLIP. Default EngineCLIP (ML_C).
	Engine fm.Engine
	// MatchingRatio R ∈ (0,1]. Default 0.5.
	MatchingRatio float64
	// Threshold T. Default 35 for bipartitioning, 100 for
	// quadrisection.
	Threshold int
	// Tolerance r. Default 0.1.
	Tolerance float64
	// Seed for all randomness. Runs with equal seeds are identical.
	Seed int64
	// Starts > 1 repeats the whole algorithm with independent derived
	// seeds and keeps the best solution (deterministic tie-break: cut,
	// then start index). Default 1.
	Starts int
	// Parallelism is the inter-start axis: it bounds the worker pool
	// running independent starts, so it only helps when Starts > 1.
	// 0 means min(GOMAXPROCS, Starts), 1 forces sequential execution.
	// The result is bit-identical for every Parallelism value.
	Parallelism int
	// IntraParallelism is the intra-start axis: it sizes a per-attempt
	// worker pool that parallelizes match scoring and induce assembly
	// during coarsening and switches FM/CLIP refinement to the
	// sub-round-synchronous engine — useful when a single large
	// instance must finish fast (Starts == 1), and composable with
	// Parallelism (total worker demand is roughly the product).
	// 0 (the default) keeps the exact legacy serial pipeline. Any
	// value >= 1 enables the parallel paths; cuts and partitions are
	// bit-identical across all values >= 1 (only wall-clock changes),
	// but the sub-round refinement engine is a different deterministic
	// algorithm than the serial one, so 0 and >= 1 may produce
	// different (equally valid) cuts. Negative is rejected.
	IntraParallelism int
	// MaxRetries is how many reseeded retries a start gets after an
	// attempt fails without a usable solution (recovered panics that
	// still yield a feasible partition are kept, not retried).
	// 0 means the default of 1; negative disables retries.
	MaxRetries int
	// AttemptTimeout, when positive, gives each start its own
	// deadline; an expired attempt winds down cooperatively and keeps
	// its best-so-far solution (outcome StartTimedOut, not an error).
	AttemptTimeout time.Duration
	// Audit enables from-scratch invariant checks at every level
	// transition (package audit): clustering well-formedness, area
	// conservation, partition validity/balance, and incremental-vs-
	// recomputed cut agreement. O(pins) per transition; off by
	// default.
	Audit bool
	// Inject arms deterministic fault injection for chaos testing; nil
	// (the default) adds no overhead beyond one pointer check per
	// site. See ParseFaultSpec and the README's fault-injection
	// section.
	Inject *FaultPlan
	// Telemetry, when non-nil, collects per-level, per-pass and
	// per-stage statistics for the run; read the assembled report with
	// Telemetry.Report() afterwards. Use a fresh collector per run.
	// Nil (the default) costs one pointer check per instrumented site.
	Telemetry *Telemetry
}

func (o Options) normalize() (Options, error) {
	if o.MatchingRatio == 0 {
		o.MatchingRatio = 0.5
	}
	if o.Starts == 0 {
		o.Starts = 1
	}
	if o.Starts < 1 {
		return o, fmt.Errorf("mlpart: starts %d < 1", o.Starts)
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("mlpart: parallelism %d < 0", o.Parallelism)
	}
	if o.IntraParallelism < 0 {
		return o, fmt.Errorf("mlpart: intra-parallelism %d < 0", o.IntraParallelism)
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 1
	}
	if o.AttemptTimeout < 0 {
		return o, fmt.Errorf("mlpart: negative attempt timeout %v", o.AttemptTimeout)
	}
	if err := o.Inject.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

// supervisor maps the public options onto the core supervisor config.
func (o Options) supervisor() core.SuperOptions {
	retries := o.MaxRetries
	if retries < 0 {
		retries = 0
	}
	return core.SuperOptions{
		Starts:         o.Starts,
		Parallelism:    o.Parallelism,
		MaxRetries:     retries,
		AttemptTimeout: o.AttemptTimeout,
		Seed:           o.Seed,
		Plan:           o.Inject,
		Telemetry:      o.Telemetry,
	}
}

// NewTelemetry returns an armed statistics collector for
// Options.Telemetry. One collector serves one run.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Info reports the outcome of a one-call partitioning run.
type Info struct {
	// Cut is the number of nets spanning more than one block.
	Cut int
	// SumDegrees is Σ_e (span−1); equals Cut for bipartitioning.
	SumDegrees int
	// Levels is the number of coarsening levels of the best run.
	Levels int
	// Starts is the number of independent runs performed.
	Starts int
	// Interrupted reports that the caller's cancellation cut the run
	// short. The returned partition is the best feasible solution
	// found so far. Per-start deadlines (AttemptTimeout) and injected
	// cancellations are reported per start, not here.
	Interrupted bool
	// BestStart is the 0-based index of the start whose solution was
	// kept; -1 when no start produced a solution.
	BestStart int
	// StartReports is the per-start outcome taxonomy (ok / recovered /
	// retried / timed-out / cancelled / failed), indexed by start.
	StartReports []StartReport
}

// errInfo is the Info returned on option-validation failures, before
// any start runs. Both entry points use it so the error paths cannot
// drift.
func errInfo() Info { return Info{BestStart: -1} }

// assembleInfo is the single Info/Report assembly path shared by
// BipartitionCtx and QuadrisectCtx: Levels, BestStart, StartReports
// and the telemetry Report header are populated identically for both
// entry points (including the BestStart < 0 no-solution case, where
// the objective arguments are zero values). Keeping one code path is
// what guarantees the telemetry Report cannot diverge between the
// bipartition and quadrisection APIs.
func (o Options) assembleInfo(ctx context.Context, k, bestStart int, reports []StartReport, cut, sumDegrees, levels int) Info {
	info := Info{
		Starts:       o.Starts,
		BestStart:    bestStart,
		StartReports: reports,
		Interrupted:  ctx.Err() != nil,
	}
	if bestStart >= 0 {
		info.Cut = cut
		info.SumDegrees = sumDegrees
		info.Levels = levels
	}
	o.Telemetry.FinishRun(k, o.Seed, o.Starts, bestStart, info.Cut, info.SumDegrees, info.Levels)
	return info
}

// Bipartition runs the ML algorithm (Fig. 2) on h and returns the
// best bipartitioning over opt.Starts independent runs.
func Bipartition(h *Hypergraph, opt Options) (*Partition, Info, error) {
	return BipartitionCtx(context.Background(), h, opt)
}

// BipartitionCtx is Bipartition with cooperative cancellation. Once
// ctx is done, at most one FM pass of extra work happens before the
// run winds down, and the best feasible partition found so far is
// returned with Info.Interrupted set — cancellation is not an error.
//
// Starts run under a fault-isolated supervisor (bounded worker pool,
// per-start derived seeds, deterministic best-cut reduction): an
// internal panic in one start degrades only that start — the
// remaining starts still run — and is surfaced as a *InternalError
// only when no start succeeds cleanly, alongside the best recovered
// solution (nil only when no feasible solution exists at all).
// Info.StartReports carries the per-start outcome taxonomy.
func BipartitionCtx(ctx context.Context, h *Hypergraph, opt Options) (*Partition, Info, error) {
	return bipartitionCtx(ctx, h, opt, nil)
}

// bipartitionCtx is the shared implementation behind BipartitionCtx
// and Session.BipartitionCtx; scratch, when non-nil, is the session's
// reusable workspace bundle (the caller has already forced sequential
// execution for it).
func bipartitionCtx(ctx context.Context, h *Hypergraph, opt Options, scratch *core.Scratch) (*Partition, Info, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, errInfo(), err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := core.Config{
		Threshold:        opt.Threshold,
		Ratio:            opt.MatchingRatio,
		Refine:           fm.Config{Engine: opt.Engine, Tolerance: opt.Tolerance},
		IntraParallelism: opt.IntraParallelism,
		Audit:            opt.Audit,
		Scratch:          scratch,
	}
	type sol struct {
		p   *Partition
		res core.Result
	}
	best, bestStart, reports, rerr := core.RunStarts(ctx, opt.supervisor(),
		func(actx context.Context, seed int64, inj *faultinject.Injector, tel *Telemetry) core.Attempt[sol] {
			c := cfg
			c.Inject = inj
			c.Telemetry = tel
			p, res, err := core.BipartitionCtx(actx, h, c, rand.New(rand.NewSource(seed)))
			return core.Attempt[sol]{
				Sol:         sol{p: p, res: res},
				Cost:        res.Cut,
				HasSol:      p != nil,
				Interrupted: res.Interrupted,
				Err:         err,
			}
		})
	info := opt.assembleInfo(ctx, 2, bestStart, reports, best.res.Cut, best.res.Cut, best.res.Levels)
	if bestStart < 0 {
		return nil, info, rerr
	}
	return best.p, info, rerr
}

// Quadrisect runs multilevel 4-way partitioning on h (sum-of-degrees
// gain, as in §IV.D) and returns the best solution over opt.Starts
// runs.
func Quadrisect(h *Hypergraph, opt Options) (*Partition, Info, error) {
	return QuadrisectCtx(context.Background(), h, opt)
}

// QuadrisectCtx is Quadrisect with cooperative cancellation, under
// the same fault-isolated multi-start supervisor contract as
// BipartitionCtx (starts are reduced on sum-of-degrees, then start
// index).
func QuadrisectCtx(ctx context.Context, h *Hypergraph, opt Options) (*Partition, Info, error) {
	return quadrisectCtx(ctx, h, opt, nil)
}

// quadrisectCtx is the shared implementation behind QuadrisectCtx and
// Session.QuadrisectCtx; scratch, when non-nil, is the session's
// reusable workspace bundle (the caller has already forced sequential
// execution for it).
func quadrisectCtx(ctx context.Context, h *Hypergraph, opt Options, scratch *core.Scratch) (*Partition, Info, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, errInfo(), err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	//mllint:ignore float-eq exact sentinel: 0.5 is the assigned default, never the result of arithmetic
	if opt.MatchingRatio == 0.5 && opt.Threshold == 0 {
		// The paper's quadrisection setup: R = 1.0, T = 100.
		opt.MatchingRatio = 1.0
	}
	cfg := core.QuadConfig{
		Threshold: opt.Threshold,
		Ratio:     opt.MatchingRatio,
		Refine: kway.Config{
			K:         4,
			Engine:    opt.Engine,
			Objective: kway.SumOfDegrees,
			Tolerance: opt.Tolerance,
		},
		IntraParallelism: opt.IntraParallelism,
		Audit:            opt.Audit,
		Scratch:          scratch,
	}
	type sol struct {
		p   *Partition
		res core.QuadResult
	}
	best, bestStart, reports, rerr := core.RunStarts(ctx, opt.supervisor(),
		func(actx context.Context, seed int64, inj *faultinject.Injector, tel *Telemetry) core.Attempt[sol] {
			c := cfg
			c.Inject = inj
			c.Telemetry = tel
			p, res, err := core.QuadrisectCtx(actx, h, c, rand.New(rand.NewSource(seed)))
			return core.Attempt[sol]{
				Sol:         sol{p: p, res: res},
				Cost:        res.SumDegrees,
				HasSol:      p != nil,
				Interrupted: res.Interrupted,
				Err:         err,
			}
		})
	info := opt.assembleInfo(ctx, 4, bestStart, reports, best.res.CutNets, best.res.SumDegrees, best.res.Levels)
	if bestStart < 0 {
		return nil, info, rerr
	}
	return best.p, info, rerr
}

// FMBipartition runs a single flat FM/CLIP descent from a random
// start — the paper's baseline engines, usable standalone. Internal
// panics are recovered and returned as a *InternalError.
func FMBipartition(h *Hypergraph, cfg FMConfig, seed int64) (p *Partition, res FMResult, err error) {
	gerr := core.Guard("fm", -1, func() error {
		p, res, err = fm.Partition(h, nil, cfg, rand.New(rand.NewSource(seed)))
		return err
	})
	if gerr != nil {
		return nil, FMResult{}, gerr
	}
	return p, res, err
}

// LSMCBipartition runs the Large-Step Markov Chain baseline (§II.C).
func LSMCBipartition(h *Hypergraph, cfg LSMCConfig, seed int64) (p *Partition, cut int, err error) {
	gerr := core.Guard("lsmc", -1, func() error {
		q, res, ferr := lsmc.Bipartition(h, cfg, rand.New(rand.NewSource(seed)))
		if ferr != nil {
			return ferr
		}
		p, cut = q, res.Cut
		return nil
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return p, cut, nil
}

// GordianQuadrisect runs the GORDIAN-style quadratic-placement
// quadrisection baseline of §IV.D. pads may be nil (a deterministic
// pseudo-random pad set is chosen).
func GordianQuadrisect(h *Hypergraph, pads []bool, seed int64) (*Partition, int, error) {
	p, res, err := placement.Quadrisect(h, pads, placement.Config{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, 0, err
	}
	return p, res.CutNets, nil
}

// SpectralBipartition runs spectral (EIG) bipartitioning: the
// Fiedler vector of the clique-model Laplacian split at the area
// median, optionally FM-refined (cfg.RefineFM).
func SpectralBipartition(h *Hypergraph, cfg SpectralConfig, seed int64) (p *Partition, cut int, err error) {
	gerr := core.Guard("spectral", -1, func() error {
		q, res, ferr := spectral.Bipartition(h, cfg, rand.New(rand.NewSource(seed)))
		if ferr != nil {
			return ferr
		}
		p, cut = q, res.Cut
		return nil
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return p, cut, nil
}

// GFMBipartition runs the Gradient Fiduccia–Mattheyses baseline of
// [32]: FM refinement alternating with gradient descent on the
// quadratic-wirelength relaxation.
func GFMBipartition(h *Hypergraph, cfg GFMConfig, seed int64) (p *Partition, cut int, err error) {
	gerr := core.Guard("gfm", -1, func() error {
		q, res, ferr := gfm.Bipartition(h, cfg, rand.New(rand.NewSource(seed)))
		if ferr != nil {
			return ferr
		}
		p, cut = q, res.Cut
		return nil
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return p, cut, nil
}

// RecursiveBisect produces a k-way (power-of-two) partition by
// recursive ML bipartitioning — the classical alternative to the
// paper's direct quadrisection.
func RecursiveBisect(h *Hypergraph, k int, cfg MLConfig, seed int64) (*Partition, error) {
	return RecursiveBisectCtx(context.Background(), h, k, cfg, seed)
}

// RecursiveBisectCtx is RecursiveBisect with cooperative
// cancellation: once ctx is done, every remaining sub-bipartition
// degrades to its projected-and-rebalanced form, so the returned
// k-way partition is always complete and valid.
func RecursiveBisectCtx(ctx context.Context, h *Hypergraph, k int, cfg MLConfig, seed int64) (*Partition, error) {
	return core.RecursiveBisectCtx(ctx, h, k, cfg, rand.New(rand.NewSource(seed)))
}

// VCycle performs iterated multilevel refinement of an existing
// bipartition via restricted coarsening (clusters never span blocks),
// repeating cycles while they improve.
func VCycle(h *Hypergraph, p *Partition, maxCycles int, cfg MLConfig, seed int64) (*Partition, int, error) {
	return VCycleCtx(context.Background(), h, p, maxCycles, cfg, seed)
}

// VCycleCtx is VCycle with cooperative cancellation; an interrupted
// run returns the best solution seen, never worse than the input.
func VCycleCtx(ctx context.Context, h *Hypergraph, p *Partition, maxCycles int, cfg MLConfig, seed int64) (*Partition, int, error) {
	return core.VCycleCtx(ctx, h, p, maxCycles, cfg, rand.New(rand.NewSource(seed)))
}

// TwoPhaseBipartition runs the classical two-phase FM of §II.C: one
// level of Match clustering, then FM on the coarse and fine netlists.
func TwoPhaseBipartition(h *Hypergraph, cfg MLConfig, seed int64) (*Partition, MLResult, error) {
	return core.TwoPhase(h, cfg, rand.New(rand.NewSource(seed)))
}

// Place runs the quadrisection-driven top-down global placer of
// [24]: recursive ML quadrisection with terminal propagation. pads
// (with padX/padY coordinates) may be nil.
func Place(h *Hypergraph, pads []bool, padX, padY []float64, cfg PlacerConfig, seed int64) (*Placement, error) {
	return placer.Place(h, pads, padX, padY, cfg, rand.New(rand.NewSource(seed)))
}

// PlacementHPWL returns the half-perimeter wirelength of coordinates
// x, y for h.
func PlacementHPWL(h *Hypergraph, x, y []float64) float64 { return placer.HPWL(h, x, y) }

// KwayPartition runs flat Sanchis-style multi-way FM from a random
// start (initial may be nil).
func KwayPartition(h *Hypergraph, initial *Partition, cfg KwayConfig, seed int64) (p *Partition, cut int, err error) {
	gerr := core.Guard("kway", -1, func() error {
		q, res, ferr := kway.Partition(h, initial, cfg, rand.New(rand.NewSource(seed)))
		if ferr != nil {
			return ferr
		}
		p, cut = q, res.CutNets
		return nil
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return p, cut, nil
}

// DefaultLimits returns the default parser resource limits (8Mi
// cells, 16Mi nets, 256Mi pins) used by ReadHGR/ReadNetD.
func DefaultLimits() Limits { return hypergraph.DefaultLimits() }

// ReadHGR parses an hMETIS-format hypergraph under DefaultLimits.
func ReadHGR(r io.Reader) (*Hypergraph, error) { return hypergraph.ReadHGR(r) }

// ReadHGRLimits is ReadHGR with explicit resource limits (zero fields
// select the defaults). Inputs exceeding a limit are rejected before
// proportional memory is allocated.
func ReadHGRLimits(r io.Reader, lim Limits) (*Hypergraph, error) {
	return hypergraph.ReadHGRLimits(r, lim)
}

// WriteHGR writes h in hMETIS format.
func WriteHGR(w io.Writer, h *Hypergraph) error { return hypergraph.WriteHGR(w, h) }

// NetDCircuit is a parsed ACM/SIGDA .netD netlist (hypergraph plus
// pad flags).
type NetDCircuit = hypergraph.NetDCircuit

// ReadNetD parses the ACM/SIGDA .netD benchmark format with an
// optional .are area file (nil for unit areas), under DefaultLimits.
func ReadNetD(netR, areR io.Reader) (*NetDCircuit, error) { return hypergraph.ReadNetD(netR, areR) }

// ReadNetDLimits is ReadNetD with explicit resource limits (zero
// fields select the defaults).
func ReadNetDLimits(netR, areR io.Reader, lim Limits) (*NetDCircuit, error) {
	return hypergraph.ReadNetDLimits(netR, areR, lim)
}

// WriteNetD writes h in .netD format (areW may be nil to skip the
// .are file; pads may be nil).
func WriteNetD(netW, areW io.Writer, h *Hypergraph, pads []bool) error {
	return hypergraph.WriteNetD(netW, areW, h, pads)
}

// ReadPartition reads a one-block-per-line partition file.
func ReadPartition(r io.Reader, numCells int) (*Partition, error) {
	return hypergraph.ReadPartition(r, numCells)
}

// WritePartition writes p one block index per line.
func WritePartition(w io.Writer, p *Partition) error { return hypergraph.WritePartition(w, p) }

// GenerateCircuit builds a deterministic synthetic benchmark circuit.
func GenerateCircuit(spec CircuitSpec) (*Circuit, error) { return netgen.Generate(spec) }

// BenchmarkSpecs returns the Table-I benchmark suite specs.
func BenchmarkSpecs() []CircuitSpec { return netgen.TableISpecs() }

// GenerateMesh builds a 2-D grid circuit; its straight-line bisection
// cut (MeshOptimalCut) is a geometric ground truth for quality tests.
func GenerateMesh(spec MeshSpec) (*Hypergraph, error) { return netgen.GenerateMesh(spec) }

// MeshOptimalCut returns the straight-line bisection cut of a mesh.
func MeshOptimalCut(spec MeshSpec) int { return netgen.MeshOptimalBisectionCut(spec) }

// NewPartitionForTest returns an all-zeros 2-way partition of n
// cells; exported for the CLI end-to-end tests (an intentionally
// unbalanced partition for cutverify's failure path).
func NewPartitionForTest(n int) *Partition {
	p := hypergraph.NewPartition(n, 2)
	p.Part[0] = 1 // two blocks present, grossly unbalanced
	return p
}
