package mlpart

// Telemetry integration tests: the -stats-json contract is that an
// armed Report is a pure function of (input, options, seed) once the
// wall-clock fields are stripped — in particular it must be
// byte-identical across Parallelism values, because the supervisor
// merges per-start child collectors in start order after the pool
// drains.

import (
	"encoding/json"
	"testing"
)

func reportBytes(t *testing.T, run func(opt Options) (*Partition, Info, error), opt Options) []byte {
	t.Helper()
	opt.Telemetry = NewTelemetry()
	if _, _, err := run(opt); err != nil {
		t.Fatal(err)
	}
	r := opt.Telemetry.Report()
	if r == nil {
		t.Fatal("armed collector returned nil report")
	}
	r.StripTimings()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTelemetryReportDeterministicAcrossParallelism(t *testing.T) {
	c := detCircuit(t)
	for _, entry := range []struct {
		name string
		run  func(opt Options) (*Partition, Info, error)
	}{
		{"bipartition", func(opt Options) (*Partition, Info, error) { return Bipartition(c.H, opt) }},
		{"quadrisect", func(opt Options) (*Partition, Info, error) { return Quadrisect(c.H, opt) }},
	} {
		t.Run(entry.name, func(t *testing.T) {
			base := Options{Seed: 42, Starts: 4}
			base.Parallelism = 1
			want := reportBytes(t, entry.run, base)
			for _, par := range []int{4, 8} {
				opt := base
				opt.Parallelism = par
				got := reportBytes(t, entry.run, opt)
				if string(got) != string(want) {
					t.Errorf("parallelism %d report differs from sequential run:\n%s\nvs\n%s",
						par, got, want)
				}
			}
		})
	}
}

// TestTelemetryReportDeterministicAcrossIntraParallelism pins the
// second half of the -stats-json contract: with the sub-round engine
// selected (IntraParallelism >= 1), the stripped report is
// byte-identical for every worker count and every Parallelism value.
// StripTimings zeroes the whole timings block — including the
// intra_workers and *_par_regions execution-profile counters that
// legitimately vary with pool width — so everything that remains is
// algorithmic payload.
func TestTelemetryReportDeterministicAcrossIntraParallelism(t *testing.T) {
	c := detCircuit(t)
	for _, entry := range []struct {
		name string
		run  func(opt Options) (*Partition, Info, error)
	}{
		{"bipartition", func(opt Options) (*Partition, Info, error) { return Bipartition(c.H, opt) }},
		{"quadrisect", func(opt Options) (*Partition, Info, error) { return Quadrisect(c.H, opt) }},
	} {
		t.Run(entry.name, func(t *testing.T) {
			base := Options{Seed: 42, Starts: 4, Parallelism: 1, IntraParallelism: 1}
			want := reportBytes(t, entry.run, base)
			for _, par := range []int{1, 4} {
				for _, intra := range []int{2, 8} {
					opt := base
					opt.Parallelism = par
					opt.IntraParallelism = intra
					got := reportBytes(t, entry.run, opt)
					if string(got) != string(want) {
						t.Errorf("parallelism %d intra %d report differs from the 1-worker run:\n%s\nvs\n%s",
							par, intra, got, want)
					}
				}
			}
		})
	}
}

func TestTelemetryReportContents(t *testing.T) {
	c := detCircuit(t)
	tel := NewTelemetry()
	opt := Options{Seed: 9, Starts: 3, Telemetry: tel}
	_, info, err := Bipartition(c.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := tel.Report()
	if r == nil {
		t.Fatal("nil report")
	}
	if r.Schema != "mlpart-stats/1" {
		t.Errorf("schema = %q", r.Schema)
	}
	if r.K != 2 || r.Seed != 9 || r.Starts != 3 {
		t.Errorf("header = k=%d seed=%d starts=%d", r.K, r.Seed, r.Starts)
	}
	if r.BestStart != info.BestStart || r.Cut != info.Cut || r.Levels != info.Levels {
		t.Errorf("report (best=%d cut=%d levels=%d) disagrees with Info (best=%d cut=%d levels=%d)",
			r.BestStart, r.Cut, r.Levels, info.BestStart, info.Cut, info.Levels)
	}
	if len(r.PerStart) != 3 {
		t.Fatalf("per_start has %d entries, want 3", len(r.PerStart))
	}
	for i, s := range r.PerStart {
		if s.Start != i {
			t.Errorf("per_start[%d].Start = %d (merge out of start order)", i, s.Start)
		}
		if s.Outcome != info.StartReports[i].Outcome.String() {
			t.Errorf("start %d outcome %q disagrees with Info %q", i, s.Outcome, info.StartReports[i].Outcome)
		}
		if len(s.Coarsening) == 0 {
			t.Errorf("start %d recorded no coarsening levels", i)
		}
		if len(s.Passes) == 0 {
			t.Errorf("start %d recorded no refinement passes", i)
		}
		for _, p := range s.Passes {
			if p.MovesKept > p.MovesTried || p.RolledBack != p.MovesTried-p.MovesKept {
				t.Errorf("start %d inconsistent pass %+v", i, p)
			}
		}
		if s.Timings.TotalNS <= 0 {
			t.Errorf("start %d has no total wall-clock time", i)
		}
	}
	// The best start's coarsening depth must agree with Info.Levels.
	if got := len(r.PerStart[r.BestStart].Coarsening); got != info.Levels {
		t.Errorf("best start has %d levels, Info reports %d", got, info.Levels)
	}
}

func TestTelemetryDisabledIsDefault(t *testing.T) {
	c := detCircuit(t)
	var tel *Telemetry
	if tel.Report() != nil {
		t.Fatal("nil collector must yield a nil report")
	}
	// A run without a collector must behave identically to one with:
	// same partition, same info.
	p1, i1, err := Bipartition(c.H, Options{Seed: 5, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, i2, err := Bipartition(c.H, Options{Seed: 5, Starts: 2, Telemetry: NewTelemetry()})
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, "telemetry on/off", p1, p2)
	if i1.Cut != i2.Cut || i1.Levels != i2.Levels || i1.BestStart != i2.BestStart {
		t.Errorf("info diverges with telemetry armed: %+v vs %+v", i1, i2)
	}
}
