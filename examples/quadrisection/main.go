// Quadrisection: the §IV.D experiment in miniature. Generates a
// synthetic circuit (biomed-like, scaled), pre-assigns its I/O pads
// to the four quadrants, and compares four-way partitioners:
//
//   - ML_F multilevel quadrisection (R = 1.0, T = 100,
//     sum-of-degrees gain) — the paper's method;
//   - the GORDIAN-style quadratic-placement split;
//   - flat 4-way FM and CLIP.
//
// The expected shape (Table IX): ML beats GORDIAN and flat FM/CLIP.
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	circuit, err := mlpart.GenerateCircuit(mlpart.CircuitSpec{
		Name: "biomed-mini", Cells: 1600, Nets: 1400, Pins: 5200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := circuit.H
	fmt.Println("circuit:", h)

	// ML quadrisection.
	_, info, err := mlpart.Quadrisect(h, mlpart.Options{Seed: 1, Starts: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s cut nets = %4d (sum-of-degrees %d)\n", "ML_F quadrisection:", info.Cut, info.SumDegrees)

	// GORDIAN-style analytic quadrisection with the circuit's pads.
	_, gcut, err := mlpart.GordianQuadrisect(h, circuit.Pads, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s cut nets = %4d\n", "GORDIAN (quadratic):", gcut)

	// Flat 4-way FM and CLIP, best of 3 starts each.
	for _, eng := range []struct {
		name   string
		engine mlpart.FMConfig
	}{
		{"flat 4-way FM:", mlpart.FMConfig{Engine: mlpart.EngineFM}},
		{"flat 4-way CLIP:", mlpart.FMConfig{Engine: mlpart.EngineCLIP}},
	} {
		best := -1
		for seed := int64(1); seed <= 3; seed++ {
			_, cut, err := mlpart.KwayPartition(h, nil, mlpart.KwayConfig{
				K: 4, Engine: eng.engine.Engine, Objective: mlpart.ObjectiveSumOfDegrees,
			}, seed)
			if err != nil {
				log.Fatal(err)
			}
			if best < 0 || cut < best {
				best = cut
			}
		}
		fmt.Printf("%-22s cut nets = %4d (best of 3)\n", eng.name, best)
	}
}
