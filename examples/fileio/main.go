// Fileio demonstrates the external interchange formats: it generates
// a benchmark circuit, writes it as an hMETIS .hgr file, reads it
// back, partitions it, and writes the partition file — the same
// round trip the cmd/mlpart CLI performs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mlpart"
)

func main() {
	dir, err := os.MkdirTemp("", "mlpart-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	circuit, err := mlpart.GenerateCircuit(mlpart.CircuitSpec{
		Name: "demo", Cells: 600, Nets: 700, Pins: 2300, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write the netlist in hMETIS format.
	hgrPath := filepath.Join(dir, "demo.hgr")
	f, err := os.Create(hgrPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := mlpart.WriteHGR(f, circuit.H); err != nil {
		log.Fatal(err)
	}
	f.Close()
	st, _ := os.Stat(hgrPath)
	fmt.Printf("wrote %s (%d bytes)\n", hgrPath, st.Size())

	// Read it back and verify.
	rf, err := os.Open(hgrPath)
	if err != nil {
		log.Fatal(err)
	}
	h, err := mlpart.ReadHGR(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded:", h)

	// Partition and persist the block assignment.
	p, info, err := mlpart.Bipartition(h, mlpart.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	partPath := filepath.Join(dir, "demo.part")
	pf, err := os.Create(partPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := mlpart.WritePartition(pf, p); err != nil {
		log.Fatal(err)
	}
	pf.Close()
	fmt.Printf("bipartitioned: cut = %d, wrote %s\n", info.Cut, partPath)

	// Read the partition back and re-measure the cut.
	qf, err := os.Open(partPath)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mlpart.ReadPartition(qf, h.NumCells())
	qf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-read partition: cut = %d (must match)\n", q.Cut(h))
}
