// Placement demonstrates the application that motivated the paper's
// quadrisection work (§III.C, [24]): a top-down standard-cell global
// placer driven by recursive multilevel quadrisection with terminal
// propagation, compared against the GORDIAN-style quadratic placer
// in half-perimeter wirelength (HPWL).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mlpart"
)

func main() {
	circuit, err := mlpart.GenerateCircuit(mlpart.CircuitSpec{
		Name: "s9234-mini", Cells: 1400, Nets: 1400, Pins: 3400, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := circuit.H
	fmt.Println("circuit:", h)

	// Top-down ML placement.
	pl, err := mlpart.Place(h, nil, nil, nil, mlpart.PlacerConfig{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s HPWL = %8.2f  (%d regions, depth %d)\n",
		"ML top-down placement:", pl.HPWL, pl.Regions, pl.Depth)

	// Without terminal propagation (ablation).
	noTP, err := mlpart.Place(h, nil, nil, nil,
		mlpart.PlacerConfig{TerminalPropagationOff: true}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s HPWL = %8.2f\n", "  …without terminal prop:", noTP.HPWL)

	// GORDIAN-style quadratic placement (coordinates via the
	// quadrisection result's X/Y fields are internal; re-derive a
	// placement through the public baseline and measure its 4-way cut
	// instead, then compare wirelength with a random placement).
	_, gcut, err := mlpart.GordianQuadrisect(h, circuit.Pads, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s 4-way cut = %d\n", "GORDIAN quadrisection:", gcut)

	// Random placement baseline for scale.
	rng := rand.New(rand.NewSource(1))
	rx := make([]float64, h.NumCells())
	ry := make([]float64, h.NumCells())
	for v := range rx {
		rx[v], ry[v] = rng.Float64(), rng.Float64()
	}
	fmt.Printf("%-28s HPWL = %8.2f\n", "random placement:", mlpart.PlacementHPWL(h, rx, ry))
}
