// Quickstart: build a small netlist hypergraph with the public API,
// bipartition it with the ML multilevel algorithm (CLIP engine,
// R = 0.5 — the paper's best configuration), and print the result.
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	// A toy circuit: two 8-cell blobs of logic joined by two nets.
	// Cells 0-7 form one natural cluster, 8-15 the other.
	b := mlpart.NewBuilder(16)
	for base := 0; base <= 8; base += 8 {
		for i := 0; i < 7; i++ {
			b.AddNet(base+i, base+i+1)     // a chain
			b.AddNet(base+i, base+(i+3)%8) // chords
		}
		b.AddNet(base, base+2, base+4, base+6) // a 4-pin net
	}
	b.AddNet(3, 11) // the only connections between the blobs
	b.AddNet(6, 14)
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", h)

	p, info, err := mlpart.Bipartition(h, mlpart.Options{Seed: 42, Starts: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-cut bipartitioning: cut = %d (want 2), levels = %d\n", info.Cut, info.Levels)
	fmt.Println("block of each cell:", p.Part)
	fmt.Println("block areas:", p.BlockAreas(h))

	// The same netlist through the flat FM baseline, for contrast.
	_, res, err := mlpart.FMBipartition(h, mlpart.FMConfig{}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat FM from one random start: cut = %d\n", res.Cut)
}
