// Meshoptimal demonstrates the repository's ground-truth workload: a
// 2-D mesh circuit whose optimal bisection cut is known by geometry
// (a straight line across the shorter dimension). Every engine is
// run against that optimum; on a 32×32 mesh all of them find it —
// a correctness validation no statistical benchmark can give. The
// quality differences the paper's tables establish appear on larger,
// less regular instances (see cmd/experiments).
package main

import (
	"fmt"
	"log"

	"mlpart"
)

func main() {
	spec := mlpart.MeshSpec{Width: 32, Height: 32}
	h, err := mlpart.GenerateMesh(spec)
	if err != nil {
		log.Fatal(err)
	}
	opt := mlpart.MeshOptimalCut(spec)
	fmt.Printf("32×32 mesh: %d cells, %d nets, optimal bisection cut = %d\n\n",
		h.NumCells(), h.NumNets(), opt)
	fmt.Printf("%-22s %8s %8s\n", "engine", "best", "vs opt")

	best := func(run func(seed int64) (int, error)) int {
		b := 1 << 30
		for seed := int64(0); seed < 5; seed++ {
			cut, err := run(seed)
			if err != nil {
				log.Fatal(err)
			}
			if cut < b {
				b = cut
			}
		}
		return b
	}
	report := func(name string, cut int) {
		fmt.Printf("%-22s %8d %7.2fx\n", name, cut, float64(cut)/float64(opt))
	}

	report("flat FM", best(func(seed int64) (int, error) {
		_, res, err := mlpart.FMBipartition(h, mlpart.FMConfig{}, seed)
		return res.Cut, err
	}))
	report("flat CLIP", best(func(seed int64) (int, error) {
		_, res, err := mlpart.FMBipartition(h, mlpart.FMConfig{Engine: mlpart.EngineCLIP}, seed)
		return res.Cut, err
	}))
	report("spectral (Lanczos)", best(func(seed int64) (int, error) {
		_, cut, err := mlpart.SpectralBipartition(h, mlpart.SpectralConfig{Lanczos: true}, seed)
		return cut, err
	}))
	report("ML_C (the paper)", best(func(seed int64) (int, error) {
		_, info, err := mlpart.Bipartition(h, mlpart.Options{Seed: seed})
		return info.Cut, err
	}))
}
