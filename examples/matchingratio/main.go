// Matchingratio reproduces the Figure-4 tradeoff on one synthetic
// circuit: the average ML_C cut as the matching ratio R falls from
// 1.0 (maximal matching, Chaco/Metis-style halving) to 0.1 (very slow
// coarsening, many hierarchy levels). Slower coarsening gives the
// refinement engine more levels and usually lower average cuts, at
// higher CPU cost — the paper's central parameter study.
package main

import (
	"fmt"
	"log"
	"time"

	"mlpart"
)

func main() {
	circuit, err := mlpart.GenerateCircuit(mlpart.CircuitSpec{
		Name: "avqsmall-mini", Cells: 2700, Nets: 2750, Pins: 9500, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := circuit.H
	fmt.Println("circuit:", h)
	fmt.Printf("%5s  %9s  %9s  %8s  %s\n", "R", "min cut", "avg cut", "CPU(s)", "levels")

	const runs = 8
	for r := 10; r >= 1; r -= 3 {
		ratio := float64(r) / 10
		minCut, sum, levels := 1<<30, 0, 0
		start := time.Now()
		for seed := int64(0); seed < runs; seed++ {
			_, info, err := mlpart.Bipartition(h, mlpart.Options{
				MatchingRatio: ratio, Seed: seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += info.Cut
			if info.Cut < minCut {
				minCut = info.Cut
			}
			levels = info.Levels
		}
		fmt.Printf("%5.1f  %9d  %9.1f  %8.2f  %d\n",
			ratio, minCut, float64(sum)/runs, time.Since(start).Seconds(), levels)
	}
}
