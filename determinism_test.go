package mlpart

// Determinism regression tests: the contract behind every experiment
// table is that a run is a pure function of (input, seed). These
// tests require *bit-identical* assignments — not just equal cut
// values — across repeated runs on a netgen instance, so any
// nondeterminism that slips past the static analyzer (cmd/mllint)
// still fails CI.

import "testing"

func detCircuit(t *testing.T) *Circuit {
	t.Helper()
	c, err := GenerateCircuit(CircuitSpec{
		Name:  "det-regression",
		Cells: 1200,
		Nets:  1500,
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func samePartition(t *testing.T, what string, a, b *Partition) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil partition (a=%v b=%v)", what, a == nil, b == nil)
	}
	if a.K != b.K || len(a.Part) != len(b.Part) {
		t.Fatalf("%s: shape differs: K %d vs %d, cells %d vs %d", what, a.K, b.K, len(a.Part), len(b.Part))
	}
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatalf("%s: assignments diverge at cell %d: block %d vs %d (same seed must be bit-identical)",
				what, v, a.Part[v], b.Part[v])
		}
	}
}

func TestBipartitionBitIdenticalPerSeed(t *testing.T) {
	c := detCircuit(t)
	opt := Options{Seed: 42, Starts: 2}
	p1, i1, err := Bipartition(c.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, i2, err := Bipartition(c.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, "bipartition", p1, p2)
	if i1.Cut != i2.Cut || i1.Levels != i2.Levels {
		t.Fatalf("info diverges: cut %d vs %d, levels %d vs %d", i1.Cut, i2.Cut, i1.Levels, i2.Levels)
	}
}

func TestQuadrisectBitIdenticalPerSeed(t *testing.T) {
	c := detCircuit(t)
	opt := Options{Seed: 7}
	p1, i1, err := Quadrisect(c.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, i2, err := Quadrisect(c.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, "quadrisect", p1, p2)
	if i1.Cut != i2.Cut || i1.SumDegrees != i2.SumDegrees {
		t.Fatalf("info diverges: cut %d vs %d, sum-degrees %d vs %d",
			i1.Cut, i2.Cut, i1.SumDegrees, i2.SumDegrees)
	}
}

// Different seeds must be able to produce different assignments —
// otherwise the tests above would pass trivially (e.g. if the seed
// were ignored and some fixed order used).
func TestSeedActuallyFlows(t *testing.T) {
	c := detCircuit(t)
	p1, _, err := Bipartition(c.H, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Bipartition(c.H, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1.Part {
		if p1.Part[v] != p2.Part[v] {
			return // diverged somewhere: seed is live
		}
	}
	t.Error("seeds 1 and 2 produced identical assignments; the seed appears dead")
}
