package mlpart

// The process-kill crash harness: mlpartd is launched as a real
// subprocess with a write-ahead journal, fed a burst of submissions,
// SIGKILLed at a journal-fault-injected point (-crash-after-appends
// arms the kill on the n-th durable append; a -chaos torn-write
// entry models the dying disk under it), restarted on the same
// journal, and audited: every job the killed process acknowledged
// must still resolve, nothing may run to a second terminal status,
// and the journal itself must pass statscheck -journal validation
// after the dust settles. `make crash-smoke` runs exactly this test.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mlpart/internal/journal"
	"mlpart/internal/telemetry"
)

// lockedBuf is an io.Writer safe to read while exec's copier
// goroutine is still appending (the daemon may outlive the read).
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *lockedBuf) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// daemon wraps one mlpartd subprocess.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stdout *lockedBuf
	stderr *lockedBuf
}

// startDaemon launches mlpartd on a loopback :0 port with the given
// extra flags and waits for it to publish its address via -addr-file.
func startDaemon(t *testing.T, bins, dir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	d := &daemon{
		cmd:    exec.Command(filepath.Join(bins, "mlpartd"), args...),
		stdout: &lockedBuf{},
		stderr: &lockedBuf{},
	}
	d.cmd.Stdout = d.stdout
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start mlpartd: %v", err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_ = d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.addr = strings.TrimSpace(string(data))
			return d
		}
		if d.cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("mlpartd never published its address\nstderr: %s", d.stderr)
	return nil
}

// wait blocks for process exit and reports whether it died by SIGKILL.
func (d *daemon) wait() (killed bool) {
	err := d.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
			return ws.Signaled() && ws.Signal() == syscall.SIGKILL
		}
	}
	return false
}

// submitBurst posts n jobs as fast as possible and returns the ids
// that were actually acknowledged with a 202 — the set the journal
// must never lose. Once the daemon dies mid-burst, transport errors
// and non-202s are expected; they just end the burst.
func submitBurst(t *testing.T, addr string, body []byte, n int, idemKey string) []string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	var acked []string
	for i := 0; i < n; i++ {
		req, err := http.NewRequest("POST", "http://"+addr+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if i == 0 && idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := client.Do(req)
		if err != nil {
			return acked // the kill landed
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			continue
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &v); err == nil && v.ID != "" {
			acked = append(acked, v.ID)
		}
	}
	return acked
}

// journalDumpDoc mirrors statscheck's mlpartd-journal/1 output.
type journalDumpDoc struct {
	Schema    string `json:"schema"`
	Frames    int    `json:"frames"`
	TornBytes int64  `json:"torn_bytes"`
	Truncated bool   `json:"truncated"`
	Open      int    `json:"open"`
	Jobs      []struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	} `json:"jobs"`
}

// dumpJournal runs statscheck -journal, which both validates the
// lifecycle invariants (exactly-once terminals included) and returns
// the folded per-job state.
func dumpJournal(t *testing.T, bins, path string) journalDumpDoc {
	t.Helper()
	out, err := exec.Command(filepath.Join(bins, "statscheck"), "-journal", path).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("statscheck -journal: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("statscheck -journal: %v", err)
	}
	var d journalDumpDoc
	if err := json.Unmarshal(out, &d); err != nil {
		t.Fatalf("journal dump: %v\n%s", err, out)
	}
	if d.Schema != "mlpartd-journal/1" {
		t.Fatalf("journal dump schema %q", d.Schema)
	}
	return d
}

// TestCmdMlpartdCrashRecovery is the harness proper: burst, SIGKILL
// at a deterministic journal position, restart, audit.
func TestCmdMlpartdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills subprocesses")
	}
	bins := buildTools(t)
	hgr, err := os.ReadFile(filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"hgr": string(hgr), "k": 2,
		"options": map[string]any{"seed": 1997, "starts": 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.wal")

	// Phase 1: the victim. It SIGKILLs itself the instant the 5th
	// journal record is durable — mid-burst by construction: with the
	// result cache off, closing a job takes three appends (accepted,
	// started, terminal), so by append 5 a second job has been
	// journaled whose terminal record could not have been written yet.
	// (The cache must be off here: a cache hit closes a duplicate in
	// two appends and can leave nothing open at the kill.)
	victim := startDaemon(t, bins, dir,
		"-journal", journal, "-crash-after-appends", "5", "-workers", "1", "-cache", "-1")
	acked := submitBurst(t, victim.addr, body, 8, "crash-key-0")
	if !victim.wait() {
		t.Fatalf("victim did not die by SIGKILL\nstderr: %s", victim.stderr)
	}
	if len(acked) == 0 {
		t.Fatal("burst produced no acknowledged jobs before the kill")
	}

	// Offline inspection of the post-crash journal: it must validate
	// (statscheck exits nonzero on any lifecycle violation) and carry
	// open debt.
	d1 := dumpJournal(t, bins, journal)
	if d1.Open == 0 {
		t.Errorf("post-crash journal has no open jobs: %+v", d1)
	}
	inJournal := make(map[string]bool)
	for _, j := range d1.Jobs {
		inJournal[j.ID] = true
	}
	for _, id := range acked {
		if !inJournal[id] {
			t.Errorf("acknowledged job %s missing from the journal (journal-before-acknowledge violated)", id)
		}
	}

	// Phase 2: the survivor. Replay must re-enqueue the open jobs and
	// keep every acknowledged id resolvable.
	svr := startDaemon(t, bins, dir, "-journal", journal, "-workers", "2")
	if !strings.Contains(svr.stderr.String(), "replayed") {
		t.Errorf("survivor stderr missing the replay line:\n%s", svr.stderr)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	for _, id := range acked {
		resp, err := client.Get("http://" + svr.addr + "/v1/jobs/" + id + "?wait_ms=45000")
		if err != nil {
			t.Fatalf("GET recovered job %s: %v", id, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accepted job %s lost across the crash: %s: %s", id, resp.Status, data)
		}
		var v struct {
			Status    string `json:"status"`
			Recovered bool   `json:"recovered"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("job %s view: %v\n%s", id, err, data)
		}
		if v.Status != "completed" {
			t.Errorf("recovered job %s ended %q, want completed: %s", id, v.Status, data)
		}
		if !v.Recovered {
			t.Errorf("job %s not marked recovered after the crash", id)
		}
	}

	// The idempotency key from the killed process still deduplicates.
	req, _ := http.NewRequest("POST", "http://"+svr.addr+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "crash-key-0")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rdata, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mlpartd-Idempotent") != "replay" {
		t.Errorf("idempotent replay across crash = %s (idempotent %q): %s",
			resp.Status, resp.Header.Get("X-Mlpartd-Idempotent"), rdata)
	}

	// Drain the survivor and validate its final ledger: recovered jobs
	// are accepted jobs, so the stats must balance across the restart.
	_ = svr.cmd.Process.Signal(syscall.SIGTERM)
	if killed := svr.wait(); killed {
		t.Fatal("survivor died by SIGKILL instead of draining")
	}
	stats := svr.stdout.Bytes()
	var rep struct {
		Recovered int64 `json:"recovered"`
		Accepted  int64 `json:"accepted"`
	}
	if err := json.Unmarshal(stats, &rep); err != nil {
		t.Fatalf("survivor stats: %v\n%s", err, stats)
	}
	if rep.Recovered == 0 || rep.Recovered > rep.Accepted {
		t.Errorf("survivor counters: recovered %d accepted %d", rep.Recovered, rep.Accepted)
	}
	check := exec.Command(filepath.Join(bins, "statscheck"))
	check.Stdin = bytes.NewReader(stats)
	if out, err := check.CombinedOutput(); err != nil {
		t.Fatalf("statscheck on survivor stats: %v\n%s", err, out)
	}

	// Final journal audit: every job closed exactly once — a double
	// completion would be a second terminal record, which statscheck
	// rejects — and no open debt remains.
	d2 := dumpJournal(t, bins, journal)
	if d2.Open != 0 {
		t.Errorf("journal still has %d open jobs after the drain: %+v", d2.Open, d2)
	}
	for _, id := range acked {
		found := false
		for _, j := range d2.Jobs {
			if j.ID == id {
				found = true
				if j.Status != "completed" {
					t.Errorf("journal closes %s as %q, want completed", id, j.Status)
				}
			}
		}
		if !found {
			t.Errorf("acknowledged job %s vanished from the compacted journal", id)
		}
	}
}

// TestCmdMlpartdCrashTornWrite kills the daemon under an injected
// torn write (-chaos journal.append:corrupt) — the dying-disk model —
// and verifies the restart truncates the torn tail instead of
// refusing to start.
func TestCmdMlpartdCrashTornWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills subprocesses")
	}
	bins := buildTools(t)
	hgr, err := os.ReadFile(filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"hgr": string(hgr), "k": 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.wal")

	// The 4th append tears: half a frame reaches disk, the journal
	// poisons, later submissions shed with 503.
	victim := startDaemon(t, bins, dir,
		"-journal", journal, "-workers", "1",
		"-chaos", "journal.append:corrupt:4")
	submitBurst(t, victim.addr, body, 6, "")
	_ = victim.cmd.Process.Kill()
	_ = victim.cmd.Wait()

	d1 := dumpJournal(t, bins, journal)
	if !d1.Truncated || d1.TornBytes == 0 {
		t.Errorf("journal shows no torn tail after the injected torn write: %+v", d1)
	}

	svr := startDaemon(t, bins, dir, "-journal", journal, "-workers", "2")
	if !strings.Contains(svr.stderr.String(), "1 torn tails") {
		t.Errorf("survivor did not report the torn tail:\n%s", svr.stderr)
	}
	_ = svr.cmd.Process.Signal(syscall.SIGTERM)
	svr.wait()
	check := exec.Command(filepath.Join(bins, "statscheck"))
	check.Stdin = bytes.NewReader(svr.stdout.Bytes())
	if out, err := check.CombinedOutput(); err != nil {
		t.Fatalf("statscheck on survivor stats: %v\n%s", err, out)
	}
	// The compacted journal materialized the truncation.
	if d2 := dumpJournal(t, bins, journal); d2.Truncated || d2.TornBytes != 0 || d2.Open != 0 {
		t.Errorf("journal not clean after recovery: %+v", d2)
	}
}

// TestCmdStatscheckJournal exercises the -journal inspection mode
// end to end: a healthy journal dumps cleanly, and each lifecycle
// violation the server's recovery relies on rejecting is rejected.
func TestCmdStatscheckJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()

	write := func(t *testing.T, name string, recs ...journal.Record) string {
		t.Helper()
		path := filepath.Join(dir, name)
		w, err := journal.OpenAppend(path, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	acc := func(id string, seq int) journal.Record {
		return journal.Record{Type: journal.TypeAccepted, ID: id, Seq: seq, K: 2,
			ContentHash: "c", Fingerprint: "f", Request: []byte(`{"hgr":"x"}`)}
	}

	good := write(t, "good.wal",
		acc("j-000000", 0),
		journal.Record{Type: journal.TypeStarted, ID: "j-000000", Seq: 0},
		journal.Record{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
		acc("j-000001", 1),
	)
	d := dumpJournal(t, bins, good)
	if d.Frames != 4 || d.Open != 1 || len(d.Jobs) != 2 {
		t.Errorf("good journal dump: %+v", d)
	}
	if d.Jobs[0].Status != "completed" || d.Jobs[1].Status != "open" {
		t.Errorf("good journal statuses: %+v", d.Jobs)
	}

	for _, tc := range []struct {
		name string
		want string
		recs []journal.Record
	}{
		{"double-terminal", "second terminal", []journal.Record{
			acc("j-000000", 0),
			{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
			{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "failed"},
		}},
		{"orphan-started", "precedes its accepted", []journal.Record{
			{Type: journal.TypeStarted, ID: "j-000009", Seq: 9},
		}},
		{"unknown-status", "unknown terminal status", []journal.Record{
			acc("j-000000", 0),
			{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "exploded"},
		}},
		{"duplicate-accepted", "duplicate accepted", []journal.Record{
			acc("j-000000", 0), acc("j-000000", 0),
		}},
	} {
		path := write(t, tc.name+".wal", tc.recs...)
		out, err := exec.Command(filepath.Join(bins, "statscheck"), "-journal", path).CombinedOutput()
		if err == nil {
			t.Errorf("%s: statscheck accepted an invalid journal:\n%s", tc.name, out)
		} else if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: rejection %q does not mention %q", tc.name, out, tc.want)
		}
	}

	// A torn tail is not a violation — offline inspection reports it.
	torn := write(t, "torn.wal", acc("j-000000", 0))
	f, err := os.OpenFile(torn, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if d := dumpJournal(t, bins, torn); !d.Truncated || d.TornBytes != 3 {
		t.Errorf("torn journal dump: %+v", d)
	}
}

// TestCmdMlpartdCrashBatched runs the kill-and-restart harness with
// the micro-batch lane armed: jobs acknowledged onto the batch lane
// must survive a SIGKILL exactly like solo jobs — recovered, re-run
// (always solo: a dead process's shared workspaces earn no trust),
// and byte-identical to a fresh computation on a daemon that never
// batched at all.
func TestCmdMlpartdCrashBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and kills subprocesses")
	}
	bins := buildTools(t)
	hgr, err := os.ReadFile(filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"hgr": string(hgr), "k": 2,
		"options": map[string]any{"seed": 7, "starts": 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	fetchResult := func(t *testing.T, addr, id string) ([]byte, string, bool) {
		t.Helper()
		client := &http.Client{Timeout: 60 * time.Second}
		resp, err := client.Get("http://" + addr + "/v1/jobs/" + id + "?wait_ms=45000")
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s: %s: %s", id, resp.Status, data)
		}
		var v struct {
			Status    string `json:"status"`
			Recovered bool   `json:"recovered"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("job %s view: %v\n%s", id, err, data)
		}
		resp, err = client.Get("http://" + addr + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatalf("GET result %s: %v", id, err)
		}
		res, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: %s: %s", id, resp.Status, res)
		}
		return res, v.Status, v.Recovered
	}

	// Reference: a daemon with batching off computes the canonical
	// result document for this submission.
	refDir := t.TempDir()
	ref := startDaemon(t, bins, refDir, "-workers", "1", "-cache", "-1")
	refIDs := submitBurst(t, ref.addr, body, 1, "")
	if len(refIDs) != 1 {
		t.Fatalf("reference daemon acknowledged %d jobs, want 1", len(refIDs))
	}
	want, st, _ := fetchResult(t, ref.addr, refIDs[0])
	if st != "completed" {
		t.Fatalf("reference job ended %q, want completed", st)
	}
	_ = ref.cmd.Process.Signal(syscall.SIGTERM)
	ref.wait()

	// Phase 1: the victim batches everything (the pin limit swallows
	// any smoke netlist) and dies on the 5th durable append — jobs are
	// acknowledged onto the batch lane and never closed.
	dir := t.TempDir()
	wal := filepath.Join(dir, "jobs.wal")
	victim := startDaemon(t, bins, dir,
		"-journal", wal, "-crash-after-appends", "5",
		"-workers", "1", "-cache", "-1",
		"-batch-pins", "1000000", "-batch-workers", "1", "-batch-delay", "50ms")
	acked := submitBurst(t, victim.addr, body, 8, "")
	if !victim.wait() {
		t.Fatalf("victim did not die by SIGKILL\nstderr: %s", victim.stderr)
	}
	if len(acked) == 0 {
		t.Fatal("burst produced no acknowledged jobs before the kill")
	}
	if d := dumpJournal(t, bins, wal); d.Open == 0 {
		t.Fatalf("post-crash journal has no open jobs: %+v", d)
	}

	// Phase 2: the survivor also has batching on, but recovered jobs
	// must take the solo lane regardless — and still produce the
	// reference bytes.
	svr := startDaemon(t, bins, dir,
		"-journal", wal, "-workers", "2", "-cache", "-1",
		"-batch-pins", "1000000", "-batch-workers", "1")
	recovered := 0
	for _, id := range acked {
		res, status, rec := fetchResult(t, svr.addr, id)
		if status != "completed" {
			t.Errorf("job %s ended %q after restart, want completed", id, status)
			continue
		}
		if !rec {
			t.Errorf("job %s not marked recovered", id)
		}
		recovered++
		if !bytes.Equal(res, want) {
			t.Errorf("job %s: recovered result differs from never-batched result (%d vs %d bytes)",
				id, len(res), len(want))
		}
	}
	if recovered == 0 {
		t.Fatal("no job was audited after the restart")
	}

	// Drain; the final ledger must balance under statscheck with the
	// batch counters present (recovered jobs ran solo, so batched may
	// be zero — the invariants must hold either way).
	_ = svr.cmd.Process.Signal(syscall.SIGTERM)
	if killed := svr.wait(); killed {
		t.Fatal("survivor died by SIGKILL instead of draining")
	}
	check := exec.Command(filepath.Join(bins, "statscheck"))
	check.Stdin = bytes.NewReader(svr.stdout.Bytes())
	if out, err := check.CombinedOutput(); err != nil {
		t.Fatalf("statscheck on survivor stats: %v\n%s", err, out)
	}
}

// TestCmdStatscheckBatchCounters feeds statscheck service snapshots
// exercising the batch-lane invariants: batched is bounded by
// accepted, and batched work implies at least one flush.
func TestCmdStatscheckBatchCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	snap := telemetry.ServiceReport{
		Schema:   telemetry.ServiceSchemaVersion,
		Accepted: 5, Completed: 5,
		Batched: 3, BatchFlushes: 2, EventsDropped: 1,
		CacheMisses: 5, QueueCap: 8, UptimeNS: 5,
	}
	run := func(t *testing.T, r telemetry.ServiceReport) ([]byte, error) {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(filepath.Join(bins, "statscheck"))
		cmd.Stdin = bytes.NewReader(data)
		return cmd.CombinedOutput()
	}
	if out, err := run(t, snap); err != nil {
		t.Errorf("balanced batch snapshot rejected: %v\n%s", err, out)
	}
	over := snap
	over.Batched = 9
	if out, err := run(t, over); err == nil {
		t.Errorf("batched > accepted snapshot accepted:\n%s", out)
	} else if !strings.Contains(string(out), "batched") {
		t.Errorf("unexpected rejection: %s", out)
	}
	noFlush := snap
	noFlush.BatchFlushes = 0
	if out, err := run(t, noFlush); err == nil {
		t.Errorf("batched work with zero flushes accepted:\n%s", out)
	} else if !strings.Contains(string(out), "batch_flushes") {
		t.Errorf("unexpected rejection: %s", out)
	}
	neg := snap
	neg.EventsDropped = -1
	if out, err := run(t, neg); err == nil {
		t.Errorf("negative events_dropped accepted:\n%s", out)
	}
}

// TestCmdStatscheckRecoveryCounters feeds statscheck service
// snapshots with crash-recovery counters: a balanced cross-restart
// ledger passes, a recovered count exceeding accepted fails.
func TestCmdStatscheckRecoveryCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	snap := telemetry.ServiceReport{
		Schema:   telemetry.ServiceSchemaVersion,
		Accepted: 3, Completed: 3,
		Recovered: 2, ReplayedTerminal: 4, TornTailTruncated: 1,
		JournalAppendErrors: 1, IdempotentReplays: 2,
		CacheMisses: 3, QueueCap: 8, UptimeNS: 5,
	}
	run := func(t *testing.T, r telemetry.ServiceReport) ([]byte, error) {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(filepath.Join(bins, "statscheck"))
		cmd.Stdin = bytes.NewReader(data)
		return cmd.CombinedOutput()
	}
	if out, err := run(t, snap); err != nil {
		t.Errorf("balanced cross-restart snapshot rejected: %v\n%s", err, out)
	}
	bad := snap
	bad.Recovered = 9
	if out, err := run(t, bad); err == nil {
		t.Errorf("recovered > accepted snapshot accepted:\n%s", out)
	} else if !strings.Contains(string(out), "recovered") {
		t.Errorf("unexpected rejection: %s", out)
	}
	neg := snap
	neg.ReplayedTerminal = -1
	if out, err := run(t, neg); err == nil {
		t.Errorf("negative replayed_terminal accepted:\n%s", out)
	}
}
