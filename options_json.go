package mlpart

// Canonical Options serialization: a stable JSON encoding of the
// result-affecting configuration, plus a content fingerprint over it.
// This is the wire format the mlpartd service accepts for job options
// and the second half of its result-cache key (the first half is the
// hypergraph content hash); later PRs can reuse it anywhere a run
// configuration must travel between processes.
//
// Canonical form: defaults are materialized (normalize), fields are
// emitted in the fixed order of optionsJSON, and the encoding carries
// no insignificant whitespace beyond encoding/json's choices — so two
// semantically equal Options always produce byte-identical canonical
// JSON. Decoding is strict: unknown fields, NaN or infinite floats,
// and unknown engine names are rejected, never silently dropped.
//
// Fingerprint excludes Parallelism deliberately: the multi-start
// supervisor guarantees bit-identical results for every Parallelism
// value, so two jobs differing only in worker count must share a
// cache entry. Runtime-only knobs that cannot change the solution
// (Audit, Inject, Telemetry) are likewise excluded; Audit is still
// serialized because it changes the error surface, but it does not
// contribute to the fingerprint.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"mlpart/internal/fm"
)

// optionsJSON is the canonical wire layout. Field order is the
// canonical order; every field is always emitted.
type optionsJSON struct {
	Engine           string  `json:"engine"`
	MatchingRatio    float64 `json:"matching_ratio"`
	Threshold        int     `json:"threshold"`
	Tolerance        float64 `json:"tolerance"`
	Seed             int64   `json:"seed"`
	Starts           int     `json:"starts"`
	Parallelism      int     `json:"parallelism"`
	IntraParallelism int     `json:"intra_parallelism"`
	MaxRetries       int     `json:"max_retries"`
	AttemptTimeoutNS int64   `json:"attempt_timeout_ns"`
	Audit            bool    `json:"audit"`
}

// EngineName returns the canonical lowercase name of an engine, as
// accepted by ParseEngine and the CLI -engine flag.
func EngineName(e fm.Engine) (string, error) {
	switch e {
	case EngineFM:
		return "fm", nil
	case EngineCLIP:
		return "clip", nil
	case EnginePROP:
		return "prop", nil
	case EngineCLIPPROP:
		return "clprop", nil
	}
	return "", fmt.Errorf("mlpart: unknown engine %d", int(e))
}

// ParseEngine parses a canonical engine name (clip, fm, prop,
// clprop) — the inverse of EngineName and the parser behind the CLI
// -engine flag and the options JSON "engine" field.
func ParseEngine(s string) (fm.Engine, error) {
	switch s {
	case "clip":
		return EngineCLIP, nil
	case "fm":
		return EngineFM, nil
	case "prop":
		return EnginePROP, nil
	case "clprop":
		return EngineCLIPPROP, nil
	}
	return 0, fmt.Errorf("mlpart: unknown engine %q (want clip, fm, prop, or clprop)", s)
}

// checkFinite rejects the float values JSON cannot round-trip and the
// pipeline cannot consume.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("mlpart: options %s is NaN", name)
	}
	if math.IsInf(v, 0) {
		return fmt.Errorf("mlpart: options %s is infinite", name)
	}
	return nil
}

// canonical maps o onto the wire layout after materializing defaults,
// so semantically equal Options encode byte-identically.
func (o Options) canonical() (optionsJSON, error) {
	if err := checkFinite("matching_ratio", o.MatchingRatio); err != nil {
		return optionsJSON{}, err
	}
	if err := checkFinite("tolerance", o.Tolerance); err != nil {
		return optionsJSON{}, err
	}
	n, err := o.normalize()
	if err != nil {
		return optionsJSON{}, err
	}
	name, err := EngineName(n.Engine)
	if err != nil {
		return optionsJSON{}, err
	}
	return optionsJSON{
		Engine:           name,
		MatchingRatio:    n.MatchingRatio,
		Threshold:        n.Threshold,
		Tolerance:        n.Tolerance,
		Seed:             n.Seed,
		Starts:           n.Starts,
		Parallelism:      n.Parallelism,
		IntraParallelism: n.IntraParallelism,
		MaxRetries:       n.MaxRetries,
		AttemptTimeoutNS: n.AttemptTimeout.Nanoseconds(),
		Audit:            n.Audit,
	}, nil
}

// CanonicalJSON returns the canonical JSON encoding of o's
// serializable configuration. Defaults are materialized first, so an
// explicit Options{MatchingRatio: 0.5} and the zero value encode to
// the same bytes. Runtime-only fields (Inject, Telemetry) are not
// part of the format.
func (o Options) CanonicalJSON() ([]byte, error) {
	c, err := o.canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// ParseOptionsJSON decodes an options document produced by
// CanonicalJSON (or hand-written in the same schema). Decoding is
// strict: unknown fields are an error (a misspelled knob must never
// be silently ignored), engine names are validated, and NaN or
// infinite floats are rejected. Absent fields take their zero value
// and therefore their documented defaults.
func ParseOptionsJSON(data []byte) (Options, error) {
	var c optionsJSON
	// An absent engine selects the Go API's zero value (EngineFM),
	// keeping JSON and struct semantics aligned.
	c.Engine = "fm"
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Options{}, fmt.Errorf("mlpart: options JSON: %w", err)
	}
	// A second document in the same payload is malformed input, not
	// extra configuration.
	if dec.More() {
		return Options{}, fmt.Errorf("mlpart: options JSON: trailing data after document")
	}
	engine, err := ParseEngine(c.Engine)
	if err != nil {
		return Options{}, err
	}
	if err := checkFinite("matching_ratio", c.MatchingRatio); err != nil {
		return Options{}, err
	}
	if err := checkFinite("tolerance", c.Tolerance); err != nil {
		return Options{}, err
	}
	if c.AttemptTimeoutNS < 0 {
		return Options{}, fmt.Errorf("mlpart: options JSON: negative attempt_timeout_ns %d", c.AttemptTimeoutNS)
	}
	o := Options{
		Engine:           engine,
		MatchingRatio:    c.MatchingRatio,
		Threshold:        c.Threshold,
		Tolerance:        c.Tolerance,
		Seed:             c.Seed,
		Starts:           c.Starts,
		Parallelism:      c.Parallelism,
		IntraParallelism: c.IntraParallelism,
		MaxRetries:       c.MaxRetries,
		AttemptTimeout:   time.Duration(c.AttemptTimeoutNS),
		Audit:            c.Audit,
	}
	// Surface range errors (negative starts/parallelism) at decode
	// time rather than at run time.
	if _, err := o.normalize(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Fingerprint returns a stable hex digest of o's result-affecting
// configuration: the sha256 of the canonical JSON with Parallelism
// forced to zero (the supervisor's results are bit-identical across
// Parallelism, so worker count must not split cache entries). Two
// Options with equal fingerprints — run on the same hypergraph and
// block count — produce byte-identical partitions.
func (o Options) Fingerprint() (string, error) {
	c, err := o.canonical()
	if err != nil {
		return "", err
	}
	c.Parallelism = 0
	// IntraParallelism changes the refinement algorithm at the 0-vs->=1
	// boundary but is bit-identical across all values >= 1, so the
	// fingerprint keeps the boundary and collapses the worker count.
	if c.IntraParallelism > 1 {
		c.IntraParallelism = 1
	}
	// Audit only adds invariant checks — it can never change the
	// solution — so audited and unaudited runs share a fingerprint.
	c.Audit = false
	data, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
