//go:build !race

package mlpart

const raceDetectorEnabled = false
