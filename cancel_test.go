package mlpart

// Tests for the robustness layer: cooperative cancellation at every
// pipeline stage and panic recovery at the public API boundary. The
// contract under test: a cancelled run returns the best feasible
// partition found so far with Info.Interrupted set (not an error), and
// an internal invariant panic surfaces as a typed *InternalError.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mlpart/internal/core"
	"mlpart/internal/kway"
)

// stepContext is a context.Context that reports cancellation after a
// fixed number of Err() polls. Because the pipeline is deterministic
// for a fixed seed, poll k of a budgeted run sees exactly the state
// poll k of an unbudgeted run saw — so sweeping the budget cancels the
// run at every stage it passes through (coarsening, coarsest
// partitioning, refinement at each level). Cancellation is monotonic
// and the counter is mutex-guarded so the hook is race-detector clean.
type stepContext struct {
	mu     sync.Mutex
	budget int // polls that return nil before cancellation
	calls  int
	done   bool
}

func (c *stepContext) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepContext) Done() <-chan struct{}       { return nil }
func (c *stepContext) Value(key any) any           { return nil }
func (c *stepContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.done || c.calls > c.budget {
		c.done = true
		return context.Canceled
	}
	return nil
}

func (c *stepContext) polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestCancellationAtEveryStage sweeps the cancellation point across
// the whole pipeline for both entry points. Whatever the stage —
// during coarsening (small budgets), coarsest partitioning, or any
// refinement level (larger budgets) — the result must be a valid,
// balance-respecting partition with Interrupted set and no error.
func TestCancellationAtEveryStage(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "cancel", Cells: 600, Nets: 700, Pins: 2300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	variants := []struct {
		name string
		k    int
		run  func(ctx context.Context) (*Partition, Info, error)
	}{
		{"bipartition", 2, func(ctx context.Context) (*Partition, Info, error) {
			return BipartitionCtx(ctx, h, Options{Seed: 7})
		}},
		{"quadrisect", 4, func(ctx context.Context) (*Partition, Info, error) {
			return QuadrisectCtx(ctx, h, Options{Seed: 7})
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			bound := Balance(h, v.k, 0.1)
			// Learn the total poll count N from an unbudgeted run.
			probe := &stepContext{budget: int(^uint(0) >> 1)}
			full, info, err := v.run(probe)
			if err != nil {
				t.Fatal(err)
			}
			if info.Interrupted {
				t.Fatal("uncancelled run reported Interrupted")
			}
			if !full.IsBalanced(h, bound) {
				t.Fatal("uncancelled run unbalanced")
			}
			n := probe.polls()
			if n < 10 {
				t.Fatalf("only %d context polls in a full run; cancellation is barely wired in", n)
			}
			budgets := []int{0, 1, 2, 3, 5, 8, n / 4, n / 2, 3 * n / 4, n - 1}
			seen := map[int]bool{}
			for _, k := range budgets {
				if k < 0 || k >= n || seen[k] {
					continue
				}
				seen[k] = true
				sc := &stepContext{budget: k}
				p, info, err := v.run(sc)
				if err != nil {
					t.Errorf("budget %d: unexpected error %v", k, err)
					continue
				}
				if p == nil {
					t.Errorf("budget %d: nil partition", k)
					continue
				}
				if !info.Interrupted {
					t.Errorf("budget %d/%d: Interrupted not set", k, n)
				}
				if err := p.Validate(h.NumCells()); err != nil {
					t.Errorf("budget %d: %v", k, err)
				}
				if !p.IsBalanced(h, bound) {
					t.Errorf("budget %d: cancelled run violates the balance bound", k)
				}
			}
		})
	}
}

// TestCancelledBeforeStart: even a context that is done before the
// call must yield a feasible (projected-and-rebalanced) partition.
func TestCancelledBeforeStart(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "pre", Cells: 300, Nets: 340, Pins: 1100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, info, err := BipartitionCtx(ctx, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Interrupted {
		t.Error("Interrupted not set")
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Error("unbalanced")
	}
}

// TestVCycleCancelNeverWorse: a cancelled V-cycle returns a solution
// no worse than its input.
func TestVCycleCancelNeverWorse(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "vc", Cells: 400, Nets: 450, Pins: 1450, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	p, info, err := Bipartition(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q, cut, err := VCycleCtx(ctx, h, p, 3, MLConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut > info.Cut {
		t.Errorf("cancelled V-cycle cut %d worse than input %d", cut, info.Cut)
	}
	if err := q.Validate(h.NumCells()); err != nil {
		t.Error(err)
	}
}

// panicAfter returns a Stop hook that behaves normally for n polls and
// then panics, simulating an internal invariant failure at a chosen
// depth in the pipeline.
func panicAfter(n int) func() bool {
	calls := 0
	return func() bool {
		calls++
		if calls > n {
			panic("injected fault")
		}
		return false
	}
}

// TestPanicRecoveryFlatEngine: a panic inside the flat FM engine must
// surface as a typed *InternalError, not crash the caller.
func TestPanicRecoveryFlatEngine(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "pr", Cells: 200, Nets: 220, Pins: 700, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = FMBipartition(c.H, FMConfig{Stop: panicAfter(0)}, 1)
	if err == nil {
		t.Fatal("expected an error from a panicking engine")
	}
	var ierr *InternalError
	if !errors.As(err, &ierr) {
		t.Fatalf("error %v is not a *InternalError", err)
	}
	if ierr.Stage != "fm" {
		t.Errorf("stage = %q, want fm", ierr.Stage)
	}
	if len(ierr.Stack) == 0 {
		t.Error("no stack captured")
	}
}

// TestPanicRecoveryML: panics injected at different depths of the ML
// pipeline (coarsest partitioning vs refinement) must be recovered at
// the stage boundary and returned as a *PanicError alongside a
// feasible, balanced partition built from the surviving work.
func TestPanicRecoveryML(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "prml", Cells: 500, Nets: 560, Pins: 1800, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	// Learn the total Stop-poll count of a clean run; with a fixed seed
	// the pipeline is deterministic, so poll i of the faulty run is the
	// same poll i. Poll 1 happens while partitioning the coarsest
	// netlist, the last poll during refinement of H_0.
	polls := 0
	count := MLConfig{Refine: FMConfig{Stop: func() bool { polls++; return false }}}
	if _, _, err := core.BipartitionCtx(context.Background(), h, count, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	if polls < 4 {
		t.Fatalf("only %d Stop polls in a full run", polls)
	}
	for _, tc := range []struct {
		name      string
		after     int
		wantStage string
	}{
		{"coarsest", 0, "coarsest-partition"},
		{"refine", polls - 1, "refine"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := MLConfig{Refine: FMConfig{Stop: panicAfter(tc.after)}}
			p, _, err := core.BipartitionCtx(context.Background(), h, cfg, rand.New(rand.NewSource(2)))
			if err == nil {
				t.Fatal("expected a recovered panic")
			}
			pe, ok := core.AsPanicError(err)
			if !ok {
				t.Fatalf("error %v is not a *PanicError", err)
			}
			if pe.Stage != tc.wantStage {
				t.Errorf("stage = %q, want %q", pe.Stage, tc.wantStage)
			}
			if p == nil {
				t.Fatal("no partition alongside the recovered panic")
			}
			if err := p.Validate(h.NumCells()); err != nil {
				t.Error(err)
			}
			if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
				t.Error("degraded partition violates the balance bound")
			}
		})
	}
}

// TestPanicRecoveryQuadrisect: same contract for the k-way pipeline.
func TestPanicRecoveryQuadrisect(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "prq", Cells: 500, Nets: 560, Pins: 1800, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	cfg := core.QuadConfig{Refine: kway.Config{K: 4, Stop: panicAfter(3)}}
	p, _, err := core.QuadrisectCtx(context.Background(), h, cfg, rand.New(rand.NewSource(2)))
	if err == nil {
		t.Fatal("expected a recovered panic")
	}
	pe, ok := core.AsPanicError(err)
	if !ok {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Stage == "" {
		t.Error("empty stage")
	}
	if p == nil {
		t.Fatal("no partition alongside the recovered panic")
	}
	if err := p.Validate(h.NumCells()); err != nil {
		t.Error(err)
	}
	if !p.IsBalanced(h, Balance(h, 4, 0.1)) {
		t.Error("degraded partition violates the balance bound")
	}
}

// TestRecursiveBisectPanicRecovery: a recovered panic inside one
// sub-bipartition must not abort the recursion — the k-way result is
// complete and the first panic is reported alongside it.
func TestRecursiveBisectPanicRecovery(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "prr", Cells: 400, Nets: 440, Pins: 1400, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	cfg := MLConfig{Refine: FMConfig{Stop: panicAfter(2)}}
	p, err := core.RecursiveBisectCtx(context.Background(), h, 4, cfg, rand.New(rand.NewSource(2)))
	if err == nil {
		t.Fatal("expected a recovered panic")
	}
	if _, ok := core.AsPanicError(err); !ok {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if p == nil {
		t.Fatal("no partition alongside the recovered panic")
	}
	if err := p.Validate(h.NumCells()); err != nil {
		t.Error(err)
	}
}
