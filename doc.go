// Package mlpart is a from-scratch Go implementation of the ML
// multilevel circuit partitioning algorithm of Alpert, Huang and
// Kahng ("Multilevel Circuit Partitioning", DAC 1997), together with
// every substrate the paper depends on:
//
//   - netlist hypergraphs with CSR storage, clusterings, induced
//     coarsenings, projections and cut metrics;
//   - Fiduccia–Mattheyses bipartitioning with LIFO/FIFO/random gain
//     buckets, the CLIP engine of Dutt & Deng, Krishnamurthy-style
//     lookahead, boundary refinement and early pass termination;
//   - the Match connectivity-driven coarsening algorithm with its
//     matching-ratio control of hierarchy depth;
//   - Sanchis-style multi-way FM for quadrisection, with net-cut and
//     sum-of-degrees gains and pre-assigned pads;
//   - a Large-Step Markov Chain baseline and a GORDIAN-style
//     quadratic-placement quadrisection baseline;
//   - a deterministic synthetic benchmark generator standing in for
//     the 23 ACM/SIGDA circuits of the paper's Table I; and
//   - an experiment harness regenerating every table and figure of
//     the paper's evaluation section.
//
// The one-call entry points are Bipartition and Quadrisect:
//
//	h := mlpart.NewBuilder(4).
//		AddNet(0, 1).AddNet(1, 2).AddNet(2, 3).
//		MustBuild()
//	p, info, err := mlpart.Bipartition(h, mlpart.Options{Seed: 1})
//	fmt.Println(info.Cut, p.Part)
//
// Finer control (engine choice, matching ratio, bucket order,
// lookahead, multi-start) is available through the re-exported
// configuration types; see MLConfig, FMConfig, KwayConfig.
package mlpart
