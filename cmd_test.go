package mlpart

// End-to-end tests of the command-line tools: each binary is built
// once into a temp dir and driven through its primary flows.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "mlpart-bins")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"mlpart", "benchgen", "experiments", "cutverify", "drawplace", "statscheck", "mlpartd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return buildDir
}

func TestCmdBenchgenAndMlpart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()

	// benchgen writes .hgr and .pads files.
	out, err := exec.Command(filepath.Join(bins, "benchgen"),
		"-scale", "tiny", "-dir", dir, "-only", "balu,bm1").CombinedOutput()
	if err != nil {
		t.Fatalf("benchgen: %v\n%s", err, out)
	}
	for _, f := range []string{"balu.hgr", "balu.pads", "bm1.hgr", "bm1.pads"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("benchgen did not write %s: %v", f, err)
		}
	}

	// mlpart bipartitions the generated netlist.
	partPath := filepath.Join(dir, "balu.part")
	out, err = exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(dir, "balu.hgr"),
		"-out", partPath, "-k", "2", "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("mlpart: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cut ") {
		t.Errorf("mlpart output missing cut report:\n%s", out)
	}
	// The partition file must parse and cover every cell.
	pf, err := os.Open(partPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	hf, err := os.Open(filepath.Join(dir, "balu.hgr"))
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	h, err := ReadHGR(hf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ReadPartition(pf, h.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 2 {
		t.Errorf("K = %d, want 2", p.K)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Error("CLI partition unbalanced")
	}

	// netD-format flow: generate, then partition from .netD input.
	ndDir := t.TempDir()
	if out, err := exec.Command(filepath.Join(bins, "benchgen"),
		"-scale", "tiny", "-dir", ndDir, "-only", "balu", "-format", "netd").CombinedOutput(); err != nil {
		t.Fatalf("benchgen netd: %v\n%s", err, out)
	}
	for _, f := range []string{"balu.netD", "balu.are", "balu.pads"} {
		if _, err := os.Stat(filepath.Join(ndDir, f)); err != nil {
			t.Fatalf("benchgen netd did not write %s: %v", f, err)
		}
	}
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(ndDir, "balu.netD")).CombinedOutput(); err != nil {
		t.Fatalf("mlpart netD input: %v\n%s", err, out)
	}

	// Quadrisection through the CLI.
	out, err = exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(dir, "bm1.hgr"), "-k", "4", "-engine", "fm").CombinedOutput()
	if err != nil {
		t.Fatalf("mlpart -k 4: %v\n%s", err, out)
	}

	// Error paths.
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(dir, "balu.hgr"), "-k", "3").CombinedOutput(); err == nil {
		t.Errorf("-k 3 should fail, got:\n%s", out)
	}
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(dir, "balu.hgr"), "-engine", "magic").CombinedOutput(); err == nil {
		t.Errorf("bad engine should fail, got:\n%s", out)
	}
	if _, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", filepath.Join(dir, "missing.hgr")).CombinedOutput(); err == nil {
		t.Error("missing input should fail")
	}
}

// TestCmdMlpartTimeout: a -timeout that expires immediately must
// still write a feasible best-so-far partition, report "interrupted"
// on stderr, and exit 0 — interruption is graceful degradation, not
// failure.
func TestCmdMlpartTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	if out, err := exec.Command(filepath.Join(bins, "benchgen"),
		"-scale", "tiny", "-dir", dir, "-only", "balu").CombinedOutput(); err != nil {
		t.Fatalf("benchgen: %v\n%s", err, out)
	}
	hgr := filepath.Join(dir, "balu.hgr")
	part := filepath.Join(dir, "balu.part")
	out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", hgr, "-out", part, "-timeout", "1ns", "-starts", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("mlpart -timeout 1ns should still exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "interrupted") {
		t.Errorf("no interruption note on stderr:\n%s", out)
	}
	hf, err := os.Open(hgr)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	h, err := ReadHGR(hf)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := os.Open(part)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	p, err := ReadPartition(pf, h.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Error("best-so-far partition violates the balance bound")
	}

	// -audit composes with the normal flow.
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", hgr, "-audit").CombinedOutput(); err != nil {
		t.Fatalf("mlpart -audit: %v\n%s", err, out)
	}
}

// TestCmdStatsJSON drives the telemetry flags end to end: -stats-json
// must produce a schema-valid report that statscheck accepts, the
// timing-stripped report must be byte-identical across -parallel
// values, and -v must print the per-level summary.
func TestCmdStatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	hgr := filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr")

	stripped := make(map[int]string)
	for _, par := range []int{1, 4} {
		stats := filepath.Join(dir, fmt.Sprintf("stats-p%d.json", par))
		out, err := exec.Command(filepath.Join(bins, "mlpart"),
			"-in", hgr, "-out", os.DevNull, "-starts", "3",
			"-parallel", fmt.Sprint(par), "-stats-json", stats, "-v").CombinedOutput()
		if err != nil {
			t.Fatalf("mlpart -stats-json (parallel %d): %v\n%s", par, err, out)
		}
		if !strings.Contains(string(out), "best start") || !strings.Contains(string(out), "level 0:") {
			t.Errorf("-v summary missing from stderr:\n%s", out)
		}
		// statscheck validates and emits the stripped canonical form.
		sout, err := exec.Command(filepath.Join(bins, "statscheck"),
			"-in", stats, "-strip").Output()
		if err != nil {
			t.Fatalf("statscheck (parallel %d): %v", par, err)
		}
		stripped[par] = string(sout)
	}
	if stripped[1] != stripped[4] {
		t.Errorf("stripped stats differ between -parallel 1 and 4:\n%s\n---\n%s",
			stripped[1], stripped[4])
	}
	var r Report
	if err := json.Unmarshal([]byte(stripped[1]), &r); err != nil {
		t.Fatalf("stripped output is not a Report: %v", err)
	}
	if r.Schema != "mlpart-stats/1" || len(r.PerStart) != 3 {
		t.Errorf("unexpected report header: %+v", r)
	}

	// A corrupted report must fail validation.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"mlpart-stats/0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(filepath.Join(bins, "statscheck"), "-in", bad).CombinedOutput(); err == nil {
		t.Errorf("statscheck accepted a bad schema:\n%s", out)
	}

	// Profiles write and are non-empty.
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", hgr, "-out", os.DevNull,
		"-cpuprofile", cpu, "-memprofile", mem).CombinedOutput(); err != nil {
		t.Fatalf("mlpart -cpuprofile: %v\n%s", err, out)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestCmdCutverify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	if out, err := exec.Command(filepath.Join(bins, "benchgen"),
		"-scale", "tiny", "-dir", dir, "-only", "balu").CombinedOutput(); err != nil {
		t.Fatalf("benchgen: %v\n%s", err, out)
	}
	hgr := filepath.Join(dir, "balu.hgr")
	part := filepath.Join(dir, "balu.part")
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", hgr, "-out", part).CombinedOutput(); err != nil {
		t.Fatalf("mlpart: %v\n%s", err, out)
	}
	out, err := exec.Command(filepath.Join(bins, "cutverify"),
		"-hgr", hgr, "-part", part).CombinedOutput()
	if err != nil {
		t.Fatalf("cutverify: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "balance:         OK") {
		t.Errorf("cutverify output:\n%s", out)
	}
	// A deliberately unbalanced partition must fail.
	badPart := filepath.Join(dir, "bad.part")
	h, err := os.Open(hgr)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := ReadHGR(h)
	h.Close()
	if err != nil {
		t.Fatal(err)
	}
	bad := NewPartitionForTest(hg.NumCells())
	bf, err := os.Create(badPart)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePartition(bf, bad); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if out, err := exec.Command(filepath.Join(bins, "cutverify"),
		"-hgr", hgr, "-part", badPart, "-k", "2").CombinedOutput(); err == nil {
		t.Errorf("unbalanced partition accepted:\n%s", out)
	}
}

func TestCmdDrawplace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	if out, err := exec.Command(filepath.Join(bins, "benchgen"),
		"-scale", "tiny", "-dir", dir, "-only", "balu").CombinedOutput(); err != nil {
		t.Fatalf("benchgen: %v\n%s", err, out)
	}
	svg := filepath.Join(dir, "balu.svg")
	if out, err := exec.Command(filepath.Join(bins, "drawplace"),
		"-in", filepath.Join(dir, "balu.hgr"), "-out", svg).CombinedOutput(); err != nil {
		t.Fatalf("drawplace: %v\n%s", err, out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "</svg>") {
		t.Errorf("output is not an SVG:\n%.200s", data)
	}
	if !strings.Contains(string(data), "circle") {
		t.Error("SVG has no cells")
	}
}

func TestCmdExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)

	out, err := exec.Command(filepath.Join(bins, "experiments"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table2", "table9", "fig4", "placement-hpwl"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list output missing %s", id)
		}
	}

	out, err = exec.Command(filepath.Join(bins, "experiments"),
		"-table", "table3", "-runs", "2", "-circuits", "balu").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -table table3: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "MIN-CLIP") || !strings.Contains(string(out), "balu") {
		t.Errorf("table3 output malformed:\n%s", out)
	}

	if out, err := exec.Command(filepath.Join(bins, "experiments"),
		"-table", "no-such-table").CombinedOutput(); err == nil {
		t.Errorf("unknown table should fail, got:\n%s", out)
	}
}

func TestCmdExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	run := func() string {
		out, err := exec.Command(filepath.Join(bins, "experiments"),
			"-table", "table2", "-runs", "3", "-circuits", "balu,bm1", "-seed", "7").CombinedOutput()
		if err != nil {
			t.Fatalf("experiments: %v\n%s", err, out)
		}
		// Strip the timing line, which varies.
		lines := strings.Split(string(out), "\n")
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(l, "(") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different experiment output:\n%s\n---\n%s", a, b)
	}
}

// TestCmdMlpartdSmoke drives the daemon's loopback self-test — a real
// HTTP submit/wait/result flow, a byte-identical cache hit, and a
// self-delivered SIGTERM through the production drain path — then
// pipes the final stats JSON into statscheck via stdin, covering the
// mlpartd-stats/1 validation path and the stdin input mode at once.
func TestCmdMlpartdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	hgr := filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr")

	out, err := exec.Command(filepath.Join(bins, "mlpartd"),
		"-smoke", "-in", hgr).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("mlpartd -smoke: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("mlpartd -smoke: %v", err)
	}

	var rep struct {
		Schema    string `json:"schema"`
		Accepted  int64  `json:"accepted"`
		Completed int64  `json:"completed"`
		CacheHits int64  `json:"cache_hits"`
		Draining  bool   `json:"draining"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("smoke stats output: %v\n%s", err, out)
	}
	if rep.Schema != "mlpartd-stats/1" || rep.Accepted != 2 || rep.Completed != 2 ||
		rep.CacheHits != 1 || !rep.Draining {
		t.Errorf("unexpected smoke stats: %+v", rep)
	}

	// statscheck consumes the service snapshot from stdin.
	cmd := exec.Command(filepath.Join(bins, "statscheck"))
	cmd.Stdin = strings.NewReader(string(out))
	if sout, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("statscheck < mlpartd stats: %v\n%s", err, sout)
	} else if !strings.Contains(string(sout), "service") {
		t.Errorf("statscheck did not report the service path:\n%s", sout)
	}

	// A snapshot violating the accounting ledger must fail.
	bad := strings.Replace(string(out), `"completed": 2`, `"completed": 1`, 1)
	if bad == string(out) {
		t.Fatalf("could not corrupt the snapshot:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(bins, "statscheck"), "-in", "-")
	cmd.Stdin = strings.NewReader(bad)
	if sout, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("statscheck accepted a ledger-violating snapshot:\n%s", sout)
	} else if !strings.Contains(string(sout), "accounting") {
		t.Errorf("unexpected rejection message:\n%s", sout)
	}
}

// TestCmdStatscheckStdinRunReport pipes an mlpart run report through
// statscheck's stdin path: schema auto-detection must route it to the
// mlpart-stats/1 validator.
func TestCmdStatscheckStdinRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	hgr := filepath.Join("cmd", "mlpart", "testdata", "smoke.hgr")
	stats := filepath.Join(dir, "stats.json")
	if out, err := exec.Command(filepath.Join(bins, "mlpart"),
		"-in", hgr, "-out", os.DevNull, "-stats-json", stats).CombinedOutput(); err != nil {
		t.Fatalf("mlpart -stats-json: %v\n%s", err, out)
	}
	data, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bins, "statscheck"))
	cmd.Stdin = strings.NewReader(string(data))
	if sout, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("statscheck < run report: %v\n%s", err, sout)
	} else if !strings.Contains(string(sout), "starts") {
		t.Errorf("stdin run report not validated as run report:\n%s", sout)
	}
}
