package mlpart

// Chaos suite: sweep every registered fault-injection site crossed
// with every fault kind through both public entry points, with audits
// on, and assert the robustness contract: no crash, a valid balanced
// partition whenever err == nil, and a typed *InternalError or
// *AuditError otherwise. Run under -race by `make chaos`.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mlpart/internal/faultinject"
)

// siteFires reports whether a site can trigger on the given entry
// point (fm.pass is bipartition-only, kway.refine quadrisection-only;
// coarsen.score and fm.subround live on the intra-parallel paths, so
// they need IntraParallelism > 0 — and the sub-round engine replaces
// serial FM/CLIP for bipartitioning only, the k-way engine has no
// parallel refinement; the server.* sites live in mlpartd's
// admission/job paths and the journal.* sites in its write-ahead log,
// so none of them is ever reached through the library entry points).
func siteFires(site faultinject.Site, k, intra int) bool {
	switch site {
	case faultinject.SiteFMPass:
		return k == 2
	case faultinject.SiteKwayRefine:
		return k == 4
	case faultinject.SiteCoarsenScore:
		return intra > 0
	case faultinject.SiteFMSubround:
		return intra > 0 && k == 2
	case faultinject.SiteServerAdmit, faultinject.SiteServerJob,
		faultinject.SiteServerBatch, faultinject.SiteServerEvents,
		faultinject.SiteJournalAppend, faultinject.SiteJournalReplay:
		return false
	}
	return true
}

func TestChaosSweep(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "chaos", Cells: 300, Nets: 340, Pins: 1100, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	for _, k := range []int{2, 4} {
		for _, intra := range []int{0, 2} {
			for _, site := range faultinject.AllSites {
				for _, kind := range faultinject.Kinds {
					site, kind, k, intra := site, kind, k, intra
					t.Run(fmt.Sprintf("k%d/intra%d/%s/%s", k, intra, site, kind), func(t *testing.T) {
						t.Parallel()
						opt := Options{
							Seed:             61,
							Starts:           2,
							IntraParallelism: intra,
							Audit:            true,
							Inject: &FaultPlan{
								Seed:    7,
								Entries: []FaultEntry{faultinject.On(site, kind, 1)},
							},
						}
						var p *Partition
						var info Info
						if k == 2 {
							p, info, err = BipartitionCtx(context.Background(), h, opt)
						} else {
							p, info, err = QuadrisectCtx(context.Background(), h, opt)
						}
						checkChaosOutcome(t, h, k, p, info, err)
						if len(info.StartReports) != opt.Starts {
							t.Fatalf("got %d start reports, want %d", len(info.StartReports), opt.Starts)
						}
						if info.Interrupted {
							t.Errorf("synthetic fault must not set Info.Interrupted (caller ctx was never done)")
						}
						faults := 0
						for _, r := range info.StartReports {
							if r.Start < 0 || r.Start >= opt.Starts {
								t.Errorf("report start index %d out of range", r.Start)
							}
							faults += r.Faults
						}
						if siteFires(site, k, intra) && faults == 0 {
							t.Errorf("site %s armed but no faults fired", site)
						}
						if !siteFires(site, k, intra) && faults != 0 {
							t.Errorf("site %s fired %d times on k=%d intra=%d, want 0", site, faults, k, intra)
						}
					})
				}
			}
		}
	}
}

// checkChaosOutcome asserts the contract shared by every chaos combo.
func checkChaosOutcome(t *testing.T, h *Hypergraph, k int, p *Partition, info Info, err error) {
	t.Helper()
	if err != nil {
		var ierr *InternalError
		var aerr *AuditError
		if !errors.As(err, &ierr) && !errors.As(err, &aerr) {
			t.Fatalf("untyped chaos error: %v", err)
		}
		if p == nil {
			if info.BestStart != -1 {
				t.Fatalf("nil partition but BestStart = %d", info.BestStart)
			}
			return
		}
	}
	if p == nil {
		t.Fatal("nil partition with nil error")
	}
	if info.BestStart < 0 {
		t.Fatalf("non-nil partition but BestStart = %d", info.BestStart)
	}
	if verr := p.Validate(h.NumCells()); verr != nil {
		t.Fatalf("invalid partition: %v", verr)
	}
	if !p.IsBalanced(h, Balance(h, k, 0.1)) {
		t.Fatalf("unbalanced partition (k=%d)", k)
	}
}

// TestChaosRetriesExhaust pins the hard-failure path: a panic armed
// at core.project refires on every reseeded retry (OnHit is
// deterministic), so every start must exhaust its attempts and the
// run must surface a typed *InternalError with no partition.
func TestChaosRetriesExhaust(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "chaosfail", Cells: 200, Nets: 230, Pins: 740, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Seed:   62,
		Starts: 2,
		Audit:  true,
		Inject: &FaultPlan{
			Entries: []FaultEntry{faultinject.On(faultinject.SiteCoreProject, FaultPanic, 1)},
		},
	}
	p, info, err := Bipartition(c.H, opt)
	if p != nil {
		t.Fatal("want nil partition when every start fails")
	}
	var ierr *InternalError
	if !errors.As(err, &ierr) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if info.BestStart != -1 {
		t.Fatalf("BestStart = %d, want -1", info.BestStart)
	}
	for _, r := range info.StartReports {
		if r.Outcome != StartFailed {
			t.Errorf("start %d outcome %v, want %v", r.Start, r.Outcome, StartFailed)
		}
		if r.Attempts < 2 {
			t.Errorf("start %d made %d attempts, want a retry (>= 2)", r.Start, r.Attempts)
		}
		if r.Err == nil {
			t.Errorf("start %d failed without an error", r.Start)
		}
	}
}

// TestChaosCorruptionCaughtByAudit pins that a corrupted solution at
// a refinement pass boundary is detected by the audit layer as a
// typed *AuditError (or absorbed into a still-valid solution) —
// never silently returned as a corrupt "success".
func TestChaosCorruptionCaughtByAudit(t *testing.T) {
	c, err := GenerateCircuit(CircuitSpec{Name: "chaoscor", Cells: 300, Nets: 340, Pins: 1100, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	opt := Options{
		Seed:       63,
		Starts:     1,
		MaxRetries: -1, // no reseeded retry: surface the first attempt's fate
		Audit:      true,
		Inject: &FaultPlan{
			Entries: []FaultEntry{faultinject.On(faultinject.SiteFMPass, FaultCorrupt, 1)},
		},
	}
	p, _, err := Bipartition(h, opt)
	if err != nil {
		var aerr *AuditError
		var ierr *InternalError
		if !errors.As(err, &aerr) && !errors.As(err, &ierr) {
			t.Fatalf("corruption surfaced as untyped error: %v", err)
		}
		return
	}
	// The corruption was absorbed by later passes; the result must be
	// fully valid.
	if p == nil {
		t.Fatal("nil partition with nil error")
	}
	if verr := p.Validate(h.NumCells()); verr != nil {
		t.Fatalf("invalid partition: %v", verr)
	}
	if !p.IsBalanced(h, Balance(h, 2, 0.1)) {
		t.Fatal("unbalanced partition")
	}
}
