package coarsen

import (
	"math/rand"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/intrapar"
)

func sameClustering(a, b *hypergraph.Clustering) bool {
	if a.NumClusters != b.NumClusters || len(a.CellToCluster) != len(b.CellToCluster) {
		return false
	}
	for i := range a.CellToCluster {
		if a.CellToCluster[i] != b.CellToCluster[i] {
			return false
		}
	}
	return true
}

// TestMatchParIdenticalToSerial is the tentpole contract of the
// parallel sweep: for every worker count, every configuration axis
// (ratio, exclusions, restricted coarsening, stop hooks) and matched
// RNG streams, the parallel sweep's clustering equals the serial
// sweep's bit for bit, and both consume the same number of RNG draws.
func TestMatchParIdenticalToSerial(t *testing.T) {
	type variant struct {
		name string
		mk   func(h *hypergraph.Hypergraph, rng *rand.Rand) Config
	}
	variants := []variant{
		{"default", func(h *hypergraph.Hypergraph, rng *rand.Rand) Config { return Config{} }},
		{"ratio-0.4", func(h *hypergraph.Hypergraph, rng *rand.Rand) Config { return Config{Ratio: 0.4} }},
		{"exclude", func(h *hypergraph.Hypergraph, rng *rand.Rand) Config {
			ex := make([]bool, h.NumCells())
			for i := range ex {
				ex[i] = rng.Intn(5) == 0
			}
			return Config{Exclude: ex}
		}},
		{"same-block", func(h *hypergraph.Hypergraph, rng *rand.Rand) Config {
			return Config{SameBlockOnly: hypergraph.RandomPartition(h, 2, 0.1, rng)}
		}},
		{"stop-after-100", func(h *hypergraph.Hypergraph, rng *rand.Rand) Config {
			polls := 0
			return Config{Stop: func() bool { polls++; return polls > 100 }}
		}},
	}
	for seed := int64(1); seed <= 3; seed++ {
		setup := rand.New(rand.NewSource(seed))
		// Sizes straddle the 512-slot score block so multi-block sweeps
		// and the final partial block are both exercised.
		h := randomH(setup, 300+setup.Intn(1000), 600+setup.Intn(1500), 6)
		for _, vr := range variants {
			serialCfg := vr.mk(h, rand.New(rand.NewSource(seed+100)))
			serialRng := rand.New(rand.NewSource(seed))
			want, err := Match(h, serialCfg, serialRng)
			if err != nil {
				t.Fatal(err)
			}
			wantNext := serialRng.Int63()
			for _, workers := range []int{1, 2, 8} {
				pool := intrapar.New(workers)
				cfg := vr.mk(h, rand.New(rand.NewSource(seed+100)))
				cfg.Par = pool
				parRng := rand.New(rand.NewSource(seed))
				got, err := Match(h, cfg, parRng)
				pool.Close()
				if err != nil {
					t.Fatal(err)
				}
				if !sameClustering(want, got) {
					t.Fatalf("seed %d %s workers %d: clustering differs from serial", seed, vr.name, workers)
				}
				if gotNext := parRng.Int63(); gotNext != wantNext {
					t.Fatalf("seed %d %s workers %d: RNG stream diverged", seed, vr.name, workers)
				}
			}
		}
	}
}

// TestMatchParWorkspaceReuse checks the parallel scratch's reuse
// invariant: a workspace carried across differently-sized parallel
// Match calls never changes results.
func TestMatchParWorkspaceReuse(t *testing.T) {
	setup := rand.New(rand.NewSource(7))
	big := randomH(setup, 900, 1400, 6)
	small := randomH(setup, 60, 100, 4)
	pool := intrapar.New(4)
	defer pool.Close()
	ws := &Workspace{}
	for i, h := range []*hypergraph.Hypergraph{big, small, big} {
		want, err := Match(h, Config{Par: pool}, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Match(h, Config{Par: pool, WS: ws}, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		if !sameClustering(want, got) {
			t.Fatalf("run %d: workspace reuse changed the clustering", i)
		}
	}
}
