package coarsen

import "math/rand"

// Workspace holds the per-vertex scratch memory of Match: the visit
// permutation, the candidate-score accumulator and the neighbor list.
// Threading one Workspace through the Match calls of a multilevel run
// makes the matching sweep allocation-free in steady state — only the
// returned Clustering (which the hierarchy retains) is freshly
// allocated per call.
//
// Ownership rule: a Workspace belongs to exactly one goroutine and one
// pipeline attempt at a time. It must never be stored in a package
// level variable or shared across concurrent attempts; the multi-start
// supervisor creates one per attempt. The zero value is ready to use.
type Workspace struct {
	perm      []int
	connAcc   []float64
	neighbors []int32

	// Parallel-sweep scratch (match_par.go): the speculative-partner
	// array plus one private conn accumulator and neighbor list per
	// pool worker.
	spec []int32
	par  parScratch
}

// parScratch is the per-worker scratch of the parallel sweep. Each
// worker index owns one accumulator (held to the same all-zeros
// invariant as the serial one) and one neighbor list; slots are
// indexed by the pool's range index, so no two concurrent ranges
// share state.
type parScratch struct {
	connAcc   [][]float64
	neighbors [][]int32
}

// parBuffers sizes the parallel-sweep scratch for n cells and the
// given worker count, reusing prior capacity. Freshly grown
// accumulators are zero-filled by make, matching the invariant.
func (w *Workspace) parBuffers(n, workers int) ([]int32, *parScratch) {
	if cap(w.spec) < n {
		w.spec = make([]int32, n)
	}
	w.spec = w.spec[:n]
	p := &w.par
	for len(p.connAcc) < workers {
		p.connAcc = append(p.connAcc, nil)
		p.neighbors = append(p.neighbors, make([]int32, 0, 64))
	}
	for i := 0; i < workers; i++ {
		if cap(p.connAcc[i]) < n {
			p.connAcc[i] = make([]float64, n)
		}
		p.connAcc[i] = p.connAcc[i][:n]
	}
	return w.spec, p
}

// permInto fills buf with the same permutation rand.Perm(n) would
// return, consuming exactly the same rng values (one Intn per element,
// replicating rand.Perm's insertion algorithm). Keeping the RNG stream
// identical is what makes the workspace path bit-identical to the
// allocating one.
func permInto(buf []int, n int, rng *rand.Rand) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}

// grab returns the workspace to use for one Match call: the caller's,
// or a throwaway one so the non-workspace path shares the same code.
func (c Config) grab() *Workspace {
	if c.WS != nil {
		return c.WS
	}
	return &Workspace{}
}

// scoreBuffers sizes the accumulator and neighbor list for n cells.
// The accumulator relies on an invariant rather than a clear: Match
// zeroes every touched entry during the best-candidate scan, so
// between calls the array is all zeros; only growth allocates (and
// make() zero-fills). The differential oracle tests pin the invariant
// by comparing workspace and workspace-free runs bit for bit.
func (w *Workspace) scoreBuffers(n int) (connAcc []float64, neighbors []int32) {
	if cap(w.connAcc) < n {
		w.connAcc = make([]float64, n)
	}
	w.connAcc = w.connAcc[:n]
	if w.neighbors == nil {
		w.neighbors = make([]int32, 0, 64)
	}
	return w.connAcc, w.neighbors[:0]
}
