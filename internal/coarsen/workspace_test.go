package coarsen

import (
	"math/rand"
	"testing"
)

// TestWorkspaceMatchBitIdentical pins the workspace contract: Match
// with a reused Workspace — including one carrying dirty buffers from
// a differently-sized previous call — consumes the RNG identically and
// returns the same clustering as the allocating path.
func TestWorkspaceMatchBitIdentical(t *testing.T) {
	ws := &Workspace{}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		n := 60 + int(seed%4)*50 // shrink and regrow the buffers
		h := randomH(rng, n, n+15, 5)
		for _, ratio := range []float64{1.0, 0.5} {
			cFresh, err := Match(h, Config{Ratio: ratio}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			cWS, err := Match(h, Config{Ratio: ratio, WS: ws}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if cFresh.NumClusters != cWS.NumClusters {
				t.Fatalf("seed %d R=%v: cluster counts %d vs %d", seed, ratio, cFresh.NumClusters, cWS.NumClusters)
			}
			for v := range cFresh.CellToCluster {
				if cFresh.CellToCluster[v] != cWS.CellToCluster[v] {
					t.Fatalf("seed %d R=%v: clusterings diverge at cell %d", seed, ratio, v)
				}
			}
		}
	}
}

// TestMatchSteadyStateAllocations is the regression test for the
// hoisted candidate-score buffers: once the workspace is warm, a Match
// call allocates only the returned Clustering (the struct and its
// CellToCluster slice) — zero allocations per vertex — so the
// per-call allocation count must not grow with the instance size.
func TestMatchSteadyStateAllocations(t *testing.T) {
	measure := func(n int) float64 {
		rng := rand.New(rand.NewSource(9))
		h := randomH(rng, n, n+n/10, 5)
		ws := &Workspace{}
		cfg := Config{Ratio: 1.0, WS: ws}
		mrng := rand.New(rand.NewSource(1))
		if _, err := Match(h, cfg, mrng); err != nil { // warm the workspace
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := Match(h, cfg, mrng); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(200), measure(2000)
	// The Clustering escape is 2 allocations; leave headroom for the
	// runtime's accounting jitter but nothing n-proportional.
	if small > 4 || large > 4 {
		t.Fatalf("steady-state Match allocations: n=200 → %.0f, n=2000 → %.0f; want ≤ 4 (zero per vertex)", small, large)
	}
	if large > small {
		t.Fatalf("Match allocations grow with n: %.0f → %.0f", small, large)
	}
}
