package coarsen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
	"mlpart/internal/telemetry"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestConnDefinition(t *testing.T) {
	// Cells 0,1 share a 2-pin net and a 3-pin net (with 2).
	h := hypergraph.NewBuilder(3).
		AddNet(0, 1).
		AddNet(0, 1, 2).
		MustBuild()
	// conn(0,1) = (1/(2-1) + 1/(3-1)) / (1+1) = 1.5/2 = 0.75
	if got := Conn(h, 0, 1, 10); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Conn(0,1) = %v, want 0.75", got)
	}
	// conn(0,2) = (1/2) / 2 = 0.25
	if got := Conn(h, 0, 2, 10); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Conn(0,2) = %v, want 0.25", got)
	}
	// No shared net → 0.
	h2 := hypergraph.NewBuilder(4).AddNet(0, 1).AddNet(2, 3).MustBuild()
	if got := Conn(h2, 0, 2, 10); got != 0 {
		t.Errorf("Conn(0,2) = %v, want 0", got)
	}
}

func TestConnIgnoresLargeNets(t *testing.T) {
	b := hypergraph.NewBuilder(12)
	pins := make([]int, 12)
	for i := range pins {
		pins[i] = i
	}
	b.AddNet(pins...) // 12-pin net
	b.AddNet(0, 1)
	h := b.MustBuild()
	// With the default cutoff of 10, only the 2-pin net counts:
	// conn(0,1) = 1/2.
	if got := Conn(h, 0, 1, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Conn = %v, want 0.5", got)
	}
	// conn(0,2) shares only the big net → 0.
	if got := Conn(h, 0, 2, 10); got != 0 {
		t.Errorf("Conn = %v, want 0", got)
	}
}

func TestConnAreaPreference(t *testing.T) {
	// Identical net structure, different areas: the smaller pair has
	// higher connectivity.
	h := hypergraph.NewBuilder(4).
		SetArea(0, 1).SetArea(1, 1).SetArea(2, 10).SetArea(3, 10).
		AddNet(0, 1).AddNet(2, 3).
		MustBuild()
	if Conn(h, 0, 1, 10) <= Conn(h, 2, 3, 10) {
		t.Error("smaller-area pair should have higher conn")
	}
}

func TestMatchPairsStronglyConnected(t *testing.T) {
	// Two tight pairs joined loosely: {0,1} share 3 nets, {2,3} share
	// 3 nets, one weak net joins 1-2. Match with R=1 must pair (0,1)
	// and (2,3).
	b := hypergraph.NewBuilder(4)
	for i := 0; i < 3; i++ {
		b.AddNet(0, 1)
		b.AddNet(2, 3)
	}
	b.AddNet(1, 2)
	h := b.MustBuild()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := Match(h, Config{Ratio: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumClusters != 2 {
			t.Fatalf("seed %d: %d clusters, want 2", seed, c.NumClusters)
		}
		if c.CellToCluster[0] != c.CellToCluster[1] || c.CellToCluster[2] != c.CellToCluster[3] {
			t.Errorf("seed %d: wrong pairing %v", seed, c.CellToCluster)
		}
	}
}

func TestMatchRatioControlsCoarseningSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomH(rng, 400, 900, 4)
	// R = 1: roughly n/2 clusters. R = 0.5: roughly 3n/4 clusters.
	c1, err := Match(h, Config{Ratio: 1.0}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	c05, err := Match(h, Config{Ratio: 0.5}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumClusters >= c05.NumClusters {
		t.Errorf("R=1 gave %d clusters, R=0.5 gave %d; slower coarsening must keep more",
			c1.NumClusters, c05.NumClusters)
	}
	// R=0.5 matches ~half the cells: clusters ≈ n − matched/2 = 3n/4.
	want := 3 * 400 / 4
	if diff := c05.NumClusters - want; diff < -40 || diff > 40 {
		t.Errorf("R=0.5 gave %d clusters, want ≈ %d", c05.NumClusters, want)
	}
}

func TestMatchValidClustering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		h := randomH(rng, n, n*2, 5)
		for _, ratio := range []float64{0.33, 0.5, 1.0} {
			c, err := Match(h, Config{Ratio: ratio}, rng)
			if err != nil {
				return false
			}
			if c.Validate(n) != nil {
				return false
			}
			// Cluster sizes are 1 or 2 (matching-based clustering).
			for _, s := range c.ClusterSizes() {
				if s < 1 || s > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatchReducesAtMostHalf(t *testing.T) {
	// Even with R = 1, clusters ≥ ceil(n/2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		h := randomH(rng, n, n, 4)
		c, err := Match(h, Config{Ratio: 1}, rng)
		if err != nil {
			return false
		}
		return c.NumClusters >= (n+1)/2 && c.NumClusters <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatchIsolatedCellsBecomeSingletons(t *testing.T) {
	// Cells 3,4 have no nets at all.
	h := hypergraph.NewBuilder(5).AddNet(0, 1).AddNet(1, 2).MustBuild()
	rng := rand.New(rand.NewSource(3))
	c, err := Match(h, Config{Ratio: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(5); err != nil {
		t.Fatal(err)
	}
	sizes := c.ClusterSizes()
	if sizes[c.CellToCluster[3]] != 1 || sizes[c.CellToCluster[4]] != 1 {
		t.Error("isolated cells must be singletons")
	}
}

func TestMatchEmptyHypergraph(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	c, err := Match(h, Config{}, rand.New(rand.NewSource(0)))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters != 0 {
		t.Errorf("NumClusters = %d, want 0", c.NumClusters)
	}
}

func TestCoarsenInduces(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomH(rng, 100, 200, 4)
	coarse, c, err := Coarsen(h, Config{Ratio: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumCells() != c.NumClusters {
		t.Errorf("coarse cells %d != clusters %d", coarse.NumCells(), c.NumClusters)
	}
	if coarse.TotalArea() != h.TotalArea() {
		t.Error("area not conserved")
	}
	if coarse.NumCells() >= h.NumCells() {
		t.Error("coarsening did not shrink the instance")
	}
}

func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio != 1.0 || c.MaxNetSize != 10 {
		t.Errorf("defaults = %+v", c)
	}
	for _, bad := range []Config{{Ratio: -0.2}, {Ratio: 1.5}, {MaxNetSize: 1}} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
}

func TestMatchDeterministicPerSeed(t *testing.T) {
	h := randomH(rand.New(rand.NewSource(5)), 120, 240, 4)
	a, err := Match(h, Config{Ratio: 0.5}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Match(h, Config{Ratio: 0.5}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.CellToCluster {
		if a.CellToCluster[v] != b.CellToCluster[v] {
			t.Fatal("Match not deterministic for a fixed seed")
		}
	}
}

func TestMatchExcludeNeverMatched(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := randomH(rng, 60, 150, 4)
	exclude := make([]bool, 60)
	for v := 0; v < 60; v += 5 {
		exclude[v] = true
	}
	c, err := Match(h, Config{Ratio: 1, Exclude: exclude}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sizes := c.ClusterSizes()
	for v := 0; v < 60; v += 5 {
		if sizes[c.CellToCluster[v]] != 1 {
			t.Errorf("excluded cell %d is in a cluster of size %d", v, sizes[c.CellToCluster[v]])
		}
	}
}

func TestMatchExcludeLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomH(rng, 10, 20, 3)
	if _, err := Match(h, Config{Exclude: make([]bool, 3)}, rng); err == nil {
		t.Error("expected error for Exclude length mismatch")
	}
}

func TestMatchSameBlockOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	h := randomH(rng, 60, 150, 4)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	c, err := Match(h, Config{Ratio: 1, SameBlockOnly: p}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every cluster must be block-pure.
	blockOf := make([]int32, c.NumClusters)
	for i := range blockOf {
		blockOf[i] = -1
	}
	for v, k := range c.CellToCluster {
		if blockOf[k] == -1 {
			blockOf[k] = p.Part[v]
		} else if blockOf[k] != p.Part[v] {
			t.Fatalf("cluster %d mixes blocks", k)
		}
	}
}

func TestMatchSameBlockOnlyLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := randomH(rng, 10, 20, 3)
	bad := hypergraph.NewPartition(3, 2)
	if _, err := Match(h, Config{SameBlockOnly: bad}, rng); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestConnDegenerateNets is the regression test for the 1/(|e|−1)
// division: single-pin nets (reachable only through the raw test
// builder — Build drops them) must be skipped, not divide by zero and
// poison the score with +Inf/NaN.
func TestConnDegenerateNets(t *testing.T) {
	b := hypergraph.NewBuilder(4).
		AddNet(0).       // degenerate single-pin net on 0
		AddNet(1, 1).    // duplicate-only net: two pins, one distinct cell
		AddNet(0, 1).    // the only real connection between 0 and 1
		AddNet(0, 1, 1). // duplicate pin inside a 3-pin net
		AddNet(2, 3)
	h, err := b.BuildRawForTest()
	if err != nil {
		t.Fatal(err)
	}
	got := Conn(h, 0, 1, 10)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Conn(0,1) = %v: degenerate net poisoned the score", got)
	}
	// Net (0,1) contributes 1/(2−1); net (0,1,1) has raw size 3 and
	// contributes 1/(3−1); the single-pin net contributes nothing.
	want := (1.0 + 0.5) / 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Conn(0,1) = %v, want %v", got, want)
	}
	// A cell whose only net is degenerate connects to nothing.
	if got := Conn(h, 1, 2, 10); got != 0 {
		t.Errorf("Conn(1,2) = %v, want 0", got)
	}
}

// TestMatchDegenerateNets runs the full matching sweep over a raw
// hypergraph with single-pin and duplicate-pin nets: the clustering
// must stay well-formed and the genuinely connected pair must still
// match (a poisoned +Inf score on the degenerate net would have
// hijacked the choice before the fix).
func TestMatchDegenerateNets(t *testing.T) {
	b := hypergraph.NewBuilder(4).
		AddNet(0).    // single-pin
		AddNet(2, 2). // duplicate-only
		AddNet(0, 1).
		AddNet(2, 3)
	h, err := b.BuildRawForTest()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, err := Match(h, Config{Ratio: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumClusters != 2 {
			t.Fatalf("seed %d: %d clusters, want 2 ({0,1} and {2,3})", seed, c.NumClusters)
		}
		for v, k := range c.CellToCluster {
			if k < 0 || int(k) >= c.NumClusters {
				t.Fatalf("seed %d: cell %d assigned out-of-range cluster %d", seed, v, k)
			}
		}
		if c.CellToCluster[0] != c.CellToCluster[1] || c.CellToCluster[2] != c.CellToCluster[3] {
			t.Fatalf("seed %d: wrong pairing %v", seed, c.CellToCluster)
		}
	}
}

// TestMatchTieBreakLowestIndex pins the deterministic tie-break
// between equal-connectivity match candidates: the lowest cell index
// must win, independent of the pin/net traversal order that feeds the
// neighbor list.
func TestMatchTieBreakLowestIndex(t *testing.T) {
	// Cell 0 is connected to 2 and to 1 by identical 2-pin nets, with
	// the higher-index neighbor's net added FIRST so that plain
	// first-seen-wins selection would pick 2. Cells 1 and 2 share no
	// net, so the only matching decision with a tie is 0's.
	h := hypergraph.NewBuilder(3).
		AddNet(0, 2).
		AddNet(0, 1).
		MustBuild()
	// Find a seed whose permutation visits cell 0 first, so 0 chooses
	// among both unmatched neighbors.
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		if rand.New(rand.NewSource(s)).Perm(3)[0] == 0 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with perm[0] == 0 in range")
	}
	rng := rand.New(rand.NewSource(seed))
	c, err := Match(h, Config{Ratio: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.CellToCluster[0] != c.CellToCluster[1] {
		t.Errorf("tie broke to cell 2: clustering %v, want {0,1} paired", c.CellToCluster)
	}
	if c.CellToCluster[0] == c.CellToCluster[2] {
		t.Errorf("cell 2 joined the pair: clustering %v", c.CellToCluster)
	}
}

// TestMatchTelemetryCounts checks the pairs/singletons derivation
// recorded through an armed collector.
func TestMatchTelemetryCounts(t *testing.T) {
	h := hypergraph.NewBuilder(5).
		AddNet(0, 1).
		AddNet(2, 3).
		MustBuild() // cell 4 is isolated
	tel := telemetry.New()
	rng := rand.New(rand.NewSource(3))
	c, err := Match(h, Config{Ratio: 1, Telemetry: tel}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 5 - c.NumClusters
	s := tel.TakeStart(0, "ok", 1, 0, 0)
	if len(s.Coarsening) != 0 {
		t.Fatalf("Match alone must not append levels: %+v", s.Coarsening)
	}
	// The pending counts fold into the next RecordLevel.
	tel2 := telemetry.New()
	if _, err := Match(h, Config{Ratio: 1, Telemetry: tel2}, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	tel2.RecordLevel(c.NumClusters, 0, 0, 1)
	s2 := tel2.TakeStart(0, "ok", 1, 0, 0)
	if len(s2.Coarsening) != 1 {
		t.Fatalf("want one level entry, got %+v", s2.Coarsening)
	}
	if s2.Coarsening[0].MatchedPairs != wantPairs || s2.Coarsening[0].Singletons != c.NumClusters-wantPairs {
		t.Errorf("level entry %+v, want pairs=%d singletons=%d",
			s2.Coarsening[0], wantPairs, c.NumClusters-wantPairs)
	}
}
