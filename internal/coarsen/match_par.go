package coarsen

import (
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
)

// Parallel candidate scoring for Match (Config.Par != nil).
//
// The matching sweep looks inherently sequential — each pairing
// removes two cells from every later candidate set — but the choice
// rule makes speculation exact: bestPartner is the argmax under a
// total order on (score desc, index asc), scores do not depend on the
// matched state, and matching only ever *shrinks* the candidate set.
// So a partner chosen against a snapshot of the matched state remains
// the argmax over any later subset that still contains it. The sweep
// therefore processes the visit permutation in fixed blocks:
//
//  1. Score the block's cells in parallel over fixed ranges against
//     the matched state at block start (pure reads; each worker owns
//     a private conn accumulator and writes only its own slice of the
//     speculative-partner array).
//  2. Apply serially in permutation order, replicating the serial
//     loop exactly (ratio stop, Stop polling cadence, skip rules).
//     A speculative partner that is still unmatched is provably the
//     serial choice; one that got matched earlier in the block (or a
//     cell whose snapshot said "no candidate" — the set only shrank)
//     falls back to a serial bestPartner recompute.
//
// Every pairing decision happens on the calling goroutine, so the
// clustering is bit-identical to the serial sweep for every block
// size and worker count — pinned by TestMatchParIdenticalToSerial and
// the oracle/golden suites.

// scoreBlockSize is the number of permutation slots scored per
// synchronization. Output-invariant (any value yields the serial
// result); chosen to amortize the fan-out barrier while keeping the
// speculation window — and thus the serial-fallback rate — small.
const scoreBlockSize = 512

// matchPar runs the blocked sweep and returns the next cluster id,
// whether the coarsen.score fault site demanded corruption, and the
// (possibly grown) shared neighbor scratch. connAcc/neighbors are the
// serial scratch used for fallback recomputes.
func matchPar(h *hypergraph.Hypergraph, cfg *Config, c *hypergraph.Clustering, ws *Workspace, connAcc []float64, neighbors []int32) (int32, bool, []int32) {
	n := h.NumCells()
	perm := ws.perm
	pool := cfg.Par
	spec, par := ws.parBuffers(n, pool.Workers())
	stop := cfg.Stop
	corrupt := false
	if cfg.Inject != nil {
		switch cfg.Inject.Fire(faultinject.SiteCoarsenScore) {
		case faultinject.ActCancel:
			// As at coarsen.match: cancel behaves like a Stop hook that
			// fires before the first pairing.
			stop = func() bool { return true }
		case faultinject.ActCorrupt:
			corrupt = true
		}
	}
	k := int32(0)
	nMatch := 0
	j := 0
	for j < n {
		blockEnd := j + scoreBlockSize
		if blockEnd > n {
			blockEnd = n
		}
		base := j
		pool.Run(blockEnd-base, func(worker, lo, hi int) {
			ca := par.connAcc[worker]
			nb := par.neighbors[worker][:0]
			for idx := base + lo; idx < base+hi; idx++ {
				v := perm[idx]
				if c.CellToCluster[v] >= 0 || (cfg.Exclude != nil && cfg.Exclude[v]) {
					spec[idx] = -1 // skipped at apply; value never read
					continue
				}
				spec[idx], nb = bestPartner(h, cfg, c, v, ca, nb)
			}
			par.neighbors[worker] = nb
		})
		stopped := false
		for ; j < blockEnd; j++ {
			if float64(nMatch)/float64(n) >= cfg.Ratio {
				stopped = true
				break
			}
			if j&255 == 0 && stop != nil && stop() {
				stopped = true
				break
			}
			v := perm[j]
			if c.CellToCluster[v] >= 0 || (cfg.Exclude != nil && cfg.Exclude[v]) {
				continue
			}
			best := spec[j]
			if best >= 0 && c.CellToCluster[best] >= 0 {
				// The speculative partner was matched earlier in this
				// block; the snapshot argmax is gone, so recompute
				// against the live state — exactly the serial scan.
				best, neighbors = bestPartner(h, cfg, c, v, connAcc, neighbors)
			}
			c.CellToCluster[v] = k
			if best >= 0 {
				c.CellToCluster[best] = k
				nMatch += 2
			}
			k++
		}
		if stopped {
			break
		}
	}
	return k, corrupt, neighbors
}
