// Package coarsen implements the Match coarsening procedure of
// Alpert/Huang/Kahng (Fig. 3): a connectivity-weighted matching that
// loosely follows the heavy-edge matching of Metis, with a matching
// ratio parameter R that controls the speed of coarsening and hence
// the number of levels in the multilevel hierarchy.
package coarsen

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/intrapar"
	"mlpart/internal/telemetry"
)

// Config parameterizes Match.
type Config struct {
	// Ratio is the matching ratio R ∈ (0, 1]: the fraction of modules
	// to match before stopping. R = 1 seeks a maximal matching
	// (halving the instance, as in Chaco/Metis); R = 0.5 matches only
	// half the modules, slowing coarsening and deepening the
	// hierarchy. Default 1.0.
	Ratio float64
	// MaxNetSize: nets with more modules are ignored when computing
	// conn(v, w), to keep Match linear time. Default 10 (§III.A).
	MaxNetSize int
	// Exclude marks cells that must never be matched (they always
	// become singleton clusters). Used for pre-assigned modules such
	// as I/O pads (§III.C) so that fixed cells with different block
	// assignments are never merged. Optional; length must equal the
	// cell count if non-nil.
	Exclude []bool
	// SameBlockOnly, when non-nil, restricts matching to cell pairs
	// in the same block of the given partition — the "restricted
	// coarsening" of V-cycle (iterated multilevel) refinement, which
	// lets a hierarchy be rebuilt around an existing solution without
	// destroying it.
	SameBlockOnly *hypergraph.Partition
	// Stop, when non-nil, is polled periodically during the matching
	// sweep; returning true stops matching early. Every module not yet
	// matched becomes a singleton cluster (exactly the Fig. 3 handling
	// of leftover modules), so the clustering is always well-formed.
	Stop func() bool
	// Inject optionally arms deterministic fault injection at the
	// coarsen.match site; nil (the default) costs one pointer check.
	Inject *faultinject.Injector
	// Telemetry optionally records the pairing outcome of each Match
	// (matched pairs vs. singletons); nil costs one pointer check.
	Telemetry *telemetry.Collector
	// WS optionally supplies reusable scratch memory for the matching
	// sweep, making Match allocation-free in steady state (only the
	// returned Clustering is freshly allocated). A Workspace must not
	// be shared across goroutines; nil allocates scratch per call.
	WS *Workspace
	// Par optionally fans candidate scoring out over the pool's
	// workers (match_par.go). The output is bit-identical to the
	// serial sweep for every pool size — scoring is speculative and
	// side-effect-free, and all pairing decisions stay on the calling
	// goroutine — so Par only changes wall-clock time. Like WS, a pool
	// belongs to one pipeline attempt at a time.
	Par *intrapar.Pool
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.Ratio == 0 {
		c.Ratio = 1.0
	}
	if math.IsNaN(c.Ratio) || c.Ratio <= 0 || c.Ratio > 1 {
		return c, fmt.Errorf("coarsen: matching ratio %v outside (0,1]", c.Ratio)
	}
	if c.MaxNetSize == 0 {
		c.MaxNetSize = 10
	}
	if c.MaxNetSize < 2 {
		return c, fmt.Errorf("coarsen: MaxNetSize %d < 2", c.MaxNetSize)
	}
	return c, nil
}

// Conn computes the connectivity between modules v and w of §III.A:
//
//	conn(v, w) = 1/(A(v)+A(w)) · Σ_{e ∋ v,w, |e| ≤ maxNetSize} 1/(|e|−1)
//
// The 1/(|e|−1) term emphasizes nets with fewer modules; the area
// term prefers matching small modules to keep cluster sizes balanced.
// Exposed for tests and for alternative clustering strategies.
func Conn(h *hypergraph.Hypergraph, v, w int, maxNetSize int) float64 {
	var sum float64
	for _, e := range h.Nets(v) {
		size := h.NetSize(int(e))
		// size < 2 guards the 1/(|e|−1) term: a degenerate single-pin
		// net (possible on hypergraphs built outside the sanitizing
		// Builder) would otherwise divide by zero and poison the score
		// with +Inf/NaN.
		if size > maxNetSize || size < 2 {
			continue
		}
		for _, u := range h.Pins(int(e)) {
			if int(u) == w {
				sum += float64(h.NetWeight(int(e))) / float64(size-1)
				break
			}
		}
	}
	if sum == 0 {
		return 0
	}
	return sum / float64(h.Area(v)+h.Area(w))
}

// Match constructs a clustering P^k of h following Fig. 3. Modules
// are visited in a random permutation; each unmatched module v is
// paired with the unmatched neighbor w maximizing conn(v, w), forming
// the cluster {v, w}; if no unmatched neighbor exists, v becomes a
// singleton. Matching stops once the fraction of matched modules
// reaches cfg.Ratio, and every remaining unmatched module is assigned
// its own cluster.
func Match(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Clustering, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	n := h.NumCells()
	if cfg.Exclude != nil && len(cfg.Exclude) != n {
		return nil, fmt.Errorf("coarsen: Exclude has %d entries, hypergraph has %d cells", len(cfg.Exclude), n)
	}
	if cfg.SameBlockOnly != nil && len(cfg.SameBlockOnly.Part) != n {
		return nil, fmt.Errorf("coarsen: SameBlockOnly partition has %d cells, hypergraph has %d", len(cfg.SameBlockOnly.Part), n)
	}
	act := faultinject.ActNone
	if cfg.Inject != nil {
		act = cfg.Inject.Fire(faultinject.SiteCoarsenMatch)
	}
	if act == faultinject.ActCancel {
		// Synthetic cancellation: behave exactly like a Stop hook that
		// fires before the first pairing — an all-singleton clustering.
		cfg.Stop = func() bool { return true }
	}
	excluded := func(v int) bool { return cfg.Exclude != nil && cfg.Exclude[v] }
	c := &hypergraph.Clustering{CellToCluster: make([]int32, n)}
	for v := range c.CellToCluster {
		c.CellToCluster[v] = -1
	}
	if n == 0 {
		return c, nil
	}
	ws := cfg.grab()
	ws.perm = permInto(ws.perm, n, rng)
	perm := ws.perm
	// conn accumulator indexed by module, reset via the neighbor set
	// after each pairing (the Conn-array technique of §III.A).
	connAcc, neighbors := ws.scoreBuffers(n)

	k := int32(0)
	scoreCorrupt := false
	if cfg.Par != nil {
		k, scoreCorrupt, neighbors = matchPar(h, &cfg, c, ws, connAcc, neighbors)
	} else {
		nMatch := 0
		j := 0
		for float64(nMatch)/float64(n) < cfg.Ratio && j < n {
			if j&255 == 0 && cfg.Stop != nil && cfg.Stop() {
				break
			}
			v := perm[j]
			j++
			if c.CellToCluster[v] >= 0 || excluded(v) {
				continue
			}
			var best int32
			best, neighbors = bestPartner(h, &cfg, c, v, connAcc, neighbors)
			c.CellToCluster[v] = k
			if best >= 0 {
				c.CellToCluster[best] = k
				nMatch += 2
			}
			k++
		}
	}
	// Steps 8–10: every remaining unmatched module becomes a
	// singleton cluster.
	for v := 0; v < n; v++ {
		if c.CellToCluster[v] < 0 {
			c.CellToCluster[v] = k
			k++
		}
	}
	c.NumClusters = int(k)
	ws.neighbors = neighbors // keep any growth for the next call
	if act == faultinject.ActCorrupt || scoreCorrupt {
		corruptClustering(c, cfg.Exclude)
	}
	// Every pair shrinks the cluster count by one, so the pairing
	// outcome is derivable from the totals in O(1).
	pairs := n - c.NumClusters
	cfg.Telemetry.RecordMatch(pairs, c.NumClusters-pairs)
	return c, nil
}

// bestPartner scans v's nets and returns the unmatched, non-excluded,
// same-block partner maximizing conn(v, ·) of §III.A — or -1 when v
// has no candidate. connAcc must be all-zeros on entry and is restored
// to all-zeros before returning (the Conn-array technique: entries are
// reset during the best-candidate scan). neighbors is caller scratch;
// the possibly-grown slice is returned.
//
// The selection is order-independent: equal scores tie-break to the
// lowest cell index (neighbors is ordered by net traversal, so without
// the explicit rule the winner would depend on pin order), making the
// choice the argmax under a total order on (score desc, index asc).
// That property is what lets the parallel sweep (match_par.go) score
// candidates speculatively against a snapshot and still reproduce the
// serial result exactly.
func bestPartner(h *hypergraph.Hypergraph, cfg *Config, c *hypergraph.Clustering, v int, connAcc []float64, neighbors []int32) (int32, []int32) {
	neighbors = neighbors[:0]
	av := h.Area(v)
	for _, e := range h.Nets(v) {
		size := h.NetSize(int(e))
		// size < 2: see Conn — a single-pin net must not reach the
		// 1/(|e|−1) weight below.
		if size > cfg.MaxNetSize || size < 2 {
			continue
		}
		wgt := float64(h.NetWeight(int(e))) / float64(size-1)
		for _, w := range h.Pins(int(e)) {
			if int(w) == v || c.CellToCluster[w] >= 0 ||
				(cfg.Exclude != nil && cfg.Exclude[w]) ||
				(cfg.SameBlockOnly != nil && cfg.SameBlockOnly.Part[v] != cfg.SameBlockOnly.Part[w]) {
				continue
			}
			if connAcc[w] == 0 {
				neighbors = append(neighbors, w)
			}
			connAcc[w] += wgt
		}
	}
	best := int32(-1)
	bestConn := 0.0
	for _, w := range neighbors {
		cw := connAcc[w] / float64(av+h.Area(int(w)))
		//mllint:ignore float-eq deliberate exact tie-break: equal scores arise from identical sums, and any near-miss just falls back to first-wins
		if cw > bestConn || (cw == bestConn && best >= 0 && w < best) {
			bestConn = cw
			best = w
		}
		connAcc[w] = 0 // reset as we go
	}
	return best, neighbors
}

// corruptClustering swaps the cluster assignments of the first two
// non-excluded cells in different clusters: the clustering stays
// well-formed (same clusters, same sizes) but quality degrades —
// the benign corruption mode of the coarsen.match fault site.
func corruptClustering(c *hypergraph.Clustering, exclude []bool) {
	v := -1
	for i := range c.CellToCluster {
		if exclude != nil && exclude[i] {
			continue
		}
		if v < 0 {
			v = i
			continue
		}
		if c.CellToCluster[i] != c.CellToCluster[v] {
			c.CellToCluster[v], c.CellToCluster[i] = c.CellToCluster[i], c.CellToCluster[v]
			return
		}
	}
}

// Coarsen applies Match and induces the coarser hypergraph in one
// step, returning both.
func Coarsen(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Hypergraph, *hypergraph.Clustering, error) {
	c, err := Match(h, cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	coarse, err := hypergraph.Induce(h, c)
	if err != nil {
		return nil, nil, err
	}
	return coarse, c, nil
}
