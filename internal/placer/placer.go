// Package placer implements a top-down standard-cell global placer
// driven by multilevel quadrisection — the application that §III.C
// and §IV.D describe ("our work in multilevel quadrisection has been
// used as the basis for an effective cell placement package [24]").
//
// The chip is recursively divided into quadrants. Each region's
// subcircuit is quadrisected with the ML algorithm; nets that leave
// the region are anchored with terminal propagation (a fixed pseudo-
// terminal at the centroid of the net's external pins, pre-assigned
// to the nearest quadrant — the model of Dunlop & Kernighan that
// §III.C's "terminal propagation models" refers to). Recursion stops
// at small regions, whose cells are spread in a grid. Quality is
// measured as half-perimeter wirelength (HPWL), the metric [24]
// reports savings in versus GORDIAN-L.
package placer

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/core"
	"mlpart/internal/hypergraph"
)

// Config parameterizes the top-down placer.
type Config struct {
	// MinRegionCells stops recursion when a region has at most this
	// many cells. Default 12.
	MinRegionCells int
	// MaxDepth bounds the recursion depth. Default 10.
	MaxDepth int
	// TerminalPropagation anchors external nets with fixed pseudo-
	// terminals (on by default; set Off to measure its value).
	TerminalPropagationOff bool
	// Quad is the per-region multilevel quadrisection template; its K
	// is forced to 4. The zero value uses the paper's quadrisection
	// setup (T = 100, R = 1.0, sum-of-degrees, FM engine).
	Quad core.QuadConfig
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.MinRegionCells == 0 {
		c.MinRegionCells = 12
	}
	if c.MinRegionCells < 4 {
		return c, fmt.Errorf("placer: MinRegionCells %d < 4", c.MinRegionCells)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("placer: MaxDepth %d < 1", c.MaxDepth)
	}
	if c.Quad.Refine.K != 0 && c.Quad.Refine.K != 4 {
		return c, fmt.Errorf("placer: region partitioning must be 4-way, got K=%d", c.Quad.Refine.K)
	}
	c.Quad.Refine.K = 4
	var err error
	if c.Quad, err = c.Quad.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// Placement is a global placement of every cell in the unit square.
type Placement struct {
	X, Y []float64
	// Regions is the number of leaf regions produced.
	Regions int
	// Depth is the deepest recursion level used.
	Depth int
	// HPWL is the half-perimeter wirelength of the placement.
	HPWL float64
}

// region is a rectangle plus the cells currently assigned to it.
type region struct {
	x0, y0, x1, y1 float64
	cells          []int32
	depth          int
}

// Place runs the top-down flow on h. pads optionally flags I/O cells
// with fixed positions padX/padY (all three nil, or all of length
// NumCells); pads keep their coordinates and are excluded from
// region recursion, but still anchor nets via terminal propagation.
func Place(h *hypergraph.Hypergraph, pads []bool, padX, padY []float64, cfg Config, rng *rand.Rand) (*Placement, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	n := h.NumCells()
	if (pads == nil) != (padX == nil) || (pads == nil) != (padY == nil) {
		return nil, fmt.Errorf("placer: pads, padX and padY must be set together")
	}
	if pads != nil && (len(pads) != n || len(padX) != n || len(padY) != n) {
		return nil, fmt.Errorf("placer: pad arrays must have %d entries", n)
	}
	pl := &Placement{X: make([]float64, n), Y: make([]float64, n)}
	isPad := func(v int32) bool { return pads != nil && pads[v] }
	// Current coordinate estimate: region center, refined as regions
	// split; pads are exact from the start.
	for v := 0; v < n; v++ {
		if isPad(int32(v)) {
			pl.X[v], pl.Y[v] = padX[v], padY[v]
		} else {
			pl.X[v], pl.Y[v] = 0.5, 0.5
		}
	}
	root := region{x0: 0, y0: 0, x1: 1, y1: 1, depth: 0}
	for v := int32(0); int(v) < n; v++ {
		if !isPad(v) {
			root.cells = append(root.cells, v)
		}
	}
	queue := []region{root}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if r.depth > pl.Depth {
			pl.Depth = r.depth
		}
		if len(r.cells) <= cfg.MinRegionCells || r.depth >= cfg.MaxDepth {
			spreadInRegion(h, r, pl)
			pl.Regions++
			continue
		}
		children, err := splitRegion(h, r, pl, cfg, rng)
		if err != nil {
			return nil, err
		}
		queue = append(queue, children...)
	}
	pl.HPWL = HPWL(h, pl.X, pl.Y)
	return pl, nil
}

// splitRegion quadrisects one region's subcircuit and returns the
// four child regions.
func splitRegion(h *hypergraph.Hypergraph, r region, pl *Placement, cfg Config, rng *rand.Rand) ([]region, error) {
	// Local indexing for the region cells.
	local := make(map[int32]int32, len(r.cells))
	for i, v := range r.cells {
		local[v] = int32(i)
	}
	nLocal := len(r.cells)
	xm := (r.x0 + r.x1) / 2
	ym := (r.y0 + r.y1) / 2

	// First pass: gather nets and terminals.
	type netSpec struct {
		pins     []int32 // local indices
		terminal int     // terminal index or -1
	}
	var nets []netSpec
	var termQuad []int32 // per terminal: pre-assigned quadrant
	seen := make(map[int32]bool)
	for _, v := range r.cells {
		for _, e := range h.Nets(int(v)) {
			if seen[e] {
				continue
			}
			seen[e] = true
			var pins []int32
			var extX, extY float64
			ext := 0
			for _, u := range h.Pins(int(e)) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				} else {
					extX += pl.X[u]
					extY += pl.Y[u]
					ext++
				}
			}
			if len(pins) == 0 || (len(pins) == 1 && (ext == 0 || cfg.TerminalPropagationOff)) {
				continue
			}
			spec := netSpec{pins: pins, terminal: -1}
			if ext > 0 && !cfg.TerminalPropagationOff {
				// Terminal at the centroid of the external pins,
				// clamped into the region, pre-assigned to the
				// quadrant containing that point.
				cx := clamp(extX/float64(ext), r.x0, r.x1)
				cy := clamp(extY/float64(ext), r.y0, r.y1)
				q := int32(0)
				if cx >= xm {
					q++
				}
				if cy >= ym {
					q += 2
				}
				spec.terminal = len(termQuad)
				termQuad = append(termQuad, q)
			}
			if len(spec.pins)+btoi(spec.terminal >= 0) >= 2 {
				nets = append(nets, spec)
			}
		}
	}
	// Build the subcircuit: region cells first, then terminals.
	total := nLocal + len(termQuad)
	b := hypergraph.NewBuilder(total)
	for i, v := range r.cells {
		b.SetArea(i, h.Area(int(v)))
	}
	for t := range termQuad {
		b.SetArea(nLocal+t, 0) // terminals are weightless
	}
	pinBuf := make([]int32, 0, 16)
	for _, spec := range nets {
		pinBuf = pinBuf[:0]
		pinBuf = append(pinBuf, spec.pins...)
		if spec.terminal >= 0 {
			pinBuf = append(pinBuf, int32(nLocal+spec.terminal))
		}
		b.AddNet32(pinBuf)
	}
	sub, err := b.Build()
	if err != nil {
		return nil, err
	}

	qcfg := cfg.Quad
	if len(termQuad) > 0 {
		fixed := make([]bool, total)
		pre := make([]int32, total)
		for t, q := range termQuad {
			fixed[nLocal+t] = true
			pre[nLocal+t] = q
		}
		qcfg.Fixed = fixed
		qcfg.Preassign = pre
	}
	p, _, err := core.Quadrisect(sub, qcfg, rng)
	if err != nil {
		return nil, err
	}

	children := make([]region, 4)
	bounds := [4][4]float64{
		{r.x0, r.y0, xm, ym}, // block 0: left-bottom
		{xm, r.y0, r.x1, ym}, // block 1: right-bottom
		{r.x0, ym, xm, r.y1}, // block 2: left-top
		{xm, ym, r.x1, r.y1}, // block 3: right-top
	}
	for q := 0; q < 4; q++ {
		children[q] = region{
			x0: bounds[q][0], y0: bounds[q][1],
			x1: bounds[q][2], y1: bounds[q][3],
			depth: r.depth + 1,
		}
	}
	for i, v := range r.cells {
		q := p.Part[i]
		children[q].cells = append(children[q].cells, v)
		pl.X[v] = (children[q].x0 + children[q].x1) / 2
		pl.Y[v] = (children[q].y0 + children[q].y1) / 2
	}
	// Drop empty children.
	out := children[:0]
	for _, c := range children {
		if len(c.cells) > 0 {
			out = append(out, c)
		}
	}
	return out, nil
}

// spreadInRegion lays a leaf region's cells on a regular grid.
func spreadInRegion(h *hypergraph.Hypergraph, r region, pl *Placement) {
	n := len(r.cells)
	if n == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	dw := (r.x1 - r.x0) / float64(cols)
	dh := (r.y1 - r.y0) / float64(rows)
	for i, v := range r.cells {
		cx := r.x0 + (float64(i%cols)+0.5)*dw
		cy := r.y0 + (float64(i/cols)+0.5)*dh
		pl.X[v] = cx
		pl.Y[v] = cy
	}
}

// SpreadToGrid legalizes an analytic placement onto a uniform
// √n × √n grid while preserving the relative ordering: cells are
// ranked by x into columns, then by y within each column. Quadratic
// placements (GORDIAN's first iteration) collapse cells toward the
// centroid, which makes raw HPWL meaningless — a placement with every
// cell at one point has HPWL 0 — so comparisons legalize both sides
// first, exactly as GORDIAN's own later optimization "spreads out the
// cells (i.e., prevents overlapping)" (§IV.D).
func SpreadToGrid(h *hypergraph.Hypergraph, x, y []float64) (sx, sy []float64) {
	n := h.NumCells()
	sx = make([]float64, n)
	sy = make([]float64, n)
	if n == 0 {
		return sx, sy
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sortBy(order, x)
	perCol := (n + cols - 1) / cols
	for c := 0; c*perCol < n; c++ {
		lo := c * perCol
		hi := lo + perCol
		if hi > n {
			hi = n
		}
		col := order[lo:hi]
		tmp := make([]int32, len(col))
		copy(tmp, col)
		sortBy(tmp, y)
		for r, v := range tmp {
			sx[v] = (float64(c) + 0.5) / float64(cols)
			sy[v] = (float64(r) + 0.5) / float64(perCol)
		}
	}
	return sx, sy
}

// sortBy stably sorts ids by the given key values.
func sortBy(ids []int32, key []float64) {
	tmp := make([]int32, len(ids))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if key[ids[i]] <= key[ids[j]] {
				tmp[k] = ids[i]
				i++
			} else {
				tmp[k] = ids[j]
				j++
			}
			k++
		}
		for i < mid {
			tmp[k] = ids[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = ids[j]
			j++
			k++
		}
		copy(ids[lo:hi], tmp[lo:hi])
	}
	ms(0, len(ids))
}

// HPWL returns the half-perimeter wirelength of a placement: the sum
// over nets of the bounding-box width plus height.
func HPWL(h *hypergraph.Hypergraph, x, y []float64) float64 {
	var total float64
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		minX, maxX := x[pins[0]], x[pins[0]]
		minY, maxY := y[pins[0]], y[pins[0]]
		for _, v := range pins[1:] {
			if x[v] < minX {
				minX = x[v]
			}
			if x[v] > maxX {
				maxX = x[v]
			}
			if y[v] < minY {
				minY = y[v]
			}
			if y[v] > maxY {
				maxY = y[v]
			}
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
