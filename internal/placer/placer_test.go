package placer

import (
	"math"
	"math/rand"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/netgen"
	"mlpart/internal/placement"
)

func genCircuit(t testing.TB, cells, nets, pins int, seed int64) *netgen.Circuit {
	t.Helper()
	c, err := netgen.Generate(netgen.Spec{Name: "p", Cells: cells, Nets: nets, Pins: pins, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlaceCoordinatesInSquare(t *testing.T) {
	c := genCircuit(t, 300, 350, 1150, 1)
	rng := rand.New(rand.NewSource(2))
	pl, err := Place(c.H, nil, nil, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 300; v++ {
		if pl.X[v] < 0 || pl.X[v] > 1 || pl.Y[v] < 0 || pl.Y[v] > 1 {
			t.Fatalf("cell %d at (%v,%v) outside the unit square", v, pl.X[v], pl.Y[v])
		}
	}
	if pl.Regions < 4 {
		t.Errorf("Regions = %d, expected recursion", pl.Regions)
	}
	if pl.Depth < 1 {
		t.Errorf("Depth = %d", pl.Depth)
	}
	if pl.HPWL <= 0 {
		t.Errorf("HPWL = %v", pl.HPWL)
	}
}

func TestPlaceBeatsRandomPlacement(t *testing.T) {
	c := genCircuit(t, 400, 500, 1600, 3)
	rng := rand.New(rand.NewSource(4))
	pl, err := Place(c.H, nil, nil, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Random placement HPWL for comparison.
	rx := make([]float64, 400)
	ry := make([]float64, 400)
	for v := range rx {
		rx[v], ry[v] = rng.Float64(), rng.Float64()
	}
	random := HPWL(c.H, rx, ry)
	if pl.HPWL >= random {
		t.Errorf("placer HPWL %.2f not better than random %.2f", pl.HPWL, random)
	}
}

func TestPlaceCompetitiveWithGordian(t *testing.T) {
	// [24] reports wirelength savings vs GORDIAN-L. Raw quadratic
	// placements overlap all cells near the centroid (HPWL → 0), so
	// both placements are legalized onto the same grid before
	// comparing; the ML flow should then be at least competitive.
	c := genCircuit(t, 600, 700, 2300, 5)
	rng := rand.New(rand.NewSource(6))
	pl, err := Place(c.H, nil, nil, nil, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, gres, err := placement.Quadrisect(c.H, c.Pads, placement.Config{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	gx, gy := SpreadToGrid(c.H, gres.X, gres.Y)
	gHPWL := HPWL(c.H, gx, gy)
	if pl.HPWL > 1.3*gHPWL {
		t.Errorf("placer HPWL %.2f more than 1.3x legalized GORDIAN %.2f", pl.HPWL, gHPWL)
	}
}

func TestSpreadToGridDistinctSlots(t *testing.T) {
	c := genCircuit(t, 90, 100, 330, 15)
	x := make([]float64, 90)
	y := make([]float64, 90)
	rng := rand.New(rand.NewSource(16))
	for v := range x {
		// Heavily overlapping input.
		x[v], y[v] = 0.5+0.01*rng.Float64(), 0.5+0.01*rng.Float64()
	}
	sx, sy := SpreadToGrid(c.H, x, y)
	seen := map[[2]float64]bool{}
	for v := range sx {
		k := [2]float64{sx[v], sy[v]}
		if seen[k] {
			t.Fatalf("two cells share slot %v", k)
		}
		seen[k] = true
		if sx[v] <= 0 || sx[v] >= 1 || sy[v] <= 0 || sy[v] >= 1 {
			t.Fatalf("slot %v outside the unit square", k)
		}
	}
}

func TestSpreadToGridPreservesOrdering(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddNet(0, 1).AddNet(2, 3).MustBuild()
	x := []float64{0.1, 0.2, 0.8, 0.9}
	y := []float64{0.5, 0.5, 0.5, 0.5}
	sx, _ := SpreadToGrid(h, x, y)
	if !(sx[0] <= sx[1] && sx[1] <= sx[2] && sx[2] <= sx[3]) {
		t.Errorf("x ordering not preserved: %v", sx)
	}
}

func TestPlaceWithPads(t *testing.T) {
	c := genCircuit(t, 200, 240, 780, 7)
	n := 200
	pads := make([]bool, n)
	padX := make([]float64, n)
	padY := make([]float64, n)
	for v := 0; v < 12; v++ {
		pads[v] = true
		padX[v] = float64(v) / 12
		padY[v] = 0 // bottom edge
	}
	rng := rand.New(rand.NewSource(8))
	pl, err := Place(c.H, pads, padX, padY, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		if pl.X[v] != padX[v] || pl.Y[v] != padY[v] {
			t.Errorf("pad %d moved to (%v,%v)", v, pl.X[v], pl.Y[v])
		}
	}
}

func TestTerminalPropagationHelps(t *testing.T) {
	// With terminal propagation off, the placer ignores external
	// connectivity and HPWL should (usually) suffer. Assert the "on"
	// run is not worse by more than a small factor, and that both
	// produce valid placements.
	c := genCircuit(t, 500, 600, 1950, 9)
	on, err := Place(c.H, nil, nil, nil, Config{}, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Place(c.H, nil, nil, nil, Config{TerminalPropagationOff: true}, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if on.HPWL > off.HPWL*1.15 {
		t.Errorf("terminal propagation hurt badly: on %.2f vs off %.2f", on.HPWL, off.HPWL)
	}
}

func TestHPWLKnownValue(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddNet(0, 1, 2).MustBuild()
	x := []float64{0, 0.5, 1}
	y := []float64{0, 0.25, 0.25}
	if got := HPWL(h, x, y); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("HPWL = %v, want 1.25", got)
	}
}

func TestPlaceSmallCircuitSingleRegion(t *testing.T) {
	h := hypergraph.NewBuilder(6).AddNet(0, 1).AddNet(2, 3).AddNet(4, 5).MustBuild()
	pl, err := Place(h, nil, nil, nil, Config{}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Regions != 1 || pl.Depth != 0 {
		t.Errorf("regions %d depth %d, want 1/0 for 6 ≤ MinRegionCells", pl.Regions, pl.Depth)
	}
	// All cells distinct positions (grid spread).
	seen := map[[2]float64]bool{}
	for v := 0; v < 6; v++ {
		k := [2]float64{pl.X[v], pl.Y[v]}
		if seen[k] {
			t.Errorf("cells overlap at %v", k)
		}
		seen[k] = true
	}
}

func TestPlaceConfigErrors(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddNet(0, 1).MustBuild()
	rng := rand.New(rand.NewSource(12))
	for _, bad := range []Config{{MinRegionCells: 2}, {MaxDepth: -1}} {
		if _, err := Place(h, nil, nil, nil, bad, rng); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
	if _, err := Place(h, make([]bool, 4), nil, nil, Config{}, rng); err == nil {
		t.Error("pads without coordinates accepted")
	}
	if _, err := Place(h, make([]bool, 2), make([]float64, 2), make([]float64, 2), Config{}, rng); err == nil {
		t.Error("wrong pad array length accepted")
	}
	bad := Config{}
	bad.Quad.Refine.K = 2
	if _, err := Place(h, nil, nil, nil, bad, rng); err == nil {
		t.Error("non-4-way region config accepted")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	c := genCircuit(t, 250, 300, 980, 13)
	a, err := Place(c.H, nil, nil, nil, Config{}, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(c.H, nil, nil, nil, Config{}, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] || a.Y[v] != b.Y[v] {
			t.Fatal("not deterministic")
		}
	}
}
