package oracle

import (
	"math/rand"
	"testing"

	"mlpart/internal/hypergraph"
)

// tiny builds the 4-cell, 3-net example used by the hand-computed
// checks:
//
//	net 0: {0,1}   net 1: {1,2,3}   net 2: {0,3}  (weight 5)
func tiny(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4)
	b.SetArea(2, 3)
	b.AddNet(0, 1)
	b.AddNet(1, 2, 3)
	b.AddWeightedNet(5, 0, 3)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestOracleHandComputed(t *testing.T) {
	h := tiny(t)
	p := &hypergraph.Partition{Part: []int32{0, 0, 1, 1}, K: 2}
	// net 0 uncut, net 1 cut, net 2 cut.
	if got := Cut(h, p); got != 2 {
		t.Errorf("Cut = %d, want 2", got)
	}
	if got := WeightedCut(h, p); got != 6 {
		t.Errorf("WeightedCut = %d, want 6", got)
	}
	if got := SumOfDegrees(h, p); got != 2 {
		t.Errorf("SumOfDegrees = %d, want 2", got)
	}
	if got := WeightedSumOfDegrees(h, p); got != 6 {
		t.Errorf("WeightedSumOfDegrees = %d, want 6", got)
	}
	areas := BlockAreas(h, p)
	if areas[0] != 2 || areas[1] != 4 {
		t.Errorf("BlockAreas = %v, want [2 4]", areas)
	}
	// Moving cell 1 to block 1 cuts net 0 but uncuts net 1: gain 0.
	if got := Gain(h, p, 1); got != 0 {
		t.Errorf("Gain(1) = %d, want 0", got)
	}
	// Moving cell 3 to block 0 uncuts net 2 (weight 5), net 1 stays
	// cut: gain +5.
	if got := Gain(h, p, 3); got != 5 {
		t.Errorf("Gain(3) = %d, want 5", got)
	}
	if !Validate(h, p, 2) {
		t.Error("Validate rejected a valid partition")
	}
	if Validate(h, p, 4) {
		t.Error("Validate accepted the wrong K")
	}
	if Validate(h, &hypergraph.Partition{Part: []int32{0, 0, 2, 1}, K: 2}, 2) {
		t.Error("Validate accepted an out-of-range block")
	}
}

// randomInstance builds a random weighted hypergraph and a random
// K-way partition of it.
func randomInstance(t *testing.T, rng *rand.Rand, cells, nets, k int) (*hypergraph.Hypergraph, *hypergraph.Partition) {
	t.Helper()
	b := hypergraph.NewBuilder(cells)
	for v := 0; v < cells; v++ {
		b.SetArea(v, int64(1+rng.Intn(4)))
	}
	for e := 0; e < nets; e++ {
		size := 2 + rng.Intn(5)
		pins := make([]int, 0, size)
		seen := map[int]bool{}
		for len(pins) < size {
			v := rng.Intn(cells)
			if !seen[v] {
				seen[v] = true
				pins = append(pins, v)
			}
		}
		weights := []int32{2, 3, 5, 7}
		if rng.Intn(3) == 0 {
			b.AddWeightedNet(weights[rng.Intn(len(weights))], pins...)
		} else {
			b.AddNet(pins...)
		}
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &hypergraph.Partition{Part: make([]int32, cells), K: k}
	for v := range p.Part {
		p.Part[v] = int32(rng.Intn(k)) //mllint:ignore unchecked-narrow small test block count
	}
	return h, p
}

// TestOracleAgreesWithOptimizedPartitionMethods is the base
// differential test: the optimized Partition methods (early-exit cut
// loops, stamp-based span counting) must agree with the map-based
// oracle recomputations on random weighted instances.
func TestOracleAgreesWithOptimizedPartitionMethods(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		h, p := randomInstance(t, rng, 40+rng.Intn(60), 60+rng.Intn(60), k)
		if got, want := p.Cut(h), Cut(h, p); got != want {
			t.Fatalf("seed %d: Cut %d != oracle %d", seed, got, want)
		}
		if got, want := p.WeightedCut(h), WeightedCut(h, p); got != want {
			t.Fatalf("seed %d: WeightedCut %d != oracle %d", seed, got, want)
		}
		if got, want := p.SumOfDegrees(h), SumOfDegrees(h, p); got != want {
			t.Fatalf("seed %d: SumOfDegrees %d != oracle %d", seed, got, want)
		}
		if got, want := p.WeightedSumOfDegrees(h), WeightedSumOfDegrees(h, p); got != want {
			t.Fatalf("seed %d: WeightedSumOfDegrees %d != oracle %d", seed, got, want)
		}
		oa := BlockAreas(h, p)
		for b, a := range p.BlockAreas(h) {
			if a != oa[b] {
				t.Fatalf("seed %d: block %d area %d != oracle %d", seed, b, a, oa[b])
			}
		}
		for _, r := range []float64{0.1, 0.25} {
			want := Bound(h, k, r)
			if got := hypergraph.Balance(h, k, r); got != want {
				t.Fatalf("seed %d: Balance(%v) = %+v != oracle %+v", seed, r, got, want)
			}
			if got, want := p.IsBalanced(h, hypergraph.Balance(h, k, r)), Balanced(h, p, r); got != want {
				t.Fatalf("seed %d: IsBalanced(%v) = %v != oracle %v", seed, r, got, want)
			}
		}
	}
}

// TestOracleGainIsCutDelta pins the defining property of the FM gain
// on bipartitions: performing the move changes the weighted cut by
// exactly −gain, and Gains agrees with per-cell Gain.
func TestOracleGainIsCutDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, p := randomInstance(t, rng, 30, 50, 2)
	gains := Gains(h, p)
	before := WeightedCut(h, p)
	for v := 0; v < h.NumCells(); v++ {
		if gains[v] != Gain(h, p, v) {
			t.Fatalf("Gains[%d] = %d != Gain %d", v, gains[v], Gain(h, p, v))
		}
		q := p.Clone()
		q.Part[v] ^= 1
		if got := before - WeightedCut(h, q); got != gains[v] {
			t.Fatalf("cell %d: cut delta %d != gain %d", v, got, gains[v])
		}
	}
}
