// Package oracle provides deliberately slow reference implementations
// of the quantities the optimized pipeline maintains incrementally:
// cut, FM gain, block areas and balance. Everything is recomputed from
// scratch with the most literal data structures available (one map per
// net, no early exits, no shared state), so the package has no
// workspace, no buffer reuse and no incremental update to get wrong.
//
// The differential tests ("Oracle" tests, run with -count=2 in CI)
// assert that the optimized paths — gain buckets, incremental cut
// maintenance, workspace-reusing induce/project — agree with these
// recomputations bit-for-bit across seeds, parallelism levels and
// fault-injection plans. Keep this package boring: its only job is to
// be obviously correct.
package oracle

import (
	"mlpart/internal/hypergraph"
)

// blocksOf returns the set of blocks net e touches, via a map — the
// most literal reading of "the blocks a net spans".
func blocksOf(h *hypergraph.Hypergraph, p *hypergraph.Partition, e int) map[int32]bool {
	blocks := make(map[int32]bool)
	for _, v := range h.Pins(e) {
		blocks[p.Part[v]] = true
	}
	return blocks
}

// Cut recounts the number of nets spanning more than one block.
func Cut(h *hypergraph.Hypergraph, p *hypergraph.Partition) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		if len(blocksOf(h, p, e)) > 1 {
			cut++
		}
	}
	return cut
}

// WeightedCut recounts the total weight of nets spanning more than one
// block.
func WeightedCut(h *hypergraph.Hypergraph, p *hypergraph.Partition) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		if len(blocksOf(h, p, e)) > 1 {
			cut += int(h.NetWeight(e))
		}
	}
	return cut
}

// SumOfDegrees recounts Σ_e (span(e) − 1), the k-way objective of
// §III.C.
func SumOfDegrees(h *hypergraph.Hypergraph, p *hypergraph.Partition) int {
	total := 0
	for e := 0; e < h.NumNets(); e++ {
		if span := len(blocksOf(h, p, e)); span > 1 {
			total += span - 1
		}
	}
	return total
}

// WeightedSumOfDegrees recounts Σ_e weight(e)·(span(e) − 1).
func WeightedSumOfDegrees(h *hypergraph.Hypergraph, p *hypergraph.Partition) int {
	total := 0
	for e := 0; e < h.NumNets(); e++ {
		if span := len(blocksOf(h, p, e)); span > 1 {
			total += int(h.NetWeight(e)) * (span - 1)
		}
	}
	return total
}

// BlockAreas recomputes the per-block areas by summing cell areas.
func BlockAreas(h *hypergraph.Hypergraph, p *hypergraph.Partition) []int64 {
	areas := make([]int64, p.K)
	for v := 0; v < h.NumCells(); v++ {
		areas[p.Part[v]] += h.Area(v)
	}
	return areas
}

// Balanced reports whether every block area lies inside the §III.B
// bound for tolerance r, recomputing areas and the bound from scratch.
func Balanced(h *hypergraph.Hypergraph, p *hypergraph.Partition, r float64) bool {
	bound := Bound(h, p.K, r)
	for _, a := range BlockAreas(h, p) {
		if a < bound.Lo || a > bound.Hi {
			return false
		}
	}
	return true
}

// Bound recomputes the §III.B balance bound from first principles:
// each block within max(A(v*), r·A(V)/k) of the perfect share A(V)/k.
func Bound(h *hypergraph.Hypergraph, k int, r float64) hypergraph.BalanceBound {
	var total, biggest int64
	for v := 0; v < h.NumCells(); v++ {
		a := h.Area(v)
		total += a
		if a > biggest {
			biggest = a
		}
	}
	target := total / int64(k)
	slack := int64(r * float64(total) / float64(k))
	if biggest > slack {
		slack = biggest
	}
	lo := target - slack
	if lo < 0 {
		lo = 0
	}
	return hypergraph.BalanceBound{Lo: lo, Hi: target + slack}
}

// Gain recomputes the FM gain of moving cell v to the other block of a
// bipartition: the weighted cut decrease, i.e. WeightedCut(before) −
// WeightedCut(after), evaluated by literally performing the move on a
// copy. Quadratic per call; that is the point.
func Gain(h *hypergraph.Hypergraph, p *hypergraph.Partition, v int) int {
	before := WeightedCut(h, p)
	q := p.Clone()
	q.Part[v] ^= 1
	return before - WeightedCut(h, q)
}

// Gains recomputes the FM gain of every cell of a bipartition.
func Gains(h *hypergraph.Hypergraph, p *hypergraph.Partition) []int {
	g := make([]int, h.NumCells())
	for v := range g {
		g[v] = Gain(h, p, v)
	}
	return g
}

// Validate re-checks that p is a well-formed partition of h with the
// expected K, without delegating to Partition.Validate.
func Validate(h *hypergraph.Hypergraph, p *hypergraph.Partition, k int) bool {
	if p == nil || p.K != k || len(p.Part) != h.NumCells() {
		return false
	}
	for _, b := range p.Part {
		if b < 0 || int(b) >= k {
			return false
		}
	}
	return true
}
