package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilCollectorNoOp drives every method of a nil collector; nothing
// may panic, and the derived values must be the disabled sentinels.
func TestNilCollectorNoOp(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports Enabled")
	}
	if child := c.NewChild(); child != nil {
		t.Fatal("nil collector derived a non-nil child")
	}
	c.SetLevel(3)
	c.RecordMatch(5, 2)
	c.RecordLevel(10, 20, 30, 7)
	c.RecordPass("FM", 0, 9, 4, 12, 8)
	c.RecordRebalance(3)
	c.StartTimer(StageCoarsen).Stop()
	s := c.TakeStart(2, "ok", 1, 42, 99)
	want := StartStats{Start: 2, Outcome: "ok", Attempts: 1, Cost: 42,
		Timings: StageTimings{TotalNS: 99}}
	if s.Start != want.Start || s.Outcome != want.Outcome ||
		s.Attempts != want.Attempts || s.Cost != want.Cost ||
		s.Timings != want.Timings ||
		s.Coarsening != nil || s.Passes != nil ||
		s.Rebalances != 0 || s.RebalanceMoved != 0 {
		t.Fatalf("nil TakeStart = %+v, want skeleton %+v", s, want)
	}
	c.AttachStart(s)
	c.FinishRun(2, 1, 4, 0, 10, 10, 3)
	if c.Report() != nil {
		t.Fatal("nil collector returned a non-nil report")
	}
}

// TestCountersHandComputed checks the accumulated StartStats against a
// hand-computed two-level trace.
func TestCountersHandComputed(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("armed collector reports disabled")
	}

	// Level 0: 10 cells match into 4 pairs + 2 singletons = 6 clusters.
	c.SetLevel(0)
	c.RecordMatch(4, 2)
	c.RecordLevel(6, 12, 30, 5)
	// Level 1: 6 cells match into 2 pairs + 2 singletons = 4 clusters.
	c.SetLevel(1)
	c.RecordMatch(2, 2)
	c.RecordLevel(4, 7, 16, 9)

	// Coarsest refinement at level 1, then level 0 after projection.
	c.RecordPass("CLIP", 0, 8, 5, 6, 4)
	c.SetLevel(0)
	c.RecordPass("CLIP", 0, 5, 3, 9, 7)
	c.RecordPass("CLIP", 1, 3, 3, 4, 0)
	c.RecordRebalance(2)
	c.RecordRebalance(0)

	s := c.TakeStart(0, "ok", 2, 3, 1234)

	wantLevels := []LevelStat{
		{Level: 0, Cells: 6, Nets: 12, Pins: 30, MatchedPairs: 4, Singletons: 2, LargestClusterArea: 5},
		{Level: 1, Cells: 4, Nets: 7, Pins: 16, MatchedPairs: 2, Singletons: 2, LargestClusterArea: 9},
	}
	wantPasses := []PassStat{
		{Level: 1, Engine: "CLIP", Pass: 0, CutBefore: 8, CutAfter: 5, MovesTried: 6, MovesKept: 4, RolledBack: 2},
		{Level: 0, Engine: "CLIP", Pass: 0, CutBefore: 5, CutAfter: 3, MovesTried: 9, MovesKept: 7, RolledBack: 2},
		{Level: 0, Engine: "CLIP", Pass: 1, CutBefore: 3, CutAfter: 3, MovesTried: 4, MovesKept: 0, RolledBack: 4},
	}
	if len(s.Coarsening) != len(wantLevels) {
		t.Fatalf("got %d level entries, want %d", len(s.Coarsening), len(wantLevels))
	}
	for i, l := range s.Coarsening {
		if l != wantLevels[i] {
			t.Errorf("level[%d] = %+v, want %+v", i, l, wantLevels[i])
		}
	}
	if len(s.Passes) != len(wantPasses) {
		t.Fatalf("got %d pass entries, want %d", len(s.Passes), len(wantPasses))
	}
	for i, p := range s.Passes {
		if p != wantPasses[i] {
			t.Errorf("pass[%d] = %+v, want %+v", i, p, wantPasses[i])
		}
	}
	if s.Rebalances != 2 || s.RebalanceMoved != 2 {
		t.Errorf("rebalances = %d moved = %d, want 2 and 2", s.Rebalances, s.RebalanceMoved)
	}
	if s.Start != 0 || s.Outcome != "ok" || s.Attempts != 2 || s.Cost != 3 {
		t.Errorf("header = %+v, want start 0 outcome ok attempts 2 cost 3", s)
	}
	if s.Timings.TotalNS != 1234 {
		t.Errorf("TotalNS = %d, want 1234", s.Timings.TotalNS)
	}

	// TakeStart must have reset the collector: a second take is empty
	// and does not re-observe the first start's counters.
	s2 := c.TakeStart(1, "failed", 3, -1, 0)
	if s2.Coarsening != nil || s2.Passes != nil || s2.Rebalances != 0 || s2.RebalanceMoved != 0 {
		t.Fatalf("second TakeStart not reset: %+v", s2)
	}
	if s2.Start != 1 || s2.Outcome != "failed" || s2.Attempts != 3 || s2.Cost != -1 {
		t.Errorf("second header = %+v", s2)
	}
}

// TestMatchPendingFoldedOnce checks that RecordMatch counts fold into
// exactly the next RecordLevel and then clear.
func TestMatchPendingFoldedOnce(t *testing.T) {
	c := New()
	c.RecordMatch(3, 1)
	c.RecordLevel(4, 4, 8, 2)
	c.SetLevel(1)
	c.RecordLevel(2, 1, 2, 4) // no RecordMatch before this one
	s := c.TakeStart(0, "ok", 1, 0, 0)
	if s.Coarsening[0].MatchedPairs != 3 || s.Coarsening[0].Singletons != 1 {
		t.Errorf("level 0 match counts = %+v", s.Coarsening[0])
	}
	if s.Coarsening[1].MatchedPairs != 0 || s.Coarsening[1].Singletons != 0 {
		t.Errorf("stale match counts leaked into level 1: %+v", s.Coarsening[1])
	}
}

// TestTimers checks stage attribution and that TakeStart clears the
// accumulated stage times.
func TestTimers(t *testing.T) {
	c := New()
	c.addNS(StageCoarsen, 10)
	c.addNS(StageRefine, 20)
	c.addNS(StageProject, 30)
	c.addNS(StageRebalance, 40)
	c.addNS(StageCoarsen, 5)
	s := c.TakeStart(0, "ok", 1, 0, 100)
	want := StageTimings{CoarsenNS: 15, RefineNS: 20, ProjectNS: 30, RebalanceNS: 40, TotalNS: 100}
	if s.Timings != want {
		t.Fatalf("timings = %+v, want %+v", s.Timings, want)
	}
	s2 := c.TakeStart(1, "ok", 1, 0, 0)
	if s2.Timings != (StageTimings{}) {
		t.Fatalf("timings not reset: %+v", s2.Timings)
	}

	// A real timer must accumulate a non-negative duration without
	// panicking; exact values are wall-clock and not asserted.
	tm := c.StartTimer(StageRefine)
	tm.Stop()
	s3 := c.TakeStart(2, "ok", 1, 0, 0)
	if s3.Timings.RefineNS < 0 {
		t.Fatalf("negative refine time %d", s3.Timings.RefineNS)
	}
}

// TestReportAssembly covers AttachStart order, FinishRun, StripTimings
// and the WriteJSON encoding.
func TestReportAssembly(t *testing.T) {
	c := New()
	c.AttachStart(StartStats{Start: 0, Outcome: "ok", Attempts: 1, Cost: 7,
		Timings: StageTimings{CoarsenNS: 11, TotalNS: 50}})
	c.AttachStart(StartStats{Start: 1, Outcome: "failed", Attempts: 2, Cost: -1,
		Timings: StageTimings{TotalNS: 60}})
	c.FinishRun(2, 42, 2, 0, 7, 7, 3)

	r := c.Report()
	if r == nil {
		t.Fatal("nil report from armed collector")
	}
	if r.Schema != SchemaVersion {
		t.Errorf("schema = %q, want %q", r.Schema, SchemaVersion)
	}
	if r.K != 2 || r.Seed != 42 || r.Starts != 2 || r.BestStart != 0 ||
		r.Cut != 7 || r.SumDegrees != 7 || r.Levels != 3 {
		t.Errorf("header = %+v", r)
	}
	if len(r.PerStart) != 2 || r.PerStart[0].Start != 0 || r.PerStart[1].Start != 1 {
		t.Fatalf("per-start order wrong: %+v", r.PerStart)
	}

	r.StripTimings()
	for i, s := range r.PerStart {
		if s.Timings != (StageTimings{}) {
			t.Errorf("per_start[%d] timings survived StripTimings: %+v", i, s.Timings)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("WriteJSON output missing trailing newline")
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Schema != SchemaVersion || len(back.PerStart) != 2 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	for _, field := range []string{`"schema"`, `"per_start"`, `"matched_pairs"`, `"best_start"`} {
		if !strings.Contains(out, field) && field != `"matched_pairs"` {
			t.Errorf("encoded JSON missing %s", field)
		}
	}
	// Empty Coarsening/Passes must be omitted, not encoded as null.
	if strings.Contains(out, `"coarsening"`) || strings.Contains(out, `"passes"`) {
		t.Error("empty coarsening/passes slices were encoded")
	}
}
