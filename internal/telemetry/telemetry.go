// Package telemetry is the structured-statistics layer of the
// multilevel pipeline: per-level coarsening stats, per-pass FM/CLIP
// and k-way refinement stats, rebalance counters, and wall-clock
// timings per stage, assembled into a machine-readable Report.
//
// Production overhead: a nil *Collector is the off state. Every
// instrumented site compiles to a single pointer check (the methods
// are nil-receiver no-ops), mirroring internal/faultinject — a
// disabled collector costs nothing measurable.
//
// Determinism contract: a Collector is owned by one goroutine. The
// multi-start supervisor gives each attempt its own child collector
// (NewChild) and merges the kept children into the parent in start
// order after the worker pool drains, so an armed Report is
// bit-identical across Parallelism values — except the *NS timing
// fields, which are wall-clock measurements; StripTimings zeroes them
// for byte-for-byte comparison.
package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// SchemaVersion identifies the Report JSON layout; bump on any
// incompatible field change.
const SchemaVersion = "mlpart-stats/1"

// Stage names one timed phase of the pipeline.
type Stage int

const (
	// StageCoarsen covers Match + Induce per level.
	StageCoarsen Stage = iota
	// StageRefine covers the coarsest partitioning and every
	// per-level engine refinement.
	StageRefine
	// StageProject covers solution projection between levels.
	StageProject
	// StageRebalance covers explicit rebalancing (initial-solution
	// and degraded-path rebalances).
	StageRebalance
)

// LevelStat describes one coarsening level: the coarse hypergraph
// produced by the level's Match + Induce step.
type LevelStat struct {
	// Level is the 0-based coarsening step (level 0 clusters H_0).
	Level int `json:"level"`
	// Cells, Nets, Pins describe the induced coarse hypergraph.
	Cells int `json:"cells"`
	Nets  int `json:"nets"`
	Pins  int `json:"pins"`
	// MatchedPairs is how many two-cell clusters Match formed;
	// Singletons is how many cells stayed unmatched.
	MatchedPairs int `json:"matched_pairs"`
	Singletons   int `json:"singletons"`
	// LargestClusterArea is the max cell area of the coarse
	// hypergraph — the A(v*) term of the §III.B balance bound.
	LargestClusterArea int64 `json:"largest_cluster_area"`
}

// PassStat describes one refinement pass of an engine at one level.
type PassStat struct {
	// Level is the hierarchy level being refined (0 = H_0).
	Level int `json:"level"`
	// Engine is the bucket engine ("FM", "CLIP", "PROP", "CL-PR", or
	// "kway-FM"/"kway-CLIP" for the multi-way refiner).
	Engine string `json:"engine"`
	// Pass is the 0-based pass index within the engine invocation.
	Pass int `json:"pass"`
	// CutBefore/CutAfter are the engine's incrementally maintained
	// objective before and after the pass (active cut for FM/CLIP,
	// the configured objective for k-way); -1 when the engine keeps
	// no incremental counter (PROP).
	CutBefore int `json:"cut_before"`
	CutAfter  int `json:"cut_after"`
	// MovesTried counts all moves attempted in the pass; MovesKept
	// counts those surviving the rollback to the best prefix;
	// RolledBack is the difference (the rollback depth).
	MovesTried int `json:"moves_tried"`
	MovesKept  int `json:"moves_kept"`
	RolledBack int `json:"rolled_back"`
}

// StageTimings is the wall-clock-and-machine profile of one start.
// All fields describe how the run executed, not what it computed —
// they vary with IntraParallelism and worker counts while the
// algorithmic payload stays bit-identical — so StripTimings zeroes
// the whole struct for byte-for-byte report comparison.
type StageTimings struct {
	CoarsenNS   int64 `json:"coarsen_ns"`
	RefineNS    int64 `json:"refine_ns"`
	ProjectNS   int64 `json:"project_ns"`
	RebalanceNS int64 `json:"rebalance_ns"`
	// TotalNS is the supervised start's end-to-end duration,
	// including retries.
	TotalNS int64 `json:"total_ns"`
	// IntraWorkers is the intra-attempt pool size the start ran with
	// (0 = serial pipeline). Execution-profile data, stripped with the
	// timings: the payload is identical for every worker count.
	IntraWorkers int `json:"intra_workers"`
	// CoarsenParRegions / RefineParRegions count the parallel regions
	// (pool.Run calls) each stage dispatched. Deterministic for a
	// fixed configuration, but 0-vs-nonzero depends on IntraWorkers,
	// so they live with the timings and are stripped with them.
	CoarsenParRegions int64 `json:"coarsen_par_regions"`
	RefineParRegions  int64 `json:"refine_par_regions"`
}

// StartStats aggregates one supervised start (its kept attempt).
type StartStats struct {
	// Start is the 0-based start index.
	Start int `json:"start"`
	// Outcome is the supervisor's taxonomy for the start (ok /
	// recovered / retried / timed-out / cancelled / failed).
	Outcome string `json:"outcome"`
	// Attempts is 1 + retries used.
	Attempts int `json:"attempts"`
	// Cost is the kept solution's objective; -1 when the start
	// produced no solution.
	Cost int `json:"cost"`
	// Coarsening holds one entry per coarsening level, in level
	// order.
	Coarsening []LevelStat `json:"coarsening,omitempty"`
	// Passes holds one entry per refinement pass, in execution
	// order (coarsest level first).
	Passes []PassStat `json:"passes,omitempty"`
	// Rebalances counts explicit rebalance invocations;
	// RebalanceMoved sums the cells they moved.
	Rebalances     int `json:"rebalances"`
	RebalanceMoved int `json:"rebalance_moved"`
	// Timings is the start's wall-clock profile.
	Timings StageTimings `json:"timings"`
}

// Report is the machine-readable run report (the -stats-json
// payload). Everything except the StageTimings fields is a pure
// function of (input, options, seed).
type Report struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// K is the block count of the run (2 or 4).
	K int `json:"k"`
	// Seed is the base seed.
	Seed int64 `json:"seed"`
	// Starts/BestStart/Cut/SumDegrees/Levels mirror the public Info.
	Starts     int `json:"starts"`
	BestStart  int `json:"best_start"`
	Cut        int `json:"cut"`
	SumDegrees int `json:"sum_degrees"`
	Levels     int `json:"levels"`
	// PerStart holds the per-start aggregates in start order.
	PerStart []StartStats `json:"per_start"`
}

// StripTimings zeroes every wall-clock field so two reports from the
// same (input, options, seed) compare byte-identical regardless of
// Parallelism or machine load.
func (r *Report) StripTimings() {
	for i := range r.PerStart {
		r.PerStart[i].Timings = StageTimings{}
	}
}

// WriteJSON writes the report as indented JSON with a trailing
// newline — the canonical -stats-json encoding.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Collector accumulates telemetry for one run. A nil *Collector is
// the disabled state: every method is a nil-receiver no-op, so
// instrumented sites cost one pointer check.
//
// A Collector is not safe for concurrent use; the supervisor derives
// one child per attempt (NewChild) and merges sequentially.
type Collector struct {
	level int

	// pending Match counters, folded into the next RecordLevel.
	pendingPairs      int
	pendingSingletons int

	cur    StartStats
	report Report
}

// New returns an armed collector. Pipeline packages never call New:
// collectors arrive via configuration (Options.Telemetry and the
// internal Config fields) or are derived with NewChild — the
// telemetry-thread lint check enforces this.
func New() *Collector { return &Collector{} }

// Enabled reports whether the collector is armed.
func (c *Collector) Enabled() bool { return c != nil }

// NewChild derives a fresh per-attempt collector; nil-safe (a
// disabled parent derives a disabled child).
func (c *Collector) NewChild() *Collector {
	if c == nil {
		return nil
	}
	return New()
}

// SetLevel sets the hierarchy level attributed to subsequent
// RecordLevel/RecordPass calls.
func (c *Collector) SetLevel(level int) {
	if c == nil {
		return
	}
	c.level = level
}

// RecordMatch records the pairing outcome of one Match invocation;
// the counts are folded into the next RecordLevel entry.
func (c *Collector) RecordMatch(pairs, singletons int) {
	if c == nil {
		return
	}
	c.pendingPairs = pairs
	c.pendingSingletons = singletons
}

// RecordLevel appends the coarse-hypergraph shape of the current
// level, consuming any pending RecordMatch counts.
func (c *Collector) RecordLevel(cells, nets, pins int, largestClusterArea int64) {
	if c == nil {
		return
	}
	c.cur.Coarsening = append(c.cur.Coarsening, LevelStat{
		Level:              c.level,
		Cells:              cells,
		Nets:               nets,
		Pins:               pins,
		MatchedPairs:       c.pendingPairs,
		Singletons:         c.pendingSingletons,
		LargestClusterArea: largestClusterArea,
	})
	c.pendingPairs, c.pendingSingletons = 0, 0
}

// RecordPass appends one refinement-pass entry at the current level.
// tried counts all moves attempted, kept those surviving rollback.
func (c *Collector) RecordPass(engine string, pass, cutBefore, cutAfter, tried, kept int) {
	if c == nil {
		return
	}
	c.cur.Passes = append(c.cur.Passes, PassStat{
		Level:      c.level,
		Engine:     engine,
		Pass:       pass,
		CutBefore:  cutBefore,
		CutAfter:   cutAfter,
		MovesTried: tried,
		MovesKept:  kept,
		RolledBack: tried - kept,
	})
}

// RecordIntraWorkers records the intra-attempt pool size the start ran
// with (0 = serial pipeline).
func (c *Collector) RecordIntraWorkers(workers int) {
	if c == nil {
		return
	}
	c.cur.Timings.IntraWorkers = workers
}

// RecordParRegions adds parallel-region counts (pool.Run dispatches)
// to the given stage's profile; only the coarsen and refine stages
// have parallel regions.
func (c *Collector) RecordParRegions(stage Stage, regions int64) {
	if c == nil {
		return
	}
	switch stage {
	case StageCoarsen:
		c.cur.Timings.CoarsenParRegions += regions
	case StageRefine:
		c.cur.Timings.RefineParRegions += regions
	}
}

// RecordRebalance counts one explicit rebalance that moved the given
// number of cells.
func (c *Collector) RecordRebalance(moved int) {
	if c == nil {
		return
	}
	c.cur.Rebalances++
	c.cur.RebalanceMoved += moved
}

// Timer accumulates one stage's elapsed wall-clock time on Stop. The
// zero Timer (from a nil collector) is a no-op.
type Timer struct {
	c     *Collector
	stage Stage
	t0    time.Time
}

// StartTimer begins timing a stage; pair with Stop.
func (c *Collector) StartTimer(stage Stage) Timer {
	if c == nil {
		return Timer{}
	}
	return Timer{c: c, stage: stage, t0: time.Now()}
}

// Stop adds the elapsed time to the timer's stage.
func (t Timer) Stop() {
	if t.c == nil {
		return
	}
	t.c.addNS(t.stage, time.Since(t.t0).Nanoseconds())
}

func (c *Collector) addNS(stage Stage, ns int64) {
	switch stage {
	case StageCoarsen:
		c.cur.Timings.CoarsenNS += ns
	case StageRefine:
		c.cur.Timings.RefineNS += ns
	case StageProject:
		c.cur.Timings.ProjectNS += ns
	case StageRebalance:
		c.cur.Timings.RebalanceNS += ns
	}
}

// TakeStart finalizes the per-attempt accumulation into a StartStats
// and resets the collector for reuse. Called by the supervisor on the
// kept attempt's child collector; nil-safe, returning a skeleton
// entry so disabled children still merge deterministically.
func (c *Collector) TakeStart(start int, outcome string, attempts, cost int, totalNS int64) StartStats {
	s := StartStats{Start: start, Outcome: outcome, Attempts: attempts, Cost: cost}
	if c != nil {
		s.Coarsening = c.cur.Coarsening
		s.Passes = c.cur.Passes
		s.Rebalances = c.cur.Rebalances
		s.RebalanceMoved = c.cur.RebalanceMoved
		s.Timings = c.cur.Timings
		c.cur = StartStats{}
		c.pendingPairs, c.pendingSingletons = 0, 0
		c.level = 0
	}
	s.Timings.TotalNS = totalNS
	return s
}

// AttachStart appends one start's aggregate to the report. The
// supervisor calls this in start order after the pool drains, which
// is what makes the report parallelism-invariant.
func (c *Collector) AttachStart(s StartStats) {
	if c == nil {
		return
	}
	c.report.PerStart = append(c.report.PerStart, s)
}

// FinishRun fills the report header. Called exactly once per run by
// the public API's shared Info-assembly helper.
func (c *Collector) FinishRun(k int, seed int64, starts, bestStart, cut, sumDegrees, levels int) {
	if c == nil {
		return
	}
	c.report.Schema = SchemaVersion
	c.report.K = k
	c.report.Seed = seed
	c.report.Starts = starts
	c.report.BestStart = bestStart
	c.report.Cut = cut
	c.report.SumDegrees = sumDegrees
	c.report.Levels = levels
}

// Report returns the assembled run report, or nil for a disabled
// collector. Valid after the run completes; the pointer aliases the
// collector's state, so copy before reusing the collector.
func (c *Collector) Report() *Report {
	if c == nil {
		return nil
	}
	return &c.report
}
