package telemetry

// Service-level statistics for mlpartd, the long-running partitioning
// daemon. Unlike the per-run Collector — which is single-goroutine by
// contract and merged deterministically by the supervisor — the
// ServiceCollector is hit concurrently by the accept loop, the worker
// pool, and the drain path, so every counter is atomic and a snapshot
// is taken with plain loads (the counters are independent; a snapshot
// is not required to be a consistent cut across all of them).
//
// The same threading rule applies as for Collector: never hold one in
// a package-level variable (the telemetry-thread lint enforces this);
// the server owns its collector and hands references down.

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// ServiceSchemaVersion identifies the /statsz JSON layout; bump on
// any incompatible field change.
const ServiceSchemaVersion = "mlpartd-stats/1"

// ServiceReport is the machine-readable service snapshot served at
// /statsz and validated by cmd/statscheck. Counters are monotonic
// since process start; gauges describe the instant of the snapshot.
type ServiceReport struct {
	// Schema is ServiceSchemaVersion.
	Schema string `json:"schema"`

	// Accepted counts jobs admitted past the admission queue —
	// every one of them reaches exactly one terminal status below.
	Accepted int64 `json:"accepted"`
	// RejectedQueueFull counts submissions shed with a 429 because
	// the admission queue was at capacity.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	// RejectedDraining counts submissions refused with a 503 because
	// the server was draining.
	RejectedDraining int64 `json:"rejected_draining"`
	// Invalid counts submissions rejected before admission for
	// malformed input (bad JSON, bad netlist, bad options).
	Invalid int64 `json:"invalid"`

	// Terminal-status counters; their sum plus the queued and running
	// gauges equals Accepted.
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Cancelled        int64 `json:"cancelled"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Drained          int64 `json:"drained"`

	// Retried counts job execution attempts beyond each job's first —
	// the server-side retry/backoff path, not the supervisor's
	// per-start retries.
	Retried int64 `json:"retried"`

	// Crash-recovery counters (write-ahead journal). Recovered counts
	// jobs re-enqueued at startup because a previous process died
	// after accepting them but before they reached a terminal status;
	// every recovered job is also counted in Accepted, so the ledger
	// balance equation holds across restarts. ReplayedTerminal counts
	// journal terminal records replayed at startup — closed jobs that
	// must not be re-run (they keep their id as a tombstone but touch
	// no other counter). TornTailTruncated counts journal replays that
	// had to drop a torn tail. JournalAppendErrors counts lifecycle
	// records that could not be made durable (the job proceeded in
	// memory; a crash before its terminal record re-runs it).
	Recovered           int64 `json:"recovered"`
	ReplayedTerminal    int64 `json:"replayed_terminal"`
	TornTailTruncated   int64 `json:"torn_tail_truncated"`
	JournalAppendErrors int64 `json:"journal_append_errors"`

	// IdempotentReplays counts submissions answered with an existing
	// job because their Idempotency-Key was already registered; they
	// are not admitted again and do not count in Accepted.
	IdempotentReplays int64 `json:"idempotent_replays"`

	// CacheHits / CacheMisses count result-cache lookups for
	// accepted jobs.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Batched counts accepted jobs executed on the micro-batch lane
	// (small jobs coalesced onto a shared-workspace worker); every
	// batched job is also counted in Accepted, so Batched <= Accepted.
	// BatchFlushes counts batches cut (by size, linger, or close);
	// BatchFlushes is bumped before any of the batch's jobs is counted
	// in Batched, so Batched > 0 implies BatchFlushes > 0 at every
	// sampling instant — cmd/statscheck enforces both invariants.
	Batched      int64 `json:"batched"`
	BatchFlushes int64 `json:"batch_flushes"`

	// EventsDropped counts event-stream subscribers disconnected
	// because they could not keep up: a publish that would block drops
	// the subscriber, never the job.
	EventsDropped int64 `json:"events_dropped"`

	// Queued and Running are instantaneous gauges; QueueCap is the
	// admission queue capacity.
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	QueueCap int   `json:"queue_cap"`
	// Draining reports that the server has stopped admitting and is
	// winding down.
	Draining bool `json:"draining"`
	// UptimeNS is the wall-clock age of the service at snapshot time.
	// Like the per-run *_ns fields it is nondeterministic.
	UptimeNS int64 `json:"uptime_ns"`
}

// WriteJSON writes the report as indented JSON with a trailing
// newline — the canonical /statsz encoding, matching Report.WriteJSON.
func (r *ServiceReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ServiceCollector accumulates the service counters. All methods are
// safe for concurrent use. The zero value is ready to use.
type ServiceCollector struct {
	accepted          atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	invalid           atomic.Int64
	completed         atomic.Int64
	failed            atomic.Int64
	cancelled         atomic.Int64
	deadlineExceeded  atomic.Int64
	drained           atomic.Int64
	retried           atomic.Int64
	recovered         atomic.Int64
	replayedTerminal  atomic.Int64
	tornTruncated     atomic.Int64
	journalAppendErrs atomic.Int64
	idempotentReplays atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	batched           atomic.Int64
	batchFlushes      atomic.Int64
	eventsDropped     atomic.Int64
	queued            atomic.Int64
	running           atomic.Int64

	// bench aggregates the per-stage wall-clock profile of executed
	// attempts by algorithm, for the mlpart-bench/1 view of /statsz.
	// A mutex (not atomics) because one attempt updates several fields
	// that the bench snapshot reads together.
	bench struct {
		mu  sync.Mutex
		agg map[int]*benchAgg // keyed by k (2, 4)
	}
}

// benchAgg is the cumulative stage profile of every executed attempt
// for one algorithm.
type benchAgg struct {
	jobs        int64
	cut, levels int // last observed — a sample, not a sum
	stage       BenchStageNS
}

// Accept records one admitted job entering the queue.
func (s *ServiceCollector) Accept() {
	s.accepted.Add(1)
	s.queued.Add(1)
}

// RejectQueueFull records one submission shed at a full queue.
func (s *ServiceCollector) RejectQueueFull() { s.rejectedQueueFull.Add(1) }

// RejectDraining records one submission refused during drain.
func (s *ServiceCollector) RejectDraining() { s.rejectedDraining.Add(1) }

// RejectInvalid records one malformed submission.
func (s *ServiceCollector) RejectInvalid() { s.invalid.Add(1) }

// StartJob moves one job from queued to running.
func (s *ServiceCollector) StartJob() {
	s.queued.Add(-1)
	s.running.Add(1)
}

// Retry records one job execution attempt beyond the first.
func (s *ServiceCollector) Retry() { s.retried.Add(1) }

// RecoverJob records one journaled job re-enqueued at startup; the
// caller also calls Accept for it, keeping the ledger balanced.
func (s *ServiceCollector) RecoverJob() { s.recovered.Add(1) }

// ReplayTerminal records one journal terminal record replayed at
// startup — a closed job that will not be re-run.
func (s *ServiceCollector) ReplayTerminal() { s.replayedTerminal.Add(1) }

// TornTail records one journal replay that truncated a torn tail.
func (s *ServiceCollector) TornTail() { s.tornTruncated.Add(1) }

// JournalAppendError records one lifecycle record that could not be
// made durable.
func (s *ServiceCollector) JournalAppendError() { s.journalAppendErrs.Add(1) }

// IdempotentReplay records one submission deduplicated by its
// Idempotency-Key.
func (s *ServiceCollector) IdempotentReplay() { s.idempotentReplays.Add(1) }

// CacheHit / CacheMiss record one result-cache lookup.
func (s *ServiceCollector) CacheHit()  { s.cacheHits.Add(1) }
func (s *ServiceCollector) CacheMiss() { s.cacheMisses.Add(1) }

// BatchFlush records one micro-batch cut and handed to a batch
// worker. The worker calls it before BatchJob for any of the batch's
// jobs, preserving the Batched > 0 => BatchFlushes > 0 invariant.
func (s *ServiceCollector) BatchFlush() { s.batchFlushes.Add(1) }

// BatchJob records one job executed on the micro-batch lane.
func (s *ServiceCollector) BatchJob() { s.batched.Add(1) }

// EventDropped records one event-stream subscriber dropped for
// falling behind.
func (s *ServiceCollector) EventDropped() { s.eventsDropped.Add(1) }

// AddStage folds one executed attempt's stage profile into the
// per-algorithm bench aggregate.
func (s *ServiceCollector) AddStage(k, cut, levels int, t StageTimings) {
	s.bench.mu.Lock()
	defer s.bench.mu.Unlock()
	if s.bench.agg == nil {
		s.bench.agg = make(map[int]*benchAgg)
	}
	a := s.bench.agg[k]
	if a == nil {
		a = &benchAgg{}
		s.bench.agg[k] = a
	}
	a.jobs++
	a.cut, a.levels = cut, levels
	a.stage.CoarsenNS += t.CoarsenNS
	a.stage.RefineNS += t.RefineNS
	a.stage.ProjectNS += t.ProjectNS
	a.stage.RebalanceNS += t.RebalanceNS
	a.stage.TotalNS += t.TotalNS
}

// FinishJob records a running job reaching the named terminal status
// ("completed", "failed", "cancelled", "deadline-exceeded", or
// "drained"); fromQueue finishes a job that never started running
// (drained or cancelled while still queued).
func (s *ServiceCollector) FinishJob(status string, fromQueue bool) {
	if fromQueue {
		s.queued.Add(-1)
	} else {
		s.running.Add(-1)
	}
	switch status {
	case "completed":
		s.completed.Add(1)
	case "failed":
		s.failed.Add(1)
	case "cancelled":
		s.cancelled.Add(1)
	case "deadline-exceeded":
		s.deadlineExceeded.Add(1)
	case "drained":
		s.drained.Add(1)
	}
}

// Snapshot assembles a report from the current counter values.
// queueCap, draining and uptimeNS are server state owned by the
// caller.
func (s *ServiceCollector) Snapshot(queueCap int, draining bool, uptimeNS int64) ServiceReport {
	return ServiceReport{
		Schema:              ServiceSchemaVersion,
		Accepted:            s.accepted.Load(),
		RejectedQueueFull:   s.rejectedQueueFull.Load(),
		RejectedDraining:    s.rejectedDraining.Load(),
		Invalid:             s.invalid.Load(),
		Completed:           s.completed.Load(),
		Failed:              s.failed.Load(),
		Cancelled:           s.cancelled.Load(),
		DeadlineExceeded:    s.deadlineExceeded.Load(),
		Drained:             s.drained.Load(),
		Retried:             s.retried.Load(),
		Recovered:           s.recovered.Load(),
		ReplayedTerminal:    s.replayedTerminal.Load(),
		TornTailTruncated:   s.tornTruncated.Load(),
		JournalAppendErrors: s.journalAppendErrs.Load(),
		IdempotentReplays:   s.idempotentReplays.Load(),
		CacheHits:           s.cacheHits.Load(),
		CacheMisses:         s.cacheMisses.Load(),
		Batched:             s.batched.Load(),
		BatchFlushes:        s.batchFlushes.Load(),
		EventsDropped:       s.eventsDropped.Load(),
		Queued:              s.queued.Load(),
		Running:             s.running.Load(),
		QueueCap:            queueCap,
		Draining:            draining,
		UptimeNS:            uptimeNS,
	}
}

// The mlpart-bench/1 view: /statsz?schema=bench renders the service's
// cumulative per-stage timing aggregates in the exact JSON layout
// cmd/benchrun emits, so the same tooling reads offline benchmark
// reports and live service profiles. The struct trio below mirrors
// benchrun's stageNS / benchEntry / benchFile field for field.

// BenchSchemaVersion identifies the bench JSON layout.
const BenchSchemaVersion = "mlpart-bench/1"

// BenchStageNS is the per-stage wall-clock profile in nanoseconds.
type BenchStageNS struct {
	CoarsenNS   int64 `json:"coarsen_ns"`
	RefineNS    int64 `json:"refine_ns"`
	ProjectNS   int64 `json:"project_ns"`
	RebalanceNS int64 `json:"rebalance_ns"`
	TotalNS     int64 `json:"total_ns"`
}

// BenchEntry is one aggregate row. For the service view, Instance is
// the daemon name, Cut and Levels are the last observed values (a
// sample of what the lane is producing, not a sum), StageNS is
// cumulative over every executed attempt, and the allocation fields
// are zero — a live service cannot bracket runs with MemStats reads.
type BenchEntry struct {
	Instance         string       `json:"instance"`
	Algorithm        string       `json:"algorithm"`
	IntraParallelism int          `json:"intra_parallelism"`
	Cut              int          `json:"cut"`
	Levels           int          `json:"levels"`
	AllocsPerOp      uint64       `json:"allocs_per_op"`
	BytesPerOp       uint64       `json:"bytes_per_op"`
	StageNS          BenchStageNS `json:"stage_ns"`
}

// BenchReport is the mlpart-bench/1 document.
type BenchReport struct {
	Schema  string       `json:"schema"`
	Date    string       `json:"date"`
	GoVers  string       `json:"go_version"`
	Entries []BenchEntry `json:"entries"`
}

// WriteJSON writes the bench report in the canonical encoding.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// BenchSnapshot assembles the mlpart-bench/1 view from the stage
// aggregates. date is caller-supplied wall-clock state (the collector
// itself never reads the clock). Algorithms the service has not
// executed yet contribute no entry; k=2 sorts before k=4.
func (s *ServiceCollector) BenchSnapshot(date string) BenchReport {
	r := BenchReport{Schema: BenchSchemaVersion, Date: date, GoVers: runtime.Version()}
	s.bench.mu.Lock()
	defer s.bench.mu.Unlock()
	for _, k := range []int{2, 4} {
		a := s.bench.agg[k]
		if a == nil || a.jobs == 0 {
			continue
		}
		alg := "bipartition"
		if k == 4 {
			alg = "quadrisect"
		}
		r.Entries = append(r.Entries, BenchEntry{
			Instance:  "mlpartd",
			Algorithm: alg,
			Cut:       a.cut,
			Levels:    a.levels,
			StageNS:   a.stage,
		})
	}
	return r
}
