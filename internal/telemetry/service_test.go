package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestServiceCollectorLifecycle(t *testing.T) {
	var s ServiceCollector

	// Three accepted jobs: one completes, one fails after a retry,
	// one is drained straight out of the queue.
	s.Accept()
	s.Accept()
	s.Accept()
	s.CacheMiss()
	s.StartJob()
	s.FinishJob("completed", false)
	s.CacheMiss()
	s.StartJob()
	s.Retry()
	s.FinishJob("failed", false)
	s.FinishJob("drained", true)
	s.RejectQueueFull()
	s.RejectDraining()
	s.RejectInvalid()
	s.CacheHit()

	// One of the accepted jobs was a crash recovery; the journal also
	// replayed a closed job, truncated a torn tail, lost one append,
	// and deduplicated one idempotent retry.
	s.RecoverJob()
	s.ReplayTerminal()
	s.TornTail()
	s.JournalAppendError()
	s.IdempotentReplay()

	r := s.Snapshot(8, true, 123)
	if r.Schema != ServiceSchemaVersion {
		t.Errorf("schema %q", r.Schema)
	}
	want := ServiceReport{
		Schema: ServiceSchemaVersion, Accepted: 3,
		RejectedQueueFull: 1, RejectedDraining: 1, Invalid: 1,
		Completed: 1, Failed: 1, Drained: 1, Retried: 1,
		Recovered: 1, ReplayedTerminal: 1, TornTailTruncated: 1,
		JournalAppendErrors: 1, IdempotentReplays: 1,
		CacheHits: 1, CacheMisses: 2,
		QueueCap: 8, Draining: true, UptimeNS: 123,
	}
	if r != want {
		t.Errorf("snapshot = %+v, want %+v", r, want)
	}
	if sum := r.Completed + r.Failed + r.Cancelled + r.DeadlineExceeded + r.Drained + r.Queued + r.Running; sum != r.Accepted {
		t.Errorf("terminal+gauge sum %d != accepted %d", sum, r.Accepted)
	}
}

func TestServiceCollectorConcurrent(t *testing.T) {
	var s ServiceCollector
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Accept()
				s.StartJob()
				s.FinishJob("completed", false)
			}
		}()
	}
	wg.Wait()
	r := s.Snapshot(1, false, 1)
	if r.Accepted != workers*per || r.Completed != workers*per {
		t.Errorf("accepted %d completed %d, want %d", r.Accepted, r.Completed, workers*per)
	}
	if r.Queued != 0 || r.Running != 0 {
		t.Errorf("gauges queued %d running %d, want 0", r.Queued, r.Running)
	}
}

func TestServiceReportWriteJSON(t *testing.T) {
	var s ServiceCollector
	s.Accept()
	s.StartJob()
	s.FinishJob("completed", false)
	r := s.Snapshot(4, false, 99)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[buf.Len()-1] != '\n' {
		t.Error("missing trailing newline")
	}
	var back ServiceReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip: %+v != %+v", back, r)
	}
}
