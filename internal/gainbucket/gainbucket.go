// Package gainbucket implements the Fiduccia–Mattheyses gain-bucket
// data structure with selectable bucket organizations: LIFO, FIFO, or
// random, the implementation choice studied in §II.A of
// Alpert/Huang/Kahng (after Hagen, Huang, Kahng, "On Implementation
// Choices for Iterative Improvement Partitioning Algorithms").
//
// A Structure holds a set of cells keyed by an integer gain in
// [-maxGain, +maxGain] (or [-2·maxGain, +2·maxGain] for CLIP). Each
// bucket is an intrusive doubly-linked list over dense per-cell
// prev/next arrays, so insert, remove and update are O(1); the
// structure keeps a max-gain cursor that only ever descends within a
// pass and is bumped on insert, giving amortized O(1) maxima.
package gainbucket

import (
	"fmt"
	"math/rand"
)

// Order selects the bucket list organization, i.e. which of several
// equal-gain cells is returned first.
type Order int

const (
	// LIFO returns the most recently inserted cell first (a stack).
	// §II.A: distinctly superior to FIFO because it enforces
	// "locality" — naturally clustered modules move sequentially.
	LIFO Order = iota
	// FIFO returns the least recently inserted cell first (a queue).
	FIFO
	// Random returns a uniformly random cell of the bucket.
	Random
)

func (o Order) String() string {
	switch o {
	case LIFO:
		return "LIFO"
	case FIFO:
		return "FIFO"
	case Random:
		return "RND"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

const nilCell = int32(-1)

// Structure is one gain-bucket array over cells 0..n-1. An FM
// bipartitioner keeps two (one per side); a k-way partitioner keeps
// k·(k−1).
type Structure struct {
	order  Order
	rng    *rand.Rand
	offset int // bucket index = gain + offset
	heads  []int32
	tails  []int32 // maintained only for FIFO
	prev   []int32 // per cell
	next   []int32 // per cell
	bucket []int32 // per cell: bucket index, or -1 if absent
	maxIdx int     // highest possibly-non-empty bucket index
	size   int
}

// New returns a Structure for numCells cells with gains in
// [-maxGain, maxGain] and the given bucket order. rng is required for
// Order Random and ignored otherwise.
func New(numCells, maxGain int, order Order, rng *rand.Rand) *Structure {
	s := &Structure{}
	s.Reset(numCells, maxGain, order, rng)
	return s
}

// Reset reinitializes the structure for a (possibly different) cell
// count, gain range and order, reusing the backing arrays when they
// are large enough. A reset structure is indistinguishable from a
// freshly built one; it is how the fm workspace reuses bucket memory
// across hierarchy levels instead of reallocating per level.
func (s *Structure) Reset(numCells, maxGain int, order Order, rng *rand.Rand) {
	if maxGain < 0 {
		maxGain = 0
	}
	s.order = order
	s.rng = rng
	s.offset = maxGain
	s.heads = growCells(s.heads, 2*maxGain+1)
	if order == FIFO {
		s.tails = growCells(s.tails, 2*maxGain+1)
	} else {
		s.tails = nil
	}
	s.prev = growCells(s.prev, numCells)
	s.next = growCells(s.next, numCells)
	s.bucket = growCells(s.bucket, numCells)
	for i := range s.heads {
		s.heads[i] = nilCell
		if s.tails != nil {
			s.tails[i] = nilCell
		}
	}
	for i := range s.bucket {
		s.bucket[i] = nilCell
	}
	s.maxIdx = -1
	s.size = 0
}

// growCells returns a slice of exactly length n, reusing buf's backing
// array when it has the capacity. Contents are unspecified; Reset
// refills every array it needs initialized.
func growCells(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// Len returns the number of cells currently stored.
func (s *Structure) Len() int { return s.size }

// Contains reports whether cell v is in the structure.
func (s *Structure) Contains(v int32) bool { return s.bucket[v] != nilCell }

// Gain returns the gain key under which v is stored; v must be
// present.
func (s *Structure) Gain(v int32) int { return int(s.bucket[v]) - s.offset }

// MaxGain returns the range bound the structure was built with.
func (s *Structure) MaxGain() int { return s.offset }

// Insert adds cell v with the given gain. v must not already be
// present, and gain must lie within [-maxGain, maxGain].
func (s *Structure) Insert(v int32, gain int) {
	idx := gain + s.offset
	if idx < 0 || idx >= len(s.heads) {
		panic(fmt.Sprintf("gainbucket: gain %d outside [-%d,%d]", gain, s.offset, s.offset))
	}
	if s.bucket[v] != nilCell {
		panic(fmt.Sprintf("gainbucket: cell %d already present", v))
	}
	s.bucket[v] = int32(idx)
	head := s.heads[idx]
	if s.order == FIFO && head != nilCell {
		// Append at tail.
		tail := s.tails[idx]
		s.next[tail] = v
		s.prev[v] = tail
		s.next[v] = nilCell
		s.tails[idx] = v
	} else {
		// Push at head (LIFO and Random insert at head; Random
		// randomizes on removal instead).
		s.prev[v] = nilCell
		s.next[v] = head
		if head != nilCell {
			s.prev[head] = v
		}
		s.heads[idx] = v
		if s.tails != nil && s.tails[idx] == nilCell {
			s.tails[idx] = v
		}
	}
	if idx > s.maxIdx {
		s.maxIdx = idx
	}
	s.size++
}

// Remove deletes cell v; v must be present.
func (s *Structure) Remove(v int32) {
	idx := s.bucket[v]
	if idx == nilCell {
		panic(fmt.Sprintf("gainbucket: cell %d not present", v))
	}
	p, n := s.prev[v], s.next[v]
	if p != nilCell {
		s.next[p] = n
	} else {
		s.heads[idx] = n
	}
	if n != nilCell {
		s.prev[n] = p
	} else if s.tails != nil {
		s.tails[idx] = p
	}
	s.bucket[v] = nilCell
	s.size--
}

// Update moves cell v to a new gain; equivalent to Remove+Insert but
// callers use it to express intent.
func (s *Structure) Update(v int32, newGain int) {
	s.Remove(v)
	s.Insert(v, newGain)
}

// Best returns the cell that the bucket organization selects from the
// highest non-empty bucket, without removing it, together with its
// gain. ok is false if the structure is empty.
func (s *Structure) Best() (v int32, gain int, ok bool) {
	idx := s.topIndex()
	if idx < 0 {
		return 0, 0, false
	}
	return s.pick(idx), idx - s.offset, true
}

// Iterate walks the cells of the highest non-empty buckets in
// decreasing gain order, in the organization's preference order
// within a bucket, calling f for each; iteration stops when f returns
// false. It is how FM scans for the best *feasible* move without
// mutating the structure.
func (s *Structure) Iterate(f func(v int32, gain int) bool) {
	idx := s.topIndex()
	for ; idx >= 0; idx-- {
		if s.heads[idx] == nilCell {
			continue
		}
		if s.order == Random {
			// Visit in random order: collect then shuffle.
			var cells []int32
			for v := s.heads[idx]; v != nilCell; v = s.next[v] {
				cells = append(cells, v)
			}
			s.rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
			for _, v := range cells {
				if !f(v, idx-s.offset) {
					return
				}
			}
			continue
		}
		for v := s.heads[idx]; v != nilCell; v = s.next[v] {
			if !f(v, idx-s.offset) {
				return
			}
		}
	}
}

// topIndex advances the max cursor down to the highest non-empty
// bucket and returns it, or -1 if empty.
func (s *Structure) topIndex() int {
	if s.size == 0 {
		s.maxIdx = -1
		return -1
	}
	for s.maxIdx >= 0 && s.heads[s.maxIdx] == nilCell {
		s.maxIdx--
	}
	return s.maxIdx
}

// pick selects a cell from bucket idx according to the organization.
func (s *Structure) pick(idx int) int32 {
	switch s.order {
	case FIFO:
		// Head is oldest because FIFO appends at tail.
		return s.heads[idx]
	case Random:
		n := 0
		choice := s.heads[idx]
		for v := s.heads[idx]; v != nilCell; v = s.next[v] {
			n++
			if s.rng.Intn(n) == 0 {
				choice = v
			}
		}
		return choice
	default: // LIFO: head is newest.
		return s.heads[idx]
	}
}

// Clear removes all cells (O(n) over stored cells).
func (s *Structure) Clear() {
	for idx := 0; idx <= s.maxIdx && idx < len(s.heads); idx++ {
		for v := s.heads[idx]; v != nilCell; {
			n := s.next[v]
			s.bucket[v] = nilCell
			v = n
		}
		s.heads[idx] = nilCell
		if s.tails != nil {
			s.tails[idx] = nilCell
		}
	}
	s.maxIdx = -1
	s.size = 0
}

// ConcatenateToZero implements the CLIP preprocessing step of Dutt &
// Deng (§II.B): all buckets are concatenated into a single list —
// starting with the bucket with the largest index — which is then
// installed in the bucket with gain 0; all other buckets become
// empty. Afterwards only gain *deltas* move cells, which multiplies
// the gain change of recently moved modules by "an infinite factor".
//
// The concatenation preserves decreasing-initial-gain order, so a
// LIFO pop (head removal) returns the highest-initial-gain cell first
// exactly as CLIP requires.
func (s *Structure) ConcatenateToZero() {
	var first, last int32 = nilCell, nilCell
	for idx := len(s.heads) - 1; idx >= 0; idx-- {
		v := s.heads[idx]
		if v == nilCell {
			continue
		}
		if first == nilCell {
			first = v
		} else {
			s.next[last] = v
			s.prev[v] = last
		}
		// Find the end of this bucket's list.
		for s.next[v] != nilCell {
			v = s.next[v]
		}
		last = v
		s.heads[idx] = nilCell
		if s.tails != nil {
			s.tails[idx] = nilCell
		}
	}
	zero := s.offset
	s.heads[zero] = first
	if s.tails != nil {
		s.tails[zero] = last
	}
	for v := first; v != nilCell; v = s.next[v] {
		s.bucket[v] = int32(zero)
	}
	if first != nilCell {
		s.prev[first] = nilCell
		s.maxIdx = zero
	} else {
		s.maxIdx = -1
	}
}

// CheckInvariants validates the internal linked structure; used by
// tests.
func (s *Structure) CheckInvariants() error {
	count := 0
	for idx := range s.heads {
		var last int32 = nilCell
		for v := s.heads[idx]; v != nilCell; v = s.next[v] {
			if s.bucket[v] != int32(idx) {
				return fmt.Errorf("cell %d in bucket list %d but bucket[v]=%d", v, idx, s.bucket[v])
			}
			if s.prev[v] != last {
				return fmt.Errorf("cell %d prev=%d, want %d", v, s.prev[v], last)
			}
			last = v
			count++
			if count > len(s.bucket) {
				return fmt.Errorf("cycle detected in bucket %d", idx)
			}
		}
		if s.tails != nil && s.tails[idx] != last {
			return fmt.Errorf("bucket %d tail=%d, want %d", idx, s.tails[idx], last)
		}
	}
	if count != s.size {
		return fmt.Errorf("size %d but %d cells linked", s.size, count)
	}
	for idx := s.maxIdx + 1; idx < len(s.heads); idx++ {
		if s.heads[idx] != nilCell {
			return fmt.Errorf("bucket %d above maxIdx %d is non-empty", idx, s.maxIdx)
		}
	}
	return nil
}
