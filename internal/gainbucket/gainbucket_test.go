package gainbucket

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertBestRemove(t *testing.T) {
	s := New(10, 5, LIFO, nil)
	s.Insert(3, 2)
	s.Insert(7, -1)
	s.Insert(1, 4)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	v, g, ok := s.Best()
	if !ok || v != 1 || g != 4 {
		t.Fatalf("Best = (%d,%d,%v), want (1,4,true)", v, g, ok)
	}
	s.Remove(1)
	v, g, ok = s.Best()
	if !ok || v != 3 || g != 2 {
		t.Fatalf("Best after remove = (%d,%d,%v), want (3,2,true)", v, g, ok)
	}
	s.Remove(3)
	s.Remove(7)
	if _, _, ok := s.Best(); ok {
		t.Fatal("Best on empty structure should report !ok")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLIFOOrderWithinBucket(t *testing.T) {
	s := New(10, 3, LIFO, nil)
	s.Insert(1, 0)
	s.Insert(2, 0)
	s.Insert(3, 0)
	// LIFO: last inserted first.
	v, _, _ := s.Best()
	if v != 3 {
		t.Errorf("LIFO Best = %d, want 3", v)
	}
	s.Remove(3)
	v, _, _ = s.Best()
	if v != 2 {
		t.Errorf("LIFO Best = %d, want 2", v)
	}
}

func TestFIFOOrderWithinBucket(t *testing.T) {
	s := New(10, 3, FIFO, nil)
	s.Insert(1, 0)
	s.Insert(2, 0)
	s.Insert(3, 0)
	v, _, _ := s.Best()
	if v != 1 {
		t.Errorf("FIFO Best = %d, want 1", v)
	}
	s.Remove(1)
	v, _, _ = s.Best()
	if v != 2 {
		t.Errorf("FIFO Best = %d, want 2", v)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFIFOInterleavedRemove(t *testing.T) {
	s := New(10, 3, FIFO, nil)
	s.Insert(1, 1)
	s.Insert(2, 1)
	s.Remove(1)
	s.Insert(3, 1)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Best()
	if v != 2 {
		t.Errorf("Best = %d, want 2", v)
	}
	s.Remove(2)
	v, _, _ = s.Best()
	if v != 3 {
		t.Errorf("Best = %d, want 3", v)
	}
}

func TestRandomOrderCoversBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := map[int32]bool{}
	for trial := 0; trial < 200; trial++ {
		s := New(10, 3, Random, rng)
		s.Insert(1, 0)
		s.Insert(2, 0)
		s.Insert(3, 0)
		v, _, _ := s.Best()
		seen[v] = true
	}
	for _, want := range []int32{1, 2, 3} {
		if !seen[want] {
			t.Errorf("random selection never chose cell %d", want)
		}
	}
}

func TestUpdateMovesBuckets(t *testing.T) {
	s := New(5, 4, LIFO, nil)
	s.Insert(0, 1)
	s.Insert(1, 1)
	s.Update(0, 3)
	v, g, _ := s.Best()
	if v != 0 || g != 3 {
		t.Errorf("Best = (%d,%d), want (0,3)", v, g)
	}
	if s.Gain(1) != 1 {
		t.Errorf("Gain(1) = %d, want 1", s.Gain(1))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMaxCursorDescendsAndBumps(t *testing.T) {
	s := New(5, 4, LIFO, nil)
	s.Insert(0, 4)
	s.Insert(1, -4)
	s.Remove(0)
	if _, g, _ := s.Best(); g != -4 {
		t.Errorf("Best gain = %d, want -4", g)
	}
	s.Insert(2, 2)
	if _, g, _ := s.Best(); g != 2 {
		t.Errorf("Best gain = %d, want 2 after re-insert above cursor", g)
	}
}

func TestIterateDecreasingGain(t *testing.T) {
	s := New(10, 5, LIFO, nil)
	s.Insert(0, -2)
	s.Insert(1, 3)
	s.Insert(2, 3)
	s.Insert(3, 0)
	var gains []int
	s.Iterate(func(v int32, g int) bool {
		gains = append(gains, g)
		return true
	})
	want := []int{3, 3, 0, -2}
	if len(gains) != len(want) {
		t.Fatalf("iterated %d cells, want %d", len(gains), len(want))
	}
	for i := range want {
		if gains[i] != want[i] {
			t.Errorf("gain[%d] = %d, want %d", i, gains[i], want[i])
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	s := New(10, 5, LIFO, nil)
	for i := int32(0); i < 6; i++ {
		s.Insert(i, int(i%3))
	}
	n := 0
	s.Iterate(func(v int32, g int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("iterated %d cells, want 2", n)
	}
}

func TestIterateRandomVisitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(10, 5, Random, rng)
	for i := int32(0); i < 6; i++ {
		s.Insert(i, 1)
	}
	seen := map[int32]bool{}
	s.Iterate(func(v int32, g int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 6 {
		t.Errorf("random iterate saw %d cells, want 6", len(seen))
	}
}

func TestConcatenateToZero(t *testing.T) {
	s := New(10, 3, LIFO, nil)
	// Cells with initial gains: 5→3, 6→3, 7→1, 8→-2.
	s.Insert(5, 3)
	s.Insert(6, 3)
	s.Insert(7, 1)
	s.Insert(8, -2)
	s.ConcatenateToZero()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d after concat, want 4", s.Len())
	}
	// All cells now at gain 0; LIFO pops must come out in decreasing
	// initial gain order: 6 or 5 first (LIFO within-bucket order is
	// newest first: 6 then 5), then 7, then 8.
	var order []int32
	for s.Len() > 0 {
		v, g, _ := s.Best()
		if g != 0 {
			t.Errorf("gain = %d after concat, want 0", g)
		}
		order = append(order, v)
		s.Remove(v)
	}
	want := []int32{6, 5, 7, 8}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestConcatenateEmpty(t *testing.T) {
	s := New(4, 2, LIFO, nil)
	s.ConcatenateToZero()
	if _, _, ok := s.Best(); ok {
		t.Error("empty structure should stay empty after concat")
	}
}

func TestConcatenateFIFO(t *testing.T) {
	s := New(10, 3, FIFO, nil)
	s.Insert(1, 2)
	s.Insert(2, 2)
	s.Insert(3, -1)
	s.ConcatenateToZero()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// FIFO within bucket 2 was 1 then 2; concat preserves order.
	var order []int32
	for s.Len() > 0 {
		v, _, _ := s.Best()
		order = append(order, v)
		s.Remove(v)
	}
	want := []int32{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := New(10, 3, LIFO, nil)
	for i := int32(0); i < 5; i++ {
		s.Insert(i, int(i%3)-1)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len = %d after Clear", s.Len())
	}
	if s.Contains(2) {
		t.Error("Contains(2) after Clear")
	}
	s.Insert(2, 1) // must not panic
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPanicOnDoubleInsert(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double insert")
		}
	}()
	s := New(4, 2, LIFO, nil)
	s.Insert(1, 0)
	s.Insert(1, 1)
}

func TestPanicOnGainOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range gain")
		}
	}()
	s := New(4, 2, LIFO, nil)
	s.Insert(1, 5)
}

func TestPanicOnRemoveAbsent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on removing absent cell")
		}
	}()
	s := New(4, 2, LIFO, nil)
	s.Remove(1)
}

func TestZeroMaxGain(t *testing.T) {
	s := New(4, 0, LIFO, nil)
	s.Insert(0, 0)
	v, g, ok := s.Best()
	if !ok || v != 0 || g != 0 {
		t.Errorf("Best = (%d,%d,%v)", v, g, ok)
	}
}

// TestPropertyRandomOps drives a random sequence of insert / remove /
// update operations against all three orders and checks the linked
// structure plus a reference map after every step.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, order := range []Order{LIFO, FIFO, Random} {
			n := 20
			maxG := 6
			s := New(n, maxG, order, rng)
			ref := map[int32]int{}
			for step := 0; step < 300; step++ {
				v := int32(rng.Intn(n))
				switch rng.Intn(3) {
				case 0:
					if _, in := ref[v]; !in {
						g := rng.Intn(2*maxG+1) - maxG
						s.Insert(v, g)
						ref[v] = g
					}
				case 1:
					if _, in := ref[v]; in {
						s.Remove(v)
						delete(ref, v)
					}
				case 2:
					if _, in := ref[v]; in {
						g := rng.Intn(2*maxG+1) - maxG
						s.Update(v, g)
						ref[v] = g
					}
				}
			}
			if s.Len() != len(ref) {
				return false
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
			for v, g := range ref {
				if !s.Contains(v) || s.Gain(v) != g {
					return false
				}
			}
			// Best must return a max-gain cell.
			if len(ref) > 0 {
				best := -maxG - 1
				for _, g := range ref {
					if g > best {
						best = g
					}
				}
				if _, g, ok := s.Best(); !ok || g != best {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrderString(t *testing.T) {
	if LIFO.String() != "LIFO" || FIFO.String() != "FIFO" || Random.String() != "RND" {
		t.Error("Order String() labels wrong")
	}
	if Order(99).String() == "" {
		t.Error("unknown order should still stringify")
	}
}
