package gainbucket

// Differential tests: every bucket organization against a naive
// reference implementation (a flat slice of entries with insertion
// sequence numbers) over randomized insert/update/remove/extract-max
// sequences, 1000 seeded trials per organization. Each trial runs the
// same ops on a fresh New structure and on one long-lived structure
// recycled with Reset, so the workspace-reuse path is held to exactly
// the fresh-allocation behavior.

import (
	"math/rand"
	"testing"
)

// refStructure is the naive reference: a slice scanned linearly for
// every query. seq numbers record insertion order; Update re-inserts
// (new seq), matching Structure.Update's Remove+Insert.
type refStructure struct {
	entries map[int32]refEntry
	nextSeq int
}

type refEntry struct {
	gain int
	seq  int
}

func newRef() *refStructure {
	return &refStructure{entries: map[int32]refEntry{}}
}

func (r *refStructure) insert(v int32, gain int) {
	r.entries[v] = refEntry{gain: gain, seq: r.nextSeq}
	r.nextSeq++
}

func (r *refStructure) remove(v int32) { delete(r.entries, v) }

func (r *refStructure) update(v int32, gain int) {
	r.remove(v)
	r.insert(v, gain)
}

func (r *refStructure) len() int { return len(r.entries) }

// maxGain returns the highest stored gain; ok is false when empty.
func (r *refStructure) maxGain() (int, bool) {
	first := true
	best := 0
	for _, e := range r.entries {
		if first || e.gain > best {
			best = e.gain
			first = false
		}
	}
	return best, !first
}

// best returns the cell the given organization must select: highest
// gain, ties broken by insertion sequence (newest for LIFO, oldest
// for FIFO). Meaningless for Random.
func (r *refStructure) best(order Order) (int32, int, bool) {
	mg, ok := r.maxGain()
	if !ok {
		return 0, 0, false
	}
	var bestV int32
	bestSeq := -1
	for v, e := range r.entries {
		if e.gain != mg {
			continue
		}
		if bestSeq < 0 ||
			(order == LIFO && e.seq > bestSeq) ||
			(order == FIFO && e.seq < bestSeq) {
			bestV, bestSeq = v, e.seq
		}
	}
	return bestV, mg, true
}

// membersAtMax returns the set of cells holding the maximum gain.
func (r *refStructure) membersAtMax() map[int32]bool {
	mg, ok := r.maxGain()
	out := map[int32]bool{}
	if !ok {
		return out
	}
	for v, e := range r.entries {
		if e.gain == mg {
			out[v] = true
		}
	}
	return out
}

// TestDifferentialAgainstNaiveReference is the table-driven
// differential suite: 1000 seeded random op sequences per
// organization.
func TestDifferentialAgainstNaiveReference(t *testing.T) {
	const (
		trials   = 1000
		numCells = 16
		maxGain  = 8
		opsPer   = 60
	)
	for _, order := range []Order{LIFO, FIFO, Random} {
		t.Run(order.String(), func(t *testing.T) {
			// One recycled structure across all trials: Reset must make
			// it indistinguishable from the fresh one built per trial.
			recycled := New(1, 0, order, nil)
			for trial := 0; trial < trials; trial++ {
				seed := int64(trial)
				ops := rand.New(rand.NewSource(seed))
				fresh := New(numCells, maxGain, order, rand.New(rand.NewSource(seed+1)))
				recycled.Reset(numCells, maxGain, order, rand.New(rand.NewSource(seed+1)))
				ref := newRef()

				for op := 0; op < opsPer; op++ {
					v := int32(ops.Intn(numCells)) //mllint:ignore unchecked-narrow small test cell id
					switch {
					case ops.Intn(4) == 0 && ref.len() > 0:
						// extract-max: remove whatever Best selects.
						bv, bg, ok := fresh.Best()
						rv, rg, rok := recycled.Best()
						if !ok || !rok {
							t.Fatalf("trial %d op %d: Best empty with %d cells", trial, op, ref.len())
						}
						wantG, _ := ref.maxGain()
						if bg != wantG || rg != wantG {
							t.Fatalf("trial %d op %d: Best gain %d/%d, reference max %d", trial, op, bg, rg, wantG)
						}
						if order != Random {
							wv, _, _ := ref.best(order)
							if bv != wv {
								t.Fatalf("trial %d op %d: fresh Best cell %d, reference %d", trial, op, bv, wv)
							}
						}
						if !ref.membersAtMax()[bv] || !ref.membersAtMax()[rv] {
							t.Fatalf("trial %d op %d: Best returned a cell outside the max bucket", trial, op)
						}
						fresh.Remove(bv)
						recycled.Remove(rv)
						ref.remove(bv)
						if order != Random && bv != rv {
							t.Fatalf("trial %d op %d: fresh/recycled diverge: %d vs %d", trial, op, bv, rv)
						}
						if order == Random && bv != rv {
							// Both removals are legal max-bucket picks but
							// the mirrored states would drift; re-sync by
							// removing the counterpart too.
							fresh.Remove(rv)
							recycled.Remove(bv)
							ref.remove(rv)
						}
					case fresh.Contains(v) && ops.Intn(2) == 0:
						fresh.Remove(v)
						recycled.Remove(v)
						ref.remove(v)
					case fresh.Contains(v):
						g := ops.Intn(2*maxGain+1) - maxGain
						fresh.Update(v, g)
						recycled.Update(v, g)
						ref.update(v, g)
					default:
						g := ops.Intn(2*maxGain+1) - maxGain
						fresh.Insert(v, g)
						recycled.Insert(v, g)
						ref.insert(v, g)
					}

					if fresh.Len() != ref.len() || recycled.Len() != ref.len() {
						t.Fatalf("trial %d op %d: Len %d/%d, reference %d", trial, op, fresh.Len(), recycled.Len(), ref.len())
					}
					for c := int32(0); c < numCells; c++ {
						e, in := ref.entries[c]
						if fresh.Contains(c) != in || recycled.Contains(c) != in {
							t.Fatalf("trial %d op %d: Contains(%d) diverges from reference %v", trial, op, c, in)
						}
						if in && (fresh.Gain(c) != e.gain || recycled.Gain(c) != e.gain) {
							t.Fatalf("trial %d op %d: Gain(%d) = %d/%d, reference %d",
								trial, op, c, fresh.Gain(c), recycled.Gain(c), e.gain)
						}
					}
				}
				if err := fresh.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: fresh invariants: %v", trial, err)
				}
				if err := recycled.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: recycled invariants: %v", trial, err)
				}
			}
		})
	}
}

// TestDifferentialIterateOrder pins Iterate's within-bucket order
// against the reference for the deterministic organizations: LIFO
// yields newest-first, FIFO oldest-first, both in decreasing gain
// order across buckets.
func TestDifferentialIterateOrder(t *testing.T) {
	for _, order := range []Order{LIFO, FIFO} {
		for trial := 0; trial < 200; trial++ {
			ops := rand.New(rand.NewSource(int64(trial)))
			s := New(12, 6, order, nil)
			ref := newRef()
			for i := 0; i < 10; i++ {
				v := int32(ops.Intn(12)) //mllint:ignore unchecked-narrow small test cell id
				if s.Contains(v) {
					continue
				}
				g := ops.Intn(13) - 6
				s.Insert(v, g)
				ref.insert(v, g)
			}
			var got []int32
			s.Iterate(func(v int32, gain int) bool {
				if gain != ref.entries[v].gain {
					t.Fatalf("%v trial %d: Iterate gain %d for cell %d, reference %d",
						order, trial, gain, v, ref.entries[v].gain)
				}
				got = append(got, v)
				return true
			})
			// Reference order: sort by (gain desc, seq) with the
			// organization's tie direction.
			want := make([]int32, 0, ref.len())
			for v := range ref.entries {
				want = append(want, v)
			}
			for i := 1; i < len(want); i++ {
				for j := i; j > 0; j-- {
					a, b := ref.entries[want[j-1]], ref.entries[want[j]]
					swap := false
					if a.gain < b.gain {
						swap = true
					} else if a.gain == b.gain {
						if order == LIFO && a.seq < b.seq {
							swap = true
						}
						if order == FIFO && a.seq > b.seq {
							swap = true
						}
					}
					if swap {
						want[j-1], want[j] = want[j], want[j-1]
					} else {
						break
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v trial %d: Iterate visited %d cells, want %d", order, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: Iterate order %v, reference %v", order, trial, got, want)
				}
			}
		}
	}
}
