package netgen

// The 23 benchmark circuits of Table I, with module, net and pin
// counts exactly as published. Generate(TableISpecs()[i]) yields the
// synthetic stand-in for each.

// TableISpecs returns the full-size suite in Table-I order.
func TableISpecs() []Spec {
	return []Spec{
		{Name: "balu", Cells: 801, Nets: 735, Pins: 2697, Seed: 101},
		{Name: "bm1", Cells: 882, Nets: 903, Pins: 2910, Seed: 102},
		{Name: "primary1", Cells: 833, Nets: 902, Pins: 2908, Seed: 103},
		{Name: "test04", Cells: 1515, Nets: 1658, Pins: 5975, Seed: 104},
		{Name: "test03", Cells: 1607, Nets: 1618, Pins: 5807, Seed: 105},
		{Name: "test02", Cells: 1663, Nets: 1720, Pins: 6134, Seed: 106},
		{Name: "test06", Cells: 1752, Nets: 1541, Pins: 6638, Seed: 107},
		{Name: "struct", Cells: 1952, Nets: 1920, Pins: 5471, Seed: 108},
		{Name: "test05", Cells: 2595, Nets: 2750, Pins: 10076, Seed: 109},
		{Name: "19ks", Cells: 2844, Nets: 3282, Pins: 10547, Seed: 110},
		{Name: "primary2", Cells: 3014, Nets: 3029, Pins: 11219, Seed: 111},
		{Name: "s9234", Cells: 5866, Nets: 5844, Pins: 14065, Seed: 112},
		{Name: "biomed", Cells: 6514, Nets: 5742, Pins: 21040, Seed: 113},
		{Name: "s13207", Cells: 8772, Nets: 8651, Pins: 20606, Seed: 114},
		{Name: "s15850", Cells: 10470, Nets: 10383, Pins: 24712, Seed: 115},
		{Name: "industry2", Cells: 12637, Nets: 13419, Pins: 48404, Seed: 116},
		{Name: "industry3", Cells: 15406, Nets: 21923, Pins: 65792, Seed: 117},
		{Name: "s35932", Cells: 18148, Nets: 17828, Pins: 48145, Seed: 118},
		{Name: "s38584", Cells: 20995, Nets: 20717, Pins: 55203, Seed: 119},
		{Name: "avqsmall", Cells: 21918, Nets: 22124, Pins: 76231, Seed: 120},
		{Name: "s38417", Cells: 23849, Nets: 23843, Pins: 57613, Seed: 121},
		{Name: "avqlarge", Cells: 25178, Nets: 25384, Pins: 82751, Seed: 122},
		{Name: "golem3", Cells: 103048, Nets: 144949, Pins: 338419, Seed: 123},
	}
}

// Scale shrinks a spec by the given divisor (≥1), preserving the
// pins-per-net and nets-per-cell ratios, for fast experiment scales.
func Scale(s Spec, div int) Spec {
	if div <= 1 {
		return s
	}
	out := s
	out.Cells = max2(s.Cells/div, 16)
	out.Nets = max2(s.Nets/div, 16)
	out.Pins = max2(s.Pins/div, 2*out.Nets)
	return out
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SuiteScale names a preset experiment scale.
type SuiteScale string

const (
	// ScaleFull is Table-I sized (golem3 included); hours of CPU for
	// the 100-run tables.
	ScaleFull SuiteScale = "full"
	// ScaleMedium divides sizes by 4 and drops golem3.
	ScaleMedium SuiteScale = "medium"
	// ScaleSmall divides sizes by 16 and keeps the 12 smallest.
	ScaleSmall SuiteScale = "small"
	// ScaleTiny divides sizes by 64 and keeps the 6 smallest; used by
	// unit tests and testing.B benchmarks.
	ScaleTiny SuiteScale = "tiny"
)

// SuiteSpecs returns the benchmark specs for a preset scale.
func SuiteSpecs(scale SuiteScale) []Spec {
	all := TableISpecs()
	switch scale {
	case ScaleFull:
		return all
	case ScaleMedium:
		out := make([]Spec, 0, len(all)-1)
		for _, s := range all[:len(all)-1] { // drop golem3
			out = append(out, Scale(s, 4))
		}
		return out
	case ScaleSmall:
		out := make([]Spec, 0, 12)
		for _, s := range all[:12] {
			out = append(out, Scale(s, 16))
		}
		return out
	default: // ScaleTiny
		out := make([]Spec, 0, 6)
		for _, s := range all[:6] {
			out = append(out, Scale(s, 64))
		}
		return out
	}
}
