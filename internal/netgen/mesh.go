package netgen

import (
	"fmt"

	"mlpart/internal/hypergraph"
)

// Mesh generators: 2-D grid circuits in the style of the
// finite-element graphs that the multilevel partitioners the paper
// builds on (Chaco [22], Metis [27]) were designed for. Meshes have
// known near-optimal cuts (a straight cut across a W×H grid severs
// min(W, H) edges), which makes them the repository's ground-truth
// workload: tests can check how close each partitioner gets to the
// geometric optimum, something the random hierarchical circuits
// cannot offer.

// MeshSpec describes a rectangular grid circuit.
type MeshSpec struct {
	// Width and Height of the grid; cells sit at the lattice points.
	Width, Height int
	// FourPin, when true, additionally emits a 4-pin net per unit
	// square (a crude model of local hyperedges); otherwise the mesh
	// has only the 2-pin horizontal/vertical edges.
	FourPin bool
}

// Validate checks the spec.
func (s MeshSpec) Validate() error {
	if s.Width < 2 || s.Height < 2 {
		return fmt.Errorf("netgen: mesh needs width, height ≥ 2, got %d×%d", s.Width, s.Height)
	}
	if s.Width*s.Height > 1<<24 {
		return fmt.Errorf("netgen: mesh %d×%d too large", s.Width, s.Height)
	}
	return nil
}

// GenerateMesh builds the grid hypergraph. Cell (x, y) has index
// y·Width + x.
func GenerateMesh(s MeshSpec) (*hypergraph.Hypergraph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := hypergraph.NewBuilder(s.Width * s.Height)
	id := func(x, y int) int { return y*s.Width + x }
	for y := 0; y < s.Height; y++ {
		for x := 0; x < s.Width; x++ {
			if x+1 < s.Width {
				b.AddNet(id(x, y), id(x+1, y))
			}
			if y+1 < s.Height {
				b.AddNet(id(x, y), id(x, y+1))
			}
			if s.FourPin && x+1 < s.Width && y+1 < s.Height {
				b.AddNet(id(x, y), id(x+1, y), id(x, y+1), id(x+1, y+1))
			}
		}
	}
	return b.Build()
}

// MeshOptimalBisectionCut returns the cut of the straight-line
// bisection of the grid: cutting a W×H mesh (2-pin edges only) along
// its shorter dimension severs min(W, H) edges. For FourPin meshes
// each severed column/row additionally cuts min(W,H)−1 four-pin nets.
func MeshOptimalBisectionCut(s MeshSpec) int {
	m := s.Width
	if s.Height < m {
		m = s.Height
	}
	cut := m
	if s.FourPin {
		cut += m - 1
	}
	return cut
}
