package netgen

import (
	"math/rand"
	"testing"

	"mlpart/internal/core"
	"mlpart/internal/fm"
)

func TestGenerateMeshStructure(t *testing.T) {
	h, err := GenerateMesh(MeshSpec{Width: 5, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumCells() != 20 {
		t.Errorf("cells = %d, want 20", h.NumCells())
	}
	// Edges: 4·4 horizontal rows? horizontal: (W−1)·H = 16;
	// vertical: W·(H−1) = 15. Total 31.
	if h.NumNets() != 31 {
		t.Errorf("nets = %d, want 31", h.NumNets())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateMeshFourPin(t *testing.T) {
	h, err := GenerateMesh(MeshSpec{Width: 3, Height: 3, FourPin: true})
	if err != nil {
		t.Fatal(err)
	}
	// 2-pin: 2·3 + 3·2 = 12; 4-pin: 2·2 = 4. Total 16.
	if h.NumNets() != 16 {
		t.Errorf("nets = %d, want 16", h.NumNets())
	}
}

func TestGenerateMeshErrors(t *testing.T) {
	for _, bad := range []MeshSpec{{Width: 1, Height: 5}, {Width: 5, Height: 0}, {Width: 1 << 13, Height: 1 << 13}} {
		if _, err := GenerateMesh(bad); err == nil {
			t.Errorf("bad spec accepted: %+v", bad)
		}
	}
}

func TestMeshOptimalBisectionCut(t *testing.T) {
	if got := MeshOptimalBisectionCut(MeshSpec{Width: 10, Height: 6}); got != 6 {
		t.Errorf("optimal = %d, want 6", got)
	}
	if got := MeshOptimalBisectionCut(MeshSpec{Width: 10, Height: 6, FourPin: true}); got != 11 {
		t.Errorf("optimal = %d, want 11", got)
	}
}

// TestMLNearOptimalOnMesh is the ground-truth quality check: on a
// 24×24 mesh the straight bisection cuts 24 edges; ML_C best-of-5
// must land within 1.5× of that geometric optimum.
func TestMLNearOptimalOnMesh(t *testing.T) {
	h, err := GenerateMesh(MeshSpec{Width: 24, Height: 24})
	if err != nil {
		t.Fatal(err)
	}
	opt := MeshOptimalBisectionCut(MeshSpec{Width: 24, Height: 24})
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		_, res, err := core.Bipartition(h, core.Config{Refine: fm.Config{Engine: fm.EngineCLIP}},
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	if best > opt+opt/2 {
		t.Errorf("ML best mesh cut %d, geometric optimum %d (allowed 1.5x)", best, opt)
	}
	t.Logf("mesh 24×24: ML best %d vs optimal %d", best, opt)
}

// TestFlatFMFarFromOptimalOnLargeMesh documents the motivation for
// multilevel methods: on a large mesh, flat FM from a random start is
// much further from the geometric optimum than ML (the §II.C
// "performance degrades as problem sizes grow" observation, with a
// ground-truth yardstick).
func TestFlatFMFarFromOptimalOnLargeMesh(t *testing.T) {
	h, err := GenerateMesh(MeshSpec{Width: 40, Height: 40})
	if err != nil {
		t.Fatal(err)
	}
	bestFM, bestML := 1<<30, 1<<30
	for seed := int64(0); seed < 3; seed++ {
		_, fres, err := fm.Partition(h, nil, fm.Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if fres.Cut < bestFM {
			bestFM = fres.Cut
		}
		_, mres, err := core.Bipartition(h, core.Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if mres.Cut < bestML {
			bestML = mres.Cut
		}
	}
	t.Logf("mesh 40×40: flat FM best %d, ML best %d, optimal %d", bestFM, bestML,
		MeshOptimalBisectionCut(MeshSpec{Width: 40, Height: 40}))
	if bestML > bestFM {
		t.Errorf("ML (%d) worse than flat FM (%d) on a mesh", bestML, bestFM)
	}
}
