package netgen

import (
	"math"
	"math/rand"
	"testing"

	"mlpart/internal/core"
	"mlpart/internal/fm"
)

func TestGenerateMatchesTargets(t *testing.T) {
	spec := Spec{Name: "t", Cells: 2000, Nets: 2200, Pins: 7000, Seed: 1}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	if h.NumCells() != 2000 {
		t.Errorf("cells = %d, want 2000", h.NumCells())
	}
	// A few nets may be dropped (degenerate); tolerate 2%.
	if h.NumNets() < 2156 || h.NumNets() > 2200 {
		t.Errorf("nets = %d, want ≈ 2200", h.NumNets())
	}
	// Pins within 12% of target.
	if ratio := float64(h.NumPins()) / 7000; math.Abs(ratio-1) > 0.12 {
		t.Errorf("pins = %d, want ≈ 7000 (ratio %.3f)", h.NumPins(), ratio)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Cells: 500, Nets: 600, Pins: 1900, Seed: 9}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if a.H.NumNets() != b.H.NumNets() || a.H.NumPins() != b.H.NumPins() {
		t.Fatal("same spec produced different hypergraphs")
	}
	for e := 0; e < a.H.NumNets(); e++ {
		pa, pb := a.H.Pins(e), b.H.Pins(e)
		if len(pa) != len(pb) {
			t.Fatal("net size differs")
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("pin differs")
			}
		}
	}
	for v := range a.Pads {
		if a.Pads[v] != b.Pads[v] {
			t.Fatal("pads differ")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Spec{Name: "x", Cells: 500, Nets: 600, Pins: 1900, Seed: 1})
	b := MustGenerate(Spec{Name: "x", Cells: 500, Nets: 600, Pins: 1900, Seed: 2})
	same := true
	for e := 0; e < a.H.NumNets() && e < b.H.NumNets() && same; e++ {
		pa, pb := a.H.Pins(e), b.H.Pins(e)
		if len(pa) != len(pb) {
			same = false
			break
		}
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical circuits")
	}
}

func TestPadsFraction(t *testing.T) {
	c := MustGenerate(Spec{Name: "p", Cells: 1000, Nets: 1000, Pins: 3200, Seed: 3, PadFraction: 0.05})
	n := 0
	for _, p := range c.Pads {
		if p {
			n++
		}
	}
	if n != 50 {
		t.Errorf("pads = %d, want 50", n)
	}
}

func TestLocalityCreatesClusterStructure(t *testing.T) {
	// A high-locality circuit must have a much better min cut than a
	// low-locality one of the same size: ML should find a small cut.
	hi := MustGenerate(Spec{Name: "hi", Cells: 800, Nets: 1200, Pins: 3600, Seed: 4, Locality: 0.9})
	lo := MustGenerate(Spec{Name: "lo", Cells: 800, Nets: 1200, Pins: 3600, Seed: 4, Locality: 0.05})
	cut := func(c *Circuit) int {
		best := 1 << 30
		for seed := int64(0); seed < 3; seed++ {
			_, res, err := core.Bipartition(c.H, core.Config{}, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Cut < best {
				best = res.Cut
			}
		}
		return best
	}
	ch, cl := cut(hi), cut(lo)
	if ch >= cl {
		t.Errorf("high-locality cut %d not smaller than low-locality cut %d", ch, cl)
	}
}

func TestMultilevelBeatsFlatOnGeneratedCircuit(t *testing.T) {
	// The headline sanity check: on a synthetic Table-I-style
	// circuit, ML average cut ≤ flat FM average cut.
	c := MustGenerate(Spec{Name: "bench", Cells: 1200, Nets: 1500, Pins: 4800, Seed: 5})
	var flatSum, mlSum int
	runs := 4
	for seed := int64(0); seed < int64(runs); seed++ {
		_, fres, err := fm.Partition(c.H, nil, fm.Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		flatSum += fres.Cut
		_, mres, err := core.Bipartition(c.H, core.Config{}, rand.New(rand.NewSource(seed+50)))
		if err != nil {
			t.Fatal(err)
		}
		mlSum += mres.Cut
	}
	if mlSum > flatSum {
		t.Errorf("ML total cut %d > flat FM total %d over %d runs", mlSum, flatSum, runs)
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []Spec{
		{Cells: 1, Nets: 5},
		{Cells: 10, Nets: -1},
		{Cells: 10, Nets: 10, Pins: 5},
		{Cells: 10, Nets: 10, Pins: 30, Locality: 2},
		{Cells: 10, Nets: 10, Pins: 30, PadFraction: 0.9},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestTableISpecs(t *testing.T) {
	specs := TableISpecs()
	if len(specs) != 23 {
		t.Fatalf("suite has %d specs, want 23", len(specs))
	}
	if specs[0].Name != "balu" || specs[22].Name != "golem3" {
		t.Error("suite order wrong")
	}
	if specs[22].Cells != 103048 || specs[22].Pins != 338419 {
		t.Error("golem3 sizes wrong")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
		if _, err := s.Normalize(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestScale(t *testing.T) {
	s := Spec{Name: "x", Cells: 1600, Nets: 1700, Pins: 5100, Seed: 1}
	q := Scale(s, 4)
	if q.Cells != 400 || q.Nets != 425 {
		t.Errorf("scaled = %+v", q)
	}
	if q.Pins < 2*q.Nets {
		t.Error("scaled pins below 2·nets")
	}
	if got := Scale(s, 1); got != s {
		t.Error("div=1 must be identity")
	}
	tinyAll := Scale(Spec{Name: "t", Cells: 40, Nets: 30, Pins: 90}, 100)
	if tinyAll.Cells < 16 || tinyAll.Nets < 16 {
		t.Error("scale floor violated")
	}
}

func TestSuiteSpecs(t *testing.T) {
	if n := len(SuiteSpecs(ScaleFull)); n != 23 {
		t.Errorf("full = %d", n)
	}
	if n := len(SuiteSpecs(ScaleMedium)); n != 22 {
		t.Errorf("medium = %d (golem3 dropped)", n)
	}
	if n := len(SuiteSpecs(ScaleSmall)); n != 12 {
		t.Errorf("small = %d", n)
	}
	if n := len(SuiteSpecs(ScaleTiny)); n != 6 {
		t.Errorf("tiny = %d", n)
	}
	for _, s := range SuiteSpecs(ScaleTiny) {
		c, err := Generate(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := c.H.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
