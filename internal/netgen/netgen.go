// Package netgen generates deterministic synthetic netlist
// hypergraphs standing in for the 23 ACM/SIGDA benchmark circuits of
// Table I (the originals, distributed from the CAD Benchmarking
// Laboratory at ftp.cbl.ncsu.edu, are not available offline).
//
// The generator produces circuits with (a) the same module/net/pin
// counts as the originals, (b) a net-size distribution dominated by
// 2–3 pin nets with a geometric tail, and (c) genuine hierarchical
// cluster structure: cells sit at the leaves of an implicit binary
// hierarchy and each net is drawn inside a subtree whose depth is
// sampled to favor local connections (a Rent's-rule-style locality
// model). Property (c) is what makes clustering-based partitioners
// effective on real circuits, so the relative behaviour of
// FM/CLIP/ML on these instances mirrors the paper even though
// absolute cut values differ.
package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/hypergraph"
)

// Spec describes one synthetic circuit.
type Spec struct {
	// Name of the benchmark this instance stands in for.
	Name string
	// Cells, Nets and Pins are the Table-I size targets. Pins is
	// approximate: net sizes are sampled, so the realized pin count
	// is within a few percent.
	Cells int
	Nets  int
	Pins  int
	// Seed drives all randomness; equal specs generate identical
	// hypergraphs.
	Seed int64
	// Locality ∈ (0,1) is the probability mass pulled toward deep
	// (local) subtrees; higher = more clustered. Default 0.75.
	Locality float64
	// PadFraction of cells are flagged as I/O pads (returned
	// separately); pads participate in nets like any cell. Default
	// 0.02.
	PadFraction float64
}

// Normalize fills defaults and validates.
func (s Spec) Normalize() (Spec, error) {
	if s.Cells < 2 {
		return s, fmt.Errorf("netgen: %q needs ≥ 2 cells, got %d", s.Name, s.Cells)
	}
	if s.Nets < 0 {
		return s, fmt.Errorf("netgen: negative net count")
	}
	if s.Pins == 0 {
		s.Pins = 3 * s.Nets
	}
	if s.Nets > 0 && s.Pins < 2*s.Nets {
		return s, fmt.Errorf("netgen: %q pins %d < 2·nets %d", s.Name, s.Pins, s.Nets)
	}
	if s.Locality == 0 {
		s.Locality = 0.75
	}
	if s.Locality <= 0 || s.Locality >= 1 {
		return s, fmt.Errorf("netgen: locality %v outside (0,1)", s.Locality)
	}
	if s.PadFraction == 0 {
		s.PadFraction = 0.02
	}
	if s.PadFraction < 0 || s.PadFraction > 0.5 {
		return s, fmt.Errorf("netgen: pad fraction %v outside [0,0.5]", s.PadFraction)
	}
	return s, nil
}

// Circuit is a generated instance.
type Circuit struct {
	Spec Spec
	H    *hypergraph.Hypergraph
	// Pads flags the cells designated as I/O pads.
	Pads []bool
}

// Generate builds the synthetic circuit for spec.
func Generate(spec Spec) (*Circuit, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ int64(spec.Cells)<<20 ^ int64(spec.Nets)))
	n := spec.Cells
	b := hypergraph.NewBuilder(n)

	// Net-size distribution: size = 2 + Geometric(q) with mean
	// matched to pins/nets; clamped to [2, 32].
	meanSize := 3.0
	if spec.Nets > 0 {
		meanSize = float64(spec.Pins) / float64(spec.Nets)
	}
	extra := meanSize - 2
	if extra < 0.01 {
		extra = 0.01
	}
	q := extra / (extra + 1) // geometric success prob, mean extra/(1-q)... mean = q/(1-q) = extra

	// depth of the implicit binary hierarchy
	maxDepth := 0
	for (n >> uint(maxDepth+1)) >= 4 {
		maxDepth++
	}

	pins := make([]int32, 0, 32)
	seen := make(map[int32]bool, 32)
	for e := 0; e < spec.Nets; e++ {
		// Sample size.
		size := 2
		for size < 32 && rng.Float64() < q {
			size++
		}
		// Sample locality depth: each level, descend with probability
		// Locality. Depth maxDepth = most local.
		depth := 0
		for depth < maxDepth && rng.Float64() < spec.Locality {
			depth++
		}
		// Random subtree of that depth: a contiguous index range.
		width := n >> uint(depth)
		if width < size {
			width = size
		}
		base := 0
		if n > width {
			base = rng.Intn(n - width + 1)
		}
		// Draw `size` distinct cells from [base, base+width).
		pins = pins[:0]
		for k := range seen {
			delete(seen, k)
		}
		tries := 0
		for len(pins) < size && tries < 8*size {
			v := int32(base + rng.Intn(width))
			tries++
			if !seen[v] {
				seen[v] = true
				pins = append(pins, v)
			}
		}
		if len(pins) >= 2 {
			b.AddNet32(pins)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Designate pads: cells spread across the hierarchy (uniformly
	// random, deterministic).
	pads := make([]bool, n)
	numPads := int(math.Round(spec.PadFraction * float64(n)))
	perm := rng.Perm(n)
	for i := 0; i < numPads && i < n; i++ {
		pads[perm[i]] = true
	}
	return &Circuit{Spec: spec, H: h, Pads: pads}, nil
}

// MustGenerate is Generate that panics on error (constructed specs).
func MustGenerate(spec Spec) *Circuit {
	c, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return c
}
