// Package faultinject is a deterministic fault-injection registry for
// the multilevel pipeline. Named sites (see sites.go) are instrumented
// throughout internal/coarsen, internal/fm, internal/kway and
// internal/core; a seeded Plan decides, per site, whether the Nth hit
// (or a seeded coin flip per hit) injects a fault: a panic, a
// synthetic cancellation, a delay, or a corrupted intermediate
// solution. The chaos suite uses it to prove that the recovery paths
// introduced by the robustness layer actually work.
//
// Determinism contract: an Injector is derived from (Plan.Seed, start
// index, retry index) and owns its hit counters and rng, so the same
// plan injects the same faults at the same sites run after run,
// regardless of how many attempts execute concurrently.
//
// Production overhead: a nil *Injector is the off state. Every
// instrumented site compiles to a single pointer check
// (`if inj != nil { ... }`), so a nil plan costs nothing measurable.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Site names one instrumented code location. The full set lives in
// sites.go (AllSites); Plan.Validate rejects unregistered names.
type Site string

// Kind is the fault injected when an entry triggers.
type Kind int

const (
	// KindPanic panics with a *Fault value, exercising the Guard
	// recovery paths.
	KindPanic Kind = iota
	// KindCancel makes the site behave as if the context had just been
	// cancelled (the engines' cooperative-stop paths), without touching
	// the caller's real context.
	KindCancel
	// KindDelay sleeps for Entry.Delay (default 1ms), exercising
	// deadline and timeout handling.
	KindDelay
	// KindCorrupt perturbs the intermediate solution at the site —
	// well-formed but wrong — exercising the audit layer.
	KindCorrupt
)

// Kinds lists every fault kind, for sweep-style tests.
var Kinds = []Kind{KindPanic, KindCancel, KindDelay, KindCorrupt}

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindCancel:
		return "cancel"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses the textual kind names used by the CLI -chaos flag.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return KindPanic, nil
	case "cancel":
		return KindCancel, nil
	case "delay":
		return KindDelay, nil
	case "corrupt":
		return KindCorrupt, nil
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (want panic, cancel, delay, or corrupt)", s)
}

// Action is what an instrumented site must do after calling Fire.
// Panics and delays are handled inside Fire itself; the remaining
// kinds need site-specific cooperation.
type Action int

const (
	// ActNone: no fault; proceed normally.
	ActNone Action = iota
	// ActCancel: behave as if cancellation had just been observed.
	ActCancel
	// ActCorrupt: perturb the local intermediate solution.
	ActCorrupt
)

// AnyStart makes an Entry apply to every start of a multi-start run.
const AnyStart = -1

// Entry arms one fault: at Site, the Kind fires on the OnHit-th hit
// (1-based), or — when OnHit is 0 — on any hit with probability Prob
// under the injector's seeded rng.
type Entry struct {
	Site Site
	Kind Kind
	// OnHit triggers on exactly the Nth hit of Site (1-based). Exactly
	// one of OnHit / Prob must be set.
	OnHit int
	// Prob triggers each hit independently with this probability,
	// drawn from the injector's seeded rng. Must be in (0,1).
	Prob float64
	// Delay is the sleep for KindDelay; 0 means 1ms.
	Delay time.Duration
	// Start restricts the entry to one 0-based start index of a
	// multi-start run; AnyStart (-1) applies it to every start.
	// NOTE: the zero value restricts to start 0 — build entries with
	// On/OnStart or set Start explicitly.
	Start int
}

// On returns an Entry firing Kind at the nth hit of site in every
// start.
func On(site Site, kind Kind, nth int) Entry {
	return Entry{Site: site, Kind: kind, OnHit: nth, Start: AnyStart}
}

// OnStart is On restricted to the given 0-based start index.
func OnStart(site Site, kind Kind, nth, start int) Entry {
	return Entry{Site: site, Kind: kind, OnHit: nth, Start: start}
}

// Plan is an immutable fault-injection plan: a seed plus the armed
// entries. A nil *Plan is the off state.
type Plan struct {
	// Seed drives the probabilistic triggers; the per-attempt injector
	// seed is derived from (Seed, start, retry).
	Seed    int64
	Entries []Entry
}

// Validate rejects malformed plans: unregistered sites, unknown
// kinds, missing or conflicting triggers, out-of-range fields.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Entries {
		if !ValidSite(e.Site) {
			return fmt.Errorf("faultinject: entry %d: unregistered site %q", i, e.Site)
		}
		switch e.Kind {
		case KindPanic, KindCancel, KindDelay, KindCorrupt:
		default:
			return fmt.Errorf("faultinject: entry %d: unknown kind %d", i, int(e.Kind))
		}
		if e.OnHit < 0 {
			return fmt.Errorf("faultinject: entry %d: negative OnHit %d", i, e.OnHit)
		}
		if e.Prob < 0 || e.Prob >= 1 {
			return fmt.Errorf("faultinject: entry %d: probability %v outside [0,1)", i, e.Prob)
		}
		if (e.OnHit == 0) == (e.Prob == 0) {
			return fmt.Errorf("faultinject: entry %d: exactly one of OnHit and Prob must be set", i)
		}
		if e.Delay < 0 {
			return fmt.Errorf("faultinject: entry %d: negative delay %v", i, e.Delay)
		}
		if e.Start < AnyStart {
			return fmt.Errorf("faultinject: entry %d: start index %d < -1", i, e.Start)
		}
	}
	return nil
}

// NewInjector derives the per-attempt injector for the given 0-based
// start and retry indices. It returns nil — the zero-overhead off
// state — for a nil plan or when no entry applies to this start.
func (p *Plan) NewInjector(start, retry int) *Injector {
	if p == nil || len(p.Entries) == 0 {
		return nil
	}
	var es []Entry
	for _, e := range p.Entries {
		if e.Start == AnyStart || e.Start == start {
			es = append(es, e)
		}
	}
	if len(es) == 0 {
		return nil
	}
	return &Injector{
		entries: es,
		hits:    make(map[Site]int),
		rng:     rand.New(rand.NewSource(mixSeed(p.Seed, start, retry))),
	}
}

// mixSeed derives an independent rng stream per (seed, start, retry)
// with a splitmix64-style finalizer.
func mixSeed(seed int64, start, retry int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(start+1) + 0xbf58476d1ce4e5b9*uint64(retry+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Fault is the panic value of KindPanic; Guard converts it into a
// *core.PanicError like any other invariant panic.
type Fault struct {
	Site Site
	Hit  int
}

func (f *Fault) String() string {
	return fmt.Sprintf("injected fault at %s (hit %d)", f.Site, f.Hit)
}

// Injector applies one attempt's share of a Plan. It is owned by a
// single attempt goroutine and must not be shared.
type Injector struct {
	entries []Entry
	hits    map[Site]int
	rng     *rand.Rand
	fired   int
}

// Fire records a hit at site and applies the first triggering entry:
// KindPanic panics with a *Fault, KindDelay sleeps and continues, and
// KindCancel / KindCorrupt return the action the site must emulate.
// Receivers must treat a nil *Injector as "never fires" by guarding
// the call with a pointer check.
func (in *Injector) Fire(site Site) Action {
	in.hits[site]++
	n := in.hits[site]
	for i := range in.entries {
		e := &in.entries[i]
		if e.Site != site {
			continue
		}
		triggered := false
		if e.OnHit > 0 {
			triggered = n == e.OnHit
		} else {
			triggered = in.rng.Float64() < e.Prob
		}
		if !triggered {
			continue
		}
		in.fired++
		switch e.Kind {
		case KindPanic:
			panic(&Fault{Site: site, Hit: n})
		case KindDelay:
			d := e.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
		case KindCancel:
			return ActCancel
		case KindCorrupt:
			return ActCorrupt
		}
	}
	return ActNone
}

// Fired reports how many entries have triggered so far (delays and
// corruptions included; a panic is counted before it unwinds).
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	return in.fired
}

// ParseSpec parses one CLI fault spec of the form
//
//	site:kind:n[:start]
//
// where site is a registered site name, kind is panic|cancel|delay|
// corrupt, n is the 1-based hit number to trigger on (or p0.25 for a
// per-hit probability), and the optional start restricts the fault to
// one 0-based start index.
func ParseSpec(spec string) (Entry, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return Entry{}, fmt.Errorf("faultinject: spec %q: want site:kind:n[:start]", spec)
	}
	e := Entry{Site: Site(parts[0]), Start: AnyStart}
	if !ValidSite(e.Site) {
		return Entry{}, fmt.Errorf("faultinject: spec %q: unregistered site %q (known: %s)", spec, parts[0], siteList())
	}
	k, err := ParseKind(parts[1])
	if err != nil {
		return Entry{}, fmt.Errorf("faultinject: spec %q: %w", spec, err)
	}
	e.Kind = k
	if rest, ok := strings.CutPrefix(parts[2], "p"); ok {
		p, err := strconv.ParseFloat(rest, 64)
		if err != nil || p <= 0 || p >= 1 {
			return Entry{}, fmt.Errorf("faultinject: spec %q: probability %q outside (0,1)", spec, parts[2])
		}
		e.Prob = p
	} else {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return Entry{}, fmt.Errorf("faultinject: spec %q: hit number %q must be a positive integer or pX.Y", spec, parts[2])
		}
		e.OnHit = n
	}
	if len(parts) == 4 {
		s, err := strconv.Atoi(parts[3])
		if err != nil || s < 0 {
			return Entry{}, fmt.Errorf("faultinject: spec %q: start index %q must be a non-negative integer", spec, parts[3])
		}
		e.Start = s
	}
	return e, nil
}

// ParseSpecs builds a validated Plan from CLI specs; nil when specs is
// empty.
func ParseSpecs(specs []string, seed int64) (*Plan, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	p := &Plan{Seed: seed}
	for _, s := range specs {
		e, err := ParseSpec(s)
		if err != nil {
			return nil, err
		}
		p.Entries = append(p.Entries, e)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func siteList() string {
	names := make([]string, len(AllSites))
	for i, s := range AllSites {
		names[i] = string(s)
	}
	return strings.Join(names, ", ")
}
