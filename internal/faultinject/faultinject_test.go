package faultinject

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"nil plan", nil, true},
		{"empty plan", &Plan{}, true},
		{"on-hit entry", &Plan{Entries: []Entry{On(SiteFMPass, KindPanic, 1)}}, true},
		{"prob entry", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindDelay, Prob: 0.5, Start: AnyStart}}}, true},
		{"unregistered site", &Plan{Entries: []Entry{On("made.up", KindPanic, 1)}}, false},
		{"unknown kind", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: Kind(99), OnHit: 1}}}, false},
		{"no trigger", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindPanic}}}, false},
		{"both triggers", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindPanic, OnHit: 1, Prob: 0.5}}}, false},
		{"prob out of range", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindPanic, Prob: 1.0}}}, false},
		{"negative delay", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindDelay, OnHit: 1, Delay: -time.Second}}}, false},
		{"start below AnyStart", &Plan{Entries: []Entry{{Site: SiteFMPass, Kind: KindPanic, OnHit: 1, Start: -2}}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestNilInjectorIsOff(t *testing.T) {
	var p *Plan
	if in := p.NewInjector(0, 0); in != nil {
		t.Fatal("nil plan must yield a nil injector")
	}
	var in *Injector
	if got := in.Fired(); got != 0 {
		t.Fatalf("nil injector Fired() = %d", got)
	}
}

func TestStartFiltering(t *testing.T) {
	p := &Plan{Entries: []Entry{OnStart(SiteFMPass, KindCancel, 1, 2)}}
	if in := p.NewInjector(0, 0); in != nil {
		t.Fatal("entry restricted to start 2 must not arm start 0")
	}
	in := p.NewInjector(2, 0)
	if in == nil {
		t.Fatal("entry restricted to start 2 must arm start 2")
	}
	if act := in.Fire(SiteFMPass); act != ActCancel {
		t.Fatalf("Fire = %v, want ActCancel", act)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestOnHitTriggersExactlyOnce(t *testing.T) {
	p := &Plan{Entries: []Entry{On(SiteCoarsenMatch, KindCorrupt, 3)}}
	in := p.NewInjector(0, 0)
	for hit := 1; hit <= 5; hit++ {
		act := in.Fire(SiteCoarsenMatch)
		want := ActNone
		if hit == 3 {
			want = ActCorrupt
		}
		if act != want {
			t.Fatalf("hit %d: Fire = %v, want %v", hit, act, want)
		}
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestHitCountersArePerSite(t *testing.T) {
	p := &Plan{Entries: []Entry{On(SiteFMPass, KindCancel, 2)}}
	in := p.NewInjector(0, 0)
	// Hits at other sites must not advance fm.pass's counter.
	in.Fire(SiteCoarsenMatch)
	in.Fire(SiteCoreProject)
	if act := in.Fire(SiteFMPass); act != ActNone {
		t.Fatalf("first fm.pass hit fired: %v", act)
	}
	if act := in.Fire(SiteFMPass); act != ActCancel {
		t.Fatalf("second fm.pass hit: %v, want ActCancel", act)
	}
}

func TestPanicValue(t *testing.T) {
	p := &Plan{Entries: []Entry{On(SiteKwayRefine, KindPanic, 1)}}
	in := p.NewInjector(0, 0)
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("panic value %T, want *Fault", r)
		}
		if f.Site != SiteKwayRefine || f.Hit != 1 {
			t.Fatalf("bad fault: %v", f)
		}
		if in.Fired() != 1 {
			t.Fatalf("Fired() = %d, want 1 (counted before unwinding)", in.Fired())
		}
	}()
	in.Fire(SiteKwayRefine)
	t.Fatal("Fire did not panic")
}

func TestProbDeterminism(t *testing.T) {
	p := &Plan{Seed: 17, Entries: []Entry{{Site: SiteFMPass, Kind: KindCancel, Prob: 0.5, Start: AnyStart}}}
	run := func(start, retry int) []Action {
		in := p.NewInjector(start, retry)
		acts := make([]Action, 20)
		for i := range acts {
			acts[i] = in.Fire(SiteFMPass)
		}
		return acts
	}
	a, b := run(3, 1), run(3, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (start,retry) diverged at hit %d", i)
		}
	}
	// Distinct attempts draw from distinct streams.
	c := run(3, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("retry stream identical to first attempt (seed mixing broken)")
	}
}

func TestParseSpec(t *testing.T) {
	e, err := ParseSpec("coarsen.match:corrupt:2")
	if err != nil {
		t.Fatal(err)
	}
	if e.Site != SiteCoarsenMatch || e.Kind != KindCorrupt || e.OnHit != 2 || e.Start != AnyStart {
		t.Fatalf("bad entry: %+v", e)
	}
	e, err = ParseSpec("core.rebalance:delay:p0.5:3")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindDelay || e.Prob != 0.5 || e.Start != 3 {
		t.Fatalf("bad entry: %+v", e)
	}
	for _, bad := range []string{
		"", "fm.pass", "fm.pass:panic", "made.up:panic:1", "fm.pass:explode:1",
		"fm.pass:panic:0", "fm.pass:panic:p1.5", "fm.pass:panic:1:-1", "fm.pass:panic:1:2:3",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

func TestAllSitesRegistered(t *testing.T) {
	if len(AllSites) == 0 {
		t.Fatal("no registered sites")
	}
	seen := make(map[Site]bool)
	for _, s := range AllSites {
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
		if !ValidSite(s) {
			t.Fatalf("registered site %q not valid", s)
		}
	}
	if ValidSite("made.up") {
		t.Fatal("unregistered site accepted")
	}
}
