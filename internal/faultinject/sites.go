package faultinject

// The site registry. Every instrumented location in the pipeline is
// named here, exactly once, in this single const block, and listed in
// AllSites; cmd/mllint's faultsite check enforces all three
// properties (and that the names are referenced only from internal/
// packages), keeping the registry the one auditable source of truth
// for what the chaos suite must cover.
const (
	// SiteCoarsenMatch fires at the head of every coarsen.Match call.
	// Cancel stops matching immediately (all-singleton clustering);
	// corrupt swaps two cells between clusters (well-formed, worse).
	SiteCoarsenMatch Site = "coarsen.match"
	// SiteFMPass fires at every FM/PROP pass boundary. Cancel aborts
	// refinement as a Stop hook would; corrupt flips one cell without
	// updating the incremental cut, which the audit layer must catch.
	SiteFMPass Site = "fm.pass"
	// SiteKwayRefine fires at every multi-way pass boundary, with the
	// same cancel/corrupt semantics as SiteFMPass.
	SiteKwayRefine Site = "kway.refine"
	// SiteCoreProject fires before each uncoarsening projection. A
	// panic here is unrecoverable for the attempt (no fine solution
	// exists yet) and exercises the supervisor's retry path.
	SiteCoreProject Site = "core.project"
	// SiteCoreRebalance fires before each per-level rebalance/refine
	// decision. A panic drops the attempt to the degraded
	// project-and-rebalance path; corrupt perturbs the projected
	// solution before the engine sees it.
	SiteCoreRebalance Site = "core.rebalance"
)

// AllSites is the registry: every instrumented site, exactly once.
// The chaos suite sweeps this list; Plan.Validate checks against it.
var AllSites = []Site{
	SiteCoarsenMatch,
	SiteFMPass,
	SiteKwayRefine,
	SiteCoreProject,
	SiteCoreRebalance,
}

// ValidSite reports whether s is a registered site.
func ValidSite(s Site) bool {
	for _, r := range AllSites {
		if r == s {
			return true
		}
	}
	return false
}
