package faultinject

// The site registry. Every instrumented location in the pipeline is
// named here, exactly once, in this single const block, and listed in
// AllSites; cmd/mllint's faultsite check enforces all three
// properties (and that the names are referenced only from internal/
// packages), keeping the registry the one auditable source of truth
// for what the chaos suite must cover.
const (
	// SiteCoarsenMatch fires at the head of every coarsen.Match call.
	// Cancel stops matching immediately (all-singleton clustering);
	// corrupt swaps two cells between clusters (well-formed, worse).
	SiteCoarsenMatch Site = "coarsen.match"
	// SiteCoarsenScore fires once per coarsen.Match call at the head of
	// the intra-parallel candidate-scoring path (calling goroutine,
	// before any range is dispatched), so it only fires when
	// IntraParallelism >= 1. Cancel stops matching immediately, like a
	// Stop hook (all-singleton clustering from that point); corrupt
	// swaps two cells between clusters, as at SiteCoarsenMatch.
	SiteCoarsenScore Site = "coarsen.score"
	// SiteFMPass fires at every FM/PROP pass boundary. Cancel aborts
	// refinement as a Stop hook would; corrupt flips one cell without
	// updating the incremental cut, which the audit layer must catch.
	SiteFMPass Site = "fm.pass"
	// SiteFMSubround fires at the head of every sub-round of the
	// sub-round-synchronous parallel FM/CLIP engine (calling
	// goroutine), so it only fires when IntraParallelism >= 1 for a
	// bipartitioning refinement. Cancel aborts the pass as a Stop hook
	// would (the best prefix is kept by rollback); corrupt flips one
	// cell without updating the incremental cut, which the audit layer
	// must catch.
	SiteFMSubround Site = "fm.subround"
	// SiteKwayRefine fires at every multi-way pass boundary, with the
	// same cancel/corrupt semantics as SiteFMPass.
	SiteKwayRefine Site = "kway.refine"
	// SiteCoreProject fires before each uncoarsening projection. A
	// panic here is unrecoverable for the attempt (no fine solution
	// exists yet) and exercises the supervisor's retry path.
	SiteCoreProject Site = "core.project"
	// SiteCoreRebalance fires before each per-level rebalance/refine
	// decision. A panic drops the attempt to the degraded
	// project-and-rebalance path; corrupt perturbs the projected
	// solution before the engine sees it.
	SiteCoreRebalance Site = "core.rebalance"
	// SiteServerAdmit fires in mlpartd's admission path, before a job
	// is enqueued. A panic must reject only that submission (the
	// accept loop survives); cancel sheds the job as if the queue
	// were full; delay slows admission. Never reached by the library
	// entry points.
	SiteServerAdmit Site = "server.admit"
	// SiteServerJob fires at the head of each mlpartd job execution
	// attempt. A panic fails the attempt into the job's retry/backoff
	// path; cancel behaves as a client cancellation; delay eats into
	// the job's deadline. Never reached by the library entry points.
	SiteServerJob Site = "server.job"
	// SiteServerBatch fires at the head of a batched job's first
	// execution attempt, before the shared-workspace session is used.
	// A panic fails only that job's attempt — its batchmates must
	// complete (the "share workspaces, never fate" contract); cancel
	// behaves as a client cancellation of the batched job; corrupt
	// models a distrusted shared workspace — the job falls back to a
	// fresh solo workspace (degraded throughput, identical bytes);
	// delay stalls the batch worker, eating into every batchmate's
	// deadline. Never reached by the library entry points.
	SiteServerBatch Site = "server.batch"
	// SiteServerEvents fires at the head of each event-stream
	// subscription (GET /v1/jobs/{id}/events and /v1/events). A panic
	// fails only that subscription with a 500 — the job and the other
	// subscribers are unaffected; cancel drops the subscriber
	// immediately after the replay, the way an overflowing slow
	// consumer would be dropped; delay stalls the subscription
	// handshake, never the job. Never reached by the library entry
	// points.
	SiteServerEvents Site = "server.events"
	// SiteJournalAppend fires inside every write-ahead journal append,
	// before the frame reaches the file. A panic unwinds into the
	// caller's recover barrier (an admission append panic rejects only
	// that submission); cancel fails the append transiently (the
	// record is not durable, the writer stays usable); corrupt models
	// a torn write — half a frame is written and the writer goes
	// read-only, the way a dying disk or a crash mid-write would leave
	// it; delay models a slow fsync. Never reached by the library
	// entry points.
	SiteJournalAppend Site = "journal.append"
	// SiteJournalReplay fires once per frame while replaying a journal
	// at startup. A panic must be contained by the server's replay
	// barrier (startup fails cleanly, the process does not crash);
	// cancel and corrupt both truncate the replay at the current frame
	// — the torn-tail model applied mid-file; delay slows recovery.
	// Never reached by the library entry points.
	SiteJournalReplay Site = "journal.replay"
)

// AllSites is the registry: every instrumented site, exactly once.
// The chaos suite sweeps this list; Plan.Validate checks against it.
var AllSites = []Site{
	SiteCoarsenMatch,
	SiteCoarsenScore,
	SiteFMPass,
	SiteFMSubround,
	SiteKwayRefine,
	SiteCoreProject,
	SiteCoreRebalance,
	SiteServerAdmit,
	SiteServerJob,
	SiteServerBatch,
	SiteServerEvents,
	SiteJournalAppend,
	SiteJournalReplay,
}

// ValidSite reports whether s is a registered site.
func ValidSite(s Site) bool {
	for _, r := range AllSites {
		if r == s {
			return true
		}
	}
	return false
}
