package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlpart/internal/faultinject"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.wal")
}

func mustAppend(t *testing.T, w *Writer, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func acceptedRec(id string, seq int) Record {
	return Record{
		Type: TypeAccepted, ID: id, Seq: seq,
		ContentHash: "c", Fingerprint: "f", K: 2,
		Request: []byte(`{"hgr":"x"}`),
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		acceptedRec("j-000000", 0),
		{Type: TypeStarted, ID: "j-000000", Seq: 0},
		{Type: TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
		acceptedRec("j-000001", 1),
	}
	mustAppend(t, w, want...)
	if w.Appends() != len(want) {
		t.Fatalf("Appends() = %d, want %d", w.Appends(), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated || st.TornBytes != 0 || st.Frames != len(want) {
		t.Fatalf("clean journal stats %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	recs, st, err := Load(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil || len(recs) != 0 || st.Frames != 0 || st.Truncated {
		t.Fatalf("missing file: recs %v stats %+v err %v", recs, st, err)
	}
}

// TestTornTailTruncates chops a valid journal at every possible byte
// boundary and requires Load to recover exactly the frames whose last
// byte survived — never an error, never a panic, never a partial
// record.
func TestTornTailTruncates(t *testing.T) {
	path := tmpJournal(t)
	w, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := []Record{
		acceptedRec("j-000000", 0),
		{Type: TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
		acceptedRec("j-000001", 1),
	}
	mustAppend(t, w, full...)
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, computed by re-decoding.
	var bounds []int64
	off := int64(0)
	for off < int64(len(data)) {
		_, next, ok := decodeFrame(data, off)
		if !ok {
			t.Fatalf("reference decode failed at %d", off)
		}
		bounds = append(bounds, next)
		off = next
	}

	for cut := 0; cut <= len(data); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, st, err := Load(torn, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantFrames := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				wantFrames++
			}
		}
		if len(recs) != wantFrames {
			t.Fatalf("cut %d: recovered %d frames, want %d", cut, len(recs), wantFrames)
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], full[i]) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, recs[i], full[i])
			}
		}
		wantValid := int64(0)
		if wantFrames > 0 {
			wantValid = bounds[wantFrames-1]
		}
		if st.ValidBytes != wantValid {
			t.Fatalf("cut %d: valid bytes %d, want %d", cut, st.ValidBytes, wantValid)
		}
	}
}

// TestBitFlipTruncates flips one byte inside each frame and requires
// Load to stop at the damaged frame.
func TestBitFlipTruncates(t *testing.T) {
	path := tmpJournal(t)
	w, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := []Record{
		acceptedRec("j-000000", 0),
		acceptedRec("j-000001", 1),
		acceptedRec("j-000002", 2),
	}
	mustAppend(t, w, full...)
	w.Close()
	data, _ := os.ReadFile(path)

	// Flip a payload byte of the middle frame.
	_, b0, _ := decodeFrame(data, 0)
	mut := append([]byte(nil), data...)
	mut[b0+headerSize+2] ^= 0x40
	flipped := filepath.Join(t.TempDir(), "flip.wal")
	os.WriteFile(flipped, mut, 0o644)

	recs, st, err := Load(flipped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !st.Truncated {
		t.Fatalf("bit flip in frame 2: recovered %d frames, stats %+v", len(recs), st)
	}
	if recs[0].ID != "j-000000" {
		t.Fatalf("wrong surviving record %+v", recs[0])
	}
}

// TestAbsurdLengthPrefix writes a frame header claiming a multi-GB
// payload: Load must treat it as a torn tail, not an allocation.
func TestAbsurdLengthPrefix(t *testing.T) {
	path := tmpJournal(t)
	w, _ := OpenAppend(path, Options{})
	mustAppend(t, w, acceptedRec("j-000000", 0))
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(nil))
	f.Write(hdr[:])
	f.Close()
	recs, st, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !st.Truncated || st.TornBytes != 8 {
		t.Fatalf("absurd length: recs %d stats %+v", len(recs), st)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := tmpJournal(t)
	w, _ := OpenAppend(path, Options{})
	mustAppend(t, w,
		acceptedRec("j-000000", 0),
		Record{Type: TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
		acceptedRec("j-000001", 1),
	)
	w.Close()

	keep := []Record{acceptedRec("j-000001", 1)}
	keep[0].Recovered = true
	if err := Rewrite(path, keep); err != nil {
		t.Fatal(err)
	}
	recs, st, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated || len(recs) != 1 || recs[0].ID != "j-000001" || !recs[0].Recovered {
		t.Fatalf("compacted journal: %+v stats %+v", recs, st)
	}

	// The compacted journal accepts further appends.
	w2, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w2, Record{Type: TypeTerminal, ID: "j-000001", Seq: 1, Status: "completed"})
	w2.Close()
	recs, _, _ = Load(path, nil)
	if len(recs) != 2 || recs[1].Type != TypeTerminal {
		t.Fatalf("append after compaction: %+v", recs)
	}
}

func TestAppendHookSeesEveryDurableAppend(t *testing.T) {
	path := tmpJournal(t)
	var calls []int
	w, err := OpenAppend(path, Options{AppendHook: func(n int) { calls = append(calls, n) }})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, acceptedRec("j-000000", 0), acceptedRec("j-000001", 1))
	w.Close()
	if !reflect.DeepEqual(calls, []int{1, 2}) {
		t.Fatalf("hook calls %v, want [1 2]", calls)
	}
}

// TestInjectedTornWrite arms a corrupt fault at journal.append: the
// append fails, the file holds half a frame, the writer goes
// read-only, and Load truncates the torn tail.
func TestInjectedTornWrite(t *testing.T) {
	path := tmpJournal(t)
	plan := &faultinject.Plan{Entries: []faultinject.Entry{
		faultinject.On(faultinject.SiteJournalAppend, faultinject.KindCorrupt, 2),
	}}
	w, err := OpenAppend(path, Options{Inject: plan.NewInjector(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, acceptedRec("j-000000", 0))
	if err := w.Append(acceptedRec("j-000001", 1)); err == nil {
		t.Fatal("torn write reported no error")
	}
	if err := w.Append(acceptedRec("j-000002", 2)); err == nil {
		t.Fatal("writer usable after torn write")
	}
	w.Close()
	recs, st, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !st.Truncated || st.TornBytes == 0 {
		t.Fatalf("after torn write: %d recs, stats %+v", len(recs), st)
	}
}

// TestInjectedTransientAppend arms a cancel fault: one append fails
// with ErrTransient, the next succeeds.
func TestInjectedTransientAppend(t *testing.T) {
	path := tmpJournal(t)
	plan := &faultinject.Plan{Entries: []faultinject.Entry{
		faultinject.On(faultinject.SiteJournalAppend, faultinject.KindCancel, 1),
	}}
	w, err := OpenAppend(path, Options{Inject: plan.NewInjector(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(acceptedRec("j-000000", 0)); !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	mustAppend(t, w, acceptedRec("j-000001", 1))
	w.Close()
	recs, _, _ := Load(path, nil)
	if len(recs) != 1 || recs[0].ID != "j-000001" {
		t.Fatalf("after transient failure: %+v", recs)
	}
}

// TestInjectedReplayTruncation arms a corrupt fault at the second
// replay frame: Load must yield the one-frame prefix and mark the
// rest torn.
func TestInjectedReplayTruncation(t *testing.T) {
	path := tmpJournal(t)
	w, _ := OpenAppend(path, Options{})
	mustAppend(t, w, acceptedRec("j-000000", 0), acceptedRec("j-000001", 1))
	w.Close()
	plan := &faultinject.Plan{Entries: []faultinject.Entry{
		faultinject.On(faultinject.SiteJournalReplay, faultinject.KindCorrupt, 2),
	}}
	recs, st, err := Load(path, plan.NewInjector(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !st.Truncated || st.TornBytes == 0 {
		t.Fatalf("injected replay truncation: %d recs, stats %+v", len(recs), st)
	}
}

// TestLoadDeterministic loads the same bytes twice and requires
// identical results — the consistency contract FuzzJournalReplay
// extends to arbitrary corrupt inputs.
func TestLoadDeterministic(t *testing.T) {
	path := tmpJournal(t)
	w, _ := OpenAppend(path, Options{})
	mustAppend(t, w, acceptedRec("j-000000", 0), acceptedRec("j-000001", 1))
	w.Close()
	// Add garbage.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(bytes.Repeat([]byte{0xAB}, 13))
	f.Close()

	r1, s1, e1 := Load(path, nil)
	r2, s2, e2 := Load(path, nil)
	if e1 != nil || e2 != nil || !reflect.DeepEqual(r1, r2) || s1 != s2 {
		t.Fatalf("Load not deterministic: %v/%v %+v/%+v", e1, e2, s1, s2)
	}
}
