package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes — truncated journals,
// bit-flipped frames, frame-boundary garbage, pure noise — at the
// replay path and asserts the recovery contract:
//
//  1. Load never panics and never returns an error for corrupt
//     content (corruption is a torn tail, not a failure);
//  2. the recovered set is consistent: loading the valid prefix Load
//     itself identified yields exactly the same records, cleanly;
//  3. re-encoding the recovered records round-trips.
//
// The checked-in corpus under testdata/fuzz seeds the interesting
// shapes: a clean journal, a torn tail, a bit flip, an absurd length
// prefix, and boundary-straddling garbage.
func FuzzJournalReplay(f *testing.F) {
	// A clean two-record journal, built by the real writer.
	dir, err := os.MkdirTemp("", "journal-fuzz-seed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.wal")
	w, err := OpenAppend(seedPath, Options{})
	if err != nil {
		f.Fatal(err)
	}
	recs := []Record{
		{Type: TypeAccepted, ID: "j-000000", Seq: 0, ContentHash: "c", Fingerprint: "fp", K: 2,
			IdemKey: "key-1", Request: []byte(`{"hgr":"2 2\n1 2\n2 1\n"}`)},
		{Type: TypeStarted, ID: "j-000000", Seq: 0},
		{Type: TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	clean, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	f.Add(clean[:5])            // torn header
	f.Add([]byte{})             // empty journal
	f.Add([]byte("not a journal at all"))
	flip := append([]byte(nil), clean...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip) // bit flip mid-file

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, st, err := Load(path, nil)
		if err != nil {
			t.Fatalf("Load returned an error on corrupt input: %v", err)
		}
		if st.ValidBytes < 0 || st.ValidBytes > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", st.ValidBytes, len(data))
		}
		if st.ValidBytes+st.TornBytes != int64(len(data)) {
			t.Fatalf("prefix %d + torn %d != %d", st.ValidBytes, st.TornBytes, len(data))
		}
		for i, r := range recs {
			switch r.Type {
			case TypeAccepted, TypeStarted, TypeTerminal:
			default:
				t.Fatalf("record %d has invalid type %q", i, r.Type)
			}
			if r.ID == "" || r.Seq < 0 {
				t.Fatalf("record %d malformed: %+v", i, r)
			}
		}

		// Consistency: the valid prefix must load to the same records
		// with nothing torn.
		prefixPath := filepath.Join(t.TempDir(), "prefix.wal")
		if err := os.WriteFile(prefixPath, data[:st.ValidBytes], 0o644); err != nil {
			t.Fatal(err)
		}
		recs2, st2, err := Load(prefixPath, nil)
		if err != nil {
			t.Fatalf("Load(valid prefix): %v", err)
		}
		if st2.Truncated || st2.TornBytes != 0 {
			t.Fatalf("valid prefix reported torn: %+v", st2)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("prefix load gave %d records, original gave %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("record %d differs across loads: %+v vs %+v", i, recs[i], recs2[i])
			}
		}

		// Round trip: re-encoding the recovered set loads back intact.
		rtPath := filepath.Join(t.TempDir(), "rt.wal")
		if err := Rewrite(rtPath, recs); err != nil {
			t.Fatalf("Rewrite(recovered set): %v", err)
		}
		recs3, st3, err := Load(rtPath, nil)
		if err != nil || st3.Truncated {
			t.Fatalf("re-encoded journal: err %v stats %+v", err, st3)
		}
		if len(recs3) != len(recs) {
			t.Fatalf("round trip lost records: %d vs %d", len(recs3), len(recs))
		}
		// Compare canonical encodings: a fuzz-built frame may carry
		// non-compact raw JSON in Request, which re-encoding compacts.
		for i := range recs {
			a, aerr := json.Marshal(recs[i])
			b, berr := json.Marshal(recs3[i])
			if aerr != nil || berr != nil || string(a) != string(b) {
				t.Fatalf("round trip record %d: %s vs %s (%v, %v)", i, a, b, aerr, berr)
			}
		}
	})
}
