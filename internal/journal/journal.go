// Package journal is the crash-durability layer of mlpartd: an
// append-only, fsync-disciplined write-ahead log of job lifecycle
// records. The server appends an "accepted" record before it
// acknowledges a submission, a "started" record when a worker picks
// the job up, and exactly one "terminal" record when the job reaches
// its terminal status — so after a crash (OOM kill, SIGKILL, power
// loss) the journal is the authoritative account of which accepted
// jobs still owe the client a terminal status.
//
// On-disk format: a sequence of frames, each
//
//	[4-byte LE payload length][4-byte LE CRC32(IEEE) of payload][payload]
//
// where the payload is the JSON encoding of a Record. Appends are
// synced to stable storage before they are acknowledged. A crash can
// leave at most one torn frame, and only at the tail; Load detects it
// (short header, short payload, absurd length, CRC mismatch, or
// undecodable payload) and reports the longest valid prefix, which
// recovery then makes authoritative by compacting the file. A torn
// tail truncates — it never fails startup: the frames before it were
// synced and acknowledged, the torn frame itself was by construction
// never acknowledged to any client, so dropping it is exactly the
// crash semantics the client already observed.
//
// The journal.append and journal.replay fault sites are instrumented
// here so the chaos suite can model torn writes, dying disks, slow
// fsyncs, and mid-replay corruption deterministically.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"mlpart/internal/faultinject"
)

// Type classifies a lifecycle record.
type Type string

const (
	// TypeAccepted: the job was admitted; written and synced before
	// the 202 response. Carries everything needed to re-run the job.
	TypeAccepted Type = "accepted"
	// TypeStarted: a worker began executing the job. Advisory — a
	// crash between accepted and terminal re-enqueues the job whether
	// or not it had started.
	TypeStarted Type = "started"
	// TypeTerminal: the job reached its terminal status. A job with a
	// replayed terminal record is closed and must never be re-run.
	TypeTerminal Type = "terminal"
)

// Record is one journal entry. Accepted records carry the request
// payload (so the job can be rebuilt after a restart) plus the
// identity fields; started and terminal records are slim — results
// are deliberately not journaled, because the pipeline is
// deterministic and a recomputation is byte-identical.
type Record struct {
	Type Type   `json:"type"`
	ID   string `json:"id"`
	Seq  int    `json:"seq"`

	// Status is the terminal status; terminal records only.
	Status string `json:"status,omitempty"`

	// Accepted-record fields.
	ContentHash string `json:"content_hash,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	K           int    `json:"k,omitempty"`
	// IdemKey is the client's Idempotency-Key, preserved so duplicate
	// detection survives restarts.
	IdemKey string `json:"idempotency_key,omitempty"`
	// Recovered marks a record rewritten by post-replay compaction —
	// the job survived at least one process death.
	Recovered bool `json:"recovered,omitempty"`
	// Request is the original submission document (the POST /v1/jobs
	// body, re-marshaled), kept only while the job is live; compaction
	// drops it from closed jobs.
	Request json.RawMessage `json:"request,omitempty"`
}

// maxFrame bounds a single frame payload. A length prefix above it is
// treated as tail corruption rather than an allocation request.
const maxFrame = 1 << 28 // 256 MiB, comfortably above the server's body cap

const headerSize = 8

// ReplayStats describes what Load found.
type ReplayStats struct {
	// Frames is the number of valid frames decoded.
	Frames int
	// ValidBytes is the length of the longest valid prefix; bytes
	// beyond it are the torn tail.
	ValidBytes int64
	// TornBytes is how many trailing bytes were unreadable (0 when the
	// journal ends cleanly).
	TornBytes int64
	// Truncated reports whether replay stopped early — a torn tail, or
	// an injected replay fault that models one.
	Truncated bool
}

// encodeFrame renders rec as one length-prefixed, checksummed frame.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("journal: record payload %d bytes exceeds frame cap %d", len(payload), maxFrame)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// decodeFrame decodes the frame at data[off:]. ok is false when the
// bytes at off do not form a complete valid frame — the torn-tail
// condition; next is the offset just past the frame when ok.
func decodeFrame(data []byte, off int64) (rec Record, next int64, ok bool) {
	if off+headerSize > int64(len(data)) {
		return Record{}, off, false
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFrame {
		return Record{}, off, false
	}
	end := off + headerSize + int64(n)
	if end > int64(len(data)) {
		return Record{}, off, false
	}
	payload := data[off+headerSize : end]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, off, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, off, false
	}
	switch rec.Type {
	case TypeAccepted, TypeStarted, TypeTerminal:
	default:
		return Record{}, off, false
	}
	if rec.ID == "" || rec.Seq < 0 {
		return Record{}, off, false
	}
	return rec, end, true
}

// Load reads the journal at path and returns every record of its
// longest valid prefix, stopping at the first torn or corrupt frame.
// It never modifies the file (safe for offline inspection) and never
// panics on corrupt input — any undecodable suffix is reported in
// ReplayStats, not an error. A missing file is an empty journal. inj,
// when non-nil, fires the journal.replay fault site once per frame.
func Load(path string, inj *faultinject.Injector) ([]Record, ReplayStats, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ReplayStats{}, nil
	}
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	var recs []Record
	var st ReplayStats
	var off int64
	for off < int64(len(data)) {
		if inj != nil {
			switch inj.Fire(faultinject.SiteJournalReplay) {
			case faultinject.ActCancel, faultinject.ActCorrupt:
				// Model mid-file corruption / an interrupted replay: the
				// rest of the journal is treated as a torn tail.
				st.Truncated = true
				st.ValidBytes = off
				st.TornBytes = int64(len(data)) - off
				return recs, st, nil
			}
		}
		rec, next, ok := decodeFrame(data, off)
		if !ok {
			st.Truncated = true
			break
		}
		recs = append(recs, rec)
		st.Frames++
		off = next
	}
	st.ValidBytes = off
	st.TornBytes = int64(len(data)) - off
	return recs, st, nil
}

// Rewrite atomically replaces the journal at path with exactly recs —
// the compaction primitive. The new content is written to a temp file
// in the same directory, synced, renamed over path, and the directory
// synced, so a crash during compaction leaves either the old journal
// or the new one, never a mix.
func Rewrite(path string, recs []Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	for i := range recs {
		frame, err := encodeFrame(&recs[i])
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; the rename itself is
		// still ordered on the journaled filesystems we target.
		var pe *os.PathError
		if errors.As(err, &pe) {
			return nil
		}
		return fmt.Errorf("journal: sync dir %s: %w", dir, err)
	}
	return nil
}

// Options configures a Writer.
type Options struct {
	// Inject, when non-nil, fires the journal.append fault site on
	// every append.
	Inject *faultinject.Injector
	// AppendHook, when non-nil, runs after every durable append with
	// the 1-based append count — the crash harness hooks SIGKILL here
	// to die at exact journal positions.
	AppendHook func(n int)
}

// Writer appends frames to an open journal. Safe for concurrent use;
// each append is synced to stable storage before Append returns.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	n    int
	err  error // sticky: a torn write leaves the journal read-only
	inj  *faultinject.Injector
	hook func(n int)
}

// OpenAppend opens path for appending, creating it if needed. Callers
// are expected to have settled the file's contents first (Load +
// Rewrite): OpenAppend itself does not validate or truncate.
func OpenAppend(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{f: f, inj: opts.Inject, hook: opts.AppendHook}, nil
}

// ErrTransient is returned when an injected cancel fault fails one
// append without poisoning the writer — the model of a transient I/O
// refusal.
var ErrTransient = errors.New("journal: transient append failure (injected)")

// Append encodes rec as one frame, writes it, and syncs before
// returning — the record is durable (or the error says it is not).
// After a failed write the writer is read-only and every later append
// returns the first error: a half-written frame means the tail is no
// longer trustworthy, exactly like a dying disk.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	frame, err := encodeFrame(&rec)
	if err != nil {
		return err
	}
	if w.inj != nil {
		switch w.inj.Fire(faultinject.SiteJournalAppend) {
		case faultinject.ActCancel:
			return ErrTransient
		case faultinject.ActCorrupt:
			// Torn-write model: half the frame reaches the file, then
			// the device dies. Replay will truncate this tail.
			_, _ = w.f.Write(frame[:len(frame)/2])
			_ = w.f.Sync()
			w.err = errors.New("journal: torn write (injected device failure)")
			return w.err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: sync: %w", err)
		return w.err
	}
	w.n++
	if w.hook != nil {
		w.hook(w.n)
	}
	return nil
}

// Appends reports how many records this writer has durably appended.
func (w *Writer) Appends() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Close syncs and closes the journal file. Further appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if w.err == nil {
		w.err = errors.New("journal: closed")
	}
	return err
}
