// Package expt regenerates every table and figure of the paper's
// evaluation section (§IV) on the synthetic benchmark suite, at four
// size scales. Each experiment prints the same rows the paper
// reports (min cut / average cut / standard deviation / CPU seconds
// over N runs per circuit and algorithm).
package expt

import (
	"fmt"

	"mlpart/internal/core"
	"mlpart/internal/netgen"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects the benchmark suite size (tiny/small/medium/full).
	// Default tiny.
	Scale netgen.SuiteScale
	// Runs per algorithm per circuit. Default: the paper's 100 at
	// full scale, fewer at smaller scales (20 small/medium, 5 tiny).
	Runs int
	// Seed drives all randomness; a fixed seed reproduces every run.
	// Default 1997.
	Seed int64
	// Workers bounds run-level parallelism. Default
	// core.DefaultWorkers (the scheduler's GOMAXPROCS). CPU columns
	// report the summed per-run wall time, so parallelism does not
	// distort them.
	Workers int
	// Circuits optionally restricts the suite to the named circuits.
	Circuits []string
	// MaxCells skips circuits larger than this many cells (0 = no
	// limit); a guard for quick runs at big scales.
	MaxCells int
}

// Normalize fills defaults and validates.
func (o Options) Normalize() (Options, error) {
	if o.Scale == "" {
		o.Scale = netgen.ScaleTiny
	}
	switch o.Scale {
	case netgen.ScaleTiny, netgen.ScaleSmall, netgen.ScaleMedium, netgen.ScaleFull:
	default:
		return o, fmt.Errorf("expt: unknown scale %q", o.Scale)
	}
	if o.Runs == 0 {
		switch o.Scale {
		case netgen.ScaleFull:
			o.Runs = 100
		case netgen.ScaleTiny:
			o.Runs = 5
		default:
			o.Runs = 20
		}
	}
	if o.Runs < 1 {
		return o, fmt.Errorf("expt: runs %d < 1", o.Runs)
	}
	if o.Seed == 0 {
		o.Seed = 1997
	}
	if o.Workers == 0 {
		o.Workers = core.DefaultWorkers()
	}
	if o.Workers < 1 {
		return o, fmt.Errorf("expt: workers %d < 1", o.Workers)
	}
	if o.MaxCells < 0 {
		return o, fmt.Errorf("expt: negative MaxCells")
	}
	return o, nil
}

// circuits generates the benchmark instances selected by the options.
func (o Options) circuits() ([]*netgen.Circuit, error) {
	specs := netgen.SuiteSpecs(o.Scale)
	want := map[string]bool{}
	for _, n := range o.Circuits {
		want[n] = true
	}
	var out []*netgen.Circuit
	for _, s := range specs {
		if len(want) > 0 && !want[s.Name] {
			continue
		}
		if o.MaxCells > 0 && s.Cells > o.MaxCells {
			continue
		}
		c, err := netgen.Generate(s)
		if err != nil {
			return nil, fmt.Errorf("expt: generating %s: %w", s.Name, err)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("expt: no circuits selected")
	}
	return out, nil
}
