package expt

import (
	"math/rand"

	"mlpart/internal/core"
	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
	"mlpart/internal/lsmc"
	"mlpart/internal/netgen"
	"mlpart/internal/placement"
)

// The adapters below wrap each algorithm as an Algo returning the
// quality metric the corresponding paper table reports.

func algoFM(h *hypergraph.Hypergraph, cfg fm.Config) Algo {
	return func(rng *rand.Rand) (int, error) {
		_, res, err := fm.Partition(h, nil, cfg, rng)
		return res.Cut, err
	}
}

func algoFMOrder(h *hypergraph.Hypergraph, order gainbucket.Order) Algo {
	return algoFM(h, fm.Config{Order: order})
}

func algoCLIP(h *hypergraph.Hypergraph) Algo {
	return algoFM(h, fm.Config{Engine: fm.EngineCLIP})
}

func algoML(h *hypergraph.Hypergraph, engine fm.Engine, ratio float64) Algo {
	cfg := core.Config{Ratio: ratio, Threshold: 35, Refine: fm.Config{Engine: engine}}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := core.Bipartition(h, cfg, rng)
		return res.Cut, err
	}
}

// algoLSMC runs one LSMC solution built from `descents` FM descents
// (so a single LSMC "run" consumes the same budget as `descents`
// plain FM runs, as in the paper's 100-descent runs).
func algoLSMC(h *hypergraph.Hypergraph, engine fm.Engine, descents int) Algo {
	cfg := lsmc.Config{Descents: descents, Refine: fm.Config{Engine: engine}}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := lsmc.Bipartition(h, cfg, rng)
		return res.Cut, err
	}
}

func algoKway4(h *hypergraph.Hypergraph, engine fm.Engine) Algo {
	cfg := kway.Config{K: 4, Engine: engine, Objective: kway.SumOfDegrees}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := kway.Partition(h, nil, cfg, rng)
		return res.CutNets, err
	}
}

func algoLSMC4(h *hypergraph.Hypergraph, engine fm.Engine, descents int) Algo {
	cfg := lsmc.Config{Descents: descents}
	kcfg := kway.Config{K: 4, Engine: engine, Objective: kway.SumOfDegrees}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := lsmc.Kway(h, cfg, kcfg, rng)
		return res.CutNets, err
	}
}

func algoMLQuad(h *hypergraph.Hypergraph, engine fm.Engine) Algo {
	cfg := core.QuadConfig{
		Threshold: 100,
		Ratio:     1.0,
		Refine:    kway.Config{K: 4, Engine: engine, Objective: kway.SumOfDegrees},
	}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := core.Quadrisect(h, cfg, rng)
		return res.CutNets, err
	}
}

func algoGordian(c *netgen.Circuit) Algo {
	return func(rng *rand.Rand) (int, error) {
		_, res, err := placement.Quadrisect(c.H, c.Pads, placement.Config{}, rng)
		return res.CutNets, err
	}
}

// algoMLOpts exposes full core.Config control (ablations).
func algoMLOpts(h *hypergraph.Hypergraph, cfg core.Config) Algo {
	return func(rng *rand.Rand) (int, error) {
		_, res, err := core.Bipartition(h, cfg, rng)
		return res.Cut, err
	}
}
