package expt

import (
	"fmt"
	"math/rand"

	"mlpart/internal/core"
	"mlpart/internal/fm"
	"mlpart/internal/telemetry"
)

// StageProfile tabulates where ML_C spends its work, using the
// telemetry collector as its data source (one armed ML_C run per
// circuit): hierarchy depth, coarsest size, refinement passes, move
// acceptance, rebalance activity, and the coarsen/refine wall-clock
// split. The count columns are a pure function of (circuit, seed);
// the time columns are wall-clock measurements.
func StageProfile(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "stage-profile",
		Title: "ML_C per-stage profile from the telemetry collector (1 run)",
		Columns: []string{"Test Case", "levels", "coarsest", "passes",
			"kept/tried", "rebal(moved)", "coarsen s", "refine s"},
		Notes: []string{"count columns are deterministic per seed; the s columns are wall-clock."},
	}
	for _, c := range circuits {
		tel := telemetry.New()
		cfg := core.Config{
			Ratio:     0.5,
			Threshold: 35,
			Refine:    fm.Config{Engine: fm.EngineCLIP},
			Telemetry: tel,
		}
		rng := rand.New(rand.NewSource(RunSeed(opts.Seed, 0)))
		_, res, err := core.Bipartition(c.H, cfg, rng)
		if err != nil {
			return nil, err
		}
		s := tel.TakeStart(0, "ok", 1, res.Cut, 0)
		coarsest := c.H.NumCells()
		if n := len(s.Coarsening); n > 0 {
			coarsest = s.Coarsening[n-1].Cells
		}
		tried, kept := 0, 0
		for _, p := range s.Passes {
			tried += p.MovesTried
			kept += p.MovesKept
		}
		t.AddRow(c.Spec.Name,
			fmt.Sprint(len(s.Coarsening)),
			fmt.Sprint(coarsest),
			fmt.Sprint(len(s.Passes)),
			fmt.Sprintf("%d/%d", kept, tried),
			fmt.Sprintf("%d(%d)", s.Rebalances, s.RebalanceMoved),
			fmtSecs(float64(s.Timings.CoarsenNS)/1e9),
			fmtSecs(float64(s.Timings.RefineNS)/1e9))
	}
	return t, nil
}
