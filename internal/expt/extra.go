package expt

import (
	"fmt"
	"math/rand"

	"mlpart/internal/core"
	"mlpart/internal/fm"
	"mlpart/internal/gfm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/placement"
	"mlpart/internal/placer"
	"mlpart/internal/spectral"
)

// Additional experiments covering the baselines and applications the
// paper references but does not tabulate directly: the PROP and
// CL-PR engines of [13]/[14], spectral (EIG) bipartitioning [18],
// two-phase FM (§II.C), and the quadrisection-driven top-down placer
// of [24].

func algoPROP(h *hypergraph.Hypergraph, engine fm.Engine) Algo {
	return algoFM(h, fm.Config{Engine: engine})
}

func algoSpectral(h *hypergraph.Hypergraph, refine bool) Algo {
	cfg := spectral.Config{RefineFM: refine}
	return func(rng *rand.Rand) (int, error) {
		_, res, err := spectral.Bipartition(h, cfg, rng)
		return res.Cut, err
	}
}

func algoGFM(h *hypergraph.Hypergraph) Algo {
	return func(rng *rand.Rand) (int, error) {
		_, res, err := gfm.Bipartition(h, gfm.Config{}, rng)
		return res.Cut, err
	}
}

func algoTwoPhase(h *hypergraph.Hypergraph) Algo {
	return func(rng *rand.Rand) (int, error) {
		_, res, err := core.TwoPhase(h, core.Config{Refine: fm.Config{Engine: fm.EngineCLIP}}, rng)
		return res.Cut, err
	}
}

// AblationBaselines lines up every bipartitioning engine in the
// repository on equal terms: flat FM/CLIP/PROP/CL-PR, spectral with
// and without FM refinement, two-phase FM, and full ML_C.
func AblationBaselines(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-baselines",
		Title: fmt.Sprintf("average cut of every bipartitioning engine (%d runs)", opts.Runs),
		Columns: []string{"Test Case",
			"FM", "CLIP", "PROP", "CL-PR", "CD-LA3", "GFM", "EIG", "EIG+FM", "2phase", "ML_C"},
		Notes: []string{"EIG is deterministic up to the eigensolver start vector; variance is near zero."},
	}
	for _, c := range circuits {
		algos := []Algo{
			algoFM(c.H, fm.Config{}),
			algoCLIP(c.H),
			algoPROP(c.H, fm.EnginePROP),
			algoPROP(c.H, fm.EngineCLIPPROP),
			algoFM(c.H, fm.Config{Engine: fm.EngineCLIP, Backtrack: true, Lookahead: 3}),
			algoGFM(c.H),
			algoSpectral(c.H, false),
			algoSpectral(c.H, true),
			algoTwoPhase(c.H),
			algoML(c.H, fm.EngineCLIP, 0.5),
		}
		row := []string{c.Spec.Name}
		for _, a := range algos {
			rs := RunMany(opts.Runs, opts.Workers, opts.Seed, a)
			if rs.Err != nil {
				return nil, rs.Err
			}
			row = append(row, fmtF(rs.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PlacementHPWL compares the quadrisection-driven top-down placer
// (with and without terminal propagation) against the GORDIAN-style
// quadratic placement, in half-perimeter wirelength — the comparison
// [24] reports (≈14% savings vs GORDIAN-L on the original circuits).
func PlacementHPWL(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "placement-hpwl",
		Title: "top-down ML placement vs GORDIAN quadratic placement (HPWL, lower is better)",
		Columns: []string{"Test Case",
			"ML-place", "ML-noTP", "GORDIAN", "random", "regions", "depth"},
		Notes: []string{
			"ML-noTP disables terminal propagation; random is a uniform placement baseline.",
			"The GORDIAN quadratic placement is grid-legalized before measuring (overlapping",
			"analytic placements would otherwise report near-zero HPWL).",
		},
	}
	for _, c := range circuits {
		rng := rand.New(rand.NewSource(opts.Seed))
		pl, err := placer.Place(c.H, nil, nil, nil, placer.Config{}, rng)
		if err != nil {
			return nil, err
		}
		rng = rand.New(rand.NewSource(opts.Seed))
		noTP, err := placer.Place(c.H, nil, nil, nil, placer.Config{TerminalPropagationOff: true}, rng)
		if err != nil {
			return nil, err
		}
		rng = rand.New(rand.NewSource(opts.Seed))
		_, gres, err := placement.Quadrisect(c.H, c.Pads, placement.Config{}, rng)
		if err != nil {
			return nil, err
		}
		gx, gy := placer.SpreadToGrid(c.H, gres.X, gres.Y)
		gHPWL := placer.HPWL(c.H, gx, gy)
		rng = rand.New(rand.NewSource(opts.Seed))
		rx := make([]float64, c.H.NumCells())
		ry := make([]float64, c.H.NumCells())
		for v := range rx {
			rx[v], ry[v] = rng.Float64(), rng.Float64()
		}
		t.AddRow(c.Spec.Name,
			fmt.Sprintf("%.2f", pl.HPWL),
			fmt.Sprintf("%.2f", noTP.HPWL),
			fmt.Sprintf("%.2f", gHPWL),
			fmt.Sprintf("%.2f", placer.HPWL(c.H, rx, ry)),
			fmtD(pl.Regions), fmtD(pl.Depth))
	}
	return t, nil
}

// AblationRecursive compares direct ML quadrisection against
// recursive ML bisection on 4-way cut nets — the design choice §III.C
// makes for placement reasons (direct quadrisection keeps the
// simultaneous 4-way geometry) even though recursive bisection often
// wins on raw cut.
func AblationRecursive(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-recursive",
		Title:   fmt.Sprintf("4-way cut nets: direct ML quadrisection vs recursive ML bisection (min over %d runs)", opts.Runs),
		Columns: []string{"Test Case", "direct", "recursive"},
	}
	for _, c := range circuits {
		direct := RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLQuad(c.H, fm.EngineFM))
		rec := RunMany(opts.Runs, opts.Workers, opts.Seed, func(rng *rand.Rand) (int, error) {
			p, err := core.RecursiveBisect(c.H, 4, core.Config{}, rng)
			if err != nil {
				return 0, err
			}
			return p.Cut(c.H), nil
		})
		if direct.Err != nil {
			return nil, direct.Err
		}
		if rec.Err != nil {
			return nil, rec.Err
		}
		t.AddRow(c.Spec.Name, fmtD(direct.Min()), fmtD(rec.Min()))
	}
	return t, nil
}

// AblationVCycle measures iterated multilevel refinement: ML_C
// followed by up to 3 V-cycles, against plain ML_C.
func AblationVCycle(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-vcycle",
		Title:   fmt.Sprintf("ML_C vs ML_C + V-cycles (avg cut, %d runs)", opts.Runs),
		Columns: []string{"Test Case", "AVG-ML", "AVG-ML+V", "CPU-ML", "CPU-ML+V"},
	}
	mlCfg := core.Config{Ratio: 0.5, Refine: fm.Config{Engine: fm.EngineCLIP}}
	for _, c := range circuits {
		plain := RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, mlCfg))
		vc := RunMany(opts.Runs, opts.Workers, opts.Seed, func(rng *rand.Rand) (int, error) {
			p, _, err := core.Bipartition(c.H, mlCfg, rng)
			if err != nil {
				return 0, err
			}
			_, cut, err := core.VCycle(c.H, p, 3, mlCfg, rng)
			return cut, err
		})
		if plain.Err != nil {
			return nil, plain.Err
		}
		if vc.Err != nil {
			return nil, vc.Err
		}
		t.AddRow(c.Spec.Name, fmtF(plain.Mean()), fmtF(vc.Mean()),
			fmtSecs(plain.CPU.Seconds()), fmtSecs(vc.CPU.Seconds()))
	}
	return t, nil
}

// AblationMergeNets measures parallel-net merging (InduceMerged):
// identical weighted-cut semantics, smaller coarse netlists, lower
// CPU — the hMETIS-era optimization the paper's Definition 1 forgoes.
func AblationMergeNets(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-mergenets",
		Title:   fmt.Sprintf("parallel-net merging in ML_C coarsening (%d runs)", opts.Runs),
		Columns: []string{"Test Case", "AVG-parallel", "AVG-merged", "CPU-parallel", "CPU-merged"},
	}
	for _, c := range circuits {
		plain := RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, core.Config{
			Ratio: 0.5, Refine: fm.Config{Engine: fm.EngineCLIP},
		}))
		merged := RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, core.Config{
			Ratio: 0.5, Refine: fm.Config{Engine: fm.EngineCLIP}, MergeParallelNets: true,
		}))
		if plain.Err != nil {
			return nil, plain.Err
		}
		if merged.Err != nil {
			return nil, merged.Err
		}
		t.AddRow(c.Spec.Name,
			fmtF(plain.Mean()), fmtF(merged.Mean()),
			fmtSecs(plain.CPU.Seconds()), fmtSecs(merged.CPU.Seconds()))
	}
	return t, nil
}

// AblationTwoPhase isolates the value of extra hierarchy levels:
// flat CLIP (0 levels) vs two-phase (1 level) vs full ML (many).
func AblationTwoPhase(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-twophase",
		Title:   fmt.Sprintf("levels ablation: flat CLIP vs two-phase vs multilevel (%d runs, avg cut)", opts.Runs),
		Columns: []string{"Test Case", "flat(0)", "two-phase(1)", "ML(all)"},
	}
	for _, c := range circuits {
		flat := RunMany(opts.Runs, opts.Workers, opts.Seed, algoCLIP(c.H))
		twop := RunMany(opts.Runs, opts.Workers, opts.Seed, algoTwoPhase(c.H))
		ml := RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, 0.5))
		for _, r := range []RunStats{flat, twop, ml} {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		t.AddRow(c.Spec.Name, fmtF(flat.Mean()), fmtF(twop.Mean()), fmtF(ml.Mean()))
	}
	return t, nil
}
