package expt

import (
	"fmt"

	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
	"mlpart/internal/netgen"
)

// ReproCheck programmatically tests the paper's five qualitative
// claims on the selected suite and prints a PASS/FAIL scorecard —
// the fastest way to confirm the reproduction still holds after a
// code change. Each claim is evaluated over the circuits with more
// than minCells cells (the paper's claims are explicitly about the
// larger instances) by counting per-circuit wins on average cut.
func ReproCheck(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	// "Large" = upper half of the selected suite by cell count.
	minCells := 0
	{
		sizes := make([]int, len(circuits))
		for i, c := range circuits {
			sizes[i] = c.H.NumCells()
		}
		for _, s := range sizes {
			minCells += s
		}
		minCells /= len(sizes) // mean size as the largeness bar
	}

	t := &Table{
		ID:      "repro-check",
		Title:   fmt.Sprintf("paper shape claims, %d runs per engine (large = > %d cells)", opts.Runs, minCells),
		Columns: []string{"claim", "wins", "of", "verdict"},
		Notes: []string{
			"Each claim counts per-circuit wins on average cut over the large circuits;",
			"a claim passes when it wins a strict majority. Run at -scale medium or",
			"larger: at tiny/small scales the LIFO-vs-FIFO and ML_C-vs-ML_F claims are",
			"within noise (the paper makes them about its larger instances).",
		},
	}

	type claim struct {
		name string
		a, b func(c circuitHandle) Algo // claim: mean(a) ≤ mean(b)
	}
	claims := []claim{
		{"LIFO beats FIFO (Table II)",
			func(c circuitHandle) Algo { return algoFMOrder(c.h(), gainbucket.LIFO) },
			func(c circuitHandle) Algo { return algoFMOrder(c.h(), gainbucket.FIFO) }},
		{"CLIP beats FM (Table III)",
			func(c circuitHandle) Algo { return algoCLIP(c.h()) },
			func(c circuitHandle) Algo { return algoFM(c.h(), fm.Config{}) }},
		{"ML_C beats CLIP (Table IV)",
			func(c circuitHandle) Algo { return algoML(c.h(), fm.EngineCLIP, 1.0) },
			func(c circuitHandle) Algo { return algoCLIP(c.h()) }},
		{"ML_C beats ML_F on avg (Table IV)",
			func(c circuitHandle) Algo { return algoML(c.h(), fm.EngineCLIP, 1.0) },
			func(c circuitHandle) Algo { return algoML(c.h(), fm.EngineFM, 1.0) }},
		{"ML_F 4-way beats flat 4-way FM (Table IX)",
			func(c circuitHandle) Algo { return algoMLQuad(c.h(), fm.EngineFM) },
			func(c circuitHandle) Algo { return algoKway4(c.h(), fm.EngineFM) }},
		{"ML_F 4-way beats GORDIAN (Table IX)",
			func(c circuitHandle) Algo { return algoMLQuad(c.h(), fm.EngineFM) },
			func(c circuitHandle) Algo { return algoGordian(c.c) }},
	}

	for _, cl := range claims {
		wins, total := 0, 0
		for _, c := range circuits {
			if c.H.NumCells() <= minCells {
				continue
			}
			total++
			handle := circuitHandle{c: c}
			ra := RunMany(opts.Runs, opts.Workers, opts.Seed, cl.a(handle))
			rb := RunMany(opts.Runs, opts.Workers, opts.Seed, cl.b(handle))
			if ra.Err != nil {
				return nil, ra.Err
			}
			if rb.Err != nil {
				return nil, rb.Err
			}
			if ra.Mean() <= rb.Mean() {
				wins++
			}
		}
		verdict := "FAIL"
		if total == 0 {
			verdict = "SKIP (no large circuits)"
		} else if wins*2 > total {
			verdict = "PASS"
		}
		t.AddRow(cl.name, fmtD(wins), fmtD(total), verdict)
	}
	return t, nil
}

// circuitHandle defers hypergraph access inside claim closures.
type circuitHandle struct{ c *netgen.Circuit }

func (h circuitHandle) h() *hypergraph.Hypergraph { return h.c.H }
