package expt

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mlpart/internal/netgen"
)

// fastOpts keeps experiment tests quick: the two smallest tiny-scale
// circuits, 2 runs.
func fastOpts() Options {
	return Options{
		Scale:    netgen.ScaleTiny,
		Runs:     2,
		Seed:     42,
		Circuits: []string{"balu", "bm1"},
	}
}

func TestRunManyDeterministic(t *testing.T) {
	algo := func(rng *rand.Rand) (int, error) { return rng.Intn(1000), nil }
	a := RunMany(10, 4, 7, algo)
	b := RunMany(10, 2, 7, algo) // different workers, same seeds
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Min() != b.Min() || a.Mean() != b.Mean() || a.N() != b.N() {
		t.Errorf("parallelism changed results: %v vs %v", a.String(), b.String())
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	algo := func(rng *rand.Rand) (int, error) { return 0, boom }
	r := RunMany(3, 2, 1, algo)
	if !errors.Is(r.Err, boom) {
		t.Errorf("err = %v, want boom", r.Err)
	}
}

func TestRunSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := RunSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate seed at run %d", i)
		}
		seen[s] = true
	}
}

func TestOptionsNormalize(t *testing.T) {
	o, err := Options{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Scale != netgen.ScaleTiny || o.Runs != 5 || o.Seed != 1997 {
		t.Errorf("defaults = %+v", o)
	}
	for _, bad := range []Options{
		{Scale: "huge"}, {Runs: -1}, {Workers: -2}, {MaxCells: -1},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("bad options accepted: %+v", bad)
		}
	}
}

func TestOptionsCircuitFilter(t *testing.T) {
	o, _ := fastOpts().Normalize()
	cs, err := o.circuits()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d circuits, want 2", len(cs))
	}
	o.Circuits = []string{"no-such-circuit"}
	if _, err := o.circuits(); err == nil {
		t.Error("empty selection must error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 22 {
		t.Errorf("registry has %d experiments, want 22", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
	}
	if _, ok := Lookup("table4"); !ok {
		t.Error("Lookup(table4) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

// TestAllExperimentsRunTiny smoke-runs every registered experiment at
// the fastest settings and checks the rendered output.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment")
	}
	opts := fastOpts()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tbl.Format(&buf)
			out := buf.String()
			if !strings.Contains(out, tbl.ID) {
				t.Errorf("%s output missing id header:\n%s", e.ID, out)
			}
			for _, col := range tbl.Columns {
				if !strings.Contains(out, col) {
					t.Errorf("%s output missing column %q", e.ID, col)
				}
			}
		})
	}
}

func TestTable2RowsPerCircuit(t *testing.T) {
	tbl, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(tbl.Rows))
	}
	if len(tbl.Columns) != 10 {
		t.Errorf("columns = %d, want 10", len(tbl.Columns))
	}
}

func TestTable7IncludesReferences(t *testing.T) {
	tbl, err := Table7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	if !strings.Contains(buf.String(), "ref:PB") {
		t.Error("table7 missing literature reference columns")
	}
	// balu's PB reference is 27.
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "balu" {
			found = true
			if row[8] != "27" {
				t.Errorf("balu ref:PB = %q, want 27", row[8])
			}
		}
	}
	if !found {
		t.Error("balu row missing")
	}
}

func TestPaperDataCoverage(t *testing.T) {
	for _, s := range netgen.TableISpecs() {
		if _, ok := PaperTable7[s.Name]; !ok {
			t.Errorf("PaperTable7 missing %s", s.Name)
		}
		if _, ok := PaperTable8[s.Name]; !ok {
			t.Errorf("PaperTable8 missing %s", s.Name)
		}
	}
	if len(PaperTable9) != 9 {
		t.Errorf("PaperTable9 has %d rows, want 9", len(PaperTable9))
	}
	if Table9RefEmpty("primary1") {
		t.Error("primary1 should have Table IX data")
	}
	if !Table9RefEmpty("balu") {
		t.Error("balu should have no Table IX data")
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tbl := &Table{ID: "x", Columns: []string{"a", "b"}}
	tbl.AddRow("only-one")
}

func TestFormatCSV(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.FormatCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: demo", "a,b", "1,2", "3,4", "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
