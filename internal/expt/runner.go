package expt

import (
	"math/rand"
	"sync"
	"time"

	"mlpart/internal/stats"
)

// Algo is one partitioning algorithm under test: it runs once with
// the given RNG and returns the solution cost (cut).
type Algo func(rng *rand.Rand) (int, error)

// RunStats aggregates a multi-run experiment for one (circuit,
// algorithm) pair.
type RunStats struct {
	stats.Acc
	// CPU is the summed per-run wall time — the analogue of the
	// paper's "total CPU time for 100 runs" columns, independent of
	// the worker parallelism used to gather it.
	CPU time.Duration
	Err error
}

// splitmix64 derives decorrelated per-run seeds from a base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RunSeed returns the deterministic RNG seed of run i under base.
func RunSeed(base int64, i int) int64 {
	return int64(splitmix64(uint64(base) + uint64(i)*0x9e3779b9))
}

// RunMany executes algo runs times with deterministic per-run seeds,
// spreading runs over at most workers goroutines, and aggregates the
// results. The first error aborts remaining runs (best effort) and is
// reported in RunStats.Err.
func RunMany(runs, workers int, baseSeed int64, algo Algo) RunStats {
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	type runResult struct {
		cut int
		dur time.Duration
		err error
	}
	results := make([]runResult, runs)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rng := rand.New(rand.NewSource(RunSeed(baseSeed, i)))
				start := time.Now()
				cut, err := algo(rng)
				results[i] = runResult{cut: cut, dur: time.Since(start), err: err}
			}
		}()
	}
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	var out RunStats
	for _, r := range results {
		if r.err != nil && out.Err == nil {
			out.Err = r.err
		}
		if r.err == nil {
			out.Add(r.cut)
			out.CPU += r.dur
		}
	}
	return out
}
