package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result in the layout of the paper's
// tables: one row per circuit, column groups per algorithm/metric.
type Table struct {
	ID      string // experiment id, e.g. "table4"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("expt: row has %d cells, table %s has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// FormatCSV renders the table as RFC-4180 CSV (header row + data
// rows; the title and notes become leading comment records prefixed
// with '#').
func (t *Table) FormatCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID + ": " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float with one decimal, "-" for NaN-ish sentinels.
func fmtF(x float64) string { return fmt.Sprintf("%.1f", x) }

// fmtD renders an int.
func fmtD(x int) string { return fmt.Sprintf("%d", x) }

// fmtSecs renders a duration column in seconds.
func fmtSecs(s float64) string { return fmt.Sprintf("%.2f", s) }

// fmtRef renders a literature reference value, "-" when the paper
// left the entry blank.
func fmtRef(x int) string {
	if x < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", x)
}
