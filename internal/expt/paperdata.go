package expt

// Literature reference values quoted from the paper, measured on the
// ORIGINAL ACM/SIGDA circuits. They are embedded so that Table 7/8/9
// reproductions can print the published numbers alongside ours for
// shape comparison. A value of -1 marks an entry the paper left
// blank.

// Table7Ref holds one circuit's row of the paper's Table VII (best
// cut of each algorithm).
type Table7Ref struct {
	MLC100, MLC10            int // the paper's own results
	GMet, HB, PB, GFM, GFMt  int
	CLLA3, CDLA3, CLPR, LSMC int
}

// PaperTable7 is the paper's Table VII.
var PaperTable7 = map[string]Table7Ref{
	"balu":      {27, 27, 27, 41, 27, 28, -1, 27, 27, 27, 27},
	"bm1":       {47, 51, 48, -1, -1, 51, -1, 47, 47, -1, 49},
	"primary1":  {47, 52, 47, 53, 47, 51, 51, 47, 51, -1, 49},
	"test04":    {48, 49, 49, -1, -1, 49, -1, 48, 52, -1, 69},
	"test03":    {56, 58, 62, -1, -1, 56, -1, 57, 57, -1, 63},
	"test02":    {89, 92, 95, -1, -1, 91, -1, 89, 87, -1, 102},
	"test06":    {60, 60, 94, -1, -1, 60, -1, 60, 60, -1, 60},
	"struct":    {33, 33, 33, 40, 41, 36, -1, 33, 36, 33, 43},
	"test05":    {71, 72, 104, -1, -1, 80, -1, 74, 77, -1, 97},
	"19ks":      {106, 108, 106, -1, -1, 104, -1, 104, 104, -1, 123},
	"primary2":  {139, 145, 142, 146, 139, 139, 142, 151, 152, -1, 163},
	"s9234":     {40, 41, 43, 45, 74, 41, 44, 45, 44, 42, 44},
	"biomed":    {83, 84, 83, 135, -1, 84, 92, 83, 83, 84, 83},
	"s13207":    {55, 55, 70, 62, 91, 66, 61, 66, 69, 71, 68},
	"s15850":    {44, 56, 53, 46, 91, 63, 46, 71, 59, 56, 91},
	"industry2": {164, 174, 177, 193, 211, 175, 200, 182, 192, -1, 246},
	"industry3": {243, 243, 243, 267, 241, 244, 260, 243, 243, -1, 242},
	"s35932":    {41, 42, 57, 46, 62, 41, 44, 73, 73, 42, 97},
	"s38584":    {47, 48, 53, 52, 55, 47, 54, 50, 47, 51, 51},
	"avqsmall":  {128, 134, 144, -1, 224, 129, 139, 144, -1, -1, 270},
	"s38417":    {49, 50, 69, 49, 81, 62, 70, 74, 65, -1, 116},
	"avqlarge":  {128, 131, 144, -1, 139, 127, 137, 143, -1, -1, 255},
	"golem3":    {1346, 1374, 2111, -1, -1, -1, -1, -1, -1, -1, 1629},
}

// Table8Ref holds one circuit's row of the paper's Table VIII (CPU
// seconds on a Sun Sparc 5; PB on a DEC 3000/500 AXP).
type Table8Ref struct {
	MLC, GMet, PB int
}

// PaperTable8 is an excerpt of the paper's Table VIII (10-run ML_C,
// GMetis and PARABOLI runtimes).
var PaperTable8 = map[string]Table8Ref{
	"balu":      {17, 14, 16},
	"bm1":       {18, 12, -1},
	"primary1":  {18, 12, 18},
	"test04":    {41, 21, -1},
	"test03":    {47, 23, -1},
	"test02":    {45, 26, -1},
	"test06":    {55, 32, -1},
	"struct":    {35, 27, 35},
	"test05":    {74, 46, -1},
	"19ks":      {84, 39, -1},
	"primary2":  {90, 53, 137},
	"s9234":     {97, 58, 490},
	"biomed":    {172, 95, 711},
	"s13207":    {155, 102, 2060},
	"s15850":    {189, 114, 1731},
	"industry2": {502, 245, 1367},
	"industry3": {667, 299, 761},
	"s35932":    {427, 266, 2627},
	"s38584":    {490, 397, 6518},
	"avqsmall":  {603, 328, -1},
	"s38417":    {496, 281, 2042},
	"avqlarge":  {666, 417, -1},
	"golem3":    {10483, 450, -1},
}

// Table9Ref holds one circuit's row of the paper's Table IX (4-way
// cut nets; MLF best with GORDIAN best).
type Table9Ref struct {
	MLF, GORDIAN int
}

// PaperTable9 is the paper's Table IX (MLF min and best GORDIAN /
// GORDIAN-L cut).
var PaperTable9 = map[string]Table9Ref{
	"primary1":  {126, 157},
	"primary2":  {346, 502},
	"biomed":    {311, 479},
	"s13207":    {472, 590},
	"s15850":    {547, 678},
	"industry2": {398, 1179},
	"industry3": {830, 1965},
	"avqsmall":  {408, 646},
	"avqlarge":  {481, 661},
}

// Table9RefEmpty reports whether a circuit has Table IX reference
// data (only 9 of the 23 circuits appear there).
func Table9RefEmpty(name string) bool {
	_, ok := PaperTable9[name]
	return !ok
}
