package expt

import (
	"fmt"
	"sort"

	"mlpart/internal/core"
	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
)

// Experiment is a registered table/figure generator.
type Experiment struct {
	ID    string
	Paper string // which paper table/figure it reproduces
	Run   func(Options) (*Table, error)
}

// Experiments returns the registry of all reproducible tables,
// figures and ablations, in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I — benchmark circuit characteristics", Table1},
		{"table2", "Table II — FM with LIFO/FIFO/random buckets", Table2},
		{"table3", "Table III — FM vs CLIP", Table3},
		{"table4", "Table IV — CLIP vs ML_F vs ML_C (R=1)", Table4},
		{"table5", "Table V — ML_F matching-ratio sweep", Table5},
		{"table6", "Table VI — ML_C matching-ratio sweep", Table6},
		{"table7", "Table VII — ML_C vs other bipartitioners", Table7},
		{"table8", "Table VIII — CPU comparison", Table8},
		{"table9", "Table IX — 4-way partitioning comparisons", Table9},
		{"fig4", "Figure 4 — matching ratio vs average cut", Figure4},
		{"ablation-lifo", "§II.A — bucket order inside ML_C", AblationBucketOrder},
		{"ablation-lookahead", "§II.A/§V — lookahead levels", AblationLookahead},
		{"ablation-boundary", "§V — boundary FM & early exit", AblationBoundary},
		{"ablation-starts", "§V — multi-start at coarsest level", AblationCoarsestStarts},
		{"ablation-twophase", "§II.C — flat vs two-phase vs multilevel", AblationTwoPhase},
		{"ablation-recursive", "§III.C — direct quadrisection vs recursive bisection", AblationRecursive},
		{"ablation-mergenets", "Def. 1 — parallel nets vs merged weighted nets", AblationMergeNets},
		{"ablation-vcycle", "iterated multilevel (V-cycles) on top of ML_C", AblationVCycle},
		{"ablation-baselines", "§II — every bipartitioning engine side by side", AblationBaselines},
		{"placement-hpwl", "[24] — quadrisection-driven placement vs GORDIAN (HPWL)", PlacementHPWL},
		{"stage-profile", "telemetry — ML_C per-stage work and wall-clock split", StageProfile},
		{"repro-check", "scorecard — programmatic check of the paper's shape claims", ReproCheck},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 reports the size characteristics of the generated suite in
// the format of Table I, with the published targets alongside.
func Table1(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table1",
		Title:   "benchmark circuit characteristics (generated vs Table-I targets)",
		Columns: []string{"Test Case", "Modules", "Nets", "Pins", "tgtModules", "tgtNets", "tgtPins"},
		Notes: []string{
			"targets are the published Table-I sizes scaled to " + string(opts.Scale),
		},
	}
	for _, c := range circuits {
		s := c.H.ComputeStats()
		t.AddRow(c.Spec.Name, fmtD(s.Cells), fmtD(s.Nets), fmtD(s.Pins),
			fmtD(c.Spec.Cells), fmtD(c.Spec.Nets), fmtD(c.Spec.Pins))
	}
	return t, nil
}

// Table2 reproduces the §II.A tie-breaking study: min/avg/std cut of
// N runs of FM under LIFO, FIFO and random bucket organizations.
func Table2(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("min/avg/std cut for %d runs of FM with LIFO, FIFO and RND buckets", opts.Runs),
		Columns: []string{"Test Case",
			"MIN-LIFO", "MIN-FIFO", "MIN-RND",
			"AVG-LIFO", "AVG-FIFO", "AVG-RND",
			"STD-LIFO", "STD-FIFO", "STD-RND"},
	}
	orders := []gainbucket.Order{gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random}
	for _, c := range circuits {
		var rs [3]RunStats
		for i, ord := range orders {
			rs[i] = RunMany(opts.Runs, opts.Workers, opts.Seed+int64(i), algoFMOrder(c.H, ord))
			if rs[i].Err != nil {
				return nil, rs[i].Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtD(rs[0].Min()), fmtD(rs[1].Min()), fmtD(rs[2].Min()),
			fmtF(rs[0].Mean()), fmtF(rs[1].Mean()), fmtF(rs[2].Mean()),
			fmtF(rs[0].Std()), fmtF(rs[1].Std()), fmtF(rs[2].Std()))
	}
	return t, nil
}

// Table3 reproduces the FM vs CLIP comparison: min/avg/std/CPU for N
// runs of each.
func Table3(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table3",
		Title: fmt.Sprintf("min/avg/std/CPU for %d runs of FM and CLIP", opts.Runs),
		Columns: []string{"Test Case",
			"MIN-FM", "MIN-CLIP", "AVG-FM", "AVG-CLIP",
			"STD-FM", "STD-CLIP", "CPU-FM", "CPU-CLIP"},
	}
	for _, c := range circuits {
		rf := RunMany(opts.Runs, opts.Workers, opts.Seed, algoFM(c.H, fm.Config{}))
		rc := RunMany(opts.Runs, opts.Workers, opts.Seed, algoCLIP(c.H))
		if rf.Err != nil {
			return nil, rf.Err
		}
		if rc.Err != nil {
			return nil, rc.Err
		}
		t.AddRow(c.Spec.Name,
			fmtD(rf.Min()), fmtD(rc.Min()), fmtF(rf.Mean()), fmtF(rc.Mean()),
			fmtF(rf.Std()), fmtF(rc.Std()),
			fmtSecs(rf.CPU.Seconds()), fmtSecs(rc.CPU.Seconds()))
	}
	return t, nil
}

// Table4 compares CLIP with ML_F and ML_C at R = 1 (T = 35).
func Table4(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table4",
		Title: fmt.Sprintf("min/avg/CPU for %d runs of CLIP, ML_F and ML_C (R=1)", opts.Runs),
		Columns: []string{"Test Case",
			"MIN-CLIP", "MIN-MLF", "MIN-MLC",
			"AVG-CLIP", "AVG-MLF", "AVG-MLC",
			"CPU-CLIP", "CPU-MLF", "CPU-MLC"},
	}
	for _, c := range circuits {
		rc := RunMany(opts.Runs, opts.Workers, opts.Seed, algoCLIP(c.H))
		rf := RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, fm.EngineFM, 1.0))
		rm := RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, 1.0))
		for _, r := range []RunStats{rc, rf, rm} {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtD(rc.Min()), fmtD(rf.Min()), fmtD(rm.Min()),
			fmtF(rc.Mean()), fmtF(rf.Mean()), fmtF(rm.Mean()),
			fmtSecs(rc.CPU.Seconds()), fmtSecs(rf.CPU.Seconds()), fmtSecs(rm.CPU.Seconds()))
	}
	return t, nil
}

// ratioTable implements Tables V and VI: an R sweep for one engine.
func ratioTable(opts Options, id string, engine fm.Engine) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	name := engine.String()
	ratios := []float64{1.0, 0.5, 0.33}
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("min/avg/CPU for %d runs of ML_%s with R ∈ {1.0, 0.5, 0.33}", opts.Runs, name[:1]),
		Columns: []string{"Test Case",
			"MIN-1.0", "MIN-0.5", "MIN-0.33",
			"AVG-1.0", "AVG-0.5", "AVG-0.33",
			"CPU-1.0", "CPU-0.5", "CPU-0.33"},
	}
	for _, c := range circuits {
		var rs [3]RunStats
		for i, r := range ratios {
			rs[i] = RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, engine, r))
			if rs[i].Err != nil {
				return nil, rs[i].Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtD(rs[0].Min()), fmtD(rs[1].Min()), fmtD(rs[2].Min()),
			fmtF(rs[0].Mean()), fmtF(rs[1].Mean()), fmtF(rs[2].Mean()),
			fmtSecs(rs[0].CPU.Seconds()), fmtSecs(rs[1].CPU.Seconds()), fmtSecs(rs[2].CPU.Seconds()))
	}
	return t, nil
}

// Table5 sweeps the matching ratio for ML_F.
func Table5(opts Options) (*Table, error) { return ratioTable(opts, "table5", fm.EngineFM) }

// Table6 sweeps the matching ratio for ML_C.
func Table6(opts Options) (*Table, error) { return ratioTable(opts, "table6", fm.EngineCLIP) }

// Table7 compares ML_C (N runs and N/10 runs, R = 0.5) against the
// live baselines we rebuilt (FM, CLIP, LSMC) and against the
// literature values quoted by the paper for the remaining nine
// algorithms (on the original circuits — reference only).
func Table7(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	fewRuns := opts.Runs / 10
	if fewRuns < 1 {
		fewRuns = 1
	}
	t := &Table{
		ID: "table7",
		Title: fmt.Sprintf("min cut: ML_C (R=0.5, %d and %d runs) vs live FM/CLIP/LSMC and literature values",
			opts.Runs, fewRuns),
		Columns: []string{"Test Case",
			fmt.Sprintf("MLC(%d)", opts.Runs), fmt.Sprintf("MLC(%d)", fewRuns),
			"FM", "CLIP", "LSMC",
			"ref:GMet", "ref:HB", "ref:PB", "ref:GFM", "ref:CL-LA3", "ref:CD-LA3", "ref:CL-PR", "ref:LSMC"},
		Notes: []string{
			"ref:* columns are the paper's Table VII values measured on the ORIGINAL circuits;",
			"they are printed for shape comparison only and are not comparable in absolute terms",
			"to the synthetic-suite columns on their left.",
		},
	}
	for _, c := range circuits {
		mlAll := RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, 0.5))
		mlFew := RunMany(fewRuns, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, 0.5))
		rFM := RunMany(opts.Runs, opts.Workers, opts.Seed, algoFM(c.H, fm.Config{}))
		rCL := RunMany(opts.Runs, opts.Workers, opts.Seed, algoCLIP(c.H))
		// One LSMC solution built from Runs descents (equal budget).
		rLS := RunMany(1, 1, opts.Seed, algoLSMC(c.H, fm.EngineFM, opts.Runs))
		for _, r := range []RunStats{mlAll, mlFew, rFM, rCL, rLS} {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		ref, ok := PaperTable7[c.Spec.Name]
		if !ok {
			ref = Table7Ref{-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1}
		}
		t.AddRow(c.Spec.Name,
			fmtD(mlAll.Min()), fmtD(mlFew.Min()),
			fmtD(rFM.Min()), fmtD(rCL.Min()), fmtD(rLS.Min()),
			fmtRef(ref.GMet), fmtRef(ref.HB), fmtRef(ref.PB), fmtRef(ref.GFM),
			fmtRef(ref.CLLA3), fmtRef(ref.CDLA3), fmtRef(ref.CLPR), fmtRef(ref.LSMC))
	}
	return t, nil
}

// Table8 compares total CPU time: 10%-run ML_C vs the live baselines,
// with the paper's reported runtimes as reference.
func Table8(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	fewRuns := opts.Runs / 10
	if fewRuns < 1 {
		fewRuns = 1
	}
	t := &Table{
		ID:    "table8",
		Title: fmt.Sprintf("CPU seconds: ML_C (%d runs) vs FM/CLIP (%d runs) and LSMC (%d descents)", fewRuns, opts.Runs, opts.Runs),
		Columns: []string{"Test Case",
			fmt.Sprintf("MLC(%d)", fewRuns), "FM", "CLIP", "LSMC", "ref:MLC(10)", "ref:GMet", "ref:PB"},
		Notes: []string{"ref:* are Sun Sparc 5 seconds from the paper's Table VIII (original circuits)."},
	}
	for _, c := range circuits {
		ml := RunMany(fewRuns, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, 0.5))
		rFM := RunMany(opts.Runs, opts.Workers, opts.Seed, algoFM(c.H, fm.Config{}))
		rCL := RunMany(opts.Runs, opts.Workers, opts.Seed, algoCLIP(c.H))
		rLS := RunMany(1, 1, opts.Seed, algoLSMC(c.H, fm.EngineFM, opts.Runs))
		for _, r := range []RunStats{ml, rFM, rCL, rLS} {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		ref, ok := PaperTable8[c.Spec.Name]
		if !ok {
			ref = Table8Ref{-1, -1, -1}
		}
		t.AddRow(c.Spec.Name,
			fmtSecs(ml.CPU.Seconds()), fmtSecs(rFM.CPU.Seconds()),
			fmtSecs(rCL.CPU.Seconds()), fmtSecs(rLS.CPU.Seconds()),
			fmtRef(ref.MLC), fmtRef(ref.GMet), fmtRef(ref.PB))
	}
	return t, nil
}

// Table9 reproduces the 4-way comparisons: ML_F quadrisection
// (R=1.0, T=100, sum-of-degrees) vs the GORDIAN-style analytic
// quadrisection and flat 4-way FM, CLIP and LSMC variants.
func Table9(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	lsmcDescents := opts.Runs
	if lsmcDescents > 20 {
		lsmcDescents = 20 // k-way descents are expensive; cap budget
	}
	t := &Table{
		ID:    "table9",
		Title: fmt.Sprintf("4-way cut nets (min over %d runs; MLF also shows avg)", opts.Runs),
		Columns: []string{"Test Case",
			"MLF", "MLF-avg", "GORDIAN", "FM", "CLIP", "LSMC_F", "LSMC_C", "ref:MLF", "ref:GORDIAN"},
		Notes: []string{"GORDIAN column is our quadratic-placement reimplementation (see DESIGN.md)."},
	}
	for _, c := range circuits {
		ml := RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLQuad(c.H, fm.EngineFM))
		gd := RunMany(minInt(opts.Runs, 5), opts.Workers, opts.Seed, algoGordian(c))
		f4 := RunMany(opts.Runs, opts.Workers, opts.Seed, algoKway4(c.H, fm.EngineFM))
		c4 := RunMany(opts.Runs, opts.Workers, opts.Seed, algoKway4(c.H, fm.EngineCLIP))
		lf := RunMany(1, 1, opts.Seed, algoLSMC4(c.H, fm.EngineFM, lsmcDescents))
		lc := RunMany(1, 1, opts.Seed, algoLSMC4(c.H, fm.EngineCLIP, lsmcDescents))
		for _, r := range []RunStats{ml, gd, f4, c4, lf, lc} {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		ref, ok := PaperTable9[c.Spec.Name]
		if !ok {
			ref = Table9Ref{-1, -1}
		}
		t.AddRow(c.Spec.Name,
			fmtD(ml.Min()), fmtF(ml.Mean()), fmtD(gd.Min()),
			fmtD(f4.Min()), fmtD(c4.Min()), fmtD(lf.Min()), fmtD(lc.Min()),
			fmtRef(ref.MLF), fmtRef(ref.GORDIAN))
	}
	return t, nil
}

// Figure4 sweeps the matching ratio R from 0.1 to 1.0 and reports the
// average ML_C cut, as in the paper's Fig. 4 (40 runs on the two
// largest circuits of the selected suite).
func Figure4(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	// Two largest circuits by cell count.
	sort.Slice(circuits, func(i, j int) bool {
		return circuits[i].H.NumCells() > circuits[j].H.NumCells()
	})
	if len(circuits) > 2 {
		circuits = circuits[:2]
	}
	cols := []string{"R"}
	for _, c := range circuits {
		cols = append(cols, c.Spec.Name)
	}
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("average ML_C cut vs matching ratio R (%d runs per point)", opts.Runs),
		Columns: cols,
	}
	for r := 1; r <= 10; r++ {
		ratio := float64(r) / 10
		row := []string{fmt.Sprintf("%.1f", ratio)}
		for _, c := range circuits {
			rs := RunMany(opts.Runs, opts.Workers, opts.Seed, algoML(c.H, fm.EngineCLIP, ratio))
			if rs.Err != nil {
				return nil, rs.Err
			}
			row = append(row, fmtF(rs.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationBucketOrder reruns ML_C with each bucket organization — the
// §II.A study transplanted inside the multilevel loop.
func AblationBucketOrder(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-lifo",
		Title:   fmt.Sprintf("ML_C average cut under LIFO/FIFO/RND buckets (%d runs)", opts.Runs),
		Columns: []string{"Test Case", "AVG-LIFO", "AVG-FIFO", "AVG-RND", "MIN-LIFO", "MIN-FIFO", "MIN-RND"},
	}
	orders := []gainbucket.Order{gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random}
	for _, c := range circuits {
		var rs [3]RunStats
		for i, ord := range orders {
			cfg := core.Config{Ratio: 0.5, Refine: fm.Config{Engine: fm.EngineCLIP, Order: ord}}
			rs[i] = RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, cfg))
			if rs[i].Err != nil {
				return nil, rs[i].Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtF(rs[0].Mean()), fmtF(rs[1].Mean()), fmtF(rs[2].Mean()),
			fmtD(rs[0].Min()), fmtD(rs[1].Min()), fmtD(rs[2].Min()))
	}
	return t, nil
}

// AblationLookahead measures Krishnamurthy lookahead levels 0/2/3
// under both engines (flat, not multilevel — matching §II.A's setup).
func AblationLookahead(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-lookahead",
		Title: fmt.Sprintf("average cut with lookahead levels (LA) for FM and CLIP (%d runs)", opts.Runs),
		Columns: []string{"Test Case",
			"FM-LA0", "FM-LA2", "FM-LA3", "CLIP-LA0", "CLIP-LA2", "CLIP-LA3"},
	}
	for _, c := range circuits {
		row := []string{c.Spec.Name}
		for _, eng := range []fm.Engine{fm.EngineFM, fm.EngineCLIP} {
			for _, la := range []int{0, 2, 3} {
				rs := RunMany(opts.Runs, opts.Workers, opts.Seed,
					algoFM(c.H, fm.Config{Engine: eng, Lookahead: la}))
				if rs.Err != nil {
					return nil, rs.Err
				}
				row = append(row, fmtF(rs.Mean()))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationBoundary measures the §V speedup features: boundary
// initialization and early pass exit, in quality and CPU.
func AblationBoundary(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-boundary",
		Title: fmt.Sprintf("ML_C with boundary FM / early exit: avg cut and CPU (%d runs)", opts.Runs),
		Columns: []string{"Test Case",
			"AVG-base", "AVG-bdry", "AVG-early", "AVG-both",
			"CPU-base", "CPU-bdry", "CPU-early", "CPU-both"},
	}
	variants := []fm.Config{
		{Engine: fm.EngineCLIP},
		{Engine: fm.EngineCLIP, Boundary: true},
		{Engine: fm.EngineCLIP, EarlyExit: true},
		{Engine: fm.EngineCLIP, Boundary: true, EarlyExit: true},
	}
	for _, c := range circuits {
		var rs [4]RunStats
		for i, v := range variants {
			cfg := core.Config{Ratio: 0.5, Refine: v}
			rs[i] = RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, cfg))
			if rs[i].Err != nil {
				return nil, rs[i].Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtF(rs[0].Mean()), fmtF(rs[1].Mean()), fmtF(rs[2].Mean()), fmtF(rs[3].Mean()),
			fmtSecs(rs[0].CPU.Seconds()), fmtSecs(rs[1].CPU.Seconds()),
			fmtSecs(rs[2].CPU.Seconds()), fmtSecs(rs[3].CPU.Seconds()))
	}
	return t, nil
}

// AblationCoarsestStarts measures multi-start partitioning of the
// coarsest netlist (§V future work).
func AblationCoarsestStarts(opts Options) (*Table, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	circuits, err := opts.circuits()
	if err != nil {
		return nil, err
	}
	starts := []int{1, 4, 16}
	t := &Table{
		ID:      "ablation-starts",
		Title:   fmt.Sprintf("ML_C average cut with 1/4/16 starts at the coarsest level (%d runs)", opts.Runs),
		Columns: []string{"Test Case", "AVG-1", "AVG-4", "AVG-16", "CPU-1", "CPU-4", "CPU-16"},
	}
	for _, c := range circuits {
		var rs [3]RunStats
		for i, s := range starts {
			cfg := core.Config{Ratio: 0.5, CoarsestStarts: s, Refine: fm.Config{Engine: fm.EngineCLIP}}
			rs[i] = RunMany(opts.Runs, opts.Workers, opts.Seed, algoMLOpts(c.H, cfg))
			if rs[i].Err != nil {
				return nil, rs[i].Err
			}
		}
		t.AddRow(c.Spec.Name,
			fmtF(rs[0].Mean()), fmtF(rs[1].Mean()), fmtF(rs[2].Mean()),
			fmtSecs(rs[0].CPU.Seconds()), fmtSecs(rs[1].CPU.Seconds()), fmtSecs(rs[2].CPU.Seconds()))
	}
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
