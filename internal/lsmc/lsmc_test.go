package lsmc

import (
	"math/rand"
	"testing"

	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestBipartitionImprovesOnSingleDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomH(rng, 100, 250, 5)
	// Single FM descent.
	_, single, err := fm.Partition(h, nil, fm.Config{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// 15-descent LSMC from the same seed family.
	_, multi, err := Bipartition(h, Config{Descents: 15}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cut > single.Cut {
		t.Errorf("LSMC (%d) worse than its own first descent (%d)", multi.Cut, single.Cut)
	}
	if multi.Descents != 15 {
		t.Errorf("Descents = %d, want 15", multi.Descents)
	}
}

func TestBipartitionValidBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomH(rng, 80, 160, 4)
	p, res, err := Bipartition(h, Config{Descents: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Errorf("cut %d != measured %d", res.Cut, p.Cut(h))
	}
	if !p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
		t.Error("unbalanced result")
	}
}

func TestCLIPEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomH(rng, 60, 120, 4)
	p, res, err := Bipartition(h, Config{Descents: 4, Refine: fm.Config{Engine: fm.EngineCLIP}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestKway(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 120, 240, 4)
	p, res, err := Kway(h, Config{Descents: 5}, kway.Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != p.Cut(h) || res.SumDegrees != p.SumOfDegrees(h) {
		t.Error("metrics mismatch")
	}
	if !p.IsBalanced(h, hypergraph.Balance(h, 4, 0.1)) {
		t.Error("unbalanced 4-way result")
	}
	if res.Descents != 5 {
		t.Errorf("Descents = %d, want 5", res.Descents)
	}
}

func TestKwayNetCutObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := randomH(rng, 80, 160, 4)
	p, res, err := Kway(h, Config{Descents: 3}, kway.Config{Objective: kway.NetCut}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestConfigErrors(t *testing.T) {
	for _, bad := range []Config{
		{Descents: -1},
		{KickFraction: -0.5},
		{KickFraction: 1.5},
		{Refine: fm.Config{Tolerance: 9}},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
	rng := rand.New(rand.NewSource(7))
	h := randomH(rng, 20, 30, 3)
	if _, _, err := Bipartition(h, Config{Descents: -2}, rng); err == nil {
		t.Error("Bipartition must propagate config error")
	}
	if _, _, err := Kway(h, Config{Descents: -2}, kway.Config{}, rng); err == nil {
		t.Error("Kway must propagate config error")
	}
	if _, _, err := Kway(h, Config{}, kway.Config{K: 1}, rng); err == nil {
		t.Error("Kway must propagate kway config error")
	}
}

func TestDefaults(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Descents != 100 || c.KickFraction != 0.15 {
		t.Errorf("defaults = %+v", c)
	}
}
