package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"mlpart/internal/faultinject"
	"mlpart/internal/telemetry"
)

// Outcome classifies how one start of a multi-start run ended.
type Outcome int

const (
	// OutcomeOK: the attempt completed cleanly.
	OutcomeOK Outcome = iota
	// OutcomeRecovered: an internal panic was recovered and the
	// attempt still produced a feasible (degraded) solution.
	OutcomeRecovered
	// OutcomeRetried: at least one attempt failed outright, but a
	// reseeded retry completed cleanly.
	OutcomeRetried
	// OutcomeTimedOut: the per-attempt deadline expired; the attempt
	// wound down cooperatively and its best-so-far solution was kept.
	OutcomeTimedOut
	// OutcomeCancelled: the caller's context was done, so the start
	// was skipped (or abandoned) without producing a solution.
	OutcomeCancelled
	// OutcomeFailed: every attempt failed without a usable solution.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeRetried:
		return "retried"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// StartReport is the per-start entry of the outcome taxonomy.
type StartReport struct {
	// Start is the 0-based start index.
	Start int
	// Outcome classifies how the start ended.
	Outcome Outcome
	// Attempts is the number of attempts run (1 + retries used).
	Attempts int
	// Cost is the kept solution's objective value (cut or
	// sum-of-degrees); -1 when the start produced no solution.
	Cost int
	// Faults is how many injected faults fired across the start's
	// attempts (0 without a fault plan).
	Faults int
	// Interrupted reports that some attempt was cut short by a
	// deadline or cancellation.
	Interrupted bool
	// Err is the error of the kept classification: the recovered
	// *PanicError for OutcomeRecovered, the first attempt error for
	// OutcomeFailed, nil otherwise.
	Err error
}

// Attempt is what one supervised attempt returns to RunStarts.
type Attempt[S any] struct {
	// Sol is the solution; read only when HasSol is true.
	Sol S
	// Cost is the objective value used by the deterministic reduction.
	Cost int
	// HasSol reports that Sol is a feasible solution.
	HasSol bool
	// Interrupted reports cooperative cancellation inside the attempt.
	Interrupted bool
	// Err is the attempt's error (a *PanicError for recovered panics).
	Err error
}

// SuperOptions configures RunStarts.
type SuperOptions struct {
	// Starts is the number of independent starts. Minimum 1.
	Starts int
	// Parallelism bounds the worker pool; 0 means
	// min(GOMAXPROCS, Starts), 1 runs sequentially on the calling
	// goroutine.
	Parallelism int
	// MaxRetries is how many reseeded retries a failed attempt gets
	// (failed = no usable solution; recovered panics with a feasible
	// solution are kept, not retried). Negative means none.
	MaxRetries int
	// AttemptTimeout, when positive, bounds each attempt with its own
	// deadline; an expired attempt winds down cooperatively and keeps
	// its best-so-far solution.
	AttemptTimeout time.Duration
	// Seed is the base seed; per-attempt seeds come from DeriveSeed.
	Seed int64
	// Plan optionally arms deterministic fault injection; each attempt
	// gets its own derived injector.
	Plan *faultinject.Plan
	// Telemetry optionally collects per-start statistics. Each attempt
	// gets its own child collector (so pool workers never share one);
	// the kept children are merged into this parent in start order
	// after the pool drains, which keeps the report bit-identical
	// across Parallelism values. Nil costs one pointer check.
	Telemetry *telemetry.Collector
}

// DeriveSeed maps (base seed, start, retry) to the attempt's seed.
// Start 0 / retry 0 returns base unchanged, so a single-start run is
// bit-identical to the pre-supervisor sequential code; other attempts
// get independent streams via a splitmix64-style finalizer.
func DeriveSeed(base int64, start, retry int) int64 {
	if start == 0 && retry == 0 {
		return base
	}
	z := uint64(base) ^ 0x9e3779b97f4a7c15*uint64(start+1) ^ 0xd1b54a32d192ed03*uint64(retry+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RunStarts executes o.Starts supervised attempts of run over a
// bounded worker pool and reduces to the best solution with a
// deterministic tie-break (lowest cost, then lowest start index), so
// the result is bit-identical run-to-run and across Parallelism
// values.
//
// Each attempt is panic-isolated (a panic escaping run becomes a
// *PanicError, failing only that attempt), carries its own derived
// seed and fault injector, and optionally its own deadline. Failed
// attempts are retried with a reseeded attempt up to o.MaxRetries
// times; attempts are never retried once the caller's context is
// done. Start 0 always runs, even with a pre-cancelled context, so a
// best-effort degraded solution exists.
//
// The returned error is nil when any start succeeded cleanly
// (ok/retried/timed-out); otherwise it is the lowest-start recovered
// *PanicError (alongside the best recovered solution), or the first
// failure.
func RunStarts[S any](ctx context.Context, o SuperOptions, run func(ctx context.Context, seed int64, inj *faultinject.Injector, tel *telemetry.Collector) Attempt[S]) (S, int, []StartReport, error) {
	if o.Starts < 1 {
		o.Starts = 1
	}
	par := o.Parallelism
	if par <= 0 {
		par = DefaultWorkers()
	}
	if par > o.Starts {
		par = o.Starts
	}
	retries := o.MaxRetries
	if retries < 0 {
		retries = 0
	}

	reports := make([]StartReport, o.Starts)
	sols := make([]Attempt[S], o.Starts)
	// Per-start telemetry children and wall-clock, merged into the
	// parent in start order after the pool drains (never from pool
	// workers — the parent collector is single-goroutine).
	var tels []*telemetry.Collector
	var startNS []int64
	if o.Telemetry != nil {
		tels = make([]*telemetry.Collector, o.Starts)
		startNS = make([]int64, o.Starts)
	}
	runStart := func(s int) {
		var t0 time.Time
		if o.Telemetry != nil {
			//mllint:ignore par-purity telemetry-gated wall clock: durations land in per-start slots merged in start order, never in results
			t0 = time.Now()
		}
		var tel *telemetry.Collector
		reports[s], tel = superviseStart(ctx, o, s, retries, run, &sols[s])
		if o.Telemetry != nil {
			tels[s] = tel
			//mllint:ignore par-purity telemetry-gated wall clock: durations land in per-start slots merged in start order, never in results
			startNS[s] = time.Since(t0).Nanoseconds()
		}
	}

	if par == 1 {
		// Sequential fast path on the calling goroutine: identical
		// reduction, no pool. Keeps single-start runs (the default)
		// free of any goroutine machinery.
		for s := 0; s < o.Starts; s++ {
			runStart(s)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range idx {
					runStart(s)
				}
			}()
		}
		for s := 0; s < o.Starts; s++ {
			idx <- s
		}
		close(idx)
		wg.Wait()
	}

	if o.Telemetry != nil {
		for s := range reports {
			r := reports[s]
			o.Telemetry.AttachStart(tels[s].TakeStart(s, r.Outcome.String(), r.Attempts, r.Cost, startNS[s]))
		}
	}

	// Deterministic reduction: lowest cost wins, ties to the lowest
	// start index (ascending scan with a strict comparison).
	best := -1
	for s := range reports {
		if reports[s].Cost < 0 {
			continue
		}
		if best == -1 || reports[s].Cost < reports[best].Cost {
			best = s
		}
	}

	var err error
	clean := false
	for _, r := range reports {
		switch r.Outcome {
		case OutcomeOK, OutcomeRetried, OutcomeTimedOut:
			clean = true
		}
	}
	if !clean {
		// Prefer the error that accompanies the returned solution
		// (the recovered panic of the best start); otherwise the
		// first failure in start order.
		if best >= 0 && reports[best].Err != nil {
			err = reports[best].Err
		} else {
			for _, r := range reports {
				if r.Err != nil {
					err = r.Err
					break
				}
			}
		}
	}
	var sol S
	if best >= 0 {
		sol = sols[best].Sol
	}
	return sol, best, reports, err
}

// superviseStart runs one start: attempt, classify, retry. The kept
// solution (if any) is written to *keep and signalled by a
// non-negative Cost in the report. The returned collector is the
// child that observed the classified attempt (nil when telemetry is
// disabled or the start was skipped).
func superviseStart[S any](ctx context.Context, o SuperOptions, s, retries int, run func(ctx context.Context, seed int64, inj *faultinject.Injector, tel *telemetry.Collector) Attempt[S], keep *Attempt[S]) (StartReport, *telemetry.Collector) {
	rep := StartReport{Start: s, Cost: -1}
	if s > 0 && ctx.Err() != nil {
		rep.Outcome = OutcomeCancelled
		return rep, nil
	}
	var firstErr error
	var tel *telemetry.Collector
	for attempt := 0; attempt <= retries; attempt++ {
		rep.Attempts = attempt + 1
		inj := o.Plan.NewInjector(s, attempt)
		// Fresh child per attempt, so a kept retry's stats are not
		// polluted by the failed attempt before it.
		tel = o.Telemetry.NewChild()
		actx := ctx
		var cancel context.CancelFunc
		if o.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, o.AttemptTimeout)
		}
		a := runIsolated(actx, DeriveSeed(o.Seed, s, attempt), inj, tel, run)
		timedOut := cancel != nil && errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
		if cancel != nil {
			cancel()
		}
		rep.Faults += inj.Fired()
		if a.Interrupted {
			rep.Interrupted = true
		}
		if a.Err == nil && a.HasSol {
			*keep = a
			rep.Cost = a.Cost
			switch {
			case attempt > 0:
				rep.Outcome = OutcomeRetried
			case timedOut:
				rep.Outcome = OutcomeTimedOut
			default:
				rep.Outcome = OutcomeOK
			}
			return rep, tel
		}
		if _, ok := AsPanicError(a.Err); ok && a.HasSol {
			// Recovered panic with a feasible degraded solution: keep
			// it rather than spend a retry — the paper's multi-start
			// already averages over starts, and the solution is valid.
			*keep = a
			rep.Cost = a.Cost
			rep.Outcome = OutcomeRecovered
			rep.Err = a.Err
			return rep, tel
		}
		if firstErr == nil {
			firstErr = a.Err
		}
		if ctx.Err() != nil {
			// Never retry once the caller has cancelled.
			rep.Outcome = OutcomeCancelled
			rep.Err = firstErr
			return rep, tel
		}
	}
	rep.Outcome = OutcomeFailed
	if firstErr == nil {
		firstErr = errors.New("core: start produced no solution")
	}
	rep.Err = firstErr
	return rep, tel
}

// runIsolated is the belt-and-braces panic barrier around one attempt:
// the stage Guards inside the pipeline recover their own panics, but
// nothing run on a pool worker may ever escape and kill the process.
func runIsolated[S any](ctx context.Context, seed int64, inj *faultinject.Injector, tel *telemetry.Collector, run func(ctx context.Context, seed int64, inj *faultinject.Injector, tel *telemetry.Collector) Attempt[S]) (a Attempt[S]) {
	defer func() {
		if v := recover(); v != nil {
			a = Attempt[S]{Err: &PanicError{Stage: "start", Level: -1, Value: v, Stack: debug.Stack()}}
		}
	}()
	return run(ctx, seed, inj, tel)
}
