package core

import (
	"mlpart/internal/coarsen"
	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/intrapar"
)

// pipelineWS bundles the scratch workspaces of one pipeline attempt:
// the matching sweep's score buffers, the induce accumulators and the
// refinement engine's arrays/buckets. Every entry point creates one
// per call (and the multi-start supervisor therefore gets one per
// attempt goroutine), so hierarchy levels — and, in V-cycles, whole
// cycles — reuse scratch memory while nothing is ever shared across
// goroutines or retained in package state.
//
// Partition buffers deliberately do NOT live here: projected solutions
// escape to callers (VCycleCtx keeps the best candidate across
// cycles), so the uncoarsening loops use per-call alternating buffers
// instead.
type pipelineWS struct {
	match  coarsen.Workspace
	induce hypergraph.InduceWorkspace
	refine fm.Workspace

	// pool is the attempt's intra-parallelism worker pool, nil for the
	// serial pipeline. Created once per attempt (goroutines spin up
	// once, not per level) and closed when the attempt returns.
	pool *intrapar.Pool
}

// startPool arms the attempt's worker pool for IntraParallelism intra
// (0 keeps the serial pipeline: a nil pool). The returned cleanup is
// always safe to defer. Both branches reset ws.pool so a reused
// bundle (Scratch) never hands a closed — or stale — pool to a later
// attempt with a different IntraParallelism.
func (ws *pipelineWS) startPool(intra int) func() {
	if intra <= 0 {
		ws.pool = nil
		return func() {}
	}
	ws.pool = intrapar.New(intra)
	return func() {
		ws.pool.Close()
		ws.pool = nil
	}
}

// Scratch is a reusable pipeline workspace bundle for sequential
// batch execution. A caller that runs many small attempts
// back-to-back on one goroutine (mlpartd's micro-batcher) threads one
// Scratch through Config.Scratch / QuadConfig.Scratch so successive
// attempts reuse the same match/induce/refine buffers instead of
// growing a fresh set per job — the per-job setup cost is amortized
// across the batch.
//
// Contract: a Scratch is single-goroutine. At most one attempt may
// use it at a time, so callers must force sequential execution
// (Parallelism 1) for every run that carries it. Reuse is
// bit-identity preserving: every workspace in the bundle is fully
// reset at the start of each use, so a result computed on a reused
// Scratch is byte-identical to one computed on a fresh bundle — the
// same contract the per-attempt workspace reuse across hierarchy
// levels already relies on.
type Scratch struct {
	ws pipelineWS
}

// NewScratch returns an empty reusable workspace bundle.
func NewScratch() *Scratch { return &Scratch{} }

// attemptWS returns the workspace bundle one attempt should use: the
// shared bundle when a Scratch is configured, a fresh per-call bundle
// otherwise (nil receiver = the default per-attempt behavior).
func (s *Scratch) attemptWS() *pipelineWS {
	if s == nil {
		return &pipelineWS{}
	}
	return &s.ws
}

// projectionBuffers returns the two pre-sized partition buffers the
// uncoarsening sweep alternates between; numCells is the finest
// (largest) level, so no projection reallocates.
func projectionBuffers(numCells, k int) (*hypergraph.Partition, *hypergraph.Partition) {
	a := &hypergraph.Partition{Part: make([]int32, 0, numCells), K: k}
	b := &hypergraph.Partition{Part: make([]int32, 0, numCells), K: k}
	return a, b
}

// copyInto copies src into dst, reusing dst's backing array when large
// enough — used to move the coarsest solution into a pre-sized
// projection buffer before the uncoarsening sweep.
func copyInto(dst, src *hypergraph.Partition) {
	if cap(dst.Part) < len(src.Part) {
		dst.Part = make([]int32, len(src.Part))
	}
	dst.Part = dst.Part[:len(src.Part)]
	copy(dst.Part, src.Part)
	dst.K = src.K
}
