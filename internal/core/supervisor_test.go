package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"mlpart/internal/faultinject"
	"mlpart/internal/telemetry"
)

func TestDeriveSeedIdentityAtOrigin(t *testing.T) {
	// Start 0 / retry 0 must return the base seed unchanged so a
	// single-start run stays bit-identical to the pre-supervisor code.
	for _, base := range []int64{0, 1, -7, 1997, 1 << 40} {
		if got := DeriveSeed(base, 0, 0); got != base {
			t.Fatalf("DeriveSeed(%d,0,0) = %d", base, got)
		}
	}
	// Distinct (start, retry) pairs must get distinct streams.
	seen := map[int64]string{}
	for s := 0; s < 8; s++ {
		for r := 0; r < 3; r++ {
			d := DeriveSeed(1997, s, r)
			key := string(rune('a'+s)) + string(rune('0'+r))
			if prev, dup := seen[d]; dup {
				t.Fatalf("seed collision between %s and %s", prev, key)
			}
			seen[d] = key
		}
	}
}

func TestRunStartsReductionDeterministic(t *testing.T) {
	// Synthetic run: cost is a pure function of the derived seed, so
	// every Parallelism value must reduce to the same winner.
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int64] {
		cost := int(uint64(seed) % 1000)
		return Attempt[int64]{Sol: seed, Cost: cost, HasSol: true}
	}
	type outcome struct {
		sol  int64
		best int
	}
	var ref outcome
	for i, par := range []int{1, 2, 4, 16} {
		sol, best, reports, err := RunStarts(context.Background(),
			SuperOptions{Starts: 16, Parallelism: par, Seed: 42}, run)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 16 {
			t.Fatalf("par=%d: %d reports", par, len(reports))
		}
		got := outcome{sol, best}
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("par=%d: %+v != %+v", par, got, ref)
		}
	}
}

func TestRunStartsTieBreaksToLowestStart(t *testing.T) {
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[string] {
		return Attempt[string]{Sol: "x", Cost: 7, HasSol: true}
	}
	_, best, _, err := RunStarts(context.Background(),
		SuperOptions{Starts: 5, Parallelism: 4, Seed: 1}, run)
	if err != nil || best != 0 {
		t.Fatalf("best = %d, err = %v; want 0, nil", best, err)
	}
}

func TestRunStartsRecoveredPanicIsolated(t *testing.T) {
	// A panic escaping one start must not kill the others or surface
	// as the top-level error when a clean start exists.
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int] {
		if seed == DeriveSeed(9, 1, 0) {
			panic("boom")
		}
		return Attempt[int]{Sol: 1, Cost: 3, HasSol: true}
	}
	_, best, reports, err := RunStarts(context.Background(),
		SuperOptions{Starts: 3, Parallelism: 3, Seed: 9, MaxRetries: 0}, run)
	if err != nil {
		t.Fatalf("clean starts exist, got error %v", err)
	}
	if best != 0 {
		t.Fatalf("best = %d", best)
	}
	if reports[1].Outcome != OutcomeFailed {
		t.Fatalf("panicking start outcome %v, want %v", reports[1].Outcome, OutcomeFailed)
	}
	var perr *PanicError
	if !errors.As(reports[1].Err, &perr) || perr.Stage != "start" {
		t.Fatalf("want *PanicError{Stage:start}, got %v", reports[1].Err)
	}
	for _, s := range []int{0, 2} {
		if reports[s].Outcome != OutcomeOK {
			t.Fatalf("start %d outcome %v", s, reports[s].Outcome)
		}
	}
}

func TestRunStartsRecoveredSolutionKept(t *testing.T) {
	// A recovered panic WITH a feasible solution is kept (outcome
	// recovered, no retry spent); with no clean start anywhere, the
	// top-level error is the best start's recovered panic.
	perr := &PanicError{Stage: "refine", Level: 2, Value: "inv"}
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int] {
		return Attempt[int]{Sol: 5, Cost: 11, HasSol: true, Err: perr}
	}
	sol, best, reports, err := RunStarts(context.Background(),
		SuperOptions{Starts: 2, Parallelism: 1, Seed: 3, MaxRetries: 2}, run)
	if sol != 5 || best != 0 {
		t.Fatalf("sol %d best %d", sol, best)
	}
	if !errors.Is(err, perr) {
		t.Fatalf("top-level err %v, want the recovered panic", err)
	}
	for _, r := range reports {
		if r.Outcome != OutcomeRecovered || r.Attempts != 1 {
			t.Fatalf("report %+v", r)
		}
	}
}

func TestRunStartsRetryConsumesAttempts(t *testing.T) {
	var calls atomic.Int32
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int] {
		n := calls.Add(1)
		if n == 1 {
			return Attempt[int]{Err: errors.New("transient")}
		}
		return Attempt[int]{Sol: 1, Cost: 1, HasSol: true}
	}
	_, best, reports, err := RunStarts(context.Background(),
		SuperOptions{Starts: 1, MaxRetries: 1, Parallelism: 1}, run)
	if err != nil || best != 0 {
		t.Fatalf("best %d err %v", best, err)
	}
	if reports[0].Outcome != OutcomeRetried || reports[0].Attempts != 2 {
		t.Fatalf("report %+v", reports[0])
	}
}

func TestRunStartsNoRetryAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	run := func(rctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int] {
		calls.Add(1)
		cancel() // the caller goes away mid-attempt
		return Attempt[int]{Err: errors.New("transient")}
	}
	_, best, reports, err := RunStarts(ctx,
		SuperOptions{Starts: 3, MaxRetries: 5, Parallelism: 1}, run)
	if got := calls.Load(); got != 1 {
		t.Fatalf("run called %d times, want 1 (no retry, no later starts)", got)
	}
	if best != -1 || err == nil {
		t.Fatalf("best %d err %v", best, err)
	}
	if reports[0].Outcome != OutcomeCancelled {
		t.Fatalf("start 0 outcome %v", reports[0].Outcome)
	}
	for _, s := range []int{1, 2} {
		if reports[s].Outcome != OutcomeCancelled || reports[s].Attempts != 0 {
			t.Fatalf("start %d report %+v", s, reports[s])
		}
	}
}

func TestRunStartsAllFailedSurfacesFirstError(t *testing.T) {
	sentinel := errors.New("first failure")
	run := func(ctx context.Context, seed int64, inj *faultinject.Injector, _ *telemetry.Collector) Attempt[int] {
		if seed == DeriveSeed(5, 0, 0) {
			return Attempt[int]{Err: sentinel}
		}
		return Attempt[int]{Err: errors.New("other failure")}
	}
	_, best, _, err := RunStarts(context.Background(),
		SuperOptions{Starts: 3, Parallelism: 1, Seed: 5, MaxRetries: 0}, run)
	if best != -1 {
		t.Fatalf("best = %d", best)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want first failure in start order", err)
	}
}
