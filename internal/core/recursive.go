package core

import (
	"context"
	"fmt"
	"math/rand"

	"mlpart/internal/hypergraph"
)

// RecursiveBisect produces a k-way partition (k a power of two) by
// recursive ML bipartitioning: the netlist is bipartitioned, each
// side's induced subcircuit is bipartitioned again, and so on —
// GORDIAN's top-down strategy with the paper's engine. Nets crossing
// a subcircuit boundary are simply dropped within the recursion
// (no terminal propagation), which is exactly the weakness direct
// quadrisection avoids; the ablation-recursive experiment quantifies
// the difference.
func RecursiveBisect(h *hypergraph.Hypergraph, k int, cfg Config, rng *rand.Rand) (*hypergraph.Partition, error) {
	//mllint:ignore ctx-thread non-Ctx compatibility wrapper: rooting a fresh context is its documented contract
	return RecursiveBisectCtx(context.Background(), h, k, cfg, rng)
}

// RecursiveBisectCtx is RecursiveBisect with cooperative cancellation:
// the context threads into every subcircuit bipartitioning. Once it
// is done, each remaining bipartition degrades to its projected-and-
// rebalanced form (see BipartitionCtx), so the k-way result is always
// a complete, valid partition.
func RecursiveBisectCtx(ctx context.Context, h *hypergraph.Hypergraph, k int, cfg Config, rng *rand.Rand) (*hypergraph.Partition, error) {
	if k < 2 || k&(k-1) != 0 {
		return nil, fmt.Errorf("core: recursive bisection needs a power-of-two k, got %d", k)
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background() //mllint:ignore ctx-thread normalizing a nil ctx from the caller; there is no ambient deadline to discard
	}
	out := hypergraph.NewPartition(h.NumCells(), k)
	cells := make([]int32, h.NumCells())
	for v := range cells {
		cells[v] = int32(v)
	}
	if err := recurse(ctx, h, cells, 0, k, cfg, rng, out); err != nil {
		if _, ok := AsPanicError(err); ok {
			// Every subcircuit still produced a feasible bipartition
			// (degraded where needed), so out is complete; surface the
			// recovered panic alongside it.
			return out, err
		}
		return nil, err
	}
	return out, nil
}

// recurse bipartitions the subcircuit over the given cells and
// assigns blocks [base, base+width) to the result.
func recurse(ctx context.Context, h *hypergraph.Hypergraph, cells []int32, base, width int, cfg Config, rng *rand.Rand, out *hypergraph.Partition) error {
	if width == 1 || len(cells) == 0 {
		for _, v := range cells {
			out.Part[v] = int32(base)
		}
		return nil
	}
	if len(cells) == 1 {
		out.Part[cells[0]] = int32(base)
		return nil
	}
	// Build the induced subcircuit (crossing nets restricted to their
	// local pins; degenerate ones dropped by the builder).
	local := make(map[int32]int32, len(cells))
	for i, v := range cells {
		local[v] = int32(i)
	}
	b := hypergraph.NewBuilder(len(cells))
	for i, v := range cells {
		b.SetArea(i, h.Area(int(v)))
	}
	seen := make(map[int32]bool)
	pins := make([]int32, 0, 16)
	for _, v := range cells {
		for _, e := range h.Nets(int(v)) {
			if seen[e] {
				continue
			}
			seen[e] = true
			pins = pins[:0]
			for _, u := range h.Pins(int(e)) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				}
			}
			if len(pins) >= 2 {
				b.AddNet32(pins)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return err
	}
	p, _, err := BipartitionCtx(ctx, sub, cfg, rng)
	var deferred error
	if err != nil {
		if _, ok := AsPanicError(err); !ok || p == nil {
			return err
		}
		// Recovered panic with a feasible degraded partition: finish
		// the recursion and report the first such error at the end.
		deferred = err
	}
	var left, right []int32
	for i, v := range cells {
		if p.Part[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	if err := recurse(ctx, h, left, base, width/2, cfg, rng, out); err != nil {
		if _, ok := AsPanicError(err); !ok {
			return err
		}
		if deferred == nil {
			deferred = err
		}
	}
	if err := recurse(ctx, h, right, base+width/2, width/2, cfg, rng, out); err != nil {
		if _, ok := AsPanicError(err); !ok {
			return err
		}
		if deferred == nil {
			deferred = err
		}
	}
	return deferred
}
