package core

import (
	"context"
	"math/rand"

	"mlpart/internal/coarsen"
	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
)

// VCycle performs iterated multilevel refinement on an existing
// bipartition: the netlist is re-coarsened with *restricted* matching
// (only cell pairs in the same block may merge, so every coarse
// solution is exactly representable), the current solution is pushed
// to the coarsest level, and the uncoarsening sweep refines it at
// every level. Cycles repeat while they improve, up to maxCycles.
//
// This is the "V-cycle" of the later multilevel literature (hMETIS);
// the paper's §V idea of spending more effort at the top levels
// composes naturally with it. Returns the refined partition (the
// input is not modified) and the final cut.
func VCycle(h *hypergraph.Hypergraph, p *hypergraph.Partition, maxCycles int, cfg Config, rng *rand.Rand) (*hypergraph.Partition, int, error) {
	//mllint:ignore ctx-thread non-Ctx compatibility wrapper: rooting a fresh context is its documented contract
	return VCycleCtx(context.Background(), h, p, maxCycles, cfg, rng)
}

// VCycleCtx is VCycle with cooperative cancellation: the context is
// polled between cycles and threaded into each cycle's matching and
// refinement. Since every cycle starts from (a clone of) the incoming
// solution, cancellation simply stops iterating and returns the best
// solution seen — which is never worse than the input.
func VCycleCtx(ctx context.Context, h *hypergraph.Hypergraph, p *hypergraph.Partition, maxCycles int, cfg Config, rng *rand.Rand) (*hypergraph.Partition, int, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, 0, err
	}
	if ctx == nil {
		ctx = context.Background() //mllint:ignore ctx-thread normalizing a nil ctx from the caller; there is no ambient deadline to discard
	}
	cfg.Refine.Stop = mergeStop(cfg.Refine.Stop, ctx)
	if err := p.Validate(h.NumCells()); err != nil {
		return nil, 0, err
	}
	if maxCycles < 1 {
		maxCycles = 1
	}
	// One workspace bundle shared by every cycle: the restricted
	// hierarchies have the same shape, so the scratch arrays stabilize
	// after the first cycle. Projection buffers stay per-cycle locals —
	// the winning candidate escapes into best below.
	ws := &pipelineWS{}
	defer ws.startPool(cfg.IntraParallelism)()
	cfg.Refine.WS = &ws.refine
	cfg.Refine.Par = ws.pool
	best := p.Clone()
	bestCut := best.WeightedCut(h)
	for cycle := 0; cycle < maxCycles; cycle++ {
		if ctx.Err() != nil {
			break
		}
		cand, err := oneVCycle(ctx, h, best, cfg, rng, ws)
		if err != nil {
			return nil, 0, err
		}
		if cut := cand.WeightedCut(h); cut < bestCut {
			best, bestCut = cand, cut
		} else {
			break
		}
	}
	return best, bestCut, nil
}

// oneVCycle rebuilds a restricted hierarchy around p and refines.
func oneVCycle(ctx context.Context, h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand, ws *pipelineWS) (*hypergraph.Partition, error) {
	type lv struct {
		h *hypergraph.Hypergraph
		c *hypergraph.Clustering
	}
	levels := []lv{{h: h}}
	parts := []*hypergraph.Partition{p.Clone()}
	cur := h
	curP := p
	for cur.NumCells() > cfg.Threshold && len(levels) <= cfg.MaxLevels {
		if ctx.Err() != nil {
			break
		}
		mc := coarsen.Config{Ratio: cfg.Ratio, SameBlockOnly: curP, Stop: mergeStop(nil, ctx), WS: &ws.match, Par: ws.pool}
		c, err := coarsen.Match(cur, mc, rng)
		if err != nil {
			return nil, err
		}
		var coarse *hypergraph.Hypergraph
		if cfg.MergeParallelNets {
			coarse, err = hypergraph.InduceMergedWS(cur, c, &ws.induce)
		} else {
			coarse, err = hypergraph.InduceWSPar(cur, c, &ws.induce, ws.pool)
		}
		if err != nil {
			return nil, err
		}
		if coarse.NumCells() >= cur.NumCells() {
			break
		}
		// Push the partition up: every cluster is block-pure by
		// construction, so take any member's block.
		cp := hypergraph.NewPartition(coarse.NumCells(), curP.K)
		for v, k := range c.CellToCluster {
			cp.Part[k] = curP.Part[v]
		}
		levels[len(levels)-1].c = c
		levels = append(levels, lv{h: coarse})
		parts = append(parts, cp)
		cur, curP = coarse, cp
	}
	// Refine from the coarsest down, seeding each level with the
	// pushed-up solution.
	sol := parts[len(parts)-1]
	var err error
	if _, err = fm.Refine(levels[len(levels)-1].h, sol, cfg.Refine, rng); err != nil {
		return nil, err
	}
	if len(levels) > 1 {
		// Alternate two per-cycle buffers down the hierarchy; sol
		// escapes to the caller, so these cannot live in ws.
		buf, scratch := projectionBuffers(h.NumCells(), sol.K)
		copyInto(buf, sol)
		sol = buf
		for i := len(levels) - 2; i >= 0; i-- {
			if err = hypergraph.ProjectInto(levels[i].c, sol, scratch); err != nil {
				return nil, err
			}
			sol, scratch = scratch, sol
			if _, err = fm.RefineBalanced(levels[i].h, sol, cfg.Refine, rng); err != nil {
				return nil, err
			}
		}
	}
	return sol, nil
}
