package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered invariant panic from inside the pipeline
// (gain buckets, builders, refiners), converted at a stage boundary
// into an error that records where it fired. Callers receive it
// alongside the last good solution, so an internal bug degrades a run
// instead of crashing the process.
type PanicError struct {
	// Stage names the pipeline stage that panicked: "coarsen",
	// "coarsest-partition", "project", "rebalance", "refine", a
	// flat-engine name, or "start" for a panic that escaped a whole
	// supervised multi-start attempt.
	Stage string
	// Level is the hierarchy level at which the panic fired (0 = the
	// original netlist); -1 when the stage has no level.
	Level int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Level >= 0 {
		return fmt.Sprintf("core: internal panic in %s at level %d: %v", e.Stage, e.Level, e.Value)
	}
	return fmt.Sprintf("core: internal panic in %s: %v", e.Stage, e.Value)
}

// Guard runs fn, converting a panic into a *PanicError tagged with
// the stage and level. A nil return means fn completed (possibly with
// its own error).
func Guard(stage string, level int, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Stage: stage, Level: level, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// AsPanicError unwraps err to a *PanicError if one is in its chain.
func AsPanicError(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// mergeStop combines a user Stop hook with context cancellation into
// a single pass-boundary poll. The user hook is consulted first so
// its behaviour (including a deliberate panic in tests) is
// independent of the context state.
func mergeStop(prev func() bool, ctx context.Context) func() bool {
	//mllint:ignore ctx-thread comparison against the root context to skip a useless poll hook; nothing is created
	if ctx == nil || ctx == context.Background() {
		return prev
	}
	return func() bool {
		if prev != nil && prev() {
			return true
		}
		return ctx.Err() != nil
	}
}
