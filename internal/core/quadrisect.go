package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/audit"
	"mlpart/internal/coarsen"
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
	"mlpart/internal/telemetry"
)

// QuadConfig parameterizes multilevel k-way partitioning (§III.C,
// §IV.D). The paper's quadrisection experiments use ML_F-style
// refinement with R = 1.0, T = 100 and the sum-of-degrees gain.
type QuadConfig struct {
	// Threshold is the coarsening threshold T. Default 100.
	Threshold int
	// Ratio is the matching ratio R. Default 1.0.
	Ratio float64
	// Refine configures the Sanchis-style multi-way engine used at
	// every level. Refine.K defaults to 4 (quadrisection).
	Refine kway.Config
	// CoarsestStarts as in Config. Default 1.
	CoarsestStarts int
	// MaxLevels as in Config. Default 64.
	MaxLevels int
	// IntraParallelism sizes the intra-attempt worker pool used for
	// parallel match scoring and induce-CSR assembly during
	// coarsening, as in Config.IntraParallelism (0 = serial). The
	// k-way engine has no parallel path, so refinement is unaffected;
	// k-way results are bit-identical for every value.
	IntraParallelism int
	// Fixed marks pre-assigned cells of H_0 (e.g. I/O pads, §III.C);
	// they keep the block given in Preassign and never move. Optional.
	Fixed []bool
	// Preassign gives the block of each fixed cell (only entries
	// with Fixed[v] true are read). Required iff Fixed is non-nil.
	Preassign []int32
	// Audit enables per-level invariant checks, as in Config.Audit.
	Audit bool
	// Inject optionally arms deterministic fault injection for this
	// attempt (sites coarsen.match, kway.refine, core.project,
	// core.rebalance), as in Config.Inject.
	Inject *faultinject.Injector
	// Telemetry optionally collects per-level coarsening stats,
	// per-pass refinement stats, rebalance counters and stage
	// timings for this attempt, as in Config.Telemetry.
	Telemetry *telemetry.Collector
	// Scratch, when non-nil, makes the attempt reuse a caller-owned
	// workspace bundle, as in Config.Scratch (single-goroutine).
	Scratch *Scratch
}

// Normalize fills defaults and validates.
func (c QuadConfig) Normalize() (QuadConfig, error) {
	if c.Threshold == 0 {
		c.Threshold = 100
	}
	if c.Threshold < 2 {
		return c, fmt.Errorf("core: quad threshold %d < 2", c.Threshold)
	}
	if c.Ratio == 0 {
		c.Ratio = 1.0
	}
	if math.IsNaN(c.Ratio) || c.Ratio <= 0 || c.Ratio > 1 {
		return c, fmt.Errorf("core: matching ratio %v outside (0,1]", c.Ratio)
	}
	if c.CoarsestStarts == 0 {
		c.CoarsestStarts = 1
	}
	if c.CoarsestStarts < 1 {
		return c, fmt.Errorf("core: CoarsestStarts %d < 1", c.CoarsestStarts)
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 64
	}
	if c.IntraParallelism < 0 {
		return c, fmt.Errorf("core: IntraParallelism %d < 0", c.IntraParallelism)
	}
	if (c.Fixed == nil) != (c.Preassign == nil) {
		return c, fmt.Errorf("core: Fixed and Preassign must be set together")
	}
	var err error
	// kway.Config.Fixed is managed per level internally.
	if c.Refine.Fixed != nil {
		return c, fmt.Errorf("core: set QuadConfig.Fixed, not Refine.Fixed")
	}
	if c.Refine, err = c.Refine.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// QuadResult reports what a multilevel k-way run did.
type QuadResult struct {
	// CutNets is the number of nets spanning >1 block of the final
	// solution — the Table IX metric.
	CutNets int
	// SumDegrees is Σ_e (span−1) of the final solution.
	SumDegrees int
	// Levels, CoarsestCells, LevelCells as in Result.
	Levels        int
	CoarsestCells int
	LevelCells    []int
	// Interrupted reports that cancellation cut the run short; the
	// returned partition is still feasible.
	Interrupted bool
}

// Quadrisect runs the multilevel k-way algorithm: Match-based
// coarsening (fixed cells are never matched together with free
// cells across blocks — they simply coarsen like any cell, but their
// pre-assignment is honored by seeding and locking them at every
// level), k-way partitioning of the coarsest netlist, then projection
// with multi-way FM refinement per level.
func Quadrisect(h *hypergraph.Hypergraph, cfg QuadConfig, rng *rand.Rand) (*hypergraph.Partition, QuadResult, error) {
	//mllint:ignore ctx-thread non-Ctx compatibility wrapper: rooting a fresh context is its documented contract
	return QuadrisectCtx(context.Background(), h, cfg, rng)
}

// QuadrisectCtx is Quadrisect with cooperative cancellation and panic
// recovery, under the same contract as BipartitionCtx: once the
// context is done, at most one refinement pass of extra work happens,
// the remaining levels are projected and rebalanced without engine
// passes, and the returned partition is feasible with
// QuadResult.Interrupted set. Internal panics are recovered at stage
// boundaries and returned as a *PanicError with the best feasible
// partition.
func QuadrisectCtx(ctx context.Context, h *hypergraph.Hypergraph, cfg QuadConfig, rng *rand.Rand) (*hypergraph.Partition, QuadResult, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, QuadResult{}, err
	}
	if ctx == nil {
		ctx = context.Background() //mllint:ignore ctx-thread normalizing a nil ctx from the caller; there is no ambient deadline to discard
	}
	cfg.Refine.Stop = mergeStop(cfg.Refine.Stop, ctx)
	cfg.Refine.Inject = cfg.Inject
	cfg.Refine.Telemetry = cfg.Telemetry
	if cfg.Fixed != nil {
		if len(cfg.Fixed) != h.NumCells() || len(cfg.Preassign) != h.NumCells() {
			return nil, QuadResult{}, fmt.Errorf("core: Fixed/Preassign length mismatch with %d cells", h.NumCells())
		}
		for v, fx := range cfg.Fixed {
			if fx && (cfg.Preassign[v] < 0 || int(cfg.Preassign[v]) >= cfg.Refine.K) {
				return nil, QuadResult{}, fmt.Errorf("core: preassigned block %d of cell %d out of range", cfg.Preassign[v], v)
			}
		}
	}

	res := QuadResult{}
	// One workspace bundle per attempt (or the caller's shared Scratch
	// for batched runs); the k-way engine manages its own arrays, so
	// only the coarsening side is threaded here — the
	// intra-parallelism pool likewise accelerates coarsening only.
	ws := cfg.Scratch.attemptWS()
	defer ws.startPool(cfg.IntraParallelism)()
	cfg.Telemetry.RecordIntraWorkers(cfg.IntraParallelism)

	// Coarsening phase; track fixed flags and pre-assignments
	// through the hierarchy (a coarse cell is fixed to block b if any
	// member is; conflicting pre-assignments pin the first seen).
	type qlevel struct {
		h     *hypergraph.Hypergraph
		c     *hypergraph.Clustering
		fixed []bool
		pre   []int32
	}
	levels := []qlevel{{h: h, fixed: cfg.Fixed, pre: cfg.Preassign}}
	res.LevelCells = append(res.LevelCells, h.NumCells())
	// Fixed cells are never matched, so they can't shrink away; the
	// coarsening threshold must therefore count movable cells only,
	// or a terminal-heavy instance would coarsen its movable cells
	// into a handful of giant clusters.
	movable := func(l *qlevel) int {
		if l.fixed == nil {
			return l.h.NumCells()
		}
		n := 0
		for _, fx := range l.fixed {
			if !fx {
				n++
			}
		}
		return n
	}
	var firstErr *PanicError
	cur := &levels[0]
	for movable(cur) > cfg.Threshold && len(levels) <= cfg.MaxLevels {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		// Fixed cells are excluded from matching (always singleton
		// clusters), so two pads pre-assigned to different blocks can
		// never be merged.
		matchCfg := coarsen.Config{Ratio: cfg.Ratio, Exclude: cur.fixed, Stop: mergeStop(nil, ctx), Inject: cfg.Inject, Telemetry: cfg.Telemetry, WS: &ws.match, Par: ws.pool}
		var coarseH *hypergraph.Hypergraph
		var c *hypergraph.Clustering
		cfg.Telemetry.SetLevel(len(levels) - 1)
		timer := cfg.Telemetry.StartTimer(telemetry.StageCoarsen)
		gerr := Guard("coarsen", len(levels)-1, func() error {
			var err error
			c, err = coarsen.Match(cur.h, matchCfg, rng)
			if err != nil {
				return err
			}
			coarseH, err = hypergraph.InduceWSPar(cur.h, c, &ws.induce, ws.pool)
			return err
		})
		timer.Stop()
		if gerr != nil {
			pe, ok := AsPanicError(gerr)
			if !ok {
				return nil, QuadResult{}, gerr
			}
			// Keep the valid hierarchy prefix and continue the run.
			firstErr = pe
			break
		}
		if coarseH.NumCells() >= cur.h.NumCells() {
			break
		}
		if cfg.Audit {
			if err := audit.CheckClustering(cur.h, c, coarseH); err != nil {
				return nil, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
			}
			if err := audit.CheckHypergraph(coarseH); err != nil {
				return nil, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
			}
		}
		cfg.Telemetry.RecordLevel(coarseH.NumCells(), coarseH.NumNets(), coarseH.NumPins(), coarseH.MaxCellArea())
		cur.c = c
		next := qlevel{h: coarseH}
		if cur.fixed != nil {
			next.fixed = make([]bool, coarseH.NumCells())
			next.pre = make([]int32, coarseH.NumCells())
			for i := range next.pre {
				next.pre[i] = -1
			}
			for v, fx := range cur.fixed {
				if !fx {
					continue
				}
				k := c.CellToCluster[v]
				next.fixed[k] = true
				next.pre[k] = cur.pre[v]
			}
		}
		levels = append(levels, next)
		res.LevelCells = append(res.LevelCells, coarseH.NumCells())
		cur = &levels[len(levels)-1]
	}
	res.Levels = len(levels) - 1
	res.CoarsestCells = cur.h.NumCells()
	if ws.pool != nil {
		cfg.Telemetry.RecordParRegions(telemetry.StageCoarsen, ws.pool.Regions())
	}

	// Partition the coarsest netlist.
	refCfg := cfg.Refine
	top := levels[len(levels)-1]
	engineOK := true
	var best *hypergraph.Partition
	bestCost := 0
	cfg.Telemetry.SetLevel(len(levels) - 1)
	rtimer := cfg.Telemetry.StartTimer(telemetry.StageRefine)
	gerr := Guard("coarsest-partition", len(levels)-1, func() error {
		for s := 0; s < cfg.CoarsestStarts; s++ {
			var p *hypergraph.Partition
			var r kway.Result
			var err error
			if top.fixed != nil {
				init := seededRandomPartition(top.h, refCfg.K, top.fixed, top.pre, rng)
				c2 := refCfg
				c2.Fixed = top.fixed
				p, r, err = kway.Partition(top.h, init, c2, rng)
			} else {
				p, r, err = kway.Partition(top.h, nil, refCfg, rng)
			}
			if err != nil {
				return err
			}
			cost := r.SumDegrees
			if refCfg.Objective == kway.NetCut {
				cost = r.CutNets
			}
			if best == nil || cost < bestCost {
				best, bestCost = p, cost
			}
			if r.Interrupted {
				res.Interrupted = true
				break
			}
		}
		return nil
	})
	rtimer.Stop()
	if gerr != nil {
		pe, ok := AsPanicError(gerr)
		if !ok {
			return nil, res, gerr
		}
		if firstErr == nil {
			firstErr = pe
		}
		engineOK = false
	}
	if best == nil {
		// Degraded fallback after a panic before any start finished.
		if top.fixed != nil {
			best = seededRandomPartition(top.h, refCfg.K, top.fixed, top.pre, rng)
		} else {
			best = hypergraph.RandomPartition(top.h, refCfg.K, refCfg.Tolerance, rng)
		}
	}
	p := best
	if cfg.Audit {
		if err := auditQuadLevel(top.h, p, refCfg, top.fixed != nil); err != nil {
			return p, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
		}
	}

	// Uncoarsening with per-level refinement. After a recovered engine
	// panic (or a synthetic cancellation) the remaining levels are
	// projected and rebalanced without engine passes.
	cancelled := false
	// Alternate two pre-sized buffers down the hierarchy instead of
	// allocating a partition per level; p escapes to the caller, so the
	// buffers are per-call locals, not workspace members.
	var scratch *hypergraph.Partition
	if len(levels) > 1 {
		var buf *hypergraph.Partition
		buf, scratch = projectionBuffers(h.NumCells(), p.K)
		copyInto(buf, p)
		p = buf
	}
	for i := len(levels) - 2; i >= 0; i-- {
		var act faultinject.Action
		cfg.Telemetry.SetLevel(i)
		ptimer := cfg.Telemetry.StartTimer(telemetry.StageProject)
		gerr := Guard("project", i, func() error {
			if cfg.Inject != nil {
				act = cfg.Inject.Fire(faultinject.SiteCoreProject)
			}
			if err := hypergraph.ProjectInto(levels[i].c, p, scratch); err != nil {
				return err
			}
			p, scratch = scratch, p
			return nil
		})
		ptimer.Stop()
		if gerr != nil {
			// Unrecoverable for this attempt: no fine-level solution
			// exists yet. The supervisor's retry path handles it.
			return nil, res, gerr
		}
		lv := levels[i]
		switch act {
		case faultinject.ActCancel:
			cancelled = true
			res.Interrupted = true
		case faultinject.ActCorrupt:
			corruptKway(p, lv.fixed, refCfg.K, rng)
		}
		if cfg.Inject != nil {
			gerr := Guard("rebalance", i, func() error {
				switch cfg.Inject.Fire(faultinject.SiteCoreRebalance) {
				case faultinject.ActCancel:
					cancelled = true
					res.Interrupted = true
				case faultinject.ActCorrupt:
					corruptKway(p, lv.fixed, refCfg.K, rng)
				}
				return nil
			})
			if gerr != nil {
				// Only a panic surfaces here; drop to the degraded
				// project-and-rebalance path below.
				pe, _ := AsPanicError(gerr)
				if firstErr == nil {
					firstErr = pe
				}
				engineOK = false
			}
		}
		c2 := refCfg
		c2.Fixed = lv.fixed
		if lv.fixed != nil {
			// Defensive re-pin: projection preserves pre-assignments
			// by construction (fixed cells are singleton clusters),
			// but enforce the invariant explicitly.
			for v, fx := range lv.fixed {
				if fx {
					p.Part[v] = lv.pre[v]
				}
			}
		}
		if lv.fixed == nil {
			bound := hypergraph.Balance(lv.h, refCfg.K, refCfg.Tolerance)
			if !p.IsBalanced(lv.h, bound) {
				btimer := cfg.Telemetry.StartTimer(telemetry.StageRebalance)
				moved := p.Rebalance(lv.h, bound, rng)
				btimer.Stop()
				cfg.Telemetry.RecordRebalance(moved)
			}
		}
		if engineOK && !cancelled {
			rtimer := cfg.Telemetry.StartTimer(telemetry.StageRefine)
			gerr := Guard("refine", i, func() error {
				r, err := kway.Refine(lv.h, p, c2, rng)
				if r.Interrupted {
					res.Interrupted = true
				}
				return err
			})
			rtimer.Stop()
			if gerr != nil {
				pe, ok := AsPanicError(gerr)
				if !ok {
					return nil, res, gerr
				}
				if firstErr == nil {
					firstErr = pe
				}
				engineOK = false
				// kway.Refine mutates p in place; a mid-pass panic can
				// leave it unbalanced, so restore the bound before
				// projecting further (fixed cells keep their pins).
				if lv.fixed == nil {
					bound := hypergraph.Balance(lv.h, refCfg.K, refCfg.Tolerance)
					if !p.IsBalanced(lv.h, bound) {
						moved := p.Rebalance(lv.h, bound, rng)
						cfg.Telemetry.RecordRebalance(moved)
					}
				}
			}
		}
		if cfg.Audit {
			if err := auditQuadLevel(lv.h, p, refCfg, lv.fixed != nil); err != nil {
				return p, res, fmt.Errorf("core: level %d: %w", i, err)
			}
		}
	}
	res.CutNets = p.Cut(h)
	res.SumDegrees = p.SumOfDegrees(h)
	if firstErr != nil {
		return p, res, firstErr
	}
	return p, res, nil
}

// auditQuadLevel checks a k-way level solution: validity, expected K,
// and (when no cells are fixed — pre-assignments can make the §III.B
// bound unsatisfiable) the balance bound.
func auditQuadLevel(h *hypergraph.Hypergraph, p *hypergraph.Partition, refCfg kway.Config, hasFixed bool) error {
	chk := audit.NoChecks()
	chk.K = refCfg.K
	if !hasFixed {
		bound := hypergraph.Balance(h, refCfg.K, refCfg.Tolerance)
		chk.Bound = &bound
	}
	return audit.CheckPartition(h, p, chk)
}

// corruptKway moves one random non-fixed cell to the next block: the
// partition stays valid (all blocks in range) but may go unbalanced;
// the per-level rebalance absorbs it, or the audit flags it.
func corruptKway(p *hypergraph.Partition, fixed []bool, k int, rng *rand.Rand) {
	n := len(p.Part)
	if n == 0 {
		return
	}
	v := rng.Intn(n)
	for tries := 0; tries < n; tries++ {
		if fixed == nil || !fixed[v] {
			p.Part[v] = (p.Part[v] + 1) % int32(k)
			return
		}
		v = (v + 1) % n
	}
}

// seededRandomPartition builds a random balanced k-way partition that
// honors pre-assignments: fixed cells take their block, free cells
// fill greedily in random order.
func seededRandomPartition(h *hypergraph.Hypergraph, k int, fixed []bool, pre []int32, rng *rand.Rand) *hypergraph.Partition {
	p := hypergraph.NewPartition(h.NumCells(), k)
	areas := make([]int64, k)
	for v := 0; v < h.NumCells(); v++ {
		if fixed[v] {
			p.Part[v] = pre[v]
			areas[pre[v]] += h.Area(v)
		}
	}
	perm := rng.Perm(h.NumCells())
	for _, v := range perm {
		if fixed[v] {
			continue
		}
		bestB := 0
		for b := 1; b < k; b++ {
			if areas[b] < areas[bestB] {
				bestB = b
			}
		}
		p.Part[v] = int32(bestB)
		areas[bestB] += h.Area(v)
	}
	return p
}
