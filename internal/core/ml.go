// Package core implements ML, the multilevel circuit partitioning
// algorithm of Alpert, Huang and Kahng (DAC 1997, Fig. 2): the
// netlist is recursively coarsened with the Match algorithm while it
// has more than T modules, the coarsest netlist is partitioned, and
// the solution is projected back level by level with FM/CLIP
// refinement at every level.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/audit"
	"mlpart/internal/coarsen"
	"mlpart/internal/faultinject"
	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/telemetry"
)

// Config parameterizes the ML algorithm.
type Config struct {
	// Threshold is the coarsening threshold T: coarsening proceeds
	// while |V_i| > T. Default 35 (the paper's bipartitioning
	// experiments; quadrisection uses T = 100).
	Threshold int
	// Ratio is the matching ratio R passed to Match. Default 1.0;
	// the paper's best bipartitioning results use R = 0.5.
	Ratio float64
	// Refine configures the FMPartition engine used at every level
	// (engine FM gives ML_F, engine CLIP gives ML_C).
	Refine fm.Config
	// CoarsestStarts > 1 partitions the coarsest netlist that many
	// times from independent random starts and keeps the best (§V
	// future work: spend more CPU at the top levels). Default 1.
	CoarsestStarts int
	// MaxLevels caps the hierarchy depth as a safety valve against
	// degenerate instances where Match cannot shrink the netlist.
	// 0 means a generous default of 64.
	MaxLevels int
	// IntraParallelism sizes the intra-attempt worker pool used for
	// parallel match scoring, parallel induce-CSR assembly, and the
	// sub-round-synchronous FM/CLIP engine. 0 (the default) keeps the
	// exact legacy serial pipeline. Any value >= 1 switches refinement
	// to the sub-round engine — a deterministic algorithm whose cuts
	// can differ from the serial engine's but are bit-identical across
	// all pool sizes, so results depend only on 0-vs->=1, never on the
	// worker count. Negative values are rejected.
	IntraParallelism int
	// MergeParallelNets merges identical coarse nets into single
	// weighted nets during coarsening (InduceMerged). The weighted
	// cut is provably unchanged, but the coarse netlists shrink,
	// which speeds refinement — the hMETIS-era optimization that the
	// paper's Definition 1 forgoes (ablation-mergenets measures it).
	MergeParallelNets bool
	// Audit enables from-scratch invariant checks (package audit) at
	// every level transition: clustering well-formedness and area
	// conservation after each coarsening step, and partition validity,
	// balance, and incremental-vs-recomputed cut agreement after each
	// refinement. O(pins) per transition; off by default.
	Audit bool
	// Inject optionally arms deterministic fault injection for this
	// attempt (sites coarsen.match, fm.pass, core.project,
	// core.rebalance). The injector is propagated into the coarsening
	// and refinement configs; nil costs one pointer check per site.
	Inject *faultinject.Injector
	// Telemetry optionally collects per-level coarsening stats,
	// per-pass refinement stats, rebalance counters and stage
	// timings for this attempt. It is propagated into the coarsening
	// and refinement configs; nil costs one pointer check per site.
	Telemetry *telemetry.Collector
	// Scratch, when non-nil, makes the attempt reuse a caller-owned
	// workspace bundle instead of creating a fresh one — see Scratch
	// for the single-goroutine contract. Nil keeps the default
	// bundle-per-attempt behavior.
	Scratch *Scratch
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.Threshold == 0 {
		c.Threshold = 35
	}
	if c.Threshold < 2 {
		return c, fmt.Errorf("core: threshold %d < 2", c.Threshold)
	}
	if c.Ratio == 0 {
		c.Ratio = 1.0
	}
	if math.IsNaN(c.Ratio) || c.Ratio <= 0 || c.Ratio > 1 {
		return c, fmt.Errorf("core: matching ratio %v outside (0,1]", c.Ratio)
	}
	if c.CoarsestStarts == 0 {
		c.CoarsestStarts = 1
	}
	if c.CoarsestStarts < 1 {
		return c, fmt.Errorf("core: CoarsestStarts %d < 1", c.CoarsestStarts)
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 64
	}
	if c.MaxLevels < 1 {
		return c, fmt.Errorf("core: MaxLevels %d < 1", c.MaxLevels)
	}
	if c.IntraParallelism < 0 {
		return c, fmt.Errorf("core: IntraParallelism %d < 0", c.IntraParallelism)
	}
	var err error
	if c.Refine, err = c.Refine.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// Result reports what a multilevel run did.
type Result struct {
	// Cut of the final bipartitioning of H_0 (all nets counted).
	Cut int
	// Levels is m, the number of coarsening levels used.
	Levels int
	// CoarsestCells is |V_m|.
	CoarsestCells int
	// LevelCells records |V_i| for i = 0..m.
	LevelCells []int
	// RefineResults holds the per-level refinement summaries, index
	// 0 = coarsest ... last = H_0.
	RefineResults []fm.Result
	// Interrupted reports that cancellation (context or a Stop hook)
	// cut the run short. The returned partition is still feasible: the
	// remaining levels were projected and rebalanced without engine
	// passes.
	Interrupted bool
}

// level is one rung of the hierarchy: the hypergraph plus the
// clustering that produced the *next* (coarser) hypergraph.
type level struct {
	h *hypergraph.Hypergraph
	c *hypergraph.Clustering // nil at the coarsest level
}

// Bipartition runs the ML algorithm of Fig. 2 on h and returns the
// final bipartitioning P_0 = {X_0, Y_0}.
func Bipartition(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	//mllint:ignore ctx-thread non-Ctx compatibility wrapper: rooting a fresh context is its documented contract
	return BipartitionCtx(context.Background(), h, cfg, rng)
}

// BipartitionCtx is Bipartition with cooperative cancellation. The
// context is polled at level transitions and at FM pass boundaries;
// once it is done, at most one FM pass of extra work happens before
// the run winds down: the current solution is projected to H_0 and
// rebalanced (no engine passes), so the returned partition is always
// feasible, with Result.Interrupted set. Cancellation is not an
// error.
//
// Internal invariant panics at any stage are recovered at the stage
// boundary and returned as a *PanicError together with the best
// feasible partition assembled from the work that completed.
func BipartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	if ctx == nil {
		ctx = context.Background() //mllint:ignore ctx-thread normalizing a nil ctx from the caller; there is no ambient deadline to discard
	}
	cfg.Refine.Stop = mergeStop(cfg.Refine.Stop, ctx)
	cfg.Refine.Inject = cfg.Inject
	cfg.Refine.Telemetry = cfg.Telemetry
	// One workspace bundle per attempt (or the caller's shared Scratch
	// for batched runs): every level of the run reuses the same scratch
	// memory, single-goroutine by construction. The intra-parallelism
	// pool lives exactly as long as the attempt.
	ws := cfg.Scratch.attemptWS()
	defer ws.startPool(cfg.IntraParallelism)()
	cfg.Refine.WS = &ws.refine
	cfg.Refine.Par = ws.pool
	cfg.Telemetry.RecordIntraWorkers(cfg.IntraParallelism)
	var coarsenRegions int64
	if ws.pool != nil {
		defer func() {
			// Every region dispatched after the coarsening phase belongs
			// to refinement (match/induce run only inside buildHierarchy).
			cfg.Telemetry.RecordParRegions(telemetry.StageRefine, ws.pool.Regions()-coarsenRegions)
		}()
	}

	levels, res, err := buildHierarchy(ctx, h, cfg, rng, ws)
	if ws.pool != nil {
		coarsenRegions = ws.pool.Regions()
		cfg.Telemetry.RecordParRegions(telemetry.StageCoarsen, coarsenRegions)
	}
	var firstErr *PanicError
	if err != nil {
		pe, ok := AsPanicError(err)
		if !ok {
			return nil, res, err
		}
		// A coarsening panic leaves a valid hierarchy prefix; continue
		// the run on it and report the panic at the end.
		firstErr = pe
	}

	// Step 6: partition the coarsest netlist from a random start.
	coarsest := levels[len(levels)-1].h
	var p *hypergraph.Partition
	var rres fm.Result
	engineOK := true
	cfg.Telemetry.SetLevel(len(levels) - 1)
	timer := cfg.Telemetry.StartTimer(telemetry.StageRefine)
	gerr := Guard("coarsest-partition", len(levels)-1, func() error {
		var err error
		p, rres, err = partitionCoarsest(coarsest, cfg, rng)
		return err
	})
	timer.Stop()
	if gerr != nil {
		pe, ok := AsPanicError(gerr)
		if !ok {
			return nil, res, gerr
		}
		if firstErr == nil {
			firstErr = pe
		}
		// Degraded fallback: a random balanced partition of the
		// coarsest netlist, refined by projection/rebalance only.
		p = hypergraph.RandomPartition(coarsest, 2, cfg.Refine.Tolerance, rng)
		rres = fm.Result{Cut: p.WeightedCut(coarsest), InitialCut: p.WeightedCut(coarsest), ActiveCut: -1}
		engineOK = false
	}
	if rres.Interrupted {
		res.Interrupted = true
	}
	res.RefineResults = append(res.RefineResults, rres)
	if cfg.Audit {
		if err := auditRefined(coarsest, p, cfg, rres, engineOK); err != nil {
			return p, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
		}
	}

	// Steps 7–9: project and refine down to H_0. After a recovered
	// engine panic (or a synthetic cancellation) the remaining levels
	// are projected and rebalanced without engine passes (the engine
	// state is no longer trusted).
	cancelled := false
	if len(levels) > 1 {
		// Move the coarsest solution into a pre-sized buffer; the
		// sweep then alternates two buffers via ProjectInto instead of
		// allocating a partition per level.
		buf, scratch := projectionBuffers(h.NumCells(), 2)
		copyInto(buf, p)
		p = buf
		for i := len(levels) - 2; i >= 0; i-- {
			var act faultinject.Action
			cfg.Telemetry.SetLevel(i)
			ptimer := cfg.Telemetry.StartTimer(telemetry.StageProject)
			gerr := Guard("project", i, func() error {
				if cfg.Inject != nil {
					act = cfg.Inject.Fire(faultinject.SiteCoreProject)
				}
				if err := hypergraph.ProjectInto(levels[i].c, p, scratch); err != nil {
					return err
				}
				p, scratch = scratch, p
				return nil
			})
			ptimer.Stop()
			if gerr != nil {
				// A projection failure (or an injected panic before it) is
				// unrecoverable for this attempt: no fine-level solution
				// exists yet. The supervisor's retry path handles it.
				return nil, res, gerr
			}
			fineH := levels[i].h
			switch act {
			case faultinject.ActCancel:
				// Synthetic cancellation: degrade exactly like a real one.
				cancelled = true
				res.Interrupted = true
			case faultinject.ActCorrupt:
				// Perturb the projected solution; it stays valid, and the
				// rebalance/refinement below absorbs the damage.
				p.Part[rng.Intn(len(p.Part))] ^= 1
			}
			if cfg.Inject != nil {
				gerr := Guard("rebalance", i, func() error {
					switch cfg.Inject.Fire(faultinject.SiteCoreRebalance) {
					case faultinject.ActCancel:
						cancelled = true
						res.Interrupted = true
					case faultinject.ActCorrupt:
						p.Part[rng.Intn(len(p.Part))] ^= 1
					}
					return nil
				})
				if gerr != nil {
					// Only a panic can surface here; degrade to the
					// project-and-rebalance path, which keeps feasibility.
					pe, _ := AsPanicError(gerr)
					if firstErr == nil {
						firstErr = pe
					}
					engineOK = false
				}
			}
			engineRan := false
			if engineOK && !cancelled {
				// The projected solution may violate the balance bound for
				// H_i (A(v*) can decrease during uncoarsening, §III.B);
				// RefineBalanced rebalances before refining, in place — the
				// Partition-style clone would defeat the buffer reuse. A
				// recovered mid-refine panic leaves p partially refined;
				// it stays a valid bipartition and the degraded path below
				// restores the balance bound.
				rtimer := cfg.Telemetry.StartTimer(telemetry.StageRefine)
				gerr := Guard("refine", i, func() error {
					var err error
					rres, err = fm.RefineBalanced(fineH, p, cfg.Refine, rng)
					return err
				})
				rtimer.Stop()
				if gerr != nil {
					pe, ok := AsPanicError(gerr)
					if !ok {
						return nil, res, gerr
					}
					if firstErr == nil {
						firstErr = pe
					}
					engineOK = false
				} else {
					engineRan = true
					if rres.Interrupted {
						res.Interrupted = true
					}
					res.RefineResults = append(res.RefineResults, rres)
				}
			}
			if !engineRan {
				bound := hypergraph.Balance(fineH, 2, cfg.Refine.Tolerance)
				if !p.IsBalanced(fineH, bound) {
					btimer := cfg.Telemetry.StartTimer(telemetry.StageRebalance)
					moved := p.Rebalance(fineH, bound, rng)
					btimer.Stop()
					cfg.Telemetry.RecordRebalance(moved)
				}
				rres = fm.Result{Cut: p.WeightedCut(fineH), InitialCut: p.WeightedCut(fineH), ActiveCut: -1}
			}
			if cfg.Audit {
				if err := auditRefined(fineH, p, cfg, rres, engineRan); err != nil {
					return p, res, fmt.Errorf("core: level %d: %w", i, err)
				}
			}
		}
	}
	res.Cut = p.Cut(h)
	if firstErr != nil {
		return p, res, firstErr
	}
	return p, res, nil
}

// auditRefined cross-checks a refined level solution: validity,
// balance, the reported cut against a from-scratch recount, and (when
// the engine ran and maintains one) the incremental active cut.
func auditRefined(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rres fm.Result, engineOK bool) error {
	bound := hypergraph.Balance(h, 2, cfg.Refine.Tolerance)
	chk := audit.NoChecks()
	chk.K = 2
	chk.Bound = &bound
	if engineOK {
		chk.WeightedCut = rres.Cut
		if rres.ActiveCut >= 0 {
			chk.ActiveCut = rres.ActiveCut
			chk.MaxNetSize = cfg.Refine.MaxNetSize
			if chk.MaxNetSize < 0 {
				chk.MaxNetSize = 0 // audit convention: <=0 means no cutoff
			}
		}
	}
	return audit.CheckPartition(h, p, chk)
}

// buildHierarchy performs the coarsening phase (Steps 1–5 of Fig. 2).
// Cancellation stops coarsening early (marking Result.Interrupted);
// a panic inside Match/Induce is recovered and returned as a
// *PanicError alongside the valid hierarchy prefix built so far.
func buildHierarchy(ctx context.Context, h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand, ws *pipelineWS) ([]level, Result, error) {
	res := Result{}
	matchCfg := coarsen.Config{Ratio: cfg.Ratio, Stop: mergeStop(nil, ctx), Inject: cfg.Inject, Telemetry: cfg.Telemetry, WS: &ws.match, Par: ws.pool}
	levels := []level{{h: h}}
	res.LevelCells = append(res.LevelCells, h.NumCells())
	cur := h
	for cur.NumCells() > cfg.Threshold && len(levels) <= cfg.MaxLevels {
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		var c *hypergraph.Clustering
		var coarseH *hypergraph.Hypergraph
		cfg.Telemetry.SetLevel(len(levels) - 1)
		timer := cfg.Telemetry.StartTimer(telemetry.StageCoarsen)
		gerr := Guard("coarsen", len(levels)-1, func() error {
			var err error
			c, err = coarsen.Match(cur, matchCfg, rng)
			if err != nil {
				return err
			}
			if cfg.MergeParallelNets {
				// Merged induction dedups identical coarse nets through a
				// global hash table, which does not range-decompose; it
				// stays serial under intra-parallelism.
				coarseH, err = hypergraph.InduceMergedWS(cur, c, &ws.induce)
			} else {
				coarseH, err = hypergraph.InduceWSPar(cur, c, &ws.induce, ws.pool)
			}
			return err
		})
		timer.Stop()
		if gerr != nil {
			res.Levels = len(levels) - 1
			res.CoarsestCells = cur.NumCells()
			return levels, res, gerr
		}
		if coarseH.NumCells() >= cur.NumCells() {
			// Match made no progress (e.g. netless instance with
			// R ≈ 0); stop coarsening rather than loop forever.
			break
		}
		if cfg.Audit {
			if err := audit.CheckClustering(cur, c, coarseH); err != nil {
				res.Levels = len(levels) - 1
				res.CoarsestCells = cur.NumCells()
				return levels, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
			}
			if err := audit.CheckHypergraph(coarseH); err != nil {
				res.Levels = len(levels) - 1
				res.CoarsestCells = cur.NumCells()
				return levels, res, fmt.Errorf("core: level %d: %w", len(levels)-1, err)
			}
		}
		cfg.Telemetry.RecordLevel(coarseH.NumCells(), coarseH.NumNets(), coarseH.NumPins(), coarseH.MaxCellArea())
		levels[len(levels)-1].c = c
		levels = append(levels, level{h: coarseH})
		res.LevelCells = append(res.LevelCells, coarseH.NumCells())
		cur = coarseH
	}
	res.Levels = len(levels) - 1
	res.CoarsestCells = cur.NumCells()
	return levels, res, nil
}

// partitionCoarsest runs FMPartition(H_m, NULL), optionally with
// multiple independent starts.
func partitionCoarsest(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, fm.Result, error) {
	var best *hypergraph.Partition
	var bestRes fm.Result
	for s := 0; s < cfg.CoarsestStarts; s++ {
		p, r, err := fm.Partition(h, nil, cfg.Refine, rng)
		if err != nil {
			return nil, fm.Result{}, err
		}
		if best == nil || r.Cut < bestRes.Cut {
			best, bestRes = p, r
		}
		if r.Interrupted {
			bestRes.Interrupted = true
			break
		}
	}
	return best, bestRes, nil
}

// Hierarchy exposes the coarsening phase on its own: it returns the
// sequence of hypergraphs H_0..H_m and the clusterings between them.
// Useful for inspecting coarsening behaviour (examples, tests,
// experiments on hierarchy depth).
func Hierarchy(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) ([]*hypergraph.Hypergraph, []*hypergraph.Clustering, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	ws := &pipelineWS{}
	defer ws.startPool(cfg.IntraParallelism)()
	//mllint:ignore ctx-thread Hierarchy is a non-cancellable inspection helper; coarsening alone is cheap
	levels, _, err := buildHierarchy(context.Background(), h, cfg, rng, ws)
	if err != nil {
		return nil, nil, err
	}
	hs := make([]*hypergraph.Hypergraph, len(levels))
	cs := make([]*hypergraph.Clustering, 0, len(levels)-1)
	for i, l := range levels {
		hs[i] = l.h
		if l.c != nil {
			cs = append(cs, l.c)
		}
	}
	return hs, cs, nil
}
