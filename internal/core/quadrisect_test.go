package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
	"mlpart/internal/kway"
)

func TestQuadrisectValidAndBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 150+rng.Intn(150), 250+rng.Intn(200), 5)
		p, res, err := Quadrisect(h, QuadConfig{}, rng)
		if err != nil {
			return false
		}
		if p.Validate(h.NumCells()) != nil || p.K != 4 {
			return false
		}
		if res.CutNets != p.Cut(h) || res.SumDegrees != p.SumOfDegrees(h) {
			return false
		}
		return p.IsBalanced(h, hypergraph.Balance(h, 4, 0.1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestQuadrisectFindsFourClusters(t *testing.T) {
	// 4 dense groups with a ring of 4 bridges; optimum 4-way cut = 4.
	rng := rand.New(rand.NewSource(2))
	b := hypergraph.NewBuilder(160)
	for g := 0; g < 4; g++ {
		base := g * 40
		for i := 0; i < 150; i++ {
			b.AddNet(base+rng.Intn(40), base+rng.Intn(40))
		}
	}
	for g := 0; g < 4; g++ {
		b.AddNet(g*40, ((g+1)%4)*40)
	}
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		_, res, err := Quadrisect(h, QuadConfig{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.CutNets < best {
			best = res.CutNets
		}
	}
	if best > 6 {
		t.Errorf("best quadrisection cut %d, want ≤ 6 (optimum 4)", best)
	}
}

func TestQuadrisectPreassignedPads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomH(rng, 200, 400, 4)
	fixed := make([]bool, 200)
	pre := make([]int32, 200)
	for v := 0; v < 16; v++ {
		fixed[v] = true
		pre[v] = int32(v % 4)
	}
	p, _, err := Quadrisect(h, QuadConfig{Fixed: fixed, Preassign: pre}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		if p.Part[v] != pre[v] {
			t.Errorf("pad %d ended in block %d, pre-assigned %d", v, p.Part[v], pre[v])
		}
	}
}

func TestQuadrisectNetCutObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomH(rng, 180, 300, 4)
	p, res, err := Quadrisect(h, QuadConfig{Refine: kway.Config{Objective: kway.NetCut}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestQuadrisectConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 20, 30, 4)
	if _, _, err := Quadrisect(h, QuadConfig{Fixed: make([]bool, 20)}, rng); err == nil {
		t.Error("Fixed without Preassign must error")
	}
	if _, _, err := Quadrisect(h, QuadConfig{Threshold: 1}, rng); err == nil {
		t.Error("bad threshold must error")
	}
	fixed := make([]bool, 20)
	pre := make([]int32, 20)
	fixed[0], pre[0] = true, 9
	if _, _, err := Quadrisect(h, QuadConfig{Fixed: fixed, Preassign: pre}, rng); err == nil {
		t.Error("out-of-range preassign must error")
	}
	if _, _, err := Quadrisect(h, QuadConfig{Fixed: make([]bool, 3), Preassign: make([]int32, 3)}, rng); err == nil {
		t.Error("length mismatch must error")
	}
	bad := QuadConfig{Refine: kway.Config{Fixed: make([]bool, 20)}}
	if _, _, err := Quadrisect(h, bad, rng); err == nil {
		t.Error("Refine.Fixed must be rejected")
	}
}

func TestQuadrisectLevelsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := clusteredH(rng, 20, 30) // 600 cells, T=100 → ≥2 levels
	_, res, err := Quadrisect(h, QuadConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels < 2 {
		t.Errorf("Levels = %d, want ≥ 2 for 600 cells at T=100", res.Levels)
	}
	if res.CoarsestCells > 100 {
		t.Errorf("CoarsestCells = %d > threshold", res.CoarsestCells)
	}
}

func TestRecursiveBisectValid(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	h := randomH(rng, 200, 350, 4)
	for _, k := range []int{2, 4, 8} {
		p, err := RecursiveBisect(h, k, Config{}, rng)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k {
			t.Errorf("K = %d, want %d", p.K, k)
		}
		if err := p.Validate(200); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Area balance: each block within a loose band (recursive
		// bisection compounds tolerance, so allow 2r per level).
		areas := p.BlockAreas(h)
		for bIdx, a := range areas {
			lo := h.TotalArea()/int64(k) - h.TotalArea()/int64(k)/2
			hi := h.TotalArea()/int64(k) + h.TotalArea()/int64(k)/2
			if a < lo || a > hi {
				t.Errorf("k=%d block %d area %d outside [%d,%d]", k, bIdx, a, lo, hi)
			}
		}
	}
}

func TestRecursiveBisectErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := randomH(rng, 20, 30, 3)
	for _, k := range []int{0, 1, 3, 6} {
		if _, err := RecursiveBisect(h, k, Config{}, rng); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
	if _, err := RecursiveBisect(h, 4, Config{Ratio: 7}, rng); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDirectVsRecursiveQuadrisection(t *testing.T) {
	// Recursive ML bisection often yields lower k-way cuts than
	// direct k-way FM (the hMETIS-era observation); the paper uses
	// direct quadrisection because placement needs the simultaneous
	// 4-way geometry, not because it wins on cut. Assert both
	// approaches are sane and within 2x of each other, and record
	// the comparison.
	h := clusteredH(rand.New(rand.NewSource(32)), 16, 30) // 480 cells
	var direct, recursive int
	for seed := int64(0); seed < 4; seed++ {
		_, dres, err := Quadrisect(h, QuadConfig{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		direct += dres.CutNets
		rp, err := RecursiveBisect(h, 4, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		recursive += rp.Cut(h)
	}
	t.Logf("direct quadrisection total %d vs recursive bisection total %d", direct, recursive)
	if direct > 2*recursive || recursive > 2*direct {
		t.Errorf("approaches diverge beyond 2x: direct %d, recursive %d", direct, recursive)
	}
}
