package core

import "runtime"

// DefaultWorkers is the single source of the default worker count for
// every pool in the system: the scheduler's current GOMAXPROCS, i.e.
// what the Go runtime will actually schedule in parallel. Sizing pools
// off runtime.NumCPU() instead ignores CPU quota / affinity and any
// explicit GOMAXPROCS override, so direct NumCPU use in pool sizing is
// forbidden (the numcpu-pool lint check enforces it).
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}
