package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/coarsen"
	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

// clusteredH builds a hypergraph with g groups of size k: dense
// intra-group 2-pin nets plus a few inter-group nets. Multilevel
// methods should find the group structure.
func clusteredH(rng *rand.Rand, g, k int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(g * k)
	for gi := 0; gi < g; gi++ {
		base := gi * k
		for i := 0; i < 3*k; i++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < g; i++ {
		b.AddNet(i*k+rng.Intn(k), ((i+1)%g)*k+rng.Intn(k))
	}
	return b.MustBuild()
}

func TestBipartitionValidAndBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 50+rng.Intn(150), 100+rng.Intn(200), 5)
		p, res, err := Bipartition(h, Config{}, rng)
		if err != nil {
			return false
		}
		if p.Validate(h.NumCells()) != nil {
			return false
		}
		if res.Cut != p.Cut(h) {
			return false
		}
		return p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyDepthGrowsAsRatioShrinks(t *testing.T) {
	h := clusteredH(rand.New(rand.NewSource(1)), 16, 40) // 640 cells
	depth := func(ratio float64) int {
		hs, _, err := Hierarchy(h, Config{Ratio: ratio, Threshold: 35}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return len(hs) - 1
	}
	d1, d05 := depth(1.0), depth(0.5)
	if d05 <= d1 {
		t.Errorf("R=0.5 depth %d should exceed R=1.0 depth %d (slower coarsening → more levels)", d05, d1)
	}
}

func TestHierarchyReachesThreshold(t *testing.T) {
	h := clusteredH(rand.New(rand.NewSource(3)), 20, 30) // 600 cells
	hs, cs, err := Hierarchy(h, Config{Threshold: 35}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	coarsest := hs[len(hs)-1]
	if coarsest.NumCells() > 35 {
		t.Errorf("coarsest has %d cells, threshold 35", coarsest.NumCells())
	}
	if len(cs) != len(hs)-1 {
		t.Errorf("%d clusterings for %d hypergraphs", len(cs), len(hs))
	}
	// Sizes strictly decrease and area is conserved at every level.
	for i := 1; i < len(hs); i++ {
		if hs[i].NumCells() >= hs[i-1].NumCells() {
			t.Errorf("level %d: %d cells ≥ level %d: %d", i, hs[i].NumCells(), i-1, hs[i-1].NumCells())
		}
		if hs[i].TotalArea() != h.TotalArea() {
			t.Errorf("level %d: area %d != %d", i, hs[i].TotalArea(), h.TotalArea())
		}
	}
}

func TestMLBeatsFlatFMOnClusteredInstance(t *testing.T) {
	// The paper's core claim (Table IV): ML yields smaller cuts than
	// flat iterative improvement on instances with cluster structure.
	// Compare best-of-5 flat FM to best-of-5 ML_F.
	h := clusteredH(rand.New(rand.NewSource(7)), 24, 25) // 600 cells
	bestFlat, bestML := 1<<30, 1<<30
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, fres, err := fm.Partition(h, nil, fm.Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if fres.Cut < bestFlat {
			bestFlat = fres.Cut
		}
		rng = rand.New(rand.NewSource(seed + 100))
		_, mres, err := Bipartition(h, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if mres.Cut < bestML {
			bestML = mres.Cut
		}
	}
	if bestML > bestFlat {
		t.Errorf("ML best cut %d worse than flat FM best %d on clustered instance", bestML, bestFlat)
	}
}

func TestMLFindsOptimumOnTwoClusters(t *testing.T) {
	// Two dense groups joined by one net; optimal cut 1.
	b := hypergraph.NewBuilder(80)
	rng := rand.New(rand.NewSource(5))
	for g := 0; g < 2; g++ {
		base := g * 40
		for i := 0; i < 150; i++ {
			b.AddNet(base+rng.Intn(40), base+rng.Intn(40))
		}
	}
	b.AddNet(0, 40)
	h := b.MustBuild()
	best := 1 << 30
	for seed := int64(0); seed < 5; seed++ {
		_, res, err := Bipartition(h, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut < best {
			best = res.Cut
		}
	}
	if best != 1 {
		t.Errorf("ML best cut = %d, want 1", best)
	}
}

func TestSmallInstanceSkipsCoarsening(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := randomH(rng, 20, 30, 4)
	_, res, err := Bipartition(h, Config{Threshold: 35}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 0 {
		t.Errorf("Levels = %d, want 0 for |V| ≤ T", res.Levels)
	}
	if res.CoarsestCells != 20 {
		t.Errorf("CoarsestCells = %d, want 20", res.CoarsestCells)
	}
}

func TestCLIPEngineWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := clusteredH(rng, 10, 30)
	p, res, err := Bipartition(h, Config{Refine: fm.Config{Engine: fm.EngineCLIP}, Ratio: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
	if res.Levels < 1 {
		t.Error("expected at least one level of coarsening")
	}
}

func TestCoarsestStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := clusteredH(rng, 10, 30)
	_, res, err := Bipartition(h, Config{CoarsestStarts: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 0 && res.Cut < 0 {
		t.Error("nonsense cut")
	}
	if len(res.RefineResults) != res.Levels+1 {
		t.Errorf("RefineResults %d entries, want levels+1 = %d", len(res.RefineResults), res.Levels+1)
	}
}

func TestNetlessHypergraphTerminates(t *testing.T) {
	// No nets: Match produces all singletons → no shrink → must not
	// loop forever.
	h := hypergraph.NewBuilder(100).MustBuild()
	rng := rand.New(rand.NewSource(11))
	p, res, err := Bipartition(h, Config{Threshold: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 0 {
		t.Errorf("cut = %d, want 0", res.Cut)
	}
	if err := p.Validate(100); err != nil {
		t.Error(err)
	}
}

func TestConfigNormalizeErrors(t *testing.T) {
	bad := []Config{
		{Threshold: 1},
		{Ratio: -1},
		{Ratio: 2},
		{CoarsestStarts: -1},
		{MaxLevels: -1},
		{Refine: fm.Config{Tolerance: 5}},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestLevelCellsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := clusteredH(rng, 16, 25) // 400 cells
	_, res, err := Bipartition(h, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelCells) != res.Levels+1 {
		t.Fatalf("LevelCells %v for %d levels", res.LevelCells, res.Levels)
	}
	if res.LevelCells[0] != 400 {
		t.Errorf("LevelCells[0] = %d, want 400", res.LevelCells[0])
	}
}

func TestTwoPhaseSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	h := clusteredH(rng, 16, 25) // 400 cells
	p, res, err := TwoPhase(h, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 1 {
		t.Errorf("two-phase used %d levels, want 1", res.Levels)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
	if !p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1)) {
		t.Error("unbalanced")
	}
}

func TestTwoPhaseVsMultilevel(t *testing.T) {
	// Multilevel should be at least as good as two-phase on average
	// over a few clustered runs (the paper's motivation for going
	// beyond two phases).
	h := clusteredH(rand.New(rand.NewSource(21)), 24, 25) // 600 cells
	twoSum, mlSum := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		_, tp, err := TwoPhase(h, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		twoSum += tp.Cut
		_, ml, err := Bipartition(h, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		mlSum += ml.Cut
	}
	if mlSum > twoSum+twoSum/5 {
		t.Errorf("ML total %d much worse than two-phase total %d", mlSum, twoSum)
	}
}

func TestTwoPhaseConfigError(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	h := randomH(rng, 20, 30, 4)
	if _, _, err := TwoPhase(h, Config{Ratio: 5}, rng); err == nil {
		t.Error("bad config accepted")
	}
}

func TestHierarchyClusteringsComposeToCoarsest(t *testing.T) {
	// Composing all per-level clusterings must give a flat clustering
	// of H_0 whose induced hypergraph has the coarsest level's sizes
	// — the structural glue between Definitions 1 and 2.
	h := clusteredH(rand.New(rand.NewSource(40)), 16, 30) // 480 cells
	hs, cs, err := Hierarchy(h, Config{Ratio: 0.5}, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Skip("no coarsening happened")
	}
	flat := cs[0]
	for _, c := range cs[1:] {
		flat, err = hypergraph.Compose(flat, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := flat.Validate(h.NumCells()); err != nil {
		t.Fatal(err)
	}
	induced, err := hypergraph.Induce(h, flat)
	if err != nil {
		t.Fatal(err)
	}
	coarsest := hs[len(hs)-1]
	if induced.NumCells() != coarsest.NumCells() {
		t.Errorf("composed induce has %d cells, coarsest has %d",
			induced.NumCells(), coarsest.NumCells())
	}
	if induced.TotalArea() != coarsest.TotalArea() {
		t.Error("area mismatch through composition")
	}
	// Note: net multisets can differ in ordering but the pin totals
	// must match (parallel nets preserved identically).
	if induced.NumNets() != coarsest.NumNets() || induced.NumPins() != coarsest.NumPins() {
		t.Errorf("net structure differs: %v vs %v", induced, coarsest)
	}
}

func TestBipartitionDeterministicPerSeed(t *testing.T) {
	h := clusteredH(rand.New(rand.NewSource(42)), 10, 30)
	a, ra, err := Bipartition(h, Config{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Bipartition(h, Config{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cut != rb.Cut {
		t.Fatalf("cuts differ: %d vs %d", ra.Cut, rb.Cut)
	}
	for v := range a.Part {
		if a.Part[v] != b.Part[v] {
			t.Fatal("partitions differ for identical seeds")
		}
	}
}

func TestMergeParallelNetsEquivalentQuality(t *testing.T) {
	// Merging parallel nets must not change the reported cut
	// semantics: for the same seed the exact decisions can differ
	// (netlist ordering changes), but over several seeds the average
	// quality must be statistically indistinguishable and all
	// invariants hold. We assert totals within 15%.
	h := clusteredH(rand.New(rand.NewSource(50)), 20, 30) // 600 cells
	var plain, merged int
	for seed := int64(0); seed < 6; seed++ {
		_, pres, err := Bipartition(h, Config{Ratio: 0.5}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		plain += pres.Cut
		_, mres, err := Bipartition(h, Config{Ratio: 0.5, MergeParallelNets: true}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		merged += mres.Cut
	}
	// Different representations change tie-breaking, so individual
	// runs differ; totals over seeds must stay in the same band.
	if merged > plain+plain*40/100 || plain > merged+merged*40/100 {
		t.Errorf("merge changed quality beyond noise: plain %d vs merged %d", plain, merged)
	}
}

func TestMergeParallelNetsShrinksCoarseNetlist(t *testing.T) {
	// Apply ONE fixed clustering both ways: the merged representation
	// must have no more nets and must conserve total net weight.
	// (Comparing whole hierarchies is invalid — merging changes net
	// iteration order and therefore Match's tie-breaking.)
	h := clusteredH(rand.New(rand.NewSource(51)), 20, 30)
	c, err := coarsen.Match(h, coarsen.Config{Ratio: 1}, rand.New(rand.NewSource(52)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := hypergraph.Induce(h, c)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := hypergraph.InduceMerged(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumNets() > plain.NumNets() {
		t.Errorf("merged has %d nets, plain has %d", merged.NumNets(), plain.NumNets())
	}
	if merged.TotalNetWeight() != int64(plain.NumNets()) {
		t.Errorf("merged total weight %d != plain nets %d", merged.TotalNetWeight(), plain.NumNets())
	}
	if merged.NumNets() == plain.NumNets() {
		t.Log("note: no parallel nets arose on this instance")
	}
}

func TestVCycleNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 80+rng.Intn(120), 150+rng.Intn(150), 4)
		p, res, err := Bipartition(h, Config{}, rng)
		if err != nil {
			return false
		}
		refined, cut, err := VCycle(h, p, 3, Config{}, rng)
		if err != nil {
			return false
		}
		if cut > res.Cut {
			return false
		}
		if cut != refined.WeightedCut(h) {
			return false
		}
		return refined.IsBalanced(h, hypergraph.Balance(h, 2, 0.1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestVCycleImprovesWeakStart(t *testing.T) {
	// Starting from a single flat-FM solution, V-cycles should close
	// most of the gap to a from-scratch ML run on a clustered circuit.
	h := clusteredH(rand.New(rand.NewSource(60)), 20, 30)
	rng := rand.New(rand.NewSource(61))
	start, _, err := fm.Partition(h, nil, fm.Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := start.Cut(h)
	refined, cut, err := VCycle(h, start, 5, Config{Ratio: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = refined
	if cut > before {
		t.Errorf("V-cycle worsened: %d → %d", before, cut)
	}
	t.Logf("flat FM %d → V-cycled %d", before, cut)
}

func TestVCycleRestrictedMatchingPreservesSolution(t *testing.T) {
	// The core property: restricted coarsening must make the pushed-up
	// solution have EXACTLY the same weighted cut at every level.
	rng := rand.New(rand.NewSource(62))
	h := clusteredH(rng, 12, 30)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	mc := coarsen.Config{Ratio: 1, SameBlockOnly: p}
	c, err := coarsen.Match(h, mc, rng)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := hypergraph.Induce(h, c)
	if err != nil {
		t.Fatal(err)
	}
	cp := hypergraph.NewPartition(coarse.NumCells(), 2)
	for v, k := range c.CellToCluster {
		cp.Part[k] = p.Part[v]
	}
	if cp.WeightedCut(coarse) != p.WeightedCut(h) {
		t.Errorf("restricted coarsening changed the cut: %d vs %d",
			cp.WeightedCut(coarse), p.WeightedCut(h))
	}
	// And every cluster is block-pure.
	for v, k := range c.CellToCluster {
		if cp.Part[k] != p.Part[v] {
			t.Fatalf("cluster %d mixes blocks", k)
		}
	}
}

func TestVCycleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	h := randomH(rng, 20, 30, 4)
	if _, _, err := VCycle(h, hypergraph.NewPartition(3, 2), 2, Config{}, rng); err == nil {
		t.Error("wrong partition size accepted")
	}
	if _, _, err := VCycle(h, hypergraph.NewPartition(20, 2), 2, Config{Ratio: 9}, rng); err == nil {
		t.Error("bad config accepted")
	}
}
