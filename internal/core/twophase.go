package core

import (
	"math/rand"

	"mlpart/internal/hypergraph"
)

// TwoPhase runs the classical "two-phase FM" methodology of §II.C
// that the multilevel approach generalizes: a single clustering of
// H_0 induces H_1, FM partitions H_1 from a random start, the
// solution is projected back to H_0 and refined with a second FM run.
//
// It is exactly the ML algorithm restricted to one level of
// coarsening, and exists (a) as the historically important baseline
// the paper contrasts against and (b) to measure how much the extra
// levels of the multilevel hierarchy buy (the ablation-twophase
// experiment).
func TwoPhase(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	cfg.MaxLevels = 1
	cfg.Threshold = 2 // always coarsen (once) when the instance allows
	return Bipartition(h, cfg, rng)
}
