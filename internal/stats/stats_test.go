package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Min() != 0 || a.Max() != 0 || a.Mean() != 0 || a.Std() != 0 {
		t.Errorf("empty accumulator not zero: %v", a.String())
	}
}

func TestSingle(t *testing.T) {
	var a Acc
	a.Add(7)
	if a.Min() != 7 || a.Max() != 7 || a.Mean() != 7 || a.Std() != 0 {
		t.Errorf("single: %v", a.String())
	}
}

func TestKnownValues(t *testing.T) {
	var a Acc
	for _, x := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	if math.Abs(a.Std()-2) > 1e-12 {
		t.Errorf("std = %v, want 2", a.Std())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("range = [%d,%d], want [2,9]", a.Min(), a.Max())
	}
}

func TestNegativeValues(t *testing.T) {
	var a Acc
	a.Add(-5)
	a.Add(5)
	if a.Mean() != 0 || a.Min() != -5 || a.Max() != 5 {
		t.Errorf("got %v", a.String())
	}
}

func TestPropertyAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]int, n)
		var a Acc
		for i := range xs {
			xs[i] = rng.Intn(2000) - 1000
			a.Add(xs[i])
		}
		var sum float64
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			sum += float64(x)
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (float64(x) - mean) * (float64(x) - mean)
		}
		std := math.Sqrt(ss / float64(n))
		return a.Min() == mn && a.Max() == mx &&
			math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Std()-std) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(50), rng.Intn(50)
		var whole, p1, p2 Acc
		for i := 0; i < n1; i++ {
			x := rng.Intn(100)
			whole.Add(x)
			p1.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.Intn(100)
			whole.Add(x)
			p2.Add(x)
		}
		p1.Merge(&p2)
		return p1.N() == whole.N() && p1.Min() == whole.Min() && p1.Max() == whole.Max() &&
			math.Abs(p1.Mean()-whole.Mean()) < 1e-9 && math.Abs(p1.Std()-whole.Std()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Acc
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merge with empty changed state")
	}
	var c Acc
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 3 {
		t.Error("merge into empty failed")
	}
}
