// Package stats provides the min / average / standard-deviation
// accumulators used to report multi-run partitioning experiments in
// the format of the paper's tables (MIN, AVG, STD columns over 100
// runs).
package stats

import (
	"fmt"
	"math"
)

// Acc accumulates integer observations with Welford's online
// algorithm, so a million-run sweep needs O(1) memory and stays
// numerically stable.
type Acc struct {
	n    int
	min  int
	max  int
	mean float64
	m2   float64
}

// Add records one observation.
func (a *Acc) Add(x int) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := float64(x) - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (float64(x) - a.mean)
}

// N returns the number of observations.
func (a *Acc) N() int { return a.n }

// Min returns the smallest observation (0 if none).
func (a *Acc) Min() int {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 if none).
func (a *Acc) Max() int {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Mean returns the arithmetic mean (0 if none).
func (a *Acc) Mean() float64 { return a.mean }

// Std returns the population standard deviation, matching the STD
// columns of the paper's tables (0 for fewer than 2 observations).
func (a *Acc) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Merge folds another accumulator into a (parallel runs).
func (a *Acc) Merge(b *Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// String renders "min/avg±std (n)" for logs.
func (a *Acc) String() string {
	return fmt.Sprintf("min %d avg %.1f ±%.1f (n=%d)", a.Min(), a.Mean(), a.Std(), a.n)
}
