// Package analysis is a from-scratch static-analysis framework for
// this repository, built only on the standard library's go/parser,
// go/ast and go/types (the repo is stdlib-only by design — no
// golang.org/x/tools). It exists to *enforce* the determinism and
// safety contracts every experiment table rests on: all randomness
// flows through an injected *rand.Rand, map iteration order never
// leaks into results, balance math never compares floats for
// equality, CSR index narrowing is bounds-checked, and contexts are
// threaded rather than re-rooted.
//
// The framework loads the module's packages from source (see load.go),
// typechecks them, and runs a suite of project-specific checks over
// the typed ASTs. Diagnostics can be suppressed with a mandatory
// reason:
//
//	//mllint:ignore <check> <reason...>
//
// placed on the offending line or on the line directly above it. An
// ignore directive without a reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: position, the check that fired, a
// one-line message and a one-line fix hint. Suppressed findings (an
// //mllint:ignore directive with a reason matched them) are kept and
// marked rather than dropped, so tooling can audit what the
// directives hide; Active filters them out for gating.
type Diagnostic struct {
	Pos        token.Position
	Check      string
	Message    string
	Hint       string
	Suppressed bool
}

// String renders the diagnostic in the conventional
// file:line:col: check: message (fix: hint) form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Pass hands one typechecked package to a check. Checks report
// through Report; suppression and sorting happen in the runner.
type Pass struct {
	Path  string // import path of the package under analysis
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// Report records a finding at node n.
func (p *Pass) Report(n ast.Node, check, message, hint string) {
	p.ReportPos(n.Pos(), check, message, hint)
}

// ReportPos records a finding at a bare position — for checks whose
// evidence is a dataflow fact (e.g. "lock still held at exit") rather
// than a node in hand.
func (p *Pass) ReportPos(pos token.Pos, check, message, hint string) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: message,
		Hint:    hint,
	})
}

// Check is one analysis pass.
type Check interface {
	// Name is the identifier used in diagnostics and ignore
	// directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run inspects the package and reports findings on pass.
	Run(pass *Pass)
}

// AllChecks returns the full suite in a fixed order.
func AllChecks() []Check {
	return []Check{
		NondetRand{},
		MapOrder{},
		FloatEq{},
		UncheckedNarrow{},
		CtxThread{},
		FaultSite{},
		TelemetryThread{},
		WorkspaceRetain{},
		GoroutineCapture{},
		LockBalance{},
		WaitGroupDiscipline{},
		ChanClose{},
		ParPurity{},
		NumCPUPool{},
	}
}

// deterministicPkgs are the packages whose output must be a pure
// function of their input: the algorithm packages (of (input, seed) —
// map-iteration order must not leak into any ordered result they
// produce, and goroutine-reachable code must stay pure) and the
// analysis framework itself (diagnostics must be byte-stable across
// runs, so the analyzer is held to its own ordering contract).
var deterministicPkgs = []string{
	"internal/coarsen",
	"internal/fm",
	"internal/intrapar",
	"internal/kway",
	"internal/gainbucket",
	"internal/core",
	"internal/hypergraph",
	"internal/analysis",
	"internal/analysis/cfg",
	"internal/journal",
	"internal/server/batcher",
}

// checksFor selects which checks apply to the package at importPath.
// The scope rules implement ISSUE-level policy:
//
//   - nondet-rand, ctx-thread: everything under internal/ (library
//     code; cmd/ and examples/ may use ambient randomness and root
//     contexts).
//   - float-eq: internal/ plus the root package (balance/tolerance
//     options live there).
//   - nondet-maporder: the deterministic algorithm packages.
//   - unchecked-narrow: the CSR/builder package internal/hypergraph.
//   - faultsite: every package — the registry rules fire in
//     internal/faultinject, the consumer rules everywhere else
//     (including cmd/ and examples/, which must not reach for site
//     constants at all).
//   - telemetry-thread: every package — the no-global-collector rule
//     applies universally; the no-telemetry.New rule fires only in
//     the deterministic pipeline packages (scoped inside the check).
//   - workspace-retain: every package — reusable scratch workspaces
//     must never be retained in package-level variables, anywhere.
//   - goroutine-capture, lock-balance, waitgroup-discipline,
//     chan-close: every package — racy captures, leaked locks,
//     miscounted WaitGroups and double closes are wrong wherever
//     they appear (cmd/ and examples/ included).
//   - par-purity: the deterministic packages — intra-run parallelism
//     lands inside the pipeline, so everything a goroutine there can
//     reach must already be pure. The analysis packages are in the
//     deterministic set too (self-analysis): the linter's own output
//     ordering is a determinism contract.
//   - numcpu-pool: every package — worker pools must size themselves
//     from core.DefaultWorkers() (GOMAXPROCS-aware), never from
//     runtime.NumCPU directly.
func checksFor(modulePath, importPath string) []Check {
	internal := strings.Contains(importPath, "/internal/") ||
		strings.HasPrefix(importPath, "internal/")
	root := importPath == modulePath
	det := false
	for _, d := range deterministicPkgs {
		if strings.HasSuffix(importPath, d) {
			det = true
			break
		}
	}
	var out []Check
	for _, c := range AllChecks() {
		switch c.(type) {
		case NondetRand, CtxThread:
			if internal {
				out = append(out, c)
			}
		case FloatEq:
			if internal || root {
				out = append(out, c)
			}
		case MapOrder:
			if det {
				out = append(out, c)
			}
		case UncheckedNarrow:
			if strings.HasSuffix(importPath, "internal/hypergraph") {
				out = append(out, c)
			}
		case FaultSite, TelemetryThread, WorkspaceRetain,
			GoroutineCapture, LockBalance, WaitGroupDiscipline, ChanClose,
			NumCPUPool:
			out = append(out, c)
		case ParPurity:
			if det {
				out = append(out, c)
			}
		}
	}
	return out
}

// Active filters out suppressed diagnostics: the set that gates
// `make lint` and the exit status.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunChecks applies the given checks to one loaded package and
// returns all diagnostics — suppressed ones marked, not dropped —
// sorted by position.
func RunChecks(pkg *LoadedPackage, checks []Check) []Diagnostic {
	pass := &Pass{
		Path:  pkg.Path,
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}
	for _, c := range checks {
		c.Run(pass)
	}
	diags := applyIgnores(pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// Run loads the packages matched by patterns (relative to moduleDir)
// and runs the scope-filtered suite over each. It returns all
// diagnostics — suppressed ones marked, not dropped; a non-nil error
// means loading or typechecking failed, which is reported separately
// from findings.
func Run(moduleDir string, patterns []string) ([]Diagnostic, error) {
	return RunFiltered(moduleDir, patterns, nil)
}

// RunFiltered is Run restricted to the named checks; nil means all.
// The scope rules still apply — naming a check does not widen where
// it runs, only narrows which checks do.
func RunFiltered(moduleDir string, patterns []string, only []string) ([]Diagnostic, error) {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var allow map[string]bool
	if only != nil {
		allow = make(map[string]bool, len(only))
		for _, name := range only {
			allow[name] = true
		}
	}
	var all []Diagnostic
	for _, path := range paths {
		checks := checksFor(loader.ModulePath, path)
		if allow != nil {
			var kept []Check
			for _, c := range checks {
				if allow[c.Name()] {
					kept = append(kept, c)
				}
			}
			checks = kept
		}
		if len(checks) == 0 {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return all, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, RunChecks(pkg, checks)...)
	}
	return all, nil
}
