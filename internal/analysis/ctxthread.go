package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxThread enforces context propagation in the library:
//
//  1. context.Background() and context.TODO() are forbidden inside
//     internal/ — a fresh root context silently discards the caller's
//     cancellation and deadline. The non-Ctx compatibility wrappers
//     that intentionally root a context carry an
//     //mllint:ignore ctx-thread directive explaining so.
//  2. Inside an exported ...Ctx function that takes a
//     context.Context, calling a function F when an F-Ctx variant
//     exists in F's package drops the context on the floor; the Ctx
//     variant must be called with the incoming ctx.
type CtxThread struct{}

// Name implements Check.
func (CtxThread) Name() string { return "ctx-thread" }

// Doc implements Check.
func (CtxThread) Doc() string {
	return "forbid context.Background/TODO in internal/ and require ...Ctx functions to propagate ctx"
}

// Run implements Check.
func (CtxThread) Run(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inCtxFn := isExportedCtxFunc(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil {
					return true
				}
				if callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
					(callee.Name() == "Background" || callee.Name() == "TODO") {
					pass.Report(call, CtxThread{}.Name(),
						"context."+callee.Name()+"() creates a fresh root context, discarding the caller's cancellation and deadline",
						"accept a context.Context parameter and thread it through")
					return true
				}
				if inCtxFn {
					checkDroppedCtxVariant(pass, call, callee)
				}
				return true
			})
		}
	}
}

// checkDroppedCtxVariant reports a call to F from inside a ...Ctx
// function when F's own package defines a F+"Ctx" function — the
// context-aware variant should have been called.
func checkDroppedCtxVariant(pass *Pass, call *ast.CallExpr, callee *types.Func) {
	if callee.Pkg() == nil || strings.HasSuffix(callee.Name(), "Ctx") {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods: out of scope for the naming convention
	}
	variant := callee.Pkg().Scope().Lookup(callee.Name() + "Ctx")
	vf, ok := variant.(*types.Func)
	if !ok {
		return
	}
	if !acceptsContext(vf) {
		return
	}
	pass.Report(call, CtxThread{}.Name(),
		"call to "+callee.Name()+" from a ...Ctx function drops the context; "+callee.Name()+"Ctx exists",
		"call "+callee.Name()+"Ctx and pass the incoming ctx")
}

// isExportedCtxFunc reports whether fn is an exported function named
// *Ctx whose signature includes a context.Context parameter.
func isExportedCtxFunc(pass *Pass, fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() || !strings.HasSuffix(fn.Name.Name, "Ctx") {
		return false
	}
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	return ok && acceptsContext(obj)
}

// acceptsContext reports whether fn has a context.Context parameter.
func acceptsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the static callee of call, through selectors
// and plain identifiers; nil for indirect calls, conversions and
// builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
