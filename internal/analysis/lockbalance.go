package analysis

import (
	"go/ast"
	"go/token"

	"mlpart/internal/analysis/cfg"
)

// LockBalance is the CFG path-sensitive lock pairing check: every
// mu.Lock() / mu.RLock() must be matched by the corresponding
// Unlock/RUnlock on *every* path to a normal return — early returns
// are exactly where imbalances hide. `defer mu.Unlock()` is the
// preferred discharge and is recognized path-sensitively (a defer
// registered only on one branch releases only that branch). Read and
// write locks pair independently: RLock discharged by Unlock (or
// vice versa) still reports.
//
// The analysis is a forward may-held dataflow over the function's
// CFG: the fact is the set of (receiver, mode) locks held on some
// path, with join = union (held on any path into the exit ⇒ that
// path leaks). A reached `defer mu.Unlock()` discharges the hold in
// the path fact itself — defers run at every exit from that point on
// — so a defer registered on only one branch leaves the other branch
// held, which is exactly the bug. Locks acquired through unstable
// receiver expressions (map lookups, call results) are skipped
// rather than guessed at. Panic exits are not checked — any call can
// panic, and flagging every lock held across a call would drown the
// signal; defers discharge panic paths too, so the defer form stays
// the fix.
type LockBalance struct{}

// Name implements Check.
func (LockBalance) Name() string { return "lock-balance" }

// Doc implements Check.
func (LockBalance) Doc() string {
	return "every Lock/RLock must reach its Unlock/RUnlock on all return paths; defer recognized path-sensitively"
}

// lockInfo describes one held lock for reporting.
type lockInfo struct {
	pos  token.Pos // the acquiring call
	desc string    // "s.mu.Lock()"
}

// lockFact is the dataflow fact: the set of locks held on some path
// into this point. A nil map with reached=false means "block not yet
// reached" — the identity of the join. held is may-union; the
// earliest acquisition wins so reports land on the first suspicious
// Lock.
type lockFact struct {
	reached bool
	held    map[string]lockInfo
}

type lockLattice struct {
	pass *Pass
}

// Bottom implements cfg.Lattice.
func (lockLattice) Bottom() lockFact { return lockFact{} }

// Entry implements cfg.Lattice.
func (lockLattice) Entry() lockFact {
	return lockFact{reached: true, held: map[string]lockInfo{}}
}

// Join implements cfg.Lattice.
func (lockLattice) Join(a, b lockFact) lockFact {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := lockFact{
		reached: true,
		held:    make(map[string]lockInfo, len(a.held)+len(b.held)),
	}
	for k, v := range a.held {
		out.held[k] = v
	}
	for k, v := range b.held {
		if prev, ok := out.held[k]; !ok || v.pos < prev.pos {
			out.held[k] = v
		}
	}
	return out
}

// Equal implements cfg.Lattice.
func (lockLattice) Equal(a, b lockFact) bool {
	if a.reached != b.reached || len(a.held) != len(b.held) {
		return false
	}
	for k, v := range a.held {
		if w, ok := b.held[k]; !ok || w.pos != v.pos {
			return false
		}
	}
	return true
}

// Transfer implements cfg.Lattice.
func (l lockLattice) Transfer(b *cfg.Block, in lockFact) lockFact {
	if !in.reached {
		return in
	}
	out := lockFact{
		reached: true,
		held:    make(map[string]lockInfo, len(in.held)),
	}
	for k, v := range in.held {
		out.held[k] = v
	}
	for _, n := range b.Nodes {
		l.apply(&out, n)
	}
	return out
}

// lockKey builds the fact key for one classified call: read locks
// live in their own pairing space.
func lockKey(sc syncCall) (string, bool) {
	switch sc.typ {
	case "Mutex", "RWMutex", "Locker":
	default:
		return "", false
	}
	switch sc.method {
	case "Lock", "Unlock":
		return sc.recvKey, true
	case "RLock", "RUnlock":
		return sc.recvKey + "/R", true
	}
	return "", false
}

// apply folds one CFG node into the fact: acquires add to held,
// releases remove. A deferred release also removes — once the defer
// statement has executed, every exit from this point on (returns and
// panics alike) runs the unlock, so the hold is discharged on this
// path. Function literals are opaque here — a closure's body runs
// when it is called, on whatever goroutine calls it — except inside
// a defer, where `defer func() { mu.Unlock() }()` is a common
// discharge shape worth recognizing.
func (l lockLattice) apply(out *lockFact, n ast.Node) {
	if d, ok := n.(*ast.DeferStmt); ok {
		ast.Inspect(d.Call, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sc, ok := classifySyncCall(l.pass, call)
			if !ok {
				return true
			}
			if key, ok := lockKey(sc); ok && (sc.method == "Unlock" || sc.method == "RUnlock") {
				delete(out.held, key)
			}
			return true
		})
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sc, ok := classifySyncCall(l.pass, call)
		if !ok {
			return true
		}
		key, ok := lockKey(sc)
		if !ok {
			return true
		}
		switch sc.method {
		case "Lock", "RLock":
			if _, dup := out.held[key]; !dup {
				out.held[key] = lockInfo{pos: call.Pos(), desc: describeLock(sc.recv, sc.method)}
			}
		case "Unlock", "RUnlock":
			delete(out.held, key)
		}
		return true
	})
}

// Run implements Check.
func (c LockBalance) Run(pass *Pass) {
	forEachFuncBody(pass, func(fb funcBody) {
		g := cfg.New(pass.Fset, fb.name, fb.body)
		res := cfg.Forward[lockFact](g, lockLattice{pass})
		exit := res.In[g.Exit]
		if !exit.reached {
			return
		}
		for _, key := range sortedKeys(exit.held) {
			info := exit.held[key]
			pass.ReportPos(info.pos, c.Name(),
				info.desc+" is not released on every path to return in "+fb.name,
				"add the missing Unlock on the early-return path, or use defer "+
					"immediately after acquiring so panic exits are covered too")
		}
	})
}
