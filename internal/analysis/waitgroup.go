package analysis

import (
	"go/ast"
	"go/token"

	"mlpart/internal/analysis/cfg"
)

// WaitGroupDiscipline enforces the Add/Done/Wait protocol that keeps
// worker pools deadlock- and race-free:
//
//  1. no Add inside the spawned goroutine: an Add racing Wait is the
//     classic lost-wakeup — Wait may observe the counter at zero
//     before the goroutine gets scheduled. Add belongs before the go
//     statement, on the spawning side.
//  2. Done on every path: a goroutine that calls wg.Done must reach
//     it on *every* return path (CFG must-analysis); a conditional
//     early return that skips Done hangs Wait forever. defer wg.Done()
//     discharges every path, panics included, and is the recommended
//     first statement.
//  3. Add before the go statement it accounts for: an Add that only
//     appears *after* a go statement whose goroutine calls Done on
//     the same WaitGroup lets Wait pass early — the count was never
//     raised when the goroutine started.
type WaitGroupDiscipline struct{}

// Name implements Check.
func (WaitGroupDiscipline) Name() string { return "waitgroup-discipline" }

// Doc implements Check.
func (WaitGroupDiscipline) Doc() string {
	return "wg.Add before the go statement, never inside it; wg.Done reached on every goroutine path"
}

// wgFact is the must-Done fact: the set of WaitGroup keys guaranteed
// to have Done called (directly or via a registered defer) on every
// path into this point. nil = unreached.
type wgFact map[string]bool

type wgLattice struct {
	pass *Pass
}

// Bottom implements cfg.Lattice.
func (wgLattice) Bottom() wgFact { return nil }

// Entry implements cfg.Lattice.
func (wgLattice) Entry() wgFact { return wgFact{} }

// Join implements cfg.Lattice — must-analysis: intersection, with
// nil (unreached) as identity.
func (wgLattice) Join(a, b wgFact) wgFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(wgFact)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// Equal implements cfg.Lattice.
func (wgLattice) Equal(a, b wgFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Transfer implements cfg.Lattice: Done calls (and deferred Dones)
// add their WaitGroup key to the guaranteed set.
func (l wgLattice) Transfer(b *cfg.Block, in wgFact) wgFact {
	if in == nil {
		return nil
	}
	out := make(wgFact, len(in))
	for k := range in {
		out[k] = true
	}
	for _, n := range b.Nodes {
		scan := func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sc, ok := classifySyncCall(l.pass, call)
			if ok && sc.typ == "WaitGroup" && sc.method == "Done" {
				out[sc.recvKey] = true
			}
			return true
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			// defer wg.Done() or defer func(){ ...wg.Done()... }()
			// discharges every later exit on this path.
			ast.Inspect(d.Call, scan)
			continue
		}
		inspectShallow(n, scan)
	}
	return out
}

// wgDoneSites collects, per WaitGroup key, the earliest Done call
// position in the literal (deferred or not).
func wgDoneSites(pass *Pass, body *ast.BlockStmt) map[string]token.Pos {
	sites := make(map[string]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sc, ok := classifySyncCall(pass, call)
		if ok && sc.typ == "WaitGroup" && sc.method == "Done" {
			if prev, seen := sites[sc.recvKey]; !seen || call.Pos() < prev {
				sites[sc.recvKey] = call.Pos()
			}
		}
		return true
	})
	return sites
}

// Run implements Check.
func (c WaitGroupDiscipline) Run(pass *Pass) {
	forEachFuncBody(pass, func(fb funcBody) {
		type goneLit struct {
			pos  token.Pos
			done map[string]token.Pos
		}
		var spawned []goneLit

		// Rules 1 and 2 examine each go-statement literal directly in
		// this function body (nested literals get their own visit).
		inspectShallow(fb.body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}

			// Rule 1: Add inside the spawned goroutine.
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sc, ok := classifySyncCall(pass, call)
				if ok && sc.typ == "WaitGroup" && sc.method == "Add" {
					pass.Report(call, c.Name(),
						sc.recv+".Add inside the spawned goroutine races with Wait",
						"call Add on the spawning side, before the go statement")
				}
				return true
			})

			// Rule 2: Done on every path of the spawned closure.
			done := wgDoneSites(pass, lit.Body)
			spawned = append(spawned, goneLit{gs.Pos(), done})
			if len(done) == 0 {
				return true
			}
			g := cfg.New(pass.Fset, fb.name+".go", lit.Body)
			res := cfg.Forward[wgFact](g, wgLattice{pass})
			exit := res.In[g.Exit]
			if exit == nil {
				return true // never returns (worker loop): Wait is not waiting on it
			}
			for _, key := range sortedKeys(done) {
				if !exit[key] {
					pass.ReportPos(done[key], c.Name(),
						key+".Done is not reached on every path of the goroutine in "+fb.name,
						"make `defer "+key+".Done()` the first statement of the goroutine")
				}
			}
			return true
		})

		// Rule 3: an Add that first appears after the go statement
		// whose goroutine Dones the same WaitGroup. An Add anywhere
		// before the spawn (loop bodies included) keeps the pairing
		// honest, so only keys with no earlier Add at all report.
		if len(spawned) == 0 {
			return
		}
		inspectShallow(fb.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sc, ok := classifySyncCall(pass, call)
			if !ok || sc.typ != "WaitGroup" || sc.method != "Add" {
				return true
			}
			for _, sp := range spawned {
				if _, dones := sp.done[sc.recvKey]; dones && sp.pos < call.Pos() &&
					!addBefore(pass, fb.body, sc.recvKey, sp.pos) {
					pass.Report(call, c.Name(),
						sc.recv+".Add comes after the go statement whose goroutine calls Done; "+
							"Wait can pass before the count is raised",
						"move the Add before the go statement")
					break
				}
			}
			return true
		})
	})
}

// addBefore reports whether body has an Add on key strictly before
// pos (outside spawned literals — an Add inside another goroutine
// doesn't order with this spawn).
func addBefore(pass *Pass, body *ast.BlockStmt, key string, pos token.Pos) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sc, ok := classifySyncCall(pass, call)
		if ok && sc.typ == "WaitGroup" && sc.method == "Add" && sc.recvKey == key {
			found = true
		}
		return true
	})
	return found
}
