package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Balance
// and tolerance math must use integer areas or an explicit epsilon;
// exact float comparison is almost always a latent bug once a value
// has been through arithmetic. Two idioms stay legal: comparing an
// expression to itself (the NaN test x != x) and comparing against a
// literal zero (the unset-field sentinel — the zero value is assigned
// verbatim, never computed).
type FloatEq struct{}

// Name implements Check.
func (FloatEq) Name() string { return "float-eq" }

// Doc implements Check.
func (FloatEq) Doc() string {
	return "forbid ==/!= between floating-point operands (use epsilon or integer areas)"
}

// Run implements Check.
func (FloatEq) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			// x != x / x == x: the portable NaN test.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			// Comparison against literal zero: zero values are set,
			// not computed, so the comparison is exact.
			if isZeroLiteral(pass, be.X) || isZeroLiteral(pass, be.Y) {
				return true
			}
			pass.Report(be, FloatEq{}.Name(),
				"floating-point "+be.Op.String()+" comparison; results depend on rounding",
				"compare integer areas, use math.Abs(a-b) < eps, or restructure to avoid the comparison")
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
