package analysis

import (
	"go/ast"
	"go/types"
)

// NumCPUPool forbids direct runtime.NumCPU calls. NumCPU reports the
// machine's hardware threads, which is the wrong number to size a
// worker pool from: it ignores CPU quota and affinity masks and any
// explicit GOMAXPROCS override, so a container limited to 2 cores on
// a 64-core host would spin up 64 workers. Every pool in this
// repository sizes itself from core.DefaultWorkers() (GOMAXPROCS — the
// number of goroutines the runtime will actually schedule in
// parallel); that function is the single permitted call site of the
// underlying runtime query. Applies to every package: a worker count
// is a worker count wherever it is computed.
type NumCPUPool struct{}

// Name implements Check.
func (NumCPUPool) Name() string { return "numcpu-pool" }

// Doc implements Check.
func (NumCPUPool) Doc() string {
	return "pool sizing must use core.DefaultWorkers(), not runtime.NumCPU"
}

// Run implements Check.
func (NumCPUPool) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "runtime" && fn.Name() == "NumCPU" {
				pass.Report(call, "numcpu-pool",
					"runtime.NumCPU ignores CPU quota, affinity, and GOMAXPROCS overrides",
					"use core.DefaultWorkers()")
			}
			return true
		})
	}
}
