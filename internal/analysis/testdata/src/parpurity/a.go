// Package parpurity seeds the par-purity golden test. It is loaded
// under a deterministic-pipeline import path: every function
// reachable from a goroutine spawn must not write package-level
// state, read the wall clock, or touch global randomness. The same
// operations in code no goroutine can reach stay clean.
package parpurity

import (
	"math/rand"
	"sync"
	"time"
)

var hits int

var sharedRNG = rand.New(rand.NewSource(1))

func worker(out []int) {
	hits++ // want "goroutine-reachable code writes package-level variable hits"
	out[0] = rand.Intn(10) // want "goroutine-reachable code calls package-level math/rand.Intn"
	_ = time.Now() // want "goroutine-reachable code reads the wall clock via time.Now"
}

func Spawn(out []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		worker(out)
	}()
	wg.Wait()
}

func transitive(out []int) {
	worker(out)
}

func SpawnTransitive(out []int) {
	done := make(chan struct{})
	go func() {
		transitive(out)
		close(done)
	}()
	<-done
}

func ViaClosure() {
	bump := func() {
		hits++ // want "goroutine-reachable code writes package-level variable hits"
	}
	go bump()
}

func SpawnShared() int {
	done := make(chan struct{})
	n := 0
	go func() {
		n = sharedRNG.Intn(3) // want "goroutine-reachable code reads the package-level RNG sharedRNG"
		close(done)
	}()
	<-done
	return n
}

// Sequential does the same impure things with no goroutine in sight:
// par-purity leaves it to nondet-rand and friends.
func Sequential(out []int) {
	hits++
	out[0] = rand.Intn(10)
	_ = time.Now()
	_ = sharedRNG.Intn(3)
}

func SpawnTimed(work func()) {
	done := make(chan struct{})
	go func() {
		//mllint:ignore par-purity fixture: telemetry wall-clock read, stripped before determinism compares
		t0 := time.Now()
		work()
		_ = time.Since(t0) // want "goroutine-reachable code reads the wall clock via time.Since"
		close(done)
	}()
	<-done
}
