// Package narrow seeds the unchecked-narrow golden test: blind
// int→int32/uint32 conversions must fire; validate-then-convert,
// range indices and constants must not.
package narrow

import "math"

func convert(x int) int32 {
	return int32(x) // want "unchecked narrowing of int to int32"
}

func convertUnsigned(x uint64) uint32 {
	return uint32(x) // want "unchecked narrowing of uint64 to uint32"
}

func length(xs []int) int32 {
	return int32(len(xs)) // want "unchecked narrowing of int to int32"
}

func guarded(x int) (int32, bool) {
	if x < 0 || x > math.MaxInt32 {
		return 0, false
	}
	return int32(x), true // ok: validate-then-convert
}

func offsetGuarded(p, n int) (int32, bool) {
	if p < 1 || p > n {
		return 0, false
	}
	return int32(p - 1), true // ok: p bounds-checked, constant offset
}

func loopBound(n int) []int32 {
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int32(i)) // ok: loop condition bounds i
	}
	return out
}

func rangeIndex(xs []int64) []int32 {
	out := make([]int32, 0, len(xs))
	for i := range xs {
		out = append(out, int32(i)) // ok: slice range index
	}
	return out
}

const small = 1 << 10

func constant() int32 {
	return int32(small) // ok: compile-time checked
}

func widening(x int32) int64 {
	return int64(x) // ok: not a narrowing
}
