// Package floateq seeds the float-eq golden test: exact float
// comparison must fire; the NaN self-test, zero-value sentinels and
// integer comparisons must not.
package floateq

func equal(a, b float64) bool {
	return a == b // want "floating-point =="
}

func notEqual(a, b float32) bool {
	return a != b // want "floating-point !="
}

func half(r float64) bool {
	return r == 0.5 // want "floating-point =="
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "floating-point =="
}

func isNaN(x float64) bool {
	return x != x // ok: the portable NaN test
}

func unset(tol float64) bool {
	return tol == 0 // ok: zero-value sentinel, assigned not computed
}

func ints(a, b int) bool {
	return a == b // ok: exact integer comparison
}
