// Golden case for the workspace-retain check: workspace-named struct
// types retained at package level — directly, behind a pointer, or
// inside a container — must be flagged; locals, parameters, struct
// fields and non-workspace globals stay clean.
package workspaceretain

type Workspace struct{ buf []int32 }

type InduceWorkspace struct{ heads []int32 }

type pipelineWS struct{ match Workspace }

// Workspacer is an interface, not scratch: not flagged even though
// the name ends in Workspace.
type Workspacer interface{ Reset() }

var sharedWS Workspace // want "package-level workspace is shared mutable scratch"

var sharedPtr *InduceWorkspace // want "package-level workspace is shared mutable scratch"

var wsPool []*Workspace // want "package-level workspace is shared mutable scratch"

var wsByName map[string]*pipelineWS // want "package-level workspace is shared mutable scratch"

var wsFeed chan Workspace // want "package-level workspace is shared mutable scratch"

var one, two Workspace // want "package-level workspace is shared mutable scratch" "package-level workspace is shared mutable scratch"

var iface Workspacer

var count int

func attempt() int {
	// Locals are the intended ownership: one workspace per attempt.
	ws := &pipelineWS{}
	var induce InduceWorkspace
	induce.heads = append(induce.heads, 1)
	return len(ws.match.buf) + len(induce.heads) + count
}

type attemptState struct {
	// A workspace field inside a non-global struct is fine — the
	// struct's owner decides the lifetime.
	ws Workspace
}

func (s *attemptState) run(scratch *Workspace) { s.ws = *scratch }
