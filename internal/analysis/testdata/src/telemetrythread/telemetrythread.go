// Package telemetrythread exercises the telemetry-thread rules from a
// non-pipeline internal/ import path: package-level collectors are
// flagged everywhere, but telemetry.New is allowed here (only the
// deterministic pipeline packages may not call it).
package telemetrythread

import "mlpart/internal/telemetry"

// Global is a package-level collector pointer.
var Global *telemetry.Collector // want "package-level telemetry collector"

// GlobalValue holds the collector by value — just as shared.
var GlobalValue telemetry.Collector // want "package-level telemetry collector"

var one, two = 1, telemetry.New() // want "package-level telemetry collector"

// GlobalService is a package-level service collector — the daemon's
// counters are just as much shared mutable state as the run stats.
var GlobalService *telemetry.ServiceCollector // want "package-level telemetry collector"

// GlobalServiceValue holds the service collector by value.
var GlobalServiceValue telemetry.ServiceCollector // want "package-level telemetry collector"

// NotACollector is fine: only the collector types are policed.
var NotACollector *telemetry.Report

// NotAServiceReport is fine too.
var NotAServiceReport *telemetry.ServiceReport

// Config threads a collector properly — struct fields are fine.
type Config struct {
	Telemetry *telemetry.Collector
}

// Fresh creates a collector in a driver package — allowed outside the
// pipeline.
func Fresh() *telemetry.Collector {
	local := telemetry.New() // local var: fine
	_ = one
	_ = two
	return local
}
