// Package telemetrythreaddet exercises the telemetry-thread pipeline
// rule. The golden test loads it under a deterministic-package import
// path (suffix internal/fm), where creating a collector with
// telemetry.New is forbidden: collectors must arrive through the
// package Config or be derived with NewChild.
package telemetrythreaddet

import "mlpart/internal/telemetry"

// Config receives the collector from the caller — the sanctioned way.
type Config struct {
	Telemetry *telemetry.Collector
}

// Run derives a per-attempt child (allowed) but also arms its own
// collector (forbidden in pipeline packages).
func Run(cfg Config) *telemetry.Collector {
	child := cfg.Telemetry.NewChild() // NewChild is fine: nil stays nil
	rogue := telemetry.New()          // want "creates its own telemetry collector"
	_ = rogue
	return child
}
