// Package faultinject mimics the fault-injection registry so the
// faultsite golden test can exercise the registry-mode rules.
package faultinject

// Site names one instrumented code location.
type Site string

// The registry table: the first const block holding Site constants.
const (
	SiteAlpha Site = "alpha.site"
	SiteBeta  Site = "beta.site"
	SiteDup   Site = "alpha.site" // want "duplicates constant SiteAlpha"
	SiteLost  Site = "lost.site"  // want "not listed in AllSites"
)

// A second block: sites must all live in the table above.
const ( // want "outside the registry const block"
	SiteStray Site = "stray.site"
)

// AllSites lists the sweepable sites.
var AllSites = []Site{
	SiteAlpha,
	SiteBeta,
	SiteDup,
	SiteStray,
	Site("inline.site"), // want "not a declared site constant"
}

// ValidSite mirrors the real registry's helper.
func ValidSite(s Site) bool {
	for _, k := range AllSites {
		if k == s {
			return true
		}
	}
	return false
}
