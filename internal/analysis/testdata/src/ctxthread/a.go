// Package ctxthread seeds the ctx-thread golden test: fresh root
// contexts and dropped ...Ctx variants must fire; proper threading
// must not.
package ctxthread

import "context"

// Work is the context-free variant of WorkCtx.
func Work(n int) int { return n }

// WorkCtx is the context-aware variant linters should route to.
func WorkCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func fire(ctx context.Context) { _ = ctx }

// RunCtx drops its context twice.
func RunCtx(ctx context.Context, n int) int {
	fire(context.Background()) // want "context.Background"
	return Work(n) // want "drops the context; WorkCtx exists"
}

// GoodCtx threads its context properly.
func GoodCtx(ctx context.Context, n int) int {
	fire(ctx)
	return WorkCtx(ctx, n) // ok: the Ctx variant gets ctx
}

func todo() context.Context {
	return context.TODO() // want "context.TODO"
}

// helper is not a ...Ctx entry point, so calling Work is fine — but a
// root context is still forbidden.
func helper(n int) int {
	return Work(n) // ok: no context contract on helper
}
