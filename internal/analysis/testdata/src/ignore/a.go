// Package ignore seeds the suppression-directive test: a directive
// with a reason silences the finding (own line or trailing); a
// directive without a reason is itself a diagnostic and suppresses
// nothing.
package ignore

func sentinel(r float64) bool {
	//mllint:ignore float-eq default 0.5 is assigned verbatim so the comparison is exact
	return r == 0.5
}

func trailing(a, b float64) bool {
	return a == b //mllint:ignore float-eq golden test of trailing suppression
}

func noReason(a, b float64) bool {
	//mllint:ignore float-eq
	return a == b
}

func wrongCheck(a, b float64) bool {
	//mllint:ignore nondet-rand suppressing the wrong check must not hide float-eq
	return a == b
}

func multiline(a, b, c, d float64) bool {
	//mllint:ignore float-eq the directive governs the whole statement, continuation lines included
	return a == b &&
		c == d
}
