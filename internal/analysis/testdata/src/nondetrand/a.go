// Package nondetrand seeds the nondet-rand golden test: global
// math/rand calls and wall-clock seeding must fire; injected
// *rand.Rand usage and config-derived seeds must not.
package nondetrand

import (
	"math/rand"
	"time"
)

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "package-level math/rand.Shuffle"
}

func pick(n int) int {
	return rand.Intn(n) // want "package-level math/rand.Intn"
}

func reseed(s int64) {
	rand.Seed(s) // want "package-level math/rand.Seed"
}

func perm(n int) []int {
	return rand.Perm(n) // want "package-level math/rand.Perm"
}

func newWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func injected(rng *rand.Rand, n int) int {
	return rng.Intn(n) // ok: method on an injected source
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: seed flows from configuration
}
