// Command faultsitecmd exercises the faultsite consumer rule for
// packages outside internal/: site constants are internal plumbing
// and may not be referenced from cmd/ (the golden test loads this
// directory under a cmd/ import path).
package main

import (
	"fmt"

	"mlpart/internal/faultinject"
)

func main() {
	site := faultinject.SiteFMPass // want "internal plumbing"
	fmt.Println(site)
}
