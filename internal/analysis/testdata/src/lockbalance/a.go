// Package lockbalance seeds the lock-balance golden test: locks that
// escape on an early return fire; straight-line pairs, deferred
// unlocks (including branch-registered ones on covered paths), RLock
// pairing and suppressed handoffs stay clean.
package lockbalance

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *store) earlyReturnLeak(cond bool) int {
	s.mu.Lock() // want "s.mu.Lock() is not released on every path"
	if cond {
		return 0
	}
	s.n++
	s.mu.Unlock()
	return s.n
}

func (s *store) deferredClean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *store) branchBalancedClean(c bool) {
	s.mu.Lock()
	if c {
		s.n++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *store) conditionalDeferLeak(c bool) {
	s.mu.Lock() // want "s.mu.Lock() is not released on every path"
	if c {
		defer s.mu.Unlock()
	}
	s.n++
}

func (s *store) rlockWrongUnlock() int {
	s.rw.RLock() // want "s.rw.RLock() is not released on every path"
	n := s.n
	s.rw.Unlock() // releases the write lock, not the read lock
	return n
}

func (s *store) rlockClean() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

func (s *store) loopClean(xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

func (s *store) deferClosureClean() {
	s.mu.Lock()
	defer func() {
		s.n--
		s.mu.Unlock()
	}()
	s.n++
}

func (s *store) lockAndReturn() *store {
	//mllint:ignore lock-balance ownership handoff: the caller must call unlockStore
	s.mu.Lock()
	return s
}

func unlockStore(s *store) {
	s.mu.Unlock() // clean: unlock-side helpers are not flagged
}

func (s *store) switchLeak(mode int) {
	s.mu.Lock() // want "s.mu.Lock() is not released on every path"
	switch mode {
	case 0:
		s.mu.Unlock()
	case 1:
		s.n++
		s.mu.Unlock()
	default:
		s.n--
		// missing unlock on the default path
	}
}
