// Package chanclose seeds the chan-close golden test: reachable
// double closes, sends after a close, closes in loops and goroutines
// closing channels the enclosing function still sends on all fire;
// branch-exclusive paths and the producer-owns-the-close idiom stay
// clean.
package chanclose

func doubleCloseBranch(c bool) {
	ch := make(chan int)
	if c {
		close(ch)
	}
	close(ch) // want "close of ch is reachable after an earlier close"
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch is reachable after its close"
}

func closeInLoop(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		close(ch) // want "close of ch is reachable after an earlier close"
	}
}

func goroutineClosesSharedSender(v int) {
	ch := make(chan int, 2)
	go func() {
		close(ch) // want "goroutine closes ch while the enclosing function sends on it"
	}()
	ch <- v
}

func branchExclusiveClean(c bool) {
	ch := make(chan int, 1)
	if c {
		close(ch)
	} else {
		ch <- 1
	}
}

func producerOwnsCloseClean(xs []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, x := range xs {
			out <- x
		}
	}()
	return out
}

func sendThenCloseClean(v int) {
	ch := make(chan int, 1)
	ch <- v
	close(ch)
}

func drainAfterCloseClean() int {
	ch := make(chan int, 4)
	close(ch)
	return <-ch // receiving from a closed channel is fine
}

func deferredDoubleClose() {
	ch := make(chan int)
	defer close(ch) // want "deferred close of ch runs after an earlier close"
	close(ch)
}

func suppressedRestart() {
	ch := make(chan int)
	close(ch)
	//mllint:ignore chan-close fixture: the channel variable is rebound between closes at runtime
	close(ch)
}
