// Package maporder seeds the nondet-maporder golden test: map
// iteration feeding an ordered result must fire; sorted, counting and
// set-building loops must not.
package maporder

import "sort"

func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m { // want "append inside the loop body"
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[int]string) []int {
	var out []int
	for k := range m { // ok: sorted before use
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func minKey(m map[int]int) int {
	best := -1
	for k := range m { // want "min/max selection"
		if k < best {
			best = k
		}
	}
	return best
}

func fillSlice(m map[int]int, bins []int) {
	i := 0
	for _, v := range m { // want "indexed write inside the loop body"
		bins[i] = v
		i++
	}
}

func count(m map[int]int) int {
	n := 0
	for range m { // ok: commutative accumulation
		n++
	}
	return n
}

func toSet(m map[int]bool, set map[int]bool) {
	for k := range m { // ok: map writes are order-insensitive
		set[k] = true
	}
}
