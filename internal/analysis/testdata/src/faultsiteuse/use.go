// Package faultsiteuse exercises the faultsite consumer-mode rules
// from an internal/ import path: registry constants are fine here,
// but ad-hoc conversions and new site constants are not.
package faultsiteuse

import "mlpart/internal/faultinject"

// SiteRogue declares a site outside the registry.
const SiteRogue faultinject.Site = "rogue.site" // want "only be declared in the registry"

// Armed references registry constants — allowed under internal/.
var Armed = []faultinject.Site{
	faultinject.SiteFMPass,
	faultinject.SiteCoarsenMatch,
}

// Fire hits a made-up site.
func Fire(in *faultinject.Injector) {
	in.Fire(faultinject.Site("made.up")) // want "ad-hoc Site conversion"
}
