// Package goroutinecapture seeds the goroutine-capture golden test:
// loop-variable captures by go/defer closures and unsynchronized
// shared writes fire; argument passing, read-only captures and
// suppressed cases stay clean.
package goroutinecapture

import "sync"

func loopRange(items []int, sink func(int)) {
	for i, v := range items {
		go func() {
			sink(i) // want "goroutine captures the loop variable i"
			sink(v) // want "goroutine captures the loop variable v"
		}()
	}
}

func loopFor(n int, sink func(int)) {
	for i := 0; i < n; i++ {
		go func() {
			sink(i) // want "goroutine captures the loop variable i"
		}()
	}
}

func deferLoop(files []string, cleanup func(string)) {
	for _, f := range files {
		defer func() {
			cleanup(f) // want "deferred closure captures the loop variable f"
		}()
	}
}

func loopArgPassed(items []int, sink func(int)) {
	for _, v := range items {
		go func(v int) {
			sink(v) // clean: spawn-time snapshot is explicit
		}(v)
	}
}

func sharedWrite(compute func() int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = compute() // want "goroutine writes captured variable total"
		close(done)
	}()
	total = -1
	<-done
	return total
}

func resultHandoff(compute func() int) int {
	sum := 0
	done := make(chan struct{})
	go func() {
		sum = compute() // clean: the enclosing function never writes sum
		close(done)
	}()
	<-done
	return sum
}

func mutexGuarded(compute func() int) int {
	var mu sync.Mutex
	n := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		//mllint:ignore goroutine-capture both writes hold mu; the race detector agrees
		n = compute()
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	n = 1
	mu.Unlock()
	<-done
	return n
}

func deferNamedResult() (err error) {
	defer func() {
		err = nil // clean: deferred closures adjust named results on the same goroutine
	}()
	return err
}
