// Package numcpu seeds the numcpu-pool golden test: direct
// runtime.NumCPU calls must fire; GOMAXPROCS reads, other runtime
// functions, and same-named functions of other packages must not.
package numcpu

import (
	"os/exec"
	"runtime"
)

func poolSize() int {
	return runtime.NumCPU() // want "numcpu-pool: runtime.NumCPU"
}

func halfTheMachine() int {
	n := runtime.NumCPU() / 2 // want "numcpu-pool: runtime.NumCPU"
	if n < 1 {
		n = 1
	}
	return n
}

func schedulerWidth() int {
	return runtime.GOMAXPROCS(0) // ok: quota/affinity-aware
}

func otherRuntimeCall() int {
	return runtime.NumGoroutine() // ok: not NumCPU
}

// local type with a NumCPU method: selector resolves to this package,
// not the runtime — must not fire.
type fakeRuntime struct{}

func (fakeRuntime) NumCPU() int { return 1 }

func localMethod() int {
	var r fakeRuntime
	return r.NumCPU() // ok: not runtime.NumCPU
}

func unrelatedSelector() string {
	cmd := exec.Command("true")
	return cmd.Path // ok: field selector, not a call to runtime
}
