// Package waitgroup seeds the waitgroup-discipline golden test: Add
// inside the spawned goroutine, Done skipped on a path, and Add after
// the go statement fire; the canonical Add-then-go-then-defer-Done
// shape stays clean.
package waitgroup

import "sync"

func addInsideGoroutine(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func(i int) {
			wg.Add(1) // want "wg.Add inside the spawned goroutine races with Wait"
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

func doneSkippedOnPath(c bool, work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if c {
			return
		}
		work()
		wg.Done() // want "wg.Done is not reached on every path"
	}()
	wg.Wait()
}

func addAfterGo(work func()) {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Add(1) // want "wg.Add comes after the go statement"
	wg.Wait()
}

func canonicalClean(n int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

func addInLoopClean(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

func branchDoneClean(c bool, work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if c {
			wg.Done()
			return
		}
		work()
		wg.Done()
	}()
	wg.Wait()
}

func workerLoopClean(jobs <-chan int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := range jobs {
			work(j)
		}
	}()
	wg.Wait()
}

func suppressedBarrier(work func()) {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
		work()
	}()
	//mllint:ignore waitgroup-discipline fixture: the spawn is gated elsewhere and cannot outrun this Add
	wg.Add(1)
	wg.Wait()
}
