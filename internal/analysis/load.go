package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one fully typechecked module package ready for
// analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and typechecks the module's packages from source. It
// resolves module-internal import paths by directory mapping and
// everything else (the standard library) through go/build, so it
// needs no toolchain invocation and no third-party machinery.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset *token.FileSet
	ctxt build.Context
	// deps caches imported packages, typechecked signatures-only —
	// enough for analyzing the packages that import them.
	deps      map[string]*types.Package
	importing map[string]bool
}

// NewLoader builds a loader rooted at moduleDir (the directory
// holding go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Pure-Go file sets only: cgo variants would require C
	// typechecking we cannot do.
	ctxt.CgoEnabled = false
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  abs,
		fset:       token.NewFileSet(),
		ctxt:       ctxt,
		deps:       make(map[string]*types.Package),
		importing:  make(map[string]bool),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Expand resolves package patterns into module import paths. It
// understands "./..." (whole module), "./dir/..." (subtree), "./dir"
// and plain "dir" (one package), and full import paths with or
// without a trailing "/...".
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = l.ModulePath
		} else if !strings.HasPrefix(pat, l.ModulePath) {
			pat = l.ModulePath + "/" + pat
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			roots, err := l.walk(sub)
			if err != nil {
				return nil, err
			}
			for _, p := range roots {
				add(p)
			}
			continue
		}
		add(pat)
	}
	sort.Strings(out)
	return out, nil
}

// walk finds every buildable package under the subtree rooted at the
// import path root (which must be the module path or below it).
func (l *Loader) walk(root string) ([]string, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(root, l.ModulePath), "/")
	start := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	var out []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			relDir, err := filepath.Rel(l.ModuleDir, path)
			if err != nil {
				return err
			}
			ip := l.ModulePath
			if relDir != "." {
				ip += "/" + filepath.ToSlash(relDir)
			}
			out = append(out, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.ctxt.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// dirFor maps an import path to its source directory: module paths
// map into the module tree, everything else resolves through
// go/build (GOROOT, including the std vendor tree).
func (l *Loader) dirFor(path, srcDir string) (string, []string, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return "", nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		return dir, bp.GoFiles, nil
	}
	bp, err := l.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return "", nil, fmt.Errorf("analysis: resolve %q: %w", path, err)
	}
	return bp.Dir, bp.GoFiles, nil
}

// parseDir parses the listed files of one package directory.
func (l *Loader) parseDir(dir string, files []string) ([]*ast.File, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// Import implements types.Importer for dependency resolution during
// target typechecking.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom. Dependencies are
// typechecked signatures-only (IgnoreFuncBodies), which is all their
// importers need and keeps a full-module run fast.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.importing[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.importing[path] = true
	defer delete(l.importing, path)

	dir, files, err := l.dirFor(path, srcDir)
	if err != nil {
		return nil, err
	}
	parsed, err := l.parseDir(dir, files)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// Dependencies may produce harmless errors under
		// signatures-only checking; collect instead of aborting and
		// keep whatever typechecked.
		Error: func(error) {},
	}
	pkg, err := cfg.Check(path, l.fset, parsed, nil)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: typecheck %q: %w", path, err)
	}
	pkg.MarkComplete()
	l.deps[path] = pkg
	return pkg, nil
}

// Load fully typechecks one module package (bodies included, Info
// populated) for analysis. Target packages must typecheck cleanly —
// the tree is expected to build.
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	dir, files, err := l.dirFor(path, l.ModuleDir)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(dir, path, files)
}

// LoadDir typechecks the package in dir under the given import path.
// files may be nil, in which case the buildable files of dir are
// used. This entry point also serves the self-tests, which load
// packages from testdata under synthetic internal/ paths.
func (l *Loader) LoadDir(dir, path string, files []string) (*LoadedPackage, error) {
	if files == nil {
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		files = bp.GoFiles
	}
	parsed, err := l.parseDir(dir, files)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	cfg := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := cfg.Check(path, l.fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, firstErr)
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: typecheck %s failed", path)
	}
	return &LoadedPackage{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: parsed,
		Types: pkg,
		Info:  info,
	}, nil
}
