package analysis

import (
	"go/ast"
	"go/token"
	"strconv"

	"mlpart/internal/analysis/cfg"
)

// ChanClose enforces channel-shutdown discipline, the shape that
// keeps worker pools drainable:
//
//  1. no double close: a close(ch) that is reachable after another
//     close of the same channel on some CFG path panics at runtime;
//  2. no send after close: a ch <- v reachable after a close of ch in
//     the same function panics at runtime;
//  3. the owning/sending side closes: a goroutine spawned from a
//     function must not close a captured channel that the enclosing
//     function itself sends on — only the (single) sender can know
//     when sending is done, so the close belongs next to the sends.
//
// Rules 1 and 2 are a forward may-closed dataflow over the
// function's CFG (join = union: closed on *some* path into this
// point is enough to panic at runtime on that path). Rule 3 is
// syntactic over go-statement literals. Channels reached through
// unstable expressions (map lookups, call results) are skipped.
type ChanClose struct{}

// Name implements Check.
func (ChanClose) Name() string { return "chan-close" }

// Doc implements Check.
func (ChanClose) Doc() string {
	return "no reachable double close, no send after close, and only the sending side closes"
}

// chanFact maps a channel key to the position of the close that may
// have executed. nil = unreached (join identity).
type chanFact map[string]token.Pos

type chanLattice struct {
	pass *Pass
	// report is nil while solving; the reporting replay sets it.
	report func(n ast.Node, key string, closedAt token.Pos, send bool)
}

// Bottom implements cfg.Lattice.
func (chanLattice) Bottom() chanFact { return nil }

// Entry implements cfg.Lattice.
func (chanLattice) Entry() chanFact { return chanFact{} }

// Join implements cfg.Lattice.
func (chanLattice) Join(a, b chanFact) chanFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(chanFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; !ok || v < prev {
			out[k] = v
		}
	}
	return out
}

// Equal implements cfg.Lattice.
func (chanLattice) Equal(a, b chanFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Transfer implements cfg.Lattice. During the reporting replay the
// same transfer runs once per block over the solved in-facts, firing
// the report callback at violating nodes.
func (l chanLattice) Transfer(b *cfg.Block, in chanFact) chanFact {
	if in == nil {
		return nil
	}
	out := make(chanFact, len(in))
	for k, v := range in {
		out[k] = v
	}
	for _, n := range b.Nodes {
		// A deferred close runs at function exit, not here: sends
		// after the defer statement happen before the close. Deferred
		// closes are checked against the exit fact in Run.
		if _, ok := n.(*ast.DeferStmt); ok {
			continue
		}
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				arg, ok := isBuiltinClose(l.pass, m)
				if !ok || !isChanType(l.pass, arg) {
					return true
				}
				key, ok := exprKey(arg)
				if !ok {
					return true
				}
				if prev, closed := out[key]; closed && l.report != nil {
					l.report(m, key, prev, false)
				}
				if prev, closed := out[key]; !closed || m.Pos() < prev {
					out[key] = m.Pos()
				}
			case *ast.SendStmt:
				if !isChanType(l.pass, m.Chan) {
					return true
				}
				key, ok := exprKey(m.Chan)
				if !ok {
					return true
				}
				if prev, closed := out[key]; closed && l.report != nil {
					l.report(m, key, prev, true)
				}
			}
			return true
		})
	}
	return out
}

// Run implements Check.
func (c ChanClose) Run(pass *Pass) {
	forEachFuncBody(pass, func(fb funcBody) {
		g := cfg.New(pass.Fset, fb.name, fb.body)
		solve := chanLattice{pass: pass}
		res := cfg.Forward[chanFact](g, solve)

		// Reporting replay: run the transfer once per reached block
		// with the callback armed. Each violating node reports once.
		replay := solve
		replay.report = func(n ast.Node, key string, closedAt token.Pos, send bool) {
			at := pass.Fset.Position(closedAt)
			if send {
				pass.Report(n, c.Name(),
					"send on "+key+" is reachable after its close (closed at line "+
						strconv.Itoa(at.Line)+"); a send on a closed channel panics",
					"close the channel after the last send — only the sending side knows when that is")
			} else {
				pass.Report(n, c.Name(),
					"close of "+key+" is reachable after an earlier close (line "+
						strconv.Itoa(at.Line)+"); closing a closed channel panics",
					"close exactly once, on the owning side; hoist the close out of loops and branches")
			}
		}
		for _, b := range g.Blocks {
			if res.In[b] != nil {
				replay.Transfer(b, res.In[b])
			}
		}

		// Deferred closes execute at exit: a second deferred close of
		// the same channel, or a deferred close of a channel already
		// closed on some path into the exit, is a reachable double
		// close. Graph.Defers is in source order, so reports are
		// deterministic.
		exitFact := res.In[g.Exit]
		deferredClose := make(map[string]token.Pos)
		for _, d := range g.Defers {
			ast.Inspect(d.Call, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, ok := isBuiltinClose(pass, call)
				if !ok || !isChanType(pass, arg) {
					return true
				}
				key, ok := exprKey(arg)
				if !ok {
					return true
				}
				prev, dup := deferredClose[key]
				if !dup {
					if p, closed := exitFact[key]; closed {
						prev, dup = p, true
					}
				}
				if dup {
					at := pass.Fset.Position(prev)
					pass.Report(call, c.Name(),
						"deferred close of "+key+" runs after an earlier close (line "+
							strconv.Itoa(at.Line)+"); closing a closed channel panics",
						"close exactly once, on the owning side")
				} else {
					deferredClose[key] = call.Pos()
				}
				return true
			})
		}

		// Rule 3: a spawned goroutine closing a channel the enclosing
		// function sends on. Only direct `go func(){...}()` literals
		// are inspected; the literal's own sends don't count (the
		// producer-goroutine `defer close(out)` idiom stays clean).
		inspectShallow(fb.body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, ok := isBuiltinClose(pass, call)
				if !ok || !isChanType(pass, arg) {
					return true
				}
				key, ok := exprKey(arg)
				if !ok {
					return true
				}
				if sendsOutside(pass, fb.body, lit, key) {
					pass.Report(call, c.Name(),
						"goroutine closes "+key+" while the enclosing function sends on it; "+
							"a send racing the close panics",
						"close on the sending side after the last send, or hand ownership "+
							"of the channel to exactly one goroutine")
				}
				return true
			})
			return true
		})
	})
}

// sendsOutside reports whether body contains a send on key outside
// the given literal.
func sendsOutside(pass *Pass, body *ast.BlockStmt, lit *ast.FuncLit, key string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == lit || found {
			return false
		}
		s, ok := n.(*ast.SendStmt)
		if !ok || !isChanType(pass, s.Chan) {
			return true
		}
		if k, ok := exprKey(s.Chan); ok && k == key {
			found = true
		}
		return true
	})
	return found
}
