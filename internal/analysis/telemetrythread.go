package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TelemetryThread enforces the collector-threading contract of
// internal/telemetry:
//
//  1. in every package, no package-level variable may hold a
//     (*)telemetry.Collector or (*)telemetry.ServiceCollector — a
//     global collector is shared mutable state that breaks per-start
//     isolation and the deterministic merge (and, for the service
//     counters, hides the daemon's ownership of its stats);
//     collectors are threaded through Options/Config fields;
//  2. in the deterministic pipeline packages (internal/coarsen, fm,
//     kway, gainbucket, core, hypergraph), calling telemetry.New is
//     forbidden — those packages receive an armed collector via their
//     Config or derive a per-attempt one with NewChild, so arming is
//     always a caller decision and a disabled run stays a nil
//     pointer end to end.
type TelemetryThread struct{}

// Name implements Check.
func (TelemetryThread) Name() string { return "telemetry-thread" }

// Doc implements Check.
func (TelemetryThread) Doc() string {
	return "telemetry collectors: never package-level; pipeline packages receive them via config or NewChild, never telemetry.New"
}

// telemetryPath identifies the collector package by import-path
// suffix.
const telemetryPath = "internal/telemetry"

// isTelemetryCollector reports whether t is telemetry.Collector or
// telemetry.ServiceCollector, or a pointer to either.
func isTelemetryCollector(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != "Collector" && tn.Name() != "ServiceCollector" {
		return false
	}
	return tn.Pkg() != nil && strings.HasSuffix(tn.Pkg().Path(), telemetryPath)
}

// isTelemetryNew reports whether obj is the telemetry package's New
// function.
func isTelemetryNew(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "New" || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), telemetryPath)
}

// Run implements Check.
func (TelemetryThread) Run(pass *Pass) {
	check := TelemetryThread{}.Name()
	det := false
	for _, d := range deterministicPkgs {
		if strings.HasSuffix(pass.Path, d) {
			det = true
			break
		}
	}
	for _, f := range pass.Files {
		// Rule 1: package-level collector variables.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || !isTelemetryCollector(v.Type()) {
						continue
					}
					pass.Report(name, check,
						"package-level telemetry collector is shared mutable state",
						"thread the collector through Options/Config fields; globals break per-start isolation and the deterministic merge")
				}
			}
		}
		if !det {
			continue
		}
		// Rule 2: telemetry.New in pipeline packages.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = pass.Info.Uses[fun]
			case *ast.SelectorExpr:
				obj = pass.Info.Uses[fun.Sel]
			}
			if isTelemetryNew(obj) {
				pass.Report(call, check,
					"pipeline package creates its own telemetry collector",
					"accept a *telemetry.Collector via the package Config, or derive a per-attempt one with NewChild — arming is the caller's decision")
			}
			return true
		})
	}
}
