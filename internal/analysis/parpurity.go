package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// ParPurity is the parallel-readiness purity check for the
// deterministic pipeline packages (internal/coarsen, fm, kway,
// gainbucket, hypergraph, core — the scope is applied by checksFor):
// any function reachable from a goroutine spawn in the package must
// not
//
//   - write package-level state (parallel attempts would race, and
//     even benign races make runs schedule-dependent),
//   - call time.Now or time.Since (wall-clock reads inside parallel
//     workers leak scheduling into results; telemetry timing is the
//     caller's job and is stripped before determinism comparisons),
//   - use global randomness: package-level math/rand functions or a
//     package-level *rand.Rand (every worker must draw from its own
//     seed-derived stream; this is the goroutine-scoped companion of
//     nondet-rand).
//
// Reachability is a package-local call-graph walk: roots are the
// functions spawned by go statements (literals, named functions, and
// single-assignment local closures), and edges follow direct calls
// to same-package functions and methods. Calls through function
// values that cross package boundaries are out of scope — the callee
// package is linted on its own.
type ParPurity struct{}

// Name implements Check.
func (ParPurity) Name() string { return "par-purity" }

// Doc implements Check.
func (ParPurity) Doc() string {
	return "goroutine-reachable pipeline code must not write globals, read the wall clock, or use global rand"
}

// purityWalker accumulates the reachable bodies.
type purityWalker struct {
	pass *Pass
	// decls maps package functions/methods to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// bindings maps local variables to the single function literal
	// assigned to them (nil when reassigned — then unresolvable).
	bindings map[types.Object]*ast.FuncLit
	visited  map[ast.Node]bool
	queue    []ast.Node // bodies pending a scan
}

// Run implements Check.
func (c ParPurity) Run(pass *Pass) {
	w := &purityWalker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		bindings: make(map[types.Object]*ast.FuncLit),
		visited:  make(map[ast.Node]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				w.decls[obj] = fn
			}
		}
	}
	// Collect closure bindings and goroutine roots in one sweep.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(s.Lhs) {
						continue
					}
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					var obj types.Object
					if d := w.pass.Info.Defs[id]; d != nil {
						obj = d
					} else {
						obj = w.pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if _, seen := w.bindings[obj]; seen {
						w.bindings[obj] = nil // reassigned: ambiguous
					} else {
						w.bindings[obj] = lit
					}
				}
			case *ast.GoStmt:
				w.enqueueCallee(s.Call.Fun)
			}
			return true
		})
	}

	var findings []Diagnostic
	report := func(n ast.Node, message, hint string) {
		findings = append(findings, Diagnostic{
			Pos:     pass.Fset.Position(n.Pos()),
			Check:   c.Name(),
			Message: message,
			Hint:    hint,
		})
	}
	for len(w.queue) > 0 {
		body := w.queue[0]
		w.queue = w.queue[1:]
		w.scan(body, report)
	}
	// The walk order depends on goroutine discovery order, which is
	// deterministic, but a body reached twice reports once and ties
	// are broken by position.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range findings {
		pass.diags = append(pass.diags, d)
	}
}

// enqueueCallee resolves a spawned or called function expression to a
// body in this package and enqueues it once.
func (w *purityWalker) enqueueCallee(fun ast.Expr) {
	switch fun := fun.(type) {
	case *ast.FuncLit:
		w.enqueue(fun.Body)
	case *ast.Ident:
		w.enqueueObj(w.pass.Info.Uses[fun])
	case *ast.SelectorExpr:
		w.enqueueObj(w.pass.Info.Uses[fun.Sel])
	case *ast.ParenExpr:
		w.enqueueCallee(fun.X)
	}
}

func (w *purityWalker) enqueueObj(obj types.Object) {
	switch obj := obj.(type) {
	case *types.Func:
		if decl := w.decls[obj]; decl != nil {
			w.enqueue(decl.Body)
		}
	case *types.Var:
		if lit := w.bindings[obj]; lit != nil {
			w.enqueue(lit.Body)
		}
	}
}

func (w *purityWalker) enqueue(body ast.Node) {
	if body != nil && !w.visited[body] {
		w.visited[body] = true
		w.queue = append(w.queue, body)
	}
}

// scan reports violations in one reachable body and enqueues its
// same-package callees. Nested literals are enqueued as their own
// units (defined in reachable code ⇒ treated as reachable, which is
// conservative) so each body is scanned exactly once.
func (w *purityWalker) scan(body ast.Node, report func(n ast.Node, message, hint string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.enqueue(n.Body)
			return false
		case *ast.CallExpr:
			w.enqueueCallee(n.Fun)
			w.checkCall(n, report)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkGlobalWrite(lhs, report)
			}
		case *ast.IncDecStmt:
			w.checkGlobalWrite(n.X, report)
		case *ast.Ident:
			w.checkGlobalRand(n, report)
		}
		return true
	})
}

// checkCall flags wall-clock reads and package-level math/rand calls.
func (w *purityWalker) checkCall(call *ast.CallExpr, report func(ast.Node, string, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
		report(call, "goroutine-reachable code reads the wall clock via time."+fn.Name(),
			"keep timing on the supervising side (telemetry collectors merge per-attempt stats deterministically)")
	case isRandPkg(fn.Pkg().Path()):
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
			report(call, "goroutine-reachable code calls package-level math/rand."+fn.Name(),
				"draw from a per-worker *rand.Rand derived from the attempt seed")
		}
	}
}

// checkGlobalWrite flags assignments whose base resolves to a
// package-level variable.
func (w *purityWalker) checkGlobalWrite(lhs ast.Expr, report func(ast.Node, string, string)) {
	base := lhs
	for {
		switch b := base.(type) {
		case *ast.SelectorExpr:
			base = b.X
			continue
		case *ast.IndexExpr:
			base = b.X
			continue
		case *ast.StarExpr:
			base = b.X
			continue
		case *ast.ParenExpr:
			base = b.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := w.pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Parent() != w.pass.Pkg.Scope() {
		return
	}
	report(lhs, "goroutine-reachable code writes package-level variable "+obj.Name(),
		"thread the state through the attempt's workspace/config so parallel starts cannot race")
}

// checkGlobalRand flags reads of package-level *rand.Rand variables.
func (w *purityWalker) checkGlobalRand(id *ast.Ident, report func(ast.Node, string, string)) {
	obj, ok := w.pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Parent() != w.pass.Pkg.Scope() {
		return
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Rand" || named.Obj().Pkg() == nil {
		return
	}
	if !isRandPkg(named.Obj().Pkg().Path()) {
		return
	}
	report(id, "goroutine-reachable code reads the package-level RNG "+obj.Name(),
		"derive a per-worker *rand.Rand from the attempt seed instead of sharing one stream")
}
