package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //mllint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	check  string
	reason string
}

const ignorePrefix = "mllint:ignore"

// collectIgnores scans every comment of the package for
// //mllint:ignore directives. Directives missing a check name or a
// reason are returned as diagnostics (the reason is mandatory: an
// unexplained suppression is itself a contract violation).
func collectIgnores(pkg *LoadedPackage) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "ignore-syntax",
						Message: "mllint:ignore directive without a check name",
						Hint:    "write //mllint:ignore <check> <reason>",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "ignore-syntax",
						Message: "mllint:ignore " + fields[0] + " has no reason; a reason is mandatory",
						Hint:    "write //mllint:ignore " + fields[0] + " <why this is safe>",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					pos:    pos,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// applyIgnores marks diags that the package's ignore directives
// suppress. A directive covers diagnostics of its check in the same
// file on the directive's own line and on the line directly below it
// (so it can trail the offending statement or sit on its own line
// above). A finding inside a multi-line statement is attached to the
// *enclosing statement's first line* as well as its own: a directive
// above `x := a &&\n\tb == c` suppresses the finding on the
// continuation line, because the directive plainly governs the whole
// statement.
func applyIgnores(pkg *LoadedPackage, diags []Diagnostic) []Diagnostic {
	dirs, bad := collectIgnores(pkg)
	type key struct {
		file  string
		line  int
		check string
	}
	suppressed := make(map[key]bool, 2*len(dirs))
	for _, d := range dirs {
		suppressed[key{d.pos.Filename, d.pos.Line, d.check}] = true
		suppressed[key{d.pos.Filename, d.pos.Line + 1, d.check}] = true
	}
	out := bad
	for _, d := range diags {
		hit := suppressed[key{d.Pos.Filename, d.Pos.Line, d.Check}]
		if !hit {
			if anchor := stmtAnchorLine(pkg, d.Pos); anchor != 0 && anchor != d.Pos.Line {
				hit = suppressed[key{d.Pos.Filename, anchor, d.Check}]
			}
		}
		d.Suppressed = hit
		out = append(out, d)
	}
	return out
}

// stmtAnchorLine returns the first line of the innermost statement
// enclosing pos, or 0 when no statement contains it (package-level
// declarations).
func stmtAnchorLine(pkg *LoadedPackage, pos token.Position) int {
	for _, f := range pkg.Files {
		start := pkg.Fset.Position(f.Pos())
		if start.Filename != pos.Filename {
			continue
		}
		anchor := 0
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			np, ne := pkg.Fset.Position(n.Pos()), pkg.Fset.Position(n.End())
			if pos.Line < np.Line || pos.Line > ne.Line {
				return false
			}
			if _, ok := n.(ast.Stmt); ok {
				// Keep descending: the innermost enclosing statement
				// wins, so later (deeper) matches overwrite.
				anchor = np.Line
			}
			return true
		})
		if anchor != 0 {
			return anchor
		}
	}
	return 0
}
