package analysis

import (
	"go/ast"
	"go/types"
)

// NondetRand forbids the process-global math/rand source inside the
// library: calls to package-level math/rand functions (rand.Intn,
// rand.Shuffle, rand.Perm, rand.Seed, …) and constructors seeded from
// the wall clock (rand.NewSource(time.Now().UnixNano())). Every
// stochastic component must take an injected *rand.Rand so that runs
// are bit-identical per seed — the contract all experiment tables
// rest on.
type NondetRand struct{}

// Name implements Check.
func (NondetRand) Name() string { return "nondet-rand" }

// Doc implements Check.
func (NondetRand) Doc() string {
	return "forbid global math/rand functions and wall-clock seeding in internal/"
}

// randConstructors are the package-level functions allowed because
// they build an injectable source — unless their seed argument
// depends on the wall clock.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// Run implements Check.
func (NondetRand) Run(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				// Methods on an injected *rand.Rand are exactly what
				// the contract wants.
				return true
			}
			if randConstructors[fn.Name()] {
				if tn := wallClockDep(pass, call); tn != "" {
					pass.Report(call, NondetRand{}.Name(),
						"rand."+fn.Name()+" seeded from the wall clock via "+tn+"; runs will not be reproducible",
						"derive the seed from configuration (e.g. Options.Seed), never from time")
				}
				return true
			}
			pass.Report(call, NondetRand{}.Name(),
				"call to package-level math/rand."+fn.Name()+" uses the process-global source",
				"thread an injected *rand.Rand through the call chain and call its method instead")
			return true
		})
	}
}

// wallClockDep reports whether any argument of call (transitively)
// calls into package time; it returns the offending selector text or
// "". Nested rand constructors are not descended into — they report
// on their own, so rand.New(rand.NewSource(time.Now()…)) fires once,
// at the innermost constructor.
func wallClockDep(pass *Pass, call *ast.CallExpr) string {
	found := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if sel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && isRandPkg(fn.Pkg().Path()) && randConstructors[fn.Name()] {
						return false
					}
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			found = "time." + fn.Name()
			return false
		})
	}
	return found
}
