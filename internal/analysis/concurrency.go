package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file holds the shared machinery of the concurrency checks
// (lock-balance, chan-close, waitgroup-discipline, goroutine-capture,
// par-purity): function-body iteration, FuncLit-shallow inspection,
// sync-method recognition, and stable expression keys.

// funcBody is one analyzable function: a declaration or a literal.
type funcBody struct {
	name string
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

// forEachFuncBody visits every function declaration and every
// function literal of the package, in source order. Each literal is
// its own unit: path-sensitive checks analyze a literal's body
// separately from its enclosing function (the literal may run on
// another goroutine or after the enclosing frame returned).
func forEachFuncBody(pass *Pass, visit func(fb funcBody)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			visit(funcBody{fn.Name.Name, fn, fn.Body})
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(funcBody{name + ".func", lit, lit.Body})
				}
				return true
			})
		}
	}
}

// inspectShallow walks the subtree rooted at n without descending
// into function literals: a closure's statements execute when the
// closure runs, not where it is defined, so flow-sensitive transfer
// functions must not observe them in the enclosing frame.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// exprKey renders a "stable" expression — an identifier or a chain of
// selections/dereferences over identifiers — as a canonical string
// usable as a lock/channel identity within one function. Expressions
// with calls or index operations inside are not stable (the receiver
// may differ between occurrences); those return ok=false and the
// checks skip them rather than guess.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		return base + "." + e.Sel.Name, ok
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		k, ok := exprKey(e.X)
		return "*" + k, ok
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			k, ok := exprKey(e.X)
			return "&" + k, ok
		}
	}
	return "", false
}

// syncCall classifies one call expression as a method call on a sync
// primitive.
type syncCall struct {
	recvKey string // stable key of the receiver expression
	recv    string // receiver source text, for messages
	typ     string // "Mutex", "RWMutex", "WaitGroup", "Locker"
	method  string // "Lock", "Unlock", "RLock", "RUnlock", "Add", "Done", "Wait", …
}

// classifySyncCall recognizes method calls on sync.Mutex,
// sync.RWMutex, sync.Locker and sync.WaitGroup values, including
// promoted methods of embedded mutexes. Calls through unstable
// receiver expressions (map lookups, function results) return
// ok=false.
func classifySyncCall(pass *Pass, call *ast.CallExpr) (syncCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return syncCall{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return syncCall{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return syncCall{}, false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return syncCall{}, false
	}
	key, ok := exprKey(sel.X)
	if !ok {
		return syncCall{}, false
	}
	return syncCall{
		recvKey: key,
		recv:    types.ExprString(sel.X),
		typ:     named.Obj().Name(),
		method:  fn.Name(),
	}, true
}

// sortedKeys returns the map's keys in sorted order, so reports built
// from fact maps stay deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// enclosingFuncName names the function declaration containing pos,
// for diagnostics ("" if none found).
func enclosingFuncName(pass *Pass, pos token.Pos) string {
	for _, f := range pass.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && pos >= fn.Pos() && pos <= fn.End() {
				return fn.Name.Name
			}
		}
	}
	return ""
}

// isChanType reports whether the expression has channel type.
func isChanType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isBuiltinClose recognizes close(ch) calls.
func isBuiltinClose(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "close" {
		return nil, false
	}
	return call.Args[0], true
}

// describeLock renders "mu.Lock()" / "mu.RLock()" for messages.
func describeLock(recv, method string) string {
	return recv + "." + method + "()"
}

// matchingUnlock maps an acquire method to its release method.
func matchingUnlock(method string) string {
	if strings.HasPrefix(method, "R") {
		return "RUnlock"
	}
	return "Unlock"
}
