package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WorkspaceRetain enforces the workspace-ownership contract of the
// allocation-free hot paths: a workspace (coarsen.Workspace,
// fm.Workspace, hypergraph.InduceWorkspace, core's pipelineWS — any
// named struct whose name marks it as reusable scratch) is owned by
// exactly one attempt and lives on that attempt's stack or config.
// Retaining one in a package-level variable — directly, behind a
// pointer, or inside a container — turns per-attempt scratch into
// shared mutable state: two concurrent starts would overwrite each
// other's buffers, and the corruption shows up far away as a wrong
// cut or a partition that fails the oracle recount. The rule applies
// to every package, cmd/ and examples/ included.
type WorkspaceRetain struct{}

// Name implements Check.
func (WorkspaceRetain) Name() string { return "workspace-retain" }

// Doc implements Check.
func (WorkspaceRetain) Doc() string {
	return "workspaces are per-attempt scratch: never retained in a package-level variable"
}

// isWorkspaceName reports whether a type name marks reusable scratch.
func isWorkspaceName(name string) bool {
	return strings.HasSuffix(name, "Workspace") || name == "pipelineWS"
}

// holdsWorkspace reports whether t is a workspace type or a container
// that can reach one (pointer, slice, array, map, channel), so
// indirect retention like `var pool []*fm.Workspace` is caught too.
func holdsWorkspace(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		if isWorkspaceName(u.Obj().Name()) {
			if _, ok := u.Underlying().(*types.Struct); ok {
				return true
			}
		}
		return false
	case *types.Pointer:
		return holdsWorkspace(u.Elem(), depth+1)
	case *types.Slice:
		return holdsWorkspace(u.Elem(), depth+1)
	case *types.Array:
		return holdsWorkspace(u.Elem(), depth+1)
	case *types.Map:
		return holdsWorkspace(u.Elem(), depth+1)
	case *types.Chan:
		return holdsWorkspace(u.Elem(), depth+1)
	}
	return false
}

// Run implements Check.
func (WorkspaceRetain) Run(pass *Pass) {
	check := WorkspaceRetain{}.Name()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || !holdsWorkspace(v.Type(), 0) {
						continue
					}
					pass.Report(name, check,
						"package-level workspace is shared mutable scratch",
						"keep workspaces on the attempt's stack (pipelineWS per attempt) or thread them through a Config.WS field; a global breaks per-start isolation")
				}
			}
		}
	}
}
