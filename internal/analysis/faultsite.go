package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FaultSite enforces the fault-injection site registry contract that
// the chaos suite depends on:
//
// In the registry package (package faultinject, the one declaring the
// Site type):
//
//  1. every Site constant lives in one const block — the registry
//     table — so the full site set is readable in one place;
//  2. site values are unique;
//  3. every Site constant is listed in AllSites (Plan.Validate and
//     the chaos sweep both iterate AllSites — an unlisted site would
//     be armable nowhere and swept never);
//  4. AllSites elements are the declared constants, not inline
//     Site("...") conversions.
//
// In every other package:
//
//  5. ad-hoc Site("...") conversions are forbidden — an unregistered
//     name silently never fires (Fire matches by exact value);
//  6. declaring new Site constants outside the registry is forbidden;
//  7. registry constants may be referenced only from internal/ —
//     external code arms faults through the public FaultPlan /
//     ParseFaultSpec API, which validates names at runtime.
type FaultSite struct{}

// Name implements Check.
func (FaultSite) Name() string { return "faultsite" }

// Doc implements Check.
func (FaultSite) Doc() string {
	return "fault-injection sites: one registry const block, unique values, all listed in AllSites; consumers reference registry constants, from internal/ only"
}

// faultinjectPath identifies the registry package by import-path
// suffix when analyzing its consumers.
const faultinjectPath = "internal/faultinject"

// Run implements Check.
func (FaultSite) Run(pass *Pass) {
	if site := localSiteType(pass); site != nil {
		runSiteRegistry(pass, site)
		return
	}
	runSiteConsumer(pass)
}

// localSiteType returns the Site type when pass is the registry
// package itself (package name faultinject declaring a string-kinded
// Site type); nil otherwise.
func localSiteType(pass *Pass) *types.TypeName {
	if pass.Pkg == nil || pass.Pkg.Name() != "faultinject" {
		return nil
	}
	tn, ok := pass.Pkg.Scope().Lookup("Site").(*types.TypeName)
	if !ok {
		return nil
	}
	basic, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.String {
		return nil
	}
	return tn
}

// isSiteConstOf reports whether obj is a constant of the given Site
// type.
func isSiteConstOf(obj types.Object, site *types.TypeName) (*types.Const, bool) {
	c, ok := obj.(*types.Const)
	if !ok {
		return nil, false
	}
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj() != site {
		return nil, false
	}
	return c, true
}

func runSiteRegistry(pass *Pass, site *types.TypeName) {
	check := FaultSite{}.Name()
	type siteConst struct {
		obj  *types.Const
		node ast.Node
	}
	var consts []siteConst
	var blocks []*ast.GenDecl
	seenBlock := make(map[*ast.GenDecl]bool)
	var allSites *ast.CompositeLit

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := isSiteConstOf(pass.Info.Defs[name], site)
						if !ok {
							continue
						}
						consts = append(consts, siteConst{c, name})
						if !seenBlock[gd] {
							seenBlock[gd] = true
							blocks = append(blocks, gd)
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "AllSites" || i >= len(vs.Values) {
							continue
						}
						if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
							allSites = cl
						}
					}
				}
			}
		}
	}

	// 1. One registry table: the first block (in position order) is
	// canonical; any further block holding Site constants is a
	// finding.
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Pos() < blocks[j].Pos() })
	for _, gd := range blocks[min(1, len(blocks)):] {
		pass.Report(gd, check,
			"Site constants declared outside the registry const block",
			"keep every site in the single const table in sites.go")
	}

	// 2. Unique values.
	byVal := make(map[string]string)
	for _, c := range consts {
		v := constant.StringVal(c.obj.Val())
		if prev, dup := byVal[v]; dup {
			pass.Report(c.node, check,
				fmt.Sprintf("site value %q duplicates constant %s", v, prev),
				"every site name must be unique — Fire matches by exact value")
		} else {
			byVal[v] = c.obj.Name()
		}
	}

	if allSites == nil {
		if len(pass.Files) > 0 {
			pass.Report(pass.Files[0].Name, check,
				"registry declares no AllSites table",
				"declare var AllSites = []Site{...} listing every site constant")
		}
		return
	}

	// 3 + 4. AllSites lists exactly the declared constants.
	present := make(map[types.Object]bool)
	for _, el := range allSites.Elts {
		var obj types.Object
		switch e := el.(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[e.Sel]
		}
		if c, ok := isSiteConstOf(obj, site); ok {
			present[c] = true
			continue
		}
		pass.Report(el, check,
			"AllSites element is not a declared site constant",
			"list the registry constants themselves, not inline Site(...) conversions")
	}
	for _, c := range consts {
		if !present[c.obj] {
			pass.Report(c.node, check,
				fmt.Sprintf("site constant %s is not listed in AllSites", c.obj.Name()),
				"append it to AllSites so Plan.Validate and the chaos sweep see it")
		}
	}
}

// registrySiteType resolves a type object to the registry's Site type
// when obj is exactly that; nil otherwise.
func registrySiteType(obj types.Object) *types.TypeName {
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Name() != "Site" || tn.Pkg() == nil {
		return nil
	}
	if !strings.HasSuffix(tn.Pkg().Path(), faultinjectPath) {
		return nil
	}
	return tn
}

// isRegistrySiteConst reports whether obj is a constant of the
// registry's Site type (imported, not local).
func isRegistrySiteConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	named, ok := c.Type().(*types.Named)
	if !ok {
		return false
	}
	return registrySiteType(named.Obj()) != nil
}

func runSiteConsumer(pass *Pass) {
	check := FaultSite{}.Name()
	internal := strings.Contains(pass.Path, "/internal/")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				var obj types.Object
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					obj = pass.Info.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.Info.Uses[fun.Sel]
				}
				if obj != nil && registrySiteType(obj) != nil {
					pass.Report(n, check,
						"ad-hoc Site conversion bypasses the registry — an unregistered name silently never fires",
						"reference a registered site constant, or build entries via ParseSpec")
				}
			case *ast.Ident:
				if _, ok := pass.Info.Defs[n].(*types.Const); ok && isRegistrySiteConst(pass.Info.Defs[n]) {
					pass.Report(n, check,
						"new Site constants may only be declared in the registry package",
						"add the site to internal/faultinject/sites.go and instrument it there")
					return true
				}
				if obj := pass.Info.Uses[n]; isRegistrySiteConst(obj) && !internal {
					pass.Report(n, check,
						"fault-injection site constants are internal plumbing",
						"arm faults through the public FaultPlan / ParseFaultSpec API, which validates site names")
				}
			}
			return true
		})
	}
}
