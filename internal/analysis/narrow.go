package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UncheckedNarrow flags conversions of wider integers to
// int32/uint32 in the CSR/builder package with no visible bounds
// evidence. The hypergraph core stores pins and adjacency as int32 to
// halve memory traffic; a silent overflow there corrupts the CSR
// arrays far from the conversion site. A conversion is accepted when
// the operand is:
//
//   - a constant expression (the compiler rejects out-of-range
//     constants),
//   - an identifier compared in an enclosing or preceding if/for
//     condition in the same function (the hardened-parser pattern
//     from PR 1: validate, then convert), or
//   - a slice/array/string range index (bounded by a length that the
//     builders and parsers already cap).
//
// Everything else needs either a local guard or an
// //mllint:ignore unchecked-narrow <invariant> explaining the bound.
type UncheckedNarrow struct{}

// Name implements Check.
func (UncheckedNarrow) Name() string { return "unchecked-narrow" }

// Doc implements Check.
func (UncheckedNarrow) Doc() string {
	return "flag int→int32/uint32 conversions without a visible bounds check in CSR/builder code"
}

// Run implements Check.
func (UncheckedNarrow) Run(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guards := collectGuards(pass, fn)
			rangeIdx := collectRangeIndexObjs(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				dst, ok := tv.Type.Underlying().(*types.Basic)
				if !ok || (dst.Kind() != types.Int32 && dst.Kind() != types.Uint32) {
					return true
				}
				arg := call.Args[0]
				atv, ok := pass.Info.Types[arg]
				if !ok || atv.Type == nil {
					return true
				}
				if atv.Value != nil {
					return true // constant: compiler-checked
				}
				src, ok := atv.Type.Underlying().(*types.Basic)
				if !ok {
					return true
				}
				switch src.Kind() {
				case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr:
				default:
					return true // not a narrowing
				}
				if id := coreIdent(pass, arg); id != nil {
					obj := pass.Info.Uses[id]
					if obj != nil {
						if rangeIdx[obj] {
							return true
						}
						if gpos, ok := guards[obj]; ok && gpos < call.Pos() {
							return true
						}
					}
				}
				pass.Report(call, UncheckedNarrow{}.Name(),
					"unchecked narrowing of "+src.Name()+" to "+dst.Name(),
					"bounds-check the value first (validate-then-convert), or document the invariant with //mllint:ignore unchecked-narrow <why>")
				return true
			})
		}
	}
}

// collectGuards maps identifier objects to the earliest position at
// which they appear inside an if- or for-condition containing a
// relational comparison. A later conversion of the same object is
// treated as guarded.
func collectGuards(pass *Pass, fn *ast.FuncDecl) map[types.Object]token.Pos {
	guards := make(map[types.Object]token.Pos)
	record := func(cond ast.Expr) {
		if cond == nil {
			return
		}
		ast.Inspect(cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if id, ok := unparen(side).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						if old, ok := guards[obj]; !ok || be.Pos() < old {
							guards[obj] = be.Pos()
						}
					}
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IfStmt:
			record(st.Cond)
		case *ast.ForStmt:
			record(st.Cond)
		}
		return true
	})
	return guards
}

// collectRangeIndexObjs returns the key variables of range loops over
// slices, arrays and strings (never maps or channels).
func collectRangeIndexObjs(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Key == nil {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Basic: // Basic covers string
		default:
			return true
		}
		if id, ok := rs.Key.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// coreIdent extracts the identifier a conversion operand hinges on:
// the ident itself, or the ident side of ident±constant (the
// validate-then-convert pattern converts p-1 after bounds-checking
// p).
func coreIdent(pass *Pass, e ast.Expr) *ast.Ident {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return nil
		}
		xc := isConstExpr(pass, x.X)
		yc := isConstExpr(pass, x.Y)
		if id, ok := unparen(x.X).(*ast.Ident); ok && yc {
			return id
		}
		if id, ok := unparen(x.Y).(*ast.Ident); ok && xc {
			return id
		}
	}
	return nil
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
