package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range statements over maps, inside the deterministic
// algorithm packages, whose body builds an ordered result: appending
// to an outer slice, writing through an index expression, or
// selecting a min/max into an outer variable. Go's map iteration
// order is randomized per run, so any such loop silently breaks the
// bit-identical-per-seed contract unless the result is sorted
// afterwards — a following sort.* / slices.* call in the same
// function suppresses the finding.
type MapOrder struct{}

// Name implements Check.
func (MapOrder) Name() string { return "nondet-maporder" }

// Doc implements Check.
func (MapOrder) Doc() string {
	return "flag map iteration whose order leaks into an ordered result in deterministic packages"
}

// Run implements Check.
func (MapOrder) Run(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncMapRanges(pass, fn)
		}
	}
}

func checkFuncMapRanges(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		reason := orderedSink(pass, rs)
		if reason == "" {
			return true
		}
		if sortedAfter(pass, fn, rs.End()) {
			return true
		}
		pass.Report(rs, MapOrder{}.Name(),
			"map iteration order leaks into an ordered result ("+reason+")",
			"iterate over sorted keys, switch to a slice, or sort the result before use")
		return true
	})
}

// orderedSink classifies the loop body: does it produce something
// whose meaning depends on iteration order? Returns a short reason or
// "".
func orderedSink(pass *Pass, rs *ast.RangeStmt) string {
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					reason = "append inside the loop body"
					return false
				}
			}
			for _, lhs := range st.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					// Writing h[k] = v into another map is
					// order-insensitive; slice/array index writes are
					// not (the index typically advances with the
					// iteration).
					tv, ok := pass.Info.Types[ix.X]
					if ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
							reason = "indexed write inside the loop body"
							return false
						}
					}
				}
			}
		case *ast.IfStmt:
			// Min/max selection: a comparison guarding an assignment
			// to a variable declared outside the loop. Ties resolve
			// in iteration order, so the selected key is
			// order-dependent.
			if cmp, ok := st.Cond.(*ast.BinaryExpr); ok {
				switch cmp.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
					if assignsOuter(pass, st.Body, rs) {
						reason = "min/max selection with iteration-order tie-breaking"
						return false
					}
				}
			}
		case *ast.SendStmt:
			reason = "channel send inside the loop body"
			return false
		}
		return true
	})
	return reason
}

// assignsOuter reports whether body assigns to an identifier whose
// declaration lies outside the range statement.
func assignsOuter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				continue
			}
			if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortedAfter reports whether a sort.* or slices.* call appears after
// pos inside fn — the loop's output is ordered before use.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
			found = true
			return false
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
