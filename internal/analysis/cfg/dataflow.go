package cfg

// Lattice defines one forward dataflow analysis over a Graph: a
// join-semilattice of facts F plus a per-block transfer function.
//
// Bottom is the "unvisited" fact and must be the identity of Join —
// for a may-analysis (union join) that is the empty set; for a
// must-analysis (intersection join) it is the synthetic
// everything/unreached element, conventionally represented by a nil
// map the implementation treats as absorbing. Entry is the fact
// holding at function entry. Join must be commutative, associative
// and idempotent, and the lattice must have finite height or Forward
// will not terminate.
//
// Transfer must be pure: it receives the in-fact of a block and
// returns its out-fact without mutating the input (it runs once per
// worklist visit, so side effects would fire a data-dependent number
// of times). Checks report *after* solving, by replaying the
// transfer over the solved in-facts.
type Lattice[F any] interface {
	Bottom() F
	Entry() F
	Join(a, b F) F
	Equal(a, b F) bool
	Transfer(b *Block, in F) F
}

// Result holds the fixpoint facts at the start and end of every
// block.
type Result[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Forward solves the analysis to fixpoint with a deterministic
// worklist (FIFO over block indices, which are themselves a pure
// function of the source). Unreachable blocks keep Bottom as their
// in-fact.
func Forward[F any](g *Graph, lat Lattice[F]) *Result[F] {
	res := &Result[F]{
		In:  make(map[*Block]F, len(g.Blocks)),
		Out: make(map[*Block]F, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.In[g.Entry] = lat.Entry()

	queue := []*Block{g.Entry}
	queued := make(map[*Block]bool, len(g.Blocks))
	queued[g.Entry] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		out := lat.Transfer(b, res.In[b])
		res.Out[b] = out
		for _, s := range b.Succs {
			joined := lat.Join(res.In[s], out)
			if lat.Equal(joined, res.In[s]) {
				continue
			}
			res.In[s] = joined
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return res
}
