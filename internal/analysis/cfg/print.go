package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"strings"
)

// String renders the graph as a deterministic block/edge listing,
// one block per line:
//
//	func name:
//	  b0 entry -> b3
//	  b3 body: [i := 0] -> b4
//	  b4 for.head: [i < n] -> b5 b6
//
// Blocks print in index order. Empty predecessor-less blocks (the
// panic block of a panic-free function, the unreachable continuation
// started after a terminator when no dead code follows) are omitted;
// everything else, including genuinely unreachable dead code, is
// shown. The output is a pure function of the source, which makes it
// golden-testable.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", g.Name)
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 && len(b.Preds) == 0 && (len(b.Succs) == 0 || b.Kind == "unreachable") {
			continue
		}
		fmt.Fprintf(&sb, "  b%d %s", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			parts := make([]string, len(b.Nodes))
			for i, n := range b.Nodes {
				parts[i] = g.render(n)
			}
			fmt.Fprintf(&sb, ": [%s]", strings.Join(parts, "; "))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	for _, d := range g.Defers {
		fmt.Fprintf(&sb, "  defer %s\n", g.render(d.Call))
	}
	return sb.String()
}

// render prints one node as a single line, collapsing any interior
// newlines (multi-line composite literals, function literals) so the
// dump stays one-line-per-block-entry.
func (g *Graph) render(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, g.Fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
