// Package cfg builds per-function control-flow graphs from Go ASTs
// and runs forward dataflow analyses over them, using only the
// standard library (go/ast, go/token, go/printer — deliberately not
// golang.org/x/tools/go/ssa; see DESIGN.md "CFG and dataflow").
//
// The graph is statement-level, not SSA: each basic block holds the
// ast.Nodes executed in order (simple statements, condition
// expressions, defer/go statements), and edges model Go's structured
// control flow — if/else, for and range loops, switch with
// fallthrough, type switch, select (with and without default),
// labeled break/continue, goto, return, and explicit panic(...)
// calls, which jump to a dedicated panic-exit block. Deferred calls
// are recorded in Graph.Defers and conceptually run at *every* exit
// (both the normal Exit block and the Panic block); dataflow clients
// model them as path facts rather than as edges.
//
// The builder is purely syntactic (no *types.Info needed), so checks
// can build graphs for function literals as cheaply as for
// declarations. Blocks are numbered in creation order, which is a
// deterministic function of the source — the String() dump is stable
// and golden-testable.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of
// nodes with a single entry at the top.
type Block struct {
	Index int        // position in Graph.Blocks, stable per source
	Kind  string     // "entry", "exit", "panic", "if.then", "for.head", …
	Nodes []ast.Node // simple statements and control expressions, in order
	Succs []*Block   // successor edges, in source-deterministic order
	Preds []*Block   // computed by New after building
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Name  string
	Fset  *token.FileSet
	Entry *Block // Blocks[0], no predecessors
	Exit  *Block // normal termination: returns and falling off the end
	Panic *Block // explicit panic(...) termination
	// Blocks lists every block in creation order; unreachable blocks
	// (dead code after return/goto/panic) are kept so their statements
	// remain visible to syntactic scans.
	Blocks []*Block
	// Defers records every defer statement in source order. Deferred
	// calls run at both Exit and Panic; flow analyses treat them as
	// facts carried along the path that registered them.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. name labels the graph in dumps; fset is
// used only for rendering nodes in String().
func New(fset *token.FileSet, name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name, Fset: fset}
	b := &builder{g: g}
	g.Entry = b.block("entry")
	g.Exit = b.block("exit")
	g.Panic = b.block("panic")
	b.cur = g.Entry
	b.stmt(body)
	b.edge(b.cur, g.Exit)
	for _, bl := range g.Blocks {
		for _, s := range bl.Succs {
			s.Preds = append(s.Preds, bl)
		}
	}
	return g
}

// builder carries the under-construction graph and the active
// break/continue/label targets.
type builder struct {
	g   *Graph
	cur *Block

	breaks    []branchTarget
	continues []branchTarget
	// fallthroughTo is the body block of the next case while building
	// a switch case body, nil elsewhere.
	fallthroughTo *Block
	// pendingLabel is the label naming the *next* breakable construct
	// (set by LabeledStmt, consumed by the loop/switch/select
	// builders).
	pendingLabel string
	labels       map[string]*Block // goto targets by label name
	gotos        []pendingGoto     // gotos seen before their label
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) block(kind string) *Block {
	bl := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

// edge adds from→to once; duplicate edges carry no extra information.
func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current block with an edge to to and continues
// building into a fresh (initially unreachable) block, so statements
// after return/goto/panic/break remain recorded.
func (b *builder) terminate(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.block("unreachable")
}

// takeLabel consumes the pending label for a breakable construct.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue, honoring an optional label.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall recognizes an explicit call to the panic builtin. The
// test is syntactic; shadowing panic with a local function would fool
// it, and doing so in this codebase would itself deserve a finding.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		// A label is both a goto target and (for loops/switches) a
		// break/continue name.
		lb := b.block("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		rest := b.gotos[:0]
		for _, pg := range b.gotos {
			if pg.label == s.Label.Name {
				b.edge(pg.from, lb)
			} else {
				rest = append(rest, pg)
			}
		}
		b.gotos = rest
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.block("if.then")
		b.edge(cond, then)
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.block("if.else")
			b.edge(cond, elseBlk)
		}
		join := b.block("if.join")
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.block("for.head")
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.block("for.body")
		var post *Block
		if s.Post != nil {
			post = b.block("for.post")
		}
		join := b.block("for.join")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join) // a cond-less for exits only via break
		}
		cont := head
		if post != nil {
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.breaks = append(b.breaks, branchTarget{label, join})
		b.continues = append(b.continues, branchTarget{label, cont})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = join
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.block("range.head")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s.X)
		body := b.block("range.body")
		join := b.block("range.join")
		b.edge(head, body)
		b.edge(head, join)
		b.breaks = append(b.breaks, branchTarget{label, join})
		b.continues = append(b.continues, branchTarget{label, head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = join
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body, "switch")
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body, "typeswitch")
	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		join := b.block("select.join")
		b.breaks = append(b.breaks, branchTarget{label, join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			cb := b.block(kind)
			b.edge(sel, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, t := range cc.Body {
				b.stmt(t)
			}
			b.edge(b.cur, join)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// select{} with no cases blocks forever: join keeps no preds.
		b.cur = join
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.terminate(t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.terminate(t)
			}
		case token.GOTO:
			if t := b.labels[label]; t != nil {
				b.terminate(t)
			} else {
				from := b.cur
				b.cur = b.block("unreachable")
				b.gotos = append(b.gotos, pendingGoto{from, label})
			}
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.terminate(b.fallthroughTo)
			}
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate(b.g.Panic)
		}
	default:
		// Simple statements: assignments, inc/dec, sends, go, decls.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: the tag
// block fans out to every case, fallthrough chains to the next case
// body, and a missing default adds a direct tag→join edge.
func (b *builder) caseClauses(label string, body *ast.BlockStmt, kind string) {
	tag := b.cur
	join := b.block(kind + ".join")
	var caseBlocks []*Block
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		cb := b.block(k)
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		b.edge(tag, cb)
		caseBlocks = append(caseBlocks, cb)
	}
	if !hasDefault {
		b.edge(tag, join)
	}
	b.breaks = append(b.breaks, branchTarget{label, join})
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		prevFT := b.fallthroughTo
		if i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = caseBlocks[i]
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.edge(b.cur, join)
		b.fallthroughTo = prevFT
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}
