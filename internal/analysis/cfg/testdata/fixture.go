// Package fixture exercises the CFG builder for the golden dump
// test: every construct the builder models appears at least once.
package fixture

func rangeLoop(xs []int) int {
	sum := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		sum += x
	}
	return sum
}

func labeledLoops(grid [][]int, want int) (int, int) {
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == want {
				return i, j
			}
			if grid[i][j] < 0 {
				continue outer
			}
			if j > 10 {
				break outer
			}
		}
	}
	return -1, -1
}

func selectDefault(in <-chan int, out chan<- int) bool {
	select {
	case v := <-in:
		out <- v
		return true
	case out <- 0:
		return true
	default:
		return false
	}
}

func deferPanic(mu interface{ Lock() }, bad bool) {
	mu.Lock()
	defer func() { recover() }()
	if bad {
		panic("bad input")
	}
	mu.Lock()
}

func switchFallthrough(n int) string {
	s := ""
	switch n {
	case 0:
		s = "zero"
		fallthrough
	case 1:
		s += "ish"
	}
	return s
}

func gotoRetry(tries int) error {
	n := 0
retry:
	n++
	if n < tries {
		goto retry
	}
	return nil
}

func forPost(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}
