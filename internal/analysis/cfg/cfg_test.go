package cfg

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden CFG dump")

// TestGoldenDump builds the CFG of every function in the fixture and
// compares the concatenated String() dumps against the checked-in
// golden file. The dump is a pure function of the source, so any
// builder change shows up as a diff here.
func TestGoldenDump(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "fixture.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		sb.WriteString(New(fset, fn.Name.Name, fn.Body).String())
		sb.WriteByte('\n')
	}
	got := sb.String()

	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGraphInvariants checks structural properties on every fixture
// function: entry has no preds, every non-entry block listed in a
// Succs appears in the matching Preds, the exit is reached by every
// return, and defers are recorded.
func TestGraphInvariants(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "fixture.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		g := New(fset, fn.Name.Name, fn.Body)
		if len(g.Entry.Preds) != 0 {
			t.Errorf("%s: entry block has predecessors", g.Name)
		}
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				found := false
				for _, p := range s.Preds {
					if p == b {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge b%d->b%d missing from Preds", g.Name, b.Index, s.Index)
				}
			}
		}
		returns := 0
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
			return true
		})
		if returns > 0 && len(g.Exit.Preds) == 0 {
			t.Errorf("%s: has %d returns but exit is unreachable", g.Name, returns)
		}
	}
}

// reachSet is a trivial may-analysis used to exercise the solver: the
// fact is the set of block indices visited on some path. Bottom (nil)
// is the identity of the union join.
type reachSet map[int]bool

type reachLattice struct{}

func (reachLattice) Bottom() reachSet { return nil }
func (reachLattice) Entry() reachSet  { return reachSet{} }
func (reachLattice) Join(a, b reachSet) reachSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(reachSet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
func (reachLattice) Equal(a, b reachSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
func (reachLattice) Transfer(b *Block, in reachSet) reachSet {
	if in == nil {
		return nil
	}
	out := make(reachSet, len(in)+1)
	for k := range in {
		out[k] = true
	}
	out[b.Index] = true
	return out
}

// TestForwardReachability solves the visited-set analysis over the
// labeled-loops fixture: the exit in-fact must contain the entry and
// both loop heads, and unreachable blocks must keep the Bottom fact.
func TestForwardReachability(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "fixture.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "labeledLoops" {
			continue
		}
		g := New(fset, fn.Name.Name, fn.Body)
		res := Forward[reachSet](g, reachLattice{})
		exitIn := res.In[g.Exit]
		if exitIn == nil {
			t.Fatal("exit unreachable in a function with returns")
		}
		if !exitIn[g.Entry.Index] {
			t.Error("entry not in exit's visited set")
		}
		heads := 0
		for _, b := range g.Blocks {
			if b.Kind == "range.head" {
				heads++
				if !exitIn[b.Index] {
					t.Errorf("loop head b%d missing from exit's visited set", b.Index)
				}
			}
		}
		if heads != 2 {
			t.Errorf("want 2 range heads in labeledLoops, got %d", heads)
		}
	}
}
