package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadCase typechecks one package under testdata/src. The synthetic
// import path places it under internal/ so scope rules would apply if
// routed through the runner; the golden tests invoke checks directly.
func loadCase(t *testing.T, name string) *LoadedPackage {
	t.Helper()
	return loadCaseAt(t, name, "mlpart/internal/"+name)
}

// loadCaseAt is loadCase under an explicit synthetic import path, for
// checks whose rules depend on where a package lives (faultsite's
// internal/-only consumer rule).
func loadCaseAt(t *testing.T, name, importPath string) *LoadedPackage {
	t.Helper()
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), importPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// expectations extracts the // want "substring" annotations of every
// file in the case directory, keyed by file:line.
func expectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				out[key] = append(out[key], m[1])
			}
		}
	}
	return out
}

// runGolden runs checks over the named testdata package and matches
// every diagnostic against the // want annotations: each want must
// fire and nothing else may.
func runGolden(t *testing.T, name string, checks []Check) {
	t.Helper()
	runGoldenPkg(t, loadCase(t, name), name, checks)
}

func runGoldenPkg(t *testing.T, pkg *LoadedPackage, name string, checks []Check) {
	t.Helper()
	diags := Active(RunChecks(pkg, checks))
	want := expectations(t, filepath.Join("testdata", "src", name))

	matched := make(map[string]int) // key -> number of wants satisfied
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		subs := want[key]
		ok := false
		full := d.Check + ": " + d.Message
		for _, sub := range subs {
			if strings.Contains(full, sub) {
				ok = true
				matched[key]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, subs := range want {
		if matched[key] < len(subs) {
			t.Errorf("%s: expected %d diagnostic(s) matching %q, matched %d",
				key, len(subs), subs, matched[key])
		}
	}
}

func TestNondetRandGolden(t *testing.T) {
	runGolden(t, "nondetrand", []Check{NondetRand{}})
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, "maporder", []Check{MapOrder{}})
}

func TestFloatEqGolden(t *testing.T) {
	runGolden(t, "floateq", []Check{FloatEq{}})
}

func TestUncheckedNarrowGolden(t *testing.T) {
	runGolden(t, "narrow", []Check{UncheckedNarrow{}})
}

func TestCtxThreadGolden(t *testing.T) {
	runGolden(t, "ctxthread", []Check{CtxThread{}})
}

// TestFaultSiteGolden covers the three faultsite modes: the registry
// rules (a package named faultinject with a local Site type), the
// internal consumer rules (conversions and rogue constants flagged,
// registry references allowed), and the external consumer rule (any
// registry-constant reference outside internal/ flagged).
func TestFaultSiteGolden(t *testing.T) {
	runGolden(t, "faultsite", []Check{FaultSite{}})
	runGolden(t, "faultsiteuse", []Check{FaultSite{}})
	runGoldenPkg(t, loadCaseAt(t, "faultsitecmd", "mlpart/cmd/faultsitecmd"),
		"faultsitecmd", []Check{FaultSite{}})
}

// TestTelemetryThreadGolden covers the telemetry-thread modes: the
// universal no-package-level-collector rule (any internal/ path), and
// the pipeline-only no-telemetry.New rule (loaded under a
// deterministic-package import path; NewChild and config threading
// stay clean).
func TestTelemetryThreadGolden(t *testing.T) {
	runGolden(t, "telemetrythread", []Check{TelemetryThread{}})
	runGoldenPkg(t, loadCaseAt(t, "telemetrythreaddet", "mlpart/internal/fm"),
		"telemetrythreaddet", []Check{TelemetryThread{}})
}

// TestWorkspaceRetainGolden covers the workspace-retain rule:
// workspace-named scratch types in package-level variables (direct,
// pointer, container) are flagged; locals, struct fields and
// interfaces stay clean.
func TestWorkspaceRetainGolden(t *testing.T) {
	runGolden(t, "workspaceretain", []Check{WorkspaceRetain{}})
}

func TestGoroutineCaptureGolden(t *testing.T) {
	runGolden(t, "goroutinecapture", []Check{GoroutineCapture{}})
}

func TestLockBalanceGolden(t *testing.T) {
	runGolden(t, "lockbalance", []Check{LockBalance{}})
}

func TestWaitGroupGolden(t *testing.T) {
	runGolden(t, "waitgroup", []Check{WaitGroupDiscipline{}})
}

func TestChanCloseGolden(t *testing.T) {
	runGolden(t, "chanclose", []Check{ChanClose{}})
}

// TestParPurityGolden loads the fixture under a deterministic-pipeline
// import path: par-purity only applies to the packages whose
// goroutine-reachable code must stay pure.
func TestParPurityGolden(t *testing.T) {
	runGoldenPkg(t, loadCaseAt(t, "parpurity", "mlpart/internal/coarsen"),
		"parpurity", []Check{ParPurity{}})
}

// TestIgnoreDirectives exercises the suppression machinery directly:
// reasons silence (own-line, trailing, and above a multi-line
// statement whose finding sits on a continuation line), a missing
// reason is a diagnostic and suppresses nothing, and a directive for
// the wrong check hides nothing. Suppressed findings are marked, not
// dropped.
func TestNumCPUPoolGolden(t *testing.T) {
	runGolden(t, "numcpu", []Check{NumCPUPool{}})
}

func TestIgnoreDirectives(t *testing.T) {
	pkg := loadCase(t, "ignore")
	all := RunChecks(pkg, []Check{FloatEq{}})
	diags := Active(all)

	byCheck := make(map[string][]Diagnostic)
	for _, d := range diags {
		byCheck[d.Check] = append(byCheck[d.Check], d)
	}
	if n := len(byCheck["ignore-syntax"]); n != 1 {
		t.Errorf("want exactly 1 ignore-syntax diagnostic for the reasonless directive, got %d: %v",
			n, byCheck["ignore-syntax"])
	}
	// float-eq survives in noReason (directive invalid) and
	// wrongCheck (directive names another check); sentinel, trailing
	// and both comparisons of the multi-line statement are
	// suppressed.
	if n := len(byCheck["float-eq"]); n != 2 {
		t.Errorf("want exactly 2 surviving float-eq diagnostics, got %d: %v",
			n, byCheck["float-eq"])
	}
	for _, d := range byCheck["ignore-syntax"] {
		if !strings.Contains(d.Message, "no reason") {
			t.Errorf("ignore-syntax message should explain the mandatory reason, got %q", d.Message)
		}
	}
	suppressed := 0
	for _, d := range all {
		if d.Suppressed {
			if d.Check != "float-eq" {
				t.Errorf("unexpected suppressed %s diagnostic: %v", d.Check, d)
			}
			suppressed++
		}
	}
	// sentinel + trailing + two comparisons in the multi-line return.
	if suppressed != 4 {
		t.Errorf("want 4 suppressed float-eq diagnostics kept and marked, got %d", suppressed)
	}
}

// TestChecksForScope pins the runner's scope policy.
func TestChecksForScope(t *testing.T) {
	names := func(cs []Check) []string {
		var out []string
		for _, c := range cs {
			out = append(out, c.Name())
		}
		return out
	}
	universal := []string{"goroutine-capture", "lock-balance", "waitgroup-discipline", "chan-close"}
	cases := []struct {
		path string
		want []string
	}{
		{"mlpart/internal/fm", append(append([]string{"nondet-rand", "nondet-maporder", "float-eq", "ctx-thread", "faultsite", "telemetry-thread", "workspace-retain"}, universal...), "par-purity", "numcpu-pool")},
		{"mlpart/internal/hypergraph", append(append([]string{"nondet-rand", "nondet-maporder", "float-eq", "unchecked-narrow", "ctx-thread", "faultsite", "telemetry-thread", "workspace-retain"}, universal...), "par-purity", "numcpu-pool")},
		{"mlpart/internal/analysis", append(append([]string{"nondet-rand", "nondet-maporder", "float-eq", "ctx-thread", "faultsite", "telemetry-thread", "workspace-retain"}, universal...), "par-purity", "numcpu-pool")},
		{"mlpart/internal/netgen", append(append([]string{"nondet-rand", "float-eq", "ctx-thread", "faultsite", "telemetry-thread", "workspace-retain"}, universal...), "numcpu-pool")},
		{"mlpart", append(append([]string{"float-eq", "faultsite", "telemetry-thread", "workspace-retain"}, universal...), "numcpu-pool")},
		{"mlpart/cmd/mlpart", append(append([]string{"faultsite", "telemetry-thread", "workspace-retain"}, universal...), "numcpu-pool")},
		{"mlpart/examples/quickstart", append(append([]string{"faultsite", "telemetry-thread", "workspace-retain"}, universal...), "numcpu-pool")},
	}
	for _, tc := range cases {
		got := names(checksFor("mlpart", tc.path))
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("checksFor(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestModuleLintsClean is `make lint` as a regression test: the tree
// itself must stay free of findings.
func TestModuleLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	diags, err := Run(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Active(diags) {
		t.Errorf("%s", d)
	}
}
