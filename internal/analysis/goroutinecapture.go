package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture flags closures whose captured state makes the
// spawn racy or implicit:
//
//  1. a goroutine or deferred closure captures an iteration variable
//     of an enclosing loop. Go ≥1.22 gives each iteration its own
//     variable, so the classic last-value bug is gone — but the
//     dependence on spawn-time loop state is still invisible at the
//     closure and silently changes meaning if the loop is refactored
//     (hoisted variable, reused counter). Passing the value as an
//     argument makes the snapshot explicit.
//  2. a go-statement closure writes a free variable that the
//     enclosing function also writes: an unsynchronized shared write,
//     the exact shape the race detector only catches when the
//     schedule cooperates. (Writes through distinct slice elements
//     or via mutex-guarded sections can be suppressed with a reason.)
type GoroutineCapture struct{}

// Name implements Check.
func (GoroutineCapture) Name() string { return "goroutine-capture" }

// Doc implements Check.
func (GoroutineCapture) Doc() string {
	return "goroutine/defer closures must not capture loop variables or share unsynchronized writes"
}

// Run implements Check.
func (c GoroutineCapture) Run(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch s := n.(type) {
			case *ast.GoStmt:
				c.checkSpawn(pass, s.Call, stack, true)
			case *ast.DeferStmt:
				c.checkSpawn(pass, s.Call, stack, false)
			}
			return true
		})
	}
}

// loopVarsInScope collects the iteration-variable objects of every
// loop on the enclosing-node stack.
func loopVarsInScope(pass *Pass, stack []ast.Node) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, n := range stack {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				addDef(s.Key)
				if s.Value != nil {
					addDef(s.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		}
	}
	return vars
}

// enclosingFunc finds the innermost function node on the stack
// (excluding the spawn call itself).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// checkSpawn inspects one go/defer call whose function is a literal.
func (c GoroutineCapture) checkSpawn(pass *Pass, call *ast.CallExpr, stack []ast.Node, isGo bool) {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		// `go fn(args)`: arguments are evaluated at spawn time on the
		// spawning goroutine — nothing is captured.
		return
	}
	kind := "goroutine"
	if !isGo {
		kind = "deferred closure"
	}

	// Rule 1: loop-variable capture. Report the first use of each
	// captured iteration variable.
	loopVars := loopVarsInScope(pass, stack)
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !loopVars[obj] || reported[obj] {
			return true
		}
		reported[obj] = true
		pass.Report(id, c.Name(),
			kind+" captures the loop variable "+id.Name,
			"pass "+id.Name+" as an argument so the spawn-time snapshot is explicit")
		return true
	})

	if !isGo {
		// Deferred closures run on the same goroutine after the frame
		// returns; writing captured locals there is the idiom for
		// named-result adjustment, not a race.
		return
	}

	// Rule 2: unsynchronized shared writes. A free variable written
	// inside the goroutine and also written in the enclosing function
	// outside the literal races unless externally synchronized.
	enc := enclosingFunc(stack[:len(stack)-1])
	if enc == nil {
		return
	}
	insideWrites := writeSites(pass, lit.Body)
	for obj, firstWrite := range insideWrites {
		if loopVars[obj] || reported[obj] {
			continue
		}
		if !freeIn(obj, lit) || obj.Parent() == pass.Pkg.Scope() {
			continue
		}
		if writtenOutside(pass, enc, lit, obj) {
			pass.ReportPos(firstWrite, c.Name(),
				"goroutine writes captured variable "+obj.Name()+
					", which the enclosing function also writes — unsynchronized shared write",
				"communicate the value over a channel, guard both writes with a mutex, "+
					"or give the goroutine its own variable")
		}
	}
}

// writeSites maps each variable object written in the subtree
// (assignment or ++/--, through a plain identifier) to its first
// write position. Declarations (`:=`, var) are not writes for this
// purpose — they create the variable.
func writeSites(pass *Pass, root ast.Node) map[types.Object]token.Pos {
	writes := make(map[types.Object]token.Pos)
	record := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		// Uses (not Defs): a declaring identifier is the variable's
		// birth, not a shared write.
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if prev, seen := writes[obj]; !seen || id.Pos() < prev {
			writes[obj] = id.Pos()
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(s.X)
		}
		return true
	})
	return writes
}

// freeIn reports whether obj is declared outside the literal (a free
// variable of the closure).
func freeIn(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// writtenOutside reports whether the enclosing function writes obj
// somewhere outside the literal.
func writtenOutside(pass *Pass, enc ast.Node, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(enc, func(n ast.Node) bool {
		if n == lit || found {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
