package server

// Service-level tests for the micro-batch lane. The contract under
// test is the one DESIGN.md states as "a batch shares workspaces,
// never fate": batching is invisible in results (byte-identical to
// solo execution) and invisible in failure (one bad job cannot take
// its batchmates down).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"mlpart/internal/faultinject"
)

// batchedFlag reads the batched scheduling annotation off the job
// document.
func batchedFlag(t *testing.T, base, id string) bool {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read job %s: %v", id, err)
	}
	var v struct {
		Batched bool `json:"batched"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal job %s: %v: %s", id, err, data)
	}
	return v.Batched
}

// TestBatchedVsSoloByteIdentity is the determinism e2e of the batching
// tentpole: a 50-job mixed-size burst run once through a batching
// server and once through a plain one, with the result cache disabled
// on both so every job computes, must produce byte-identical result
// documents job for job. Small jobs ride the batch lane on server A
// and the solo lane on server B; large jobs run solo on both.
func TestBatchedVsSoloByteIdentity(t *testing.T) {
	small := testHGR(t, 6, 6)   // ~120 pins: under the batch limit
	large := testHGR(t, 16, 16) // ~960 pins: always solo

	sA, hsA := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64, CacheCap: -1,
		BatchPinLimit: 300, BatchMax: 8, BatchWorkers: 2,
		BatchDelay: 2 * time.Millisecond,
	})
	sB, hsB := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64, CacheCap: -1,
	})

	const jobs = 50
	bodies := make([][]byte, jobs)
	wantBatched := make([]bool, jobs)
	for i := range bodies {
		hgr := small
		wantBatched[i] = true
		if i%5 == 4 { // every fifth job is too large to batch
			hgr = large
			wantBatched[i] = false
		}
		k := 2
		if i%2 == 1 {
			k = 4
		}
		bodies[i] = submitBody(t, hgr, k, map[string]any{"seed": int64(1000 + i), "starts": 2}, nil)
	}

	run := func(base string) ([]string, [][]byte) {
		ids := make([]string, jobs)
		for i, body := range bodies {
			code, v, data := postJob(t, base, body)
			if code != http.StatusAccepted {
				t.Fatalf("submit %d: status %d: %s", i, code, data)
			}
			ids[i] = v.ID
		}
		results := make([][]byte, jobs)
		for i, id := range ids {
			v := waitTerminal(t, base, id)
			if v.Status != string(StatusCompleted) {
				t.Fatalf("job %d (%s) ended %q, want completed", i, id, v.Status)
			}
			results[i], _ = getResult(t, base, id)
		}
		return ids, results
	}

	idsA, resA := run(hsA.URL)
	_, resB := run(hsB.URL)

	for i := range resA {
		if !bytes.Equal(resA[i], resB[i]) {
			t.Errorf("job %d: batched result differs from solo result (%d vs %d bytes)",
				i, len(resA[i]), len(resB[i]))
		}
	}

	// The scheduling annotation must match the routing rule on A.
	for i, id := range idsA {
		if got := batchedFlag(t, hsA.URL, id); got != wantBatched[i] {
			t.Errorf("job %d: batched = %v, want %v", i, got, wantBatched[i])
		}
	}

	repA, repB := sA.Stats(), sB.Stats()
	if want := int64(jobs - jobs/5); repA.Batched != want {
		t.Errorf("server A batched %d jobs, want %d", repA.Batched, want)
	}
	if repA.BatchFlushes == 0 {
		t.Errorf("server A batched %d jobs with zero flushes", repA.Batched)
	}
	if repB.Batched != 0 || repB.BatchFlushes != 0 {
		t.Errorf("server B (batching off) reports batched %d, flushes %d", repB.Batched, repB.BatchFlushes)
	}
	checkQuiescedLedger(t, sA)
	checkQuiescedLedger(t, sB)
}

// TestBatchPanicIsolation pins a panic onto exactly one job of a full
// batch and asserts per-job fault isolation: the victim fails alone
// with a typed "internal" error while every batchmate completes with
// a servable result.
func TestBatchPanicIsolation(t *testing.T) {
	const jobs = 6
	const victim = 3 // 0-based admission seq of the poisoned job

	s, hs := newTestServer(t, Config{
		Workers: 1, QueueDepth: 16, CacheCap: -1,
		MaxRetries:    -1, // no retries: the panic must be terminal
		BatchPinLimit: 1 << 20, BatchMax: jobs, BatchWorkers: 1,
		BatchDelay: 50 * time.Millisecond, // linger long enough to fill one batch
		Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{
			faultinject.OnStart(faultinject.SiteServerBatch, faultinject.KindPanic, 1, victim),
		}},
	})

	hgr := testHGR(t, 6, 6)
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		body := submitBody(t, hgr, 2, map[string]any{"seed": int64(i)}, nil)
		code, v, data := postJob(t, hs.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, code, data)
		}
		ids[i] = v.ID
	}

	for i, id := range ids {
		v := waitTerminal(t, hs.URL, id)
		if i == victim {
			if v.Status != string(StatusFailed) {
				t.Fatalf("victim job %s ended %q, want failed", id, v.Status)
			}
			if v.Error == nil || v.Error.Code != "internal" {
				t.Fatalf("victim job %s error = %+v, want code internal", id, v.Error)
			}
			continue
		}
		if v.Status != string(StatusCompleted) {
			t.Errorf("batchmate %d (%s) ended %q, want completed", i, id, v.Status)
			continue
		}
		if res, _ := getResult(t, hs.URL, id); len(res) == 0 {
			t.Errorf("batchmate %d (%s): empty result document", i, id)
		}
	}

	rep := s.Stats()
	if rep.Batched != jobs {
		t.Errorf("batched %d, want %d", rep.Batched, jobs)
	}
	if rep.Failed != 1 || rep.Completed != jobs-1 {
		t.Errorf("ledger: completed %d failed %d, want %d/%d", rep.Completed, rep.Failed, jobs-1, 1)
	}
	checkQuiescedLedger(t, s)
}

// TestBatchCorruptFallsBackSolo checks the distrust rule: an injected
// workspace corruption at the batch site makes the job re-run on
// fresh solo workspaces within the same attempt, and the result is
// still the deterministic document.
func TestBatchCorruptFallsBackSolo(t *testing.T) {
	hgr := testHGR(t, 6, 6)
	body := submitBody(t, hgr, 2, map[string]any{"seed": int64(42)}, nil)

	// Reference: plain solo server.
	_, hsRef := newTestServer(t, Config{CacheCap: -1})
	code, vRef, data := postJob(t, hsRef.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d: %s", code, data)
	}
	want := finishOne(t, hsRef.URL, vRef.ID)

	s, hs := newTestServer(t, Config{
		Workers: 1, QueueDepth: 16, CacheCap: -1,
		BatchPinLimit: 1 << 20, BatchWorkers: 1,
		Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{
			faultinject.On(faultinject.SiteServerBatch, faultinject.KindCorrupt, 1),
		}},
	})
	code, v, data := postJob(t, hs.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	got := finishOne(t, hs.URL, v.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("corrupt-fallback result differs from solo result (%d vs %d bytes)", len(got), len(want))
	}
	if !batchedFlag(t, hs.URL, v.ID) {
		t.Errorf("corrupt-fallback job lost its batched annotation")
	}
	checkQuiescedLedger(t, s)
}

// finishOne waits for completion and returns the result document.
func finishOne(t *testing.T, base, id string) []byte {
	t.Helper()
	v := waitTerminal(t, base, id)
	if v.Status != string(StatusCompleted) {
		t.Fatalf("job %s ended %q, want completed", id, v.Status)
	}
	res, _ := getResult(t, base, id)
	return res
}

// checkQuiescedLedger waits for the in-flight counters to settle and
// then applies the full ledger invariant, including the batch-lane
// counters — on a server that is idle but not yet drained.
func checkQuiescedLedger(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := s.Stats()
		if rep.Queued == 0 && rep.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not quiesce: queued %d running %d", rep.Queued, rep.Running)
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkLedger(t, s)
}
