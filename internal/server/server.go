// Package server is mlpartd: the long-running partitioning service
// built on the deterministic multilevel pipeline. It turns the
// one-shot library entry points into a job API with the reliability
// properties a shared daemon needs:
//
//   - Admission control at the edge: a bounded queue with explicit
//     overload shedding. A full queue rejects new submissions with
//     429 + Retry-After — it never blocks the accept loop and never
//     drops a job it already accepted, so every accepted job reaches
//     exactly one terminal status.
//   - Per-job deadlines and client cancellation, flowing into the
//     pipeline's context-aware entry points (BipartitionCtx /
//     QuadrisectCtx); an expired or cancelled job keeps its
//     best-so-far solution.
//   - A result cache keyed by (hypergraph content hash, canonical
//     options fingerprint, k). Results are deterministic, so a cache
//     hit is byte-identical to a recomputation.
//   - Fault isolation per job: a panic — internal or injected through
//     the server.admit / server.job fault sites — fails only the
//     submission or attempt it hit; attempts are retried with backoff
//     up to MaxRetries and then reported as a typed ErrorReport.
//   - Graceful degradation on shutdown: Drain stops admission, gives
//     in-flight and queued jobs a grace period, then winds the rest
//     down cooperatively into the drained terminal status.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"mlpart"
	"mlpart/internal/core"
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/journal"
	"mlpart/internal/server/batcher"
	"mlpart/internal/telemetry"
)

// Config tunes the service. The zero value selects production-shaped
// defaults; see the field comments.
type Config struct {
	// QueueDepth bounds the admission queue (default 64). A full
	// queue sheds new submissions with 429 + Retry-After.
	QueueDepth int
	// Workers is the number of concurrent job executors (default
	// min(4, GOMAXPROCS)). Parallelism *within* a job is the job's
	// own options.parallelism.
	Workers int
	// DefaultTimeout is the per-job deadline applied when a
	// submission names none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 5m).
	MaxTimeout time.Duration
	// DrainTimeout is the grace period Drain gives in-flight and
	// queued jobs before cancelling them into the drained status
	// (default 10s).
	DrainTimeout time.Duration
	// RetryAfter is the client backoff hint attached to overload and
	// draining rejections (default 1s).
	RetryAfter time.Duration
	// MaxRetries is how many extra execution attempts a job gets
	// after an attempt dies without a usable solution (default 1;
	// negative disables retries).
	MaxRetries int
	// RetryBackoff is the base delay between job attempts; the nth
	// retry waits n*RetryBackoff (default 5ms).
	RetryBackoff time.Duration
	// CacheCap bounds the result cache in entries (default 256;
	// negative disables caching).
	CacheCap int
	// MaxBodyBytes bounds a submission's request body (default 64MiB).
	MaxBodyBytes int64
	// Limits are the netlist parser resource limits applied to
	// submitted hypergraphs (zero fields select the defaults).
	Limits hypergraph.Limits
	// JournalPath names the write-ahead job journal. Empty disables
	// crash durability: jobs live only in memory, exactly the
	// pre-journal behavior. When set, New replays the journal before
	// admitting anything — closed jobs become queryable tombstones,
	// accepted-but-unfinished jobs are re-enqueued — and every
	// accepted job is journaled and synced before its 202 response.
	JournalPath string
	// JournalAppendHook, when non-nil, runs after every durable
	// journal append with the 1-based append count. The crash harness
	// uses it to SIGKILL the process at exact journal positions.
	JournalAppendHook func(n int)
	// BatchPinLimit routes accepted jobs whose hypergraph has at most
	// this many pins onto the micro-batch lane: small jobs are
	// coalesced into batches and executed back-to-back on a shared
	// workspace session, amortizing per-job setup. 0 (the default)
	// disables batching entirely. Result bytes are identical either
	// way — batching is a throughput decision, never a result one.
	BatchPinLimit int
	// BatchMax cuts a batch at this many jobs (default 8); BatchDelay
	// is the linger before a partial batch is cut (default 2ms);
	// BatchWorkers is the number of batch executors, each owning one
	// workspace session (default 1).
	BatchMax     int
	BatchDelay   time.Duration
	BatchWorkers int
	// EventBuffer is the per-subscriber event channel capacity
	// (default 16); a subscriber that falls this far behind is dropped
	// rather than ever blocking the job. EventHistory bounds each
	// job's replayable event history (default 64) — the window
	// Last-Event-ID resume can reach back into.
	EventBuffer  int
	EventHistory int
	// ProgressInterval is the period of the progress events a running
	// job's stream carries (default 250ms; negative disables them).
	ProgressInterval time.Duration
	// Inject arms deterministic fault injection at the server.admit
	// and server.job sites. Per-submission injectors are derived from
	// the admission sequence number — every submission consumes one,
	// accepted or not — so a plan entry with Start s targets the s-th
	// submission; the retry index is the job's attempt number. The
	// journal.append and journal.replay sites use the fixed derivation
	// (start 0, retry 0) with OnHit counting appends / replayed frames.
	// Nil adds one pointer check per site.
	Inject *faultinject.Plan
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = min(4, core.DefaultWorkers())
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.CacheCap == 0 {
		c.CacheCap = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.BatchWorkers == 0 {
		c.BatchWorkers = 1
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = 16
	}
	if c.EventHistory == 0 {
		c.EventHistory = 64
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	return c
}

// Validate rejects nonsensical configurations and malformed fault
// plans.
func (c Config) Validate() error {
	if c.QueueDepth < 0 {
		return fmt.Errorf("server: negative queue depth %d", c.QueueDepth)
	}
	if c.Workers < 0 {
		return fmt.Errorf("server: negative worker count %d", c.Workers)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"default timeout", c.DefaultTimeout},
		{"max timeout", c.MaxTimeout},
		{"drain timeout", c.DrainTimeout},
		{"retry-after", c.RetryAfter},
		{"retry backoff", c.RetryBackoff},
		{"batch delay", c.BatchDelay},
	} {
		if d.v < 0 {
			return fmt.Errorf("server: negative %s %v", d.name, d.v)
		}
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"batch pin limit", c.BatchPinLimit},
		{"batch max", c.BatchMax},
		{"batch worker count", c.BatchWorkers},
		{"event buffer", c.EventBuffer},
		{"event history", c.EventHistory},
	} {
		if n.v < 0 {
			return fmt.Errorf("server: negative %s %d", n.name, n.v)
		}
	}
	return c.Inject.Validate()
}

// Server is one mlpartd instance. Create it with New, serve Handler,
// and stop it with Drain (graceful) or Close (prompt).
type Server struct {
	cfg Config
	// stats is owned by the server instance — never package-level
	// (see the telemetry-thread lint rule).
	stats *telemetry.ServiceCollector
	t0    time.Time

	// runCtx gates job execution: it is cancelled when the drain
	// grace period expires (or on Close), winding running jobs down
	// cooperatively and short-circuiting still-queued ones into the
	// drained status.
	runCtx    context.Context
	runCancel context.CancelFunc

	// jnl is the write-ahead job journal; nil when JournalPath is
	// empty. Lifecycle appends happen under mu, which serializes them
	// against the state transitions they record.
	jnl *journal.Writer

	// batch is the micro-batch lane; nil when BatchPinLimit is 0.
	// sessions holds one shared-workspace session per batch worker —
	// a session is single-goroutine, and each batch worker runs its
	// batches serially, so worker w exclusively owns sessions[w].
	batch    *batcher.Batcher[*job]
	sessions []*mlpart.Session

	// svcEvents is the service-wide ledger event stream (/v1/events).
	svcEvents *eventLog

	// mu guards jobs, seq, draining, idem, batchPending, every queue
	// send, and every job state transition.
	mu       sync.Mutex
	jobs     map[string]*job
	seq      int
	draining bool
	queue    chan *job
	// batchPending counts jobs accepted onto the batch lane that have
	// not started executing — the lane's own occupancy for the
	// overload shed, mirroring len(queue) on the solo lane.
	batchPending int
	cache        *resultCache
	// idem maps an Idempotency-Key to the job it first admitted, plus
	// that job's cache key for conflict detection. Rebuilt from the
	// journal on restart.
	idem map[string]idemEntry

	workersDone chan struct{} // closed when every worker has exited
	drainOnce   sync.Once
	drained     chan struct{} // closed when a drain has fully finished
}

// idemEntry records which job an Idempotency-Key admitted and the
// request identity it covered.
type idemEntry struct {
	id  string
	key cacheKey
}

// New starts a server; the worker pool is live on return. When a
// journal is configured, New first replays it — replay happens before
// the queue exists and before any worker starts, so recovered state
// can never race live traffic ("replay before admit").
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	//mllint:ignore ctx-thread the run context is rooted at the server's lifetime, not any request; Drain/Close own its cancellation
	runCtx, runCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		stats:       &telemetry.ServiceCollector{},
		t0:          time.Now(),
		runCtx:      runCtx,
		runCancel:   runCancel,
		jobs:        make(map[string]*job),
		cache:       newResultCache(cfg.CacheCap),
		idem:        make(map[string]idemEntry),
		workersDone: make(chan struct{}),
		drained:     make(chan struct{}),
	}
	s.svcEvents = newEventLog(cfg.EventHistory)

	var recovered []*job
	if cfg.JournalPath != "" {
		var err error
		recovered, err = s.recoverJournal()
		if err != nil {
			runCancel()
			return nil, err
		}
	}
	// Recovered jobs get dedicated queue slots on top of QueueDepth:
	// recovery must never trip the overload shed for jobs the previous
	// process already acknowledged.
	s.queue = make(chan *job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		// Recovered jobs always run on the solo lane: crash-replay must
		// reproduce the acknowledged jobs' bytes, and solo execution is
		// the identity the batch lane is held to anyway.
		j.events = newEventLog(cfg.EventHistory)
		s.jobs[j.id] = j
		s.stats.Accept()
		s.stats.RecoverJob()
		s.queue <- j
		s.publishJobEvent(j, "queued", StatusQueued, 0, false)
	}

	if cfg.BatchPinLimit > 0 {
		s.sessions = make([]*mlpart.Session, cfg.BatchWorkers)
		for i := range s.sessions {
			s.sessions[i] = mlpart.NewSession()
		}
		s.batch = batcher.New(batcher.Config{
			MaxBatch: cfg.BatchMax,
			MaxDelay: cfg.BatchDelay,
			Workers:  cfg.BatchWorkers,
		}, s.runBatch)
	}

	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(s.workersDone)
	}()
	return s, nil
}

// Stats snapshots the service counters.
func (s *Server) Stats() telemetry.ServiceReport {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return s.stats.Snapshot(s.cfg.QueueDepth, draining, time.Since(s.t0).Nanoseconds())
}

// Draining reports whether the server has stopped admitting.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the service down: stop admitting (new
// submissions get 503 + Retry-After), give in-flight and queued jobs
// DrainTimeout to finish, then cancel the rest cooperatively — they
// end in the drained terminal status with any best-so-far solution
// attached. Drain returns when every accepted job has reached a
// terminal status and all workers have exited, or when ctx expires
// (the wind-down continues in the background). Safe to call more
// than once; later calls wait for the first drain.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		// Safe to close here: every send happens under mu after
		// re-checking draining, so no sender can be mid-send now.
		close(s.queue)
		s.mu.Unlock()
		go func() {
			grace := time.AfterFunc(s.cfg.DrainTimeout, s.runCancel)
			<-s.workersDone
			// The batch lane drains after the solo workers: Close cuts
			// any lingering partial batch and waits for the batch
			// workers; the grace timer stays armed over both waits, so
			// a hung batched job is still cancelled into drained.
			if s.batch != nil {
				s.batch.Close()
			}
			grace.Stop()
			s.runCancel()
			// Every accepted job is terminal once the workers exit, so
			// the journal has received its last lifecycle record; sync
			// and close it before reporting the drain complete.
			if s.jnl != nil {
				_ = s.jnl.Close()
			}
			// The service-wide stream ends with a drained event; its
			// subscribers' channels close, ending their streams.
			s.svcEvents.publish("drained", mustJSON(svcDelta{Change: "drained"}), true)
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the service promptly: running jobs are cancelled
// immediately (they still wind down cooperatively into drained) and
// queued jobs are drained without running. Every accepted job still
// reaches a terminal status before Close returns.
func (s *Server) Close() error {
	s.runCancel()
	//mllint:ignore ctx-thread Close blocks until the wind-down completes by contract; there is no caller deadline to honor
	return s.Drain(context.Background())
}

// rejection is a structured pre-admission refusal.
type rejection struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

// admitJob registers and enqueues a submission that has already been
// parsed and hashed. timeout is the validated per-job deadline (0
// selects DefaultTimeout). It returns the job on acceptance — with
// replayed=true when an Idempotency-Key matched an earlier admission
// and no new job was created — or a rejection. A panic out of
// admitJob (the server.admit fault site) unwinds into the handler's
// recover barrier and rejects only this submission; mu is released by
// the deferred Unlock.
//
// Journal-before-acknowledge: when a journal is configured, the
// accepted record is appended and synced while still holding mu,
// before the job becomes visible — so no response, queue slot, or
// counter ever refers to a job the journal does not know about. A
// failed append rejects the submission with 503 journal_error rather
// than accepting a job that a crash would silently lose.
func (s *Server) admitJob(h *mlpart.Hypergraph, k int, opt mlpart.Options, timeout time.Duration, wantStats bool, key cacheKey, idemKey string, reqBytes []byte) (*job, bool, *rejection) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Idempotent replay answers before the draining check: returning
	// an already-admitted job is a read, not new work.
	if idemKey != "" {
		if e, ok := s.idem[idemKey]; ok {
			if e.key != key {
				return nil, false, &rejection{status: 409, code: "idempotency_conflict",
					msg: fmt.Sprintf("Idempotency-Key already used by job %s for a different request", e.id)}
			}
			if j, ok := s.jobs[e.id]; ok {
				s.stats.IdempotentReplay()
				return j, true, nil
			}
		}
	}

	if s.draining {
		s.stats.RejectDraining()
		return nil, false, &rejection{status: 503, code: "draining", msg: "server is draining; not accepting jobs", retryAfter: s.cfg.RetryAfter}
	}

	// Every submission consumes a sequence number, accepted or not:
	// an injected admission panic must not re-target the next
	// submission forever.
	seq := s.seq
	s.seq++

	if inj := s.cfg.Inject.NewInjector(seq, 0); inj != nil {
		switch inj.Fire(faultinject.SiteServerAdmit) {
		case faultinject.ActCancel:
			// Shed as if the queue were full — the deterministic
			// overload path.
			s.stats.RejectQueueFull()
			return nil, false, &rejection{status: 429, code: "queue_full", msg: "admission shed (injected)", retryAfter: s.cfg.RetryAfter}
		case faultinject.ActCorrupt:
			// Nothing to corrupt at admission; no-op.
		}
	}

	j := &job{
		id:        fmt.Sprintf("j-%06d", seq),
		seq:       seq,
		h:         h,
		k:         k,
		opt:       opt,
		key:       key,
		timeout:   timeout,
		wantStats: wantStats,
		idemKey:   idemKey,
		status:    StatusQueued,
		cancelc:   make(chan struct{}),
		done:      make(chan struct{}),
		events:    newEventLog(s.cfg.EventHistory),
	}

	// Admission-time cache lookup: a hit completes the job without
	// consuming a queue slot. The accepted record is still journaled
	// first — the terminal record finishLocked writes must never be a
	// job's first journal appearance.
	if res, ok := s.cache.get(key); ok && !s.cacheBypassed(seq) {
		if rej := s.journalAcceptLocked(j, reqBytes); rej != nil {
			return nil, false, rej
		}
		s.jobs[j.id] = j
		s.registerIdemLocked(j)
		s.stats.Accept()
		s.stats.CacheHit()
		s.publishJobEvent(j, "queued", StatusQueued, 0, false)
		j.cacheHit = true
		r := res
		s.finishLocked(j, StatusCompleted, &r, nil, true)
		return j, false, nil
	}

	// Batch-lane routing: small jobs are coalesced instead of taking a
	// solo queue slot. The lane has its own occupancy bound (mirroring
	// QueueDepth) so a flood of small jobs sheds with 429 exactly like
	// the solo lane. The Add below cannot race Close: both the Add and
	// the draining flag live under mu, and Close runs only after
	// draining is set.
	if s.batch != nil && j.h.NumPins() <= s.cfg.BatchPinLimit {
		if s.batchPending >= s.cfg.QueueDepth {
			s.stats.RejectQueueFull()
			return nil, false, &rejection{status: 429, code: "queue_full", msg: fmt.Sprintf("batch lane full (%d jobs)", s.cfg.QueueDepth), retryAfter: s.cfg.RetryAfter}
		}
		if rej := s.journalAcceptLocked(j, reqBytes); rej != nil {
			return nil, false, rej
		}
		j.batched = true
		s.batchPending++
		s.jobs[j.id] = j
		s.registerIdemLocked(j)
		s.stats.Accept()
		s.stats.CacheMiss()
		s.batch.Add(j)
		s.publishJobEvent(j, "queued", StatusQueued, 0, false)
		return j, false, nil
	}

	// Capacity check before the journal append: sends happen only
	// under mu, and workers only drain the queue, so a free slot seen
	// here is still free after the append — the send below cannot
	// block, and we never journal a job we end up shedding.
	if len(s.queue) == cap(s.queue) {
		s.stats.RejectQueueFull()
		return nil, false, &rejection{status: 429, code: "queue_full", msg: fmt.Sprintf("admission queue full (%d jobs)", s.cfg.QueueDepth), retryAfter: s.cfg.RetryAfter}
	}
	if rej := s.journalAcceptLocked(j, reqBytes); rej != nil {
		return nil, false, rej
	}
	s.queue <- j
	s.jobs[j.id] = j
	s.registerIdemLocked(j)
	s.stats.Accept()
	s.stats.CacheMiss()
	s.publishJobEvent(j, "queued", StatusQueued, 0, false)
	return j, false, nil
}

// journalAcceptLocked makes the accepted record durable before the
// job becomes visible; callers hold mu. A nil return means the record
// is synced (or journaling is off); otherwise the submission must be
// rejected — the one failure mode that may never be absorbed, because
// acknowledging a job the journal lost breaks crash durability.
func (s *Server) journalAcceptLocked(j *job, reqBytes []byte) *rejection {
	err := s.journalAppend(journal.Record{
		Type:        journal.TypeAccepted,
		ID:          j.id,
		Seq:         j.seq,
		ContentHash: j.key.content,
		Fingerprint: j.key.fingerprint,
		K:           j.k,
		IdemKey:     j.idemKey,
		Request:     reqBytes,
	})
	if err == nil {
		return nil
	}
	s.stats.JournalAppendError()
	return &rejection{status: 503, code: "journal_error",
		msg: "could not journal the submission: " + err.Error(), retryAfter: s.cfg.RetryAfter}
}

// registerIdemLocked records the job's Idempotency-Key; callers hold
// mu and have already checked for a conflicting prior use.
func (s *Server) registerIdemLocked(j *job) {
	if j.idemKey != "" {
		s.idem[j.idemKey] = idemEntry{id: j.id, key: j.key}
	}
}

// journalAppend appends one lifecycle record, converting an injected
// panic at the journal.append site into an error: a journaling fault
// must fail the record, never the worker goroutine (or the process)
// that hit it. Returns nil when journaling is off.
func (s *Server) journalAppend(rec journal.Record) (err error) {
	if s.jnl == nil {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("journal append panicked: %v", v)
		}
	}()
	return s.jnl.Append(rec)
}

// cacheBypassed reports whether the fault plan arms a corrupt fault
// at server.job for submission seq — interpreted as "treat the cache
// as untrusted for this job": the job skips the result cache and
// recomputes (degraded throughput, still-correct result). This is a
// static scan, not an injector Fire: probing by firing would trigger
// panic entries outside the attempt's recover barrier.
func (s *Server) cacheBypassed(seq int) bool {
	if s.cfg.Inject == nil {
		return false
	}
	for _, e := range s.cfg.Inject.Entries {
		if e.Site == faultinject.SiteServerJob && e.Kind == faultinject.KindCorrupt &&
			(e.Start == faultinject.AnyStart || e.Start == seq) {
			return true
		}
	}
	return false
}

// finishLocked moves j to a terminal status exactly once; callers
// hold mu. fromQueue records whether the job never started running.
// The exactly-once guarantee extends to the journal: the terminal
// record is appended on the one transition that flips the status, so
// a journal can never carry two terminal records for an id. An append
// failure here is absorbed (counted, not surfaced): the job's
// terminal state stands in memory, and the worst a crash can do is
// re-run a finished job — recomputation is byte-identical.
func (s *Server) finishLocked(j *job, st Status, res *Result, rep *ErrorReport, fromQueue bool) {
	if j.status.Terminal() {
		return
	}
	j.status = st
	j.result = res
	j.errrep = rep
	if err := s.journalAppend(journal.Record{Type: journal.TypeTerminal, ID: j.id, Seq: j.seq, Status: string(st)}); err != nil {
		s.stats.JournalAppendError()
	}
	s.stats.FinishJob(string(st), fromQueue)
	close(j.done)
	// The terminal event ends the job's stream: subscribers get it and
	// their channels close.
	s.publishJobEvent(j, string(st), st, 0, true)
}

// Cancel requests client cancellation of a job. A queued job is
// cancelled immediately; a running one is interrupted cooperatively
// and keeps its best-so-far solution. Cancelling a terminal job is a
// no-op. The second return reports whether the job exists.
func (s *Server) Cancel(id string) (view, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return view{}, false
	}
	if !j.status.Terminal() && !j.cancelRequested {
		j.cancelRequested = true
		close(j.cancelc)
		if j.status == StatusQueued {
			// The worker will observe the terminal status and skip it.
			s.finishLocked(j, StatusCancelled, nil, nil, true)
		}
	}
	return j.snapshotLocked(), true
}

// Job returns the current state of a job.
func (s *Server) Job(id string) (view, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return view{}, false
	}
	return j.snapshotLocked(), true
}

// WaitJob blocks until the job reaches a terminal status or ctx
// expires. The bool reports whether the job exists.
func (s *Server) WaitJob(ctx context.Context, id string) (view, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return view{}, false, nil
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return view{}, true, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshotLocked(), true, nil
}

// runJob executes one dequeued job to a terminal status on the solo
// lane: fresh workspaces per attempt.
func (s *Server) runJob(j *job) { s.runJobWith(j, nil) }

// runBatch is the batch lane's executor, invoked by the batcher once
// per cut batch. The batch shares worker w's workspace session —
// never fate: each job runs through the same panic-isolated attempt
// machinery as a solo job, so a poisoned job fails (or retries on a
// fresh workspace) while its batchmates complete normally. The flush
// counter is bumped before any job counts as batched, keeping the
// batched > 0 => batch_flushes > 0 ledger invariant true at every
// sampling instant.
func (s *Server) runBatch(w int, batch []*job) {
	s.stats.BatchFlush()
	for _, j := range batch {
		s.mu.Lock()
		s.batchPending--
		s.mu.Unlock()
		s.stats.BatchJob()
		s.runJobWith(j, s.sessions[w])
	}
}

// runJobWith executes one job to a terminal status, optionally on a
// shared-workspace session (batch lane).
func (s *Server) runJobWith(j *job, sess *mlpart.Session) {
	s.mu.Lock()
	if j.status.Terminal() {
		// Cancelled while queued; already terminal.
		s.mu.Unlock()
		return
	}
	if s.runCtx.Err() != nil {
		// The drain grace period expired before the job ran.
		s.finishLocked(j, StatusDrained, nil, nil, true)
		s.mu.Unlock()
		return
	}
	j.status = StatusRunning
	s.stats.StartJob()
	s.publishJobEvent(j, "started", StatusRunning, 0, false)
	// The started record is advisory (recovery re-enqueues on
	// accepted-without-terminal either way), so a failed append only
	// bumps the counter.
	if err := s.journalAppend(journal.Record{Type: journal.TypeStarted, ID: j.id, Seq: j.seq}); err != nil {
		s.stats.JournalAppendError()
	}
	// Execution-time cache recheck: an identical job may have
	// completed while this one sat in the queue.
	if res, ok := s.cache.get(j.key); ok && !s.cacheBypassed(j.seq) {
		j.cacheHit = true
		r := res
		s.finishLocked(j, StatusCompleted, &r, nil, false)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Job context: deadline + client cancellation + drain/stop.
	deadline := s.cfg.DefaultTimeout
	if j.timeout > 0 {
		deadline = j.timeout
	}
	dctx, dcancel := context.WithTimeout(s.runCtx, deadline)
	jctx, jcancel := context.WithCancel(dctx)
	defer dcancel()
	defer jcancel()
	watch := make(chan struct{})
	defer close(watch)
	go func() {
		select {
		case <-j.cancelc:
			jcancel()
		case <-watch:
		}
	}()

	// Periodic progress heartbeats on the job's event stream while it
	// executes. A tick racing the terminal transition is harmless: the
	// event log refuses publishes after its terminal event.
	if s.cfg.ProgressInterval > 0 {
		tick := time.NewTicker(s.cfg.ProgressInterval)
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-tick.C:
					s.publishJobEvent(j, "progress", StatusRunning, 0, false)
				case <-watch:
					return
				}
			}
		}()
	}

	st, res, rep, report, interrupted, attempts := s.execute(jctx, dctx, j, sess)

	s.mu.Lock()
	j.attempts = attempts
	j.interrupted = interrupted
	j.report = report
	if st == StatusCompleted && res != nil && rep == nil && !interrupted {
		s.cache.put(j.key, *res)
	}
	s.finishLocked(j, st, res, rep, false)
	s.mu.Unlock()
}

// execute runs the job's attempts to a classification: terminal
// status, result, error report, telemetry report, interrupted flag,
// and attempt count. sess, when non-nil, is the batch lane's shared
// workspace session — used for the first attempt only: a retry
// follows a failure that may have left the shared workspaces poisoned
// mid-operation, so every retry runs on fresh solo workspaces (bytes
// are identical either way).
func (s *Server) execute(jctx, dctx context.Context, j *job, sess *mlpart.Session) (Status, *Result, *ErrorReport, *telemetry.Report, bool, int) {
	retries := s.cfg.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var firstErr error
	attempts := 0
	for attempt := 0; attempt <= retries; attempt++ {
		attemptSess := sess
		if attempt > 0 {
			attemptSess = nil
			s.stats.Retry()
			s.publishJobEvent(j, "retrying", StatusRunning, attempt+1, false)
			select {
			case <-time.After(time.Duration(attempt) * s.cfg.RetryBackoff):
			case <-jctx.Done():
			}
		}
		attempts = attempt + 1

		p, info, report, err := s.attempt(jctx, j, attempt, attemptSess)

		// Classification order matters: an interruption cause wins
		// over whatever partial error the wind-down produced, and
		// client cancel > drain > deadline (when one fires, the
		// derived contexts all read done).
		switch {
		case j.clientCancelled():
			return StatusCancelled, s.resultOf(j, p, info), nil, report, true, attempts
		case s.runCtx.Err() != nil:
			return StatusDrained, s.resultOf(j, p, info), nil, report, true, attempts
		case errors.Is(dctx.Err(), context.DeadlineExceeded):
			return StatusDeadlineExceeded, s.resultOf(j, p, info), nil, report, true, attempts
		case err == nil && p != nil:
			return StatusCompleted, s.resultOf(j, p, info), nil, report, info.Interrupted, attempts
		case p != nil:
			// Recovered fault with a feasible degraded solution: keep
			// it, report the fault, do not cache (see runJob).
			return StatusCompleted, s.resultOf(j, p, info), &ErrorReport{
				Code: errCode(err), Message: err.Error(), Attempts: attempts,
			}, report, info.Interrupted, attempts
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr == nil {
		firstErr = errors.New("server: job produced no solution")
	}
	return StatusFailed, nil, &ErrorReport{
		Code: errCode(firstErr), Message: firstErr.Error(), Attempts: attempts,
	}, nil, false, attempts
}

// attempt runs one panic-isolated execution attempt, on sess's shared
// workspaces when non-nil (batch lane) and on fresh ones otherwise.
func (s *Server) attempt(ctx context.Context, j *job, attempt int, sess *mlpart.Session) (p *mlpart.Partition, info mlpart.Info, report *telemetry.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, report = nil, nil
			// Same typed error the pipeline's own guards produce, so
			// the ErrorReport classifies it as "internal".
			err = &core.PanicError{Stage: "server.job", Level: -1, Value: v, Stack: debug.Stack()}
		}
	}()

	if inj := s.cfg.Inject.NewInjector(j.seq, attempt); inj != nil {
		// The batch fault site, hit only on the batch lane. Panic
		// unwinds into the recover above and fails this job alone — the
		// worker's loop in runBatch never sees it, so batchmates run
		// unaffected; corrupt models a distrusted shared workspace (the
		// job falls back to fresh solo workspaces, same bytes); cancel
		// emulates a client cancel; delay stalls the batch worker.
		if sess != nil {
			switch inj.Fire(faultinject.SiteServerBatch) {
			case faultinject.ActCancel:
				s.Cancel(j.id)
			case faultinject.ActCorrupt:
				sess = nil
			}
		}
		// The job fault site. Panic unwinds into the recover above and
		// consumes one attempt; delay eats into the deadline; cancel
		// emulates a client cancellation; corrupt is handled at the
		// cache layer (cacheBypassed), so it is a no-op here.
		if inj.Fire(faultinject.SiteServerJob) == faultinject.ActCancel {
			s.Cancel(j.id)
		}
	}

	// Telemetry is always armed: the per-stage wall-clock profile
	// feeds the mlpart-bench/1 view of /statsz. The report reaches the
	// client only when the job asked for stats.
	opt := j.opt
	opt.Telemetry = mlpart.NewTelemetry()
	switch {
	case j.k == 2 && sess != nil:
		p, info, err = sess.BipartitionCtx(ctx, j.h, opt)
	case j.k == 2:
		p, info, err = mlpart.BipartitionCtx(ctx, j.h, opt)
	case j.k == 4 && sess != nil:
		p, info, err = sess.QuadrisectCtx(ctx, j.h, opt)
	case j.k == 4:
		p, info, err = mlpart.QuadrisectCtx(ctx, j.h, opt)
	default:
		return nil, mlpart.Info{}, nil, fmt.Errorf("server: bad k %d", j.k)
	}
	report = opt.Telemetry.Report()
	if err == nil && p != nil {
		var t telemetry.StageTimings
		for _, ps := range report.PerStart {
			t.CoarsenNS += ps.Timings.CoarsenNS
			t.RefineNS += ps.Timings.RefineNS
			t.ProjectNS += ps.Timings.ProjectNS
			t.RebalanceNS += ps.Timings.RebalanceNS
			t.TotalNS += ps.Timings.TotalNS
		}
		s.stats.AddStage(j.k, info.Cut, info.Levels, t)
	}
	if !j.wantStats {
		report = nil
	}
	return p, info, report, err
}

// resultOf assembles the deterministic result document, or nil when
// the attempt produced no feasible partition.
func (s *Server) resultOf(j *job, p *mlpart.Partition, info mlpart.Info) *Result {
	if p == nil {
		return nil
	}
	parts := make([]int32, len(p.Part))
	copy(parts, p.Part)
	return &Result{
		ContentHash: j.key.content,
		Fingerprint: j.key.fingerprint,
		K:           j.k,
		Cut:         info.Cut,
		SumDegrees:  info.SumDegrees,
		Levels:      info.Levels,
		Partition:   parts,
	}
}

// clientCancelled reports whether the client requested cancellation.
func (j *job) clientCancelled() bool {
	select {
	case <-j.cancelc:
		return true
	default:
		return false
	}
}

// errCode classifies a pipeline error for the ErrorReport.
func errCode(err error) string {
	var ierr *mlpart.InternalError
	if errors.As(err, &ierr) {
		return "internal"
	}
	var aerr *mlpart.AuditError
	if errors.As(err, &aerr) {
		return "audit"
	}
	return "error"
}
