package batcher

import (
	"sync"
	"testing"
	"time"
)

// collect is a test run callback recording every batch it executes.
type collect struct {
	mu      sync.Mutex
	batches [][]int
	workers map[int]bool
}

func (c *collect) run(w int, batch []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := append([]int(nil), batch...)
	c.batches = append(c.batches, cp)
	if c.workers == nil {
		c.workers = make(map[int]bool)
	}
	c.workers[w] = true
}

func (c *collect) items() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []int
	for _, b := range c.batches {
		all = append(all, b...)
	}
	return all
}

func TestCutAtMaxBatch(t *testing.T) {
	var c collect
	// A long linger isolates the MaxBatch cut from the timer path.
	b := New(Config{MaxBatch: 3, MaxDelay: time.Hour, Workers: 1}, c.run)
	for i := 0; i < 6; i++ {
		b.Add(i)
	}
	b.Close()

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) != 2 {
		t.Fatalf("got %d batches, want 2: %v", len(c.batches), c.batches)
	}
	for i, batch := range c.batches {
		if len(batch) != 3 {
			t.Errorf("batch %d has %d items, want 3", i, len(batch))
		}
	}
	want := []int{0, 1, 2, 3, 4, 5}
	for i, batch := range c.batches {
		for j, v := range batch {
			if v != want[i*3+j] {
				t.Errorf("batch %d[%d] = %d, want %d (arrival order must be preserved)", i, j, v, want[i*3+j])
			}
		}
	}
	if got := b.Flushes(); got != 2 {
		t.Errorf("Flushes() = %d, want 2", got)
	}
}

func TestLingerFlushesPartialBatch(t *testing.T) {
	var c collect
	b := New(Config{MaxBatch: 100, MaxDelay: 5 * time.Millisecond, Workers: 1}, c.run)
	b.Add(1)
	b.Add(2)

	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.batches)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("linger timer never flushed the partial batch")
		}
		time.Sleep(time.Millisecond)
	}
	c.mu.Lock()
	if got := c.batches[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("linger batch = %v, want [1 2]", got)
	}
	c.mu.Unlock()
	b.Close()
}

func TestCloseDrainsRemainder(t *testing.T) {
	var c collect
	b := New(Config{MaxBatch: 100, MaxDelay: time.Hour, Workers: 2}, c.run)
	for i := 0; i < 5; i++ {
		b.Add(i)
	}
	b.Close() // must cut and run the 5-item remainder before returning
	if got := c.items(); len(got) != 5 {
		t.Fatalf("after Close %d items ran, want 5: %v", len(got), got)
	}
	b.Close() // idempotent
}

func TestConcurrentAddsLoseNothing(t *testing.T) {
	var c collect
	b := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 3}, c.run)
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Add(i)
		}(i)
	}
	wg.Wait()
	b.Close()

	got := c.items()
	if len(got) != n {
		t.Fatalf("%d items ran, want %d", len(got), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("item %d ran twice", v)
		}
		seen[v] = true
	}
	if f := b.Flushes(); f < int64(n/4) {
		t.Errorf("Flushes() = %d, want >= %d (MaxBatch 4 over %d items)", f, n/4, n)
	}
}

func TestFlushAfterCloseIsNoop(t *testing.T) {
	var c collect
	b := New(Config{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 1}, c.run)
	b.Add(1)
	b.Close()
	b.Flush() // the linger timer may fire after Close; must be safe
	if got := c.items(); len(got) != 1 {
		t.Fatalf("%d items ran, want 1", len(got))
	}
}

func TestAddAfterClosePanics(t *testing.T) {
	b := New(Config{}, func(int, []int) {})
	b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Close did not panic")
		}
	}()
	b.Add(1)
}
