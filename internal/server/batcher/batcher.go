// Package batcher coalesces individually-submitted items into
// micro-batches dispatched onto a small worker pool. mlpartd uses it
// to run many small partitioning jobs back-to-back on a shared
// workspace set instead of paying full per-job setup.
//
// Batching policy: an item joins the pending batch; the batch is cut
// and handed to a worker when it reaches MaxBatch items, or MaxDelay
// after its first item arrived (the linger), whichever comes first.
// Close cuts the remainder, so no accepted item is ever stranded.
//
// The batcher moves items and controls timing only — it never looks
// inside an item and never reorders items (a batch preserves arrival
// order, and batches are executed in cut order per worker). Whether
// batching is observable in the items' results is entirely up to the
// run callback; mlpartd's callback guarantees it is not.
package batcher

import (
	"sync"
	"time"
)

// Config tunes a Batcher. The zero value selects the defaults
// documented on each field.
type Config struct {
	// MaxBatch cuts a batch when it holds this many items (default 8).
	MaxBatch int
	// MaxDelay is the linger: a partial batch is cut this long after
	// its first item arrived (default 2ms). 0 selects the default; it
	// is never "cut immediately" — that would make every batch a
	// singleton and defeat batching.
	MaxDelay time.Duration
	// Workers is the number of batch executors (default 1). Each
	// worker runs whole batches serially, so the run callback may keep
	// per-worker state (mlpartd keeps one workspace session per
	// worker).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Batcher collects items of type J into batches. All methods are safe
// for concurrent use.
type Batcher[J any] struct {
	cfg Config
	run func(worker int, batch []J)

	mu      sync.Mutex
	cond    *sync.Cond // signals workers: a batch is ready, or closing
	pending []J        // the batch being assembled
	ready   [][]J      // cut batches awaiting a worker, FIFO
	timer   *time.Timer
	closed  bool
	flushes int64

	wg sync.WaitGroup
}

// New starts a Batcher whose workers invoke run once per cut batch
// (worker is the 0-based executor index, stable for the batcher's
// lifetime). run is called outside the batcher's lock and must not
// call back into the Batcher.
func New[J any](cfg Config, run func(worker int, batch []J)) *Batcher[J] {
	b := &Batcher[J]{cfg: cfg.withDefaults(), run: run}
	b.cond = sync.NewCond(&b.mu)
	b.wg.Add(b.cfg.Workers)
	for w := 0; w < b.cfg.Workers; w++ {
		go b.worker(w)
	}
	return b
}

// Add appends one item to the pending batch, cutting it at MaxBatch
// and arming the linger timer otherwise. Add must not be called after
// Close; the caller's admission gate (mlpartd rejects submissions
// once draining) is what enforces that ordering.
func (b *Batcher[J]) Add(item J) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		panic("batcher: Add after Close")
	}
	b.pending = append(b.pending, item)
	if len(b.pending) >= b.cfg.MaxBatch {
		b.cutLocked()
		return
	}
	if len(b.pending) == 1 {
		// First item of a fresh batch: start its linger. A stale timer
		// from an already-cut batch may still fire; Flush on an empty
		// pending set is a no-op, so that is harmless.
		if b.timer == nil {
			b.timer = time.AfterFunc(b.cfg.MaxDelay, b.Flush)
		} else {
			b.timer.Reset(b.cfg.MaxDelay)
		}
	}
}

// Flush cuts the pending partial batch now (no-op when nothing is
// pending). The linger timer calls it; tests may too.
func (b *Batcher[J]) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		// Close already cut the remainder; a late timer fire after
		// Close must not panic or resurrect work.
		return
	}
	b.cutLocked()
}

// cutLocked moves pending to the ready queue and wakes a worker;
// callers hold mu.
func (b *Batcher[J]) cutLocked() {
	if len(b.pending) == 0 {
		return
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	b.ready = append(b.ready, b.pending)
	b.pending = nil
	b.flushes++
	b.cond.Signal()
}

// Flushes reports how many batches have been cut so far.
func (b *Batcher[J]) Flushes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}

// Close cuts the pending remainder, lets the workers drain every
// ready batch, and returns once all of them have exited. Idempotent.
func (b *Batcher[J]) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.cutLocked()
		if b.timer != nil {
			b.timer.Stop()
		}
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// worker executes ready batches until the queue is empty and the
// batcher closed.
func (b *Batcher[J]) worker(w int) {
	defer b.wg.Done()
	for {
		b.mu.Lock()
		for len(b.ready) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.ready) == 0 {
			b.mu.Unlock()
			return
		}
		batch := b.ready[0]
		b.ready = b.ready[1:]
		if len(b.ready) > 0 {
			// More work remains: wake a sibling before running.
			b.cond.Signal()
		}
		b.mu.Unlock()
		b.run(w, batch)
	}
}
