package server

import (
	"time"

	"mlpart"
	"mlpart/internal/telemetry"
)

// Status is a job's lifecycle state. A job is created queued, moves
// to running at most once, and ends in exactly one terminal status —
// the server's core guarantee: admission control happens only at the
// edge (429/503 before a job exists), so once a job is accepted it is
// never silently dropped.
type Status string

const (
	// StatusQueued: accepted and waiting in the admission queue.
	StatusQueued Status = "queued"
	// StatusRunning: being executed by a worker.
	StatusRunning Status = "running"
	// StatusCompleted: finished with a feasible partition.
	StatusCompleted Status = "completed"
	// StatusFailed: every execution attempt failed without a usable
	// solution; the job carries a typed ErrorReport.
	StatusFailed Status = "failed"
	// StatusCancelled: the client cancelled the job (DELETE).
	StatusCancelled Status = "cancelled"
	// StatusDeadlineExceeded: the per-job deadline expired; any
	// best-so-far partition is attached.
	StatusDeadlineExceeded Status = "deadline-exceeded"
	// StatusDrained: the job was cut short (or never started) because
	// the server was shutting down; any best-so-far partition is
	// attached.
	StatusDrained Status = "drained"
)

// Terminal reports whether s is a terminal status.
func (s Status) Terminal() bool {
	switch s {
	case StatusCompleted, StatusFailed, StatusCancelled, StatusDeadlineExceeded, StatusDrained:
		return true
	}
	return false
}

// ErrorReport is the typed failure record of a failed job — the
// graceful-degradation contract: a job that exhausts its retries
// reports what went wrong instead of taking the process down.
type ErrorReport struct {
	// Code classifies the failure: "internal" (recovered panic),
	// "audit" (invariant violation caught by the audit layer), or
	// "error" (any other pipeline error).
	Code string `json:"code"`
	// Message is the underlying error text.
	Message string `json:"message"`
	// Attempts is how many execution attempts the job used.
	Attempts int `json:"attempts"`
}

// Result is the deterministic result document served at
// /v1/jobs/{id}/result. It is a pure function of (hypergraph content,
// k, options fingerprint): byte-identical across Parallelism values
// and across cache hit vs miss — the server's cache-transparency
// contract. Nondeterministic fields (timings, attempt counts, cache
// provenance) are deliberately excluded; cache provenance travels in
// the X-Mlpartd-Cache response header instead.
type Result struct {
	ContentHash string  `json:"content_hash"`
	Fingerprint string  `json:"fingerprint"`
	K           int     `json:"k"`
	Cut         int     `json:"cut"`
	SumDegrees  int     `json:"sum_degrees"`
	Levels      int     `json:"levels"`
	Partition   []int32 `json:"partition"`
}

// job is one accepted submission. Mutable fields are guarded by the
// server mutex; the immutable inputs (h, opt, k, key) are set at
// admission and read freely by the worker.
type job struct {
	id  string
	seq int // 0-based admission sequence; drives fault derivation

	h   *mlpart.Hypergraph
	k   int
	opt mlpart.Options
	key cacheKey

	// timeout is the validated per-job deadline; 0 selects the
	// server's DefaultTimeout.
	timeout   time.Duration
	wantStats bool
	// idemKey is the client's Idempotency-Key, empty when none was
	// sent; recovered marks a job re-enqueued from the journal after a
	// process death (or a replayed terminal tombstone).
	idemKey   string
	recovered bool
	// batched marks a job routed onto the micro-batch lane. Purely a
	// scheduling annotation: results are byte-identical either way.
	batched bool

	// events is the job's lifecycle event stream; it has its own lock
	// and is safe to publish to with or without the server mutex.
	events *eventLog

	status      Status
	attempts    int
	cacheHit    bool
	interrupted bool
	result      *Result
	errrep      *ErrorReport
	report      *telemetry.Report

	// cancelc is closed by the client-cancellation path; done is
	// closed on the transition to a terminal status.
	cancelc chan struct{}
	done    chan struct{}
	// cancelRequested distinguishes a client cancel from the other
	// context-cancellation causes when classifying an interrupted run.
	cancelRequested bool
}

// view is the job JSON document served at /v1/jobs/{id}. Unlike
// Result it may carry nondeterministic fields (attempts, cache_hit,
// stats timings).
type view struct {
	ID          string `json:"id"`
	Status      Status `json:"status"`
	K           int    `json:"k"`
	ContentHash string `json:"content_hash"`
	Fingerprint string `json:"fingerprint"`
	Attempts    int    `json:"attempts"`
	CacheHit    bool   `json:"cache_hit"`
	Interrupted bool   `json:"interrupted,omitempty"`
	// Recovered marks a job that survived a process death: re-enqueued
	// from the journal, or a replayed terminal tombstone.
	Recovered bool `json:"recovered,omitempty"`
	// Batched marks a job executed on the micro-batch lane; a
	// scheduling annotation, never part of the result document.
	Batched bool              `json:"batched,omitempty"`
	Error   *ErrorReport      `json:"error,omitempty"`
	Result  *Result           `json:"result,omitempty"`
	Stats   *telemetry.Report `json:"stats,omitempty"`
}

// snapshotLocked renders the job's current state; callers hold the
// server mutex.
func (j *job) snapshotLocked() view {
	return view{
		ID:          j.id,
		Status:      j.status,
		K:           j.k,
		ContentHash: j.key.content,
		Fingerprint: j.key.fingerprint,
		Attempts:    j.attempts,
		CacheHit:    j.cacheHit,
		Interrupted: j.interrupted,
		Recovered:   j.recovered,
		Batched:     j.batched,
		Error:       j.errrep,
		Result:      j.result,
		Stats:       j.report,
	}
}
