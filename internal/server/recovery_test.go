package server

// Crash-recovery tests: journal persistence, restart replay,
// torn-tail truncation, idempotency keys, and the journal fault
// sites. The process-level kill harness lives in cmd/mlpartd; these
// tests exercise the same machinery in-process by handing a journal
// from one Server instance (or a hand-written file) to the next.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlpart"
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/journal"
)

// acceptedFor builds the accepted record admission would have written
// for a k=2 submission of hgr.
func acceptedFor(t *testing.T, id string, seq int, hgr, idemKey string) journal.Record {
	t.Helper()
	h, err := hypergraph.ReadHGRLimits(strings.NewReader(hgr), hypergraph.Limits{})
	if err != nil {
		t.Fatalf("parse hgr: %v", err)
	}
	fp, err := mlpart.Options{}.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	req, err := json.Marshal(jobRequest{HGR: hgr, K: 2})
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	return journal.Record{
		Type: journal.TypeAccepted, ID: id, Seq: seq,
		ContentHash: h.ContentHash(), Fingerprint: fp, K: 2,
		IdemKey: idemKey, Request: req,
	}
}

func writeJournal(t *testing.T, path string, recs ...journal.Record) {
	t.Helper()
	w, err := journal.OpenAppend(path, journal.Options{})
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// postJobIdem posts a submission with an Idempotency-Key and returns
// the status, decoded view, and the X-Mlpartd-Idempotent header.
func postJobIdem(t *testing.T, base string, body []byte, key string) (int, jobView, string) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("unmarshal job view: %v: %s", err, data)
		}
	}
	return resp.StatusCode, v, resp.Header.Get("X-Mlpartd-Idempotent")
}

// TestRestartRecoversAcceptedJobs is the core recovery scenario: a
// journal holds one closed job and two accepted-but-unfinished ones —
// exactly what a SIGKILL mid-burst leaves. The restarted server must
// tombstone the closed job and run the other two to completion.
func TestRestartRecoversAcceptedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping service test in -short mode")
	}
	hgr := testHGR(t, 8, 8)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	writeJournal(t, path,
		acceptedFor(t, "j-000000", 0, hgr, ""),
		journal.Record{Type: journal.TypeStarted, ID: "j-000000", Seq: 0},
		journal.Record{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
		acceptedFor(t, "j-000001", 1, hgr, ""),
		journal.Record{Type: journal.TypeStarted, ID: "j-000001", Seq: 1},
		acceptedFor(t, "j-000002", 2, testHGR(t, 6, 6), "burst-key"),
	)

	s, hs := newTestServer(t, Config{JournalPath: path, Workers: 2})

	// The closed job is a tombstone: queryable, terminal, recovered,
	// never re-run.
	v, ok := s.Job("j-000000")
	if !ok {
		t.Fatal("closed job j-000000 lost across restart")
	}
	if v.Status != StatusCompleted || !v.Recovered {
		t.Errorf("tombstone = status %q recovered %v, want completed/true", v.Status, v.Recovered)
	}

	// The unfinished jobs were re-enqueued and reach completion.
	for _, id := range []string{"j-000001", "j-000002"} {
		jv := waitTerminal(t, hs.URL, id)
		if jv.Status != "completed" || !jv.Recovered {
			t.Errorf("recovered job %s = status %q recovered %v, want completed/true", id, jv.Status, jv.Recovered)
		}
		if _, cache := getResult(t, hs.URL, id); cache != "miss" {
			t.Errorf("recovered job %s served from cache %q, want miss", id, cache)
		}
	}

	rep := s.Stats()
	if rep.Recovered != 2 || rep.ReplayedTerminal != 1 || rep.Accepted != 2 {
		t.Errorf("recovery counters = recovered %d replayed %d accepted %d, want 2/1/2",
			rep.Recovered, rep.ReplayedTerminal, rep.Accepted)
	}
	checkLedger(t, s)

	// New submissions continue the journal's id sequence.
	code, nv, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, nil))
	if code != http.StatusAccepted || nv.ID != "j-000003" {
		t.Errorf("post-recovery submission = %d %q, want 202 j-000003", code, nv.ID)
	}
	waitTerminal(t, hs.URL, nv.ID)
}

// TestJournalSurvivesGracefulRestart drives a real server lifecycle —
// submit, complete, drain — and restarts on the same journal: every
// job id must still resolve with its original terminal status, and
// the Idempotency-Key must still deduplicate.
func TestJournalSurvivesGracefulRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping service test in -short mode")
	}
	hgr := testHGR(t, 8, 8)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	body := submitBody(t, hgr, 2, nil, nil)

	s1, err := New(Config{JournalPath: path, Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptestStart(t, s1)
	code, v1, hdr := postJobIdem(t, hs1, body, "key-alpha")
	if code != http.StatusAccepted || hdr != "" {
		t.Fatalf("first submission = %d idempotent %q, want 202 \"\"", code, hdr)
	}
	waitTerminal(t, hs1, v1.ID)
	res1, _ := getResult(t, hs1, v1.ID)
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{JournalPath: path, Workers: 2})
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	defer s2.Close()
	hs2 := httptestStart(t, s2)

	v, ok := s2.Job(v1.ID)
	if !ok || !v.Status.Terminal() || !v.Recovered {
		t.Fatalf("job %s after restart = %+v ok=%v, want terminal recovered tombstone", v1.ID, v, ok)
	}
	if rep := s2.Stats(); rep.ReplayedTerminal != 1 || rep.Recovered != 0 {
		t.Errorf("counters after graceful restart = %+v, want replayed_terminal 1, recovered 0", rep)
	}

	// Same key, same request: the original id comes back with no new
	// admission — across the restart.
	code, v2, hdr := postJobIdem(t, hs2, body, "key-alpha")
	if code != http.StatusOK || hdr != "replay" || v2.ID != v1.ID {
		t.Errorf("idempotent replay after restart = %d %q id %q, want 200 replay %q", code, hdr, v2.ID, v1.ID)
	}
	// Same key, different request: conflict.
	if code, _, _ := postJobIdem(t, hs2, submitBody(t, testHGR(t, 6, 6), 2, nil, nil), "key-alpha"); code != http.StatusConflict {
		t.Errorf("idempotency conflict = %d, want 409", code)
	}
	// Resubmitting without a key recomputes and must reproduce the
	// pre-crash result byte-for-byte (determinism is why results are
	// not journaled).
	code, v3, _ := postJob(t, hs2, body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission = %d, want 202", code)
	}
	waitTerminal(t, hs2, v3.ID)
	res2, _ := getResult(t, hs2, v3.ID)
	if !bytes.Equal(res1, res2) {
		t.Errorf("result changed across restart:\n%s\nvs\n%s", res1, res2)
	}
}

// newUnmanagedServer serves s over HTTP without tying s's lifecycle
// to the test — restart tests close and reopen servers explicitly.
func newUnmanagedServer(s *Server) *httptest.Server {
	return httptest.NewServer(s.Handler())
}

// httptestStart serves s without registering cleanup-close of s (the
// caller manages the server lifecycle explicitly to model restarts).
func httptestStart(t *testing.T, s *Server) string {
	t.Helper()
	hs := newUnmanagedServer(s)
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestTornTailTruncatedOnRestart appends garbage after valid frames
// and restarts: the tail is dropped, counted, and compacted away.
func TestTornTailTruncatedOnRestart(t *testing.T) {
	hgr := testHGR(t, 6, 6)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	writeJournal(t, path,
		acceptedFor(t, "j-000000", 0, hgr, ""),
		journal.Record{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
	)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := New(Config{JournalPath: path, Workers: 1})
	if err != nil {
		t.Fatalf("New on torn journal: %v", err)
	}
	defer s.Close()
	if rep := s.Stats(); rep.TornTailTruncated != 1 || rep.ReplayedTerminal != 1 {
		t.Errorf("counters = torn %d replayed %d, want 1/1", rep.TornTailTruncated, rep.ReplayedTerminal)
	}
	// Compaction materialized the truncation: the journal now loads
	// cleanly.
	recs, st, err := journal.Load(path, nil)
	if err != nil || st.Truncated || st.TornBytes != 0 {
		t.Fatalf("compacted journal: err %v stats %+v", err, st)
	}
	if len(recs) != 2 {
		t.Errorf("compacted journal has %d records, want 2 (slim accepted + terminal)", len(recs))
	}
}

// TestIdempotencyKeyDedup covers the single-process dedup path: a
// duplicate returns the original job and no counters move except
// idempotent_replays.
func TestIdempotencyKeyDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping service test in -short mode")
	}
	hgr := testHGR(t, 8, 8)
	s, hs := newTestServer(t, Config{Workers: 2})
	body := submitBody(t, hgr, 2, nil, nil)

	code, v1, hdr := postJobIdem(t, hs.URL, body, "dup-key")
	if code != http.StatusAccepted || hdr != "" {
		t.Fatalf("first = %d %q, want 202", code, hdr)
	}
	waitTerminal(t, hs.URL, v1.ID)
	for i := 0; i < 3; i++ {
		code, v2, hdr := postJobIdem(t, hs.URL, body, "dup-key")
		if code != http.StatusOK || hdr != "replay" || v2.ID != v1.ID {
			t.Fatalf("dup %d = %d %q id %q, want 200 replay %q", i, code, hdr, v2.ID, v1.ID)
		}
	}
	if code, _, _ := postJobIdem(t, hs.URL, submitBody(t, hgr, 4, nil, nil), "dup-key"); code != http.StatusConflict {
		t.Errorf("conflicting reuse = %d, want 409", code)
	}
	rep := s.Stats()
	if rep.Accepted != 1 || rep.IdempotentReplays != 3 {
		t.Errorf("accepted %d idempotent %d, want 1/3", rep.Accepted, rep.IdempotentReplays)
	}
}

// TestJournalAppendFaultRejectsSubmission: a torn write at the
// journal.append site must reject the submission (503, never a
// silently-lost acknowledged job) and leave the writer read-only; a
// transient (cancel) fault fails one submission only.
func TestJournalAppendFaultRejectsSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping service test in -short mode")
	}
	hgr := testHGR(t, 6, 6)
	body := submitBody(t, hgr, 2, nil, nil)

	t.Run("corrupt poisons", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "jobs.wal")
		s, hs := newTestServer(t, Config{
			JournalPath: path, Workers: 1,
			Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{
				faultinject.On(faultinject.SiteJournalAppend, faultinject.KindCorrupt, 1),
			}},
		})
		for i := 0; i < 2; i++ {
			code, _, data := postJob(t, hs.URL, body)
			if code != http.StatusServiceUnavailable {
				t.Fatalf("submission %d on dead journal = %d (%s), want 503", i, code, data)
			}
		}
		rep := s.Stats()
		if rep.Accepted != 0 || rep.JournalAppendErrors != 2 {
			t.Errorf("accepted %d append errors %d, want 0/2", rep.Accepted, rep.JournalAppendErrors)
		}
		// The half-written frame is a torn tail for the next process.
		recs, st, err := journal.Load(path, nil)
		if err != nil || len(recs) != 0 || !st.Truncated {
			t.Errorf("torn journal: %d records, stats %+v, err %v; want 0 records, truncated", len(recs), st, err)
		}
	})

	t.Run("cancel is transient", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "jobs.wal")
		s, hs := newTestServer(t, Config{
			JournalPath: path, Workers: 1,
			Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{
				faultinject.On(faultinject.SiteJournalAppend, faultinject.KindCancel, 1),
			}},
		})
		if code, _, _ := postJob(t, hs.URL, body); code != http.StatusServiceUnavailable {
			t.Fatalf("faulted submission = %d, want 503", code)
		}
		code, v, _ := postJob(t, hs.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("submission after transient fault = %d, want 202", code)
		}
		waitTerminal(t, hs.URL, v.ID)
		if rep := s.Stats(); rep.Accepted != 1 || rep.JournalAppendErrors != 1 {
			t.Errorf("accepted %d append errors %d, want 1/1", rep.Accepted, rep.JournalAppendErrors)
		}
	})
}

// TestChaosSweepJournal sweeps every fault kind over the journal
// sites: whatever is injected, the server either refuses to start
// (cleanly) or ends the run with the ledger balanced and the journal
// loadable.
func TestChaosSweepJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping chaos sweep in -short mode")
	}
	hgr := testHGR(t, 6, 6)
	body := submitBody(t, hgr, 2, nil, nil)
	for _, site := range []faultinject.Site{faultinject.SiteJournalAppend, faultinject.SiteJournalReplay} {
		for _, kind := range faultinject.Kinds {
			t.Run(fmt.Sprintf("%s_%s", site, kind), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "jobs.wal")
				// Seed a journal so replay faults have frames to hit.
				writeJournal(t, path,
					acceptedFor(t, "j-000000", 0, hgr, "seed-key"),
					journal.Record{Type: journal.TypeTerminal, ID: "j-000000", Seq: 0, Status: "completed"},
					acceptedFor(t, "j-000001", 1, hgr, ""),
				)
				s, err := New(Config{
					JournalPath: path, Workers: 2, MaxRetries: 2,
					Inject: &faultinject.Plan{Seed: 42, Entries: []faultinject.Entry{
						faultinject.On(site, kind, 2),
					}},
				})
				if err != nil {
					// An injected replay panic fails startup cleanly —
					// an acceptable, explicit outcome.
					if site != faultinject.SiteJournalReplay || kind != faultinject.KindPanic {
						t.Fatalf("New: %v", err)
					}
					return
				}
				hs := newUnmanagedServer(s)
				defer hs.Close()
				for i := 0; i < 3; i++ {
					code, v, _ := postJob(t, hs.URL, body)
					// Append faults may shed submissions with 503; that
					// is the degraded-but-correct mode.
					if code == http.StatusAccepted {
						waitTerminal(t, hs.URL, v.ID)
					} else if code != http.StatusServiceUnavailable {
						t.Fatalf("submission %d = %d, want 202 or 503", i, code)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				checkLedger(t, s)
				if _, _, err := journal.Load(path, nil); err != nil {
					t.Errorf("journal unloadable after sweep: %v", err)
				}
			})
		}
	}
}
