package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mlpart"
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/telemetry"
)

// jobRequest is the POST /v1/jobs submission document.
type jobRequest struct {
	// HGR is the hypergraph in hMETIS text format.
	HGR string `json:"hgr"`
	// K is the block count: 2 (bipartition, the default) or 4
	// (quadrisection).
	K int `json:"k,omitempty"`
	// Options is the canonical options document (see
	// mlpart.ParseOptionsJSON); absent or null selects the defaults.
	Options json.RawMessage `json:"options,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 selects
	// the server default, and values above the server maximum are
	// rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stats asks the job to collect a telemetry report, served in the
	// job view's stats field.
	Stats bool `json:"stats,omitempty"`
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var b errorBody
	b.Error.Code = code
	b.Error.Message = msg
	writeJSON(w, status, b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // after WriteHeader there is no better report than the broken pipe itself
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202 + job view, Location header).
//	                            An Idempotency-Key request header makes the
//	                            submission replay-safe: a duplicate returns the
//	                            original job (200 + X-Mlpartd-Idempotent: replay),
//	                            a reuse for a different request is a 409. Keys
//	                            are journaled, so dedup survives restarts.
//	GET    /v1/jobs/{id}        job state (?wait_ms=N blocks for a terminal state)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/result deterministic result document (X-Mlpartd-Cache: hit|miss)
//	GET    /v1/jobs/{id}/events live job lifecycle stream (Server-Sent Events;
//	                            Last-Event-ID resumes after the named event id)
//	GET    /v1/events           service-wide ledger delta stream (SSE)
//	GET    /healthz             liveness (always 200 while the process serves)
//	GET    /readyz              readiness (503 once draining)
//	GET    /statsz              service counters (schema mlpartd-stats/1);
//	                            ?schema=bench serves the cumulative per-stage
//	                            timing aggregates as mlpart-bench/1
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleGetResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/events", s.handleServiceEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// handleSubmit is the admission path. The recover barrier is the
// fault-isolation boundary: a panic anywhere in parsing or admission
// (including the server.admit fault site) turns into a 500 for this
// submission only — the process and every other job are unaffected.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			writeError(w, http.StatusInternalServerError, "internal",
				fmt.Sprintf("submission failed: %v", v))
		}
	}()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", "invalid job request: "+err.Error())
		return
	}

	k := req.K
	if k == 0 {
		k = 2
	}
	if k != 2 && k != 4 {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("k must be 2 or 4, got %d", k))
		return
	}
	if req.TimeoutMS < 0 {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("negative timeout_ms %d", req.TimeoutMS))
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout > s.cfg.MaxTimeout {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("timeout_ms %d exceeds the server maximum %d", req.TimeoutMS, s.cfg.MaxTimeout.Milliseconds()))
		return
	}

	opt := mlpart.Options{}
	if len(req.Options) > 0 && string(req.Options) != "null" {
		var err error
		opt, err = mlpart.ParseOptionsJSON(req.Options)
		if err != nil {
			s.stats.RejectInvalid()
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
	}
	fp, err := opt.Fingerprint()
	if err != nil {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	if strings.TrimSpace(req.HGR) == "" {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", "missing hgr")
		return
	}
	h, err := hypergraph.ReadHGRLimits(strings.NewReader(req.HGR), s.cfg.Limits)
	if err != nil {
		s.stats.RejectInvalid()
		writeError(w, http.StatusBadRequest, "bad_request", "invalid hgr: "+err.Error())
		return
	}

	key := cacheKey{content: h.ContentHash(), fingerprint: fp, k: k}

	// The canonical re-encoding of the request is what the journal
	// stores with the accepted record: it is exactly what recovery
	// needs to rebuild and re-run the job after a crash.
	reqBytes, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "could not encode request for the journal: "+err.Error())
		return
	}

	idemKey := r.Header.Get("Idempotency-Key")
	j, replayed, rej := s.admitJob(h, k, opt, timeout, req.Stats, key, idemKey, reqBytes)
	if rej != nil {
		if rej.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.FormatInt(int64((rej.retryAfter+time.Second-1)/time.Second), 10))
		}
		writeError(w, rej.status, rej.code, rej.msg)
		return
	}

	s.mu.Lock()
	v := j.snapshotLocked()
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	if replayed {
		// Duplicate of an earlier submission with the same
		// Idempotency-Key: answer with the original job, 200 not 202 —
		// nothing new was admitted.
		w.Header().Set("X-Mlpartd-Idempotent", "replay")
		writeJSON(w, http.StatusOK, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitMS := r.URL.Query().Get("wait_ms"); waitMS != "" {
		ms, err := strconv.ParseInt(waitMS, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid wait_ms")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		defer cancel()
		v, ok, err := s.WaitJob(ctx, id)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "no such job "+id)
			return
		}
		if err != nil {
			// Wait expired: fall through to the current snapshot.
			v, _ = s.Job(id)
		}
		writeJSON(w, http.StatusOK, v)
		return
	}
	v, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job "+id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job "+id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleGetResult serves the deterministic result document. Cache
// provenance travels in the X-Mlpartd-Cache header, never the body,
// so hit and miss responses are byte-identical.
func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job "+id)
		return
	}
	if !v.Status.Terminal() {
		writeError(w, http.StatusConflict, "not_ready", fmt.Sprintf("job %s is %s", id, v.Status))
		return
	}
	if v.Result == nil {
		writeError(w, http.StatusConflict, "no_result", fmt.Sprintf("job %s ended %s without a solution", id, v.Status))
		return
	}
	if v.CacheHit {
		w.Header().Set("X-Mlpartd-Cache", "hit")
	} else {
		w.Header().Set("X-Mlpartd-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, v.Result)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((s.cfg.RetryAfter+time.Second-1)/time.Second), 10))
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	switch schema := r.URL.Query().Get("schema"); schema {
	case "", "service", telemetry.ServiceSchemaVersion:
		rep := s.Stats()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = rep.WriteJSON(w)
	case "bench", telemetry.BenchSchemaVersion:
		rep := s.stats.BenchSnapshot(time.Now().UTC().Format("2006-01-02"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = rep.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown stats schema %q (want %q or %q)", schema,
				telemetry.ServiceSchemaVersion, telemetry.BenchSchemaVersion))
	}
}

// parseLastEventID reads the SSE resume header; 0 means "from the
// start of the retained history".
func parseLastEventID(r *http.Request) (int64, error) {
	lei := r.Header.Get("Last-Event-ID")
	if lei == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(lei, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid Last-Event-ID %q", lei)
	}
	return v, nil
}

// handleJobEvents streams one job's lifecycle events as Server-Sent
// Events: the retained history after Last-Event-ID, then live events
// until the terminal event ends the stream. The recover barrier makes
// an injected server.events panic fail only this subscription.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			writeError(w, http.StatusInternalServerError, "internal",
				fmt.Sprintf("event stream failed: %v", v))
		}
	}()
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job "+id)
		return
	}
	lastID, err := parseLastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// The events fault site, derived from the job's admission sequence
	// like the job's own sites. Cancel drops this subscriber right
	// after the replay — the slow-consumer path on demand.
	dropNow := false
	if inj := s.cfg.Inject.NewInjector(j.seq, 0); inj != nil {
		if inj.Fire(faultinject.SiteServerEvents) == faultinject.ActCancel {
			dropNow = true
		}
	}
	replay, sub := j.events.subscribe(lastID, s.cfg.EventBuffer)
	if dropNow && sub != nil {
		j.events.unsubscribe(sub)
		sub = nil
		s.stats.EventDropped()
	}
	s.serveSSE(w, r, replay, sub, j.events)
}

// handleServiceEvents streams the service-wide ledger deltas; the
// stream ends with the drained event when the service shuts down.
func (s *Server) handleServiceEvents(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			writeError(w, http.StatusInternalServerError, "internal",
				fmt.Sprintf("event stream failed: %v", v))
		}
	}()
	lastID, err := parseLastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	dropNow := false
	if inj := s.cfg.Inject.NewInjector(0, 0); inj != nil {
		if inj.Fire(faultinject.SiteServerEvents) == faultinject.ActCancel {
			dropNow = true
		}
	}
	replay, sub := s.svcEvents.subscribe(lastID, s.cfg.EventBuffer)
	if dropNow && sub != nil {
		s.svcEvents.unsubscribe(sub)
		sub = nil
		s.stats.EventDropped()
	}
	s.serveSSE(w, r, replay, sub, s.svcEvents)
}

// serveSSE writes the replay then relays live events until the stream
// completes (subscriber channel closed), the client goes away, or a
// write fails. The job is never waited on: a subscriber that cannot
// keep up is dropped by the publisher, which closes its channel.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, replay []jobEvent, sub *eventSub, log *eventLog) {
	fl, ok := w.(http.Flusher)
	if !ok {
		if sub != nil {
			log.unsubscribe(sub)
		}
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		if writeSSE(w, ev.id, ev.name, ev.data) != nil {
			if sub != nil {
				log.unsubscribe(sub)
			}
			return
		}
	}
	fl.Flush()
	if sub == nil {
		return // stream already complete: replay was everything
	}
	ctx := r.Context()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				return // terminal delivered or subscriber dropped
			}
			if writeSSE(w, ev.id, ev.name, ev.data) != nil {
				log.unsubscribe(sub)
				return
			}
			fl.Flush()
		case <-ctx.Done():
			log.unsubscribe(sub)
			return
		}
	}
}
