package server

import "container/list"

// cacheKey identifies a deterministic partitioning result: the
// hypergraph content hash, the canonical options fingerprint, and the
// block count. Everything that can change the partition is folded
// into one of the three components; everything that cannot
// (Parallelism, Audit, submission order, worker count) is excluded,
// so equivalent jobs share an entry.
type cacheKey struct {
	content     string
	fingerprint string
	k           int
}

// resultCache is a bounded LRU of completed job results plus (when
// the computing job requested stats) their telemetry reports. It is
// not safe for concurrent use; the server serializes access under its
// mutex. A nil *resultCache is the disabled state.
type resultCache struct {
	cap     int
	order   *list.List // front = most recent; values are cacheKey
	entries map[cacheKey]*cacheEntry
}

type cacheEntry struct {
	res  Result
	elem *list.Element
}

// newResultCache returns a cache bounded to capacity entries, or nil
// (disabled) when capacity <= 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[cacheKey]*cacheEntry, capacity),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	e, ok := c.entries[key]
	if !ok {
		return Result{}, false
	}
	c.order.MoveToFront(e.elem)
	return e.res, true
}

// put stores res under key, evicting the least-recently-used entry
// at capacity.
func (c *resultCache) put(key cacheKey, res Result) {
	if c == nil {
		return
	}
	if e, ok := c.entries[key]; ok {
		e.res = res
		c.order.MoveToFront(e.elem)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		delete(c.entries, oldest.Value.(cacheKey))
		c.order.Remove(oldest)
	}
	e := &cacheEntry{res: res}
	e.elem = c.order.PushFront(key)
	c.entries[key] = e
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}
