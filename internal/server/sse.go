package server

// Server-Sent Events framing: the writer used by the event handlers
// and the tolerant frame parser used by the stream-consuming clients
// (cmd/mlpartd's stream smoke and the protocol tests; the parser is
// also the fuzz target FuzzParseSSE).
//
// A frame is a block of "field: value" lines ended by a blank line:
//
//	id: 3
//	event: started
//	data: {"job_id":"j-000002","status":"running"}
//
// The parser follows the WHATWG EventSource grammar where it matters:
// lines starting with ':' are comments, one space after the field
// colon is stripped, '\r' line endings are tolerated, multiple data
// lines join with '\n', unknown fields are ignored, and a trailing
// block without its blank line is never dispatched.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// writeSSE emits one frame. Multi-line data becomes repeated data:
// lines, which a conforming parser rejoins with '\n'.
func writeSSE(w io.Writer, id int64, event string, data []byte) error {
	var b strings.Builder
	if id > 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	if event != "" {
		fmt.Fprintf(&b, "event: %s\n", event)
	}
	if len(data) > 0 {
		for _, line := range strings.Split(string(data), "\n") {
			fmt.Fprintf(&b, "data: %s\n", line)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// SSEFrame is one parsed event.
type SSEFrame struct {
	ID    int64
	Event string
	Data  string
}

// SSEParser accumulates one frame line by line. The zero value is
// ready to use; Line reports a dispatched frame on each blank line
// that closes a non-empty block.
type SSEParser struct {
	cur      SSEFrame
	dataset  []string
	hasField bool
}

// Line feeds one input line (without its trailing '\n'; a trailing
// '\r' is stripped here) and returns the completed frame, if any.
func (p *SSEParser) Line(s string) (SSEFrame, bool) {
	s = strings.TrimSuffix(s, "\r")
	if s == "" {
		if !p.hasField {
			return SSEFrame{}, false
		}
		f := p.cur
		f.Data = strings.Join(p.dataset, "\n")
		p.cur, p.dataset, p.hasField = SSEFrame{}, nil, false
		return f, true
	}
	if strings.HasPrefix(s, ":") {
		return SSEFrame{}, false // comment
	}
	field, value, _ := strings.Cut(s, ":")
	value = strings.TrimPrefix(value, " ")
	switch field {
	case "id":
		if v, err := strconv.ParseInt(value, 10, 64); err == nil {
			p.cur.ID = v
			p.hasField = true
		}
	case "event":
		p.cur.Event = value
		p.hasField = true
	case "data":
		p.dataset = append(p.dataset, value)
		p.hasField = true
	}
	return SSEFrame{}, false
}

// ParseSSE parses a complete byte stream into its dispatched frames.
func ParseSSE(b []byte) []SSEFrame {
	var p SSEParser
	var frames []SSEFrame
	for _, line := range strings.Split(string(b), "\n") {
		if f, ok := p.Line(line); ok {
			frames = append(frames, f)
		}
	}
	return frames
}

// ReadSSEFrame reads from r until one frame is dispatched — the
// client side of a live stream, where the input never ends on its
// own. An error (io.EOF included) before a complete frame is
// returned as-is.
func ReadSSEFrame(r *bufio.Reader, p *SSEParser) (SSEFrame, error) {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return SSEFrame{}, err
		}
		if f, ok := p.Line(strings.TrimSuffix(line, "\n")); ok {
			return f, nil
		}
	}
}
