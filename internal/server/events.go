package server

// Live event streaming. Every job owns an eventLog — a monotonically
// numbered history of its lifecycle events (queued, started,
// retrying, periodic progress, then exactly one terminal event) — and
// the server owns one more for the service-wide ledger stream. The
// cardinal rule is that a subscriber can never hold up a job: publish
// is non-blocking, and a subscriber whose buffer is full is dropped
// (counted in events_dropped) instead of waited on. The bounded
// history makes Last-Event-ID resume work without unbounded memory.

import (
	"encoding/json"
	"sync"
)

// jobEvent is one rendered event: a per-log 1-based id (the SSE id
// clients resume from), the event name, and the JSON payload.
type jobEvent struct {
	id   int64
	name string
	data []byte
}

// eventSub is one subscriber. Its channel is closed when the stream
// ends (terminal event delivered or log shut) or when the subscriber
// is dropped for falling behind.
type eventSub struct {
	ch     chan jobEvent
	closed bool
}

// closeLocked closes the channel once; callers hold the log's mutex.
func (s *eventSub) closeLocked() {
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// eventLog is a bounded event history plus its live subscribers.
type eventLog struct {
	mu      sync.Mutex
	histCap int
	nextID  int64
	hist    []jobEvent
	subs    map[*eventSub]struct{}
	done    bool
}

func newEventLog(histCap int) *eventLog {
	return &eventLog{histCap: histCap, nextID: 1, subs: make(map[*eventSub]struct{})}
}

// publish appends one event, fans it out without blocking, and
// returns how many subscribers were dropped for being full. terminal
// marks the log complete: the event is delivered, then every
// remaining subscriber's channel is closed and later publishes are
// no-ops (a late progress tick racing the terminal transition must
// not resurrect a finished stream).
func (l *eventLog) publish(name string, data []byte, terminal bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return 0
	}
	ev := jobEvent{id: l.nextID, name: name, data: data}
	l.nextID++
	l.hist = append(l.hist, ev)
	if len(l.hist) > l.histCap {
		l.hist = l.hist[len(l.hist)-l.histCap:]
	}
	dropped := 0
	for sub := range l.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.closeLocked()
			delete(l.subs, sub)
			dropped++
		}
	}
	if terminal {
		l.done = true
		for sub := range l.subs {
			sub.closeLocked()
			delete(l.subs, sub)
		}
	}
	return dropped
}

// subscribe returns the retained history after lastID and, when the
// log is still live, a registered subscriber for everything that
// follows. The snapshot and the registration happen under one lock
// acquisition, so no event is missed or duplicated between replay and
// live delivery. A nil subscriber means the stream is complete after
// the replay. Events older than the history bound are gone; a resume
// from before the bound replays what is retained.
func (l *eventLog) subscribe(lastID int64, buf int) ([]jobEvent, *eventSub) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var replay []jobEvent
	for _, ev := range l.hist {
		if ev.id > lastID {
			replay = append(replay, ev)
		}
	}
	if l.done {
		return replay, nil
	}
	sub := &eventSub{ch: make(chan jobEvent, buf)}
	l.subs[sub] = struct{}{}
	return replay, sub
}

// unsubscribe detaches a subscriber (client went away); safe to call
// for one already dropped or closed.
func (l *eventLog) unsubscribe(sub *eventSub) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.subs[sub]; ok {
		delete(l.subs, sub)
		sub.closeLocked()
	}
}

// jobEventData is the payload of a per-job lifecycle event.
type jobEventData struct {
	JobID   string `json:"job_id"`
	Status  Status `json:"status"`
	Attempt int    `json:"attempt,omitempty"`
}

// svcDelta is the payload of a service-wide ledger event: what
// changed plus the counter values after the change.
type svcDelta struct {
	Change        string `json:"change"`
	JobID         string `json:"job_id,omitempty"`
	Accepted      int64  `json:"accepted"`
	Completed     int64  `json:"completed"`
	Failed        int64  `json:"failed"`
	Queued        int64  `json:"queued"`
	Running       int64  `json:"running"`
	Batched       int64  `json:"batched"`
	EventsDropped int64  `json:"events_dropped"`
}

// mustJSON marshals a payload built from plain structs; a failure is
// a programming error, and an empty payload degrades the event, not
// the job.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}

// publishJobEvent emits one lifecycle event on j's stream, mirrors
// ledger-relevant changes ("queued", "started", terminals) onto the
// service-wide stream, and counts any dropped subscribers. Safe to
// call with or without s.mu held: only the event logs' own locks and
// atomic counters are touched.
func (s *Server) publishJobEvent(j *job, name string, status Status, attempt int, terminal bool) {
	dropped := j.events.publish(name, mustJSON(jobEventData{JobID: j.id, Status: status, Attempt: attempt}), terminal)
	if name != "progress" && name != "retrying" {
		rep := s.stats.Snapshot(s.cfg.QueueDepth, false, 0)
		dropped += s.svcEvents.publish("ledger", mustJSON(svcDelta{
			Change:        name,
			JobID:         j.id,
			Accepted:      rep.Accepted,
			Completed:     rep.Completed,
			Failed:        rep.Failed,
			Queued:        rep.Queued,
			Running:       rep.Running,
			Batched:       rep.Batched,
			EventsDropped: rep.EventsDropped,
		}), false)
	}
	for i := 0; i < dropped; i++ {
		s.stats.EventDropped()
	}
}
