package server

// Crash recovery: replaying the write-ahead job journal at startup.
//
// The recovery contract ("journal before acknowledge, replay before
// admit") has two halves. Admission holds the first half: an accepted
// record is durable before any client sees a 202. This file holds the
// second: New replays the journal before the queue exists and before
// any worker starts, so by the time the server admits its first live
// submission, every job the previous process acknowledged is
// accounted for —
//
//   - a job with a replayed terminal record is closed: it becomes a
//     queryable tombstone (id, status, identity — results are not
//     journaled, because a deterministic pipeline recomputes them
//     byte-identically) and is never re-run;
//   - a job with an accepted record but no terminal record is the
//     crash's debt: it is rebuilt from the journaled request bytes and
//     re-enqueued, marked recovered;
//   - a torn tail — the partial frame a crash mid-append leaves — is
//     truncated, not fatal: the torn frame was never acknowledged to
//     any client, so dropping it reproduces exactly what the client
//     already observed.
//
// Replay ends with compaction: the journal is atomically rewritten to
// one slim accepted(+terminal) pair per closed job (keeping the
// Idempotency-Key so duplicate detection survives any number of
// restarts) plus the full accepted record of each live job, then
// reopened for appending.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"mlpart"
	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/journal"
)

// recoverJournal replays cfg.JournalPath, registers tombstones for
// replayed-terminal jobs, rebuilds the idempotency map, compacts the
// journal, and opens it for appending. It returns the recovered live
// jobs in admission order; the caller enqueues them. Called from New
// before the worker pool exists, so no locking is needed.
func (s *Server) recoverJournal() ([]*job, error) {
	recs, st, err := loadJournal(s.cfg.JournalPath, s.cfg.Inject.NewInjector(0, 0))
	if err != nil {
		return nil, err
	}
	if st.Truncated {
		s.stats.TornTail()
	}

	// Fold the record stream into per-job state. First record of each
	// type wins: a valid journal has one accepted and at most one
	// terminal per id, so duplicates can only come from corruption
	// that happened to re-checksum, and trusting the earliest record
	// is the conservative reading.
	type replayState struct {
		accepted    journal.Record
		terminal    journal.Record
		hasAccepted bool
		hasTerminal bool
	}
	states := make(map[string]*replayState)
	var order []string
	maxSeq := -1
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		rs, ok := states[r.ID]
		if !ok {
			rs = &replayState{}
			states[r.ID] = rs
			order = append(order, r.ID)
		}
		switch r.Type {
		case journal.TypeAccepted:
			if !rs.hasAccepted {
				rs.accepted, rs.hasAccepted = r, true
			}
		case journal.TypeTerminal:
			if !rs.hasTerminal {
				rs.terminal, rs.hasTerminal = r, true
			}
		}
	}
	// Live submissions continue the journal's sequence so recovered
	// and new job ids never collide.
	s.seq = maxSeq + 1

	var live []*job
	compact := make([]journal.Record, 0, len(order)*2)
	for _, id := range order {
		rs := states[id]
		acc := rs.accepted
		if !rs.hasAccepted {
			// Started/terminal without accepted cannot be produced by
			// this server (accepted is always first and compaction
			// preserves that); treat the orphan as closed if terminal,
			// otherwise drop it — there is no request to re-run.
			if !rs.hasTerminal {
				continue
			}
			acc = journal.Record{Type: journal.TypeAccepted, ID: id, Seq: rs.terminal.Seq}
		}

		if rs.hasTerminal {
			s.registerTombstone(acc, rs.terminal)
			compact = append(compact, slimAccepted(acc), rs.terminal)
			continue
		}

		j, err := rebuildJob(acc, s.cfg.Limits)
		if err != nil {
			// The journaled request no longer parses — possible only if
			// limits tightened across the restart (or the record was
			// corrupted yet re-checksummed). The job still owes a
			// terminal status: close it as failed rather than dropping
			// it silently.
			term := journal.Record{Type: journal.TypeTerminal, ID: id, Seq: acc.Seq, Status: string(StatusFailed)}
			s.registerTombstone(acc, term)
			if t, ok := s.jobs[id]; ok {
				t.errrep = &ErrorReport{Code: "recovery", Message: err.Error()}
			}
			compact = append(compact, slimAccepted(acc), term)
			continue
		}
		live = append(live, j)
		full := acc
		full.Recovered = true
		compact = append(compact, full)
	}

	// Rebuild idempotency state from the compacted view: keys map to
	// the job that first used them, tombstone or live.
	for _, id := range order {
		rs := states[id]
		if !rs.hasAccepted || rs.accepted.IdemKey == "" {
			continue
		}
		if _, taken := s.idem[rs.accepted.IdemKey]; taken {
			continue
		}
		if _, known := s.jobs[id]; !known && !hasJob(live, id) {
			continue
		}
		s.idem[rs.accepted.IdemKey] = idemEntry{
			id:  id,
			key: cacheKey{content: rs.accepted.ContentHash, fingerprint: rs.accepted.Fingerprint, k: rs.accepted.K},
		}
	}

	// Compact: the rewritten journal is the authoritative account of
	// everything above — in particular it materializes the truncation
	// of any torn tail — and it is in place before the writer reopens,
	// so a crash during recovery itself just replays again.
	if err := journal.Rewrite(s.cfg.JournalPath, compact); err != nil {
		return nil, err
	}
	w, err := journal.OpenAppend(s.cfg.JournalPath, journal.Options{
		Inject:     s.cfg.Inject.NewInjector(0, 0),
		AppendHook: s.cfg.JournalAppendHook,
	})
	if err != nil {
		return nil, err
	}
	s.jnl = w
	return live, nil
}

// loadJournal wraps journal.Load in a recover barrier: an injected
// panic at the journal.replay site becomes a startup error — the
// operator sees a clean refusal, not a half-initialized server.
func loadJournal(path string, inj *faultinject.Injector) (recs []journal.Record, st journal.ReplayStats, err error) {
	defer func() {
		if v := recover(); v != nil {
			recs, st = nil, journal.ReplayStats{}
			err = fmt.Errorf("server: journal replay panicked: %v", v)
		}
	}()
	return journal.Load(path, inj)
}

// registerTombstone installs a closed job from replayed records: it
// keeps its id, terminal status, and identity, answers GET /v1/jobs
// and idempotent replays, and is never re-run. Results are not
// journaled, so a tombstone serves no result document.
func (s *Server) registerTombstone(acc, term journal.Record) {
	st := Status(term.Status)
	if !st.Terminal() {
		st = StatusFailed
	}
	j := &job{
		id:        acc.ID,
		seq:       acc.Seq,
		k:         acc.K,
		key:       cacheKey{content: acc.ContentHash, fingerprint: acc.Fingerprint, k: acc.K},
		idemKey:   acc.IdemKey,
		recovered: true,
		status:    st,
		cancelc:   make(chan struct{}),
		done:      make(chan struct{}),
		events:    newEventLog(s.cfg.EventHistory),
	}
	close(j.done)
	s.jobs[j.id] = j
	s.stats.ReplayTerminal()
	// A tombstone's event stream is born complete: one terminal event,
	// so a subscriber gets the replayed status and a clean end.
	s.publishJobEvent(j, string(st), st, 0, true)
}

// rebuildJob reconstructs a runnable job from a journaled accepted
// record, revalidating the request exactly as admission did.
func rebuildJob(acc journal.Record, limits hypergraph.Limits) (*job, error) {
	var req jobRequest
	if err := json.Unmarshal(acc.Request, &req); err != nil {
		return nil, fmt.Errorf("journaled request does not decode: %w", err)
	}
	k := req.K
	if k == 0 {
		k = 2
	}
	if k != 2 && k != 4 {
		return nil, fmt.Errorf("journaled request has bad k %d", k)
	}
	opt := mlpart.Options{}
	if len(req.Options) > 0 && string(req.Options) != "null" {
		var err error
		opt, err = mlpart.ParseOptionsJSON(req.Options)
		if err != nil {
			return nil, fmt.Errorf("journaled options: %w", err)
		}
	}
	h, err := hypergraph.ReadHGRLimits(strings.NewReader(req.HGR), limits)
	if err != nil {
		return nil, fmt.Errorf("journaled hgr: %w", err)
	}
	return &job{
		id:        acc.ID,
		seq:       acc.Seq,
		h:         h,
		k:         k,
		opt:       opt,
		key:       cacheKey{content: acc.ContentHash, fingerprint: acc.Fingerprint, k: acc.K},
		timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		wantStats: req.Stats,
		idemKey:   acc.IdemKey,
		recovered: true,
		status:    StatusQueued,
		cancelc:   make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// slimAccepted is the compacted form of a closed job's accepted
// record: identity and Idempotency-Key survive, the request bytes do
// not — a closed job is never re-run.
func slimAccepted(acc journal.Record) journal.Record {
	return journal.Record{
		Type:        journal.TypeAccepted,
		ID:          acc.ID,
		Seq:         acc.Seq,
		ContentHash: acc.ContentHash,
		Fingerprint: acc.Fingerprint,
		K:           acc.K,
		IdemKey:     acc.IdemKey,
	}
}

// hasJob reports whether the live set contains id.
func hasJob(live []*job, id string) bool {
	for _, j := range live {
		if j.id == id {
			return true
		}
	}
	return false
}
