package server

// Protocol tests for the SSE event streams: exact lifecycle order,
// Last-Event-ID resume, the drop-don't-block rule for stalled
// subscribers, and a fuzz target on the frame parser the stream
// clients use.

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mlpart/internal/faultinject"
)

// collectEvents reads one job's full SSE stream (it ends after the
// terminal event) and parses it.
func collectEvents(t *testing.T, base, id string, lastID int64) []SSEFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events %s: status %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET events %s: Content-Type %q", id, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read events %s: %v", id, err)
	}
	return ParseSSE(raw)
}

// eventNames projects the frames onto their event names.
func eventNames(frames []SSEFrame) []string {
	names := make([]string, len(frames))
	for i, f := range frames {
		names[i] = f.Event
	}
	return names
}

// TestSSEEventOrder asserts the exact stream for a clean job:
// queued, started, completed with gapless ids from 1 — identical
// whether the consumer attached live or replays after the fact.
func TestSSEEventOrder(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheCap: -1, ProgressInterval: -1})
	hgr := testHGR(t, 6, 6)
	_, v, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": int64(1)}, nil))
	waitTerminal(t, hs.URL, v.ID)

	frames := collectEvents(t, hs.URL, v.ID, -1)
	want := []string{"queued", "started", "completed"}
	if got := eventNames(frames); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("event order %v, want %v", got, want)
	}
	for i, f := range frames {
		if f.ID != int64(i+1) {
			t.Errorf("frame %d: id %d, want %d", i, f.ID, i+1)
		}
		var data struct {
			JobID  string `json:"job_id"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(f.Data), &data); err != nil {
			t.Errorf("frame %d data: %v: %s", i, err, f.Data)
			continue
		}
		if data.JobID != v.ID {
			t.Errorf("frame %d: job_id %q, want %q", i, data.JobID, v.ID)
		}
	}
}

// TestSSERetryingEvent arms a panic at the job site on every attempt:
// the stream must show the retry transition and end failed.
func TestSSERetryingEvent(t *testing.T) {
	_, hs := newTestServer(t, Config{
		CacheCap: -1, ProgressInterval: -1, MaxRetries: 1,
		Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{
			faultinject.On(faultinject.SiteServerJob, faultinject.KindPanic, 1),
		}},
	})
	hgr := testHGR(t, 6, 6)
	_, v, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": int64(2)}, nil))
	waitTerminal(t, hs.URL, v.ID)

	frames := collectEvents(t, hs.URL, v.ID, -1)
	want := []string{"queued", "started", "retrying", "failed"}
	if got := eventNames(frames); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("event order %v, want %v", got, want)
	}
	var data struct {
		Attempt int `json:"attempt"`
	}
	if err := json.Unmarshal([]byte(frames[2].Data), &data); err != nil {
		t.Fatalf("retrying data: %v: %s", err, frames[2].Data)
	}
	if data.Attempt != 2 {
		t.Errorf("retrying attempt = %d, want 2", data.Attempt)
	}
}

// TestSSELastEventIDResume checks resume semantics: a reconnect with
// Last-Event-ID replays exactly the events after that id, a resume
// past the end is an empty (but well-formed) stream, and a malformed
// id is a 400.
func TestSSELastEventIDResume(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheCap: -1, ProgressInterval: -1})
	hgr := testHGR(t, 6, 6)
	_, v, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": int64(3)}, nil))
	waitTerminal(t, hs.URL, v.ID)

	full := collectEvents(t, hs.URL, v.ID, -1)
	if len(full) != 3 {
		t.Fatalf("full stream has %d frames, want 3", len(full))
	}

	resumed := collectEvents(t, hs.URL, v.ID, full[0].ID)
	if len(resumed) != 2 || resumed[0].ID != full[0].ID+1 {
		t.Fatalf("resume after id %d: %d frames starting at %d, want 2 starting at %d",
			full[0].ID, len(resumed), resumed[0].ID, full[0].ID+1)
	}
	for i, f := range resumed {
		if f != full[i+1] {
			t.Errorf("resumed frame %d = %+v, want %+v", i, f, full[i+1])
		}
	}

	if tail := collectEvents(t, hs.URL, v.ID, full[len(full)-1].ID); len(tail) != 0 {
		t.Errorf("resume past the end replayed %d frames, want 0", len(tail))
	}

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "banana")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed Last-Event-ID: status %d, want 400", resp.StatusCode)
	}
}

// TestSSEStalledSubscriberDropped asserts the drop-don't-block rule
// at the server layer: a subscriber that never drains its buffer is
// disconnected, events_dropped increments, and the job completes
// promptly — publishing never waits on a slow consumer.
func TestSSEStalledSubscriberDropped(t *testing.T) {
	// The job runs for ~1s (injected delay) while progress events tick
	// every 50ms, so a one-slot subscriber that never drains is
	// guaranteed to overflow regardless of attach timing.
	s, hs := newTestServer(t, Config{
		CacheCap: -1, Workers: 1,
		ProgressInterval: 50 * time.Millisecond,
		Inject: &faultinject.Plan{Seed: 1, Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: time.Second, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 6, 6)
	_, v, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": int64(4)}, nil))

	// White-box: subscribe directly to the job's event log with a
	// one-slot buffer and never read it. The HTTP path cannot starve
	// reliably in-process (kernel socket buffers absorb small writes),
	// so the drop rule is asserted at the layer that owns it.
	s.mu.Lock()
	j := s.jobs[v.ID]
	s.mu.Unlock()
	if j == nil {
		t.Fatalf("job %s not found", v.ID)
	}
	replay, sub := j.events.subscribe(0, 1)
	if sub == nil {
		t.Fatalf("job already terminal before subscribe (replayed %d events)", len(replay))
	}

	start := time.Now()
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCompleted) {
		t.Fatalf("job ended %q, want completed", fin.Status)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("job took %v with a stalled subscriber attached", elapsed)
	}

	// The first post-subscribe event fills the one-slot buffer; the
	// next finds it full, is dropped, and the subscriber is
	// disconnected.
	if got := s.Stats().EventsDropped; got < 1 {
		t.Errorf("events_dropped = %d, want >= 1", got)
	}
	select {
	case _, ok := <-sub.ch:
		if ok {
			// Drained the buffered frame; the channel must now be closed.
			if _, ok := <-sub.ch; ok {
				t.Errorf("stalled subscriber channel still open after drop")
			}
		}
	case <-time.After(5 * time.Second):
		t.Errorf("stalled subscriber channel neither closed nor readable")
	}
}

// FuzzParseSSE fuzzes the stream parser: it must never panic, and
// serialization must converge — re-serializing the parse of a
// serialized stream reproduces it byte for byte (one normalization
// round is allowed for frames that have no serializable fields).
func FuzzParseSSE(f *testing.F) {
	f.Add("id: 1\nevent: queued\ndata: {\"job_id\":\"j-0\"}\n\n")
	f.Add("data: a\ndata: b\n\nevent: x\n\n")
	f.Add(": comment\r\nid: -3\ndata:\n\n")
	f.Add("id: 9\n")                 // trailing incomplete block
	f.Add("bogus line\nevent:y\n\n") // unknown field, no space after colon

	serialize := func(frames []SSEFrame) string {
		var b strings.Builder
		for _, fr := range frames {
			_ = writeSSE(&b, fr.ID, fr.Event, []byte(fr.Data)) // Builder writes cannot fail
		}
		return b.String()
	}

	f.Fuzz(func(t *testing.T, input string) {
		// Each non-converged round strictly shrinks the stream (frames
		// with no serializable field are dropped, stray '\r's are
		// normalized), so a fixpoint must appear within len(input)+2
		// rounds.
		cur := serialize(ParseSSE([]byte(input)))
		for i := 0; i <= len(input)+2; i++ {
			next := serialize(ParseSSE([]byte(cur)))
			if next == cur {
				return
			}
			if len(next) > len(cur) {
				t.Fatalf("round %d grew the stream: %q -> %q", i, cur, next)
			}
			cur = next
		}
		t.Fatalf("serialization never converged for %q (stuck at %q)", input, cur)
	})
}
