package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlpart/internal/faultinject"
	"mlpart/internal/hypergraph"
	"mlpart/internal/netgen"
)

// testHGR returns a deterministic mesh netlist in hMETIS text form.
func testHGR(t *testing.T, w, h int) string {
	t.Helper()
	g, err := netgen.GenerateMesh(netgen.MeshSpec{Width: w, Height: h})
	if err != nil {
		t.Fatalf("GenerateMesh: %v", err)
	}
	var buf bytes.Buffer
	if err := hypergraph.WriteHGR(&buf, g); err != nil {
		t.Fatalf("WriteHGR: %v", err)
	}
	return buf.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = s.Close()
	})
	return s, hs
}

// submitBody builds a POST /v1/jobs document.
func submitBody(t *testing.T, hgr string, k int, options map[string]any, extra map[string]any) []byte {
	t.Helper()
	doc := map[string]any{"hgr": hgr, "k": k}
	if options != nil {
		doc["options"] = options
	}
	for kk, vv := range extra {
		doc[kk] = vv
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

type jobView struct {
	ID          string          `json:"id"`
	Status      string          `json:"status"`
	CacheHit    bool            `json:"cache_hit"`
	Attempts    int             `json:"attempts"`
	Interrupted bool            `json:"interrupted"`
	Recovered   bool            `json:"recovered"`
	Error       *ErrorReport    `json:"error"`
	Result      json.RawMessage `json:"result"`
	Stats       json.RawMessage `json:"stats"`
}

func postJob(t *testing.T, base string, body []byte) (int, jobView, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("unmarshal job view: %v: %s", err, data)
		}
	}
	return resp.StatusCode, v, data
}

func waitTerminal(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "?wait_ms=30000")
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var v jobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal job view: %v: %s", err, data)
	}
	if !Status(v.Status).Terminal() {
		t.Fatalf("job %s still %q after wait", id, v.Status)
	}
	return v
}

func getResult(t *testing.T, base, id string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result %s: %v", id, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result %s: %s: %s", id, resp.Status, data)
	}
	return data, resp.Header.Get("X-Mlpartd-Cache")
}

// checkLedger asserts the no-lost-jobs accounting invariant on a
// quiesced server: accepted == terminals, nothing queued or running.
func checkLedger(t *testing.T, s *Server) {
	t.Helper()
	rep := s.Stats()
	terminals := rep.Completed + rep.Failed + rep.Cancelled + rep.DeadlineExceeded + rep.Drained
	if rep.Queued != 0 || rep.Running != 0 {
		t.Errorf("quiesced server has queued %d, running %d", rep.Queued, rep.Running)
	}
	if rep.Accepted != terminals {
		t.Errorf("ledger violated: accepted %d != terminals %d (%+v)", rep.Accepted, terminals, rep)
	}
	// Batch-lane invariants: batched jobs are a subset of accepted
	// jobs, and a batched job implies at least one flush. These are the
	// same rules statscheck enforces on the final stats document.
	if rep.Batched > rep.Accepted {
		t.Errorf("ledger violated: batched %d > accepted %d", rep.Batched, rep.Accepted)
	}
	if rep.Batched > 0 && rep.BatchFlushes == 0 {
		t.Errorf("ledger violated: batched %d with zero batch flushes", rep.Batched)
	}
	if rep.EventsDropped < 0 {
		t.Errorf("ledger violated: negative events_dropped %d", rep.EventsDropped)
	}
}

func TestSubmitCompleteAndResult(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	hgr := testHGR(t, 8, 8)
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": 7}, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	if v.Status != string(StatusQueued) && v.Status != string(StatusCompleted) {
		t.Fatalf("fresh job status %q", v.Status)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCompleted) {
		t.Fatalf("job ended %q: %+v", fin.Status, fin)
	}
	if fin.CacheHit {
		t.Fatalf("first submission reported a cache hit")
	}
	res, cache := getResult(t, hs.URL, v.ID)
	if cache != "miss" {
		t.Fatalf("X-Mlpartd-Cache = %q, want miss", cache)
	}
	var doc Result
	if err := json.Unmarshal(res, &doc); err != nil {
		t.Fatalf("result doc: %v", err)
	}
	if doc.K != 2 || len(doc.Partition) != 64 || doc.Cut <= 0 {
		t.Fatalf("result doc shape: k %d, %d cells, cut %d", doc.K, len(doc.Partition), doc.Cut)
	}
	if doc.ContentHash == "" || doc.Fingerprint == "" {
		t.Fatalf("result doc missing provenance: %+v", doc)
	}
}

func TestBadSubmissions(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	_ = s
	hgr := testHGR(t, 4, 4)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"hgr": `},
		{"unknown field", `{"hgr": "x", "bogus": 1}`},
		{"bad k", fmt.Sprintf(`{"hgr": %q, "k": 3}`, hgr)},
		{"missing hgr", `{"k": 2}`},
		{"bad hgr", `{"hgr": "not a netlist"}`},
		{"bad options", fmt.Sprintf(`{"hgr": %q, "options": {"starts": -2}}`, hgr)},
		{"unknown option", fmt.Sprintf(`{"hgr": %q, "options": {"bogus": 1}}`, hgr)},
		{"negative timeout", fmt.Sprintf(`{"hgr": %q, "timeout_ms": -5}`, hgr)},
		{"huge timeout", fmt.Sprintf(`{"hgr": %q, "timeout_ms": 99999999999}`, hgr)},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
		var eb struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code == "" {
			t.Errorf("%s: unstructured error body: %s", tc.name, data)
		}
	}
	if rep := s.Stats(); rep.Invalid != int64(len(cases)) {
		t.Errorf("invalid counter = %d, want %d", rep.Invalid, len(cases))
	}
}

// TestQueueFullSheds fills the admission queue behind a deliberately
// slowed worker and asserts the burst is shed with structured 429s
// carrying Retry-After, while every accepted job still terminates.
func TestQueueFullSheds(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		CacheCap:   -1,
		// Hold each job in its attempt long enough for the burst to
		// pile up behind the single worker.
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: 300 * time.Millisecond, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 4, 4)

	var ids []string
	var rejected int
	var sawRetryAfter bool
	for i := 0; i < 12; i++ {
		body := submitBody(t, hgr, 2, map[string]any{"seed": int64(i)}, nil)
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v jobView
			if err := json.Unmarshal(data, &v); err != nil {
				t.Fatalf("job view: %v", err)
			}
			ids = append(ids, v.ID)
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
			var eb struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code != "queue_full" {
				t.Fatalf("429 body not structured: %s", data)
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, data)
		}
	}
	if rejected == 0 {
		t.Fatalf("12 submissions against queue depth 2: no 429s")
	}
	if !sawRetryAfter {
		t.Fatalf("429 responses missing Retry-After")
	}
	for _, id := range ids {
		v := waitTerminal(t, hs.URL, id)
		if v.Status != string(StatusCompleted) {
			t.Errorf("accepted job %s ended %q", id, v.Status)
		}
	}
	checkLedger(t, s)
	if rep := s.Stats(); rep.RejectedQueueFull != int64(rejected) {
		t.Errorf("rejected_queue_full = %d, want %d", rep.RejectedQueueFull, rejected)
	}
}

// TestParallelismIdentity submits the same problem with parallelism 1
// and 4 (cache disabled so the second run really computes) and
// requires byte-identical result documents.
func TestParallelismIdentity(t *testing.T) {
	s, hs := newTestServer(t, Config{CacheCap: -1})
	_ = s
	hgr := testHGR(t, 10, 10)
	var bodies [][]byte
	for _, par := range []int{1, 4} {
		code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2,
			map[string]any{"seed": 42, "starts": 4, "parallelism": par}, nil))
		if code != http.StatusAccepted {
			t.Fatalf("parallelism %d: status %d: %s", par, code, data)
		}
		fin := waitTerminal(t, hs.URL, v.ID)
		if fin.Status != string(StatusCompleted) {
			t.Fatalf("parallelism %d: ended %q", par, fin.Status)
		}
		if fin.CacheHit {
			t.Fatalf("parallelism %d: cache hit with caching disabled", par)
		}
		res, _ := getResult(t, hs.URL, v.ID)
		bodies = append(bodies, res)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("results differ across parallelism:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestCacheHitIdentity submits the same problem twice and requires
// the cache hit to be flagged in the header and metadata while the
// result body stays byte-identical.
func TestCacheHitIdentity(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	hgr := testHGR(t, 8, 8)
	// Parallelism is excluded from the fingerprint, so runs differing
	// only in worker count share a cache entry.
	mk := func(par int) []byte {
		return submitBody(t, hgr, 2, map[string]any{"seed": 3, "starts": 2, "parallelism": par}, nil)
	}

	_, v1, _ := postJob(t, hs.URL, mk(1))
	fin1 := waitTerminal(t, hs.URL, v1.ID)
	if fin1.Status != string(StatusCompleted) || fin1.CacheHit {
		t.Fatalf("first job: %+v", fin1)
	}
	res1, c1 := getResult(t, hs.URL, v1.ID)

	_, v2, _ := postJob(t, hs.URL, mk(4))
	fin2 := waitTerminal(t, hs.URL, v2.ID)
	if fin2.Status != string(StatusCompleted) || !fin2.CacheHit {
		t.Fatalf("second job should be a cache hit: %+v", fin2)
	}
	res2, c2 := getResult(t, hs.URL, v2.ID)

	if c1 != "miss" || c2 != "hit" {
		t.Fatalf("cache headers %q, %q; want miss, hit", c1, c2)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cache hit body differs:\n%s\nvs\n%s", res1, res2)
	}
	rep := s.Stats()
	if rep.CacheHits != 1 || rep.CacheMisses != 1 {
		t.Fatalf("cache counters hits %d misses %d, want 1/1", rep.CacheHits, rep.CacheMisses)
	}
}

// TestDeadlineExceeded holds the only attempt past a tiny job
// deadline and requires the deadline-exceeded terminal status.
func TestDeadlineExceeded(t *testing.T) {
	s, hs := newTestServer(t, Config{
		MaxRetries: -1,
		CacheCap:   -1,
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: 400 * time.Millisecond, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 6, 6)
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, nil,
		map[string]any{"timeout_ms": 50}))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, data)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusDeadlineExceeded) {
		t.Fatalf("job ended %q, want deadline-exceeded", fin.Status)
	}
	checkLedger(t, s)
}

// TestClientCancel cancels a running job via DELETE and requires the
// cancelled terminal status.
func TestClientCancel(t *testing.T) {
	s, hs := newTestServer(t, Config{
		CacheCap: -1,
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: 500 * time.Millisecond, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 6, 6)
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, data)
	}
	// Wait until the job is running (in its injected delay), then
	// cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		jv, ok := s.Job(v.ID)
		if !ok {
			t.Fatalf("job %s vanished", v.ID)
		}
		if jv.Status == StatusRunning {
			break
		}
		if jv.Status.Terminal() {
			t.Fatalf("job %s terminal (%s) before cancel", v.ID, jv.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", v.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCancelled) {
		t.Fatalf("job ended %q, want cancelled", fin.Status)
	}
	checkLedger(t, s)
}

// TestCancelQueued cancels a job that is still waiting in the queue.
func TestCancelQueued(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 8,
		CacheCap:   -1,
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: 300 * time.Millisecond, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 4, 4)
	// First job occupies the single worker; the second waits queued.
	_, v1, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": 1}, nil))
	_, v2, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": 2}, nil))
	if _, ok := s.Cancel(v2.ID); !ok {
		t.Fatalf("cancel: job %s not found", v2.ID)
	}
	fin2 := waitTerminal(t, hs.URL, v2.ID)
	if fin2.Status != string(StatusCancelled) {
		t.Fatalf("queued job ended %q, want cancelled", fin2.Status)
	}
	fin1 := waitTerminal(t, hs.URL, v1.ID)
	if fin1.Status != string(StatusCompleted) {
		t.Fatalf("running job ended %q, want completed", fin1.Status)
	}
	checkLedger(t, s)
}

// TestAdmitPanicIsolated injects a panic at server.admit and requires
// a structured 500 for that submission only — the next submission
// succeeds and the process stays healthy.
func TestAdmitPanicIsolated(t *testing.T) {
	s, hs := newTestServer(t, Config{Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
		Site: faultinject.SiteServerAdmit, Kind: faultinject.KindPanic,
		OnHit: 1, Start: 0, // submission 0 only
	}}}})
	hgr := testHGR(t, 4, 4)

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBody(t, hgr, 2, nil, nil)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected admission panic: status %d: %s", resp.StatusCode, data)
	}

	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submission after panic: %d: %s", code, data)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCompleted) {
		t.Fatalf("job after panic ended %q", fin.Status)
	}
	checkLedger(t, s)
}

// TestJobPanicRetries injects a panic into the first execution
// attempt only; the retry completes and reports two attempts.
func TestJobPanicRetries(t *testing.T) {
	s, hs := newTestServer(t, Config{
		CacheCap: -1,
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindPanic,
			OnHit: 1, Start: 0,
		}}},
	})
	hgr := testHGR(t, 6, 6)
	// The injector is derived from (seq, attempt); the plan's Start
	// targets seq 0, and faultinject arms OnHit entries only for
	// retry 0 unless re-derived — attempt 1 gets a fresh injector
	// with the same entry, so guard with Fired semantics: the panic
	// fires each attempt's first hit. The pipeline-level behavior we
	// assert is only "the job ends in a terminal status with a typed
	// error or a completed retry".
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, data)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	switch fin.Status {
	case string(StatusCompleted):
		if fin.Attempts < 1 {
			t.Fatalf("completed with %d attempts", fin.Attempts)
		}
	case string(StatusFailed):
		if fin.Error == nil || fin.Error.Code != "internal" {
			t.Fatalf("failed without a typed internal error: %+v", fin.Error)
		}
		if fin.Error.Attempts < 2 {
			t.Fatalf("failed after %d attempts, want retries", fin.Error.Attempts)
		}
	default:
		t.Fatalf("job ended %q", fin.Status)
	}
	checkLedger(t, s)
}

// TestJobPanicExhaustsRetries arms a panic on every attempt of
// submission 0: the job must end failed with a typed "internal"
// ErrorReport counting all attempts, and the server must keep
// serving.
func TestJobPanicExhaustsRetries(t *testing.T) {
	entries := []faultinject.Entry{}
	// One entry per (attempt) since injectors are re-derived with the
	// retry index; AnyStart would hit every job, so pin to seq 0.
	entries = append(entries, faultinject.Entry{
		Site: faultinject.SiteServerJob, Kind: faultinject.KindPanic, OnHit: 1, Start: 0,
	})
	s, hs := newTestServer(t, Config{
		MaxRetries: 2,
		CacheCap:   -1,
		Inject:     &faultinject.Plan{Entries: entries},
	})
	hgr := testHGR(t, 4, 4)
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, data)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusFailed) {
		t.Fatalf("job ended %q, want failed (panic armed on every attempt)", fin.Status)
	}
	if fin.Error == nil || fin.Error.Code != "internal" || fin.Error.Attempts != 3 {
		t.Fatalf("error report %+v, want internal after 3 attempts", fin.Error)
	}
	if rep := s.Stats(); rep.Retried != 2 {
		t.Errorf("retried = %d, want 2", rep.Retried)
	}

	// The process is still healthy: the next job completes.
	code, v2, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": 9}, nil))
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: %d", code)
	}
	if fin := waitTerminal(t, hs.URL, v2.ID); fin.Status != string(StatusCompleted) {
		t.Fatalf("follow-up job ended %q", fin.Status)
	}
	checkLedger(t, s)
}

// TestCorruptBypassesCache arms a corrupt fault at server.job: the
// job must bypass the cache (degraded throughput) while still
// returning a byte-identical, correct result.
func TestCorruptBypassesCache(t *testing.T) {
	hgr := testHGR(t, 8, 8)
	mk := func() []byte {
		return submitBody(t, hgr, 2, map[string]any{"seed": 5}, nil)
	}

	// Reference result from a clean server.
	sClean, hsClean := newTestServer(t, Config{})
	_ = sClean
	_, vr, _ := postJob(t, hsClean.URL, mk())
	waitTerminal(t, hsClean.URL, vr.ID)
	want, _ := getResult(t, hsClean.URL, vr.ID)

	s, hs := newTestServer(t, Config{Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
		Site: faultinject.SiteServerJob, Kind: faultinject.KindCorrupt,
		OnHit: 1, Start: faultinject.AnyStart,
	}}}})
	_, v1, _ := postJob(t, hs.URL, mk())
	waitTerminal(t, hs.URL, v1.ID)
	res1, _ := getResult(t, hs.URL, v1.ID)
	_, v2, _ := postJob(t, hs.URL, mk())
	fin2 := waitTerminal(t, hs.URL, v2.ID)
	if fin2.CacheHit {
		t.Fatalf("corrupt fault should bypass the cache, got a hit")
	}
	res2, c2 := getResult(t, hs.URL, v2.ID)
	if c2 != "miss" {
		t.Fatalf("X-Mlpartd-Cache = %q under cache bypass", c2)
	}
	if !bytes.Equal(res1, want) || !bytes.Equal(res2, want) {
		t.Fatalf("degraded-mode results differ from reference")
	}
	if rep := s.Stats(); rep.CacheHits != 0 {
		t.Errorf("cache_hits = %d under bypass", rep.CacheHits)
	}
}

// TestDrainMidBurst starts a burst against a slow single worker and
// drains mid-flight: jobs finish or are drained — none lost — and
// later submissions are refused with 503.
func TestDrainMidBurst(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Workers:      1,
		QueueDepth:   32,
		CacheCap:     -1,
		DrainTimeout: 100 * time.Millisecond,
		Inject: &faultinject.Plan{Entries: []faultinject.Entry{{
			Site: faultinject.SiteServerJob, Kind: faultinject.KindDelay,
			OnHit: 1, Delay: 150 * time.Millisecond, Start: faultinject.AnyStart,
		}}},
	})
	hgr := testHGR(t, 4, 4)

	var ids []string
	for i := 0; i < 8; i++ {
		code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 2, map[string]any{"seed": int64(i)}, nil))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d: %s", i, code, data)
		}
		ids = append(ids, v.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Post-drain: admission refuses with 503 + Retry-After.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBody(t, hgr, 2, nil, nil)))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 missing Retry-After")
	}

	// readyz flips to 503, healthz stays 200.
	if resp, err := http.Get(hs.URL + "/readyz"); err != nil {
		t.Fatalf("readyz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while drained: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz while drained: %d", resp.StatusCode)
		}
	}

	// Every accepted job is terminal; a drain may complete some and
	// drain the rest, but must lose none.
	counts := map[string]int{}
	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if !v.Status.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", id, v.Status)
		}
		counts[string(v.Status)]++
	}
	if counts[string(StatusDrained)] == 0 {
		t.Logf("note: all burst jobs finished inside the grace period: %v", counts)
	}
	checkLedger(t, s)
	if !s.Stats().Draining {
		t.Errorf("stats say not draining after Drain")
	}
}

// TestChaosSweepServer runs every fault kind through both server
// sites under a concurrent burst and asserts the core robustness
// contract: the process never dies, every accepted job reaches
// exactly one terminal status, and the ledger balances.
func TestChaosSweepServer(t *testing.T) {
	kinds := []faultinject.Kind{
		faultinject.KindPanic, faultinject.KindCancel,
		faultinject.KindDelay, faultinject.KindCorrupt,
	}
	sites := []faultinject.Site{
		faultinject.SiteServerAdmit, faultinject.SiteServerJob,
		faultinject.SiteServerBatch, faultinject.SiteServerEvents,
	}
	hgr := testHGR(t, 6, 6)

	for _, site := range sites {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s_%d", site, kind), func(t *testing.T) {
				t.Parallel()
				// Batching is on for every sweep cell so the server.batch
				// site is live and the other sites compose with the lane.
				s, hs := newTestServer(t, Config{
					Workers:    2,
					QueueDepth: 16,
					CacheCap:   -1,
					MaxRetries: 1,
					BatchPinLimit: 1 << 20, BatchWorkers: 1,
					Inject: &faultinject.Plan{Seed: 7, Entries: []faultinject.Entry{{
						Site: site, Kind: kind, Prob: 0.5,
						Delay: 20 * time.Millisecond, Start: faultinject.AnyStart,
					}}},
				})

				const jobs = 10
				var wg sync.WaitGroup
				ids := make([]string, jobs)
				codes := make([]int, jobs)
				for i := 0; i < jobs; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						body := submitBody(t, hgr, 2, map[string]any{"seed": int64(i)}, nil)
						resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
						if err != nil {
							t.Errorf("POST %d: %v", i, err)
							return
						}
						data, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						codes[i] = resp.StatusCode
						if resp.StatusCode == http.StatusAccepted {
							var v jobView
							if err := json.Unmarshal(data, &v); err != nil {
								t.Errorf("job view %d: %v", i, err)
								return
							}
							ids[i] = v.ID
						}
					}(i)
				}
				wg.Wait()

				accepted := 0
				for i, id := range ids {
					if id == "" {
						// Shed or failed at admission — that must have been a
						// structured rejection, not a transport error.
						if codes[i] != http.StatusTooManyRequests && codes[i] != http.StatusInternalServerError {
							t.Errorf("submission %d: unexpected status %d", i, codes[i])
						}
						continue
					}
					accepted++
					v := waitTerminal(t, hs.URL, id)
					if !Status(v.Status).Terminal() {
						t.Errorf("job %s non-terminal %q", id, v.Status)
					}
					// Exercise the SSE endpoint under fault: the job is
					// terminal so the stream is a finite replay. An injected
					// panic at server.events is a structured 500 for this
					// subscription only — never a wedged or dead server.
					resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events")
					if err != nil {
						t.Errorf("GET events %s: %v", id, err)
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
						t.Errorf("GET events %s: unexpected status %d", id, resp.StatusCode)
					}
				}

				// Drain and re-verify: quiesced ledger, process healthy.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := s.Drain(ctx); err != nil {
					t.Fatalf("drain: %v", err)
				}
				rep := s.Stats()
				if rep.Accepted != int64(accepted) {
					t.Errorf("accepted counter %d, want %d", rep.Accepted, accepted)
				}
				checkLedger(t, s)
			})
		}
	}
}

// TestStatszAndProbes exercises the observability endpoints.
func TestStatszAndProbes(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	_ = s
	hgr := testHGR(t, 6, 6)
	_, v, _ := postJob(t, hs.URL, submitBody(t, hgr, 2, nil, map[string]any{"stats": true}))
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCompleted) {
		t.Fatalf("job ended %q", fin.Status)
	}
	if len(fin.Stats) == 0 || string(fin.Stats) == "null" {
		t.Fatalf("stats requested but job view has none")
	}
	var runRep struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(fin.Stats, &runRep); err != nil || runRep.Schema != "mlpart-stats/1" {
		t.Fatalf("job stats schema %q (%v)", runRep.Schema, err)
	}

	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var rep struct {
		Schema    string `json:"schema"`
		Accepted  int64  `json:"accepted"`
		Completed int64  `json:"completed"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("statsz body: %v: %s", err, data)
	}
	if rep.Schema != "mlpartd-stats/1" || rep.Accepted != 1 || rep.Completed != 1 {
		t.Fatalf("statsz %+v", rep)
	}

	if resp, err := http.Get(hs.URL + "/v1/jobs/nope"); err != nil {
		t.Fatalf("GET missing job: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job: %d", resp.StatusCode)
		}
	}
}

// TestQuadrisection runs a k=4 job through the service.
func TestQuadrisection(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	_ = s
	hgr := testHGR(t, 8, 8)
	code, v, data := postJob(t, hs.URL, submitBody(t, hgr, 4, map[string]any{"seed": 11}, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, data)
	}
	fin := waitTerminal(t, hs.URL, v.ID)
	if fin.Status != string(StatusCompleted) {
		t.Fatalf("quad job ended %q", fin.Status)
	}
	var doc Result
	if err := json.Unmarshal(fin.Result, &doc); err != nil {
		t.Fatalf("result: %v", err)
	}
	if doc.K != 4 {
		t.Fatalf("result k = %d", doc.K)
	}
	blocks := map[int32]bool{}
	for _, b := range doc.Partition {
		blocks[b] = true
	}
	if len(blocks) != 4 {
		t.Fatalf("quadrisection used %d blocks", len(blocks))
	}
}

// TestResultCacheLRU exercises the bounded cache directly.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) cacheKey { return cacheKey{content: fmt.Sprint(i), fingerprint: "f", k: 2} }
	c.put(k(1), Result{Cut: 1})
	c.put(k(2), Result{Cut: 2})
	if _, ok := c.get(k(1)); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.put(k(3), Result{Cut: 3}) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted despite recency")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
	if disabled := newResultCache(-1); disabled != nil {
		t.Fatal("negative capacity should disable")
	}
}
