// Package gfm implements the Gradient Fiduccia–Mattheyses baseline
// of Liu, Kuo, Huang and Cheng ("A Gradient Method on the Initial
// Partition of Fiduccia–Mattheyses Algorithm", ICCAD 1995 — the
// paper's [32], a Table VII comparison column): FM refinement
// alternates with gradient descent on the quadratic-wirelength
// relaxation.
//
// One GFM round takes the current bipartition as a ±1 indicator
// vector x, performs a few explicit gradient steps on the clique-
// model quadratic cost ½·xᵀLx (x ← x − α·Lx, with the step α chosen
// from the Laplacian's Gershgorin bound so the iteration is a
// contraction on the high-frequency components), rounds the smoothed
// coordinates back to a balanced bipartition at the area median, and
// refines with FM. Rounds repeat while they improve.
package gfm

import (
	"fmt"
	"math/rand"
	"sort"

	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/netmodel"
)

// Config parameterizes GFM.
type Config struct {
	// MaxRounds bounds the FM↔gradient alternations. Default 10.
	MaxRounds int
	// GradientSteps per round. Default 10.
	GradientSteps int
	// CliqueLimit for the net model. Default 16.
	CliqueLimit int
	// Refine configures the FM engine used between gradient steps.
	Refine fm.Config
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.MaxRounds == 0 {
		c.MaxRounds = 10
	}
	if c.MaxRounds < 1 {
		return c, fmt.Errorf("gfm: MaxRounds %d < 1", c.MaxRounds)
	}
	if c.GradientSteps == 0 {
		c.GradientSteps = 10
	}
	if c.GradientSteps < 1 {
		return c, fmt.Errorf("gfm: GradientSteps %d < 1", c.GradientSteps)
	}
	if c.CliqueLimit == 0 {
		c.CliqueLimit = 16
	}
	if c.CliqueLimit < 2 {
		return c, fmt.Errorf("gfm: clique limit %d < 2", c.CliqueLimit)
	}
	var err error
	if c.Refine, err = c.Refine.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// Result reports a GFM run.
type Result struct {
	// Cut of the final bipartitioning (all nets).
	Cut int
	// Rounds actually performed (including the final non-improving
	// one).
	Rounds int
}

// Bipartition runs GFM on h from a random start.
func Bipartition(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	n := h.NumCells()
	if n == 0 {
		return hypergraph.NewPartition(0, 2), Result{}, nil
	}
	g := netmodel.Build(h, cfg.CliqueLimit)
	// Gradient step size: 1/λmax bound; λmax ≤ 2·maxdeg (Gershgorin).
	alpha := 0.0
	if md := g.MaxDegree(); md > 0 {
		alpha = 1.0 / (2 * md)
	}

	p, fres, err := fm.Partition(h, nil, cfg.Refine, rng)
	if err != nil {
		return nil, Result{}, err
	}
	best := p
	bestCut := fres.Cut
	res := Result{Cut: bestCut, Rounds: 1}

	x := make([]float64, n)
	y := make([]float64, n)
	for round := 1; round < cfg.MaxRounds; round++ {
		// Indicator of the current best solution.
		for v := 0; v < n; v++ {
			if best.Part[v] == 0 {
				x[v] = -1
			} else {
				x[v] = 1
			}
		}
		// Gradient descent on ½ xᵀLx.
		if alpha > 0 {
			for s := 0; s < cfg.GradientSteps; s++ {
				g.LaplacianMulAdd(x, y)
				for i := range x {
					x[i] -= alpha * y[i]
				}
			}
		}
		// Round back to a balanced bipartition at the area median.
		cand := splitAtAreaMedian(h, x)
		cres, err := fm.Refine(h, cand, cfg.Refine, rng)
		if err != nil {
			return nil, Result{}, err
		}
		res.Rounds++
		if cres.Cut < bestCut {
			best = cand
			bestCut = cres.Cut
		} else {
			break
		}
	}
	res.Cut = bestCut
	return best, res, nil
}

// splitAtAreaMedian orders cells by the relaxed coordinate and cuts
// at half the total area.
func splitAtAreaMedian(h *hypergraph.Hypergraph, x []float64) *hypergraph.Partition {
	n := h.NumCells()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.SliceStable(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })
	p := hypergraph.NewPartition(n, 2)
	half := h.TotalArea() / 2
	var cum int64
	for _, v := range order {
		if cum >= half {
			p.Part[v] = 1
		}
		cum += h.Area(int(v))
	}
	return p
}
