package gfm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestGFMValidBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 30+rng.Intn(80), 50+rng.Intn(100), 5)
		p, res, err := Bipartition(h, Config{}, rng)
		if err != nil {
			return false
		}
		if res.Cut != p.Cut(h) {
			return false
		}
		return p.IsBalanced(h, hypergraph.Balance(h, 2, 0.1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGFMAtLeastAsGoodAsSingleFM(t *testing.T) {
	// GFM's first round IS an FM run; further rounds only keep
	// improvements, so GFM ≤ FM for the same seed.
	rng := rand.New(rand.NewSource(3))
	h := randomH(rng, 150, 300, 5)
	for seed := int64(0); seed < 5; seed++ {
		_, fres, err := fm.Partition(h, nil, fm.Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		_, gres, err := Bipartition(h, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if gres.Cut > fres.Cut {
			t.Errorf("seed %d: GFM %d worse than plain FM %d", seed, gres.Cut, fres.Cut)
		}
	}
}

func TestGFMFindsOptimumOnTwoCliques(t *testing.T) {
	b := hypergraph.NewBuilder(16)
	for g := 0; g < 2; g++ {
		base := g * 8
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				b.AddNet(base+i, base+j)
			}
		}
	}
	b.AddNet(0, 8)
	h := b.MustBuild()
	found := false
	for seed := int64(0); seed < 5; seed++ {
		_, res, err := Bipartition(h, Config{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut == 1 {
			found = true
		}
	}
	if !found {
		t.Error("GFM never found the optimum")
	}
}

func TestGFMRoundsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 100, 200, 4)
	_, res, err := Bipartition(h, Config{MaxRounds: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Errorf("rounds = %d > 3", res.Rounds)
	}
}

func TestGFMEmptyAndErrors(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	if _, res, err := Bipartition(h, Config{}, rand.New(rand.NewSource(0))); err != nil || res.Cut != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	h2 := randomH(rand.New(rand.NewSource(1)), 10, 15, 3)
	for _, bad := range []Config{
		{MaxRounds: -1}, {GradientSteps: -1}, {CliqueLimit: 1},
		{Refine: fm.Config{Tolerance: 9}},
	} {
		if _, _, err := Bipartition(h2, bad, rand.New(rand.NewSource(0))); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
}
