// Package intrapar provides the deterministic intra-run worker pool
// of the pipeline: a fixed set of goroutines that execute
// caller-supplied range functions over [0, n) split into contiguous
// ranges whose boundaries depend only on (n, worker count), never on
// scheduling.
//
// Determinism contract: the pool never makes an ordering decision.
// Callers hand Run a pure range function (no shared writes outside the
// worker's own output slot, no RNG, no wall clock — the par-purity
// lint enforces this for the pipeline packages) and perform any merge
// of per-worker results themselves, in range-index order, on the
// calling goroutine. Everything order-dependent therefore happens
// serially, which is what makes the parallel pipeline stages
// bit-identical across worker counts.
//
// A pool belongs to one pipeline attempt: the supervisor's attempt
// closures create one per attempt (inside core's pipelineWS bundle)
// and Close it when the attempt returns, so no goroutines or channels
// outlive a run. A pool with one worker executes ranges inline on the
// calling goroutine — no goroutines are ever spawned — which gives
// the "parallel algorithm, serial execution" configuration the
// differential tests compare against higher worker counts.
package intrapar

// task is one range execution request.
type task struct {
	fn     func(worker, lo, hi int)
	worker int
	lo, hi int
}

// outcome reports one completed range, carrying a recovered panic
// value when the range function panicked.
type outcome struct {
	worker   int
	panicked bool
	pv       any
}

// Pool is a fixed-size worker pool. The zero value is not usable; use
// New. A Pool is owned by a single goroutine: Run and Regions must not
// be called concurrently (the pipeline calls them from the attempt
// goroutine only).
type Pool struct {
	workers int
	tasks   chan task
	done    chan outcome
	regions int64
}

// New returns a pool with the given number of workers (values below 1
// are treated as 1). With one worker no goroutines are started and Run
// executes inline.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan task)
		p.done = make(chan outcome, workers)
		for i := 0; i < workers; i++ {
			go work(p.tasks, p.done)
		}
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Regions returns how many Run invocations the pool has executed —
// the per-stage parallel-region counters of the telemetry layer are
// deltas of this value. Incremented on the calling goroutine.
func (p *Pool) Regions() int64 { return p.regions }

// Run splits [0, n) into at most Workers() contiguous non-empty
// ranges and executes fn once per range. Range boundaries are a pure
// function of (n, Workers()): range i covers n/w cells plus one of the
// n%w leftovers for i < n%w, in index order. fn receives the range
// index as worker — per-range scratch and output slots are indexed by
// it — and must not write shared state outside its own slot.
//
// Run returns after every range completes. If any range function
// panics, the panic with the lowest range index is re-raised on the
// calling goroutine (after all ranges finish), so the pipeline's
// recovery barriers observe worker panics exactly where they observe
// serial ones.
func (p *Pool) Run(n int, fn func(worker, lo, hi int)) {
	p.regions++
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	base, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		p.tasks <- task{fn: fn, worker: i, lo: lo, hi: hi}
		lo = hi
	}
	panicked := false
	panicWorker := 0
	var pv any
	for i := 0; i < w; i++ {
		o := <-p.done
		if o.panicked && (!panicked || o.worker < panicWorker) {
			panicked = true
			panicWorker = o.worker
			pv = o.pv
		}
	}
	if panicked {
		panic(pv)
	}
}

// Close shuts the worker goroutines down. The pool must be idle (no
// Run in flight) and must not be used afterwards. Closing a
// single-worker pool is a no-op. Safe to call on a nil pool, so the
// pipeline can defer Close unconditionally.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.tasks = nil
}

// work is the worker-goroutine loop: execute tasks until Close. The
// channels are parameters, not field reads, so Close's field clear
// does not race with running workers.
func work(tasks <-chan task, done chan<- outcome) {
	for t := range tasks {
		done <- run(t)
	}
}

// run executes one task behind a recover barrier so a panicking range
// function cannot kill the worker goroutine; the panic value is
// shipped back to Run and re-raised there.
func run(t task) (o outcome) {
	o.worker = t.worker
	defer func() {
		if pv := recover(); pv != nil {
			o.panicked = true
			o.pv = pv
		}
	}()
	t.fn(t.worker, t.lo, t.hi)
	return o
}
