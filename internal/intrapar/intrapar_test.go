package intrapar

import (
	"sync/atomic"
	"testing"
)

// ranges runs a Run over n items and records which (worker, lo, hi)
// ranges were issued, in range-index order.
func ranges(p *Pool, n int) [][3]int {
	out := make([][3]int, p.Workers())
	for i := range out {
		out[i] = [3]int{-1, -1, -1}
	}
	p.Run(n, func(worker, lo, hi int) {
		out[worker] = [3]int{worker, lo, hi}
	})
	return out
}

// TestRangesPartition checks that every Run covers [0, n) exactly once
// with contiguous, ascending, non-empty ranges, for a spread of
// (workers, n) combinations including n < workers and n == 0.
func TestRangesPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 1023} {
			got := ranges(p, n)
			lo := 0
			used := 0
			for i, r := range got {
				if r[0] < 0 {
					continue // range index not issued
				}
				used++
				if r[0] != i {
					t.Fatalf("workers=%d n=%d: slot %d got worker %d", workers, n, i, r[0])
				}
				if r[1] != lo {
					t.Fatalf("workers=%d n=%d worker %d: lo=%d want %d", workers, n, i, r[1], lo)
				}
				if r[2] <= r[1] {
					t.Fatalf("workers=%d n=%d worker %d: empty range [%d,%d)", workers, n, i, r[1], r[2])
				}
				lo = r[2]
			}
			if lo != n {
				t.Fatalf("workers=%d n=%d: ranges cover [0,%d), want [0,%d)", workers, n, lo, n)
			}
			if n > 0 && used != min(workers, n) {
				t.Fatalf("workers=%d n=%d: %d ranges issued, want %d", workers, n, used, min(workers, n))
			}
		}
		p.Close()
	}
}

// TestRangeBoundariesMatchSerial checks the determinism contract
// directly: the range boundaries for a given (workers, n) are a pure
// function of those two values, so two pools with the same size issue
// identical ranges.
func TestRangeBoundariesMatchSerial(t *testing.T) {
	a, b := New(4), New(4)
	defer a.Close()
	defer b.Close()
	for _, n := range []int{1, 5, 16, 17, 333} {
		if ra, rb := ranges(a, n), ranges(b, n); len(ra) != len(rb) {
			t.Fatalf("n=%d: range count differs", n)
		} else {
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("n=%d range %d: %v vs %v", n, i, ra[i], rb[i])
				}
			}
		}
	}
}

// TestRunComputesInParallel sums integers with per-worker accumulator
// slots merged on the caller, across worker counts, and checks the
// result is identical and correct.
func TestRunComputesInParallel(t *testing.T) {
	const n = 10000
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		acc := make([]int, p.Workers())
		p.Run(n, func(worker, lo, hi int) {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			acc[worker] = s
		})
		p.Close()
		got := 0
		for _, s := range acc {
			got += s
		}
		if got != want {
			t.Fatalf("workers=%d: sum=%d want %d", workers, got, want)
		}
	}
}

// TestSingleWorkerInline checks that a one-worker pool runs the range
// function on the calling goroutine (observable via a plain, unsynced
// variable: the race detector would flag any cross-goroutine access).
func TestSingleWorkerInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	hit := 0
	p.Run(5, func(worker, lo, hi int) {
		if worker != 0 || lo != 0 || hi != 5 {
			t.Fatalf("inline range = (%d,%d,%d), want (0,0,5)", worker, lo, hi)
		}
		hit++
	})
	if hit != 1 {
		t.Fatalf("fn ran %d times, want 1", hit)
	}
}

// TestPanicPropagates checks that a panic in a range function is
// re-raised on the calling goroutine with the original panic value,
// that the lowest range index wins when several panic, and that the
// pool stays usable afterwards.
func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		func() {
			defer func() {
				pv := recover()
				if pv != "boom:0" {
					t.Fatalf("workers=%d: recovered %v, want boom:0", workers, pv)
				}
			}()
			p.Run(8, func(worker, lo, hi int) {
				if worker%2 == 0 {
					panic("boom:" + string(rune('0'+worker)))
				}
			})
			t.Fatalf("workers=%d: Run returned without panicking", workers)
		}()
		// Pool must still work after a panic.
		var count atomic.Int64
		p.Run(100, func(worker, lo, hi int) {
			count.Add(int64(hi - lo))
		})
		if count.Load() != 100 {
			t.Fatalf("workers=%d: post-panic Run covered %d, want 100", workers, count.Load())
		}
		p.Close()
	}
}

// TestRegionsCountsRuns checks the telemetry hook: Regions increments
// once per Run, including empty ones, on the calling goroutine.
func TestRegionsCountsRuns(t *testing.T) {
	p := New(2)
	defer p.Close()
	for i := 0; i < 5; i++ {
		p.Run(i, func(worker, lo, hi int) {})
	}
	if got := p.Regions(); got != 5 {
		t.Fatalf("Regions=%d want 5", got)
	}
}

// TestNilPoolClose checks the unconditional-defer contract.
func TestNilPoolClose(t *testing.T) {
	var p *Pool
	p.Close() // must not panic
}
