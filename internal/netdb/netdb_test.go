package netdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/hypergraph"
)

func build3(t *testing.T) (*DB, []CellID, NetID, NetID) {
	t.Helper()
	db := &DB{}
	a := db.AddCell(2)
	b := db.AddCell(3)
	c := db.AddCell(5)
	n1, err := db.AddNet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := db.AddNet(b, c)
	if err != nil {
		t.Fatal(err)
	}
	return db, []CellID{a, b, c}, n1, n2
}

func TestAddAndQuery(t *testing.T) {
	db, cells, n1, _ := build3(t)
	if db.NumCells() != 3 || db.NumNets() != 2 || db.NumPins() != 4 {
		t.Fatalf("counts: %d %d %d", db.NumCells(), db.NumNets(), db.NumPins())
	}
	if a, _ := db.Area(cells[1]); a != 3 {
		t.Errorf("area = %d", a)
	}
	if d, _ := db.Degree(cells[1]); d != 2 {
		t.Errorf("degree = %d", d)
	}
	pins, _ := db.Pins(n1)
	if len(pins) != 2 {
		t.Errorf("pins = %v", pins)
	}
	nets, _ := db.Nets(cells[1])
	if len(nets) != 2 {
		t.Errorf("nets = %v", nets)
	}
}

func TestConnectDisconnectIdempotent(t *testing.T) {
	db, cells, n1, _ := build3(t)
	before := db.NumPins()
	if err := db.Connect(n1, cells[0]); err != nil { // already on net
		t.Fatal(err)
	}
	if db.NumPins() != before {
		t.Error("duplicate connect changed pin count")
	}
	if err := db.Disconnect(n1, cells[2]); err != nil { // not on net
		t.Fatal(err)
	}
	if db.NumPins() != before {
		t.Error("spurious disconnect changed pin count")
	}
	if err := db.Disconnect(n1, cells[0]); err != nil {
		t.Fatal(err)
	}
	if db.NumPins() != before-1 {
		t.Error("disconnect did not drop a pin")
	}
}

func TestRemoveNet(t *testing.T) {
	db, cells, n1, _ := build3(t)
	if err := db.RemoveNet(n1); err != nil {
		t.Fatal(err)
	}
	if db.NumNets() != 1 || db.NumPins() != 2 {
		t.Errorf("counts after remove: %d nets %d pins", db.NumNets(), db.NumPins())
	}
	if d, _ := db.Degree(cells[0]); d != 0 {
		t.Errorf("cell 0 degree = %d", d)
	}
	if err := db.RemoveNet(n1); err == nil {
		t.Error("double remove must error")
	}
}

func TestRemoveCell(t *testing.T) {
	db, cells, _, _ := build3(t)
	if err := db.RemoveCell(cells[1]); err != nil {
		t.Fatal(err)
	}
	if db.NumCells() != 2 || db.NumPins() != 2 {
		t.Errorf("counts: %d cells %d pins", db.NumCells(), db.NumPins())
	}
	if db.CellOK(cells[1]) {
		t.Error("cell still alive")
	}
	if _, err := db.Area(cells[1]); err == nil {
		t.Error("query on dead cell must error")
	}
}

func TestIDRecycling(t *testing.T) {
	db, cells, _, _ := build3(t)
	if err := db.RemoveCell(cells[0]); err != nil {
		t.Fatal(err)
	}
	d := db.AddCell(7)
	if d != cells[0] {
		t.Errorf("expected recycled id %d, got %d", cells[0], d)
	}
	if a, _ := db.Area(d); a != 7 {
		t.Errorf("recycled area = %d", a)
	}
	if deg, _ := db.Degree(d); deg != 0 {
		t.Errorf("recycled degree = %d", deg)
	}
}

func TestContract(t *testing.T) {
	db, cells, _, _ := build3(t)
	// Contract {a, b}: net1 {a,b} collapses and vanishes; net2 {b,c}
	// becomes {cluster, c}.
	cl, err := db.Contract(cells[0], cells[1])
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := db.Area(cl); a != 5 {
		t.Errorf("cluster area = %d, want 5", a)
	}
	if db.NumNets() != 1 {
		t.Errorf("nets = %d, want 1 (collapsed net dropped)", db.NumNets())
	}
	if db.NumCells() != 2 {
		t.Errorf("cells = %d, want 2", db.NumCells())
	}
	// Union-find: members map to the cluster.
	for _, c := range cells[:2] {
		got, err := db.Find(c)
		if err != nil || got != cl {
			t.Errorf("Find(%d) = %d, %v; want %d", c, got, err, cl)
		}
	}
	if got, _ := db.Find(cells[2]); got != cells[2] {
		t.Errorf("Find of untouched cell moved: %d", got)
	}
}

func TestContractChainAndFind(t *testing.T) {
	db := &DB{}
	var ids []CellID
	for i := 0; i < 8; i++ {
		ids = append(ids, db.AddCell(1))
	}
	for i := 0; i+1 < 8; i++ {
		if _, err := db.AddNet(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := db.Contract(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	c2, err := db.Contract(c1, ids[2])
	if err != nil {
		t.Fatal(err)
	}
	// Two levels deep: original cells resolve through the chain.
	for _, orig := range ids[:3] {
		got, err := db.Find(orig)
		if err != nil || got != c2 {
			t.Fatalf("Find(%d) = %d, %v; want %d", orig, got, err, c2)
		}
	}
	if a, _ := db.Area(c2); a != 3 {
		t.Errorf("area = %d, want 3", a)
	}
}

func TestContractErrors(t *testing.T) {
	db, cells, _, _ := build3(t)
	if _, err := db.Contract(); err == nil {
		t.Error("empty contraction accepted")
	}
	if _, err := db.Contract(cells[0], cells[0]); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := db.Contract(CellID(99)); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := hypergraph.NewBuilder(40)
	for v := 0; v < 40; v++ {
		b.SetArea(v, int64(1+rng.Intn(5)))
	}
	for e := 0; e < 80; e++ {
		b.AddNet(rng.Intn(40), rng.Intn(40), rng.Intn(40))
	}
	h := b.MustBuild()
	db := FromHypergraph(h)
	if db.NumCells() != h.NumCells() || db.NumNets() != h.NumNets() || db.NumPins() != h.NumPins() {
		t.Fatalf("load mismatch: %d/%d/%d", db.NumCells(), db.NumNets(), db.NumPins())
	}
	snap, ids, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumCells() != h.NumCells() || snap.NumNets() != h.NumNets() || snap.NumPins() != h.NumPins() {
		t.Fatalf("snapshot mismatch")
	}
	if snap.TotalArea() != h.TotalArea() {
		t.Error("area mismatch")
	}
	if len(ids) != snap.NumCells() {
		t.Error("id map length")
	}
	if err := snap.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSnapshotDropsDegenerateNets(t *testing.T) {
	db := &DB{}
	a := db.AddCell(1)
	b := db.AddCell(1)
	n, err := db.AddNet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Disconnect(n, b); err != nil {
		t.Fatal(err)
	}
	snap, _, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNets() != 0 {
		t.Errorf("degenerate net survived snapshot: %d nets", snap.NumNets())
	}
}

func TestErrorsOnInvalidIDs(t *testing.T) {
	db := &DB{}
	a := db.AddCell(1)
	if err := db.SetArea(a, -1); err == nil {
		t.Error("negative area accepted")
	}
	if _, err := db.AddNet(CellID(9)); err == nil {
		t.Error("net over unknown cell accepted")
	}
	if err := db.Connect(NetID(0), a); err == nil {
		t.Error("connect to unknown net accepted")
	}
	if err := db.Disconnect(NetID(0), a); err == nil {
		t.Error("disconnect on unknown net accepted")
	}
	if _, err := db.Pins(NetID(5)); err == nil {
		t.Error("pins of unknown net accepted")
	}
	if _, err := db.Nets(CellID(5)); err == nil {
		t.Error("nets of unknown cell accepted")
	}
	if _, err := db.Degree(CellID(5)); err == nil {
		t.Error("degree of unknown cell accepted")
	}
	if err := db.RemoveCell(CellID(5)); err == nil {
		t.Error("remove of unknown cell accepted")
	}
	if _, err := db.Find(CellID(5)); err == nil {
		t.Error("find of unknown cell accepted")
	}
}

// TestPropertyEditSequencesStayConsistent drives random edit
// sequences and checks pin-count bookkeeping plus snapshot validity
// after every burst.
func TestPropertyEditSequencesStayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := &DB{}
		var cells []CellID
		var nets []NetID
		for step := 0; step < 250; step++ {
			switch rng.Intn(6) {
			case 0:
				cells = append(cells, db.AddCell(int64(1+rng.Intn(5))))
			case 1:
				if len(cells) >= 2 {
					a := cells[rng.Intn(len(cells))]
					b := cells[rng.Intn(len(cells))]
					if db.CellOK(a) && db.CellOK(b) {
						n, err := db.AddNet(a, b)
						if err != nil {
							return false
						}
						nets = append(nets, n)
					}
				}
			case 2:
				if len(nets) > 0 && len(cells) > 0 {
					n := nets[rng.Intn(len(nets))]
					c := cells[rng.Intn(len(cells))]
					if db.NetOK(n) && db.CellOK(c) {
						if err := db.Connect(n, c); err != nil {
							return false
						}
					}
				}
			case 3:
				if len(nets) > 0 {
					n := nets[rng.Intn(len(nets))]
					if db.NetOK(n) {
						if err := db.RemoveNet(n); err != nil {
							return false
						}
					}
				}
			case 4:
				if len(cells) > 0 {
					c := cells[rng.Intn(len(cells))]
					if db.CellOK(c) {
						if err := db.RemoveCell(c); err != nil {
							return false
						}
					}
				}
			case 5:
				// Contract two random live cells (dedupe: recycled
				// ids can appear twice in the tracking slice).
				var live []CellID
				seen := map[CellID]bool{}
				for _, c := range cells {
					if db.CellOK(c) && !seen[c] {
						seen[c] = true
						live = append(live, c)
					}
				}
				if len(live) >= 2 {
					i, j := rng.Intn(len(live)), rng.Intn(len(live))
					if i != j {
						cl, err := db.Contract(live[i], live[j])
						if err != nil {
							return false
						}
						cells = append(cells, cl)
					}
				}
			}
		}
		// Pin count must equal the sum over live nets of their sizes.
		want := 0
		for e := range db.netAlive {
			if db.netAlive[e] {
				want += len(db.netPins[e])
			}
		}
		if db.NumPins() != want {
			return false
		}
		snap, _, err := db.Snapshot()
		if err != nil {
			return false
		}
		return snap.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestContractMatchesInduce: contracting the pairs of a matching in
// the database must yield the same hypergraph (up to ordering) as
// hypergraph.Induce with the equivalent clustering.
func TestContractMatchesInduce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := hypergraph.NewBuilder(30)
	for e := 0; e < 60; e++ {
		b.AddNet(rng.Intn(30), rng.Intn(30))
	}
	h := b.MustBuild()

	// A fixed matching: (0,1), (2,3), ..., (9,10 excluded) — pair the
	// first 10 cells, leave the rest singleton.
	db := FromHypergraph(h)
	for i := 0; i < 10; i += 2 {
		if _, err := db.Contract(CellID(i), CellID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	c := &hypergraph.Clustering{CellToCluster: make([]int32, 30)}
	k := int32(0)
	for i := 0; i < 10; i += 2 {
		c.CellToCluster[i] = k
		c.CellToCluster[i+1] = k
		k++
	}
	for i := 10; i < 30; i++ {
		c.CellToCluster[i] = k
		k++
	}
	c.NumClusters = int(k)
	induced, err := hypergraph.Induce(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumCells() != induced.NumCells() ||
		snap.NumNets() != induced.NumNets() ||
		snap.NumPins() != induced.NumPins() ||
		snap.TotalArea() != induced.TotalArea() {
		t.Errorf("contract/induce disagree: %v vs %v", snap, induced)
	}
}
