// Package netdb is the mutable netlist database of §III.C: the paper
// describes "a database which can perform numerous netlist and
// clustering functions and which handles the memory management of the
// primary data structures". The immutable CSR hypergraph is ideal for
// the partitioning inner loops but cannot be edited; this package
// provides the editing layer — incremental cell/net/pin updates and
// cluster contraction — and snapshots into the CSR form on demand.
package netdb

import (
	"fmt"

	"mlpart/internal/hypergraph"
)

// CellID identifies a cell in the database. IDs are stable across
// edits and are recycled only after RemoveCell.
type CellID int32

// NetID identifies a net in the database.
type NetID int32

const invalid = int32(-1)

// DB is a mutable netlist. The zero value is an empty database ready
// to use.
type DB struct {
	cellArea  []int64
	cellAlive []bool
	cellNets  [][]NetID
	freeCells []CellID

	netPins  [][]CellID
	netAlive []bool
	freeNets []NetID

	pins int // live pin count

	// parent implements a union-find over contracted cells so that
	// Find maps an original cell to the cluster currently containing
	// it (the projection bookkeeping of Definitions 1–2).
	parent []int32
}

// FromHypergraph loads an immutable hypergraph into a fresh database.
func FromHypergraph(h *hypergraph.Hypergraph) *DB {
	db := &DB{}
	for v := 0; v < h.NumCells(); v++ {
		db.AddCell(h.Area(v))
	}
	pins := make([]CellID, 0, 16)
	for e := 0; e < h.NumNets(); e++ {
		pins = pins[:0]
		for _, p := range h.Pins(e) {
			pins = append(pins, CellID(p))
		}
		if _, err := db.AddNet(pins...); err != nil {
			panic(err) // cannot happen: source hypergraph is valid
		}
	}
	return db
}

// NumCells returns the number of live cells.
func (db *DB) NumCells() int {
	n := 0
	for _, a := range db.cellAlive {
		if a {
			n++
		}
	}
	return n
}

// NumNets returns the number of live nets.
func (db *DB) NumNets() int {
	n := 0
	for _, a := range db.netAlive {
		if a {
			n++
		}
	}
	return n
}

// NumPins returns the number of live pins.
func (db *DB) NumPins() int { return db.pins }

// AddCell creates a cell with the given area and returns its id.
func (db *DB) AddCell(area int64) CellID {
	if area < 0 {
		area = 0
	}
	if n := len(db.freeCells); n > 0 {
		id := db.freeCells[n-1]
		db.freeCells = db.freeCells[:n-1]
		db.cellArea[id] = area
		db.cellAlive[id] = true
		db.cellNets[id] = db.cellNets[id][:0]
		db.parent[id] = int32(id)
		return id
	}
	id := CellID(len(db.cellArea))
	db.cellArea = append(db.cellArea, area)
	db.cellAlive = append(db.cellAlive, true)
	db.cellNets = append(db.cellNets, nil)
	db.parent = append(db.parent, int32(id))
	return id
}

// CellOK reports whether id names a live cell.
func (db *DB) CellOK(id CellID) bool {
	return id >= 0 && int(id) < len(db.cellAlive) && db.cellAlive[id]
}

// NetOK reports whether id names a live net.
func (db *DB) NetOK(id NetID) bool {
	return id >= 0 && int(id) < len(db.netAlive) && db.netAlive[id]
}

// Area returns the area of a cell.
func (db *DB) Area(id CellID) (int64, error) {
	if !db.CellOK(id) {
		return 0, fmt.Errorf("netdb: no cell %d", id)
	}
	return db.cellArea[id], nil
}

// SetArea updates a cell's area.
func (db *DB) SetArea(id CellID, area int64) error {
	if !db.CellOK(id) {
		return fmt.Errorf("netdb: no cell %d", id)
	}
	if area < 0 {
		return fmt.Errorf("netdb: negative area %d", area)
	}
	db.cellArea[id] = area
	return nil
}

// Degree returns the number of nets on a cell.
func (db *DB) Degree(id CellID) (int, error) {
	if !db.CellOK(id) {
		return 0, fmt.Errorf("netdb: no cell %d", id)
	}
	return len(db.cellNets[id]), nil
}

// Nets returns (a copy of) the nets incident to a cell.
func (db *DB) Nets(id CellID) ([]NetID, error) {
	if !db.CellOK(id) {
		return nil, fmt.Errorf("netdb: no cell %d", id)
	}
	out := make([]NetID, len(db.cellNets[id]))
	copy(out, db.cellNets[id])
	return out, nil
}

// Pins returns (a copy of) the cells on a net.
func (db *DB) Pins(id NetID) ([]CellID, error) {
	if !db.NetOK(id) {
		return nil, fmt.Errorf("netdb: no net %d", id)
	}
	out := make([]CellID, len(db.netPins[id]))
	copy(out, db.netPins[id])
	return out, nil
}

// AddNet creates a net over the given cells (duplicates merged) and
// returns its id. Unlike the immutable builder, nets of any size —
// including empty and singleton nets — are representable, because an
// edit sequence may pass through such states; Snapshot drops them.
func (db *DB) AddNet(pins ...CellID) (NetID, error) {
	for _, p := range pins {
		if !db.CellOK(p) {
			return 0, fmt.Errorf("netdb: no cell %d", p)
		}
	}
	var id NetID
	if n := len(db.freeNets); n > 0 {
		id = db.freeNets[n-1]
		db.freeNets = db.freeNets[:n-1]
		db.netPins[id] = db.netPins[id][:0]
		db.netAlive[id] = true
	} else {
		id = NetID(len(db.netPins))
		db.netPins = append(db.netPins, nil)
		db.netAlive = append(db.netAlive, true)
	}
	for _, p := range pins {
		// Connect ignores duplicate membership.
		if err := db.Connect(id, p); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Connect adds cell to net; a no-op if already connected.
func (db *DB) Connect(net NetID, cell CellID) error {
	if !db.NetOK(net) {
		return fmt.Errorf("netdb: no net %d", net)
	}
	if !db.CellOK(cell) {
		return fmt.Errorf("netdb: no cell %d", cell)
	}
	for _, p := range db.netPins[net] {
		if p == cell {
			return nil
		}
	}
	db.netPins[net] = append(db.netPins[net], cell)
	db.cellNets[cell] = append(db.cellNets[cell], net)
	db.pins++
	return nil
}

// Disconnect removes cell from net; a no-op if not connected.
func (db *DB) Disconnect(net NetID, cell CellID) error {
	if !db.NetOK(net) {
		return fmt.Errorf("netdb: no net %d", net)
	}
	if !db.CellOK(cell) {
		return fmt.Errorf("netdb: no cell %d", cell)
	}
	if removeID(&db.netPins[net], cell) {
		removeNetID(&db.cellNets[cell], net)
		db.pins--
	}
	return nil
}

// RemoveNet deletes a net and all its pins.
func (db *DB) RemoveNet(net NetID) error {
	if !db.NetOK(net) {
		return fmt.Errorf("netdb: no net %d", net)
	}
	for _, p := range db.netPins[net] {
		removeNetID(&db.cellNets[p], net)
		db.pins--
	}
	db.netPins[net] = db.netPins[net][:0]
	db.netAlive[net] = false
	db.freeNets = append(db.freeNets, net)
	return nil
}

// RemoveCell deletes a cell, disconnecting it from all nets.
func (db *DB) RemoveCell(cell CellID) error {
	if !db.CellOK(cell) {
		return fmt.Errorf("netdb: no cell %d", cell)
	}
	for _, e := range append([]NetID(nil), db.cellNets[cell]...) {
		if err := db.Disconnect(e, cell); err != nil {
			return err
		}
	}
	db.cellAlive[cell] = false
	db.freeCells = append(db.freeCells, cell)
	return nil
}

// Contract merges the given cells into a single new cluster cell (the
// clustering function of §III.C): the cluster's area is the sum of
// member areas, all member pins are rewired to the cluster, and nets
// that collapse to fewer than two pins are removed. The union-find
// mapping is updated so Find of any member returns the cluster.
func (db *DB) Contract(cells ...CellID) (CellID, error) {
	if len(cells) == 0 {
		return 0, fmt.Errorf("netdb: contract of zero cells")
	}
	seen := map[CellID]bool{}
	var total int64
	for _, c := range cells {
		if !db.CellOK(c) {
			return 0, fmt.Errorf("netdb: no cell %d", c)
		}
		if seen[c] {
			return 0, fmt.Errorf("netdb: duplicate cell %d in contraction", c)
		}
		seen[c] = true
		total += db.cellArea[c]
	}
	cluster := db.AddCell(total)
	// Collect the union of incident nets, then rewire.
	netSet := map[NetID]bool{}
	for _, c := range cells {
		for _, e := range db.cellNets[c] {
			netSet[e] = true
		}
	}
	for e := range netSet {
		for _, c := range cells {
			if err := db.Disconnect(e, c); err != nil {
				return 0, err
			}
		}
		if err := db.Connect(e, cluster); err != nil {
			return 0, err
		}
		if len(db.netPins[e]) < 2 {
			if err := db.RemoveNet(e); err != nil {
				return 0, err
			}
		}
	}
	for _, c := range cells {
		db.cellAlive[c] = false
		db.freeCells = append(db.freeCells, c)
		db.parent[c] = int32(cluster)
	}
	return cluster, nil
}

// Find maps a (possibly contracted) cell to the live cluster that
// currently contains it, with path compression. An error is returned
// for ids that never existed or were removed outright.
func (db *DB) Find(cell CellID) (CellID, error) {
	if cell < 0 || int(cell) >= len(db.parent) {
		return 0, fmt.Errorf("netdb: no cell %d", cell)
	}
	root := int32(cell)
	for db.parent[root] != root {
		root = db.parent[root]
	}
	if !db.cellAlive[root] {
		return 0, fmt.Errorf("netdb: cell %d was removed", cell)
	}
	for c := int32(cell); db.parent[c] != root; {
		next := db.parent[c]
		db.parent[c] = root
		c = next
	}
	return CellID(root), nil
}

// Snapshot compacts the live cells and nets into an immutable
// hypergraph. It returns the hypergraph and the mapping from snapshot
// index to database CellID. Nets with fewer than two pins are
// dropped, as in the paper's net definition.
func (db *DB) Snapshot() (*hypergraph.Hypergraph, []CellID, error) {
	index := make(map[CellID]int32)
	var ids []CellID
	for i := range db.cellAlive {
		if db.cellAlive[i] {
			index[CellID(i)] = int32(len(ids))
			ids = append(ids, CellID(i))
		}
	}
	b := hypergraph.NewBuilder(len(ids))
	for i, id := range ids {
		b.SetArea(i, db.cellArea[id])
	}
	pins := make([]int32, 0, 16)
	for e := range db.netAlive {
		if !db.netAlive[e] {
			continue
		}
		pins = pins[:0]
		for _, p := range db.netPins[e] {
			pins = append(pins, index[p])
		}
		if len(pins) >= 2 {
			b.AddNet32(pins)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return h, ids, nil
}

func removeID(s *[]CellID, x CellID) bool {
	for i, v := range *s {
		if v == x {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return true
		}
	}
	return false
}

func removeNetID(s *[]NetID, x NetID) bool {
	for i, v := range *s {
		if v == x {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return true
		}
	}
	return false
}
