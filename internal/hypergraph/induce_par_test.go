package hypergraph

import (
	"math/rand"
	"testing"

	"mlpart/internal/intrapar"
)

// buildRandom builds a random weighted hypergraph and a random
// clustering with k non-empty clusters for the parallel-induce tests.
func buildRandom(rng *rand.Rand, n, m int) (*Hypergraph, *Clustering) {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetArea(v, int64(1+rng.Intn(3)))
	}
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(5)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		if rng.Intn(4) == 0 {
			b.AddWeightedNet(int32(2+rng.Intn(4)), pins...)
		} else {
			b.AddNet(pins...)
		}
	}
	h := b.MustBuild()
	k := 1 + rng.Intn(n)
	c := &Clustering{CellToCluster: make([]int32, n), NumClusters: k}
	for i, v := range rng.Perm(n) {
		if i < k {
			c.CellToCluster[v] = int32(i) //mllint:ignore unchecked-narrow cluster id < n, test-sized
		} else {
			c.CellToCluster[v] = int32(rng.Intn(k)) //mllint:ignore unchecked-narrow cluster id < n, test-sized
		}
	}
	return h, c
}

// sameCSR compares every retained array of two induced hypergraphs
// byte for byte (same package: the unexported CSR arrays are the
// ground truth the byte-identity contract is stated over).
func sameCSR(t *testing.T, want, got *Hypergraph) {
	t.Helper()
	if got.numCells != want.numCells || got.numNets != want.numNets ||
		got.totalArea != want.totalArea || got.maxArea != want.maxArea {
		t.Fatalf("header differs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			want.numCells, want.numNets, want.totalArea, want.maxArea,
			got.numCells, got.numNets, got.totalArea, got.maxArea)
	}
	check := func(name string, a, b []int32) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s length differs: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] differs: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
	check("netStart", want.netStart, got.netStart)
	check("netPins", want.netPins, got.netPins)
	check("cellStart", want.cellStart, got.cellStart)
	check("cellNets", want.cellNets, got.cellNets)
	check("netWeight", want.netWeight, got.netWeight)
	if len(want.area) != len(got.area) {
		t.Fatalf("area length differs")
	}
	for i := range want.area {
		if want.area[i] != got.area[i] {
			t.Fatalf("area[%d] differs: %d vs %d", i, want.area[i], got.area[i])
		}
	}
}

// TestInduceWSParIdenticalToSerial pins the byte-identity contract of
// the parallel assembly across worker counts, instance sizes (serial
// fallback for nil pools, fewer nets than workers, and full-width
// fan-out) and dirty reused workspaces.
func TestInduceWSParIdenticalToSerial(t *testing.T) {
	ws := &InduceWorkspace{} // deliberately shared and dirty across cases
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(400)
		m := rng.Intn(600)
		h, c := buildRandom(rng, n, m)
		want, err := InduceWS(h, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := InduceWSPar(h, c, ws, nil); err != nil {
			t.Fatal(err)
		} else {
			sameCSR(t, want, got)
		}
		for _, workers := range []int{1, 2, 8} {
			pool := intrapar.New(workers)
			got, err := InduceWSPar(h, c, ws, pool)
			pool.Close()
			if err != nil {
				t.Fatal(err)
			}
			sameCSR(t, want, got)
		}
	}
}

// TestInduceWSParTinyInstances exercises the degenerate shapes: no
// nets at all, and fewer nets than workers (unissued ranges must not
// leak stale buffers into the merge).
func TestInduceWSParTinyInstances(t *testing.T) {
	ws := &InduceWorkspace{}
	pool := intrapar.New(8)
	defer pool.Close()
	// First, a big instance to dirty the per-worker buffers.
	rng := rand.New(rand.NewSource(3))
	h, c := buildRandom(rng, 200, 300)
	if _, err := InduceWSPar(h, c, ws, pool); err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{0, 1, 3} {
		h, c := buildRandom(rng, 10, m)
		want, err := InduceWS(h, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InduceWSPar(h, c, ws, pool)
		if err != nil {
			t.Fatal(err)
		}
		sameCSR(t, want, got)
	}
}
