package hypergraph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates cells and nets and produces an immutable
// Hypergraph. Nets with fewer than two distinct pins are dropped at
// Build time (a net is defined to be a subset of V with size greater
// than one); duplicate pins within a net are merged.
type Builder struct {
	numCells int
	area     []int64
	nets     [][]int32
	weights  []int32 // parallel to nets; nil face means all 1
	names    []string
	err      error
}

// NewBuilder returns a Builder for a hypergraph with numCells cells,
// all with unit area until SetArea is called.
func NewBuilder(numCells int) *Builder {
	if numCells < 0 {
		return &Builder{err: fmt.Errorf("hypergraph: negative cell count %d", numCells)}
	}
	b := &Builder{numCells: numCells, area: make([]int64, numCells)}
	for i := range b.area {
		b.area[i] = 1
	}
	return b
}

// SetArea sets the area of cell v. Areas must be non-negative.
func (b *Builder) SetArea(v int, area int64) *Builder {
	if b.err != nil {
		return b
	}
	if v < 0 || v >= b.numCells {
		b.err = fmt.Errorf("hypergraph: SetArea cell %d out of range [0,%d)", v, b.numCells)
		return b
	}
	if area < 0 {
		b.err = fmt.Errorf("hypergraph: SetArea cell %d negative area %d", v, area)
		return b
	}
	b.area[v] = area
	return b
}

// SetName attaches a name to cell v (used by file I/O and reports).
func (b *Builder) SetName(v int, name string) *Builder {
	if b.err != nil {
		return b
	}
	if v < 0 || v >= b.numCells {
		b.err = fmt.Errorf("hypergraph: SetName cell %d out of range [0,%d)", v, b.numCells)
		return b
	}
	if b.names == nil {
		b.names = make([]string, b.numCells)
	}
	b.names[v] = name
	return b
}

// AddNet appends a net with the given pins. Out-of-range pins are an
// error reported by Build. Duplicate pins are merged; nets that end up
// with fewer than two pins are silently dropped (per the paper's net
// definition).
func (b *Builder) AddNet(pins ...int) *Builder {
	if b.err != nil {
		return b
	}
	net := make([]int32, 0, len(pins))
	for _, p := range pins {
		if p < 0 || p >= b.numCells {
			b.err = fmt.Errorf("hypergraph: AddNet pin %d out of range [0,%d)", p, b.numCells)
			return b
		}
		net = append(net, int32(p))
	}
	b.nets = append(b.nets, net)
	b.weights = append(b.weights, 1)
	return b
}

// AddWeightedNet appends a net with an integer weight ≥ 1; weighted
// nets contribute their weight to the cut and to FM gains (input fmt
// 1/11 files, merged parallel nets).
func (b *Builder) AddWeightedNet(weight int32, pins ...int) *Builder {
	if b.err != nil {
		return b
	}
	if weight < 1 {
		b.err = fmt.Errorf("hypergraph: net weight %d < 1", weight)
		return b
	}
	b.AddNet(pins...)
	if b.err == nil {
		b.weights[len(b.weights)-1] = weight
	}
	return b
}

// AddNet32 is AddNet for an []int32 pin list (avoids conversion churn
// in generators). The slice is copied.
func (b *Builder) AddNet32(pins []int32) *Builder {
	if b.err != nil {
		return b
	}
	for _, p := range pins {
		if p < 0 || int(p) >= b.numCells {
			b.err = fmt.Errorf("hypergraph: AddNet32 pin %d out of range [0,%d)", p, b.numCells)
			return b
		}
	}
	net := make([]int32, len(pins))
	copy(net, pins)
	b.nets = append(b.nets, net)
	b.weights = append(b.weights, 1)
	return b
}

// AddWeightedNet32 is AddWeightedNet for an []int32 pin list.
func (b *Builder) AddWeightedNet32(weight int32, pins []int32) *Builder {
	if b.err != nil {
		return b
	}
	if weight < 1 {
		b.err = fmt.Errorf("hypergraph: net weight %d < 1", weight)
		return b
	}
	b.AddNet32(pins)
	if b.err == nil {
		b.weights[len(b.weights)-1] = weight
	}
	return b
}

// Build finalizes the hypergraph. It returns an error if any prior
// builder call recorded one.
func (b *Builder) Build() (*Hypergraph, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Deduplicate pins within each net and drop degenerate nets.
	kept := make([][]int32, 0, len(b.nets))
	keptW := make([]int32, 0, len(b.nets))
	weighted := false
	for ni, net := range b.nets {
		sort.Slice(net, func(i, j int) bool { return net[i] < net[j] })
		out := net[:0]
		var prev int32 = -1
		for _, p := range net {
			if p != prev {
				out = append(out, p)
				prev = p
			}
		}
		if len(out) >= 2 {
			kept = append(kept, out)
			w := b.weights[ni]
			keptW = append(keptW, w)
			if w != 1 {
				weighted = true
			}
		}
	}
	h := &Hypergraph{
		numCells: b.numCells,
		numNets:  len(kept),
		area:     b.area,
		names:    b.names,
	}
	if weighted {
		h.netWeight = keptW
	}
	numPins := 0
	for _, net := range kept {
		numPins += len(net)
	}
	// The CSR offsets are int32; programmatic builders are not behind
	// the parser Limits, so the pin total must be checked here before
	// any narrowing below.
	if numPins > math.MaxInt32 {
		return nil, fmt.Errorf("hypergraph: %d pins overflow the int32 CSR index space", numPins)
	}
	h.netStart = make([]int32, len(kept)+1)
	h.netPins = make([]int32, numPins)
	at := int32(0)
	for e, net := range kept {
		h.netStart[e] = at
		copy(h.netPins[at:], net)
		at += int32(len(net)) //mllint:ignore unchecked-narrow len(net) <= numPins, checked against MaxInt32 above
	}
	h.netStart[len(kept)] = at

	// Build the cell->net CSR by counting then filling.
	deg := make([]int32, b.numCells+1)
	for _, net := range kept {
		for _, p := range net {
			deg[p+1]++
		}
	}
	h.cellStart = make([]int32, b.numCells+1)
	for v := 0; v < b.numCells; v++ {
		h.cellStart[v+1] = h.cellStart[v] + deg[v+1]
	}
	h.cellNets = make([]int32, numPins)
	fill := make([]int32, b.numCells)
	copy(fill, h.cellStart[:b.numCells])
	for e, net := range kept {
		for _, p := range net {
			h.cellNets[fill[p]] = int32(e)
			fill[p]++
		}
	}
	for _, a := range b.area {
		total, err := addArea(h.totalArea, a)
		if err != nil {
			return nil, err
		}
		h.totalArea = total
		if a > h.maxArea {
			h.maxArea = a
		}
	}
	return h, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose inputs are constructed, not parsed.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// BuildRawForTest finalizes the hypergraph WITHOUT the Build-time
// sanitization: pins are kept in insertion order with duplicates, and
// degenerate nets (fewer than two pins) are retained. Build makes such
// nets unreachable through the public API, so regression tests for
// code that must tolerate them (e.g. the 1/(|e|−1) connectivity term
// in coarsen.Conn) need this hook. Never call it outside tests.
func (b *Builder) BuildRawForTest() (*Hypergraph, error) {
	if b.err != nil {
		return nil, b.err
	}
	h := &Hypergraph{
		numCells: b.numCells,
		numNets:  len(b.nets),
		area:     b.area,
		names:    b.names,
	}
	for _, w := range b.weights {
		if w != 1 {
			h.netWeight = b.weights
			break
		}
	}
	numPins := 0
	for _, net := range b.nets {
		numPins += len(net)
	}
	if numPins > math.MaxInt32 {
		return nil, fmt.Errorf("hypergraph: %d pins overflow the int32 CSR index space", numPins)
	}
	h.netStart = make([]int32, len(b.nets)+1)
	h.netPins = make([]int32, numPins)
	at := int32(0)
	for e, net := range b.nets {
		h.netStart[e] = at
		copy(h.netPins[at:], net)
		at += int32(len(net)) //mllint:ignore unchecked-narrow len(net) <= numPins, checked against MaxInt32 above
	}
	h.netStart[len(b.nets)] = at
	deg := make([]int32, b.numCells+1)
	for _, net := range b.nets {
		for _, p := range net {
			deg[p+1]++
		}
	}
	h.cellStart = make([]int32, b.numCells+1)
	for v := 0; v < b.numCells; v++ {
		h.cellStart[v+1] = h.cellStart[v] + deg[v+1]
	}
	h.cellNets = make([]int32, numPins)
	fill := make([]int32, b.numCells)
	copy(fill, h.cellStart[:b.numCells])
	for e, net := range b.nets {
		for _, p := range net {
			h.cellNets[fill[p]] = int32(e)
			fill[p]++
		}
	}
	for _, a := range b.area {
		total, err := addArea(h.totalArea, a)
		if err != nil {
			return nil, err
		}
		h.totalArea = total
		if a > h.maxArea {
			h.maxArea = a
		}
	}
	return h, nil
}
