package hypergraph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedNetBasics(t *testing.T) {
	h := NewBuilder(4).
		AddWeightedNet(5, 0, 1).
		AddNet(1, 2).
		MustBuild()
	if !h.Weighted() {
		t.Fatal("hypergraph should be weighted")
	}
	if h.NetWeight(0) != 5 || h.NetWeight(1) != 1 {
		t.Errorf("weights = %d,%d", h.NetWeight(0), h.NetWeight(1))
	}
	if h.TotalNetWeight() != 6 {
		t.Errorf("total weight = %d", h.TotalNetWeight())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
	if h.MaxWeightedDegree(0) != 6 { // cell 1: nets 5+1
		t.Errorf("MaxWeightedDegree = %d", h.MaxWeightedDegree(0))
	}
}

func TestWeightedNetErrors(t *testing.T) {
	if _, err := NewBuilder(2).AddWeightedNet(0, 0, 1).Build(); err == nil {
		t.Error("weight 0 accepted")
	}
	if _, err := NewBuilder(2).AddWeightedNet32(-1, []int32{0, 1}).Build(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedCut(t *testing.T) {
	h := NewBuilder(4).
		AddWeightedNet(5, 0, 1).
		AddWeightedNet(2, 2, 3).
		MustBuild()
	p := &Partition{Part: []int32{0, 1, 0, 0}, K: 2}
	if got := p.Cut(h); got != 1 {
		t.Errorf("Cut = %d, want 1", got)
	}
	if got := p.WeightedCut(h); got != 5 {
		t.Errorf("WeightedCut = %d, want 5", got)
	}
	q := &Partition{Part: []int32{0, 1, 0, 1}, K: 2}
	if got := q.WeightedCut(h); got != 7 {
		t.Errorf("WeightedCut = %d, want 7", got)
	}
	if got := q.WeightedSumOfDegrees(h); got != 7 {
		t.Errorf("WeightedSumOfDegrees = %d, want 7 (K=2)", got)
	}
}

func TestInduceMergedCutEquivalence(t *testing.T) {
	// The central invariant of parallel-net merging: for any
	// clustering and any partition of the coarse cells, the weighted
	// cut under the merged representation equals the (weighted) cut
	// under the parallel representation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		h := randomHypergraph(rng, n, 10+rng.Intn(80))
		c := randomClustering(rng, n)
		plain, err := Induce(h, c)
		if err != nil {
			return false
		}
		merged, err := InduceMerged(h, c)
		if err != nil {
			return false
		}
		if merged.NumNets() > plain.NumNets() {
			return false
		}
		if merged.TotalNetWeight() != int64(plain.NumNets()) {
			return false // weights must account for every parallel net
		}
		for trial := 0; trial < 5; trial++ {
			p := RandomPartition(plain, 2, 0.5, rng)
			if p.WeightedCut(merged) != p.WeightedCut(plain) {
				return false
			}
			q := RandomPartition(plain, 4, 0.8, rng)
			if q.WeightedSumOfDegrees(merged) != q.WeightedSumOfDegrees(plain) {
				return false
			}
		}
		return merged.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWeightedHGRRoundTrip(t *testing.T) {
	h := NewBuilder(3).
		SetArea(0, 4).
		AddWeightedNet(3, 0, 1).
		AddWeightedNet(7, 1, 2).
		MustBuild()
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if got.NetWeight(0) != 3 || got.NetWeight(1) != 7 {
		t.Errorf("weights lost: %d, %d", got.NetWeight(0), got.NetWeight(1))
	}
	if got.Area(0) != 4 {
		t.Error("area lost")
	}
}

func TestWeightedHGRNetWeightsOnly(t *testing.T) {
	// fmt "1": net weights, unit areas.
	h := NewBuilder(3).AddWeightedNet(9, 0, 1, 2).MustBuild()
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NetWeight(0) != 9 || got.Area(0) != 1 {
		t.Errorf("fmt 1 round trip broken: w=%d a=%d", got.NetWeight(0), got.Area(0))
	}
}
