package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCutTiny(t *testing.T) {
	h := tiny(t)
	p := &Partition{Part: []int32{0, 0, 0, 1, 1, 1}, K: 2}
	// nets: {0,1} uncut, {1,2,3} cut, {3,4} uncut, {4,5} uncut, {0,5} cut
	if got := p.Cut(h); got != 2 {
		t.Errorf("Cut = %d, want 2", got)
	}
}

func TestCutAllOneSide(t *testing.T) {
	h := tiny(t)
	p := NewPartition(6, 2)
	if got := p.Cut(h); got != 0 {
		t.Errorf("Cut = %d, want 0 for one-sided partition", got)
	}
}

func TestSumOfDegreesEqualsCutForBipartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 2+rng.Intn(40), rng.Intn(80))
		p := RandomPartition(h, 2, 0.1, rng)
		return p.Cut(h) == p.SumOfDegrees(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNetSpan(t *testing.T) {
	h := tiny(t)
	p := &Partition{Part: []int32{0, 1, 2, 3, 0, 1}, K: 4}
	if got := p.NetSpan(h, 1); got != 3 { // net {1,2,3} touches 1,2,3
		t.Errorf("NetSpan(net 1) = %d, want 3", got)
	}
	if got := p.NetSpan(h, 2); got != 2 { // net {3,4} touches 3,0
		t.Errorf("NetSpan(net 2) = %d, want 2", got)
	}
}

func TestNetSpanLargeK(t *testing.T) {
	// Exercise the K > 64 fallback path.
	h := tiny(t)
	p := &Partition{Part: []int32{0, 70, 70, 3, 0, 99}, K: 100}
	if got := p.NetSpan(h, 0); got != 2 { // net {0,1} → blocks 0,70
		t.Errorf("NetSpan = %d, want 2", got)
	}
	if got := p.NetSpan(h, 1); got != 2 { // net {1,2,3} → blocks 70,70,3
		t.Errorf("NetSpan = %d, want 2", got)
	}
}

func TestBalanceBound(t *testing.T) {
	h, err := NewBuilder(10).AddNet(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Unit areas, A(V)=10, k=2, r=0.1: target 5, slack max(1, 0.5)=1.
	b := Balance(h, 2, 0.1)
	if b.Lo != 4 || b.Hi != 6 {
		t.Errorf("bound = [%d,%d], want [4,6]", b.Lo, b.Hi)
	}
	// Large-cell slack dominates: one cell of area 8.
	h2, err := NewBuilder(3).SetArea(0, 8).AddNet(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	b2 := Balance(h2, 2, 0.1) // A=10, target 5, slack max(8, 0.5)=8 → [0,13]
	if b2.Lo != 0 || b2.Hi != 13 {
		t.Errorf("bound = [%d,%d], want [0,13]", b2.Lo, b2.Hi)
	}
}

func TestRandomPartitionBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		h := randomHypergraph(rng, 10+rng.Intn(100), 20)
		for _, k := range []int{2, 4} {
			p := RandomPartition(h, k, 0.1, rng)
			bound := Balance(h, k, 0.1)
			if !p.IsBalanced(h, bound) {
				t.Errorf("k=%d random partition unbalanced: areas %v bound %+v",
					k, p.BlockAreas(h), bound)
			}
			if err := p.Validate(h.NumCells()); err != nil {
				t.Errorf("invalid partition: %v", err)
			}
		}
	}
}

func TestProjectDefinition2(t *testing.T) {
	// Fine cells 0..5 in clusters {0,1}→0, {2,3}→1, {4,5}→2; coarse
	// partition puts clusters 0,1 in X and 2 in Y.
	c := &Clustering{CellToCluster: []int32{0, 0, 1, 1, 2, 2}, NumClusters: 3}
	coarse := &Partition{Part: []int32{0, 0, 1}, K: 2}
	fine, err := Project(c, coarse)
	if err != nil {
		t.Fatalf("project: %v", err)
	}
	want := []int32{0, 0, 0, 0, 1, 1}
	for v, k := range fine.Part {
		if k != want[v] {
			t.Errorf("fine cell %d in block %d, want %d", v, k, want[v])
		}
	}
}

func TestProjectErrors(t *testing.T) {
	c := &Clustering{CellToCluster: []int32{0, 0}, NumClusters: 1}
	if _, err := Project(c, &Partition{Part: []int32{0, 1}, K: 2}); err == nil {
		t.Error("expected error for size mismatch")
	}
	if _, err := Project(c, &Partition{Part: []int32{0}, K: 0}); err == nil {
		t.Error("expected error for K=0")
	}
}

func TestPropertyProjectionPreservesCut(t *testing.T) {
	// The projected partition has exactly the same cut on the fine
	// hypergraph as the coarse partition has on the induced coarse
	// hypergraph — the central invariant of multilevel partitioning.
	// (Both count nets spanning >1 block; fine nets that collapsed
	// into singleton coarse nets are uncut because their pins share a
	// cluster and therefore a block.)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		h := randomHypergraph(rng, n, 5+rng.Intn(80))
		c := randomClustering(rng, n)
		coarse, err := Induce(h, c)
		if err != nil {
			return false
		}
		cp := RandomPartition(coarse, 2, 0.5, rng)
		fp, err := Project(c, cp)
		if err != nil {
			return false
		}
		return fp.Cut(h) == cp.Cut(coarse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyProjectionPreservesSumOfDegrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		h := randomHypergraph(rng, n, 5+rng.Intn(80))
		c := randomClustering(rng, n)
		coarse, err := Induce(h, c)
		if err != nil {
			return false
		}
		cp := RandomPartition(coarse, 4, 0.8, rng)
		fp, err := Project(c, cp)
		if err != nil {
			return false
		}
		return fp.SumOfDegrees(h) == cp.SumOfDegrees(coarse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRebalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHypergraph(rng, 100, 50)
	p := NewPartition(100, 2) // everything in block 0: grossly unbalanced
	bound := Balance(h, 2, 0.1)
	moved := p.Rebalance(h, bound, rng)
	if moved == 0 {
		t.Fatal("expected rebalancing moves")
	}
	if !p.IsBalanced(h, bound) {
		t.Errorf("still unbalanced after Rebalance: %v vs %+v", p.BlockAreas(h), bound)
	}
}

func TestRebalanceNoOpWhenBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := randomHypergraph(rng, 50, 20)
	p := RandomPartition(h, 2, 0.1, rng)
	bound := Balance(h, 2, 0.1)
	if moved := p.Rebalance(h, bound, rng); moved != 0 {
		t.Errorf("Rebalance moved %d cells on a balanced partition", moved)
	}
}

func TestRebalanceKWay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomHypergraph(rng, 200, 80)
	p := NewPartition(200, 4)
	bound := Balance(h, 4, 0.1)
	p.Rebalance(h, bound, rng)
	if !p.IsBalanced(h, bound) {
		t.Errorf("4-way rebalance failed: %v vs %+v", p.BlockAreas(h), bound)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := &Partition{Part: []int32{0, 1, 0}, K: 2}
	q := p.Clone()
	q.Part[0] = 1
	if p.Part[0] != 0 {
		t.Error("Clone shares backing array")
	}
}

func TestPartitionValidateErrors(t *testing.T) {
	if err := (&Partition{Part: []int32{0}, K: 2}).Validate(2); err == nil {
		t.Error("expected length error")
	}
	if err := (&Partition{Part: []int32{0, 5}, K: 2}).Validate(2); err == nil {
		t.Error("expected range error")
	}
	if err := (&Partition{Part: []int32{0, 0}, K: 0}).Validate(2); err == nil {
		t.Error("expected K error")
	}
}
