package hypergraph

import (
	"mlpart/internal/intrapar"
)

// Parallel induce-CSR assembly (InduceWSPar).
//
// The expensive parts of inducing the coarse hypergraph — per-net
// pin dedup + sort, and the cell→net fill — decompose over fixed
// fine-net ranges with no ordering decisions left to scheduling:
//
//  1. Each worker assembles the kept coarse nets of its own net range
//     into private buffers (private dedup stamps, private per-cluster
//     pin counts). Ranges are contiguous and ascending, so
//     concatenating the per-worker outputs in range-index order
//     reproduces the serial fine-net order exactly.
//  2. The merge (serial memcopy in range order) materializes the
//     net→pin CSR; the cell→net CSR then comes from a two-phase
//     count-then-fill: per-cluster counts are summed across workers
//     and prefix-summed into cellStart, each worker's counts are
//     turned into private fill cursors (cellStart[p] plus the counts
//     of all lower-indexed workers — a per-range prefix sum), and the
//     fill runs in parallel again, each worker writing its own nets
//     into its own cursor windows.
//
// Every write in the parallel phases lands in a worker-owned buffer
// or a worker-owned cursor window, and every merge happens serially
// in range-index order, so the result is byte-identical to InduceWS
// for every worker count (pinned by TestInduceWSParIdenticalToSerial).

// inducePar is the per-worker scratch of InduceWSPar, indexed by the
// pool's range index.
type inducePar struct {
	mark    [][]int32 // per worker: cluster dedup stamps
	pins    [][]int32 // per worker: kept coarse pins, concatenated
	lens    [][]int32 // per worker: pin count per kept net
	weights [][]int32 // per worker: weight per kept net
	counts  [][]int32 // per worker: per-cluster pin counts → fill cursors
}

// grow sizes the scratch for the given worker count and cluster count.
// Stamps and counts are (re)initialized by the workers themselves, in
// parallel, at the start of each call.
func (s *inducePar) grow(workers, k int) {
	for len(s.mark) < workers {
		s.mark = append(s.mark, nil)
		s.pins = append(s.pins, nil)
		s.lens = append(s.lens, nil)
		s.weights = append(s.weights, nil)
		s.counts = append(s.counts, nil)
	}
	for w := 0; w < workers; w++ {
		if cap(s.mark[w]) < k {
			s.mark[w] = make([]int32, k)
		}
		s.mark[w] = s.mark[w][:k]
		if cap(s.counts[w]) < k {
			s.counts[w] = make([]int32, k)
		}
		s.counts[w] = s.counts[w][:k]
	}
}

// InduceWSPar is InduceWS with the CSR assembly fanned out over the
// pool's workers; a nil pool is exactly InduceWS. The result is
// byte-identical to InduceWS for every pool size.
func InduceWSPar(h *Hypergraph, c *Clustering, ws *InduceWorkspace, pool *intrapar.Pool) (*Hypergraph, error) {
	if pool == nil {
		return InduceWS(h, c, ws)
	}
	if err := c.Validate(h.NumCells()); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = &InduceWorkspace{}
	}
	k := c.NumClusters

	// Cluster areas are retained by the result: allocate fresh. The
	// scatter pattern (area[cluster] += ...) does not range-decompose
	// without per-worker copies of the whole array, and it is a cheap
	// O(cells) pass — keep it serial.
	area := make([]int64, k)
	for v := 0; v < h.NumCells(); v++ {
		area[c.CellToCluster[v]] += h.Area(v)
	}

	workers := pool.Workers()
	par := &ws.par
	par.grow(workers, k)

	// Phase 1: per-range net assembly into private buffers. The stamp
	// value is the global fine-net id, unique across ranges, so stale
	// stamps from earlier calls must be cleared first (each worker
	// clears its own arrays).
	numFine := h.NumNets()
	pool.Run(numFine, func(w, lo, hi int) {
		mark, counts := par.mark[w], par.counts[w]
		for i := range mark {
			mark[i] = -1
			counts[i] = 0
		}
		pins := par.pins[w][:0]
		lens := par.lens[w][:0]
		weights := par.weights[w][:0]
		for e := lo; e < hi; e++ {
			base := len(pins)
			for _, p := range h.Pins(e) {
				kk := c.CellToCluster[p]
				if mark[kk] != int32(e) {
					mark[kk] = int32(e)
					pins = append(pins, kk)
				}
			}
			if len(pins)-base < 2 {
				// |e*| = 1: dropped per Definition 1 / the net definition.
				pins = pins[:base]
				continue
			}
			sortPinWindow(pins[base:])
			for _, p := range pins[base:] {
				counts[p]++
			}
			//mllint:ignore unchecked-narrow one net's pin window ≤ cluster count ≤ fine cell count, capped at MaxInt32 by Build/parse
			lens = append(lens, int32(len(pins)-base))
			weights = append(weights, h.NetWeight(e))
		}
		par.pins[w], par.lens[w], par.weights[w] = pins, lens, weights
	})
	// Run issues min(workers, numFine) ranges; the rest contribute
	// nothing but their buffers may hold stale content from a larger
	// earlier call.
	used := workers
	if numFine < used {
		used = numFine
	}

	// Merge in range-index order = fine-net order: sizes first, then
	// one contiguous copy per range.
	numNets, totalPins := 0, 0
	weighted := false
	for w := 0; w < used; w++ {
		numNets += len(par.lens[w])
		totalPins += len(par.pins[w])
		for _, wt := range par.weights[w] {
			if wt != 1 {
				weighted = true
				break
			}
		}
	}
	hh := &Hypergraph{
		numCells: k,
		numNets:  numNets,
		area:     area,
		// Clusters partition the cells, so the coarse total is exactly
		// the fine total (already overflow-checked at fine build time).
		totalArea: h.totalArea,
	}
	for _, a := range area {
		if a > hh.maxArea {
			hh.maxArea = a
		}
	}
	hh.netStart = make([]int32, numNets+1)
	hh.netPins = make([]int32, totalPins)
	if weighted {
		hh.netWeight = make([]int32, numNets)
	}
	net, pin := 0, 0
	for w := 0; w < used; w++ {
		copy(hh.netPins[pin:], par.pins[w])
		if weighted {
			copy(hh.netWeight[net:], par.weights[w])
		}
		for _, l := range par.lens[w] {
			pin += int(l)
			//mllint:ignore unchecked-narrow coarse pin total ≤ fine pin total, which Build/parse already capped at MaxInt32
			hh.netStart[net+1] = int32(pin)
			net++
		}
	}

	// Cell→net CSR, two-phase count-then-fill. Counts per cluster were
	// accumulated per range in phase 1; sum them into cellStart (the
	// scatter decomposes over *clusters* now, so this is parallel and
	// write-disjoint), prefix-sum serially, then turn each range's
	// counts into its private fill cursors: cellStart[p] plus the
	// counts of all lower-indexed ranges.
	hh.cellStart = make([]int32, k+1)
	pool.Run(k, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			var s int32
			for w := 0; w < used; w++ {
				s += par.counts[w][p]
			}
			hh.cellStart[p+1] = s
		}
	})
	for v := 0; v < k; v++ {
		hh.cellStart[v+1] += hh.cellStart[v]
	}
	pool.Run(k, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			run := hh.cellStart[p]
			for w := 0; w < used; w++ {
				cnt := par.counts[w][p]
				par.counts[w][p] = run
				run += cnt
			}
		}
	})

	// Phase 2: parallel fill. Range w owns coarse nets
	// [netBase_w, netBase_w+len(lens_w)) and writes each of its pins at
	// its own cursor — cursor windows of different ranges are disjoint
	// by construction, and within a range nets are visited in ascending
	// order, so each cell's net list comes out in net order exactly as
	// the serial fill produces it. Run is keyed on numFine again so the
	// range indices match phase 1.
	hh.cellNets = make([]int32, totalPins)
	netBase := 0
	bases := make([]int, used)
	for w := 0; w < used; w++ {
		bases[w] = netBase
		netBase += len(par.lens[w])
	}
	pool.Run(numFine, func(w, lo, hi int) {
		cur := par.counts[w]
		for i := range par.lens[w] {
			e := bases[w] + i
			for _, p := range hh.netPins[hh.netStart[e]:hh.netStart[e+1]] {
				//mllint:ignore unchecked-narrow coarse net index ≤ fine net count, capped at MaxInt32 by Build/parse
				hh.cellNets[cur[p]] = int32(e)
				cur[p]++
			}
		}
	})
	return hh, nil
}
