package hypergraph

// The .netD/.are interchange format of the ACM/SIGDA benchmark suite
// (the native format of the Table-I circuits as distributed by the
// CAD Benchmarking Laboratory). A .netD file is
//
//	0
//	<numPins>
//	<numNets>
//	<numModules>
//	<padOffset>
//	<module> s|l [I|O|B]     one line per pin; 's' starts a new net
//	...
//
// Modules are named a0, a1, … for cells and p1, p2, … for I/O pads;
// padOffset is the highest cell index (modules after it are pads).
// The companion .are file lists "<module> <area>" per line. This
// implementation accepts both conventions for the optional direction
// letter and tolerates missing .are files (unit areas).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NetDCircuit is a parsed .netD netlist: the hypergraph plus the pad
// flags and the original module names.
type NetDCircuit struct {
	H    *Hypergraph
	Pads []bool
}

// ReadNetD parses a .netD netlist and an optional .are area file
// (pass nil for unit areas) under DefaultLimits.
func ReadNetD(netR io.Reader, areR io.Reader) (*NetDCircuit, error) {
	return ReadNetDLimits(netR, areR, Limits{})
}

// ReadNetDLimits is ReadNetD with explicit resource limits (zero
// fields of lim select the defaults). Headers over the limits fail
// before any proportional allocation, and a pin section longer than
// the header's pin count aborts early.
func ReadNetDLimits(netR io.Reader, areR io.Reader, lim Limits) (*NetDCircuit, error) {
	lim = lim.normalize()
	sc := bufio.NewScanner(netR)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	header := make([]int, 0, 5)
	for len(header) < 5 {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("netD: header: %w", err)
		}
		x, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("netD: bad header line %q", line)
		}
		header = append(header, x)
	}
	if header[0] != 0 {
		return nil, fmt.Errorf("netD: first header line must be 0, got %d", header[0])
	}
	numPins, numNets, numModules, padOffset := header[1], header[2], header[3], header[4]
	if numPins < 0 || numNets < 0 || numModules <= 0 {
		return nil, fmt.Errorf("netD: nonsensical header %v", header)
	}
	if padOffset < -1 || padOffset >= numModules {
		return nil, fmt.Errorf("netD: pad offset %d outside [-1,%d)", padOffset, numModules)
	}
	if err := lim.checkCells(numModules); err != nil {
		return nil, fmt.Errorf("netD: %w", err)
	}
	if err := lim.checkNets(numNets); err != nil {
		return nil, fmt.Errorf("netD: %w", err)
	}
	if err := lim.checkPins(numPins); err != nil {
		return nil, fmt.Errorf("netD: %w", err)
	}

	names := make(map[string]int32, numModules)
	idOf := func(name string) (int32, error) {
		if id, ok := names[name]; ok {
			return id, nil
		}
		id, err := parseModuleName(name, padOffset, numModules)
		if err != nil {
			return 0, err
		}
		names[name] = id
		return id, nil
	}

	b := NewBuilder(numModules)
	pads := make([]bool, numModules)
	var current []int32
	flush := func() {
		if len(current) >= 2 {
			b.AddNet32(current)
		}
		current = current[:0]
	}
	pinCount := 0
	for {
		line, err := nextLine(sc)
		if err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("netD: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("netD: malformed pin line %q", line)
		}
		id, err := idOf(fields[0])
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(fields[0], "p") {
			pads[id] = true
		}
		b.SetName(int(id), fields[0])
		switch fields[1] {
		case "s":
			flush()
			current = append(current, id)
		case "l":
			if len(current) == 0 {
				return nil, fmt.Errorf("netD: continuation pin %q before any net start", line)
			}
			current = append(current, id)
		default:
			return nil, fmt.Errorf("netD: pin line %q must be marked s or l", line)
		}
		pinCount++
		if pinCount > numPins {
			return nil, fmt.Errorf("netD: header claims %d pins, file has more", numPins)
		}
	}
	flush()
	if pinCount != numPins {
		return nil, fmt.Errorf("netD: header claims %d pins, file has %d", numPins, pinCount)
	}
	// Areas.
	if areR != nil {
		asc := bufio.NewScanner(areR)
		asc.Buffer(make([]byte, 1<<20), 1<<24)
		for asc.Scan() {
			line := strings.TrimSpace(asc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("are: malformed line %q", line)
			}
			id, err := idOf(fields[0])
			if err != nil {
				return nil, err
			}
			a, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || a < 0 {
				return nil, fmt.Errorf("are: bad area %q for %s", fields[1], fields[0])
			}
			b.SetArea(int(id), a)
		}
		if err := asc.Err(); err != nil {
			return nil, err
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	if h.NumNets() > numNets {
		return nil, fmt.Errorf("netD: header claims %d nets, file has %d", numNets, h.NumNets())
	}
	return &NetDCircuit{H: h, Pads: pads}, nil
}

// parseModuleName maps "aN" (cell) or "pN" (pad) to a module index:
// cells aN occupy indices 0..padOffset, pads pN occupy padOffset+1
// onward (pN is 1-based, per the benchmark convention). The index is
// returned as the CSR's int32 pin type; the range checks against
// numModules (itself capped by Limits) make the narrowing exact.
func parseModuleName(name string, padOffset, numModules int) (int32, error) {
	if len(name) < 2 {
		return 0, fmt.Errorf("netD: bad module name %q", name)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil {
		return 0, fmt.Errorf("netD: bad module name %q", name)
	}
	switch name[0] {
	case 'a':
		if n < 0 || n > padOffset {
			return 0, fmt.Errorf("netD: cell %q outside [a0,a%d]", name, padOffset)
		}
		return int32(n), nil
	case 'p':
		id := padOffset + n // p1 → padOffset+1
		if n < 1 || id >= numModules {
			return 0, fmt.Errorf("netD: pad %q outside range", name)
		}
		return int32(id), nil
	default:
		return 0, fmt.Errorf("netD: module name %q must start with 'a' or 'p'", name)
	}
}

// WriteNetD writes h (with the given pad flags, nil for none) in
// .netD format, renaming modules to the canonical aN/pN scheme:
// non-pads first in index order, then pads.
func WriteNetD(netW io.Writer, areW io.Writer, h *Hypergraph, pads []bool) error {
	n := h.NumCells()
	if pads != nil && len(pads) != n {
		return fmt.Errorf("netD: pads has %d entries, hypergraph has %d cells", len(pads), n)
	}
	isPad := func(v int) bool { return pads != nil && pads[v] }
	// Canonical renaming.
	name := make([]string, n)
	cells, padCount := 0, 0
	for v := 0; v < n; v++ {
		if !isPad(v) {
			name[v] = fmt.Sprintf("a%d", cells)
			cells++
		}
	}
	for v := 0; v < n; v++ {
		if isPad(v) {
			padCount++
			name[v] = fmt.Sprintf("p%d", padCount)
		}
	}
	bw := bufio.NewWriter(netW)
	fmt.Fprintln(bw, 0)
	fmt.Fprintln(bw, h.NumPins())
	fmt.Fprintln(bw, h.NumNets())
	fmt.Fprintln(bw, n)
	fmt.Fprintln(bw, cells-1) // padOffset
	for e := 0; e < h.NumNets(); e++ {
		for i, v := range h.Pins(e) {
			marker := "l"
			if i == 0 {
				marker = "s"
			}
			fmt.Fprintf(bw, "%s %s\n", name[v], marker)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if areW != nil {
		aw := bufio.NewWriter(areW)
		for v := 0; v < n; v++ {
			fmt.Fprintf(aw, "%s %d\n", name[v], h.Area(v))
		}
		return aw.Flush()
	}
	return nil
}
