package hypergraph_test

// FuzzProjectRoundTrip drives the induce/project pair of Definitions
// 1 and 2 at random instances and random clusterings: the coarse
// hypergraph must preserve the total area and the vertex accounting,
// the workspace-reusing InduceWS must be bit-identical to the
// allocating path even with a dirty workspace, and a coarse solution
// must keep its oracle-recomputed cut under projection (nets dropped
// by |e*| = 1 are exactly the nets a projected solution can never
// cut). The file lives in the external test package so it can import
// internal/oracle without a cycle.

import (
	"math/rand"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/oracle"
)

func FuzzProjectRoundTrip(f *testing.F) {
	// The five pinned corpus seeds.
	f.Add(int64(1), uint16(10), uint16(12), byte(3), byte(2))
	f.Add(int64(42), uint16(60), uint16(80), byte(17), byte(3))
	f.Add(int64(1997), uint16(200), uint16(260), byte(40), byte(4))
	f.Add(int64(-7), uint16(2), uint16(0), byte(1), byte(2))
	f.Add(int64(31337), uint16(300), uint16(350), byte(250), byte(5))
	f.Fuzz(func(t *testing.T, seed int64, cellsIn, netsIn uint16, kIn, blocksIn byte) {
		n := int(cellsIn)%300 + 2
		m := int(netsIn) % 400
		rng := rand.New(rand.NewSource(seed))

		b := hypergraph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetArea(v, int64(1+rng.Intn(3)))
		}
		weights := []int32{2, 3, 5}
		for e := 0; e < m; e++ {
			size := 2 + rng.Intn(5)
			pins := make([]int, size)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			if rng.Intn(4) == 0 {
				b.AddWeightedNet(weights[rng.Intn(len(weights))], pins...)
			} else {
				b.AddNet(pins...)
			}
		}
		h := b.MustBuild()

		// A random clustering with k non-empty clusters: the first k
		// cells pin one cluster each, the rest land anywhere.
		k := int(kIn)%n + 1
		c := &hypergraph.Clustering{CellToCluster: make([]int32, n), NumClusters: k}
		perm := rng.Perm(n)
		for i, v := range perm {
			if i < k {
				c.CellToCluster[v] = int32(i) //mllint:ignore unchecked-narrow cluster id < n ≤ 302
			} else {
				c.CellToCluster[v] = int32(rng.Intn(k)) //mllint:ignore unchecked-narrow cluster id < n ≤ 302
			}
		}

		coarse, err := hypergraph.Induce(h, c)
		if err != nil {
			t.Fatalf("induce: %v", err)
		}
		if coarse.NumCells() != k {
			t.Fatalf("coarse has %d cells, clustering has %d clusters", coarse.NumCells(), k)
		}
		if coarse.TotalArea() != h.TotalArea() {
			t.Fatalf("induce changed total area: %d → %d", h.TotalArea(), coarse.TotalArea())
		}
		if err := coarse.Validate(); err != nil {
			t.Fatalf("induced hypergraph invalid: %v", err)
		}

		// The workspace path must match the allocating path exactly,
		// even when the workspace arrives dirty from another instance.
		ws := &hypergraph.InduceWorkspace{}
		if _, err := hypergraph.InduceWS(h, c, ws); err != nil {
			t.Fatal(err)
		}
		coarse2, err := hypergraph.InduceWS(h, c, ws)
		if err != nil {
			t.Fatal(err)
		}
		if coarse2.NumCells() != coarse.NumCells() || coarse2.NumNets() != coarse.NumNets() ||
			coarse2.NumPins() != coarse.NumPins() || coarse2.Weighted() != coarse.Weighted() {
			t.Fatal("InduceWS shape differs from Induce")
		}
		for e := 0; e < coarse.NumNets(); e++ {
			if coarse2.NetWeight(e) != coarse.NetWeight(e) {
				t.Fatalf("net %d weight differs", e)
			}
			a, b2 := coarse.Pins(e), coarse2.Pins(e)
			if len(a) != len(b2) {
				t.Fatalf("net %d pin count differs", e)
			}
			for i := range a {
				if a[i] != b2[i] {
					t.Fatalf("net %d pin %d differs", e, i)
				}
			}
		}
		for v := 0; v < k; v++ {
			if coarse.Area(v) != coarse2.Area(v) {
				t.Fatalf("cluster %d area differs", v)
			}
		}

		// A coarse solution keeps its cut under projection.
		blocks := int(blocksIn)%4 + 2
		pc := &hypergraph.Partition{Part: make([]int32, k), K: blocks}
		for v := range pc.Part {
			pc.Part[v] = int32(rng.Intn(blocks)) //mllint:ignore unchecked-narrow block id < 6
		}
		pf, err := hypergraph.Project(c, pc)
		if err != nil {
			t.Fatalf("project: %v", err)
		}
		if len(pf.Part) != n {
			t.Fatalf("projected partition covers %d cells, want %d", len(pf.Part), n)
		}
		if got, want := oracle.WeightedCut(h, pf), oracle.WeightedCut(coarse, pc); got != want {
			t.Fatalf("projection changed the oracle cut: coarse %d, fine %d", want, got)
		}
		if got, want := oracle.SumOfDegrees(h, pf), oracle.SumOfDegrees(coarse, pc); got != want {
			t.Fatalf("projection changed the oracle sum-of-degrees: coarse %d, fine %d", want, got)
		}

		// ProjectInto into a dirty undersized-then-reused buffer must
		// equal Project.
		buf := &hypergraph.Partition{Part: []int32{9, 9}, K: 1}
		if err := hypergraph.ProjectInto(c, pc, buf); err != nil {
			t.Fatalf("project into: %v", err)
		}
		if buf.K != pf.K || len(buf.Part) != len(pf.Part) {
			t.Fatal("ProjectInto shape differs from Project")
		}
		for v := range pf.Part {
			if buf.Part[v] != pf.Part[v] {
				t.Fatalf("ProjectInto diverges at cell %d", v)
			}
		}
	})
}
