package hypergraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHGRRoundTripUnitAreas(t *testing.T) {
	h := tiny(t)
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.NumCells() != h.NumCells() || got.NumNets() != h.NumNets() || got.NumPins() != h.NumPins() {
		t.Errorf("round trip mismatch: %v vs %v", got, h)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestHGRRoundTripWeighted(t *testing.T) {
	h, err := NewBuilder(3).
		SetArea(0, 5).SetArea(1, 2).SetArea(2, 9).
		AddNet(0, 1).AddNet(1, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(buf.String(), "10") {
		t.Errorf("weighted hypergraph should emit fmt 10 header:\n%s", buf.String())
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for v := 0; v < 3; v++ {
		if got.Area(v) != h.Area(v) {
			t.Errorf("area(%d) = %d, want %d", v, got.Area(v), h.Area(v))
		}
	}
}

func TestReadHGRCommentsAndBlank(t *testing.T) {
	in := "% a comment\n\n2 3\n% nets follow\n1 2\n\n2 3\n"
	h, err := ReadHGR(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if h.NumCells() != 3 || h.NumNets() != 2 {
		t.Errorf("got %v", h)
	}
}

func TestReadHGRErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x y\n",
		"short header":   "5\n",
		"bad fmt":        "1 2 7\n1 2\n",
		"bad net weight": "1 2 1\n0 1 2\n",
		"pin range":      "1 2\n1 9\n",
		"pin zero":       "1 2\n0 1\n",
		"missing net":    "2 3\n1 2\n",
		"bad pin":        "1 2\nfoo bar\n",
		"missing weight": "1 2 10\n1 2\n",
		"bad weight":     "1 2 10\n1 2\nx\ny\n",
		"neg nets":       "-1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadHGR(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	p := &Partition{Part: []int32{0, 1, 2, 1, 0}, K: 3}
	var buf bytes.Buffer
	if err := WritePartition(&buf, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadPartition(&buf, 5)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.K != 3 {
		t.Errorf("K = %d, want 3", got.K)
	}
	for v := range p.Part {
		if got.Part[v] != p.Part[v] {
			t.Errorf("cell %d: %d vs %d", v, got.Part[v], p.Part[v])
		}
	}
}

func TestReadPartitionErrors(t *testing.T) {
	if _, err := ReadPartition(strings.NewReader("0\n1\n"), 3); err == nil {
		t.Error("expected cell-count error")
	}
	if _, err := ReadPartition(strings.NewReader("0\n-1\n"), 2); err == nil {
		t.Error("expected negative-index error")
	}
	if _, err := ReadPartition(strings.NewReader("0\nzebra\n"), 2); err == nil {
		t.Error("expected parse error")
	}
}

func TestPropertyHGRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 2+rng.Intn(30), rng.Intn(60))
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			return false
		}
		got, err := ReadHGR(&buf)
		if err != nil {
			return false
		}
		if got.NumCells() != h.NumCells() || got.NumNets() != h.NumNets() ||
			got.NumPins() != h.NumPins() || got.TotalArea() != h.TotalArea() {
			return false
		}
		for e := 0; e < h.NumNets(); e++ {
			a, b := h.Pins(e), got.Pins(e)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
