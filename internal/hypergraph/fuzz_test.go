package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the file parsers: any input must either parse into
// a hypergraph that passes Validate, or return an error — never panic
// and never produce an invalid structure.

func FuzzReadHGR(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("1 2 10\n1 2\n4\n7\n")
	f.Add("% comment\n\n2 3\n1 2 3\n1 3\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("1 2 11\n1 2\n")
	f.Add("9999999 2\n1 2\n")
	// Resource-limit and overflow probes: headers claiming absurd
	// sizes, int64 area overflow, out-of-range net weights. All must
	// fail cleanly before proportional allocation.
	f.Add("99999999999999999999 2\n")
	f.Add("2 99999999999999999999\n")
	f.Add("1000000000 1000000000\n1 2\n")
	f.Add("1 2 10\n1 2\n9223372036854775807\n9223372036854775807\n")
	f.Add("1 2 1\n99999999999 1 2\n")
	f.Add("1 2 1\n0 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadHGR(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("parsed invalid hypergraph from %q: %v", in, err)
		}
		// Valid parses must round-trip.
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		h2, err := ReadHGR(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if h2.NumCells() != h.NumCells() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatal("round trip changed sizes")
		}
	})
}

func FuzzReadNetD(f *testing.F) {
	f.Add("0\n5\n2\n4\n2\na0 s\na1 l\np1 l\na1 s\na2 l\n")
	f.Add("0\n2\n1\n2\n0\na0 s\np1 l\n")
	f.Add("")
	f.Add("0\n0\n0\n1\n-1\n")
	f.Add("0\n2\n1\n2\n0\na0 s I\np1 l O\n")
	// Headers claiming more pins/cells than any sane netlist, or more
	// pins than the file provides.
	f.Add("0\n99999999999999999999\n1\n2\n0\na0 s\np1 l\n")
	f.Add("0\n2\n1\n99999999999999999999\n0\na0 s\np1 l\n")
	f.Add("0\n2\n1\n2\n0\na0 s\np1 l\na1 l\n")
	// A duplicated pad/pin line inside one net: the duplicate pin
	// must be merged by the builder (never doubling the pin count or
	// corrupting the CSR), and the pad flag must be set exactly once.
	f.Add("0\n5\n2\n4\n2\na0 s\np1 l\np1 l\na1 s\na2 l\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadNetD(strings.NewReader(in), nil)
		if err != nil {
			return
		}
		if err := c.H.Validate(); err != nil {
			t.Fatalf("parsed invalid hypergraph from %q: %v", in, err)
		}
		if len(c.Pads) != c.H.NumCells() {
			t.Fatal("pads length mismatch")
		}
	})
}

func FuzzReadPartition(f *testing.F) {
	f.Add("0\n1\n0\n", 3)
	f.Add("", 0)
	f.Add("2\n2\n1\n0\n", 4)
	// Non-contiguous block indices (block 1 empty below max 2), an
	// index beyond int32, and more lines than cells.
	f.Add("0\n2\n0\n", 3)
	f.Add("4294967296\n", 1)
	f.Add("0\n0\n0\n0\n", 2)
	f.Fuzz(func(t *testing.T, in string, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		p, err := ReadPartition(strings.NewReader(in), n)
		if err != nil {
			return
		}
		if err := p.Validate(n); err != nil {
			t.Fatalf("parsed invalid partition from %q: %v", in, err)
		}
	})
}
