package hypergraph

// InduceWorkspace holds the scratch memory of InduceWS: the per-net
// dedup stamps and the growable pin/offset/weight accumulators the
// coarse CSR is assembled from. Threading one workspace through the
// Induce calls of a multilevel run reduces each level's allocations to
// the handful of arrays the returned Hypergraph actually retains
// (areas, the two CSR directions, optional weights) — the Builder path
// allocates one slice per net instead.
//
// Ownership rule: an InduceWorkspace belongs to exactly one goroutine
// and one pipeline attempt at a time; never store one in a package
// level variable or share it across concurrent attempts. The zero
// value is ready to use.
type InduceWorkspace struct {
	mark    []int32 // per cluster: id of the last fine net that touched it
	pins    []int32 // coarse pins of all kept nets, concatenated
	starts  []int32 // CSR offsets into pins, len keptNets+1
	weights []int32 // weight per kept net
	fill    []int32 // cell→net CSR fill cursors

	// par holds the per-worker buffers of the parallel assembly path
	// (induce_par.go); unused (and never allocated) by InduceWS.
	par inducePar
}

// InduceWS is Induce with caller-supplied scratch memory; nil ws
// behaves exactly like Induce (it is Induce's implementation). The
// returned hypergraph is freshly allocated and independent of ws —
// reusing the workspace for the next level never aliases a previously
// returned hypergraph.
//
// The construction is bit-identical to building through Builder: nets
// keep fine-net order, pins are sorted ascending and deduplicated,
// coarse nets with fewer than two pins are dropped, and the weighted
// flag is set iff any kept net has weight ≠ 1.
func InduceWS(h *Hypergraph, c *Clustering, ws *InduceWorkspace) (*Hypergraph, error) {
	if err := c.Validate(h.NumCells()); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = &InduceWorkspace{}
	}
	k := c.NumClusters

	// Cluster areas are retained by the result: allocate fresh.
	area := make([]int64, k)
	for v := 0; v < h.NumCells(); v++ {
		area[c.CellToCluster[v]] += h.Area(v)
	}

	// Accumulate the kept coarse nets into the workspace: mark[] stamp
	// dedup per net (no per-net map or slice), in-place sort of each
	// net's pin window.
	if cap(ws.mark) < k {
		ws.mark = make([]int32, k)
	}
	mark := ws.mark[:k]
	for i := range mark {
		mark[i] = -1
	}
	pins := ws.pins[:0]
	starts := append(ws.starts[:0], 0)
	weights := ws.weights[:0]
	weighted := false
	for e := 0; e < h.NumNets(); e++ {
		base := len(pins)
		for _, p := range h.Pins(e) {
			kk := c.CellToCluster[p]
			if mark[kk] != int32(e) {
				mark[kk] = int32(e)
				pins = append(pins, kk)
			}
		}
		if len(pins)-base < 2 {
			// |e*| = 1: dropped per Definition 1 / the net definition.
			pins = pins[:base]
			continue
		}
		sortPinWindow(pins[base:])
		w := h.NetWeight(e)
		weights = append(weights, w)
		if w != 1 {
			weighted = true
		}
		//mllint:ignore unchecked-narrow coarse pin total ≤ fine pin total, which Build/parse already capped at MaxInt32
		starts = append(starts, int32(len(pins)))
	}
	ws.pins, ws.starts, ws.weights = pins, starts, weights

	numNets := len(weights)
	hh := &Hypergraph{
		numCells: k,
		numNets:  numNets,
		area:     area,
		// Clusters partition the cells, so the coarse total is exactly
		// the fine total (already overflow-checked at fine build time).
		totalArea: h.totalArea,
	}
	for _, a := range area {
		if a > hh.maxArea {
			hh.maxArea = a
		}
	}
	hh.netStart = make([]int32, numNets+1)
	copy(hh.netStart, starts)
	hh.netPins = make([]int32, len(pins))
	copy(hh.netPins, pins)
	if weighted {
		hh.netWeight = make([]int32, numNets)
		copy(hh.netWeight, weights)
	}

	// Cell→net CSR: count, prefix-sum, fill in net order — the same
	// procedure (and therefore the same arrays) as Builder.Build.
	hh.cellStart = make([]int32, k+1)
	for _, p := range pins {
		hh.cellStart[p+1]++
	}
	for v := 0; v < k; v++ {
		hh.cellStart[v+1] += hh.cellStart[v]
	}
	hh.cellNets = make([]int32, len(pins))
	if cap(ws.fill) < k {
		ws.fill = make([]int32, k)
	}
	fill := ws.fill[:k]
	copy(fill, hh.cellStart[:k])
	for e := 0; e < numNets; e++ {
		for _, p := range pins[starts[e]:starts[e+1]] {
			hh.cellNets[fill[p]] = int32(e)
			fill[p]++
		}
	}
	return hh, nil
}

// sortPinWindow sorts one net's pin window ascending, in place and
// without allocating: insertion sort for the short lists coarsening
// overwhelmingly produces, in-place heapsort beyond that. Pins are
// distinct (mark-stamp dedup), so any correct sort yields the same
// sequence Builder's sort.Slice would.
func sortPinWindow(a []int32) {
	if len(a) <= 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	// Heapsort: no recursion, no scratch.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownPins(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownPins(a, 0, end)
	}
}

func siftDownPins(a []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
