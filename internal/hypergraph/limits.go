package hypergraph

import (
	"fmt"
	"math"
)

// Limits bounds the resources the file parsers will allocate for a
// single input. The parsers reject any file whose header or contents
// exceed a limit before allocating proportional memory, so an
// adversarial or corrupt input cannot exhaust the process. The zero
// value of any field selects the corresponding default; to lift a
// bound explicitly, set the field to math.MaxInt.
type Limits struct {
	// MaxCells caps the number of modules. Default 8Mi.
	MaxCells int
	// MaxNets caps the number of nets. Default 16Mi.
	MaxNets int
	// MaxPins caps the total pin count. Default 256Mi.
	MaxPins int
}

// DefaultLimits returns the production defaults: generous enough for
// every published benchmark (golem3 is ~10^5 cells) with two orders
// of magnitude of headroom, small enough that a hostile header cannot
// force a multi-gigabyte allocation.
func DefaultLimits() Limits {
	return Limits{
		MaxCells: 8 << 20,
		MaxNets:  16 << 20,
		MaxPins:  256 << 20,
	}
}

// normalize fills zero fields with the defaults.
func (l Limits) normalize() Limits {
	d := DefaultLimits()
	if l.MaxCells <= 0 {
		l.MaxCells = d.MaxCells
	}
	if l.MaxNets <= 0 {
		l.MaxNets = d.MaxNets
	}
	if l.MaxPins <= 0 {
		l.MaxPins = d.MaxPins
	}
	return l
}

func (l Limits) checkCells(n int) error {
	if n > l.MaxCells {
		return fmt.Errorf("hypergraph: %d cells exceeds limit %d", n, l.MaxCells)
	}
	return nil
}

func (l Limits) checkNets(n int) error {
	if n > l.MaxNets {
		return fmt.Errorf("hypergraph: %d nets exceeds limit %d", n, l.MaxNets)
	}
	return nil
}

func (l Limits) checkPins(n int) error {
	if n > l.MaxPins {
		return fmt.Errorf("hypergraph: %d pins exceeds limit %d", n, l.MaxPins)
	}
	return nil
}

// addArea accumulates cell areas with an explicit overflow check, so
// that a file carrying near-MaxInt64 areas cannot wrap TotalArea into
// a negative (and thence corrupt every balance bound downstream).
func addArea(total, a int64) (int64, error) {
	if a < 0 {
		return 0, fmt.Errorf("hypergraph: negative area %d", a)
	}
	if total > math.MaxInt64-a {
		return 0, fmt.Errorf("hypergraph: total cell area overflows int64")
	}
	return total + a, nil
}
