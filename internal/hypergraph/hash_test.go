package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// buildTriangle returns a tiny 3-cell hypergraph through the Builder.
func buildTriangle(t *testing.T, areas []int64) *Hypergraph {
	t.Helper()
	b := NewBuilder(3)
	if areas != nil {
		for v, a := range areas {
			b.SetArea(v, a)
		}
	}
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(0, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestContentHashDeterministic(t *testing.T) {
	h1 := buildTriangle(t, nil)
	h2 := buildTriangle(t, nil)
	if h1.ContentHash() != h2.ContentHash() {
		t.Fatal("equal hypergraphs hash differently")
	}
	if len(h1.ContentHash()) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1.ContentHash())
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := buildTriangle(t, nil).ContentHash()

	// Different areas must change the hash.
	if got := buildTriangle(t, []int64{2, 1, 1}).ContentHash(); got == base {
		t.Error("area change did not change the hash")
	}

	// Different structure must change the hash.
	b := NewBuilder(3)
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.ContentHash() == base {
		t.Error("net removal did not change the hash")
	}

	// A net weight must change the hash even with equal structure.
	bw := NewBuilder(3)
	bw.AddWeightedNet(2, 0, 1)
	bw.AddNet(1, 2)
	bw.AddNet(0, 2)
	hw, err := bw.Build()
	if err != nil {
		t.Fatal(err)
	}
	if hw.ContentHash() == base {
		t.Error("net weight did not change the hash")
	}
}

// The hash must be a property of the parsed content, not of the file
// bytes: re-reading a written .hgr and a whitespace-perturbed variant
// must agree with the original.
func TestContentHashFormatIndependent(t *testing.T) {
	h := buildTriangle(t, []int64{3, 1, 2})
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	r1, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ContentHash() != h.ContentHash() {
		t.Error("write/read round trip changed the hash")
	}

	// Extra spaces between pins are insignificant to the parser and
	// must therefore be insignificant to the hash.
	var buf2 bytes.Buffer
	if err := WriteHGR(&buf2, h); err != nil {
		t.Fatal(err)
	}
	spaced := strings.ReplaceAll(buf2.String(), " ", "  ")
	r2, err := ReadHGR(strings.NewReader(spaced))
	if err != nil {
		t.Fatal(err)
	}
	if r2.ContentHash() != h.ContentHash() {
		t.Error("whitespace perturbation changed the hash")
	}
}
