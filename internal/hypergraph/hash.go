package hypergraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ContentHash returns a stable hex digest of the hypergraph's
// partitioning-relevant content: cell count, per-cell areas, and the
// net→pin structure with per-net weights. Cell names are excluded —
// they never influence a partition — so renaming cells does not split
// the mlpartd result cache. Two hypergraphs with equal hashes produce
// identical partitions under equal options.
//
// The digest is computed over a fixed little-endian binary walk (not
// a textual encoding), so it is independent of file-format quirks
// such as whitespace or the .hgr/.netD distinction: parsing the same
// netlist from either format hashes identically.
func (h *Hypergraph) ContentHash() string {
	d := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		d.Write(buf[:])
	}
	writeInt(int64(h.numCells))
	writeInt(int64(h.numNets))
	for v := 0; v < h.numCells; v++ {
		writeInt(h.area[v])
	}
	for e := 0; e < h.numNets; e++ {
		writeInt(int64(h.NetWeight(e)))
		pins := h.Pins(e)
		writeInt(int64(len(pins)))
		for _, p := range pins {
			writeInt(int64(p))
		}
	}
	return hex.EncodeToString(d.Sum(nil))
}
