package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The .hgr format is the hMETIS hypergraph format commonly used for
// circuit partitioning benchmarks:
//
//	<numNets> <numCells> [fmt]
//	<pin> <pin> ...        (one line per net, 1-based cell indices)
//	[<area>]               (one line per cell, iff fmt contains the
//	                        weight flag 10 or 11)
//
// Lines starting with '%' are comments. All four fmt values are
// supported: "" (no weights), "1" (net weights lead each net line),
// "10" (cell weights), "11" (both).

// WriteHGR writes h in hMETIS .hgr format. Cell areas are emitted
// (fmt 10) unless every cell has unit area.
func WriteHGR(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	unit := true
	for v := 0; v < h.NumCells(); v++ {
		if h.Area(v) != 1 {
			unit = false
			break
		}
	}
	weighted := h.Weighted()
	switch {
	case unit && !weighted:
		fmt.Fprintf(bw, "%d %d\n", h.NumNets(), h.NumCells())
	case unit && weighted:
		fmt.Fprintf(bw, "%d %d 1\n", h.NumNets(), h.NumCells())
	case !unit && !weighted:
		fmt.Fprintf(bw, "%d %d 10\n", h.NumNets(), h.NumCells())
	default:
		fmt.Fprintf(bw, "%d %d 11\n", h.NumNets(), h.NumCells())
	}
	for e := 0; e < h.NumNets(); e++ {
		if weighted {
			bw.WriteString(strconv.Itoa(int(h.NetWeight(e))))
			bw.WriteByte(' ')
		}
		pins := h.Pins(e)
		for i, p := range pins {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(int(p) + 1))
		}
		bw.WriteByte('\n')
	}
	if !unit {
		for v := 0; v < h.NumCells(); v++ {
			fmt.Fprintf(bw, "%d\n", h.Area(v))
		}
	}
	return bw.Flush()
}

// ReadHGR parses an hMETIS .hgr hypergraph under DefaultLimits.
func ReadHGR(r io.Reader) (*Hypergraph, error) {
	return ReadHGRLimits(r, Limits{})
}

// ReadHGRLimits parses an hMETIS .hgr hypergraph, rejecting inputs
// that exceed lim (zero fields of lim select the defaults). Headers
// over the limits fail before any proportional allocation.
func ReadHGRLimits(r io.Reader, lim Limits) (*Hypergraph, error) {
	lim = lim.normalize()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("hgr: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("hgr: malformed header %q", line)
	}
	numNets, err := strconv.Atoi(fields[0])
	if err != nil || numNets < 0 {
		return nil, fmt.Errorf("hgr: bad net count %q", fields[0])
	}
	numCells, err := strconv.Atoi(fields[1])
	if err != nil || numCells < 0 {
		return nil, fmt.Errorf("hgr: bad cell count %q", fields[1])
	}
	if err := lim.checkNets(numNets); err != nil {
		return nil, fmt.Errorf("hgr: %w", err)
	}
	if err := lim.checkCells(numCells); err != nil {
		return nil, fmt.Errorf("hgr: %w", err)
	}
	cellWeights, netWeights := false, false
	if len(fields) == 3 {
		switch fields[2] {
		case "0", "00":
			// no weights
		case "1", "01":
			netWeights = true
		case "10":
			cellWeights = true
		case "11":
			cellWeights, netWeights = true, true
		default:
			return nil, fmt.Errorf("hgr: unsupported fmt %q", fields[2])
		}
	}
	b := NewBuilder(numCells)
	pins := make([]int32, 0, 16)
	totalPins := 0
	for e := 0; e < numNets; e++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("hgr: net %d: %w", e+1, err)
		}
		fs := strings.Fields(line)
		weight := int32(1)
		if netWeights {
			if len(fs) == 0 {
				return nil, fmt.Errorf("hgr: net %d: missing weight", e+1)
			}
			w, err := strconv.Atoi(fs[0])
			if err != nil || w < 1 || w > math.MaxInt32 {
				return nil, fmt.Errorf("hgr: net %d: bad weight %q", e+1, fs[0])
			}
			weight = int32(w)
			fs = fs[1:]
		}
		totalPins += len(fs)
		if err := lim.checkPins(totalPins); err != nil {
			return nil, fmt.Errorf("hgr: net %d: %w", e+1, err)
		}
		pins = pins[:0]
		for _, f := range fs {
			p, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hgr: net %d: bad pin %q", e+1, f)
			}
			if p < 1 || p > numCells {
				return nil, fmt.Errorf("hgr: net %d: pin %d out of range [1,%d]", e+1, p, numCells)
			}
			pins = append(pins, int32(p-1))
		}
		b.AddWeightedNet32(weight, pins)
	}
	if cellWeights {
		for v := 0; v < numCells; v++ {
			line, err := nextLine(sc)
			if err != nil {
				return nil, fmt.Errorf("hgr: weight of cell %d: %w", v+1, err)
			}
			a, err := strconv.ParseInt(strings.TrimSpace(line), 10, 64)
			if err != nil || a < 0 {
				return nil, fmt.Errorf("hgr: bad weight %q for cell %d", line, v+1)
			}
			b.SetArea(v, a)
		}
	}
	return b.Build()
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WritePartition writes a partition as one block index per line
// (cell order), the format used by hMETIS and friends.
func WritePartition(w io.Writer, p *Partition) error {
	bw := bufio.NewWriter(w)
	for _, k := range p.Part {
		fmt.Fprintf(bw, "%d\n", k)
	}
	return bw.Flush()
}

// ReadPartition reads a one-block-index-per-line partition for a
// hypergraph with numCells cells; K is inferred as max+1. The block
// indices must be contiguous: every block in [0, max] must be
// non-empty, so that the inferred K matches the number of blocks
// actually present (a gap almost always means a corrupt or mismatched
// file). Reading stops with an error as soon as the file exceeds
// numCells entries.
func ReadPartition(r io.Reader, numCells int) (*Partition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	p := &Partition{Part: make([]int32, 0, numCells)}
	maxK := int32(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if len(p.Part) >= numCells {
			return nil, fmt.Errorf("partition: file has more than the expected %d cells", numCells)
		}
		k, err := strconv.Atoi(line)
		if err != nil || k < 0 || k > math.MaxInt32-1 {
			return nil, fmt.Errorf("partition: bad block index %q on line %d", line, len(p.Part)+1)
		}
		p.Part = append(p.Part, int32(k))
		if int32(k) > maxK {
			maxK = int32(k)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Part) != numCells {
		return nil, fmt.Errorf("partition: file has %d cells, expected %d", len(p.Part), numCells)
	}
	if numCells == 0 {
		p.K = 1
		return p, nil
	}
	// Contiguity: with numCells entries at most numCells distinct
	// blocks can be non-empty, so maxK ≥ numCells proves a gap without
	// allocating a count array sized by a hostile index.
	if int(maxK) >= numCells {
		return nil, fmt.Errorf("partition: block index %d with only %d cells leaves empty blocks below it", maxK, numCells)
	}
	count := make([]int32, int(maxK)+1)
	for _, k := range p.Part {
		count[k]++
	}
	for b, c := range count {
		if c == 0 {
			return nil, fmt.Errorf("partition: block %d is empty; block indices must be contiguous in [0,%d]", b, maxK)
		}
	}
	p.K = int(maxK) + 1
	return p, nil
}
