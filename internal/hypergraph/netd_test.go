package hypergraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadNetDBasic(t *testing.T) {
	// 2 nets: {a0, a1, p1} and {a1, a2}. 3 cells + 1 pad.
	netD := `0
5
2
4
2
a0 s
a1 l
p1 l
a1 s
a2 l
`
	are := "a0 4\na1 2\na2 1\np1 1\n"
	c, err := ReadNetD(strings.NewReader(netD), strings.NewReader(are))
	if err != nil {
		t.Fatal(err)
	}
	h := c.H
	if h.NumCells() != 4 || h.NumNets() != 2 || h.NumPins() != 5 {
		t.Fatalf("parsed %v", h)
	}
	if h.Area(0) != 4 || h.Area(1) != 2 || h.Area(3) != 1 {
		t.Errorf("areas wrong: %d %d %d", h.Area(0), h.Area(1), h.Area(3))
	}
	if !c.Pads[3] || c.Pads[0] || c.Pads[1] || c.Pads[2] {
		t.Errorf("pads = %v, want only p1 (index 3)", c.Pads)
	}
	if h.Name(3) != "p1" || h.Name(0) != "a0" {
		t.Errorf("names: %q %q", h.Name(3), h.Name(0))
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadNetDNoAreaFile(t *testing.T) {
	netD := "0\n2\n1\n2\n0\na0 s\np1 l\n"
	c, err := ReadNetD(strings.NewReader(netD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.H.Area(0) != 1 || c.H.Area(1) != 1 {
		t.Error("missing .are must mean unit areas")
	}
}

func TestReadNetDWithDirections(t *testing.T) {
	netD := "0\n2\n1\n2\n0\na0 s O\np1 l I\n"
	c, err := ReadNetD(strings.NewReader(netD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.H.NumNets() != 1 {
		t.Errorf("nets = %d", c.H.NumNets())
	}
}

func TestReadNetDErrors(t *testing.T) {
	cases := map[string]struct{ netD, are string }{
		"empty":            {"", ""},
		"bad magic":        {"7\n1\n1\n1\n0\na0 s\n", ""},
		"bad header":       {"0\nx\n1\n1\n0\n", ""},
		"pin count":        {"0\n9\n1\n2\n0\na0 s\np1 l\n", ""},
		"net count":        {"0\n4\n1\n2\n0\na0 s\np1 l\na0 s\np1 l\n", ""},
		"l before s":       {"0\n2\n1\n2\n0\na0 l\np1 l\n", ""},
		"bad marker":       {"0\n2\n1\n2\n0\na0 x\np1 l\n", ""},
		"bad module":       {"0\n2\n1\n2\n0\nq0 s\np1 l\n", ""},
		"cell range":       {"0\n2\n1\n2\n0\na5 s\np1 l\n", ""},
		"pad range":        {"0\n2\n1\n2\n0\na0 s\np9 l\n", ""},
		"pad offset range": {"0\n2\n1\n2\n7\na0 s\np1 l\n", ""},
		"malformed pin":    {"0\n2\n1\n2\n0\na0\n", ""},
		"bad are line":     {"0\n2\n1\n2\n0\na0 s\np1 l\n", "a0\n"},
		"bad area value":   {"0\n2\n1\n2\n0\na0 s\np1 l\n", "a0 -3\n"},
	}
	for name, tc := range cases {
		var areR *strings.Reader
		if tc.are != "" {
			areR = strings.NewReader(tc.are)
		}
		var err error
		if areR != nil {
			_, err = ReadNetD(strings.NewReader(tc.netD), areR)
		} else {
			_, err = ReadNetD(strings.NewReader(tc.netD), nil)
		}
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteNetDRoundTripPadsLast(t *testing.T) {
	// When pads already occupy the last indices, the canonical
	// renaming preserves cell order, so the round trip is exact.
	b := NewBuilder(5)
	b.SetArea(0, 3).SetArea(4, 2)
	b.AddNet(0, 1, 4)
	b.AddNet(1, 2)
	b.AddNet(2, 3, 4)
	h := b.MustBuild()
	pads := []bool{false, false, false, false, true}
	var netBuf, areBuf bytes.Buffer
	if err := WriteNetD(&netBuf, &areBuf, h, pads); err != nil {
		t.Fatal(err)
	}
	c, err := ReadNetD(bytes.NewReader(netBuf.Bytes()), bytes.NewReader(areBuf.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, netBuf.String())
	}
	if c.H.NumCells() != 5 || c.H.NumNets() != 3 || c.H.NumPins() != h.NumPins() {
		t.Fatalf("round trip mismatch: %v", c.H)
	}
	for e := 0; e < 3; e++ {
		a, bp := h.Pins(e), c.H.Pins(e)
		for i := range a {
			if a[i] != bp[i] {
				t.Fatalf("net %d pin %d: %d vs %d", e, i, a[i], bp[i])
			}
		}
	}
	if c.H.Area(0) != 3 || c.H.Area(4) != 2 {
		t.Error("areas lost")
	}
	if !c.Pads[4] {
		t.Error("pad flag lost")
	}
}

func TestWriteNetDPermutedPadsIsomorphic(t *testing.T) {
	// Pads in the middle get renamed to the end; the round trip is an
	// isomorphic hypergraph (same sizes, net-size multiset, areas).
	b := NewBuilder(4)
	b.AddNet(0, 1).AddNet(1, 2).AddNet(2, 3)
	h := b.MustBuild()
	pads := []bool{false, true, false, false}
	var netBuf bytes.Buffer
	if err := WriteNetD(&netBuf, nil, h, pads); err != nil {
		t.Fatal(err)
	}
	c, err := ReadNetD(bytes.NewReader(netBuf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.H.NumCells() != 4 || c.H.NumNets() != 3 || c.H.NumPins() != 6 {
		t.Fatalf("got %v", c.H)
	}
	nPads := 0
	for _, p := range c.Pads {
		if p {
			nPads++
		}
	}
	if nPads != 1 {
		t.Errorf("pads = %d, want 1", nPads)
	}
}

func TestWriteNetDErrors(t *testing.T) {
	h := NewBuilder(2).AddNet(0, 1).MustBuild()
	var buf bytes.Buffer
	if err := WriteNetD(&buf, nil, h, make([]bool, 5)); err == nil {
		t.Error("wrong pad length accepted")
	}
}

func TestPropertyNetDRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		h := randomHypergraph(rng, n, 5+rng.Intn(40))
		pads := make([]bool, n)
		// pads-last layout for exact round trip
		for v := n - 1 - rng.Intn(n/3+1); v < n; v++ {
			pads[v] = true
		}
		var netBuf, areBuf bytes.Buffer
		if err := WriteNetD(&netBuf, &areBuf, h, pads); err != nil {
			return false
		}
		c, err := ReadNetD(bytes.NewReader(netBuf.Bytes()), bytes.NewReader(areBuf.Bytes()))
		if err != nil {
			return false
		}
		if c.H.NumCells() != h.NumCells() || c.H.NumNets() != h.NumNets() ||
			c.H.NumPins() != h.NumPins() || c.H.TotalArea() != h.TotalArea() {
			return false
		}
		for e := 0; e < h.NumNets(); e++ {
			a, bp := h.Pins(e), c.H.Pins(e)
			if len(a) != len(bp) {
				return false
			}
			for i := range a {
				if a[i] != bp[i] {
					return false
				}
			}
		}
		return c.H.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
