// Package hypergraph implements the netlist hypergraph H(V, E) of
// Alpert/Huang/Kahng, "Multilevel Circuit Partitioning" (DAC 1997),
// together with clusterings, induced (coarsened) hypergraphs,
// partitions, projections, cut metrics, and file I/O.
//
// A netlist hypergraph has n modules (cells) and a set of nets; each
// net is a subset of the modules with size greater than one. Modules
// carry integer areas. The representation is CSR (compressed sparse
// row) in both directions — net→pins and cell→nets — so that
// golem3-scale instances (10^5 cells, 3×10^5 pins) stay
// allocation-light and cache-friendly.
package hypergraph

import (
	"fmt"
)

// Hypergraph is an immutable netlist hypergraph. Construct one with a
// Builder, with Induce, or by reading a file. The zero value is an
// empty hypergraph with no cells and no nets.
type Hypergraph struct {
	numCells int
	numNets  int

	area      []int64 // per-cell area, len numCells
	totalArea int64
	maxArea   int64

	// net -> pins (cells), CSR
	netStart []int32 // len numNets+1
	netPins  []int32 // len numPins

	// cell -> incident nets, CSR
	cellStart []int32 // len numCells+1
	cellNets  []int32 // len numPins

	// netWeight holds per-net integer weights; nil means every net
	// has weight 1 (the paper's unweighted model). Weights arise from
	// weighted input files and from merging parallel nets during
	// coarsening (InduceMerged).
	netWeight []int32

	names []string // optional cell names; nil or len numCells
}

// NetWeight returns the weight of net e (1 if unweighted).
func (h *Hypergraph) NetWeight(e int) int32 {
	if h.netWeight == nil {
		return 1
	}
	return h.netWeight[e]
}

// Weighted reports whether any net has weight ≠ 1.
func (h *Hypergraph) Weighted() bool { return h.netWeight != nil }

// TotalNetWeight returns the sum of all net weights.
func (h *Hypergraph) TotalNetWeight() int64 {
	if h.netWeight == nil {
		return int64(h.numNets)
	}
	var total int64
	for _, w := range h.netWeight {
		total += int64(w)
	}
	return total
}

// MaxWeightedDegree returns the maximum over cells of the summed
// weights of incident nets with at most maxNetSize pins (0 = no
// limit) — the bound on weighted FM gains.
func (h *Hypergraph) MaxWeightedDegree(maxNetSize int) int {
	maxd := 0
	for v := 0; v < h.numCells; v++ {
		d := 0
		for _, e := range h.Nets(v) {
			if maxNetSize > 0 && h.NetSize(int(e)) > maxNetSize {
				continue
			}
			d += int(h.NetWeight(int(e)))
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// NumCells returns the number of modules |V|.
func (h *Hypergraph) NumCells() int { return h.numCells }

// NumNets returns the number of nets |E|.
func (h *Hypergraph) NumNets() int { return h.numNets }

// NumPins returns the total number of pins, i.e. the sum of net sizes.
func (h *Hypergraph) NumPins() int { return len(h.netPins) }

// Pins returns the cells of net e as a shared slice; callers must not
// modify it.
func (h *Hypergraph) Pins(e int) []int32 {
	return h.netPins[h.netStart[e]:h.netStart[e+1]]
}

// Nets returns the nets incident to cell v as a shared slice; callers
// must not modify it.
func (h *Hypergraph) Nets(v int) []int32 {
	return h.cellNets[h.cellStart[v]:h.cellStart[v+1]]
}

// NetSize returns |e|, the number of pins on net e.
func (h *Hypergraph) NetSize(e int) int {
	return int(h.netStart[e+1] - h.netStart[e])
}

// Degree returns the number of nets incident to cell v.
func (h *Hypergraph) Degree(v int) int {
	return int(h.cellStart[v+1] - h.cellStart[v])
}

// Area returns the area A(v) of cell v.
func (h *Hypergraph) Area(v int) int64 { return h.area[v] }

// TotalArea returns A(V), the sum of all cell areas.
func (h *Hypergraph) TotalArea() int64 { return h.totalArea }

// MaxCellArea returns max_v A(v), used in the balance bound of
// §III.B; it is 0 for an empty hypergraph.
func (h *Hypergraph) MaxCellArea() int64 { return h.maxArea }

// Name returns the name of cell v, or "c<v>" if names were not set.
func (h *Hypergraph) Name(v int) string {
	if h.names != nil && h.names[v] != "" {
		return h.names[v]
	}
	return fmt.Sprintf("c%d", v)
}

// HasNames reports whether explicit cell names were attached.
func (h *Hypergraph) HasNames() bool { return h.names != nil }

// MaxDegree returns the maximum cell degree, counting only nets with
// at most maxNetSize pins (0 means no limit). This bounds FM gains.
func (h *Hypergraph) MaxDegree(maxNetSize int) int {
	maxd := 0
	for v := 0; v < h.numCells; v++ {
		d := 0
		for _, e := range h.Nets(v) {
			if maxNetSize > 0 && h.NetSize(int(e)) > maxNetSize {
				continue
			}
			d++
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// String returns a short human-readable summary.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph{cells: %d, nets: %d, pins: %d, area: %d}",
		h.numCells, h.numNets, h.NumPins(), h.totalArea)
}

// Stats summarises size characteristics in the format of Table I.
type Stats struct {
	Cells   int
	Nets    int
	Pins    int
	AvgNet  float64 // average net size
	AvgDeg  float64 // average cell degree
	MaxNet  int
	MaxDeg  int
	MinArea int64
	MaxArea int64
}

// ComputeStats returns the Table-I style size characteristics of h.
func (h *Hypergraph) ComputeStats() Stats {
	s := Stats{Cells: h.numCells, Nets: h.numNets, Pins: h.NumPins()}
	if h.numNets > 0 {
		s.AvgNet = float64(s.Pins) / float64(s.Nets)
	}
	if h.numCells > 0 {
		s.AvgDeg = float64(s.Pins) / float64(s.Cells)
		s.MinArea = h.area[0]
	}
	for e := 0; e < h.numNets; e++ {
		if n := h.NetSize(e); n > s.MaxNet {
			s.MaxNet = n
		}
	}
	for v := 0; v < h.numCells; v++ {
		if d := h.Degree(v); d > s.MaxDeg {
			s.MaxDeg = d
		}
		if a := h.area[v]; a < s.MinArea {
			s.MinArea = a
		} else if a > s.MaxArea {
			s.MaxArea = a
		}
	}
	if s.MaxArea < s.MinArea {
		s.MaxArea = s.MinArea
	}
	return s
}

// Validate checks internal consistency of the CSR arrays. It is meant
// for tests and for data read from files; construction via Builder or
// Induce always yields a valid hypergraph.
func (h *Hypergraph) Validate() error {
	if len(h.area) != h.numCells {
		return fmt.Errorf("hypergraph: area len %d != cells %d", len(h.area), h.numCells)
	}
	if len(h.netStart) != h.numNets+1 {
		return fmt.Errorf("hypergraph: netStart len %d != nets+1 %d", len(h.netStart), h.numNets+1)
	}
	if len(h.cellStart) != h.numCells+1 {
		return fmt.Errorf("hypergraph: cellStart len %d != cells+1 %d", len(h.cellStart), h.numCells+1)
	}
	if len(h.netPins) != len(h.cellNets) {
		return fmt.Errorf("hypergraph: pin arrays disagree: %d vs %d", len(h.netPins), len(h.cellNets))
	}
	var total, maxA int64
	for v, a := range h.area {
		if a < 0 {
			return fmt.Errorf("hypergraph: cell %d has negative area %d", v, a)
		}
		total += a
		if a > maxA {
			maxA = a
		}
	}
	if total != h.totalArea {
		return fmt.Errorf("hypergraph: totalArea %d != sum %d", h.totalArea, total)
	}
	if maxA != h.maxArea {
		return fmt.Errorf("hypergraph: maxArea %d != actual %d", h.maxArea, maxA)
	}
	for e := 0; e < h.numNets; e++ {
		if h.netStart[e] > h.netStart[e+1] {
			return fmt.Errorf("hypergraph: netStart not monotone at %d", e)
		}
		pins := h.Pins(e)
		if len(pins) < 2 {
			return fmt.Errorf("hypergraph: net %d has %d pins; nets must have size > 1", e, len(pins))
		}
		seen := make(map[int32]bool, len(pins))
		for _, p := range pins {
			if p < 0 || int(p) >= h.numCells {
				return fmt.Errorf("hypergraph: net %d references cell %d out of range", e, p)
			}
			if seen[p] {
				return fmt.Errorf("hypergraph: net %d has duplicate pin %d", e, p)
			}
			seen[p] = true
		}
	}
	// Cross-check cell->net direction against net->cell.
	count := make([]int32, h.numCells)
	for e := 0; e < h.numNets; e++ {
		for _, p := range h.Pins(e) {
			count[p]++
		}
	}
	for v := 0; v < h.numCells; v++ {
		if h.Degree(v) != int(count[v]) {
			return fmt.Errorf("hypergraph: cell %d degree %d != pin count %d", v, h.Degree(v), count[v])
		}
		for _, e := range h.Nets(v) {
			if e < 0 || int(e) >= h.numNets {
				return fmt.Errorf("hypergraph: cell %d references net %d out of range", v, e)
			}
			found := false
			for _, p := range h.Pins(int(e)) {
				if int(p) == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("hypergraph: cell %d lists net %d but net lacks the pin", v, e)
			}
		}
	}
	if h.names != nil && len(h.names) != h.numCells {
		return fmt.Errorf("hypergraph: names len %d != cells %d", len(h.names), h.numCells)
	}
	if h.netWeight != nil {
		if len(h.netWeight) != h.numNets {
			return fmt.Errorf("hypergraph: netWeight len %d != nets %d", len(h.netWeight), h.numNets)
		}
		for e, w := range h.netWeight {
			if w < 1 {
				return fmt.Errorf("hypergraph: net %d has weight %d < 1", e, w)
			}
		}
	}
	return nil
}
