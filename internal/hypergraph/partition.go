package hypergraph

import (
	"fmt"
	"math/rand"
)

// Partition is a k-way partitioning of the cells of a hypergraph:
// Part[v] is the block index in [0, K) of cell v. A bipartitioning is
// the K = 2 case.
type Partition struct {
	Part []int32
	K    int
}

// NewPartition returns an all-zeros partition of numCells cells into
// k blocks.
func NewPartition(numCells, k int) *Partition {
	return &Partition{Part: make([]int32, numCells), K: k}
}

// Clone returns a deep copy of p.
func (p *Partition) Clone() *Partition {
	q := &Partition{Part: make([]int32, len(p.Part)), K: p.K}
	copy(q.Part, p.Part)
	return q
}

// Validate checks that p is a well-formed partition of a hypergraph
// with numCells cells.
func (p *Partition) Validate(numCells int) error {
	if len(p.Part) != numCells {
		return fmt.Errorf("partition: maps %d cells, hypergraph has %d", len(p.Part), numCells)
	}
	if p.K < 1 {
		return fmt.Errorf("partition: K = %d < 1", p.K)
	}
	for v, k := range p.Part {
		if k < 0 || int(k) >= p.K {
			return fmt.Errorf("partition: cell %d in block %d out of range [0,%d)", v, k, p.K)
		}
	}
	return nil
}

// BlockAreas returns the total cell area in each block.
func (p *Partition) BlockAreas(h *Hypergraph) []int64 {
	areas := make([]int64, p.K)
	for v, k := range p.Part {
		areas[k] += h.Area(v)
	}
	return areas
}

// Cut returns the number of nets of h that span more than one block
// of p. For K = 2 this is the standard min-cut objective cut(P) of
// the paper. All nets are counted, including any that a refinement
// engine chose to ignore for speed.
func (p *Partition) Cut(h *Hypergraph) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		first := p.Part[pins[0]]
		for _, v := range pins[1:] {
			if p.Part[v] != first {
				cut++
				break
			}
		}
	}
	return cut
}

// WeightedCut returns the total weight of nets spanning more than
// one block; equal to Cut when the hypergraph is unweighted.
func (p *Partition) WeightedCut(h *Hypergraph) int {
	if !h.Weighted() {
		return p.Cut(h)
	}
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		first := p.Part[pins[0]]
		for _, v := range pins[1:] {
			if p.Part[v] != first {
				cut += int(h.NetWeight(e))
				break
			}
		}
	}
	return cut
}

// SumOfDegrees returns the sum over all nets of (number of blocks the
// net spans − 1). For K = 2 it equals Cut. This is the
// "sum of cluster degrees" objective used for quadrisection in §III.C.
func (p *Partition) SumOfDegrees(h *Hypergraph) int {
	total := 0
	seen := make([]int32, p.K)
	for i := range seen {
		seen[i] = -1
	}
	for e := 0; e < h.NumNets(); e++ {
		span := 0
		for _, v := range h.Pins(e) {
			k := p.Part[v]
			if seen[k] != int32(e) {
				seen[k] = int32(e)
				span++
			}
		}
		if span > 1 {
			total += span - 1
		}
	}
	return total
}

// WeightedSumOfDegrees returns Σ_e weight(e)·(span(e) − 1); equal to
// SumOfDegrees when the hypergraph is unweighted.
func (p *Partition) WeightedSumOfDegrees(h *Hypergraph) int {
	if !h.Weighted() {
		return p.SumOfDegrees(h)
	}
	total := 0
	seen := make([]int32, p.K)
	for i := range seen {
		seen[i] = -1
	}
	for e := 0; e < h.NumNets(); e++ {
		span := 0
		for _, v := range h.Pins(e) {
			k := p.Part[v]
			if seen[k] != int32(e) {
				seen[k] = int32(e)
				span++
			}
		}
		if span > 1 {
			total += int(h.NetWeight(e)) * (span - 1)
		}
	}
	return total
}

// NetSpan returns the number of distinct blocks touched by net e.
func (p *Partition) NetSpan(h *Hypergraph, e int) int {
	span := 0
	if p.K <= 64 {
		var mask uint64
		for _, c := range h.Pins(e) {
			bit := uint64(1) << uint(p.Part[c])
			if mask&bit == 0 {
				mask |= bit
				span++
			}
		}
		return span
	}
	seen := make(map[int32]bool, 8)
	for _, c := range h.Pins(e) {
		k := p.Part[c]
		if !seen[k] {
			seen[k] = true
			span++
		}
	}
	return span
}

// BalanceBound gives the block-area bounds of §III.B for a k-way
// partition of h with tolerance r: each block's area must lie in
// [A(V)/k − slack, A(V)/k + slack] where
// slack = max(A(v*), r·A(V)/k) and v* is the largest cell.
type BalanceBound struct {
	Lo, Hi int64
}

// Balance returns the §III.B balance bound for k blocks and
// tolerance r. The max-cell-area term guarantees that any solution is
// reachable by single-cell moves even when one cell dominates.
func Balance(h *Hypergraph, k int, r float64) BalanceBound {
	target := h.TotalArea() / int64(k)
	slack := int64(r * float64(h.TotalArea()) / float64(k))
	if m := h.MaxCellArea(); m > slack {
		slack = m
	}
	lo := target - slack
	if lo < 0 {
		lo = 0
	}
	return BalanceBound{Lo: lo, Hi: target + slack}
}

// IsBalanced reports whether every block of p satisfies the bound.
func (p *Partition) IsBalanced(h *Hypergraph, bound BalanceBound) bool {
	for _, a := range p.BlockAreas(h) {
		if a < bound.Lo || a > bound.Hi {
			return false
		}
	}
	return true
}

// RandomPartition returns a random k-way partition of h that
// satisfies the §III.B balance bound for tolerance r. Cells are
// visited in a random order and greedily assigned to the block with
// the smallest current area, which yields near-perfect balance and a
// uniformly random block composition.
func RandomPartition(h *Hypergraph, k int, r float64, rng *rand.Rand) *Partition {
	p := NewPartition(h.NumCells(), k)
	perm := rng.Perm(h.NumCells())
	areas := make([]int64, k)
	for _, v := range perm {
		best := 0
		for b := 1; b < k; b++ {
			if areas[b] < areas[best] {
				best = b
			}
		}
		p.Part[v] = int32(best) //mllint:ignore unchecked-narrow block index best < k, and k is a small validated block count
		areas[best] += h.Area(v)
	}
	return p
}

// Project maps a partition of the coarse hypergraph induced by c back
// onto the fine hypergraph, following Definition 2: a fine cell lands
// in the block of its cluster.
func Project(c *Clustering, coarse *Partition) (*Partition, error) {
	fine := &Partition{}
	if err := ProjectInto(c, coarse, fine); err != nil {
		return nil, err
	}
	return fine, nil
}

// ProjectInto is Project writing the fine solution into an existing
// partition, reusing fine.Part's backing array when it is large
// enough. It is how the multilevel uncoarsening loop alternates two
// partition buffers instead of allocating one per level. fine must not
// alias coarse.
func ProjectInto(c *Clustering, coarse *Partition, fine *Partition) error {
	if coarse.K < 1 {
		return fmt.Errorf("partition: project with K = %d", coarse.K)
	}
	if len(coarse.Part) != c.NumClusters {
		return fmt.Errorf("partition: project: coarse has %d cells, clustering has %d clusters",
			len(coarse.Part), c.NumClusters)
	}
	n := len(c.CellToCluster)
	if cap(fine.Part) < n {
		fine.Part = make([]int32, n)
	}
	fine.Part = fine.Part[:n]
	fine.K = coarse.K
	for v, k := range c.CellToCluster {
		fine.Part[v] = coarse.Part[k]
	}
	return nil
}

// Rebalance restores the balance bound on p (in place) by repeatedly
// moving randomly chosen cells from the most overfull block to the
// most underfull block, as described in §III.B for projected
// solutions. It returns the number of cells moved. If the bound is
// unsatisfiable (pathological areas) it gives up after moving each
// cell at most once and returns the count so far.
func (p *Partition) Rebalance(h *Hypergraph, bound BalanceBound, rng *rand.Rand) int {
	areas := p.BlockAreas(h)
	moved := 0
	maxMoves := h.NumCells()
	for moved < maxMoves {
		over, under := -1, -1
		for b := 0; b < p.K; b++ {
			if areas[b] > bound.Hi && (over < 0 || areas[b] > areas[over]) {
				over = b
			}
			if areas[b] < bound.Lo && (under < 0 || areas[b] < areas[under]) {
				under = b
			}
		}
		if over < 0 && under < 0 {
			return moved
		}
		src := over
		if src < 0 {
			// No block overfull, but one is underfull: take from the largest.
			for b := 0; b < p.K; b++ {
				if src < 0 || areas[b] > areas[src] {
					src = b
				}
			}
		}
		dst := under
		if dst < 0 {
			for b := 0; b < p.K; b++ {
				if dst < 0 || areas[b] < areas[dst] {
					dst = b
				}
			}
		}
		if src == dst {
			return moved
		}
		// Pick a random cell of src. Reservoir over the partition
		// array; acceptable because rebalancing moves are few.
		pick := -1
		n := 0
		for v, k := range p.Part {
			if int(k) == src {
				n++
				if rng.Intn(n) == 0 {
					pick = v
				}
			}
		}
		if pick < 0 {
			return moved
		}
		p.Part[pick] = int32(dst)
		areas[src] -= h.Area(pick)
		areas[dst] += h.Area(pick)
		moved++
	}
	return moved
}
