package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny builds the 6-cell example hypergraph used throughout the unit
// tests:
//
//	nets: {0,1}, {1,2,3}, {3,4}, {4,5}, {0,5}
func tiny(t *testing.T) *Hypergraph {
	t.Helper()
	h, err := NewBuilder(6).
		AddNet(0, 1).
		AddNet(1, 2, 3).
		AddNet(3, 4).
		AddNet(4, 5).
		AddNet(0, 5).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h
}

func TestBuilderBasics(t *testing.T) {
	h := tiny(t)
	if h.NumCells() != 6 {
		t.Errorf("NumCells = %d, want 6", h.NumCells())
	}
	if h.NumNets() != 5 {
		t.Errorf("NumNets = %d, want 5", h.NumNets())
	}
	if h.NumPins() != 11 {
		t.Errorf("NumPins = %d, want 11", h.NumPins())
	}
	if h.TotalArea() != 6 {
		t.Errorf("TotalArea = %d, want 6 (unit areas)", h.TotalArea())
	}
	if h.MaxCellArea() != 1 {
		t.Errorf("MaxCellArea = %d, want 1", h.MaxCellArea())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderNetSizeAndDegree(t *testing.T) {
	h := tiny(t)
	wantSizes := []int{2, 3, 2, 2, 2}
	for e, w := range wantSizes {
		if got := h.NetSize(e); got != w {
			t.Errorf("NetSize(%d) = %d, want %d", e, got, w)
		}
	}
	wantDeg := []int{2, 2, 1, 2, 2, 2}
	for v, w := range wantDeg {
		if got := h.Degree(v); got != w {
			t.Errorf("Degree(%d) = %d, want %d", v, got, w)
		}
	}
}

func TestBuilderDropsDegenerateNets(t *testing.T) {
	h, err := NewBuilder(4).
		AddNet(0).          // dropped: single pin
		AddNet(1, 1, 1).    // dropped: dedupes to single pin
		AddNet(2, 3, 3, 2). // kept as {2,3}
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if h.NumNets() != 1 {
		t.Fatalf("NumNets = %d, want 1", h.NumNets())
	}
	if h.NetSize(0) != 2 {
		t.Errorf("NetSize(0) = %d, want 2", h.NetSize(0))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(2).AddNet(0, 5).Build(); err == nil {
		t.Error("expected error for out-of-range pin")
	}
	if _, err := NewBuilder(2).SetArea(0, -1).Build(); err == nil {
		t.Error("expected error for negative area")
	}
	if _, err := NewBuilder(2).SetArea(7, 1).Build(); err == nil {
		t.Error("expected error for out-of-range SetArea")
	}
	if _, err := NewBuilder(2).SetName(9, "x").Build(); err == nil {
		t.Error("expected error for out-of-range SetName")
	}
	if _, err := NewBuilder(-1).Build(); err == nil {
		t.Error("expected error for negative cell count")
	}
}

func TestBuilderAreasAndNames(t *testing.T) {
	h, err := NewBuilder(3).
		SetArea(0, 4).SetArea(1, 7).SetArea(2, 2).
		SetName(1, "alu").
		AddNet(0, 1).AddNet(1, 2).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if h.TotalArea() != 13 {
		t.Errorf("TotalArea = %d, want 13", h.TotalArea())
	}
	if h.MaxCellArea() != 7 {
		t.Errorf("MaxCellArea = %d, want 7", h.MaxCellArea())
	}
	if h.Name(1) != "alu" {
		t.Errorf("Name(1) = %q, want alu", h.Name(1))
	}
	if h.Name(0) != "c0" {
		t.Errorf("Name(0) = %q, want fallback c0", h.Name(0))
	}
	if !h.HasNames() {
		t.Error("HasNames should be true")
	}
}

func TestCrossDirectionConsistency(t *testing.T) {
	h := tiny(t)
	// Every (net, pin) must appear as (cell, net) and vice versa.
	for e := 0; e < h.NumNets(); e++ {
		for _, v := range h.Pins(e) {
			found := false
			for _, f := range h.Nets(int(v)) {
				if int(f) == e {
					found = true
				}
			}
			if !found {
				t.Errorf("net %d has pin %d but cell does not list the net", e, v)
			}
		}
	}
}

func TestMaxDegreeWithNetFilter(t *testing.T) {
	b := NewBuilder(12)
	big := make([]int, 11)
	for i := range big {
		big[i] = i
	}
	b.AddNet(big...) // an 11-pin net
	b.AddNet(0, 1)
	b.AddNet(0, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := h.MaxDegree(0); got != 3 {
		t.Errorf("MaxDegree(0) = %d, want 3", got)
	}
	if got := h.MaxDegree(10); got != 2 {
		t.Errorf("MaxDegree(10) = %d, want 2 (11-pin net ignored)", got)
	}
}

func TestComputeStats(t *testing.T) {
	h := tiny(t)
	s := h.ComputeStats()
	if s.Cells != 6 || s.Nets != 5 || s.Pins != 11 {
		t.Errorf("stats sizes = %+v", s)
	}
	if s.MaxNet != 3 {
		t.Errorf("MaxNet = %d, want 3", s.MaxNet)
	}
	if s.MaxDeg != 2 {
		t.Errorf("MaxDeg = %d, want 2", s.MaxDeg)
	}
	if s.AvgNet != 11.0/5.0 {
		t.Errorf("AvgNet = %v", s.AvgNet)
	}
	if s.MinArea != 1 || s.MaxArea != 1 {
		t.Errorf("area range = [%d,%d], want [1,1]", s.MinArea, s.MaxArea)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if h.NumCells() != 0 || h.NumNets() != 0 || h.NumPins() != 0 {
		t.Errorf("empty hypergraph has %v", h)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	_ = h.String()
	_ = h.ComputeStats()
}

// randomHypergraph builds a random valid hypergraph for property
// tests: n cells, m nets with 2..6 pins each.
func randomHypergraph(rng *rand.Rand, n, m int) *Hypergraph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetArea(v, int64(1+rng.Intn(5)))
	}
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(5)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

func TestPropertyRandomHypergraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(120)
		h := randomHypergraph(rng, n, m)
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPinConservation(t *testing.T) {
	// Sum of net sizes == sum of cell degrees == NumPins.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 2+rng.Intn(40), rng.Intn(80))
		sumNets, sumDeg := 0, 0
		for e := 0; e < h.NumNets(); e++ {
			sumNets += h.NetSize(e)
		}
		for v := 0; v < h.NumCells(); v++ {
			sumDeg += h.Degree(v)
		}
		return sumNets == h.NumPins() && sumDeg == h.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
