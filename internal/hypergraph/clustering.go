package hypergraph

import (
	"fmt"
	"sort"
)

// Clustering is a k-way clustering P^k = {C_1, ..., C_k} of the cells
// of a hypergraph: a partition of V into disjoint, covering clusters.
// CellToCluster[v] is the index in [0, NumClusters) of the cluster
// containing v.
type Clustering struct {
	CellToCluster []int32
	NumClusters   int
}

// NewIdentityClustering returns the trivial clustering in which every
// cell is its own singleton cluster.
func NewIdentityClustering(numCells int) *Clustering {
	c := &Clustering{CellToCluster: make([]int32, numCells), NumClusters: numCells}
	for v := range c.CellToCluster {
		c.CellToCluster[v] = int32(v)
	}
	return c
}

// Validate checks that the clustering is a well-formed partition of a
// hypergraph with numCells cells: every cell assigned, every cluster
// index in range, and every cluster non-empty.
func (c *Clustering) Validate(numCells int) error {
	if len(c.CellToCluster) != numCells {
		return fmt.Errorf("clustering: maps %d cells, hypergraph has %d", len(c.CellToCluster), numCells)
	}
	if c.NumClusters < 0 {
		return fmt.Errorf("clustering: negative cluster count %d", c.NumClusters)
	}
	if numCells > 0 && c.NumClusters == 0 {
		return fmt.Errorf("clustering: zero clusters for %d cells", numCells)
	}
	seen := make([]bool, c.NumClusters)
	for v, k := range c.CellToCluster {
		if k < 0 || int(k) >= c.NumClusters {
			return fmt.Errorf("clustering: cell %d in cluster %d out of range [0,%d)", v, k, c.NumClusters)
		}
		seen[k] = true
	}
	for k, ok := range seen {
		if !ok {
			return fmt.Errorf("clustering: cluster %d is empty", k)
		}
	}
	return nil
}

// ClusterSizes returns the number of cells in each cluster.
func (c *Clustering) ClusterSizes() []int {
	sizes := make([]int, c.NumClusters)
	for _, k := range c.CellToCluster {
		sizes[k]++
	}
	return sizes
}

// Compose returns the clustering of the original cells obtained by
// first applying c (cells → mid-level clusters) and then d
// (mid-level clusters → top-level clusters). It is used to flatten a
// multilevel hierarchy into a single clustering of H_0.
func Compose(c, d *Clustering) (*Clustering, error) {
	if c.NumClusters != len(d.CellToCluster) {
		return nil, fmt.Errorf("clustering: compose mismatch: %d clusters vs %d cells", c.NumClusters, len(d.CellToCluster))
	}
	out := &Clustering{
		CellToCluster: make([]int32, len(c.CellToCluster)),
		NumClusters:   d.NumClusters,
	}
	for v, k := range c.CellToCluster {
		out.CellToCluster[v] = d.CellToCluster[k]
	}
	return out, nil
}

// Induce constructs the coarser hypergraph H_{i+1} induced by a
// clustering P^k of H_i, exactly following Definition 1 of the paper:
// every net e of H_i becomes the net e* spanning the set of clusters
// containing modules of e, unless |e*| = 1, in which case it is
// dropped. Cluster areas are the sums of their member areas.
//
// Identical coarse nets arising from distinct fine nets are merged
// into a single net of multiplicity weight only when mergeParallel is
// true; the paper keeps parallel nets (each contributes to the cut
// separately), so the ML algorithm calls Induce with
// mergeParallel=false.
func Induce(h *Hypergraph, c *Clustering) (*Hypergraph, error) {
	return InduceWS(h, c, nil)
}

// InduceMerged is Induce with parallel-net merging: identical coarse
// nets are combined into one net whose weight is the sum of the
// originals'. The weighted cut of any partition is identical under
// either representation (TestInduceMergedCutEquivalence), but merging
// shrinks the coarse netlists, which speeds refinement — the standard
// hMETIS-era optimization that the paper's Definition 1 forgoes.
func InduceMerged(h *Hypergraph, c *Clustering) (*Hypergraph, error) {
	return InduceMergedWS(h, c, nil)
}

// InduceMergedWS is InduceMerged with caller-supplied scratch for the
// inner Induce step (the merge itself goes through a Builder: merged
// coarse netlists are small and the sort dominates anyway).
func InduceMergedWS(h *Hypergraph, c *Clustering, ws *InduceWorkspace) (*Hypergraph, error) {
	plain, err := InduceWS(h, c, ws)
	if err != nil {
		return nil, err
	}
	if plain.NumNets() == 0 {
		return plain, nil
	}
	// Sort net indices by pin signature, then merge equal runs.
	order := make([]int32, plain.NumNets())
	for e := range order {
		order[e] = int32(e)
	}
	sort.Slice(order, func(i, j int) bool {
		return comparePins(plain.Pins(int(order[i])), plain.Pins(int(order[j]))) < 0
	})
	b := NewBuilder(plain.NumCells())
	for v := 0; v < plain.NumCells(); v++ {
		b.SetArea(v, plain.Area(v))
	}
	for i := 0; i < len(order); {
		j := i
		var w int64
		for ; j < len(order) && comparePins(plain.Pins(int(order[i])), plain.Pins(int(order[j]))) == 0; j++ {
			w += int64(plain.NetWeight(int(order[j])))
		}
		if w > 1<<30 {
			w = 1 << 30 // saturate; beyond any practical multiplicity
		}
		b.AddWeightedNet32(int32(w), plain.Pins(int(order[i])))
		i = j
	}
	return b.Build()
}

// comparePins lexicographically compares two sorted pin lists.
func comparePins(a, b []int32) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
