package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityClustering(t *testing.T) {
	c := NewIdentityClustering(5)
	if err := c.Validate(5); err != nil {
		t.Fatalf("identity invalid: %v", err)
	}
	if c.NumClusters != 5 {
		t.Errorf("NumClusters = %d, want 5", c.NumClusters)
	}
	for _, s := range c.ClusterSizes() {
		if s != 1 {
			t.Errorf("identity cluster size %d, want 1", s)
		}
	}
}

func TestClusteringValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		c    *Clustering
		n    int
	}{
		{"wrong length", &Clustering{CellToCluster: []int32{0}, NumClusters: 1}, 2},
		{"out of range", &Clustering{CellToCluster: []int32{0, 3}, NumClusters: 2}, 2},
		{"negative", &Clustering{CellToCluster: []int32{0, -1}, NumClusters: 2}, 2},
		{"empty cluster", &Clustering{CellToCluster: []int32{0, 0}, NumClusters: 2}, 2},
		{"zero clusters", &Clustering{CellToCluster: []int32{}, NumClusters: 0}, 1},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(tc.n); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestInduceTiny(t *testing.T) {
	h := tiny(t)
	// Merge {0,1} and {4,5}; 2 and 3 stay singletons.
	c := &Clustering{CellToCluster: []int32{0, 0, 1, 2, 3, 3}, NumClusters: 4}
	coarse, err := Induce(h, c)
	if err != nil {
		t.Fatalf("induce: %v", err)
	}
	if coarse.NumCells() != 4 {
		t.Fatalf("coarse cells = %d, want 4", coarse.NumCells())
	}
	// net {0,1} collapses inside cluster 0 → dropped.
	// net {1,2,3} → {0,1,2}; net {3,4} → {2,3}; net {4,5} collapses;
	// net {0,5} → {0,3}. So 3 nets survive.
	if coarse.NumNets() != 3 {
		t.Fatalf("coarse nets = %d, want 3", coarse.NumNets())
	}
	if coarse.TotalArea() != h.TotalArea() {
		t.Errorf("area not conserved: %d vs %d", coarse.TotalArea(), h.TotalArea())
	}
	if err := coarse.Validate(); err != nil {
		t.Errorf("coarse invalid: %v", err)
	}
}

func TestInduceAreasSum(t *testing.T) {
	h, err := NewBuilder(4).
		SetArea(0, 4).SetArea(1, 7).SetArea(2, 1).SetArea(3, 3).
		AddNet(0, 1).AddNet(1, 2).AddNet(2, 3).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Paper example: clustering two modules with areas 4 and 7 yields
	// a module of area 11.
	c := &Clustering{CellToCluster: []int32{0, 0, 1, 1}, NumClusters: 2}
	coarse, err := Induce(h, c)
	if err != nil {
		t.Fatalf("induce: %v", err)
	}
	if coarse.Area(0) != 11 {
		t.Errorf("cluster 0 area = %d, want 11", coarse.Area(0))
	}
	if coarse.Area(1) != 4 {
		t.Errorf("cluster 1 area = %d, want 4", coarse.Area(1))
	}
}

func TestInduceKeepsParallelNets(t *testing.T) {
	// Two distinct nets that map to the same coarse net must both
	// survive (the paper keeps parallel nets; each counts in the cut).
	h, err := NewBuilder(4).
		AddNet(0, 2).
		AddNet(1, 3).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	c := &Clustering{CellToCluster: []int32{0, 0, 1, 1}, NumClusters: 2}
	coarse, err := Induce(h, c)
	if err != nil {
		t.Fatalf("induce: %v", err)
	}
	if coarse.NumNets() != 2 {
		t.Errorf("coarse nets = %d, want 2 (parallel nets preserved)", coarse.NumNets())
	}
}

func TestInduceInvalidClustering(t *testing.T) {
	h := tiny(t)
	c := &Clustering{CellToCluster: []int32{0, 0, 0}, NumClusters: 1} // wrong length
	if _, err := Induce(h, c); err == nil {
		t.Error("expected error for invalid clustering")
	}
}

func TestCompose(t *testing.T) {
	// 6 cells → 3 clusters → 2 clusters.
	c := &Clustering{CellToCluster: []int32{0, 0, 1, 1, 2, 2}, NumClusters: 3}
	d := &Clustering{CellToCluster: []int32{0, 1, 1}, NumClusters: 2}
	e, err := Compose(c, d)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	want := []int32{0, 0, 1, 1, 1, 1}
	for v, k := range e.CellToCluster {
		if k != want[v] {
			t.Errorf("compose cell %d → %d, want %d", v, k, want[v])
		}
	}
	if err := e.Validate(6); err != nil {
		t.Errorf("composed invalid: %v", err)
	}
}

func TestComposeMismatch(t *testing.T) {
	c := &Clustering{CellToCluster: []int32{0, 1}, NumClusters: 2}
	d := &Clustering{CellToCluster: []int32{0}, NumClusters: 1}
	if _, err := Compose(c, d); err == nil {
		t.Error("expected error for dimension mismatch")
	}
}

// randomClustering produces a valid random clustering of n cells.
func randomClustering(rng *rand.Rand, n int) *Clustering {
	k := 1 + rng.Intn(n)
	c := &Clustering{CellToCluster: make([]int32, n), NumClusters: k}
	// Guarantee non-empty clusters: first k cells seed each cluster.
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		c.CellToCluster[perm[i]] = int32(i)
	}
	for i := k; i < n; i++ {
		c.CellToCluster[perm[i]] = int32(rng.Intn(k))
	}
	return c
}

func TestPropertyInduceConservesAreaAndValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		h := randomHypergraph(rng, n, rng.Intn(100))
		c := randomClustering(rng, n)
		coarse, err := Induce(h, c)
		if err != nil {
			return false
		}
		return coarse.TotalArea() == h.TotalArea() && coarse.Validate() == nil &&
			coarse.NumNets() <= h.NumNets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInduceNetSizesShrink(t *testing.T) {
	// |e*| ≤ |e| for every surviving net (no way to check identity of
	// nets post-drop, so check the global multiset bound instead:
	// coarse pin count ≤ fine pin count).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		h := randomHypergraph(rng, n, rng.Intn(100))
		c := randomClustering(rng, n)
		coarse, err := Induce(h, c)
		if err != nil {
			return false
		}
		return coarse.NumPins() <= h.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
