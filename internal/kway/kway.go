// Package kway implements multi-way FM partitioning in the style of
// Sanchis ("Multiple-Way Network Partitioning", IEEE ToC 1989)
// without lookahead, as used for quadrisection in §III.C of
// Alpert/Huang/Kahng. Both the net-cut and the sum-of-cluster-degrees
// gain computations of the paper are provided; the paper's
// quadrisection results use sum of degrees. Modules (e.g. I/O pads)
// can be pre-assigned to blocks and excluded from refinement.
package kway

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/faultinject"
	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
	"mlpart/internal/telemetry"
)

// Objective selects the k-way gain computation (§III.C).
type Objective int

const (
	// SumOfDegrees minimizes Σ_e (span(e) − 1); the paper's
	// quadrisection results are reported for this gain.
	SumOfDegrees Objective = iota
	// NetCut minimizes the number of nets spanning more than one
	// block.
	NetCut
)

func (o Objective) String() string {
	switch o {
	case SumOfDegrees:
		return "sum-of-degrees"
	case NetCut:
		return "net-cut"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Config parameterizes k-way refinement.
type Config struct {
	// K is the number of blocks; quadrisection is K = 4. Default 4.
	K int
	// Engine selects plain multi-way FM or the CLIP variant (the
	// bucket-concatenation preprocessing of §II.B applied to each of
	// the K bucket structures; Table IX's CLIP and LSMC_C columns).
	Engine fm.Engine
	// Objective selects the gain computation. Default SumOfDegrees.
	Objective Objective
	// Order is the gain-bucket organization. Default LIFO.
	Order gainbucket.Order
	// Tolerance is the balance parameter r (per-block bound around
	// A(V)/K as in §III.B). Default 0.1.
	Tolerance float64
	// MaxNetSize: larger nets are ignored during refinement but
	// counted in reported quality. Default 200. Negative = no limit.
	MaxNetSize int
	// MaxPasses bounds the number of passes; 0 = until no
	// improvement.
	MaxPasses int
	// Fixed marks pre-assigned cells (e.g. I/O pads) that keep their
	// initial block. Optional; length must be NumCells if non-nil.
	Fixed []bool
	// Stop, when non-nil, is polled at pass boundaries; returning true
	// aborts refinement cooperatively, leaving the partition in its
	// best-prefix state and setting Result.Interrupted.
	Stop func() bool
	// Inject optionally arms deterministic fault injection at the
	// kway.refine site (pass boundaries); nil costs one pointer check.
	Inject *faultinject.Injector
	// Telemetry optionally records per-pass statistics (objective
	// before/after, moves tried/kept) and rebalance counts; nil costs
	// one pointer check per pass.
	Telemetry *telemetry.Collector
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.K == 0 {
		c.K = 4
	}
	if c.K < 2 || c.K > 64 {
		return c, fmt.Errorf("kway: K = %d outside [2,64]", c.K)
	}
	switch c.Objective {
	case SumOfDegrees, NetCut:
	default:
		return c, fmt.Errorf("kway: unknown objective %d", int(c.Objective))
	}
	switch c.Engine {
	case fm.EngineFM, fm.EngineCLIP:
	default:
		return c, fmt.Errorf("kway: unknown engine %d", int(c.Engine))
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.1
	}
	if math.IsNaN(c.Tolerance) || c.Tolerance < 0 || c.Tolerance >= 1 {
		return c, fmt.Errorf("kway: tolerance %v outside [0,1)", c.Tolerance)
	}
	if c.MaxNetSize == 0 {
		c.MaxNetSize = 200
	}
	if c.MaxPasses < 0 {
		return c, fmt.Errorf("kway: negative MaxPasses")
	}
	switch c.Order {
	case gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random:
	default:
		return c, fmt.Errorf("kway: unknown bucket order %d", int(c.Order))
	}
	return c, nil
}

// Result reports what a k-way refinement run did.
type Result struct {
	// CutNets is the number of nets spanning more than one block in
	// the final solution (all nets counted) — the "# cut nets" metric
	// of Table IX.
	CutNets int
	// SumDegrees is Σ_e (span(e) − 1) in the final solution.
	SumDegrees int
	// InitialCutNets / InitialSumDegrees describe the start.
	InitialCutNets    int
	InitialSumDegrees int
	// Passes and Moves as in package fm.
	Passes int
	Moves  int
	// Interrupted reports that Config.Stop ended the run early; the
	// partition is still feasible.
	Interrupted bool
}

// Partition returns a refined K-way partition of h. If initial is
// nil, a random balanced partition is generated (fixed cells, if any,
// keep their pre-assigned block from cfg — but with a nil initial
// there is no pre-assignment, so Fixed requires an initial solution).
func Partition(h *hypergraph.Hypergraph, initial *hypergraph.Partition, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	var p *hypergraph.Partition
	if initial == nil {
		if cfg.Fixed != nil {
			return nil, Result{}, fmt.Errorf("kway: Fixed cells require an initial partition")
		}
		p = hypergraph.RandomPartition(h, cfg.K, cfg.Tolerance, rng)
	} else {
		if initial.K != cfg.K {
			return nil, Result{}, fmt.Errorf("kway: initial partition has K=%d, config K=%d", initial.K, cfg.K)
		}
		if err := initial.Validate(h.NumCells()); err != nil {
			return nil, Result{}, err
		}
		p = initial.Clone()
	}
	bound := hypergraph.Balance(h, cfg.K, cfg.Tolerance)
	if !p.IsBalanced(h, bound) && cfg.Fixed == nil {
		moved := p.Rebalance(h, bound, rng)
		cfg.Telemetry.RecordRebalance(moved)
	}
	res, err := Refine(h, p, cfg, rng)
	return p, res, err
}

// Refine improves the K-way partition p in place.
func Refine(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) (Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return Result{}, err
	}
	if p.K != cfg.K {
		return Result{}, fmt.Errorf("kway: partition K=%d, config K=%d", p.K, cfg.K)
	}
	if err := p.Validate(h.NumCells()); err != nil {
		return Result{}, err
	}
	if cfg.Fixed != nil && len(cfg.Fixed) != h.NumCells() {
		return Result{}, fmt.Errorf("kway: Fixed has %d entries, hypergraph has %d cells", len(cfg.Fixed), h.NumCells())
	}
	r := newRefiner(h, p, cfg, rng)
	return r.run(), nil
}
