package kway

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
)

func randomH(rng *rand.Rand, n, m, maxPins int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for e := 0; e < m; e++ {
		size := 2 + rng.Intn(maxPins-1)
		pins := make([]int, size)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.MustBuild()
}

// fourClusters builds 4 dense groups of k cells with sparse bridges;
// the optimal 4-way net cut is 4 (a ring of bridges).
func fourClusters(t *testing.T, k int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4 * k)
	for g := 0; g < 4; g++ {
		base := g * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddNet(base+i, base+j)
			}
		}
	}
	for g := 0; g < 4; g++ {
		b.AddNet(g*k, ((g+1)%4)*k) // ring bridge
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestQuadrisectionFindsClusterStructure(t *testing.T) {
	h := fourClusters(t, 6)
	best := 1 << 30
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, res, err := Partition(h, nil, Config{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutNets != p.Cut(h) {
			t.Fatalf("CutNets %d != measured %d", res.CutNets, p.Cut(h))
		}
		if res.CutNets < best {
			best = res.CutNets
		}
	}
	if best > 4 {
		t.Errorf("best 4-way cut %d over 10 runs; optimum is 4", best)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 20+rng.Intn(60), 30+rng.Intn(80), 5)
		for _, obj := range []Objective{SumOfDegrees, NetCut} {
			p := hypergraph.RandomPartition(h, 4, 0.1, rng)
			cfg := Config{Objective: obj}
			before := p.SumOfDegrees(h)
			beforeCut := p.Cut(h)
			res, err := Refine(h, p, cfg, rng)
			if err != nil {
				return false
			}
			if res.InitialSumDegrees != before || res.InitialCutNets != beforeCut {
				return false
			}
			// The optimized objective must not worsen.
			if obj == SumOfDegrees && res.SumDegrees > before {
				return false
			}
			if obj == NetCut && res.CutNets > beforeCut {
				return false
			}
			if res.CutNets != p.Cut(h) || res.SumDegrees != p.SumOfDegrees(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRefineKeepsBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 40+rng.Intn(80), 60+rng.Intn(100), 5)
		p := hypergraph.RandomPartition(h, 4, 0.1, rng)
		if _, err := Refine(h, p, Config{}, rng); err != nil {
			return false
		}
		return p.IsBalanced(h, hypergraph.Balance(h, 4, 0.1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFixedCellsNeverMove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomH(rng, 60, 120, 4)
	p := hypergraph.RandomPartition(h, 4, 0.1, rng)
	fixed := make([]bool, 60)
	var fixedCells []int
	for v := 0; v < 60; v += 7 {
		fixed[v] = true
		fixedCells = append(fixedCells, v)
	}
	want := map[int]int32{}
	for _, v := range fixedCells {
		want[v] = p.Part[v]
	}
	if _, err := Refine(h, p, Config{Fixed: fixed}, rng); err != nil {
		t.Fatal(err)
	}
	for _, v := range fixedCells {
		if p.Part[v] != want[v] {
			t.Errorf("fixed cell %d moved from %d to %d", v, want[v], p.Part[v])
		}
	}
}

func TestBipartitionAsKway(t *testing.T) {
	// K=2 with NetCut must behave like a (slower) FM: improve and
	// stay balanced.
	rng := rand.New(rand.NewSource(6))
	h := randomH(rng, 80, 160, 4)
	p := hypergraph.RandomPartition(h, 2, 0.1, rng)
	before := p.Cut(h)
	res, err := Refine(h, p, Config{K: 2, Objective: NetCut}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets > before {
		t.Errorf("K=2 refinement worsened: %d → %d", before, res.CutNets)
	}
	// For K=2 the two objectives coincide.
	if res.CutNets != res.SumDegrees {
		t.Errorf("K=2: cut %d != sum-degrees %d", res.CutNets, res.SumDegrees)
	}
}

func TestGainConsistencyWhiteBox(t *testing.T) {
	// After every applied move, incremental gains must match a
	// from-scratch recomputation.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 24, 50, 5)
		p := hypergraph.RandomPartition(h, 4, 0.2, rng)
		for _, obj := range []Objective{SumOfDegrees, NetCut} {
			cfg, _ := Config{Objective: obj}.Normalize()
			r := newRefiner(h, p.Clone(), cfg, rng)
			r.p = p.Clone()
			r.computeCounts()
			r.initPass()
			for step := 0; step < 15; step++ {
				v, t0 := r.selectMove()
				if v < 0 {
					break
				}
				r.applyMove(v, t0)
				// Snapshot incremental gains, recompute, compare.
				got := make([]int32, len(r.gain))
				copy(got, r.gain)
				r.computeGains()
				for u := 0; u < h.NumCells(); u++ {
					if r.locked[u] {
						continue
					}
					for tt := 0; tt < r.k; tt++ {
						if int32(tt) == r.p.Part[u] {
							continue
						}
						if got[u*r.k+tt] != r.gain[u*r.k+tt] {
							t.Fatalf("seed %d obj %v step %d: gain(%d→%d) incremental %d != recomputed %d",
								seed, obj, step, u, tt, got[u*r.k+tt], r.gain[u*r.k+tt])
						}
					}
				}
				copy(r.gain, got)
			}
		}
	}
}

func TestCostTrackingWhiteBox(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomH(rng, 30, 60, 5)
	p := hypergraph.RandomPartition(h, 4, 0.2, rng)
	cfg, _ := Config{Objective: SumOfDegrees}.Normalize()
	r := newRefiner(h, p, cfg, rng)
	r.computeCounts()
	recount := func() int {
		c := 0
		for e := 0; e < h.NumNets(); e++ {
			if r.active[e] {
				c += r.netCost(int32(p.NetSpan(h, e)))
			}
		}
		return c
	}
	r.initPass()
	for step := 0; step < 20; step++ {
		v, t0 := r.selectMove()
		if v < 0 {
			break
		}
		r.applyMove(v, t0)
		if r.cost != recount() {
			t.Fatalf("step %d: cost %d != recount %d", step, r.cost, recount())
		}
	}
	for i := len(r.moveCells) - 1; i >= 0; i-- {
		r.undoMove(r.moveCells[i], r.moveFrom[i])
		if r.cost != recount() {
			t.Fatalf("undo %d: cost %d != recount %d", i, r.cost, recount())
		}
	}
}

func TestPassGainMatchesObjectiveDelta(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 50, 100, 5)
		p := hypergraph.RandomPartition(h, 4, 0.1, rng)
		cfg, _ := Config{}.Normalize()
		r := newRefiner(h, p, cfg, rng)
		r.computeCounts()
		before := r.cost
		improved, _, _ := r.runPass()
		if got := before - r.cost; got != improved {
			t.Fatalf("seed %d: pass gain %d but cost fell by %d", seed, improved, got)
		}
	}
}

func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 || c.Tolerance != 0.1 || c.MaxNetSize != 200 {
		t.Errorf("defaults = %+v", c)
	}
	bad := []Config{
		{K: 1}, {K: 100}, {Tolerance: -1}, {Tolerance: 1},
		{MaxPasses: -2}, {Objective: Objective(9)}, {Order: gainbucket.Order(9)},
	}
	for i, cfg := range bad {
		if _, err := cfg.Normalize(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomH(rng, 10, 10, 3)
	if _, _, err := Partition(h, nil, Config{Fixed: make([]bool, 10)}, rng); err == nil {
		t.Error("Fixed without initial must error")
	}
	wrongK := hypergraph.NewPartition(10, 3)
	if _, _, err := Partition(h, wrongK, Config{K: 4}, rng); err == nil {
		t.Error("K mismatch must error")
	}
	if _, err := Refine(h, hypergraph.NewPartition(10, 4), Config{Fixed: make([]bool, 3)}, rng); err == nil {
		t.Error("bad Fixed length must error")
	}
}

func TestObjectiveString(t *testing.T) {
	if SumOfDegrees.String() != "sum-of-degrees" || NetCut.String() != "net-cut" {
		t.Error("objective labels wrong")
	}
	if Objective(5).String() == "" {
		t.Error("unknown objective should stringify")
	}
}

func TestAllOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randomH(rng, 60, 120, 4)
	for _, ord := range []gainbucket.Order{gainbucket.LIFO, gainbucket.FIFO, gainbucket.Random} {
		p, res, err := Partition(h, nil, Config{Order: ord}, rng)
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if res.CutNets != p.Cut(h) {
			t.Errorf("%v: cut mismatch", ord)
		}
	}
}

func TestCLIPEngineKway(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := randomH(rng, 100, 200, 5)
	for _, obj := range []Objective{SumOfDegrees, NetCut} {
		p := hypergraph.RandomPartition(h, 4, 0.1, rng)
		before := p.SumOfDegrees(h)
		res, err := Refine(h, p, Config{Engine: fm.EngineCLIP, Objective: obj}, rng)
		if err != nil {
			t.Fatalf("obj %v: %v", obj, err)
		}
		if obj == SumOfDegrees && res.SumDegrees > before {
			t.Errorf("CLIP k-way worsened sum-of-degrees: %d → %d", before, res.SumDegrees)
		}
		if res.CutNets != p.Cut(h) {
			t.Error("cut mismatch")
		}
		if !p.IsBalanced(h, hypergraph.Balance(h, 4, 0.1)) {
			t.Error("unbalanced")
		}
	}
}

func TestCLIPEngineKwayBadEngine(t *testing.T) {
	if _, err := (Config{Engine: fm.Engine(9)}).Normalize(); err == nil {
		t.Error("bad engine accepted")
	}
}

func TestEightWayPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := randomH(rng, 160, 320, 4)
	p, res, err := Partition(h, nil, Config{K: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 8 {
		t.Fatalf("K = %d", p.K)
	}
	if res.CutNets != p.Cut(h) {
		t.Error("cut mismatch")
	}
	if !p.IsBalanced(h, hypergraph.Balance(h, 8, 0.1)) {
		t.Error("8-way unbalanced")
	}
}

func TestKwayNoNetSizeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := hypergraph.NewBuilder(24)
	all := make([]int, 24)
	for i := range all {
		all[i] = i
	}
	b.AddNet(all...)
	for i := 0; i < 23; i++ {
		b.AddNet(i, i+1)
	}
	h := b.MustBuild()
	p, res, err := Partition(h, nil, Config{MaxNetSize: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != p.Cut(h) {
		t.Error("cut mismatch")
	}
}

func TestCLIPKwayGainConsistencyWhiteBox(t *testing.T) {
	// The CLIP k-way engine shares the gain arrays with plain k-way
	// FM; only the bucket keys differ. Verify incremental gains match
	// recomputation under the CLIP engine too.
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomH(rng, 24, 50, 5)
		p := hypergraph.RandomPartition(h, 4, 0.2, rng)
		cfg, _ := Config{Engine: fm.EngineCLIP}.Normalize()
		r := newRefiner(h, p.Clone(), cfg, rng)
		r.computeCounts()
		r.initPass()
		for step := 0; step < 12; step++ {
			v, t0 := r.selectMove()
			if v < 0 {
				break
			}
			r.applyMove(v, t0)
			got := make([]int32, len(r.gain))
			copy(got, r.gain)
			r.computeGains()
			for u := 0; u < h.NumCells(); u++ {
				if r.locked[u] {
					continue
				}
				for tt := 0; tt < r.k; tt++ {
					if int32(tt) == r.p.Part[u] {
						continue
					}
					if got[u*r.k+tt] != r.gain[u*r.k+tt] {
						t.Fatalf("seed %d step %d: CLIP gain(%d→%d) stale", seed, step, u, tt)
					}
				}
			}
			copy(r.gain, got)
		}
	}
}

func TestWeightedKway(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 40
	b := hypergraph.NewBuilder(n)
	for e := 0; e < 80; e++ {
		b.AddWeightedNet(int32(1+rng.Intn(4)), rng.Intn(n), rng.Intn(n), rng.Intn(n))
	}
	h := b.MustBuild()
	for _, obj := range []Objective{SumOfDegrees, NetCut} {
		p := hypergraph.RandomPartition(h, 4, 0.1, rng)
		before := p.WeightedSumOfDegrees(h)
		beforeCut := p.WeightedCut(h)
		res, err := Refine(h, p, Config{Objective: obj}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if obj == SumOfDegrees && res.SumDegrees > before {
			t.Errorf("weighted sum-of-degrees worsened: %d → %d", before, res.SumDegrees)
		}
		if obj == NetCut && res.CutNets > beforeCut {
			t.Errorf("weighted cut worsened: %d → %d", beforeCut, res.CutNets)
		}
		if res.CutNets != p.WeightedCut(h) || res.SumDegrees != p.WeightedSumOfDegrees(h) {
			t.Error("weighted metrics mismatch")
		}
	}
}

func TestWeightedKwayGainConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 24
	b := hypergraph.NewBuilder(n)
	for e := 0; e < 50; e++ {
		b.AddWeightedNet(int32(1+rng.Intn(3)), rng.Intn(n), rng.Intn(n))
	}
	h := b.MustBuild()
	p := hypergraph.RandomPartition(h, 4, 0.2, rng)
	cfg, _ := Config{}.Normalize()
	r := newRefiner(h, p, cfg, rng)
	r.computeCounts()
	r.initPass()
	for step := 0; step < 12; step++ {
		v, t0 := r.selectMove()
		if v < 0 {
			break
		}
		r.applyMove(v, t0)
		got := make([]int32, len(r.gain))
		copy(got, r.gain)
		r.computeGains()
		for i := range got {
			u, tt := i/r.k, i%r.k
			if r.locked[u] || int32(tt) == r.p.Part[u] {
				continue
			}
			if got[i] != r.gain[i] {
				t.Fatalf("step %d: weighted gain(%d→%d) stale", step, u, tt)
			}
		}
		copy(r.gain, got)
	}
}
