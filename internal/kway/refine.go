package kway

import (
	"math/rand"

	"mlpart/internal/faultinject"
	"mlpart/internal/fm"
	"mlpart/internal/gainbucket"
	"mlpart/internal/hypergraph"
)

// refiner holds the per-run state of multi-way FM.
type refiner struct {
	h   *hypergraph.Hypergraph
	p   *hypergraph.Partition
	cfg Config
	rng *rand.Rand

	k      int
	bound  hypergraph.BalanceBound
	areas  []int64
	active []bool

	counts  []int32 // per net × block pin counts, flat [e*k + b]
	span    []int32 // per net: number of blocks spanned (active nets)
	gain    []int32 // per cell × target block, flat [v*k + t]
	initKey []int32 // CLIP: gain at pass start (bucket key = gain − initKey)
	locked  []bool

	// buckets[t] holds every free, non-fixed cell v with part[v] != t
	// keyed by gain(v→t).
	buckets []*gainbucket.Structure

	// move log for rollback
	moveCells []int32
	moveFrom  []int32

	scratch []int32 // reusable buffer for moveNetUpdate

	cost int // current objective over active nets
}

func newRefiner(h *hypergraph.Hypergraph, p *hypergraph.Partition, cfg Config, rng *rand.Rand) *refiner {
	n := h.NumCells()
	k := cfg.K
	r := &refiner{
		h: h, p: p, cfg: cfg, rng: rng, k: k,
		bound:  hypergraph.Balance(h, k, cfg.Tolerance),
		areas:  make([]int64, k),
		active: make([]bool, h.NumNets()),
		counts: make([]int32, h.NumNets()*k),
		span:   make([]int32, h.NumNets()),
		gain:   make([]int32, n*k),
		locked: make([]bool, n),
	}
	for e := 0; e < h.NumNets(); e++ {
		r.active[e] = cfg.MaxNetSize < 0 || h.NetSize(e) <= cfg.MaxNetSize
	}
	maxDeg := h.MaxWeightedDegree(cfg.MaxNetSize)
	bucketRange := maxDeg
	if cfg.Engine == fm.EngineCLIP {
		bucketRange = 2 * maxDeg // doubled index range, as in §II.B
		r.initKey = make([]int32, n*k)
	}
	r.buckets = make([]*gainbucket.Structure, k)
	for t := 0; t < k; t++ {
		r.buckets[t] = gainbucket.New(n, bucketRange, cfg.Order, rng)
	}
	return r
}

// key returns the bucket key of moving v to t under the engine.
func (r *refiner) key(v, t int32) int {
	i := int(v)*r.k + int(t)
	if r.cfg.Engine == fm.EngineCLIP {
		return int(r.gain[i] - r.initKey[i])
	}
	return int(r.gain[i])
}

func (r *refiner) run() Result {
	res := Result{
		InitialCutNets:    r.p.WeightedCut(r.h),
		InitialSumDegrees: r.p.WeightedSumOfDegrees(r.h),
	}
	r.computeCounts()
	maxPasses := r.cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = 1 << 30
	}
	for pass := 0; pass < maxPasses; pass++ {
		if r.cfg.Stop != nil && r.cfg.Stop() {
			res.Interrupted = true
			break
		}
		if r.cfg.Inject != nil && r.fireFault(&res) {
			break
		}
		costBefore := r.cost
		improved, applied, tried := r.runPass()
		r.cfg.Telemetry.RecordPass("kway-"+r.cfg.Engine.String(), res.Passes, costBefore, r.cost, tried, applied)
		res.Passes++
		res.Moves += applied
		if improved <= 0 {
			break
		}
	}
	res.CutNets = r.p.WeightedCut(r.h)
	res.SumDegrees = r.p.WeightedSumOfDegrees(r.h)
	return res
}

// fireFault hits the kway.refine fault site. Cancel aborts like a
// Stop hook; corrupt moves one random non-fixed cell to the next
// block without updating the incremental counts — the reported
// CutNets/SumDegrees stay truthful (recounted above), while balance
// can break, which the per-level audit catches.
func (r *refiner) fireFault(res *Result) bool {
	switch r.cfg.Inject.Fire(faultinject.SiteKwayRefine) {
	case faultinject.ActCancel:
		res.Interrupted = true
		return true
	case faultinject.ActCorrupt:
		n := r.h.NumCells()
		if n == 0 {
			break
		}
		v := r.rng.Intn(n)
		for tries := 0; tries < n; tries++ {
			if r.cfg.Fixed == nil || !r.cfg.Fixed[v] {
				r.p.Part[v] = (r.p.Part[v] + 1) % int32(r.k)
				break
			}
			v = (v + 1) % n
		}
	}
	return false
}

// computeCounts fills counts, span, areas and cost from the current
// partition.
func (r *refiner) computeCounts() {
	for i := range r.counts {
		r.counts[i] = 0
	}
	for v := 0; v < r.h.NumCells(); v++ {
		b := r.p.Part[v]
		for _, e := range r.h.Nets(v) {
			r.counts[int(e)*r.k+int(b)]++
		}
	}
	r.cost = 0
	for e := 0; e < r.h.NumNets(); e++ {
		var span int32
		for b := 0; b < r.k; b++ {
			if r.counts[e*r.k+b] > 0 {
				span++
			}
		}
		r.span[e] = span
		if r.active[e] {
			r.cost += int(r.h.NetWeight(e)) * r.netCost(span)
		}
	}
	for b := range r.areas {
		r.areas[b] = 0
	}
	for v := 0; v < r.h.NumCells(); v++ {
		r.areas[r.p.Part[v]] += r.h.Area(v)
	}
}

// netCost maps a span to the net's objective contribution.
func (r *refiner) netCost(span int32) int {
	switch r.cfg.Objective {
	case NetCut:
		if span > 1 {
			return 1
		}
		return 0
	default: // SumOfDegrees
		return int(span - 1)
	}
}

// contrib returns net e's contribution to gain(u → t): the objective
// decrease on e if u moved from its block to t right now.
func (r *refiner) contrib(e int, u, t int32) int32 {
	from := r.p.Part[u]
	if from == t {
		return 0
	}
	cf := r.counts[e*r.k+int(from)]
	ct := r.counts[e*r.k+int(t)]
	var dSpan int32 // span(after) − span(before)
	if cf == 1 {
		dSpan--
	}
	if ct == 0 {
		dSpan++
	}
	w := r.h.NetWeight(e)
	switch r.cfg.Objective {
	case NetCut:
		before := r.span[e] > 1
		after := r.span[e]+dSpan > 1
		switch {
		case before && !after:
			return w
		case !before && after:
			return -w
		default:
			return 0
		}
	default: // SumOfDegrees: cost = w·(span−1), gain = −w·dSpan
		return -w * dSpan
	}
}

// computeGains fills gain[v][t] for all free cells from scratch.
func (r *refiner) computeGains() {
	for i := range r.gain {
		r.gain[i] = 0
	}
	for v := int32(0); int(v) < r.h.NumCells(); v++ {
		if r.isFixed(v) {
			continue
		}
		for _, e := range r.h.Nets(int(v)) {
			if !r.active[e] {
				continue
			}
			for t := int32(0); int(t) < r.k; t++ {
				if t != r.p.Part[v] {
					r.gain[int(v)*r.k+int(t)] += r.contrib(int(e), v, t)
				}
			}
		}
	}
}

func (r *refiner) isFixed(v int32) bool {
	return r.cfg.Fixed != nil && r.cfg.Fixed[v]
}

// initPass rebuilds gains, buckets and locks.
func (r *refiner) initPass() {
	n := r.h.NumCells()
	for v := 0; v < n; v++ {
		r.locked[v] = false
	}
	r.computeGains()
	for t := 0; t < r.k; t++ {
		r.buckets[t].Clear()
	}
	for v := int32(0); int(v) < n; v++ {
		if r.isFixed(v) {
			continue
		}
		for t := int32(0); int(t) < r.k; t++ {
			if t != r.p.Part[v] {
				r.buckets[t].Insert(v, int(r.gain[int(v)*r.k+int(t)]))
			}
		}
	}
	if r.cfg.Engine == fm.EngineCLIP {
		copy(r.initKey, r.gain)
		for t := 0; t < r.k; t++ {
			r.buckets[t].ConcatenateToZero()
		}
	}
	r.moveCells = r.moveCells[:0]
	r.moveFrom = r.moveFrom[:0]
}

// feasible reports whether moving v to block t keeps the balance.
func (r *refiner) feasible(v, t int32) bool {
	from := r.p.Part[v]
	a := r.h.Area(int(v))
	return r.areas[t]+a <= r.bound.Hi && r.areas[from]-a >= r.bound.Lo
}

// selectMove returns the best feasible (cell, target) or (-1, -1).
func (r *refiner) selectMove() (int32, int32) {
	bestV, bestT := int32(-1), int32(-1)
	bestG := 0
	for t := int32(0); int(t) < r.k; t++ {
		r.buckets[t].Iterate(func(v int32, g int) bool {
			if bestV >= 0 && g <= bestG {
				return false // buckets descend; nothing better here
			}
			if r.feasible(v, t) {
				bestV, bestT, bestG = v, t, g
				return false
			}
			return true
		})
	}
	return bestV, bestT
}

// applyMove moves v to block t, locking it and updating all state.
func (r *refiner) applyMove(v, t int32) {
	from := r.p.Part[v]
	r.locked[v] = true
	for b := int32(0); int(b) < r.k; b++ {
		if b != from && r.buckets[b].Contains(v) {
			r.buckets[b].Remove(v)
		}
	}
	r.areas[from] -= r.h.Area(int(v))
	r.areas[t] += r.h.Area(int(v))
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		r.moveNetUpdate(int(e), v, from, t)
	}
	r.p.Part[v] = t
	r.moveCells = append(r.moveCells, v)
	r.moveFrom = append(r.moveFrom, from)
}

// moveNetUpdate adjusts counts/span/cost for net e as v moves
// from → to, and updates the gains of free pins by recomputing each
// pin's per-net contribution before and after.
func (r *refiner) moveNetUpdate(e int, v, from, to int32) {
	pins := r.h.Pins(e)
	// Record old contributions of free pins in a reusable buffer
	// (|e| ≤ MaxNetSize entries × k−1 targets).
	old := r.scratch[:0]
	for _, u := range pins {
		if r.locked[u] || r.isFixed(u) {
			continue
		}
		for t := int32(0); int(t) < r.k; t++ {
			if t != r.p.Part[u] {
				old = append(old, r.contrib(e, u, t))
			}
		}
	}
	// Apply the count/span/cost change.
	oldSpan := r.span[e]
	r.counts[e*r.k+int(from)]--
	r.counts[e*r.k+int(to)]++
	var span int32
	if r.counts[e*r.k+int(from)] == 0 {
		span--
	}
	if r.counts[e*r.k+int(to)] == 1 {
		span++
	}
	r.span[e] = oldSpan + span
	r.cost += int(r.h.NetWeight(e)) * (r.netCost(r.span[e]) - r.netCost(oldSpan))
	r.scratch = old[:0]
	// Recompute contributions and shift gains by the delta.
	i := 0
	for _, u := range pins {
		if r.locked[u] || r.isFixed(u) {
			continue
		}
		for t := int32(0); int(t) < r.k; t++ {
			if t != r.p.Part[u] {
				delta := r.contrib(e, u, t) - old[i]
				i++
				if delta != 0 {
					r.gain[int(u)*r.k+int(t)] += delta
					r.buckets[t].Update(u, r.key(u, t))
				}
			}
		}
	}
}

// runPass executes one multi-way pass with rollback to the best
// prefix; returns (realized gain, moves kept, moves tried).
func (r *refiner) runPass() (improved, applied, tried int) {
	r.initPass()
	bestGain, cumGain := 0, 0
	bestLen := 0
	for {
		v, t := r.selectMove()
		if v < 0 {
			break
		}
		cumGain += int(r.gain[int(v)*r.k+int(t)])
		r.applyMove(v, t)
		if cumGain > bestGain {
			bestGain = cumGain
			bestLen = len(r.moveCells)
		}
	}
	tried = len(r.moveCells)
	for i := len(r.moveCells) - 1; i >= bestLen; i-- {
		r.undoMove(r.moveCells[i], r.moveFrom[i])
	}
	r.moveCells = r.moveCells[:bestLen]
	r.moveFrom = r.moveFrom[:bestLen]
	return bestGain, bestLen, tried
}

// undoMove reverses a logged move of v back to block orig. Gains are
// left stale; the next pass recomputes them.
func (r *refiner) undoMove(v, orig int32) {
	cur := r.p.Part[v]
	for _, e := range r.h.Nets(int(v)) {
		if !r.active[e] {
			continue
		}
		oldSpan := r.span[e]
		r.counts[int(e)*r.k+int(cur)]--
		r.counts[int(e)*r.k+int(orig)]++
		var d int32
		if r.counts[int(e)*r.k+int(cur)] == 0 {
			d--
		}
		if r.counts[int(e)*r.k+int(orig)] == 1 {
			d++
		}
		r.span[e] = oldSpan + d
		r.cost += int(r.h.NetWeight(int(e))) * (r.netCost(r.span[e]) - r.netCost(oldSpan))
	}
	r.areas[cur] -= r.h.Area(int(v))
	r.areas[orig] += r.h.Area(int(v))
	r.p.Part[v] = orig
}
