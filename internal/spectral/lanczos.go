package spectral

// Lanczos computation of the Fiedler pair, the method Barnard & Simon
// used inside their multilevel spectral bisection [6] (the work that
// inspired Hendrickson & Leland's multilevel partitioner [22]). The
// Laplacian is projected onto a Krylov subspace built with full
// reorthogonalization (cheap at the m ≤ 80 dimensions we need and
// immune to the ghost-eigenvalue problem); the tridiagonal
// projection's smallest eigenpair — the subspace being orthogonal to
// the all-ones kernel vector — is extracted with bisection on Sturm
// sequences and inverse iteration, then mapped back.

import (
	"math"
	"math/rand"

	"mlpart/internal/netmodel"
)

// lanczosSteps bounds the Krylov dimension.
const lanczosSteps = 80

// FiedlerLanczos computes the Fiedler vector of g's Laplacian with a
// Lanczos iteration. Returns the vector (unit norm, ⊥ 1), the
// eigenvalue estimate and the Krylov dimension used. It is more
// accurate per matvec than the deflated power iteration in Fiedler
// and is used by Config.Lanczos.
func FiedlerLanczos(g *netmodel.Graph, rng *rand.Rand) ([]float64, float64, int) {
	n := g.NumCells()
	if n == 0 {
		return nil, 0, 0
	}
	m := lanczosSteps
	if m > n-1 {
		m = n - 1
	}
	if m < 1 {
		m = 1
	}
	// Krylov basis, kept fully (n ≤ the sizes we call this at are
	// fine: m·n floats).
	basis := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[j] couples basis[j] and basis[j+1]

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	deflate(v)
	if normalize(v) == 0 {
		v[0] = 1
		deflate(v)
		normalize(v)
	}
	w := make([]float64, n)
	for j := 0; j < m; j++ {
		basis = append(basis, append([]float64(nil), v...))
		g.LaplacianMulAdd(v, w)
		a := dot(v, w)
		alpha = append(alpha, a)
		// w ← w − a·v − beta[j−1]·basis[j−1]
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization (against 1 and the whole basis).
		deflate(w)
		for _, q := range basis {
			d := dot(w, q)
			for i := range w {
				w[i] -= d * q[i]
			}
		}
		b := normalize(w)
		if b < 1e-12 {
			break
		}
		beta = append(beta, b)
		copy(v, w)
	}
	k := len(alpha)
	// Smallest eigenpair of the tridiagonal T.
	lambda := smallestTridiagEigenvalue(alpha, beta[:max0(k-1)])
	y := tridiagInverseIteration(alpha, beta[:max0(k-1)], lambda)
	// Map back: x = Σ y_j basis_j.
	x := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := range x {
			x[i] += y[j] * basis[j][i]
		}
	}
	deflate(x)
	normalize(x)
	// Rayleigh quotient for the reported eigenvalue.
	g.LaplacianMulAdd(x, w)
	return x, dot(x, w), k
}

func max0(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sturmCount returns the number of eigenvalues of the symmetric
// tridiagonal (alpha, beta) strictly below x.
func sturmCount(alpha, beta []float64, x float64) int {
	count := 0
	d := 1.0
	for i := range alpha {
		var b2 float64
		if i > 0 {
			b2 = beta[i-1] * beta[i-1]
		}
		if d == 0 {
			d = 1e-300
		}
		d = alpha[i] - x - b2/d
		if d < 0 {
			count++
		}
	}
	return count
}

// smallestTridiagEigenvalue finds the smallest eigenvalue of the
// symmetric tridiagonal matrix by bisection on the Sturm count.
func smallestTridiagEigenvalue(alpha, beta []float64) float64 {
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range alpha {
		r := 0.0
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < len(beta) {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < lo {
			lo = alpha[i] - r
		}
		if alpha[i]+r > hi {
			hi = alpha[i] + r
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(hi)); iter++ {
		mid := (lo + hi) / 2
		if sturmCount(alpha, beta, mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// tridiagInverseIteration solves (T − λI) y ≈ 0 by one pass of
// inverse iteration with a random right-hand side, via the Thomas
// algorithm with a small diagonal shift for stability.
func tridiagInverseIteration(alpha, beta []float64, lambda float64) []float64 {
	k := len(alpha)
	y := make([]float64, k)
	for i := range y {
		y[i] = 1 / math.Sqrt(float64(k))
	}
	const shift = 1e-10
	for iter := 0; iter < 3; iter++ {
		// Solve (T − (λ−shift) I) z = y with the Thomas algorithm.
		diag := make([]float64, k)
		rhs := make([]float64, k)
		for i := range diag {
			diag[i] = alpha[i] - lambda + shift
			rhs[i] = y[i]
		}
		sub := make([]float64, k) // modified superdiagonal store
		for i := 1; i < k; i++ {
			if diag[i-1] == 0 {
				diag[i-1] = shift
			}
			mfac := beta[i-1] / diag[i-1]
			diag[i] -= mfac * beta[i-1]
			rhs[i] -= mfac * rhs[i-1]
			sub[i-1] = beta[i-1]
		}
		if diag[k-1] == 0 {
			diag[k-1] = shift
		}
		y[k-1] = rhs[k-1] / diag[k-1]
		for i := k - 2; i >= 0; i-- {
			y[i] = (rhs[i] - sub[i]*y[i+1]) / diag[i]
		}
		// Normalize.
		var nrm float64
		for _, v := range y {
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		if nrm == 0 {
			break
		}
		for i := range y {
			y[i] /= nrm
		}
	}
	return y
}
