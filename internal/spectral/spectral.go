// Package spectral implements spectral (EIG) bipartitioning, the
// classical baseline of Hagen & Kahng ("New Spectral Methods for
// Ratio Cut Partitioning and Clustering", [18]) that several of the
// paper's comparison algorithms are measured against (PARABOLI
// reports cuts "50% better than spectral bipartitioning"; the
// two-phase framework of [3] clusters with spectral orderings).
//
// The netlist is expanded into the clique-model graph, the Fiedler
// vector (eigenvector of the second-smallest Laplacian eigenvalue) is
// computed with deflated power iteration on the spectrum-flipped
// operator c·I − L, and the induced ordering is split at the area
// median. Optionally the split is refined with FM — the classic
// "EIG + FM" two-phase combination.
package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"mlpart/internal/fm"
	"mlpart/internal/hypergraph"
	"mlpart/internal/netmodel"
)

// Config parameterizes spectral bipartitioning.
type Config struct {
	// CliqueLimit for the net model (see netmodel.Build). Default 16.
	CliqueLimit int
	// MaxIter bounds power iterations. Default 2000.
	MaxIter int
	// Tol is the convergence tolerance on the Rayleigh quotient.
	// Default 1e-7.
	Tol float64
	// RefineFM, when true, post-refines the spectral split with an FM
	// pass sequence (two-phase EIG + FM).
	RefineFM bool
	// Lanczos, when true, computes the Fiedler vector with the
	// Lanczos iteration of Barnard & Simon [6] instead of deflated
	// power iteration — more accurate per matvec on large instances.
	Lanczos bool
	// Refine configures the FM post-refinement when RefineFM is set.
	Refine fm.Config
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.CliqueLimit == 0 {
		c.CliqueLimit = 16
	}
	if c.CliqueLimit < 2 {
		return c, fmt.Errorf("spectral: clique limit %d < 2", c.CliqueLimit)
	}
	if c.MaxIter == 0 {
		c.MaxIter = 2000
	}
	if c.MaxIter < 1 {
		return c, fmt.Errorf("spectral: MaxIter %d < 1", c.MaxIter)
	}
	if c.Tol == 0 {
		c.Tol = 1e-7
	}
	if c.Tol <= 0 || c.Tol >= 1 {
		return c, fmt.Errorf("spectral: tolerance %v outside (0,1)", c.Tol)
	}
	var err error
	if c.Refine, err = c.Refine.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// Result reports a spectral bipartitioning run.
type Result struct {
	// Cut of the final bipartitioning (all nets).
	Cut int
	// Iterations used by the eigensolver.
	Iterations int
	// Lambda2 is the estimated second-smallest Laplacian eigenvalue.
	Lambda2 float64
	// Fiedler is the computed eigenvector (normalized, ⊥ 1).
	Fiedler []float64
}

// Fiedler computes (an approximation to) the Fiedler vector of the
// clique-model Laplacian of h by deflated power iteration on
// M = c·I − L with c = 2·maxdeg + 1: the dominant eigenvector of M
// orthogonal to the all-ones vector is the Fiedler vector of L.
// Returns the vector, the eigenvalue estimate λ2 and the iteration
// count.
func Fiedler(g *netmodel.Graph, maxIter int, tol float64, rng *rand.Rand) ([]float64, float64, int) {
	n := g.NumCells()
	if n == 0 {
		return nil, 0, 0
	}
	c := 2*g.MaxDegree() + 1
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	deflate(x)
	normalize(x)
	prevRQ := math.Inf(1)
	iters := 0
	for it := 0; it < maxIter; it++ {
		iters = it + 1
		// y = (c·I − L)·x
		g.LaplacianMulAdd(x, y)
		for i := range y {
			y[i] = c*x[i] - y[i]
		}
		deflate(y)
		nrm := normalize(y)
		if nrm == 0 {
			// x was in the kernel of the deflated operator (e.g. a
			// single connected cell set); restart with a new vector.
			for i := range y {
				y[i] = rng.NormFloat64()
			}
			deflate(y)
			normalize(y)
		}
		x, y = y, x
		// Rayleigh quotient of L on x.
		g.LaplacianMulAdd(x, y)
		var rq float64
		for i := range x {
			rq += x[i] * y[i]
		}
		if math.Abs(rq-prevRQ) < tol*(1+math.Abs(rq)) {
			return x, rq, iters
		}
		prevRQ = rq
	}
	g.LaplacianMulAdd(x, y)
	var rq float64
	for i := range x {
		rq += x[i] * y[i]
	}
	return x, rq, iters
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// normalize scales x to unit 2-norm, returning the original norm.
func normalize(x []float64) float64 {
	var nrm float64
	for _, v := range x {
		nrm += v * v
	}
	nrm = math.Sqrt(nrm)
	if nrm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= nrm
	}
	return nrm
}

// Bipartition runs spectral bipartitioning on h: Fiedler vector,
// area-median split of the induced ordering, optional FM refinement.
func Bipartition(h *hypergraph.Hypergraph, cfg Config, rng *rand.Rand) (*hypergraph.Partition, Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, Result{}, err
	}
	n := h.NumCells()
	if n == 0 {
		return hypergraph.NewPartition(0, 2), Result{}, nil
	}
	g := netmodel.Build(h, cfg.CliqueLimit)
	var vec []float64
	var lambda2 float64
	var iters int
	if cfg.Lanczos {
		vec, lambda2, iters = FiedlerLanczos(g, rng)
	} else {
		vec, lambda2, iters = Fiedler(g, cfg.MaxIter, cfg.Tol, rng)
	}
	p := splitAtAreaMedian(h, vec)
	res := Result{Iterations: iters, Lambda2: lambda2, Fiedler: vec}
	if cfg.RefineFM {
		if _, err := fm.Refine(h, p, cfg.Refine, rng); err != nil {
			return nil, Result{}, err
		}
	}
	res.Cut = p.Cut(h)
	return p, res, nil
}

// splitAtAreaMedian sorts cells by Fiedler value and cuts the
// ordering where the cumulative area reaches half.
func splitAtAreaMedian(h *hypergraph.Hypergraph, vec []float64) *hypergraph.Partition {
	n := h.NumCells()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	// Insertion-free sort by Fiedler value (stable for determinism).
	sortByValue(order, vec)
	p := hypergraph.NewPartition(n, 2)
	half := h.TotalArea() / 2
	var cum int64
	for _, v := range order {
		if cum >= half {
			p.Part[v] = 1
		}
		cum += h.Area(int(v))
	}
	return p
}

func sortByValue(order []int32, vec []float64) {
	// Simple top-down merge sort: deterministic and stable.
	tmp := make([]int32, len(order))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if vec[order[i]] <= vec[order[j]] {
				tmp[k] = order[i]
				i++
			} else {
				tmp[k] = order[j]
				j++
			}
			k++
		}
		for i < mid {
			tmp[k] = order[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = order[j]
			j++
			k++
		}
		copy(order[lo:hi], tmp[lo:hi])
	}
	ms(0, len(order))
}
