package spectral

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mlpart/internal/hypergraph"
	"mlpart/internal/netmodel"
)

func pathGraph(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddNet(i, i+1)
	}
	return b.MustBuild()
}

func TestFiedlerPathIsMonotone(t *testing.T) {
	// The Fiedler vector of a path graph is a cosine — strictly
	// monotone in the vertex order.
	h := pathGraph(12)
	g := netmodel.Build(h, 16)
	rng := rand.New(rand.NewSource(1))
	vec, lambda2, _ := Fiedler(g, 5000, 1e-10, rng)
	inc, dec := true, true
	for i := 0; i+1 < len(vec); i++ {
		if vec[i+1] < vec[i] {
			inc = false
		}
		if vec[i+1] > vec[i] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Errorf("Fiedler vector of a path is not monotone: %v", vec)
	}
	// λ2 of a path of n vertices is 2(1 − cos(π/n)) = 4 sin²(π/2n).
	want := 4 * math.Pow(math.Sin(math.Pi/24), 2)
	if math.Abs(lambda2-want) > 1e-3 {
		t.Errorf("λ2 = %v, want %v", lambda2, want)
	}
}

func TestFiedlerSeparatesTwoCliques(t *testing.T) {
	// Two K6 cliques joined by one edge: the Fiedler vector signs
	// separate the cliques.
	b := hypergraph.NewBuilder(12)
	for g := 0; g < 2; g++ {
		base := g * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				b.AddNet(base+i, base+j)
			}
		}
	}
	b.AddNet(0, 6)
	h := b.MustBuild()
	g := netmodel.Build(h, 16)
	vec, _, _ := Fiedler(g, 5000, 1e-10, rand.New(rand.NewSource(2)))
	for i := 1; i < 6; i++ {
		if math.Signbit(vec[i]) != math.Signbit(vec[0]) {
			t.Errorf("cell %d not on cell 0's side", i)
		}
		if math.Signbit(vec[6+i]) != math.Signbit(vec[6]) {
			t.Errorf("cell %d not on cell 6's side", 6+i)
		}
	}
	if math.Signbit(vec[0]) == math.Signbit(vec[6]) {
		t.Error("the two cliques were not separated")
	}
}

func TestFiedlerOrthogonalToOnes(t *testing.T) {
	h := pathGraph(20)
	g := netmodel.Build(h, 16)
	vec, _, _ := Fiedler(g, 3000, 1e-9, rand.New(rand.NewSource(3)))
	var sum, nrm float64
	for _, v := range vec {
		sum += v
		nrm += v * v
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("Σ fiedler = %v, want 0", sum)
	}
	if math.Abs(nrm-1) > 1e-6 {
		t.Errorf("‖fiedler‖² = %v, want 1", nrm)
	}
}

func TestBipartitionTwoCliquesOptimal(t *testing.T) {
	b := hypergraph.NewBuilder(16)
	for g := 0; g < 2; g++ {
		base := g * 8
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				b.AddNet(base+i, base+j)
			}
		}
	}
	b.AddNet(3, 11)
	h := b.MustBuild()
	p, res, err := Bipartition(h, Config{}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Errorf("spectral cut = %d, want 1", res.Cut)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
	areas := p.BlockAreas(h)
	if areas[0] != 8 || areas[1] != 8 {
		t.Errorf("areas = %v, want [8 8]", areas)
	}
}

func TestBipartitionWithFMRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := hypergraph.NewBuilder(100)
	for e := 0; e < 250; e++ {
		b.AddNet(rng.Intn(100), rng.Intn(100))
	}
	h := b.MustBuild()
	_, plain, err := Bipartition(h, Config{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	_, refined, err := Bipartition(h, Config{RefineFM: true}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cut > plain.Cut {
		t.Errorf("EIG+FM (%d) worse than EIG (%d)", refined.Cut, plain.Cut)
	}
}

func TestBipartitionEmptyAndErrors(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	if _, res, err := Bipartition(h, Config{}, rand.New(rand.NewSource(0))); err != nil || res.Cut != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	h2 := pathGraph(4)
	for _, bad := range []Config{{CliqueLimit: 1}, {MaxIter: -1}, {Tol: 2}} {
		if _, _, err := Bipartition(h2, bad, rand.New(rand.NewSource(0))); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
}

func TestSortByValueStable(t *testing.T) {
	vec := []float64{0.5, -0.1, 0.5, 0.3, -0.1}
	order := []int32{0, 1, 2, 3, 4}
	sortByValue(order, vec)
	// Sorted by value; ties keep original order (1 before 4, 0 before 2).
	want := []int32{1, 4, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Cross-check against the standard library.
	vals := make([]float64, len(order))
	for i, v := range order {
		vals[i] = vec[v]
	}
	if !sort.Float64sAreSorted(vals) {
		t.Error("not sorted")
	}
}

func TestSplitAtAreaMedianWeighted(t *testing.T) {
	b := hypergraph.NewBuilder(4)
	b.SetArea(0, 10).SetArea(1, 1).SetArea(2, 1).SetArea(3, 10)
	b.AddNet(0, 1).AddNet(2, 3)
	h := b.MustBuild()
	vec := []float64{-1, -0.5, 0.5, 1}
	p := splitAtAreaMedian(h, vec)
	// Cumulative: cell0 (10) < 11 → block 0; cell1 (11) → block 1
	// onward? half = 11. Cell0 cum 0 <11 → 0; cell1 cum 10 < 11 → 0;
	// cell2 cum 11 ≥ 11 → 1; cell3 → 1.
	want := []int32{0, 0, 1, 1}
	for v := range want {
		if p.Part[v] != want[v] {
			t.Errorf("cell %d in block %d, want %d", v, p.Part[v], want[v])
		}
	}
}

func TestLanczosPathEigenvalue(t *testing.T) {
	h := pathGraph(12)
	g := netmodel.Build(h, 16)
	vec, lambda2, dim := FiedlerLanczos(g, rand.New(rand.NewSource(1)))
	want := 4 * math.Pow(math.Sin(math.Pi/24), 2)
	if math.Abs(lambda2-want) > 1e-6 {
		t.Errorf("Lanczos λ2 = %v, want %v (dim %d)", lambda2, want, dim)
	}
	inc, dec := true, true
	for i := 0; i+1 < len(vec); i++ {
		if vec[i+1] < vec[i] {
			inc = false
		}
		if vec[i+1] > vec[i] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Errorf("Lanczos Fiedler vector not monotone on a path: %v", vec)
	}
}

func TestLanczosMatchesPowerIteration(t *testing.T) {
	// Both eigensolvers must agree on λ2 for a random graph.
	rng := rand.New(rand.NewSource(2))
	b := hypergraph.NewBuilder(60)
	for e := 0; e < 150; e++ {
		b.AddNet(rng.Intn(60), rng.Intn(60))
	}
	g := netmodel.Build(b.MustBuild(), 16)
	_, l1, _ := Fiedler(g, 20000, 1e-12, rand.New(rand.NewSource(3)))
	_, l2, _ := FiedlerLanczos(g, rand.New(rand.NewSource(4)))
	if math.Abs(l1-l2) > 1e-4*(1+math.Abs(l1)) {
		t.Errorf("power λ2 %v vs Lanczos λ2 %v", l1, l2)
	}
}

func TestLanczosSeparatesTwoCliques(t *testing.T) {
	b := hypergraph.NewBuilder(12)
	for g := 0; g < 2; g++ {
		base := g * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				b.AddNet(base+i, base+j)
			}
		}
	}
	b.AddNet(0, 6)
	g := netmodel.Build(b.MustBuild(), 16)
	vec, _, _ := FiedlerLanczos(g, rand.New(rand.NewSource(5)))
	if math.Signbit(vec[1]) != math.Signbit(vec[0]) || math.Signbit(vec[7]) == math.Signbit(vec[0]) {
		t.Errorf("Lanczos did not separate the cliques: %v", vec)
	}
}

func TestBipartitionWithLanczos(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := hypergraph.NewBuilder(80)
	for e := 0; e < 200; e++ {
		b.AddNet(rng.Intn(80), rng.Intn(80))
	}
	h := b.MustBuild()
	p, res, err := Bipartition(h, Config{Lanczos: true}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != p.Cut(h) {
		t.Error("cut mismatch")
	}
	if p.BlockAreas(h)[0] != 40 {
		t.Errorf("areas = %v", p.BlockAreas(h))
	}
}

func TestLanczosEmptyGraph(t *testing.T) {
	h := hypergraph.NewBuilder(0).MustBuild()
	g := netmodel.Build(h, 16)
	vec, _, _ := FiedlerLanczos(g, rand.New(rand.NewSource(0)))
	if vec != nil {
		t.Error("empty graph should give nil vector")
	}
}
